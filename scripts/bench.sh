#!/usr/bin/env bash
# Performance-regression harness: runs every microbenchmark and writes one
# BENCH_<name>.json per bench.
#
#   scripts/bench.sh                # refresh the BENCH_*.json baselines at the
#                                   # repo root (commit them with perf changes)
#   scripts/bench.sh --compare      # run into build/bench_current/ and compare
#                                   # against the checked-in baselines; exits
#                                   # non-zero on a >10% regression
#
# Knobs:
#   BB_BENCH_FAST=1       CI smoke mode: shrunken workloads, per-bench timing
#                         gates off.  --compare then checks structural
#                         invariants only (bit-identity flags, zero-allocation
#                         guarantee, benchmark coverage) — raw timings from a
#                         shrunken run are not comparable to the baselines.
#   BB_BENCH_TOL=0.10     regression tolerance for --compare
#   BB_BENCH_BUILD_DIR    build tree holding bench/ binaries (default: build)
#   BB_BENCH_JOBS         build parallelism (default: nproc)
#
# The per-bench knobs (BB_BENCH_STREAM_SLOTS, BB_OBS_BENCH_*, BB_BENCH_SCHED_*)
# pass through untouched unless BB_BENCH_FAST sets them.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=run
for arg in "$@"; do
  case "$arg" in
    --compare) MODE=compare ;;
    *) echo "usage: scripts/bench.sh [--compare]" >&2; exit 2 ;;
  esac
done

BUILD="${BB_BENCH_BUILD_DIR:-build}"
JOBS="${BB_BENCH_JOBS:-$(nproc)}"
TOL="${BB_BENCH_TOL:-0.10}"
FAST="${BB_BENCH_FAST:-0}"

if [[ ! -d "$BUILD" ]]; then
  cmake -B "$BUILD" -S . >/dev/null
fi
cmake --build "$BUILD" -j "$JOBS" \
  --target micro_core micro_sim micro_stream micro_obs micro_sched ablation_aqm

if [[ "$MODE" == compare ]]; then
  OUT="$BUILD/bench_current"
  rm -rf "$OUT"
  mkdir -p "$OUT"
  # Baseline refreshes enforce micro_obs's absolute 5% budget (measured on a
  # quiet machine); compare runs defer to the comparator's drift gate, which
  # carries slack for background load so CI boxes don't flake on it.
  export BB_OBS_BENCH_GATE="${BB_OBS_BENCH_GATE:-off}"
else
  OUT="."
fi

GB_ARGS=()
if [[ "$FAST" == 1 ]]; then
  GB_ARGS+=(--benchmark_min_time=0.05)
  export BB_BENCH_STREAM_SLOTS="${BB_BENCH_STREAM_SLOTS:-1000000}"
  export BB_BENCH_STREAM_REPS="${BB_BENCH_STREAM_REPS:-1}"
  export BB_OBS_BENCH_SLOTS="${BB_OBS_BENCH_SLOTS:-500000}"
  export BB_OBS_BENCH_REPS="${BB_OBS_BENCH_REPS:-1}"
  export BB_OBS_BENCH_GATE="${BB_OBS_BENCH_GATE:-off}"
  export BB_BENCH_SCHED_EVENTS="${BB_BENCH_SCHED_EVENTS:-200000}"
  export BB_BENCH_SCHED_REPS="${BB_BENCH_SCHED_REPS:-2}"
  export BB_BENCH_SCHED_GATE="${BB_BENCH_SCHED_GATE:-off}"
else
  # Full runs feed the >10% regression gate: repeat each case and let the
  # comparator judge the min across repetitions, not single noisy samples.
  GB_ARGS+=(--benchmark_repetitions=5)
  export BB_OBS_BENCH_REPS="${BB_OBS_BENCH_REPS:-5}"
fi

echo "==> bench: micro_core"
"./$BUILD/bench/micro_core" "${GB_ARGS[@]}" \
  --benchmark_out="$OUT/BENCH_micro_core.json" --benchmark_out_format=json

echo "==> bench: micro_sim"
"./$BUILD/bench/micro_sim" "${GB_ARGS[@]}" \
  --benchmark_out="$OUT/BENCH_micro_sim.json" --benchmark_out_format=json

echo "==> bench: micro_stream"
BB_BENCH_JSON="$OUT" "./$BUILD/bench/micro_stream"

echo "==> bench: micro_obs"
BB_BENCH_JSON="$OUT" "./$BUILD/bench/micro_obs"

echo "==> bench: micro_sched"
BB_BENCH_JSON="$OUT" "./$BUILD/bench/micro_sched"

echo "==> bench: ablation_aqm"
if [[ "$FAST" == 1 ]]; then
  export BB_BENCH_ABLATION_DURATION_S="${BB_BENCH_ABLATION_DURATION_S:-20}"
fi
BB_BENCH_JSON="$OUT" "./$BUILD/bench/ablation_aqm"

if [[ "$MODE" == compare ]]; then
  COMPARE_ARGS=(--baseline . --current "$OUT" --tolerance "$TOL")
  if [[ "$FAST" == 1 ]]; then COMPARE_ARGS+=(--fast); fi
  echo "==> bench: comparing against checked-in baselines (tolerance ${TOL})"
  python3 scripts/bench_compare.py "${COMPARE_ARGS[@]}"
else
  echo "==> bench: baselines refreshed at repo root (BENCH_*.json)"
fi
