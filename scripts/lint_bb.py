#!/usr/bin/env python3
"""Project lint: repo-specific rules the generic tools cannot express.

Rules (see DESIGN.md §10 for rationale):

  no-std-function     std::function is banned in src/sim and src/core — hot
                      paths use util::UniqueFunction (single allocation-free
                      dispatch, move-only).
  no-raw-random       rand()/srand()/std::random_device and raw <random>
                      engines (std::mt19937/mt19937_64, minstd_rand/0,
                      default_random_engine) are banned everywhere except
                      util/rng.h: all randomness flows through the
                      deterministically fork-seeded util::Rng.  A raw engine
                      in a queue discipline or the lossy link would silently
                      break replica reproducibility and the seed-pinned
                      golden tests.
  no-direct-io        printf/fprintf/puts/fputs/std::cout/std::cerr are banned
                      in src/ outside src/obs — output goes through obs::log
                      or the tools layer.  (snprintf formatting is fine.)
  no-float-estimator  `float` is banned in src/core and src/measure: estimator
                      arithmetic is all-double; a stray float silently halves
                      the mantissa and breaks bit-identity guarantees.
  own-header-first    every src/**/<name>.cpp with a sibling <name>.h must
                      include "dir/<name>.h" first, keeping headers
                      self-contained.
  no-adhoc-scenario   hand-wired scenario plumbing (constructing a
                      scenarios::Testbed / Figure3Testbed, or declaring a
                      QueueBase::LinkConfig) is banned outside src/scenarios
                      and src/sim (the defining layers): experiment wiring
                      goes through the scenario DSL and the
                      scenarios::build_testbed factory, so every run is
                      reproducible from a spec document.

Waivers, for the rare justified exception (justify in a trailing comment):

  // bb-lint: allow(<rule-id>)        waives the rule on this and the next line
  // bb-lint: allow-file(<rule-id>)   waives the rule for the whole file

Usage:
  scripts/lint_bb.py                # lint src/ tools/ bench/ under the repo root
  scripts/lint_bb.py PATH...        # lint specific files or directories
  scripts/lint_bb.py --self-test    # run the table-driven self-test

Exit status: 0 clean, 1 findings, 2 self-test failure or bad usage.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_SCAN = ["src", "tools", "bench"]
CXX_EXTENSIONS = (".cpp", ".h")


# --------------------------------------------------------------------------
# Source mangling: blank out comments and string/char literals (preserving
# line structure) so rule patterns only see code.  Waiver comments are read
# from the raw text before stripping.

def strip_comments_and_literals(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == '"':
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        elif c == "'":
            # C++14 digit separator (1'000'000): an apostrophe directly after
            # an alphanumeric character is not a char literal.
            if out and (out[-1].isalnum() or out[-1] == "_"):
                out.append(" ")
                i += 1
            else:
                i += 1
                while i < n and text[i] != "'":
                    if text[i] == "\\":
                        i += 1
                    i += 1
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


WAIVE_LINE = re.compile(r"bb-lint:\s*allow\(([a-z0-9-]+)\)")
WAIVE_FILE = re.compile(r"bb-lint:\s*allow-file\(([a-z0-9-]+)\)")


def collect_waivers(raw_lines):
    """Return (file_waivers: set, line_waivers: dict lineno -> set)."""
    file_waivers = set()
    line_waivers = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in WAIVE_FILE.finditer(line):
            file_waivers.add(m.group(1))
        for m in WAIVE_LINE.finditer(line):
            line_waivers.setdefault(idx, set()).add(m.group(1))
            line_waivers.setdefault(idx + 1, set()).add(m.group(1))
    return file_waivers, line_waivers


# --------------------------------------------------------------------------
# Rules.  Each rule: id, scope predicate over the repo-relative path, and a
# checker yielding (lineno, message).  `ctx` carries the bits a checker needs
# beyond the file text (sibling-header existence), injectable for self-tests.

def in_dirs(path, *dirs):
    return any(path == d or path.startswith(d + "/") for d in dirs)


def grep_rule(pattern, message):
    rx = re.compile(pattern)

    def check(path, code_lines, ctx):
        del path, ctx
        for idx, line in enumerate(code_lines, start=1):
            if rx.search(line):
                yield idx, message
    return check


def check_own_header_first(path, code_lines, ctx):
    if not path.startswith("src/") or not path.endswith(".cpp"):
        return
    header = path[:-len(".cpp")] + ".h"
    if not ctx["header_exists"](header):
        return
    expected = '"' + header[len("src/"):] + '"'
    # The stripped line identifies real (uncommented) includes; the path
    # itself is a string literal, so read it back from the raw line.
    for idx, line in enumerate(code_lines, start=1):
        if re.match(r"\s*#\s*include\b", line):
            m = re.search(r'#\s*include\s+(<[^>]+>|"[^"]+")', ctx["raw_lines"][idx - 1])
            if m and m.group(1) != expected:
                yield idx, f"first include must be the file's own header {expected}"
            return


RULES = [
    {
        "id": "no-std-function",
        "scope": lambda p: in_dirs(p, "src/sim", "src/core"),
        "check": grep_rule(r"\bstd::function\s*<",
                           "std::function in a hot-path library; use util::UniqueFunction"),
    },
    {
        "id": "no-raw-random",
        "scope": lambda p: in_dirs(p, "src", "tools", "bench") and p != "src/util/rng.h",
        "check": grep_rule(
            r"\b(?:std::)?s?rand\s*\(|\bstd::random_device\b"
            r"|\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine)\b",
            "raw randomness; all draws go through the seeded util::Rng"),
    },
    {
        "id": "no-direct-io",
        "scope": lambda p: in_dirs(p, "src") and not in_dirs(p, "src/obs"),
        "check": grep_rule(
            r"\b(?:std::)?(?:printf|fprintf|puts|fputs)\s*\(|\bstd::(?:cout|cerr)\b",
            "direct stdout/stderr I/O in src/; use obs::log or return data to the caller"),
    },
    {
        "id": "no-float-estimator",
        "scope": lambda p: in_dirs(p, "src/core", "src/measure"),
        "check": grep_rule(r"\bfloat\b",
                           "float in estimator arithmetic; this codebase is all-double"),
    },
    {
        "id": "own-header-first",
        "scope": lambda p: in_dirs(p, "src"),
        "check": check_own_header_first,
    },
    {
        "id": "no-adhoc-scenario",
        "scope": lambda p: (in_dirs(p, "src", "tools", "bench")
                            and not in_dirs(p, "src/scenarios", "src/sim")),
        # Constructions only: `Testbed tb{...}`, `Figure3Testbed f{...}`,
        # `QueueBase::LinkConfig link;` — references and parameters
        # (`Testbed&`, `const QueueBase::LinkConfig&`) stay legal.
        "check": grep_rule(
            r"\b(?:scenarios::)?(?:Figure3)?Testbed\s+\w+\s*\{"
            r"|\b(?:sim::)?QueueBase::LinkConfig\s+\w+\s*[;{=]",
            "hand-wired scenario construction; go through the scenario DSL "
            "and scenarios::build_testbed"),
    },
]


def lint_text(path, text, ctx):
    """Lint one file's contents; returns a list of (path, lineno, rule, msg)."""
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_literals(text).splitlines()
    file_waivers, line_waivers = collect_waivers(raw_lines)
    ctx = dict(ctx, raw_lines=raw_lines)
    findings = []
    for rule in RULES:
        if not rule["scope"](path):
            continue
        if rule["id"] in file_waivers:
            continue
        for lineno, msg in rule["check"](path, code_lines, ctx):
            if rule["id"] in line_waivers.get(lineno, set()):
                continue
            findings.append((path, lineno, rule["id"], msg))
    return findings


def real_ctx():
    return {"header_exists": lambda rel: os.path.exists(os.path.join(REPO_ROOT, rel))}


def iter_files(args):
    roots = args if args else DEFAULT_SCAN
    for root in roots:
        full = os.path.join(REPO_ROOT, root) if not os.path.isabs(root) else root
        if os.path.isfile(full):
            yield os.path.relpath(full, REPO_ROOT)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), REPO_ROOT)


def run_lint(args):
    ctx = real_ctx()
    findings = []
    for rel in iter_files(args):
        with open(os.path.join(REPO_ROOT, rel), encoding="utf-8") as f:
            findings.extend(lint_text(rel, f.read(), ctx))
    for path, lineno, rule, msg in findings:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"lint_bb: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_bb: clean ({sum(1 for _ in iter_files(args))} files)")
    return 0


# --------------------------------------------------------------------------
# Table-driven self-test: (rule, path, snippet, sibling-header-exists, flagged?)

SELF_TEST_TABLE = [
    ("no-std-function", "src/sim/x.h", "std::function<void()> f;", False, True),
    ("no-std-function", "src/sim/x.h", "UniqueFunction<void()> f;", False, False),
    ("no-std-function", "src/tcp/x.h", "std::function<void()> f;", False, False),  # out of scope
    ("no-std-function", "src/core/x.h", "// std::function<int()> in a comment", False, False),
    ("no-std-function", "src/sim/x.h",
     "std::function<void()> f;  // bb-lint: allow(no-std-function)", False, False),
    ("no-raw-random", "src/core/x.cpp", "int r = rand();", False, True),
    ("no-raw-random", "bench/x.cpp", "std::random_device rd;", False, True),
    ("no-raw-random", "src/util/rng.h", "std::random_device rd;", False, False),  # exempt
    ("no-raw-random", "src/core/x.cpp", "int operand = f();", False, False),  # substring trap
    ("no-direct-io", "src/core/x.cpp", 'std::printf("%d", 1);', False, True),
    ("no-direct-io", "src/core/x.cpp", "std::cout << 1;", False, True),
    ("no-direct-io", "src/obs/log.cpp", 'fprintf(stderr, "x");', False, False),  # obs exempt
    ("no-direct-io", "src/core/x.cpp", 'std::snprintf(buf, sizeof buf, "x");', False, False),
    ("no-direct-io", "src/core/x.cpp", 'const char* s = "printf(";', False, False),  # in literal
    ("no-direct-io", "src/core/x.cpp",
     '// bb-lint: allow(no-direct-io)\nstd::printf("ok");', False, False),
    ("no-float-estimator", "src/core/x.cpp", "float p = 0.1f;", False, True),
    ("no-float-estimator", "src/measure/x.h", "float q;", False, True),
    ("no-float-estimator", "src/core/x.cpp", "double p = 0.1;", False, False),
    ("no-float-estimator", "src/sim/x.cpp", "float ok_here = 1.0f;", False, False),  # out of scope
    ("no-float-estimator", "src/core/x.cpp", "int inflate = 1;", False, False),  # substring trap
    ("own-header-first", "src/core/x.cpp", '#include <vector>\n#include "core/x.h"', True, True),
    ("own-header-first", "src/core/x.cpp", '#include "core/x.h"\n#include <vector>', True, False),
    ("own-header-first", "src/core/x.cpp", "#include <vector>", False, False),  # no sibling header
    ("own-header-first", "src/core/x.cpp",
     "// bb-lint: allow-file(own-header-first)\n#include <vector>\n#include \"core/x.h\"",
     True, False),
    ("no-raw-random", "src/core/x.cpp", "const auto n = 1'000'000; int r = rand();",
     False, True),  # digit separators must not eat the rest of the line
    # Raw <random> engines in the discipline/lossy-link layer: determinism
    # there rests on the fork-seeded util::Rng, so engines are findings too.
    ("no-raw-random", "src/sim/aqm.cpp", "std::mt19937_64 eng{17};", False, True),
    ("no-raw-random", "src/sim/aqm.cpp", "std::mt19937 eng;", False, True),
    ("no-raw-random", "src/sim/lossy_link.cpp", "std::default_random_engine e;", False, True),
    ("no-raw-random", "src/sim/aqm.cpp", "std::minstd_rand lcg;", False, True),
    ("no-raw-random", "src/sim/aqm.cpp", "Rng rng{17};", False, False),  # the blessed path
    ("no-raw-random", "src/util/rng.h", "std::mt19937_64 eng_;", False, False),  # exempt
    ("no-raw-random", "src/sim/x.cpp", "std::minstd_rand_like v;", False, False),  # substring trap
    ("no-raw-random", "src/sim/x.cpp", "// std::mt19937 in prose", False, False),  # comment
    ("no-adhoc-scenario", "bench/x.cpp", "scenarios::Testbed tb{cfg};", False, True),
    ("no-adhoc-scenario", "bench/x.cpp", "Figure3Testbed fig{cfg};", False, True),
    ("no-adhoc-scenario", "tools/x.cpp", "sim::QueueBase::LinkConfig link;", False, True),
    ("no-adhoc-scenario", "src/scenarios/spec.cpp", "Testbed tb{cfg};", False, False),  # factory home
    ("no-adhoc-scenario", "src/sim/aqm.cpp",
     "std::unique_ptr<QueueBase> make_queue(Scheduler& s, const QueueBase::LinkConfig& cfg);",
     False, False),  # defining layer + reference
    ("no-adhoc-scenario", "bench/x.cpp", "scenarios::Testbed& tb = *tb_ptr;", False, False),  # ref ok
    ("no-adhoc-scenario", "bench/x.cpp",
     "sim::QueueBase::LinkConfig link;  // bb-lint: allow(no-adhoc-scenario)", False, False),
]


def self_test():
    failures = []
    for idx, (rule, path, snippet, header_exists, expect_flag) in enumerate(SELF_TEST_TABLE):
        ctx = {"header_exists": lambda rel, e=header_exists: e}
        findings = [f for f in lint_text(path, snippet + "\n", ctx) if f[2] == rule]
        if bool(findings) != expect_flag:
            failures.append(
                f"case {idx} [{rule}] {path!r}: expected "
                f"{'a finding' if expect_flag else 'clean'}, got {findings!r}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 2
    print(f"lint_bb: self-test ok ({len(SELF_TEST_TABLE)} cases)")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    if any(a.startswith("--") for a in argv):
        print(__doc__, file=sys.stderr)
        return 2
    return run_lint(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
