#!/usr/bin/env python3
"""Compare a fresh bench run against the checked-in BENCH_*.json baselines.

Invoked by `scripts/bench.sh --compare`.  Two classes of checks:

Structural invariants — always enforced, workload-size independent:
  * every baseline BENCH_*.json has a current counterpart
  * micro_stream / micro_obs bit-identity flags stay true
  * micro_sched's steady-state allocation count stays zero
  * every google-benchmark case present in the baseline still runs
  * ablation_aqm keeps the full discipline x traffic x GE cell matrix, with
    every rate a finite number in [0, 1]

Performance gates — enforced only when the numbers are comparable
(same workload parameters, not --fast; raw per-op timings additionally
require the same host as the baseline):
  * micro_sched tick/churn speedups within --tolerance of baseline
  * google-benchmark real_time per case within --tolerance (same host)
  * micro_stream stream/batch ratio within --tolerance on matching rows

Exit status: 0 clean, 1 regression or malformed artifact.
"""
from __future__ import annotations

import argparse
import json
import socket
import sys
from pathlib import Path

BENCHES = ("micro_core", "micro_sim", "micro_stream", "micro_obs", "micro_sched",
           "ablation_aqm")

failures: list[str] = []
notes: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)


def load(path: Path):
    try:
        with path.open() as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: unreadable ({e})")
        return None


def gb_cases(doc) -> dict[str, list[float]]:
    """google-benchmark JSON -> {case name: [real_time samples in ns]}.

    Full runs use --benchmark_repetitions; the minimum across repetitions is
    the least-interfered sample and by far the most stable statistic on a
    shared machine, and the baseline's own spread calibrates the gate.
    """
    out: dict[str, list[float]] = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        out.setdefault(b["name"], []).append(float(b["real_time"]))
    return out


def gb_host(doc) -> str:
    return str(doc.get("context", {}).get("host_name", ""))


def check_gb(name: str, base, cur, tol: float, fast: bool) -> None:
    bcases, ccases = gb_cases(base), gb_cases(cur)
    missing = sorted(set(bcases) - set(ccases))
    for m in missing:
        fail(f"{name}: benchmark case '{m}' disappeared from the current run")
    if fast:
        notes.append(f"{name}: fast mode — timing gate skipped, coverage checked")
        return
    same_host = gb_host(base) and gb_host(base) == socket.gethostname()
    if not same_host:
        notes.append(f"{name}: baseline from host '{gb_host(base)}' != current host — "
                     "timing gate skipped, coverage checked")
        return
    for case in sorted(set(bcases) & set(ccases)):
        bsamples, c = bcases[case], min(ccases[case])
        b = min(bsamples)
        # Self-calibrating threshold: the relative tolerance plus twice the
        # baseline's own cross-repetition spread, so a machine whose timings
        # wander 15% run-to-run doesn't turn the 10% gate into a coin flip
        # while a quiet machine keeps the full sensitivity.
        spread = (max(bsamples) - b) if len(bsamples) > 1 else 0.0
        limit = b * (1.0 + tol) + 2.0 * spread
        if b > 0 and c > limit:
            fail(f"{name}/{case}: real_time {c:.0f}ns vs baseline {b:.0f}ns "
                 f"(limit {limit:.0f}ns = +{tol * 100:.0f}% and 2x baseline spread)")


def check_stream(base, cur, tol: float, fast: bool) -> None:
    brows = {r["slots"]: r for r in base.get("rows", [])}
    crows = {r["slots"]: r for r in cur.get("rows", [])}
    for slots, row in crows.items():
        if not row.get("identical", False):
            fail(f"micro_stream: batch/stream estimates diverged at {slots} slots")
    if fast:
        notes.append("micro_stream: fast mode — ratio gate skipped, identity checked")
        return
    for slots in sorted(set(brows) & set(crows)):
        b, c = brows[slots], crows[slots]
        if b["batch_ms"] <= 0 or c["batch_ms"] <= 0:
            continue
        bratio = b["stream_ms"] / b["batch_ms"]
        cratio = c["stream_ms"] / c["batch_ms"]
        # Small absolute slack on top of the relative tolerance: the ratio
        # sits near 0.5, where scheduler jitter alone moves it a few percent.
        if cratio > bratio * (1.0 + tol) + 0.05:
            fail(f"micro_stream@{slots}: stream/batch ratio {cratio:.3f} vs baseline "
                 f"{bratio:.3f} (+{(cratio / bratio - 1) * 100:.1f}% > {tol * 100:.0f}%)")


def check_obs(base, cur, tol: float, fast: bool) -> None:
    if not cur.get("identical", False):
        fail("micro_obs: instrumented/uninstrumented estimates diverged")
    if fast or cur.get("slots") != base.get("slots"):
        notes.append("micro_obs: overhead gate skipped (fast mode or workload mismatch)")
        return
    # The binary's own 5% budget is enforced when baselines are refreshed on a
    # quiet machine; this drift gate exists to catch order-of-magnitude
    # regressions (a counter landing in the inner loop).  Overhead is a small
    # difference of two large timings, so under background load it swings by
    # whole percentage points — hence 5 points of absolute slack on top of the
    # relative tolerance.
    budget = max(base.get("overhead_fraction", 0.0) * (1.0 + tol),
                 base.get("overhead_fraction", 0.0) + 0.05)
    if cur.get("overhead_fraction", 0.0) > budget:
        fail(f"micro_obs: overhead {cur['overhead_fraction']:.4f} vs baseline "
             f"{base['overhead_fraction']:.4f} (budget {budget:.4f})")


def check_sched(base, cur, tol: float, fast: bool) -> None:
    if cur.get("allocs_per_event_small", 1.0) > 1e-9:
        fail(f"micro_sched: {cur.get('allocs_per_event_small')} heap allocations per "
             "small event — the inline-event guarantee broke")
    comparable = not fast and cur.get("events") == base.get("events")
    if not comparable:
        notes.append("micro_sched: speedup gate skipped (fast mode or workload mismatch)")
        return
    for load in ("tick", "churn"):
        b = base.get(load, {}).get("speedup", 0.0)
        c = cur.get(load, {}).get("speedup", 0.0)
        if b > 0 and c < b * (1.0 - tol):
            fail(f"micro_sched: {load} speedup {c:.2f}x vs baseline {b:.2f}x "
                 f"(-{(1 - c / b) * 100:.1f}% > {tol * 100:.0f}%)")
    # Absolute throughput is advisory only: raw wall-clock on a shared box
    # drifts ±20% with background load even best-of-5.  The enforced contract
    # is the self-normalized speedup plus the zero-allocation invariant;
    # absolute-time regressions are caught by the spread-calibrated
    # google-benchmark gates (micro_sim's bottleneck bench runs the scheduler).
    same_host = base.get("host") and base.get("host") == socket.gethostname()
    if same_host:
        for load in ("tick", "churn"):
            b = base.get(load, {}).get("new_mev_s", 0.0)
            c = cur.get(load, {}).get("new_mev_s", 0.0)
            if b > 0 and c < b * (1.0 - tol):
                notes.append(f"micro_sched: {load} throughput {c:.2f} Mev/s vs baseline "
                             f"{b:.2f} Mev/s (-{(1 - c / b) * 100:.1f}%, advisory)")


def _cell_key(cell) -> tuple:
    return (cell.get("discipline"), cell.get("traffic"), cell.get("ge"))


def check_ablation(base, cur, tol: float, fast: bool) -> None:
    import math

    bcells = {_cell_key(c): c for c in base.get("cells", [])}
    ccells = {_cell_key(c): c for c in cur.get("cells", [])}
    for key in sorted(set(bcells) - set(ccells), key=str):
        fail(f"ablation_aqm: cell {key} disappeared from the current run")
    rate_fields = ("truth_frequency", "est_frequency", "path_loss_rate",
                   "passive_loss_rate")
    finite_fields = rate_fields + ("freq_rel_error", "truth_duration_s",
                                   "est_duration_s", "dur_rel_error")
    for key, cell in sorted(ccells.items(), key=lambda kv: str(kv[0])):
        for f in finite_fields:
            v = cell.get(f)
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                fail(f"ablation_aqm: cell {key} field '{f}' is not a finite number: {v!r}")
        for f in rate_fields:
            v = cell.get(f, 0.0)
            if isinstance(v, (int, float)) and math.isfinite(v) and not 0.0 <= v <= 1.0:
                fail(f"ablation_aqm: cell {key} field '{f}' = {v} outside [0, 1]")
    # Bias drift is workload-sized and seeded; it is NOT gated here — the
    # estimator error bounds live in aqm_validation_test, and this check only
    # guards the artifact's structure.
    notes.append("ablation_aqm: structural check only (cell coverage + sanity)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=Path, required=True)
    ap.add_argument("--current", type=Path, required=True)
    ap.add_argument("--tolerance", type=float, default=0.10)
    ap.add_argument("--fast", action="store_true",
                    help="shrunken CI run: structural checks only")
    args = ap.parse_args()

    for name in BENCHES:
        bpath = args.baseline / f"BENCH_{name}.json"
        cpath = args.current / f"BENCH_{name}.json"
        if not bpath.exists():
            fail(f"{bpath}: baseline missing — run scripts/bench.sh (no --compare) "
                 "and commit the refreshed BENCH_*.json")
            continue
        if not cpath.exists():
            fail(f"{cpath}: bench produced no output")
            continue
        base, cur = load(bpath), load(cpath)
        if base is None or cur is None:
            continue
        if name in ("micro_core", "micro_sim"):
            check_gb(name, base, cur, args.tolerance, args.fast)
        elif name == "micro_stream":
            check_stream(base, cur, args.tolerance, args.fast)
        elif name == "micro_obs":
            check_obs(base, cur, args.tolerance, args.fast)
        elif name == "micro_sched":
            check_sched(base, cur, args.tolerance, args.fast)
        elif name == "ablation_aqm":
            check_ablation(base, cur, args.tolerance, args.fast)

    for n in notes:
        print(f"note: {n}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(f"bench_compare: {len(failures)} regression(s)", file=sys.stderr)
        return 1
    print("bench_compare: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
