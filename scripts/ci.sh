#!/usr/bin/env bash
# Continuous-integration driver: tier-1 verification, static analysis,
# contract builds and sanitizer builds.
#
#   scripts/ci.sh                 # tier-1 + analysis + ASan suite + TSan `-L tsan`
#   BB_CI_SKIP_ANALYSIS=1 scripts/ci.sh   # skip lint/tidy/UBSan/contracts
#   BB_CI_SKIP_ASAN=1 scripts/ci.sh   # skip the AddressSanitizer stage
#   BB_CI_SKIP_TSAN=1 scripts/ci.sh   # skip the ThreadSanitizer stage
#   BB_CI_SKIP_OBS=1 scripts/ci.sh    # skip the observability stage
#   BB_CI_SKIP_SWEEP=1 scripts/ci.sh  # skip the sweep cache stage
#   BB_SKIP_BENCH=1 scripts/ci.sh     # skip the perf-regression stage
#
# Each stage uses its own build directory (build, build-ubsan, build-audit,
# build-asan, build-tsan) so sanitizer/contract flags never leak into the
# primary build. BB_SANITIZE is the top-level CMake cache option
# (thread|address|undefined); BB_AUDIT=ON turns on deep invariant walkers.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${BB_CI_JOBS:-$(nproc)}"

echo "==> tier-1: configure + build + full ctest"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${BB_CI_SKIP_OBS:-0}" != 1 ]]; then
  echo "==> obs: full ctest with the kill switch off (BB_OBS=off)"
  BB_OBS=off ctest --test-dir build --output-on-failure -j "$JOBS"

  echo "==> obs: full ctest with ambient tracing on (BB_OBS_TRACE=1)"
  BB_OBS_TRACE=1 ctest --test-dir build --output-on-failure -j "$JOBS"

  echo "==> obs: micro_obs smoke (assert-only, timing gate off)"
  BB_OBS_BENCH_GATE=off BB_OBS_BENCH_SLOTS=500000 BB_OBS_BENCH_REPS=1 \
    BB_BENCH_JSON=build ./build/bench/micro_obs
fi

if [[ "${BB_CI_SKIP_SWEEP:-0}" != 1 ]]; then
  echo "==> sweep: cold run of the example spec, then assert the warm run is 100% cache hits"
  sweep_dir=$(mktemp -d)
  trap 'rm -rf "$sweep_dir"' EXIT
  ./build/tools/bb_sweep run examples/sweep_smoke.json \
      --out "$sweep_dir/out" --cache-dir "$sweep_dir/cache" \
    | tee "$sweep_dir/cold.log"
  grep -q 'cells: 2 total, computed 2, cached 0' "$sweep_dir/cold.log" \
    || { echo "ci: cold sweep did not compute both cells" >&2; exit 1; }
  ./build/tools/bb_sweep run examples/sweep_smoke.json \
      --out "$sweep_dir/out" --cache-dir "$sweep_dir/cache" \
    | tee "$sweep_dir/warm.log"
  grep -q 'cells: 2 total, computed 0, cached 2' "$sweep_dir/warm.log" \
    || { echo "ci: warm sweep was not 100% cache hits" >&2; exit 1; }
fi

if [[ "${BB_SKIP_BENCH:-0}" != 1 ]]; then
  echo "==> bench: perf-regression smoke (BB_BENCH_FAST=1 scripts/bench.sh --compare)"
  BB_BENCH_FAST=1 scripts/bench.sh --compare
fi

if [[ "${BB_CI_SKIP_ANALYSIS:-0}" != 1 ]]; then
  echo "==> analysis: project lint (scripts/lint_bb.py)"
  python3 scripts/lint_bb.py --self-test
  python3 scripts/lint_bb.py

  echo "==> analysis: clang-tidy (skips itself if clang-tidy is absent)"
  scripts/tidy.sh build

  echo "==> analysis: UBSan + warnings-as-errors build + full ctest"
  cmake -B build-ubsan -S . -DBB_SANITIZE=undefined -DBB_WERROR=ON >/dev/null
  cmake --build build-ubsan -j "$JOBS"
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"

  echo "==> analysis: deep-contract build (BB_AUDIT=ON) + full ctest"
  cmake -B build-audit -S . -DBB_AUDIT=ON >/dev/null
  cmake --build build-audit -j "$JOBS"
  ctest --test-dir build-audit --output-on-failure -j "$JOBS"
fi

if [[ "${BB_CI_SKIP_ASAN:-0}" != 1 ]]; then
  echo "==> asan: BB_SANITIZE=address build + full ctest"
  cmake -B build-asan -S . -DBB_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

if [[ "${BB_CI_SKIP_TSAN:-0}" != 1 ]]; then
  echo "==> tsan: BB_SANITIZE=thread build + ctest -L tsan"
  cmake -B build-tsan -S . -DBB_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -L tsan
fi

echo "==> ci: all requested stages passed"
