# Gnuplot script regenerating the paper's figures from the CSVs that the
# bench binaries write into ./fig_data/ (run the benches from the build
# directory first, then `gnuplot ../scripts/plot_figures.gp` there).
set datafile separator ','
set terminal pngcairo size 900,600 font ',11'
set grid

# --- Figures 4-6: queue-length time series ----------------------------------
set xlabel 'time (seconds)'
set ylabel 'queue length (seconds)'
set yrange [0:0.11]

set output 'fig4_infinite_tcp.png'
set title 'Figure 4: queue length, infinite TCP sources'
plot 'fig_data/infinite_tcp_queue.csv' skip 1 using 1:2 with lines lw 1 notitle

set output 'fig5_cbr.png'
set title 'Figure 5: queue length, constant-duration loss episodes'
plot 'fig_data/cbr_uniform_queue.csv' skip 1 using 1:2 with lines lw 1 notitle

set output 'fig6_web.png'
set title 'Figure 6: queue length, web-like traffic'
plot 'fig_data/web_queue.csv' skip 1 using 1:2 with lines lw 1 notitle

set autoscale y

# --- Figure 7: probe length vs miss probability ------------------------------
set output 'fig7_probe_size.png'
set title 'Figure 7: P(no loss seen | probe sent during an episode)'
set xlabel 'packets per probe'
set ylabel 'empirical miss probability'
set yrange [0:1]
set key top right
plot 'fig_data/fig7_probe_size.csv' skip 1 using 1:2 with linespoints lw 2 title 'infinite TCP', \
     ''                              skip 1 using 1:3 with linespoints lw 2 title 'CBR bursts'
set autoscale y

# --- Figure 8: probe impact ---------------------------------------------------
set output 'fig8_probe_impact.png'
set title 'Figure 8: queue excerpts with 0 / 3 / 10-packet probe trains'
set xlabel 'time (seconds)'
set ylabel 'queue length (seconds)'
set xrange [10:14]
plot 'fig_data/fig8_probes0_queue.csv'  skip 1 using 1:2 with lines title 'no probes', \
     'fig_data/fig8_probes3_queue.csv'  skip 1 using 1:2 with lines title '3-packet probes', \
     'fig_data/fig8_probes10_queue.csv' skip 1 using 1:2 with lines title '10-packet probes'
set autoscale x

# --- Figure 9: alpha / tau sensitivity ---------------------------------------
set output 'fig9a_alpha.png'
set title 'Figure 9(a): frequency estimates vs p, tau = 80 ms'
set xlabel 'probe rate p'
set ylabel 'loss frequency'
plot 'fig_data/fig9_sensitivity.csv' skip 1 using ($4==80&&$3==0.05?$1:1/0):5 with linespoints title 'alpha=0.05', \
     ''                              skip 1 using ($4==80&&$3==0.10?$1:1/0):5 with linespoints title 'alpha=0.10', \
     ''                              skip 1 using ($4==80&&$3==0.20?$1:1/0):5 with linespoints title 'alpha=0.20', \
     ''                              skip 1 using ($4==80&&$3==0.10?$1:1/0):2 with lines dashtype 2 lw 2 title 'true'

set output 'fig9b_tau.png'
set title 'Figure 9(b): frequency estimates vs p, alpha = 0.1'
plot 'fig_data/fig9_sensitivity.csv' skip 1 using ($3==0.1&&$4==20?$1:1/0):5 with linespoints title 'tau=20ms', \
     ''                              skip 1 using ($3==0.1&&$4==40?$1:1/0):5 with linespoints title 'tau=40ms', \
     ''                              skip 1 using ($3==0.1&&$4==80?$1:1/0):5 with linespoints title 'tau=80ms', \
     ''                              skip 1 using ($3==0.1&&$4==80?$1:1/0):2 with lines dashtype 2 lw 2 title 'true'
