#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy) over src/ tools/ bench/ using the
# compilation database from a configured build directory.
#
#   scripts/tidy.sh [BUILD_DIR]     default BUILD_DIR: build
#
# Exits non-zero on any diagnostic (WarningsAsErrors: '*').  If clang-tidy is
# not installed (the default container ships GCC only), prints a warning and
# exits 0 so CI degrades gracefully instead of failing on a missing tool.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "tidy.sh: $TIDY not found; skipping (install clang-tidy to enable this stage)" >&2
    exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "tidy.sh: $BUILD_DIR/compile_commands.json missing; configure first:" >&2
    echo "  cmake -S . -B $BUILD_DIR" >&2
    exit 1
fi

mapfile -t FILES < <(find src tools bench -name '*.cpp' | sort)
echo "tidy.sh: checking ${#FILES[@]} files with $TIDY"

JOBS="$(nproc 2>/dev/null || echo 4)"
if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet -j "$JOBS" \
        '^.*/(src|tools|bench)/.*\.cpp$'
else
    printf '%s\0' "${FILES[@]}" | xargs -0 -n 1 -P "$JOBS" "$TIDY" -p "$BUILD_DIR" --quiet
fi
echo "tidy.sh: clean"
