// badabing_sim: run a BADABING measurement against a simulated congested
// path and print the paper's estimates; optionally dump the probe trace and
// experiment design for offline analysis with `estimate_trace`.
//
//   $ badabing_sim --scenario=cbr --p=0.3 --duration-s=300 --trace=run.csv
//
// With --replicas=N the run becomes a Monte Carlo experiment: N independent
// replicas (seeds derived positionally from --seed) executed across
// --threads workers, reported as mean +/- 95% bootstrap CI and optionally
// dumped with --json=FILE.
//
// With --stream the tool runs the fully online pipeline instead: a synthetic
// alternating-renewal congestion series feeds the streaming probe scorer and
// the online estimators slot by slot, so --slots can be 1e8 or more while
// resident memory stays constant (no series, design, or report vector is
// ever materialized).
#include <cstdio>
#include <string>

#include "core/streaming.h"
#include "core/synthetic.h"
#include "core/trace_io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"
#include "scenarios/experiment.h"
#include "scenarios/replica_runner.h"
#include "scenarios/spec.h"
#include "util/flags.h"
#include "util/json_io.h"

namespace {

bool pick_scenario(const std::string& name, bb::scenarios::WorkloadConfig& wl) {
    using bb::scenarios::TrafficKind;
    if (name == "tcp") {
        wl.kind = TrafficKind::infinite_tcp;
        return true;
    }
    if (name == "cbr") {
        wl.kind = TrafficKind::cbr_uniform;
        return true;
    }
    if (name == "cbr-multi") {
        wl.kind = TrafficKind::cbr_multi;
        wl.episode_durations = {bb::milliseconds(50), bb::milliseconds(100),
                                bb::milliseconds(150)};
        return true;
    }
    if (name == "web") {
        wl.kind = TrafficKind::web;
        return true;
    }
    return false;
}

// Flush the observability export surfaces at tool exit.  Either file failing
// to write is a tool failure (exit code 1), matching the JSON outputs.
int finish_obs(const std::string& metrics_path, const std::string& trace_path) {
    int rc = 0;
    if (!trace_path.empty()) {
        if (bb::obs::Trace::write(trace_path)) {
            std::printf("trace-out    : wrote %s\n", trace_path.c_str());
        } else {
            rc = 1;
        }
    }
    if (!metrics_path.empty()) {
        if (bb::obs::write_metrics_file(metrics_path)) {
            std::printf("metrics-json : wrote %s\n", metrics_path.c_str());
        } else {
            rc = 1;
        }
    }
    const bb::obs::ProcessStats ps = bb::obs::process_stats();
    std::printf("process      : max RSS %lld KiB, cpu %.2fs user %.2fs sys\n",
                static_cast<long long>(ps.max_rss_kb), ps.user_cpu_s, ps.system_cpu_s);
    return rc;
}

// The bounded-memory pipeline: synthetic congestion generator -> streaming
// scorer -> online estimators, one slot at a time.
int run_stream(std::int64_t slots, double p, bool improved, double mean_on, double mean_off,
               std::uint64_t seed, const std::string& json_path,
               std::int64_t snapshot_slots) {
    using namespace bb;
    if (slots < 1) {
        std::fprintf(stderr, "--slots must be >= 1\n");
        return 1;
    }

    core::SyntheticSeriesGen gen{Rng{seed ^ 0x5EED5ULL}, mean_on, mean_off};
    core::SeriesTruthAccumulator truth;

    core::StreamingAnalyzer analyzer;
    core::ProbeProcessConfig pcfg;
    pcfg.p = p;
    pcfg.improved = improved;
    core::StreamingExperimentScorer scorer{Rng{seed ^ 0xBADA0ULL}, pcfg, analyzer};

    std::printf("streaming %lld slots (p = %.2f%s, on/off = %.1f/%.1f slots)...\n",
                static_cast<long long>(slots), p, improved ? ", improved" : "", mean_on,
                mean_off);
    for (std::int64_t s = 0; s < slots; ++s) {
        const bool congested = gen.next();
        truth.consume(congested);
        scorer.step(congested);
        // Periodic metrics snapshot, keyed on slot count (not wall clock) so
        // output stays deterministic across machines.
        if (snapshot_slots > 0 && (s + 1) % snapshot_slots == 0) {
            obs::logf(obs::LogLevel::info,
                      "snapshot slot %lld/%lld: reports_scored %llu, max RSS %lld KiB",
                      static_cast<long long>(s + 1), static_cast<long long>(slots),
                      static_cast<unsigned long long>(analyzer.reports()),
                      static_cast<long long>(obs::process_stats().max_rss_kb));
        }
    }

    const core::SeriesTruth t = truth.finalize();
    const core::StreamingAnalyzer::Result res = analyzer.finalize();
    const long rss_kb = static_cast<long>(obs::process_stats().max_rss_kb);

    std::printf("\nground truth : frequency %.4f | duration %.2f slots | %zu episodes\n",
                t.frequency, t.mean_duration_slots, t.episodes);
    std::printf("streaming est: frequency %.4f | duration %.2f slots", res.frequency.value,
                res.duration_basic.valid ? res.duration_basic.slots : 0.0);
    if (res.duration_improved.valid) {
        std::printf(" | improved %.2f slots (r_hat %.3f)", res.duration_improved.slots,
                    res.duration_improved.r_hat.value_or(0.0));
    }
    std::printf("\nreports      : %llu scored (%llu experiments started, %d pending "
                "dropped at end)\n",
                static_cast<unsigned long long>(res.reports),
                static_cast<unsigned long long>(scorer.experiments_started()),
                scorer.experiments_pending());
    std::printf("validation   : pair asymmetry %.3f, violation fraction %.4f -> %s\n",
                res.validation.pair_asymmetry, res.validation.violation_fraction,
                res.validation.acceptable() ? "OK" : "SUSPECT");
    std::printf("memory       : max RSS %ld KiB (independent of --slots)\n", rss_kb);

    if (!json_path.empty()) {
        char buf[1024];
        std::snprintf(buf, sizeof(buf),
                      "{\n"
                      "  \"mode\": \"stream\",\n"
                      "  \"slots\": %lld,\n"
                      "  \"p\": %.6f,\n"
                      "  \"improved\": %s,\n"
                      "  \"true_frequency\": %.8f,\n"
                      "  \"true_duration_slots\": %.6f,\n"
                      "  \"est_frequency\": %.8f,\n"
                      "  \"est_duration_slots\": %.6f,\n"
                      "  \"est_duration_improved_slots\": %.6f,\n"
                      "  \"reports\": %llu,\n"
                      "  \"max_rss_kb\": %ld\n"
                      "}\n",
                      static_cast<long long>(slots), p, improved ? "true" : "false",
                      t.frequency, t.mean_duration_slots, res.frequency.value,
                      res.duration_basic.valid ? res.duration_basic.slots : 0.0,
                      res.duration_improved.valid ? res.duration_improved.slots : 0.0,
                      static_cast<unsigned long long>(res.reports), rss_kb);
        if (!write_text_file(json_path, buf)) return 1;
        std::printf("json         : wrote %s\n", json_path.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace bb;

    FlagSet flags{"badabing_sim",
                  "BADABING loss measurement on a simulated dumbbell (SIGCOMM'05 repro)"};
    const auto* spec_path = flags.add_string(
        "spec", "", "load a declarative scenario spec FILE; explicit flags override it");
    const auto* scenario =
        flags.add_string("scenario", "cbr", "traffic: tcp | cbr | cbr-multi | web");
    const auto* p = flags.add_double("p", 0.3, "probe (experiment) probability per 5 ms slot");
    const auto* duration_s = flags.add_int("duration-s", 900, "measured interval, seconds");
    const auto* rate_mbps = flags.add_int("rate-mbps", 30, "bottleneck rate, Mb/s");
    const auto* seed = flags.add_int("seed", 7, "RNG seed (workload and probe process)");
    const auto* improved =
        flags.add_bool("improved", false, "mix in 3-probe extended experiments (Sec 5.3)");
    const auto* red = flags.add_bool("red", false, "use a RED bottleneck instead of drop-tail");
    const auto* hops = flags.add_int("extra-hops", 0, "uncongested upstream hops");
    const auto* alpha = flags.add_double("alpha", -1.0, "marking alpha (-1 = paper rule)");
    const auto* tau_ms = flags.add_int("tau-ms", -1, "marking tau in ms (-1 = paper rule)");
    const auto* trace = flags.add_string("trace", "", "write probe outcomes to FILE");
    const auto* design = flags.add_string("design", "", "write experiment design to FILE");
    const auto* replicas =
        flags.add_int("replicas", 1, "independent replicas (Monte Carlo over seeds)");
    const auto* threads =
        flags.add_int("threads", 0, "worker threads for replicas (0 = all cores)");
    const auto* json =
        flags.add_string("json", "", "write replica aggregate + trajectories to FILE");
    const auto* stream = flags.add_bool(
        "stream", false, "bounded-memory synthetic run: online estimators over --slots slots");
    const auto* slots =
        flags.add_int("slots", 100'000'000, "slot count for --stream (memory-independent)");
    const auto* mean_on =
        flags.add_double("mean-on-slots", 20.0, "mean episode length in slots (--stream)");
    const auto* mean_off =
        flags.add_double("mean-off-slots", 180.0, "mean gap length in slots (--stream)");
    const auto* metrics_json =
        flags.add_string("metrics-json", "", "write obs metrics snapshot to FILE at exit");
    const auto* trace_out = flags.add_string(
        "trace-out", "", "write Chrome trace_event JSON (Perfetto-loadable) to FILE");
    const auto* snapshot_slots = flags.add_int(
        "snapshot-slots", 10'000'000,
        "print a metrics snapshot every N slots in --stream mode (0 = off)");
    if (!flags.parse(argc, argv)) return flags.error().empty() ? 0 : 1;

    // Explicit export flags beat the ambient BB_OBS kill switch.
    if (!metrics_json->empty() || !trace_out->empty()) obs::set_enabled(true);
    if (!trace_out->empty()) obs::Trace::start();

    // --spec supplies every layer's configuration; any flag the user also
    // sets explicitly wins over the spec's value.
    scenarios::ScenarioSpec spec;
    bool have_spec = false;
    if (!spec_path->empty()) {
        auto sr = scenarios::load_scenario_spec_file(*spec_path);
        if (!sr.ok) {
            std::fprintf(stderr, "%s\n", sr.error.c_str());
            return 1;
        }
        spec = std::move(sr.spec);
        have_spec = true;
    }

    const bool stream_mode = *stream || (have_spec && spec.streaming &&
                                         !flags.is_set("stream"));
    const double probe_p = have_spec && !flags.is_set("p") ? spec.badabing.p : *p;
    const bool probe_improved =
        have_spec && !flags.is_set("improved") ? spec.badabing.improved : *improved;
    const std::uint64_t run_seed = have_spec && !flags.is_set("seed")
                                       ? spec.seed
                                       : static_cast<std::uint64_t>(*seed);

    if (stream_mode) {
        const int rc = run_stream(*slots, probe_p, probe_improved, *mean_on, *mean_off,
                                  run_seed, *json, *snapshot_slots);
        const int orc = finish_obs(*metrics_json, *trace_out);
        return rc != 0 ? rc : orc;
    }

    scenarios::TestbedConfig tb = have_spec ? spec.testbed : scenarios::TestbedConfig{};
    if (!have_spec || flags.is_set("rate-mbps")) {
        tb.bottleneck_rate_bps = *rate_mbps * 1'000'000;
    }
    if (!have_spec || flags.is_set("red")) {
        tb.discipline =
            *red ? scenarios::QueueDiscipline::red : scenarios::QueueDiscipline::drop_tail;
    }
    if (!have_spec || flags.is_set("extra-hops")) tb.extra_hops = static_cast<int>(*hops);
    if (!have_spec || flags.is_set("seed")) tb.seed = static_cast<std::uint64_t>(*seed);

    scenarios::WorkloadConfig wl = have_spec ? spec.workload : scenarios::WorkloadConfig{};
    if (!have_spec || flags.is_set("scenario")) {
        if (!pick_scenario(*scenario, wl)) {
            std::fprintf(stderr, "unknown --scenario '%s'\n", scenario->c_str());
            return 1;
        }
    }
    if (!have_spec || flags.is_set("duration-s")) wl.duration = seconds_i(*duration_s);
    wl.seed = run_seed;

    scenarios::TruthConfig tc = have_spec ? spec.truth : scenarios::TruthConfig{};
    if (!have_spec) tc.delay_based = wl.kind == scenarios::TrafficKind::web;

    const std::size_t n_replicas =
        have_spec && !flags.is_set("replicas")
            ? spec.replicas
            : static_cast<std::size_t>(*replicas < 1 ? 1 : *replicas);
    const std::size_t n_threads =
        have_spec && !flags.is_set("threads")
            ? spec.threads
            : static_cast<std::size_t>(*threads < 0 ? 0 : *threads);

    if (n_replicas > 1 || !json->empty()) {
        if (!trace->empty() || !design->empty()) {
            std::fprintf(stderr, "--trace/--design apply to single runs; ignored with "
                                 "--replicas/--json\n");
        }
        scenarios::ReplicaPlan plan;
        plan.testbed = tb;
        plan.workload = wl;
        plan.truth = tc;
        plan.probe = have_spec ? spec.badabing : probes::BadabingConfig{};
        plan.probe.p = probe_p;
        plan.probe.improved = probe_improved;
        if (!have_spec) plan.probe.total_slots = 0;
        if (have_spec) plan.estimator = spec.estimator;
        if (have_spec && (spec.marking_alpha || spec.marking_tau)) {
            plan.marking = scenarios::marking_for(spec);
        }
        if (*alpha >= 0.0 || *tau_ms >= 0) {
            core::MarkingConfig m;
            m.tau = scenarios::tau_for_probe_rate(probe_p, plan.probe.slot_width);
            m.alpha = scenarios::alpha_for_probe_rate(probe_p);
            if (plan.marking) m = *plan.marking;
            if (*alpha >= 0.0) m.alpha = *alpha;
            if (*tau_ms >= 0) m.tau = milliseconds(*tau_ms);
            plan.marking = m;
        }

        scenarios::ReplicaRunner::Config rc;
        rc.replicas = n_replicas;
        rc.threads = n_threads;
        rc.master_seed = run_seed;
        const scenarios::ReplicaRunner runner{rc};

        std::printf("running %zu replicas of %s for %.0f s at %lld Mb/s (p = %.2f%s)...\n",
                    rc.replicas, scenario->c_str(), wl.duration.to_seconds(),
                    static_cast<long long>(tb.bottleneck_rate_bps / 1'000'000), probe_p,
                    probe_improved ? ", improved" : "");
        const auto results = runner.run(plan);
        const auto agg = runner.aggregate(plan, results);

        std::printf("\n%-8s | %-12s | %-10s | %-10s | %-10s\n", "replica", "seed",
                    "true freq", "est freq", "est dur(s)");
        for (const auto& r : results) {
            std::printf("%-8zu | %-12llx | %-10.4f | %-10.4f | %-10.3f\n", r.index,
                        static_cast<unsigned long long>(r.seed), r.truth.frequency,
                        r.est_frequency(), r.est_duration_s(plan.probe.slot_width));
        }
        std::printf("\naggregate (mean +/- 95%% bootstrap CI over %zu replicas):\n",
                    results.size());
        std::printf("  true freq : %.4f (sd %.4f)\n", agg.true_frequency.mean,
                    agg.true_frequency.stddev);
        std::printf("  est freq  : %.4f [%.4f, %.4f]\n", agg.est_frequency.mean,
                    agg.est_frequency.ci.lo, agg.est_frequency.ci.hi);
        std::printf("  true dur  : %.3f s (sd %.3f)\n", agg.true_duration_s.mean,
                    agg.true_duration_s.stddev);
        std::printf("  est dur   : %.3f s [%.3f, %.3f]\n", agg.est_duration_s.mean,
                    agg.est_duration_s.ci.lo, agg.est_duration_s.ci.hi);
        std::printf("  probe load: %.4f of bottleneck\n", agg.offered_load.mean);

        int exit_code = 0;
        if (!json->empty()) {
            const auto doc = scenarios::aggregate_rows_json(
                *scenario, plan.probe.slot_width, {agg}, {results});
            if (write_text_file(*json, doc)) {
                std::printf("json      : wrote %s\n", json->c_str());
            } else {
                exit_code = 1;
            }
        }
        const int orc = finish_obs(*metrics_json, *trace_out);
        return exit_code != 0 ? exit_code : orc;
    }

    scenarios::Experiment exp{tb, wl, tc};
    probes::BadabingConfig bc = have_spec ? spec.badabing : probes::BadabingConfig{};
    bc.p = probe_p;
    bc.improved = probe_improved;
    if (!have_spec) bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);

    std::printf("running %s for %.0f s at %lld Mb/s (p = %.2f%s)...\n", scenario->c_str(),
                wl.duration.to_seconds(),
                static_cast<long long>(tb.bottleneck_rate_bps / 1'000'000), probe_p,
                probe_improved ? ", improved" : "");
    exp.run();

    core::MarkingConfig marking = have_spec && (spec.marking_alpha || spec.marking_tau)
                                      ? scenarios::marking_for(spec)
                                      : exp.default_marking(probe_p);
    if (*alpha >= 0.0) marking.alpha = *alpha;
    if (*tau_ms >= 0) marking.tau = milliseconds(*tau_ms);

    const auto truth = exp.truth();
    const auto res = tool.analyze(marking, have_spec ? spec.estimator
                                                     : core::EstimatorOptions{});

    std::printf("\nground truth : frequency %.4f | duration %.3f s (sigma %.3f) | "
                "%zu episodes\n",
                truth.frequency, truth.mean_duration_s, truth.sd_duration_s, truth.episodes);
    std::printf("badabing     : frequency %.4f | duration %.3f s", res.frequency.value,
                res.duration_basic.valid ? res.duration_basic.seconds(tool.slot_width())
                                         : 0.0);
    if (res.duration_improved.valid) {
        std::printf(" | improved %.3f s (r_hat %.3f)",
                    res.duration_improved.seconds(tool.slot_width()),
                    res.duration_improved.r_hat.value_or(0.0));
    }
    std::printf("\nprobing      : %llu probes, %.2f%% of bottleneck, marking alpha %.2f "
                "tau %.0f ms\n",
                static_cast<unsigned long long>(res.probes_sent),
                100.0 * tool.offered_load_fraction(tb.bottleneck_rate_bps), marking.alpha,
                marking.tau.to_millis());
    std::printf("validation   : pair asymmetry %.3f, violation fraction %.4f -> %s\n",
                res.validation.pair_asymmetry, res.validation.violation_fraction,
                res.validation.acceptable() ? "OK" : "SUSPECT");

    if (!trace->empty()) {
        core::write_trace_file(*trace, tool.outcomes());
        std::printf("trace        : wrote %s\n", trace->c_str());
    }
    if (!design->empty()) {
        core::write_design_file(*design, tool.design().experiments);
        std::printf("design       : wrote %s\n", design->c_str());
    }
    return finish_obs(*metrics_json, *trace_out);
}
