// zing_sim: run a classical Poisson prober (ZING) against the same simulated
// paths, for side-by-side comparison with badabing_sim.
//
//   $ zing_sim --scenario=tcp --hz=10 --packet-bytes=256 --duration-s=900
#include <cstdio>
#include <string>

#include "core/delay_stats.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"
#include "scenarios/experiment.h"
#include "scenarios/spec.h"
#include "util/flags.h"

int main(int argc, char** argv) {
    using namespace bb;

    FlagSet flags{"zing_sim",
                  "Poisson-modulated loss probing on a simulated dumbbell (SIGCOMM'05 repro)"};
    const auto* spec_path = flags.add_string(
        "spec", "", "load a declarative scenario spec FILE; explicit flags override it");
    const auto* scenario =
        flags.add_string("scenario", "cbr", "traffic: tcp | cbr | cbr-multi | web");
    const auto* hz = flags.add_double("hz", 10.0, "mean probe rate, probes per second");
    const auto* packet_bytes = flags.add_int("packet-bytes", 256, "probe payload size");
    const auto* flight = flags.add_int("flight", 1, "packets per flight");
    const auto* duration_s = flags.add_int("duration-s", 900, "measured interval, seconds");
    const auto* rate_mbps = flags.add_int("rate-mbps", 30, "bottleneck rate, Mb/s");
    const auto* seed = flags.add_int("seed", 7, "RNG seed");
    const auto* metrics_json =
        flags.add_string("metrics-json", "", "write obs metrics snapshot to FILE at exit");
    const auto* trace_out = flags.add_string(
        "trace-out", "", "write Chrome trace_event JSON (Perfetto-loadable) to FILE");
    if (!flags.parse(argc, argv)) return flags.error().empty() ? 0 : 1;

    // Explicit export flags beat the ambient BB_OBS kill switch.
    if (!metrics_json->empty() || !trace_out->empty()) obs::set_enabled(true);
    if (!trace_out->empty()) obs::Trace::start();

    // --spec supplies every layer's configuration; any flag the user also
    // sets explicitly wins over the spec's value.
    scenarios::ScenarioSpec spec;
    bool have_spec = false;
    if (!spec_path->empty()) {
        auto sr = scenarios::load_scenario_spec_file(*spec_path);
        if (!sr.ok) {
            std::fprintf(stderr, "%s\n", sr.error.c_str());
            return 1;
        }
        spec = std::move(sr.spec);
        have_spec = true;
    }

    scenarios::TestbedConfig tb = have_spec ? spec.testbed : scenarios::TestbedConfig{};
    if (!have_spec || flags.is_set("rate-mbps")) {
        tb.bottleneck_rate_bps = *rate_mbps * 1'000'000;
    }

    scenarios::WorkloadConfig wl = have_spec ? spec.workload : scenarios::WorkloadConfig{};
    if (!have_spec || flags.is_set("scenario")) {
        if (*scenario == "tcp") {
            wl.kind = scenarios::TrafficKind::infinite_tcp;
        } else if (*scenario == "cbr") {
            wl.kind = scenarios::TrafficKind::cbr_uniform;
        } else if (*scenario == "cbr-multi") {
            wl.kind = scenarios::TrafficKind::cbr_multi;
            wl.episode_durations = {milliseconds(50), milliseconds(100), milliseconds(150)};
        } else if (*scenario == "web") {
            wl.kind = scenarios::TrafficKind::web;
        } else {
            std::fprintf(stderr, "unknown --scenario '%s'\n", scenario->c_str());
            return 1;
        }
    }
    if (!have_spec || flags.is_set("duration-s")) wl.duration = seconds_i(*duration_s);
    if (!have_spec || flags.is_set("seed")) wl.seed = static_cast<std::uint64_t>(*seed);

    scenarios::TruthConfig tc = have_spec ? spec.truth : scenarios::TruthConfig{};
    if (!have_spec) tc.delay_based = wl.kind == scenarios::TrafficKind::web;

    scenarios::Experiment exp{tb, wl, tc};
    probes::ZingProber::Config zc = have_spec ? spec.zing : probes::ZingProber::Config{};
    if (!have_spec || flags.is_set("hz")) zc.mean_interval = seconds(1.0 / *hz);
    if (!have_spec || flags.is_set("packet-bytes")) {
        zc.packet_bytes = static_cast<std::int32_t>(*packet_bytes);
    }
    if (!have_spec || flags.is_set("flight")) zc.packets_per_flight = static_cast<int>(*flight);
    auto& zing = exp.add_zing(zc);

    std::printf("running %s for %.0f s at %lld Mb/s (ZING %.1f Hz, %lld B)...\n",
                scenario->c_str(), wl.duration.to_seconds(),
                static_cast<long long>(tb.bottleneck_rate_bps / 1'000'000),
                1.0 / zc.mean_interval.to_seconds(),
                static_cast<long long>(zc.packet_bytes));
    exp.run();

    const auto truth = exp.truth();
    const auto res = zing.result();
    const auto delays = core::summarize_delays(zing.outcomes());

    std::printf("\nground truth : frequency %.4f | duration %.3f s (%zu episodes)\n",
                truth.frequency, truth.mean_duration_s, truth.episodes);
    std::printf("zing loss    : frequency %.4f | duration %.3f s (sigma %.3f) | "
                "%llu/%llu probes lost in %zu runs\n",
                res.loss_frequency, res.mean_duration_s, res.sd_duration_s,
                static_cast<unsigned long long>(res.lost),
                static_cast<unsigned long long>(res.sent), res.loss_runs);
    if (delays.valid()) {
        std::printf("zing delay   : base %.3f s | queueing p50 %.4f s, p95 %.4f s, "
                    "p99 %.4f s, max %.4f s\n",
                    delays.base_delay.to_seconds(), delays.p50_queueing_s,
                    delays.p95_queueing_s, delays.p99_queueing_s, delays.max_queueing_s);
    }

    // ZING has no streaming analyzer; publish its totals as tool-level
    // counters so the metrics export covers this prober too.
    obs::counter("probes.zing.probes_sent").inc(res.sent);
    obs::counter("probes.zing.probes_lost").inc(res.lost);

    int rc = 0;
    if (!trace_out->empty() && !obs::Trace::write(*trace_out)) rc = 1;
    if (!trace_out->empty() && rc == 0) {
        std::printf("trace-out    : wrote %s\n", trace_out->c_str());
    }
    if (!metrics_json->empty()) {
        if (obs::write_metrics_file(*metrics_json)) {
            std::printf("metrics-json : wrote %s\n", metrics_json->c_str());
        } else {
            rc = 1;
        }
    }
    const obs::ProcessStats ps = obs::process_stats();
    std::printf("process      : max RSS %lld KiB, cpu %.2fs user %.2fs sys\n",
                static_cast<long long>(ps.max_rss_kb), ps.user_cpu_s, ps.system_cpu_s);
    return rc;
}
