// bb_sweep: expand a declarative sweep spec into scenario cells and run them
// through the multi-replica engine, with a content-addressed result cache.
//
//   $ bb_sweep expand examples/ablation_aqm_sweep.json
//   $ bb_sweep run examples/table4.json --out results/ --cache-dir cache/
//
// `expand` prints the grid (cell index, config hash, axis values) without
// running anything.  `run` executes every cell; cells whose hash already
// exists in --cache-dir are loaded from disk instead of recomputed, so a
// repeated run reports 100% cache hits and an edited axis value invalidates
// only the cells it actually touches.
#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"
#include "scenarios/spec.h"
#include "scenarios/sweep.h"
#include "util/flags.h"

namespace {

using namespace bb;

void print_cell_line(const scenarios::SweepCell& cell, const char* status) {
    std::printf("  [%3zu] %s %s", cell.index, cell.config_hash.c_str(), status);
    for (const auto& [path, value] : cell.axis_values) {
        std::printf(" %s=%s", path.c_str(), value.c_str());
    }
    std::printf("\n");
}

int finish_obs(const std::string& metrics_path, const std::string& trace_path) {
    int rc = 0;
    if (!trace_path.empty()) {
        if (obs::Trace::write(trace_path)) {
            std::printf("trace-out    : wrote %s\n", trace_path.c_str());
        } else {
            rc = 1;
        }
    }
    if (!metrics_path.empty()) {
        if (obs::write_metrics_file(metrics_path)) {
            std::printf("metrics-json : wrote %s\n", metrics_path.c_str());
        } else {
            rc = 1;
        }
    }
    return rc;
}

// A scalar from the cell result doc by dotted path, or fallback.
double doc_number(const JsonValue& doc, const char* path, double fallback = 0.0) {
    const JsonValue* v = json_get_path(doc, path);
    return v != nullptr && v->is_number() ? v->number_value : fallback;
}

}  // namespace

int main(int argc, char** argv) {
    FlagSet flags{"bb_sweep",
                  "config-driven experiment sweeps with a content-addressed cell cache"};
    flags.allow_positionals(2, 2, "<run|expand> <spec.json>");
    const auto* out_dir = flags.add_string("out", "sweep_results",
                                           "directory for per-cell results + summary");
    const auto* cache_dir = flags.add_string(
        "cache-dir", "", "reuse finished cells from DIR (hash-keyed JSON; \"\" = off)");
    const auto* threads = flags.add_int(
        "threads", 0, "replica worker threads per cell (0 = each cell's run.threads)");
    const auto* metrics_json =
        flags.add_string("metrics-json", "", "write obs metrics snapshot to FILE at exit");
    const auto* trace_out = flags.add_string(
        "trace-out", "", "write Chrome trace_event JSON (Perfetto-loadable) to FILE");
    if (!flags.parse(argc, argv)) return flags.error().empty() ? 0 : 1;

    const std::string& verb = flags.positionals()[0];
    const std::string& spec_path = flags.positionals()[1];
    if (verb != "run" && verb != "expand") {
        std::fprintf(stderr, "bb_sweep: unknown command '%s' (expected run or expand)\n",
                     verb.c_str());
        return 1;
    }

    if (!metrics_json->empty() || !trace_out->empty()) obs::set_enabled(true);
    if (!trace_out->empty()) obs::Trace::start();

    // A plain scenario spec (no "base" key) is accepted too: it is a sweep
    // with a single cell, so one schema drives both single runs and grids.
    JsonParse parsed = json_parse_file(spec_path);
    if (!parsed.ok) {
        std::fprintf(stderr, "%s\n", parsed.error.c_str());
        return 1;
    }
    scenarios::SweepParseResult sweep;
    if (parsed.value.is_object() && parsed.value.find("base") == nullptr) {
        sweep.ok = true;
        sweep.sweep.base = std::move(parsed.value);
    } else {
        sweep = scenarios::parse_sweep_spec(parsed.value, spec_path);
        if (!sweep.ok) {
            std::fprintf(stderr, "%s\n", sweep.error.c_str());
            return 1;
        }
    }
    if (sweep.sweep.name.empty() || sweep.sweep.name == "sweep") {
        std::string stem = spec_path;
        if (const auto slash = stem.find_last_of("/\\"); slash != std::string::npos) {
            stem = stem.substr(slash + 1);
        }
        if (const auto dot = stem.rfind('.'); dot != std::string::npos && dot > 0) {
            stem = stem.substr(0, dot);
        }
        sweep.sweep.name = stem.empty() ? "sweep" : stem;
    }

    scenarios::ExpandResult grid = scenarios::expand_sweep(sweep.sweep, spec_path);
    if (!grid.ok) {
        std::fprintf(stderr, "%s\n", grid.error.c_str());
        return 1;
    }

    std::printf("sweep %s: %zu cell(s) across %zu axis(es)\n", sweep.sweep.name.c_str(),
                grid.cells.size(), sweep.sweep.axes.size());

    if (verb == "expand") {
        for (const auto& cell : grid.cells) print_cell_line(cell, "-");
        return finish_obs(*metrics_json, *trace_out);
    }

    scenarios::SweepRunner::Config rc;
    rc.out_dir = *out_dir;
    rc.cache_dir = *cache_dir;
    rc.threads = static_cast<std::size_t>(*threads < 0 ? 0 : *threads);
    const scenarios::SweepRunner runner{rc};
    const auto outcome = runner.run(sweep.sweep.name, grid.cells);
    if (!outcome.ok) {
        std::fprintf(stderr, "bb_sweep: %s\n", outcome.error.c_str());
        return 1;
    }

    std::printf("\n%-5s %-16s %-8s | %-9s %-9s | %-9s %-9s\n", "cell", "hash", "state",
                "true freq", "est freq", "true dur", "est dur");
    for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
        const auto& oc = outcome.cells[i];
        const auto& cell = grid.cells[i];
        std::printf("%-5zu %-16s %-8s | %-9.4f %-9.4f | %-9.3f %-9.3f |", oc.index,
                    oc.config_hash.c_str(), oc.cached ? "cached" : "computed",
                    doc_number(oc.result, "aggregate.true_frequency.mean"),
                    doc_number(oc.result, "aggregate.est_frequency.mean"),
                    doc_number(oc.result, "aggregate.true_duration_s.mean"),
                    doc_number(oc.result, "aggregate.est_duration_s.mean"));
        for (const auto& [path, value] : cell.axis_values) {
            std::printf(" %s=%s", path.c_str(), value.c_str());
        }
        std::printf("\n");
    }
    // The cells line is load-bearing: ci.sh greps "computed N" / "cached N"
    // to assert warm-cache behaviour.
    std::printf("\ncells: %zu total, computed %zu, cached %zu\n", outcome.cells.size(),
                outcome.computed, outcome.cached);
    std::printf("results: %s/\n", out_dir->c_str());

    const obs::ProcessStats ps = obs::process_stats();
    std::printf("process      : max RSS %lld KiB, cpu %.2fs user %.2fs sys\n",
                static_cast<long long>(ps.max_rss_kb), ps.user_cpu_s, ps.system_cpu_s);
    return finish_obs(*metrics_json, *trace_out);
}
