// estimate_trace: offline analysis of a probe trace + design produced by
// badabing_sim (or a real receiver writing the same format): congestion
// marking, loss estimates, bootstrap confidence intervals, validation, and
// delay statistics — without re-running any simulation.
//
//   $ badabing_sim --scenario=cbr --trace=run.csv --design=run.design
//   $ estimate_trace --trace=run.csv --design=run.design --slot-ms=5
#include <cstdio>
#include <unordered_map>

#include "core/bootstrap.h"
#include "core/delay_stats.h"
#include "core/estimators.h"
#include "core/markov.h"
#include "core/marking.h"
#include "core/streaming.h"
#include "core/trace_io.h"
#include "core/validation.h"
#include "core/windowed.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/trace.h"
#include "scenarios/spec.h"
#include "util/flags.h"

namespace {

// Shared exit path: flush the obs export files and report process stats.
int finish_obs(const std::string& metrics_path, const std::string& trace_path) {
    int rc = 0;
    if (!trace_path.empty()) {
        if (bb::obs::Trace::write(trace_path)) {
            std::printf("trace-out    : wrote %s\n", trace_path.c_str());
        } else {
            rc = 1;
        }
    }
    if (!metrics_path.empty()) {
        if (bb::obs::write_metrics_file(metrics_path)) {
            std::printf("metrics-json : wrote %s\n", metrics_path.c_str());
        } else {
            rc = 1;
        }
    }
    const bb::obs::ProcessStats ps = bb::obs::process_stats();
    std::printf("process      : max RSS %lld KiB, cpu %.2fs user %.2fs sys\n",
                static_cast<long long>(ps.max_rss_kb), ps.user_cpu_s, ps.system_cpu_s);
    return rc;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace bb;
    using namespace bb::core;

    FlagSet flags{"estimate_trace", "offline BADABING estimation from a probe trace"};
    const auto* spec_path = flags.add_string(
        "spec", "",
        "scenario spec FILE supplying slot width + marking; explicit flags override it");
    const auto* trace_path = flags.add_string("trace", "", "probe trace file (required)");
    const auto* design_path = flags.add_string("design", "", "experiment design file (required)");
    const auto* slot_ms = flags.add_int("slot-ms", 5, "slot width used by the sender, ms");
    const auto* alpha = flags.add_double("alpha", 0.1, "marking alpha");
    const auto* tau_ms = flags.add_int("tau-ms", 40, "marking tau, ms");
    const auto* replicates = flags.add_int("bootstrap", 200, "bootstrap replicates (0 = off)");
    const auto* seed = flags.add_int("seed", 1, "bootstrap RNG seed");
    const auto* stream = flags.add_bool(
        "stream", false,
        "stream the design through the online estimators (no report vector; "
        "skips bootstrap/markov/stationarity)");
    const auto* metrics_json =
        flags.add_string("metrics-json", "", "write obs metrics snapshot to FILE at exit");
    const auto* trace_out = flags.add_string(
        "trace-out", "", "write Chrome trace_event JSON (Perfetto-loadable) to FILE");
    if (!flags.parse(argc, argv)) return flags.error().empty() ? 0 : 1;
    // Explicit export flags beat the ambient BB_OBS kill switch.
    if (!metrics_json->empty() || !trace_out->empty()) obs::set_enabled(true);
    if (!trace_out->empty()) obs::Trace::start();
    if (trace_path->empty() || design_path->empty()) {
        std::fprintf(stderr, "estimate_trace: --trace and --design are required\n");
        return 1;
    }

    // --spec carries the sender's slot width and the marking rule so analysis
    // of a recorded trace uses the same configuration that produced it.
    scenarios::ScenarioSpec spec;
    bool have_spec = false;
    if (!spec_path->empty()) {
        auto sr = scenarios::load_scenario_spec_file(*spec_path);
        if (!sr.ok) {
            std::fprintf(stderr, "%s\n", sr.error.c_str());
            return 1;
        }
        spec = std::move(sr.spec);
        have_spec = true;
    }

    const auto probes = read_trace_file(*trace_path);
    const TimeNs slot = have_spec && !flags.is_set("slot-ms") ? spec.badabing.slot_width
                                                              : milliseconds(*slot_ms);

    MarkingConfig marking;
    if (have_spec) marking = scenarios::marking_for(spec);
    if (!have_spec || flags.is_set("alpha")) marking.alpha = *alpha;
    if (!have_spec || flags.is_set("tau-ms")) marking.tau = milliseconds(*tau_ms);
    CongestionMarker marker{marking};
    const auto marks = marker.mark(probes);

    std::unordered_map<SlotIndex, bool> congested;
    congested.reserve(marks.size());
    for (const auto& m : marks) congested[m.slot] = m.congested;
    const auto is_congested = [&congested](SlotIndex s) {
        const auto it = congested.find(s);
        return it != congested.end() && it->second;
    };

    if (*stream) {
        // The marker needs the full probe record (two-pass tau/alpha rule),
        // but the design is scored record by record into the online
        // estimators — no experiment or report vector is materialized.
        StreamingAnalyzer analyzer;
        std::uint64_t n_experiments = 0;
        auto score = make_fn_sink<Experiment>([&](const Experiment& e) {
            ++n_experiments;
            if (e.kind == ExperimentKind::basic) {
                analyzer.consume({ExperimentKind::basic,
                                  basic_code(is_congested(e.start_slot),
                                             is_congested(e.start_slot + 1))});
            } else {
                analyzer.consume({ExperimentKind::extended,
                                  extended_code(is_congested(e.start_slot),
                                                is_congested(e.start_slot + 1),
                                                is_congested(e.start_slot + 2))});
            }
        });
        for_each_design_record_file(*design_path, score);

        const auto res = analyzer.finalize();
        const auto delays = summarize_delays(probes);
        std::printf("trace        : %zu probes, %llu experiments (streamed)\n", probes.size(),
                    static_cast<unsigned long long>(n_experiments));
        std::printf("frequency    : %.5f  (online moment estimator, Sec 5.2.2)\n",
                    res.frequency.value);
        std::printf("duration     : %.4f s (basic)",
                    res.duration_basic.valid ? res.duration_basic.seconds(slot) : 0.0);
        if (res.duration_improved.valid) {
            std::printf("  |  %.4f s (improved, r_hat %.3f)",
                        res.duration_improved.seconds(slot),
                        res.duration_improved.r_hat.value_or(0.0));
        }
        std::printf("\nvalidation   : pair asymmetry %.3f, violations %.4f -> %s\n",
                    res.validation.pair_asymmetry, res.validation.violation_fraction,
                    res.validation.acceptable() ? "OK" : "SUSPECT");
        if (delays.valid()) {
            std::printf("delays       : base %.4f s, queueing p95 %.4f s, loss-conditional "
                        "%.4f s\n",
                        delays.base_delay.to_seconds(), delays.p95_queueing_s,
                        delays.loss_conditional_queueing_s);
        }
        std::printf("note         : bootstrap/markov/stationarity need the full report "
                    "sequence; run without --stream for those\n");
        return finish_obs(*metrics_json, *trace_out);
    }

    const auto experiments = read_design_file(*design_path);
    const auto results = score_experiments(experiments, is_congested);

    StateCounts counts;
    for (const auto& r : results) counts.add(r);

    // The batch path never goes through StreamingAnalyzer, so publish the
    // same metrics it would have (keeps both modes comparable in exports).
    obs::counter("core.reports_scored").inc(results.size());
    obs::counter("core.reports.b00").inc(counts.basic[0]);
    obs::counter("core.reports.b01").inc(counts.basic[1]);
    obs::counter("core.reports.b10").inc(counts.basic[2]);
    obs::counter("core.reports.b11").inc(counts.basic[3]);
    obs::counter("core.reports.extended").inc(counts.extended_total());
    const auto freq = estimate_frequency(counts);
    const auto dur = estimate_duration_basic(counts);
    const auto dur_improved = estimate_duration_improved(counts);
    const auto markov = estimate_markov(tally_pairs(results));
    const auto validation = validate(counts);
    const auto delays = summarize_delays(probes);
    const SlotIndex last_slot = experiments.empty()
                                    ? 0
                                    : experiments.back().start_slot + 3;
    const auto stationarity = check_stationarity(experiments, results, last_slot);

    std::printf("trace        : %zu probes, %zu experiments\n", probes.size(),
                experiments.size());
    std::printf("frequency    : %.5f  (moment estimator, Sec 5.2.2)\n", freq.value);
    std::printf("duration     : %.4f s (basic)", dur.valid ? dur.seconds(slot) : 0.0);
    if (dur_improved.valid) {
        std::printf("  |  %.4f s (improved, r_hat %.3f)", dur_improved.seconds(slot),
                    dur_improved.r_hat.value_or(0.0));
    }
    std::printf("\nmarkov (param): frequency %.5f, duration %.4f s  (Sec 8 extension)\n",
                markov.valid ? markov.frequency : 0.0,
                markov.valid ? markov.duration_seconds(slot) : 0.0);
    std::printf("validation   : pair asymmetry %.3f, violations %.4f -> %s\n",
                validation.pair_asymmetry, validation.violation_fraction,
                validation.acceptable() ? "OK" : "SUSPECT");
    if (delays.valid()) {
        std::printf("delays       : base %.4f s, queueing p95 %.4f s, loss-conditional "
                    "%.4f s\n",
                    delays.base_delay.to_seconds(), delays.p95_queueing_s,
                    delays.loss_conditional_queueing_s);
    }
    std::printf("stationarity : first half F %.5f vs second half F %.5f -> %s\n",
                stationarity.first_half_frequency, stationarity.second_half_frequency,
                stationarity.looks_stationary ? "stationary" : "NON-STATIONARY");

    if (*replicates > 0) {
        BootstrapConfig bcfg;
        bcfg.replicates = static_cast<std::size_t>(*replicates);
        Rng rng{have_spec && !flags.is_set("seed") ? spec.seed
                                                   : static_cast<std::uint64_t>(*seed)};
        const auto ci = bootstrap_estimates(results, bcfg, rng);
        if (ci.frequency.valid) {
            std::printf("bootstrap    : frequency %.5f [%.5f, %.5f] (90%%)\n",
                        ci.frequency.point, ci.frequency.lo, ci.frequency.hi);
        }
        if (ci.duration_slots.valid) {
            std::printf("               duration %.4f s [%.4f, %.4f] (90%%)\n",
                        ci.duration_slots.point * slot.to_seconds(),
                        ci.duration_slots.lo * slot.to_seconds(),
                        ci.duration_slots.hi * slot.to_seconds());
        }
    }
    return finish_obs(*metrics_json, *trace_out);
}
