// estimate_trace: offline analysis of a probe trace + design produced by
// badabing_sim (or a real receiver writing the same format): congestion
// marking, loss estimates, bootstrap confidence intervals, validation, and
// delay statistics — without re-running any simulation.
//
//   $ badabing_sim --scenario=cbr --trace=run.csv --design=run.design
//   $ estimate_trace --trace=run.csv --design=run.design --slot-ms=5
#include <cstdio>
#include <unordered_map>

#include "core/bootstrap.h"
#include "core/delay_stats.h"
#include "core/estimators.h"
#include "core/markov.h"
#include "core/marking.h"
#include "core/streaming.h"
#include "core/trace_io.h"
#include "core/validation.h"
#include "core/windowed.h"
#include "util/flags.h"

int main(int argc, char** argv) {
    using namespace bb;
    using namespace bb::core;

    FlagSet flags{"estimate_trace", "offline BADABING estimation from a probe trace"};
    const auto* trace_path = flags.add_string("trace", "", "probe trace file (required)");
    const auto* design_path = flags.add_string("design", "", "experiment design file (required)");
    const auto* slot_ms = flags.add_int("slot-ms", 5, "slot width used by the sender, ms");
    const auto* alpha = flags.add_double("alpha", 0.1, "marking alpha");
    const auto* tau_ms = flags.add_int("tau-ms", 40, "marking tau, ms");
    const auto* replicates = flags.add_int("bootstrap", 200, "bootstrap replicates (0 = off)");
    const auto* seed = flags.add_int("seed", 1, "bootstrap RNG seed");
    const auto* stream = flags.add_bool(
        "stream", false,
        "stream the design through the online estimators (no report vector; "
        "skips bootstrap/markov/stationarity)");
    if (!flags.parse(argc, argv)) return flags.error().empty() ? 0 : 1;
    if (trace_path->empty() || design_path->empty()) {
        std::fprintf(stderr, "estimate_trace: --trace and --design are required\n");
        return 1;
    }

    const auto probes = read_trace_file(*trace_path);
    const TimeNs slot = milliseconds(*slot_ms);

    MarkingConfig marking;
    marking.alpha = *alpha;
    marking.tau = milliseconds(*tau_ms);
    CongestionMarker marker{marking};
    const auto marks = marker.mark(probes);

    std::unordered_map<SlotIndex, bool> congested;
    congested.reserve(marks.size());
    for (const auto& m : marks) congested[m.slot] = m.congested;
    const auto is_congested = [&congested](SlotIndex s) {
        const auto it = congested.find(s);
        return it != congested.end() && it->second;
    };

    if (*stream) {
        // The marker needs the full probe record (two-pass tau/alpha rule),
        // but the design is scored record by record into the online
        // estimators — no experiment or report vector is materialized.
        StreamingAnalyzer analyzer;
        std::uint64_t n_experiments = 0;
        auto score = make_fn_sink<Experiment>([&](const Experiment& e) {
            ++n_experiments;
            if (e.kind == ExperimentKind::basic) {
                analyzer.consume({ExperimentKind::basic,
                                  basic_code(is_congested(e.start_slot),
                                             is_congested(e.start_slot + 1))});
            } else {
                analyzer.consume({ExperimentKind::extended,
                                  extended_code(is_congested(e.start_slot),
                                                is_congested(e.start_slot + 1),
                                                is_congested(e.start_slot + 2))});
            }
        });
        for_each_design_record_file(*design_path, score);

        const auto res = analyzer.finalize();
        const auto delays = summarize_delays(probes);
        std::printf("trace        : %zu probes, %llu experiments (streamed)\n", probes.size(),
                    static_cast<unsigned long long>(n_experiments));
        std::printf("frequency    : %.5f  (online moment estimator, Sec 5.2.2)\n",
                    res.frequency.value);
        std::printf("duration     : %.4f s (basic)",
                    res.duration_basic.valid ? res.duration_basic.seconds(slot) : 0.0);
        if (res.duration_improved.valid) {
            std::printf("  |  %.4f s (improved, r_hat %.3f)",
                        res.duration_improved.seconds(slot),
                        res.duration_improved.r_hat.value_or(0.0));
        }
        std::printf("\nvalidation   : pair asymmetry %.3f, violations %.4f -> %s\n",
                    res.validation.pair_asymmetry, res.validation.violation_fraction,
                    res.validation.acceptable() ? "OK" : "SUSPECT");
        if (delays.valid()) {
            std::printf("delays       : base %.4f s, queueing p95 %.4f s, loss-conditional "
                        "%.4f s\n",
                        delays.base_delay.to_seconds(), delays.p95_queueing_s,
                        delays.loss_conditional_queueing_s);
        }
        std::printf("note         : bootstrap/markov/stationarity need the full report "
                    "sequence; run without --stream for those\n");
        return 0;
    }

    const auto experiments = read_design_file(*design_path);
    const auto results = score_experiments(experiments, is_congested);

    StateCounts counts;
    for (const auto& r : results) counts.add(r);
    const auto freq = estimate_frequency(counts);
    const auto dur = estimate_duration_basic(counts);
    const auto dur_improved = estimate_duration_improved(counts);
    const auto markov = estimate_markov(tally_pairs(results));
    const auto validation = validate(counts);
    const auto delays = summarize_delays(probes);
    const SlotIndex last_slot = experiments.empty()
                                    ? 0
                                    : experiments.back().start_slot + 3;
    const auto stationarity = check_stationarity(experiments, results, last_slot);

    std::printf("trace        : %zu probes, %zu experiments\n", probes.size(),
                experiments.size());
    std::printf("frequency    : %.5f  (moment estimator, Sec 5.2.2)\n", freq.value);
    std::printf("duration     : %.4f s (basic)", dur.valid ? dur.seconds(slot) : 0.0);
    if (dur_improved.valid) {
        std::printf("  |  %.4f s (improved, r_hat %.3f)", dur_improved.seconds(slot),
                    dur_improved.r_hat.value_or(0.0));
    }
    std::printf("\nmarkov (param): frequency %.5f, duration %.4f s  (Sec 8 extension)\n",
                markov.valid ? markov.frequency : 0.0,
                markov.valid ? markov.duration_seconds(slot) : 0.0);
    std::printf("validation   : pair asymmetry %.3f, violations %.4f -> %s\n",
                validation.pair_asymmetry, validation.violation_fraction,
                validation.acceptable() ? "OK" : "SUSPECT");
    if (delays.valid()) {
        std::printf("delays       : base %.4f s, queueing p95 %.4f s, loss-conditional "
                    "%.4f s\n",
                    delays.base_delay.to_seconds(), delays.p95_queueing_s,
                    delays.loss_conditional_queueing_s);
    }
    std::printf("stationarity : first half F %.5f vs second half F %.5f -> %s\n",
                stationarity.first_half_frequency, stationarity.second_half_frequency,
                stationarity.looks_stationary ? "stationary" : "NON-STATIONARY");

    if (*replicates > 0) {
        BootstrapConfig bcfg;
        bcfg.replicates = static_cast<std::size_t>(*replicates);
        Rng rng{static_cast<std::uint64_t>(*seed)};
        const auto ci = bootstrap_estimates(results, bcfg, rng);
        if (ci.frequency.valid) {
            std::printf("bootstrap    : frequency %.5f [%.5f, %.5f] (90%%)\n",
                        ci.frequency.point, ci.frequency.lo, ci.frequency.hi);
        }
        if (ci.duration_slots.valid) {
            std::printf("               duration %.4f s [%.4f, %.4f] (90%%)\n",
                        ci.duration_slots.point * slot.to_seconds(),
                        ci.duration_slots.lo * slot.to_seconds(),
                        ci.duration_slots.hi * slot.to_seconds());
        }
    }
    return 0;
}
