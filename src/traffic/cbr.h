// Constant-bit-rate traffic source (the Iperf baseline of paper §4).
#ifndef BB_TRAFFIC_CBR_H
#define BB_TRAFFIC_CBR_H

#include <cstdint>

#include "sim/packet.h"
#include "sim/scheduler.h"

namespace bb::traffic {

class CbrSource {
public:
    struct Config {
        std::int64_t rate_bps{50'000'000};
        std::int32_t packet_bytes{1500};
        sim::FlowId flow{9000};
        TimeNs start{TimeNs::zero()};
        TimeNs stop{TimeNs::max()};
    };

    CbrSource(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out);

    CbrSource(const CbrSource&) = delete;
    CbrSource& operator=(const CbrSource&) = delete;

    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }

private:
    void emit();

    sim::Scheduler* sched_;
    Config cfg_;
    sim::PacketSink* out_;
    TimeNs interval_;
    std::uint64_t sent_{0};
    std::uint64_t next_id_;
};

}  // namespace bb::traffic

#endif  // BB_TRAFFIC_CBR_H
