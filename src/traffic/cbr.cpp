#include "traffic/cbr.h"

#include <atomic>
#include <stdexcept>

namespace bb::traffic {

namespace {
std::uint64_t fresh_id_block() {
    static std::atomic<std::uint64_t> next_block{0x4000};
    return next_block.fetch_add(1) << 32;
}

std::int64_t checked_rate(std::int64_t rate_bps) {
    if (rate_bps <= 0) throw std::invalid_argument{"CbrSource: rate must be > 0"};
    return rate_bps;
}
}  // namespace

CbrSource::CbrSource(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out)
    : sched_{&sched},
      cfg_{cfg},
      out_{&out},
      interval_{transmission_time(cfg.packet_bytes, checked_rate(cfg.rate_bps))},
      next_id_{fresh_id_block()} {
    sched_->schedule_at(cfg_.start, [this] { emit(); });
}

void CbrSource::emit() {
    if (sched_->now() >= cfg_.stop) return;
    sim::Packet pkt;
    pkt.id = ++next_id_;
    pkt.flow = cfg_.flow;
    pkt.kind = sim::PacketKind::data;
    pkt.size_bytes = cfg_.packet_bytes;
    pkt.seq = static_cast<std::int64_t>(sent_);
    pkt.sent_at = sched_->now();
    ++sent_;
    out_->accept(pkt);
    sched_->schedule_after(interval_, [this] { emit(); });
}

}  // namespace bb::traffic
