#include "traffic/episodic.h"

#include <atomic>
#include <stdexcept>

namespace bb::traffic {

namespace {
std::uint64_t fresh_id_block() {
    static std::atomic<std::uint64_t> next_block{0x8000};
    return next_block.fetch_add(1) << 32;
}
}  // namespace

EpisodicBurstSource::EpisodicBurstSource(sim::Scheduler& sched, const Config& cfg,
                                         sim::PacketSink& out, Rng rng)
    : sched_{&sched},
      cfg_{cfg},
      out_{&out},
      rng_{std::move(rng)},
      burst_rate_bps_{cfg.burst_rate_bps > 0 ? cfg.burst_rate_bps
                                             : 2 * cfg.bottleneck_rate_bps},
      packet_interval_{transmission_time(cfg.packet_bytes, burst_rate_bps_)},
      next_id_{fresh_id_block()} {
    if (cfg_.episode_durations.empty()) {
        throw std::invalid_argument{"EpisodicBurstSource: need at least one duration"};
    }
    if (cfg_.bottleneck_capacity_bytes <= 0) {
        throw std::invalid_argument{"EpisodicBurstSource: bottleneck capacity required"};
    }
    sched_->schedule_at(cfg_.start, [this] { schedule_next_burst(); });
}

TimeNs EpisodicBurstSource::burst_length_for(TimeNs episode) const noexcept {
    // Net queue growth rate while bursting: burst + background - capacity.
    const double net_bps = static_cast<double>(burst_rate_bps_) +
                           cfg_.background_load * static_cast<double>(cfg_.bottleneck_rate_bps) -
                           static_cast<double>(cfg_.bottleneck_rate_bps);
    const double fill_seconds =
        net_bps > 0 ? static_cast<double>(cfg_.bottleneck_capacity_bytes) * 8.0 / net_bps
                    : 0.0;
    return seconds(fill_seconds) + episode;
}

void EpisodicBurstSource::schedule_next_burst() {
    const TimeNs gap = rng_.exponential(cfg_.mean_gap);
    const TimeNs at = sched_->now() + gap;
    if (at >= cfg_.stop) return;
    sched_->schedule_at(at, [this] { start_burst(); });
}

void EpisodicBurstSource::start_burst() {
    ++bursts_;
    const auto idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cfg_.episode_durations.size()) - 1));
    const TimeNs burst_end = sched_->now() + burst_length_for(cfg_.episode_durations[idx]);
    emit(burst_end);
    schedule_next_burst();
}

void EpisodicBurstSource::emit(TimeNs burst_end) {
    if (sched_->now() >= burst_end || sched_->now() >= cfg_.stop) return;
    sim::Packet pkt;
    pkt.id = ++next_id_;
    pkt.flow = cfg_.flow;
    pkt.kind = sim::PacketKind::data;
    pkt.size_bytes = cfg_.packet_bytes;
    pkt.seq = static_cast<std::int64_t>(sent_);
    pkt.sent_at = sched_->now();
    ++sent_;
    out_->accept(pkt);
    sched_->schedule_after(packet_interval_, [this, burst_end] { emit(burst_end); });
}

}  // namespace bb::traffic
