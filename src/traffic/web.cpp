#include "traffic/web.h"

#include <algorithm>
#include <cmath>

namespace bb::traffic {

WebSessionGenerator::WebSessionGenerator(sim::Scheduler& sched, const Config& cfg,
                                         sim::PacketSink& forward, sim::PacketSink& reverse,
                                         sim::FlowDemux& fwd_demux, sim::FlowDemux& rev_demux,
                                         Rng rng)
    : sched_{&sched},
      cfg_{cfg},
      forward_{&forward},
      reverse_{&reverse},
      fwd_demux_{&fwd_demux},
      rev_demux_{&rev_demux},
      rng_{std::move(rng)},
      next_flow_{cfg.first_flow},
      session_rate_{cfg.session_rate_per_s} {
    sched_->schedule_at(cfg_.start, [this] { schedule_next_session(); });
    if (cfg_.target_offered_bps > 0) {
        sched_->schedule_at(cfg_.start + cfg_.adjust_interval, [this] { adjust_rate(); });
    }
}

void WebSessionGenerator::adjust_rate() {
    if (sched_->now() >= cfg_.stop) return;
    const std::int64_t window_bytes = bytes_offered_ - offered_at_last_adjust_;
    offered_at_last_adjust_ = bytes_offered_;
    const double actual_bps =
        static_cast<double>(window_bytes) * 8.0 / cfg_.adjust_interval.to_seconds();
    // Multiplicative correction toward the target, clamped so one noisy
    // window (a single heavy-tailed object) cannot destabilize the rate.
    const double ratio = actual_bps > 0
                             ? static_cast<double>(cfg_.target_offered_bps) / actual_bps
                             : 2.0;
    session_rate_ *= std::clamp(ratio, 0.5, 2.0);
    session_rate_ = std::clamp(session_rate_, 0.05, 1000.0);
    sched_->schedule_after(cfg_.adjust_interval, [this] { adjust_rate(); });
}

void WebSessionGenerator::schedule_next_session() {
    const TimeNs gap = seconds(rng_.exponential(1.0 / session_rate_));
    const TimeNs at = sched_->now() + gap;
    if (at >= cfg_.stop) return;
    sched_->schedule_at(at, [this] {
        start_session();
        schedule_next_session();
    });
}

void WebSessionGenerator::start_session() {
    ++sessions_;
    // Geometric number of objects with the configured mean (at least 1).
    const double u = rng_.uniform01();
    const double p = 1.0 / std::max(cfg_.objects_per_session_mean, 1.0);
    const auto n = static_cast<std::uint32_t>(
        std::max(1.0, std::ceil(std::log1p(-u) / std::log1p(-p))));
    start_object(n);
}

std::int64_t WebSessionGenerator::draw_object_bytes() {
    const double raw = rng_.pareto(cfg_.pareto_alpha, cfg_.object_min_bytes);
    return static_cast<std::int64_t>(std::min(raw, cfg_.object_max_bytes));
}

void WebSessionGenerator::start_object(std::uint32_t remaining_objects) {
    if (remaining_objects == 0 || sched_->now() >= cfg_.stop) return;
    ++objects_;

    tcp::TcpConfig tcp_cfg = cfg_.tcp;
    const std::int64_t object_bytes = draw_object_bytes();
    // Round up to whole segments; the flow finishes when the last segment is
    // cumulatively acknowledged.
    const std::int64_t segs =
        std::max<std::int64_t>(1, (object_bytes + tcp_cfg.segment_bytes - 1) /
                                       tcp_cfg.segment_bytes);
    tcp_cfg.bytes_to_send = segs * tcp_cfg.segment_bytes;
    bytes_offered_ += tcp_cfg.bytes_to_send;

    const sim::FlowId flow = next_flow_++;
    flows_.push_back(std::make_unique<tcp::TcpFlow>(*sched_, flow, tcp_cfg, *forward_,
                                                    *reverse_, *fwd_demux_, *rev_demux_));
    tcp::TcpFlow& f = *flows_.back();
    f.sender().on_complete([this, remaining_objects] {
        ++completed_;
        const TimeNs think = rng_.exponential(cfg_.think_time_mean);
        sched_->schedule_after(think,
                               [this, remaining_objects] { start_object(remaining_objects - 1); });
    });
    f.sender().start(sched_->now());
}

}  // namespace bb::traffic
