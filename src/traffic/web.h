// Harpoon-style self-similar web traffic (paper §4.2, Tables 3/6):
// Poisson session arrivals; each session fetches a sequence of objects with
// heavy-tailed (Pareto) sizes over its own TCP connection, separated by
// exponential think times.  The aggregate produces bursty episodes of
// overload at the bottleneck.
#ifndef BB_TRAFFIC_WEB_H
#define BB_TRAFFIC_WEB_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/demux.h"
#include "sim/packet.h"
#include "sim/scheduler.h"
#include "tcp/tcp_flow.h"
#include "util/rng.h"

namespace bb::traffic {

class WebSessionGenerator {
public:
    struct Config {
        double session_rate_per_s{4.0};     // Poisson arrival rate of sessions
        double objects_per_session_mean{6.0};  // geometric
        double pareto_alpha{1.2};           // heavy-tailed object sizes
        double object_min_bytes{10'000.0};  // Pareto scale (minimum size)
        double object_max_bytes{50e6};      // truncate the tail
        TimeNs think_time_mean{milliseconds(500)};
        sim::FlowId first_flow{20'000};     // flow-id block for this generator
        TimeNs start{TimeNs::zero()};
        TimeNs stop{TimeNs::max()};
        tcp::TcpConfig tcp{};
        // Harpoon's defining feature is *self-configuration*: it tunes its
        // session arrival process to hit a target average byte rate
        // (Sommers & Barford, IMC'04).  When > 0, the generator adjusts the
        // session rate every `adjust_interval` toward this offered load.
        std::int64_t target_offered_bps{0};
        TimeNs adjust_interval{seconds_i(5)};
    };

    WebSessionGenerator(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& forward,
                        sim::PacketSink& reverse, sim::FlowDemux& fwd_demux,
                        sim::FlowDemux& rev_demux, Rng rng);

    WebSessionGenerator(const WebSessionGenerator&) = delete;
    WebSessionGenerator& operator=(const WebSessionGenerator&) = delete;

    [[nodiscard]] std::uint64_t sessions_started() const noexcept { return sessions_; }
    [[nodiscard]] std::uint64_t objects_started() const noexcept { return objects_; }
    [[nodiscard]] std::uint64_t objects_completed() const noexcept { return completed_; }
    [[nodiscard]] std::int64_t bytes_offered() const noexcept { return bytes_offered_; }
    // Current (possibly self-tuned) session arrival rate.
    [[nodiscard]] double session_rate_per_s() const noexcept { return session_rate_; }

private:
    void schedule_next_session();
    void start_session();
    void start_object(std::uint32_t remaining_objects);
    void adjust_rate();
    [[nodiscard]] std::int64_t draw_object_bytes();

    sim::Scheduler* sched_;
    Config cfg_;
    sim::PacketSink* forward_;
    sim::PacketSink* reverse_;
    sim::FlowDemux* fwd_demux_;
    sim::FlowDemux* rev_demux_;
    Rng rng_;

    sim::FlowId next_flow_;
    std::uint64_t sessions_{0};
    std::uint64_t objects_{0};
    std::uint64_t completed_{0};
    std::int64_t bytes_offered_{0};
    double session_rate_{0.0};
    std::int64_t offered_at_last_adjust_{0};
    std::vector<std::unique_ptr<tcp::TcpFlow>> flows_;
};

}  // namespace bb::traffic

#endif  // BB_TRAFFIC_WEB_H
