// Engineered loss-episode generator (paper §4.2, Tables 2/5):
// overload bursts spaced at exponential intervals, each sized so that the
// bottleneck buffer fills and then overflows for (approximately) a chosen
// episode duration.
#ifndef BB_TRAFFIC_EPISODIC_H
#define BB_TRAFFIC_EPISODIC_H

#include <cstdint>
#include <vector>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/time.h"

namespace bb::traffic {

class EpisodicBurstSource {
public:
    struct Config {
        // Episode durations to draw from uniformly.  One entry gives the
        // paper's "constant duration" scenario; {50,100,150} ms gives the
        // Table 5 scenario.
        std::vector<TimeNs> episode_durations{milliseconds(68)};
        TimeNs mean_gap{seconds_i(10)};  // exponential episode spacing
        // 0 => 2x the bottleneck rate, which reproduces the paper's probe
        // survival behaviour (about half of single-packet probes pass through
        // an episode unscathed, Figure 7).
        std::int64_t burst_rate_bps{0};
        std::int32_t packet_bytes{1500};
        sim::FlowId flow{9100};
        TimeNs start{milliseconds(500)};
        TimeNs stop{TimeNs::max()};
        // Bottleneck parameters needed to size the queue-filling preamble.
        std::int64_t bottleneck_rate_bps{155'000'000};
        std::int64_t bottleneck_capacity_bytes{0};
        // Background load present on the link, as a fraction of capacity
        // (used to compute the effective fill rate during a burst).
        double background_load{0.5};
    };

    EpisodicBurstSource(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out,
                        Rng rng);

    EpisodicBurstSource(const EpisodicBurstSource&) = delete;
    EpisodicBurstSource& operator=(const EpisodicBurstSource&) = delete;

    [[nodiscard]] std::uint64_t bursts_started() const noexcept { return bursts_; }
    [[nodiscard]] std::uint64_t packets_sent() const noexcept { return sent_; }

    // How long a burst must last so that drops persist for `episode`: the
    // queue fill time at the net overload rate, plus the episode itself.
    [[nodiscard]] TimeNs burst_length_for(TimeNs episode) const noexcept;

private:
    void schedule_next_burst();
    void start_burst();
    void emit(TimeNs burst_end);

    sim::Scheduler* sched_;
    Config cfg_;
    sim::PacketSink* out_;
    Rng rng_;
    std::int64_t burst_rate_bps_;
    TimeNs packet_interval_;
    std::uint64_t bursts_{0};
    std::uint64_t sent_{0};
    std::uint64_t next_id_;
};

}  // namespace bb::traffic

#endif  // BB_TRAFFIC_EPISODIC_H
