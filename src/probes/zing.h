// ZING-style Poisson-modulated prober (paper §4.2) and the classical
// estimator applied to its output: loss frequency = fraction of probes lost;
// a loss episode = a maximal run of consecutively lost probes (Zhang et al.
// definition quoted in §4.2); episode duration = time from the first to the
// last lost probe of the run.
#ifndef BB_PROBES_ZING_H
#define BB_PROBES_ZING_H

#include <cstdint>
#include <vector>

#include "core/report_sink.h"
#include "core/types.h"
#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bb::probes {

struct ZingResult {
    std::uint64_t sent{0};
    std::uint64_t received{0};
    std::uint64_t lost{0};
    double loss_frequency{0.0};       // lost / sent
    double mean_duration_s{0.0};      // mean span of consecutive-loss runs
    double sd_duration_s{0.0};
    std::size_t loss_runs{0};         // number of runs (episodes seen by ZING)
    std::uint64_t max_run_length{0};  // longest run of consecutive losses
};

class ZingProber final : public sim::PacketSink {
public:
    struct Config {
        TimeNs mean_interval{milliseconds(100)};  // 10 Hz in the paper
        std::int32_t packet_bytes{256};
        int packets_per_flight{1};
        sim::FlowId flow{7000};
        TimeNs start{TimeNs::zero()};
        TimeNs stop{TimeNs::max()};
    };

    // Probes are emitted into `out` (the path toward the bottleneck); the
    // caller binds this object into the far-side demux so it receives its
    // own probes.
    ZingProber(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out, Rng rng);

    ZingProber(const ZingProber&) = delete;
    ZingProber& operator=(const ZingProber&) = delete;

    void accept(const sim::Packet& pkt) override;  // receiver side

    [[nodiscard]] ZingResult result() const;

    // Per-probe records (ZING measured one-way delay as well as loss, §4.2);
    // feed these to core::summarize_delays for the delay view of the path.
    [[nodiscard]] std::vector<core::ProbeOutcome> outcomes() const;
    void stream_outcomes(core::OutcomeSink& sink) const;

    [[nodiscard]] std::uint64_t probes_sent() const noexcept { return send_times_.size(); }
    [[nodiscard]] std::int64_t bytes_sent() const noexcept { return bytes_sent_; }

private:
    void emit();

    sim::Scheduler* sched_;
    Config cfg_;
    sim::PacketSink* out_;
    Rng rng_;
    std::uint64_t next_id_;

    std::vector<TimeNs> send_times_;   // indexed by probe sequence
    std::vector<bool> received_;       // indexed by probe sequence
    std::vector<TimeNs> owd_;          // one-way delay of received probes
    std::int64_t bytes_sent_{0};
};

// Online form of the ZING loss-run analysis: consume probe outcomes in send
// order and fold consecutive-loss runs as they close, so the classical
// estimator too runs in O(1) memory.  finalize() is bit-identical to
// ZingProber::result() over the same outcome sequence.
class ZingRunAccumulator final : public core::OutcomeSink {
public:
    void consume(const core::ProbeOutcome& po) override;

    [[nodiscard]] ZingResult finalize() const;

private:
    ZingResult partial_{};       // running sent/received/lost/runs tallies
    RunningStats durations_;
    TimeNs run_start_{TimeNs::zero()};
    TimeNs last_lost_{TimeNs::zero()};
    std::uint64_t run_len_{0};
};

}  // namespace bb::probes

#endif  // BB_PROBES_ZING_H
