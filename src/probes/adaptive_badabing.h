// Open-ended BADABING measurement (paper §5.1/§7): instead of a fixed number
// of slots, the sender makes the per-slot Bernoulli(p) decision online and
// periodically evaluates the §5.4 validation-based stopping rule on the data
// collected so far; probing ceases as soon as the rule fires ("take
// measurements continuously, and report when the validation techniques
// confirm that the estimation is robust").
#ifndef BB_PROBES_ADAPTIVE_BADABING_H
#define BB_PROBES_ADAPTIVE_BADABING_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/estimators.h"
#include "core/marking.h"
#include "core/types.h"
#include "core/validation.h"
#include "probes/badabing.h"
#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace bb::probes {

struct AdaptiveBadabingConfig {
    TimeNs slot_width{milliseconds(5)};
    double p{0.3};
    bool improved{true};  // extended experiments feed the validation tests
    double extended_fraction{0.5};
    int packets_per_probe{3};
    std::int32_t packet_bytes{600};
    TimeNs intra_probe_gap{microseconds(30)};
    sim::FlowId flow{7900};
    TimeNs start{TimeNs::zero()};
    TimeNs max_duration{seconds_i(3600)};  // hard cap on the open-ended run
    TimeNs evaluation_interval{seconds_i(30)};
    // Only probes at least this old count as complete during evaluation
    // (in flight packets would otherwise read as losses).
    TimeNs settle_margin{seconds_i(1)};
    core::MarkingConfig marking{};
    core::StoppingRule::Config stopping{};
};

class AdaptiveBadabingTool final : public sim::PacketSink {
public:
    AdaptiveBadabingTool(sim::Scheduler& sched, const AdaptiveBadabingConfig& cfg,
                         sim::PacketSink& out, Rng rng);

    AdaptiveBadabingTool(const AdaptiveBadabingTool&) = delete;
    AdaptiveBadabingTool& operator=(const AdaptiveBadabingTool&) = delete;

    void accept(const sim::Packet& pkt) override;  // receiver side

    [[nodiscard]] bool stopped() const noexcept { return stopped_; }
    [[nodiscard]] core::StoppingRule::Decision decision() const noexcept { return decision_; }
    [[nodiscard]] TimeNs stopped_at() const noexcept { return stopped_at_; }
    [[nodiscard]] std::uint64_t probes_sent() const noexcept { return probes_sent_; }
    [[nodiscard]] std::size_t experiments_started() const noexcept {
        return experiments_.size();
    }

    // Estimates over everything measured so far (or the final data after the
    // rule fired).
    struct Snapshot {
        core::FrequencyEstimate frequency;
        core::DurationEstimate duration_basic;
        core::DurationEstimate duration_improved;
        core::ValidationReport validation;
    };
    [[nodiscard]] Snapshot snapshot() const;

private:
    void slot_tick();
    void emit_probe(core::SlotIndex slot);
    void evaluate();
    [[nodiscard]] core::StateCounts counts_up_to(TimeNs horizon) const;

    sim::Scheduler* sched_;
    AdaptiveBadabingConfig cfg_;
    sim::PacketSink* out_;
    Rng rng_;
    core::StoppingRule rule_;
    std::uint64_t next_id_;

    core::SlotIndex current_slot_{0};
    std::vector<core::Experiment> experiments_;
    std::unordered_map<core::SlotIndex, TimeNs> probe_sent_at_;  // slot -> send time
    struct SlotRecord {
        int received{0};
        TimeNs max_owd{TimeNs::zero()};
    };
    std::unordered_map<core::SlotIndex, SlotRecord> records_;

    bool stopped_{false};
    core::StoppingRule::Decision decision_{core::StoppingRule::Decision::keep_going};
    TimeNs stopped_at_{TimeNs::zero()};
    std::uint64_t probes_sent_{0};
};

}  // namespace bb::probes

#endif  // BB_PROBES_ADAPTIVE_BADABING_H
