// BADABING measurement tool over the simulator (paper §6).
//
// The sender realizes the §5 probe process: time is divided into slots of
// `slot_width`; a pre-drawn design decides at which slots experiments start;
// each probed slot gets one probe of `packets_per_probe` back-to-back
// packets.  The receiver records per-probe loss and one-way delay; at the
// end of the run, outcomes are marked congested/uncongested with the tau /
// alpha rule (core::CongestionMarker), experiments are scored, and both the
// basic and improved estimators plus the validation report are produced.
#ifndef BB_PROBES_BADABING_H
#define BB_PROBES_BADABING_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/estimators.h"
#include "core/marking.h"
#include "core/probe_process.h"
#include "core/report_sink.h"
#include "core/types.h"
#include "core/validation.h"
#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace bb::probes {

struct BadabingConfig {
    TimeNs slot_width{milliseconds(5)};   // paper §6.2
    double p{0.3};                        // probe (experiment) probability
    bool improved{false};                 // mix in 3-probe extended experiments
    double extended_fraction{0.5};
    int packets_per_probe{3};             // paper §6.2
    std::int32_t packet_bytes{600};       // paper §6.1
    TimeNs intra_probe_gap{microseconds(30)};  // back-to-back spacing (§6.1)
    sim::FlowId flow{7700};
    TimeNs start{TimeNs::zero()};
    core::SlotIndex total_slots{180'000};  // paper §6.2: 900 s at 5 ms
    // Send ECN-capable (ECT) probe packets: an AQM hop CE-marks instead of
    // dropping them, and the outcome records the mark as a congestion
    // observation (ProbeOutcome::ce_marked).
    bool ecn_probes{false};
    // Receiver clock error relative to the sender (§7 discussion).  A
    // constant offset shifts all OWDs and must not change the estimates;
    // skew (drift, in parts-per-million of elapsed time) slowly moves the
    // measured delays and eventually corrupts the (1 - alpha) threshold —
    // the reason the paper points at on-line synchronization algorithms.
    TimeNs receiver_clock_offset{TimeNs::zero()};
    double receiver_clock_skew_ppm{0.0};
};

struct BadabingResult {
    core::FrequencyEstimate frequency;
    core::DurationEstimate duration_basic;
    core::DurationEstimate duration_improved;
    core::ValidationReport validation;
    core::StateCounts counts;

    std::uint64_t probes_sent{0};
    std::uint64_t packets_sent{0};
    std::uint64_t packets_lost{0};
    std::int64_t bytes_sent{0};
    std::size_t experiments{0};

    double frequency_value() const noexcept { return frequency.value; }
    double duration_seconds(TimeNs slot_width) const noexcept {
        return duration_basic.valid ? duration_basic.seconds(slot_width) : 0.0;
    }
};

class BadabingTool final : public sim::PacketSink {
public:
    // Probes are emitted into `out`; bind this object into the far-side
    // demux under `cfg.flow` so it receives them.
    BadabingTool(sim::Scheduler& sched, const BadabingConfig& cfg, sim::PacketSink& out,
                 Rng rng);

    BadabingTool(const BadabingTool&) = delete;
    BadabingTool& operator=(const BadabingTool&) = delete;

    void accept(const sim::Packet& pkt) override;  // receiver side

    // Evaluate after the simulation drained.  Marking parameters are supplied
    // here so one run can be re-analyzed under many tau/alpha settings
    // (Figure 9) without re-simulating.
    [[nodiscard]] BadabingResult analyze(const core::MarkingConfig& marking,
                                         core::EstimatorOptions opts = {}) const;

    // Raw probe outcomes (sorted by send time), for custom analyses.
    [[nodiscard]] std::vector<core::ProbeOutcome> outcomes() const;

    // Streaming forms: push each outcome / scored experiment report into a
    // sink instead of materializing a vector.  emit_reports still marks over
    // the full outcome record internally (the tau/alpha marker is two-pass),
    // but the report consumer runs in O(1) memory.
    void stream_outcomes(core::OutcomeSink& sink) const;
    void emit_reports(const core::MarkingConfig& marking, core::ReportSink& sink) const;

    [[nodiscard]] const core::ProbeDesign& design() const noexcept { return design_; }
    [[nodiscard]] std::int64_t bytes_sent() const noexcept { return bytes_sent_; }
    [[nodiscard]] TimeNs slot_width() const noexcept { return cfg_.slot_width; }

    // Offered probe load as a fraction of `link_rate_bps` over the run.
    [[nodiscard]] double offered_load_fraction(std::int64_t link_rate_bps) const noexcept;

private:
    struct SlotRecord {
        int received{0};
        TimeNs max_owd{TimeNs::zero()};
        bool ce{false};
    };

    void emit_probe(core::SlotIndex slot);

    sim::Scheduler* sched_;
    BadabingConfig cfg_;
    sim::PacketSink* out_;
    core::ProbeDesign design_;
    std::uint64_t next_id_;

    std::unordered_map<core::SlotIndex, SlotRecord> records_;
    std::uint64_t probes_sent_{0};
    std::uint64_t packets_sent_{0};
    std::int64_t bytes_sent_{0};
};

// Fixed-interval prober used for the probe-length calibration experiments
// (Figures 7 and 8): probes of N packets every `interval`, independent of p.
class FixedIntervalProber final : public sim::PacketSink {
public:
    struct Config {
        TimeNs interval{milliseconds(10)};
        int packets_per_probe{3};
        std::int32_t packet_bytes{600};
        TimeNs intra_probe_gap{microseconds(30)};
        sim::FlowId flow{7800};
        TimeNs start{TimeNs::zero()};
        TimeNs stop{TimeNs::max()};
    };

    FixedIntervalProber(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out);

    FixedIntervalProber(const FixedIntervalProber&) = delete;
    FixedIntervalProber& operator=(const FixedIntervalProber&) = delete;

    void accept(const sim::Packet& pkt) override;

    // Outcomes sorted by send time; `slot` is the probe's ordinal number.
    [[nodiscard]] std::vector<core::ProbeOutcome> outcomes() const;
    void stream_outcomes(core::OutcomeSink& sink) const;

private:
    void emit();

    sim::Scheduler* sched_;
    Config cfg_;
    sim::PacketSink* out_;
    std::uint64_t next_id_;

    std::vector<TimeNs> send_times_;
    std::vector<int> received_;
    std::vector<TimeNs> max_owd_;
};

}  // namespace bb::probes

#endif  // BB_PROBES_BADABING_H
