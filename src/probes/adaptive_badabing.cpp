#include "probes/adaptive_badabing.h"

#include <algorithm>
#include <atomic>

#include "core/probe_process.h"

namespace bb::probes {

namespace {
std::uint64_t fresh_id_block() {
    static std::atomic<std::uint64_t> next_block{0xF000};
    return next_block.fetch_add(1) << 32;
}
}  // namespace

AdaptiveBadabingTool::AdaptiveBadabingTool(sim::Scheduler& sched,
                                           const AdaptiveBadabingConfig& cfg,
                                           sim::PacketSink& out, Rng rng)
    : sched_{&sched},
      cfg_{cfg},
      out_{&out},
      rng_{std::move(rng)},
      rule_{cfg.stopping},
      next_id_{fresh_id_block()} {
    sched_->schedule_at(cfg_.start, [this] { slot_tick(); });
    sched_->schedule_at(cfg_.start + cfg_.evaluation_interval, [this] { evaluate(); });
}

void AdaptiveBadabingTool::slot_tick() {
    if (stopped_) return;
    const TimeNs elapsed = sched_->now() - cfg_.start;
    if (elapsed >= cfg_.max_duration) {
        stopped_ = true;
        stopped_at_ = sched_->now();
        return;
    }

    if (rng_.bernoulli(cfg_.p)) {
        const bool extended = cfg_.improved && rng_.bernoulli(cfg_.extended_fraction);
        const core::Experiment e{current_slot_, extended ? core::ExperimentKind::extended
                                                         : core::ExperimentKind::basic};
        experiments_.push_back(e);
        for (int k = 0; k < e.probes(); ++k) {
            const core::SlotIndex slot = current_slot_ + k;
            if (probe_sent_at_.contains(slot)) continue;  // shared with overlap
            probe_sent_at_.emplace(slot, cfg_.start + cfg_.slot_width * slot);
            if (k == 0) {
                emit_probe(slot);
            } else {
                sched_->schedule_after(cfg_.slot_width * k,
                                       [this, slot] { emit_probe(slot); });
            }
        }
    }
    ++current_slot_;
    sched_->schedule_after(cfg_.slot_width, [this] { slot_tick(); });
}

void AdaptiveBadabingTool::emit_probe(core::SlotIndex slot) {
    ++probes_sent_;
    for (int k = 0; k < cfg_.packets_per_probe; ++k) {
        sim::Packet pkt;
        pkt.id = ++next_id_;
        pkt.flow = cfg_.flow;
        pkt.kind = sim::PacketKind::probe;
        pkt.size_bytes = cfg_.packet_bytes;
        pkt.seq = slot;
        pkt.probe_pkt = k;
        pkt.sent_at = sched_->now();
        if (k == 0) {
            out_->accept(pkt);
        } else {
            // Parked in the per-replica pool; re-stamped at emission time.
            const sim::PacketPool::Handle h = sched_->packet_pool().put(pkt);
            sched_->schedule_after(cfg_.intra_probe_gap * k, [this, h] {
                sim::Packet p = sched_->packet_pool().take(h);
                p.sent_at = sched_->now();
                out_->accept(p);
            });
        }
    }
}

void AdaptiveBadabingTool::accept(const sim::Packet& pkt) {
    if (pkt.kind != sim::PacketKind::probe || pkt.flow != cfg_.flow) return;
    SlotRecord& rec = records_[pkt.seq];
    ++rec.received;
    rec.max_owd = std::max(rec.max_owd, sched_->now() - pkt.sent_at);
}

core::StateCounts AdaptiveBadabingTool::counts_up_to(TimeNs horizon) const {
    // Assemble outcomes for probes old enough to have settled.
    std::vector<core::ProbeOutcome> outcomes;
    outcomes.reserve(probe_sent_at_.size());
    core::SlotIndex last_settled = -1;
    for (const auto& [slot, sent_at] : probe_sent_at_) {
        if (sent_at > horizon) continue;
        core::ProbeOutcome po;
        po.slot = slot;
        po.send_time = sent_at;
        po.packets_sent = cfg_.packets_per_probe;
        if (const auto it = records_.find(slot); it != records_.end()) {
            po.packets_lost = cfg_.packets_per_probe - it->second.received;
            po.max_owd = it->second.max_owd;
            po.any_received = it->second.received > 0;
        } else {
            po.packets_lost = cfg_.packets_per_probe;
        }
        outcomes.push_back(po);
        last_settled = std::max(last_settled, slot);
    }
    std::sort(outcomes.begin(), outcomes.end(),
              [](const core::ProbeOutcome& a, const core::ProbeOutcome& b) {
                  return a.send_time < b.send_time;
              });

    core::CongestionMarker marker{cfg_.marking};
    const auto marks = marker.mark(outcomes);
    std::unordered_map<core::SlotIndex, bool> congested;
    congested.reserve(marks.size());
    for (const auto& m : marks) congested[m.slot] = m.congested;

    std::vector<core::Experiment> complete;
    complete.reserve(experiments_.size());
    for (const auto& e : experiments_) {
        if (e.start_slot + e.probes() - 1 <= last_settled) complete.push_back(e);
    }
    core::CountsSink counts;
    core::score_experiments_into(
        complete,
        [&congested](core::SlotIndex s) {
            const auto it = congested.find(s);
            return it != congested.end() && it->second;
        },
        counts);
    return counts.counts();
}

void AdaptiveBadabingTool::evaluate() {
    if (stopped_) return;
    const auto counts = counts_up_to(sched_->now() - cfg_.settle_margin);
    decision_ = rule_.evaluate(counts);
    if (decision_ != core::StoppingRule::Decision::keep_going) {
        stopped_ = true;
        stopped_at_ = sched_->now();
        return;
    }
    sched_->schedule_after(cfg_.evaluation_interval, [this] { evaluate(); });
}

AdaptiveBadabingTool::Snapshot AdaptiveBadabingTool::snapshot() const {
    Snapshot snap;
    const auto counts = counts_up_to(sched_->now());
    snap.frequency = core::estimate_frequency(counts);
    snap.duration_basic = core::estimate_duration_basic(counts);
    snap.duration_improved = core::estimate_duration_improved(counts);
    snap.validation = core::validate(counts);
    return snap;
}

}  // namespace bb::probes
