// STING-style loss measurement (Savage, INFOCOM 2000; paper §2 related
// work): infer one-way packet loss from a single host by exploiting TCP's
// cumulative-ACK rules, no receiver cooperation beyond a TCP responder.
//
// Two phases, as in the original tool:
//   1. *data seeding*: send a burst of N single-segment probes;
//   2. *hole filling*: repeatedly retransmit the first unacknowledged
//      segment until the cumulative ACK reaches the end.  Each hole that
//      needed filling corresponds to one lost data segment, so
//      forward loss rate = holes / N  — independent of ACK (reverse) loss.
//
// This measures the *packet loss rate* a TCP connection experiences.  Like
// ZING it says nothing about episode durations, which is exactly the gap
// BADABING fills; the bench `related_tools` shows all three side by side.
#ifndef BB_PROBES_STING_H
#define BB_PROBES_STING_H

#include <cstdint>
#include <vector>

#include "core/report_sink.h"
#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/time.h"

namespace bb::probes {

struct StingResult {
    std::uint64_t data_packets{0};   // seeded segments across all bursts
    std::uint64_t holes_filled{0};   // segments that required retransmission
    std::uint64_t retransmissions{0};
    std::size_t bursts_completed{0};
    double forward_loss_rate{0.0};   // holes / data_packets
};

// Per-burst deltas, streamed to an optional sink as each burst completes so
// long-running STING sessions can report incrementally instead of only via
// the cumulative result().
struct StingBurstReport {
    std::size_t burst_index{0};      // 0-based completion order
    std::uint64_t data_packets{0};   // seeded in this burst
    std::uint64_t holes_filled{0};
    std::uint64_t retransmissions{0};
    TimeNs completed_at{TimeNs::zero()};

    [[nodiscard]] double loss_rate() const noexcept {
        return data_packets > 0
                   ? static_cast<double>(holes_filled) / static_cast<double>(data_packets)
                   : 0.0;
    }
};

// The sender half.  Wire its output toward the bottleneck and bind a
// tcp::TcpReceiver (the "responder") for the same flow on the far side, with
// the responder's ACK path routed back to this object.
class StingProber final : public sim::PacketSink {
public:
    struct Config {
        int burst_segments{100};          // N, per burst
        TimeNs seed_spacing{milliseconds(10)};  // spacing within a burst
        TimeNs burst_interval{seconds_i(5)};    // gap between bursts
        TimeNs retransmit_timeout{milliseconds(500)};
        // Timer jitter fraction (real hosts' timers are not phase-exact;
        // without it, a deterministic simulation can phase-lock retransmit
        // attempts against periodic cross traffic).
        double rto_jitter{0.2};
        std::int32_t segment_bytes{41};   // STING used tiny segments
        sim::FlowId flow{7600};
        TimeNs start{TimeNs::zero()};
        TimeNs stop{TimeNs::max()};
    };

    StingProber(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out,
                Rng rng);
    ~StingProber() override;

    StingProber(const StingProber&) = delete;
    StingProber& operator=(const StingProber&) = delete;

    void accept(const sim::Packet& pkt) override;  // ACKs from the responder

    [[nodiscard]] StingResult result() const;
    [[nodiscard]] bool burst_in_progress() const noexcept { return in_burst_; }

    // Stream per-burst reports into `sink` as bursts complete.  The sink must
    // outlive the prober (or be cleared with set_burst_sink(nullptr)).
    void set_burst_sink(core::Sink<StingBurstReport>* sink) noexcept {
        burst_sink_ = sink;
    }

private:
    void start_burst();
    void send_segment(std::int64_t seq, bool retransmission);
    void on_rto();
    void finish_burst();
    void arm_rto();
    void disarm_rto();

    sim::Scheduler* sched_;
    Config cfg_;
    sim::PacketSink* out_;
    Rng rng_;
    std::uint64_t next_id_;

    bool in_burst_{false};
    std::int64_t burst_base_{0};   // first seq of the current burst
    std::int64_t burst_end_{0};    // one past the last seq of the burst
    std::int64_t cum_ack_{0};      // highest cumulative ACK seen
    std::int64_t last_hole_{-1};   // seq currently being filled
    bool filling_{false};

    sim::EventId rto_event_{0};
    bool rto_armed_{false};

    std::uint64_t data_packets_{0};
    std::uint64_t holes_filled_{0};
    std::uint64_t retransmissions_{0};
    std::size_t bursts_completed_{0};

    // Cumulative counters snapshotted at burst start, for per-burst deltas.
    std::uint64_t burst_start_data_{0};
    std::uint64_t burst_start_holes_{0};
    std::uint64_t burst_start_retx_{0};
    core::Sink<StingBurstReport>* burst_sink_{nullptr};
};

}  // namespace bb::probes

#endif  // BB_PROBES_STING_H
