#include "probes/sting.h"

#include <atomic>

namespace bb::probes {

namespace {
std::uint64_t fresh_id_block() {
    static std::atomic<std::uint64_t> next_block{0x5716};
    return next_block.fetch_add(1) << 32;
}
}  // namespace

StingProber::StingProber(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out,
                         Rng rng)
    : sched_{&sched},
      cfg_{cfg},
      out_{&out},
      rng_{std::move(rng)},
      next_id_{fresh_id_block()} {
    sched_->schedule_at(cfg_.start, [this] { start_burst(); });
}

StingProber::~StingProber() { disarm_rto(); }

void StingProber::start_burst() {
    if (sched_->now() >= cfg_.stop) return;
    in_burst_ = true;
    filling_ = false;
    last_hole_ = -1;
    burst_start_data_ = data_packets_;
    burst_start_holes_ = holes_filled_;
    burst_start_retx_ = retransmissions_;
    burst_base_ = cum_ack_;  // sequence space continues across bursts
    burst_end_ = burst_base_ + static_cast<std::int64_t>(cfg_.burst_segments) *
                                   cfg_.segment_bytes;
    // Phase 1: seed the burst.
    for (int k = 0; k < cfg_.burst_segments; ++k) {
        const std::int64_t seq = burst_base_ + static_cast<std::int64_t>(k) *
                                                   cfg_.segment_bytes;
        sched_->schedule_after(cfg_.seed_spacing * k,
                               [this, seq] { send_segment(seq, false); });
    }
    // Phase 2 begins when the seeding window has drained (or stalls).
    sched_->schedule_after(cfg_.seed_spacing * cfg_.burst_segments + cfg_.retransmit_timeout,
                           [this] { on_rto(); });
}

void StingProber::send_segment(std::int64_t seq, bool retransmission) {
    sim::Packet pkt;
    pkt.id = ++next_id_;
    pkt.flow = cfg_.flow;
    pkt.kind = sim::PacketKind::data;
    pkt.size_bytes = cfg_.segment_bytes;
    pkt.seq = seq;
    pkt.sent_at = sched_->now();
    if (retransmission) {
        ++retransmissions_;
    } else {
        ++data_packets_;
    }
    out_->accept(pkt);
}

void StingProber::accept(const sim::Packet& pkt) {
    if (pkt.kind != sim::PacketKind::ack || pkt.flow != cfg_.flow || !in_burst_) return;
    if (pkt.ack_seq <= cum_ack_) return;  // duplicate
    cum_ack_ = pkt.ack_seq;
    if (cum_ack_ >= burst_end_) {
        finish_burst();
        return;
    }
    // The cumulative ACK stalled below the end: the byte at cum_ack_ is a
    // hole.  Fill it (each distinct hole is one seeding loss).
    if (!filling_) return;  // still seeding; wait for phase 2
    if (cum_ack_ != last_hole_) {
        last_hole_ = cum_ack_;
        ++holes_filled_;
        send_segment(cum_ack_, true);
        disarm_rto();
        arm_rto();
    }
}

void StingProber::on_rto() {
    rto_armed_ = false;
    if (!in_burst_) return;
    if (cum_ack_ >= burst_end_) {
        finish_burst();
        return;
    }
    // Enter / continue phase 2: the current hole (first unacked byte).
    filling_ = true;
    if (cum_ack_ != last_hole_) {
        last_hole_ = cum_ack_;
        ++holes_filled_;
    }
    send_segment(cum_ack_, true);  // (re)fill; counts once per distinct hole
    arm_rto();
}

void StingProber::finish_burst() {
    in_burst_ = false;
    filling_ = false;
    disarm_rto();
    if (burst_sink_) {
        StingBurstReport report;
        report.burst_index = bursts_completed_;
        report.data_packets = data_packets_ - burst_start_data_;
        report.holes_filled = holes_filled_ - burst_start_holes_;
        report.retransmissions = retransmissions_ - burst_start_retx_;
        report.completed_at = sched_->now();
        burst_sink_->consume(report);
    }
    ++bursts_completed_;
    sched_->schedule_after(cfg_.burst_interval, [this] { start_burst(); });
}

void StingProber::arm_rto() {
    rto_armed_ = true;
    const double jitter = 1.0 + rng_.uniform(-cfg_.rto_jitter, cfg_.rto_jitter);
    const TimeNs timeout = seconds(cfg_.retransmit_timeout.to_seconds() * jitter);
    rto_event_ = sched_->schedule_after(timeout, [this] { on_rto(); });
}

void StingProber::disarm_rto() {
    if (rto_armed_) {
        sched_->cancel(rto_event_);
        rto_armed_ = false;
    }
}

StingResult StingProber::result() const {
    StingResult res;
    res.data_packets = data_packets_;
    res.holes_filled = holes_filled_;
    res.retransmissions = retransmissions_;
    res.bursts_completed = bursts_completed_;
    res.forward_loss_rate =
        data_packets_ > 0
            ? static_cast<double>(holes_filled_) / static_cast<double>(data_packets_)
            : 0.0;
    return res;
}

}  // namespace bb::probes
