#include "probes/zing.h"

#include <algorithm>
#include <atomic>

namespace bb::probes {

namespace {
std::uint64_t fresh_id_block() {
    static std::atomic<std::uint64_t> next_block{0xC000};
    return next_block.fetch_add(1) << 32;
}
}  // namespace

ZingProber::ZingProber(sim::Scheduler& sched, const Config& cfg, sim::PacketSink& out, Rng rng)
    : sched_{&sched}, cfg_{cfg}, out_{&out}, rng_{std::move(rng)}, next_id_{fresh_id_block()} {
    sched_->schedule_at(cfg_.start, [this] { emit(); });
}

void ZingProber::emit() {
    if (sched_->now() >= cfg_.stop) return;
    for (int k = 0; k < cfg_.packets_per_flight; ++k) {
        sim::Packet pkt;
        pkt.id = ++next_id_;
        pkt.flow = cfg_.flow;
        pkt.kind = sim::PacketKind::probe;
        pkt.size_bytes = cfg_.packet_bytes;
        pkt.seq = static_cast<std::int64_t>(send_times_.size());
        pkt.probe_pkt = k;
        pkt.sent_at = sched_->now();
        send_times_.push_back(sched_->now());
        received_.push_back(false);
        owd_.push_back(TimeNs::zero());
        bytes_sent_ += cfg_.packet_bytes;
        out_->accept(pkt);
    }
    sched_->schedule_after(rng_.exponential(cfg_.mean_interval), [this] { emit(); });
}

void ZingProber::accept(const sim::Packet& pkt) {
    if (pkt.kind != sim::PacketKind::probe || pkt.flow != cfg_.flow) return;
    const auto seq = static_cast<std::size_t>(pkt.seq);
    if (seq < received_.size()) {
        received_[seq] = true;
        owd_[seq] = sched_->now() - pkt.sent_at;
    }
}

void ZingProber::stream_outcomes(core::OutcomeSink& sink) const {
    for (std::size_t i = 0; i < send_times_.size(); ++i) {
        core::ProbeOutcome po;
        po.slot = static_cast<core::SlotIndex>(i);
        po.send_time = send_times_[i];
        po.packets_sent = 1;
        po.packets_lost = received_[i] ? 0 : 1;
        po.max_owd = owd_[i];
        po.any_received = received_[i];
        sink.consume(po);
    }
}

std::vector<core::ProbeOutcome> ZingProber::outcomes() const {
    core::VectorSink<core::ProbeOutcome> sink;
    sink.reserve(send_times_.size());
    stream_outcomes(sink);
    return sink.take();
}

ZingResult ZingProber::result() const {
    ZingRunAccumulator acc;
    stream_outcomes(acc);
    return acc.finalize();
}

void ZingRunAccumulator::consume(const core::ProbeOutcome& po) {
    ++partial_.sent;
    if (po.any_received) {
        ++partial_.received;
        if (run_len_ > 0) {
            // A run closes on the first received probe after it; its span is
            // first-lost .. last-lost, exactly the batch send_times_[i-1]
            // minus send_times_[run_start].
            durations_.add((last_lost_ - run_start_).to_seconds());
            partial_.max_run_length = std::max(partial_.max_run_length, run_len_);
            ++partial_.loss_runs;
            run_len_ = 0;
        }
    } else {
        ++partial_.lost;
        if (run_len_ == 0) run_start_ = po.send_time;
        last_lost_ = po.send_time;
        ++run_len_;
    }
}

ZingResult ZingRunAccumulator::finalize() const {
    ZingResult res = partial_;
    RunningStats durations = durations_;
    if (run_len_ > 0) {
        durations.add((last_lost_ - run_start_).to_seconds());
        res.max_run_length = std::max(res.max_run_length, run_len_);
        ++res.loss_runs;
    }
    res.loss_frequency =
        res.sent > 0 ? static_cast<double>(res.lost) / static_cast<double>(res.sent) : 0.0;
    res.mean_duration_s = durations.mean();
    res.sd_duration_s = durations.stddev();
    return res;
}

}  // namespace bb::probes
