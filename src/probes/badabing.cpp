#include "probes/badabing.h"

#include <algorithm>
#include <atomic>

#include "core/streaming.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/contract.h"

namespace bb::probes {

namespace {
std::uint64_t fresh_id_block() {
    static std::atomic<std::uint64_t> next_block{0xE000};
    return next_block.fetch_add(1) << 32;
}
}  // namespace

BadabingTool::BadabingTool(sim::Scheduler& sched, const BadabingConfig& cfg,
                           sim::PacketSink& out, Rng rng)
    : sched_{&sched}, cfg_{cfg}, out_{&out}, next_id_{fresh_id_block()} {
    core::ProbeProcessConfig pcfg;
    pcfg.p = cfg_.p;
    pcfg.improved = cfg_.improved;
    pcfg.extended_fraction = cfg_.extended_fraction;
    design_ = core::design_probe_process(rng, cfg_.total_slots, pcfg);

    for (const core::SlotIndex slot : design_.probe_slots) {
        const TimeNs at = cfg_.start + cfg_.slot_width * slot;
        sched_->schedule_at(at, [this, slot] { emit_probe(slot); });
    }
}

void BadabingTool::emit_probe(core::SlotIndex slot) {
    ++probes_sent_;
    static obs::Counter& sent_ctr = obs::counter("probes.badabing.probes_sent");
    sent_ctr.inc();
    for (int k = 0; k < cfg_.packets_per_probe; ++k) {
        sim::Packet pkt;
        pkt.id = ++next_id_;
        pkt.flow = cfg_.flow;
        pkt.kind = sim::PacketKind::probe;
        pkt.size_bytes = cfg_.packet_bytes;
        pkt.seq = slot;
        pkt.probe_pkt = k;
        pkt.sent_at = sched_->now();
        pkt.ecn_ect = cfg_.ecn_probes;
        ++packets_sent_;
        bytes_sent_ += cfg_.packet_bytes;
        // Back-to-back emission: successive packets leave `intra_probe_gap`
        // apart, per the capabilities of the paper's hosts (~30 us).
        if (k == 0) {
            out_->accept(pkt);
        } else {
            // Parked in the per-replica pool; re-stamped at emission time.
            const sim::PacketPool::Handle h = sched_->packet_pool().put(pkt);
            sched_->schedule_after(cfg_.intra_probe_gap * k, [this, h] {
                sim::Packet p = sched_->packet_pool().take(h);
                p.sent_at = sched_->now();
                out_->accept(p);
            });
        }
    }
}

void BadabingTool::accept(const sim::Packet& pkt) {
    if (pkt.kind != sim::PacketKind::probe || pkt.flow != cfg_.flow) return;
    static obs::Counter& recv_ctr = obs::counter("probes.badabing.packets_received");
    recv_ctr.inc();
    SlotRecord& rec = records_[pkt.seq];
    ++rec.received;
    if (pkt.ecn_ce) rec.ce = true;
    const TimeNs skew =
        seconds(sched_->now().to_seconds() * cfg_.receiver_clock_skew_ppm * 1e-6);
    const TimeNs owd = sched_->now() + cfg_.receiver_clock_offset + skew - pkt.sent_at;
    rec.max_owd = std::max(rec.max_owd, owd);
}

void BadabingTool::stream_outcomes(core::OutcomeSink& sink) const {
    for (const core::SlotIndex slot : design_.probe_slots) {
        core::ProbeOutcome po;
        po.slot = slot;
        po.send_time = cfg_.start + cfg_.slot_width * slot;
        po.packets_sent = cfg_.packets_per_probe;
        if (auto it = records_.find(slot); it != records_.end()) {
            po.packets_lost = cfg_.packets_per_probe - it->second.received;
            po.max_owd = it->second.max_owd;
            po.any_received = it->second.received > 0;
            po.ce_marked = it->second.ce;
        } else {
            po.packets_lost = cfg_.packets_per_probe;
            po.any_received = false;
        }
        sink.consume(po);
    }
}

std::vector<core::ProbeOutcome> BadabingTool::outcomes() const {
    core::VectorSink<core::ProbeOutcome> sink;
    sink.reserve(design_.probe_slots.size());
    stream_outcomes(sink);
    return sink.take();
}

void BadabingTool::emit_reports(const core::MarkingConfig& marking,
                                core::ReportSink& sink) const {
    const std::vector<core::ProbeOutcome> probe_outcomes = outcomes();

    core::CongestionMarker marker{marking};
    const std::vector<core::SlotMark> marks = marker.mark(probe_outcomes);

    std::unordered_map<core::SlotIndex, bool> congested;
    congested.reserve(marks.size());
    for (const auto& m : marks) congested[m.slot] = m.congested;

    core::score_experiments_into(
        design_.experiments,
        [&congested](core::SlotIndex s) {
            const auto it = congested.find(s);
            return it != congested.end() && it->second;
        },
        sink);
}

BadabingResult BadabingTool::analyze(const core::MarkingConfig& marking,
                                     core::EstimatorOptions opts) const {
    const obs::Span span{"badabing.analyze", "probes"};
    BadabingResult res;
    core::StreamingAnalyzer analyzer{opts};
    emit_reports(marking, analyzer);

    const core::StreamingAnalyzer::Result summary = analyzer.finalize();
    // Every designed experiment must be scored exactly once: the §5.2.2
    // estimators divide by the experiment count, so a silently dropped or
    // double-scored report skews ŷ tallies without any other symptom.
    BB_CHECK_MSG(summary.reports == design_.experiments.size(),
                 "badabing: scored report count != designed experiment count");
    res.counts = analyzer.counts();
    res.frequency = summary.frequency;
    res.duration_basic = summary.duration_basic;
    res.duration_improved = summary.duration_improved;
    res.validation = summary.validation;

    res.probes_sent = probes_sent_;
    res.packets_sent = packets_sent_;
    res.bytes_sent = bytes_sent_;
    res.experiments = design_.experiments.size();
    auto count_lost = core::make_fn_sink<core::ProbeOutcome>([&res](const core::ProbeOutcome& po) {
        res.packets_lost += static_cast<std::uint64_t>(po.packets_lost);
    });
    stream_outcomes(count_lost);
    return res;
}

double BadabingTool::offered_load_fraction(std::int64_t link_rate_bps) const noexcept {
    const TimeNs span = cfg_.slot_width * cfg_.total_slots;
    const double link_bytes =
        static_cast<double>(link_rate_bps) / 8.0 * span.to_seconds();
    return link_bytes > 0 ? static_cast<double>(bytes_sent_) / link_bytes : 0.0;
}

// --- FixedIntervalProber ----------------------------------------------------

FixedIntervalProber::FixedIntervalProber(sim::Scheduler& sched, const Config& cfg,
                                         sim::PacketSink& out)
    : sched_{&sched}, cfg_{cfg}, out_{&out}, next_id_{fresh_id_block()} {
    sched_->schedule_at(cfg_.start, [this] { emit(); });
}

void FixedIntervalProber::emit() {
    if (sched_->now() >= cfg_.stop) return;
    const auto probe_index = static_cast<std::int64_t>(send_times_.size());
    send_times_.push_back(sched_->now());
    received_.push_back(0);
    max_owd_.push_back(TimeNs::zero());
    for (int k = 0; k < cfg_.packets_per_probe; ++k) {
        sim::Packet pkt;
        pkt.id = ++next_id_;
        pkt.flow = cfg_.flow;
        pkt.kind = sim::PacketKind::probe;
        pkt.size_bytes = cfg_.packet_bytes;
        pkt.seq = probe_index;
        pkt.probe_pkt = k;
        pkt.sent_at = sched_->now();
        if (k == 0) {
            out_->accept(pkt);
        } else {
            const sim::PacketPool::Handle h = sched_->packet_pool().put(pkt);
            sched_->schedule_after(cfg_.intra_probe_gap * k, [this, h] {
                sim::Packet p = sched_->packet_pool().take(h);
                p.sent_at = sched_->now();
                out_->accept(p);
            });
        }
    }
    sched_->schedule_after(cfg_.interval, [this] { emit(); });
}

void FixedIntervalProber::accept(const sim::Packet& pkt) {
    if (pkt.kind != sim::PacketKind::probe || pkt.flow != cfg_.flow) return;
    const auto idx = static_cast<std::size_t>(pkt.seq);
    if (idx >= send_times_.size()) return;
    ++received_[idx];
    max_owd_[idx] = std::max(max_owd_[idx], sched_->now() - pkt.sent_at);
}

void FixedIntervalProber::stream_outcomes(core::OutcomeSink& sink) const {
    for (std::size_t i = 0; i < send_times_.size(); ++i) {
        core::ProbeOutcome po;
        po.slot = static_cast<core::SlotIndex>(i);
        po.send_time = send_times_[i];
        po.packets_sent = cfg_.packets_per_probe;
        po.packets_lost = cfg_.packets_per_probe - received_[i];
        po.max_owd = max_owd_[i];
        po.any_received = received_[i] > 0;
        sink.consume(po);
    }
}

std::vector<core::ProbeOutcome> FixedIntervalProber::outcomes() const {
    core::VectorSink<core::ProbeOutcome> sink;
    sink.reserve(send_times_.size());
    stream_outcomes(sink);
    return sink.take();
}

}  // namespace bb::probes
