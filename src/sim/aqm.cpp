#include "sim/aqm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/link.h"

namespace bb::sim {

// ---------------------------------------------------------------------------
// PIE
// ---------------------------------------------------------------------------

PieQueue::PieQueue(Scheduler& sched, const LinkConfig& cfg, const PieParams& params,
                   PacketSink& downstream, Rng rng)
    : QueueBase{sched, cfg, downstream}, params_{params}, rng_{std::move(rng)} {
    if (params_.update_interval <= TimeNs::zero()) {
        throw std::invalid_argument{"PieQueue: update_interval must be > 0"};
    }
}

QueueBase::Verdict PieQueue::admit(const Packet& pkt) {
    // Controller activation (RFC 8033 §4.1): start servoing once the buffer
    // is a third full.  The periodic update owns deactivation, so the event
    // loop quiesces when traffic stops.
    if (!active_ && queue_bytes() >= capacity_bytes() / 3) {
        active_ = true;
        drop_prob_ = 0.0;
        qdelay_old_ = TimeNs::zero();
        burst_left_ = params_.burst_allowance;
        sched().schedule_after(params_.update_interval, [this] { update_probability(); });
    }
    if (!active_) return Verdict::accept;
    if (burst_left_ > TimeNs::zero()) return Verdict::accept;

    const TimeNs qdelay = queueing_delay();
    // RFC 8033 §4.1 safeguards: don't shed load while the controller is
    // barely on and delay is low, or when the queue holds almost nothing.
    if (drop_prob_ < 0.2 && qdelay.ns() < params_.target_delay.ns() / 2) {
        return Verdict::accept;
    }
    if (queue_bytes() <= 2 * pkt.size_bytes) return Verdict::accept;

    if (rng_.bernoulli(drop_prob_)) {
        if (params_.ecn && pkt.ecn_ect && drop_prob_ < params_.ecn_mark_ceiling) {
            ++early_marks_;
            return Verdict::mark;
        }
        ++early_drops_;
        return Verdict::drop;
    }
    return Verdict::accept;
}

void PieQueue::update_probability() {
    ++updates_;
    const TimeNs qdelay = queueing_delay();
    double p = params_.alpha * (qdelay - params_.target_delay).to_seconds() +
               params_.beta * (qdelay - qdelay_old_).to_seconds();

    // Auto-tune the adjustment to the operating point (RFC 8033 §4.2 table):
    // tiny probabilities get proportionally tiny nudges, which stabilizes the
    // controller across orders of magnitude.
    if (drop_prob_ < 0.000001) {
        p /= 2048.0;
    } else if (drop_prob_ < 0.00001) {
        p /= 512.0;
    } else if (drop_prob_ < 0.0001) {
        p /= 128.0;
    } else if (drop_prob_ < 0.001) {
        p /= 32.0;
    } else if (drop_prob_ < 0.01) {
        p /= 8.0;
    } else if (drop_prob_ < 0.1) {
        p /= 2.0;
    }
    drop_prob_ = std::clamp(drop_prob_ + p, 0.0, 1.0);

    // Exponential decay while the line is idle (RFC 8033 §4.2).
    if (qdelay == TimeNs::zero() && qdelay_old_ == TimeNs::zero()) {
        drop_prob_ *= 0.98;
    }
    qdelay_old_ = qdelay;
    if (burst_left_ > TimeNs::zero()) {
        burst_left_ = std::max(TimeNs::zero(), burst_left_ - params_.update_interval);
    }

    // Deactivate once there is nothing left to control: queue drained for a
    // full interval and the probability has decayed away.  Not rescheduling
    // is what lets Scheduler::run() (run-until-empty) terminate.
    if (drop_prob_ < 1e-6 && qdelay == TimeNs::zero() && qdelay_old_ == TimeNs::zero() &&
        queue_bytes() == 0) {
        active_ = false;
        drop_prob_ = 0.0;
        return;
    }
    sched().schedule_after(params_.update_interval, [this] { update_probability(); });
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

CoDelQueue::CoDelQueue(Scheduler& sched, const LinkConfig& cfg, const CoDelParams& params,
                       PacketSink& downstream)
    : QueueBase{sched, cfg, downstream}, params_{params} {
    if (params_.interval <= TimeNs::zero()) {
        throw std::invalid_argument{"CoDelQueue: interval must be > 0"};
    }
}

QueueBase::Verdict CoDelQueue::admit(const Packet&) {
    return Verdict::accept;  // all CoDel policy happens at the head
}

TimeNs CoDelQueue::control_law(TimeNs t) const noexcept {
    // interval / sqrt(count): drops accelerate while the standing queue
    // persists, which is the signature sawtooth the property test pins.
    const double scaled = static_cast<double>(params_.interval.ns()) /
                          std::sqrt(static_cast<double>(std::max(count_, 1U)));
    return t + TimeNs{static_cast<std::int64_t>(scaled)};
}

QueueBase::Verdict CoDelQueue::head_action(const Packet& pkt, TimeNs sojourn) {
    const TimeNs now = sched().now();

    // Is the standing queue above target?  A sojourn below target — or a
    // queue too small to be worth controlling — resets the observation
    // window (ACM Queue 2012, dodequeue()).
    bool ok_to_drop = false;
    if (sojourn < params_.target || queue_bytes() <= pkt.size_bytes) {
        first_above_time_ = TimeNs::zero();
    } else if (first_above_time_ == TimeNs::zero()) {
        first_above_time_ = now + params_.interval;
    } else if (now >= first_above_time_) {
        ok_to_drop = true;
    }

    const Verdict shed = params_.ecn ? Verdict::mark : Verdict::drop;
    // NOTE: when `shed` is mark, the base transmits the marked packet, so the
    // sojourn stops growing via sender backoff rather than local discard —
    // count/drop_next bookkeeping is identical either way.

    if (dropping_) {
        if (!ok_to_drop) {
            dropping_ = false;
            return Verdict::accept;
        }
        if (now >= drop_next_) {
            ++count_;
            drop_next_ = control_law(drop_next_);
            return shed;
        }
        return Verdict::accept;
    }

    if (ok_to_drop) {
        // Enter the dropping state.  If we were dropping recently, resume
        // close to the drop rate we left off at instead of restarting from 1
        // (the 16-interval memory of the reference pseudocode).
        dropping_ = true;
        const std::uint32_t delta = count_ - lastcount_;
        count_ = (delta > 1 && now - drop_next_ < 16 * params_.interval) ? delta : 1;
        lastcount_ = count_;
        drop_next_ = control_law(now);
        return shed;
    }
    return Verdict::accept;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<QueueBase> make_queue(Scheduler& sched, const QueueBase::LinkConfig& cfg,
                                      PacketSink& downstream) {
    switch (cfg.discipline) {
        case QueueDiscipline::drop_tail:
            // Consumes no randomness: drop-tail behaviour through the factory
            // is bit-identical to constructing BottleneckQueue directly
            // (golden_droptail_test pins this).
            return std::make_unique<BottleneckQueue>(sched, cfg, downstream);
        case QueueDiscipline::red:
            // Seed salt matches the historical Testbed wiring so RED runs
            // reproduce across the factory migration.
            return std::make_unique<RedQueue>(sched, cfg, cfg.red, downstream,
                                              Rng{cfg.seed ^ 0xAEDULL});
        case QueueDiscipline::pie:
            return std::make_unique<PieQueue>(sched, cfg, cfg.pie, downstream,
                                              Rng{cfg.seed ^ 0xF1EULL});
        case QueueDiscipline::codel:
            return std::make_unique<CoDelQueue>(sched, cfg, cfg.codel, downstream);
    }
    throw std::invalid_argument{"make_queue: unknown discipline"};
}

}  // namespace bb::sim
