#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace bb::sim {

EventId Scheduler::schedule_at(TimeNs at, std::function<void()> fn) {
    if (at < now_) throw std::invalid_argument{"Scheduler: event scheduled in the past"};
    const EventId id = next_id_++;
    heap_.push_back(Entry{at, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
}

void Scheduler::run_until(TimeNs t_end) {
    static obs::Counter& dispatched = obs::counter("sim.scheduler.events_dispatched");
    static obs::Gauge& depth = obs::gauge("sim.scheduler.queue_depth");
    std::uint64_t ran = 0;
    while (!heap_.empty()) {
        if (heap_.front().at > t_end) break;
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Entry entry = std::move(heap_.back());
        heap_.pop_back();
        if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        assert(entry.at >= now_);
        now_ = entry.at;
        ++executed_;
        ++ran;
        if ((ran & 1023U) == 0 && obs::enabled()) {
            depth.set(static_cast<double>(heap_.size()));
        }
        entry.fn();
    }
    if (ran != 0) {
        dispatched.inc(ran);
        depth.set(static_cast<double>(heap_.size()));
    }
    if (t_end != TimeNs::max() && t_end > now_) now_ = t_end;
}

}  // namespace bb::sim
