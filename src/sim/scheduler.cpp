#include "sim/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/contract.h"

namespace bb::sim {

// --- invariants ---------------------------------------------------------
//
// One pass over the heap plus one walk of the free list; `mark` tags each
// arena slot as live-ticketed (bit 0) or free-listed (bit 1) so the two sets
// are provably disjoint and jointly exhaustive.

void Scheduler::check_invariants() const {
    std::vector<std::uint8_t> mark(arena_.size(), 0);
    std::size_t live_tickets = 0;
    std::size_t stale_tickets = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        const Ticket& t = heap_[i];
        if (i > 0) {
            BB_CHECK_MSG(!earlier(t, heap_[(i - 1) / 4]), "scheduler: 4-ary heap order violated");
        }
        BB_CHECK_MSG(t.slot < arena_.size(), "scheduler: ticket references slot out of bounds");
        BB_CHECK_MSG(t.gen <= arena_[t.slot].gen,
                     "scheduler: ticket generation ahead of its arena slot");
        if (!ticket_live(t)) {
            ++stale_tickets;
            continue;
        }
        ++live_tickets;
        BB_CHECK_MSG((mark[t.slot] & 1U) == 0, "scheduler: two live tickets share an arena slot");
        mark[t.slot] |= 1U;
        BB_CHECK_MSG(static_cast<bool>(arena_[t.slot].fn),
                     "scheduler: live ticket references an empty arena slot");
        BB_CHECK_MSG(t.at >= now_, "scheduler: live ticket scheduled in the past");
    }
    BB_CHECK_MSG(live_tickets == live_, "scheduler: live-event accounting drifted");
    BB_CHECK_MSG(stale_tickets == stale_, "scheduler: stale-ticket accounting drifted");

    std::size_t free_len = 0;
    for (std::uint32_t s = free_head_; s != kNoFree; s = arena_[s].next_free) {
        BB_CHECK_MSG(s < arena_.size(), "scheduler: free list walked out of bounds");
        BB_CHECK_MSG((mark[s] & 2U) == 0, "scheduler: free list is cyclic");
        BB_CHECK_MSG((mark[s] & 1U) == 0, "scheduler: free slot still has a live ticket");
        BB_CHECK_MSG(!arena_[s].fn, "scheduler: free slot holds an undestroyed callable");
        mark[s] |= 2U;
        ++free_len;
    }
    BB_CHECK_MSG(free_len + live_ == arena_.size(),
                 "scheduler: arena slots leaked (neither free nor live)");
    packets_.check_invariants();
}

// --- arena --------------------------------------------------------------

void Scheduler::release_slot(std::uint32_t s) noexcept {
    Slot& slot = arena_[s];
    slot.fn.reset();
    // A generation wrap would resurrect stale ids; 2^32 recycles of one slot
    // is out of reach for any real run, but the id guarantee rests on it.
    BB_DCHECK_MSG(slot.gen != 0xFFFF'FFFFu, "scheduler: slot generation counter wrapped");
    ++slot.gen;  // invalidates every outstanding id/ticket for this slot
    slot.next_free = free_head_;
    free_head_ = s;
}

// --- 4-ary heap ---------------------------------------------------------
//
// Children of i are 4i+1 .. 4i+4, parent is (i-1)/4.  Min element at the
// root; ordering is earlier() on (time, insertion seq).

void Scheduler::heap_push(const Ticket& t) {
    heap_.push_back(t);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!earlier(heap_[i], heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void Scheduler::sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) return;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best])) best = c;
        }
        if (!earlier(heap_[best], heap_[i])) return;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

void Scheduler::heap_drop_top() noexcept {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
}

void Scheduler::compact_if_mostly_stale() {
    if (stale_ <= 64 || stale_ * 2 <= heap_.size()) return;
    std::size_t kept = 0;
    for (const Ticket& t : heap_) {
        if (ticket_live(t)) heap_[kept++] = t;
    }
    heap_.resize(kept);
    // Floyd heap construction: sift internal nodes down, leaves are trivial.
    for (std::size_t i = kept / 4 + 1; i-- > 0;) {
        if (i < kept) sift_down(i);
    }
    BB_DCHECK_MSG(kept == live_, "scheduler: compaction kept a stale ticket (or dropped a live one)");
    stale_ = 0;
    BB_AUDIT(check_invariants());
}

// --- scheduling ---------------------------------------------------------

void Scheduler::check_future(TimeNs at) const {
    if (at < now_) throw std::invalid_argument{"Scheduler: event scheduled in the past"};
}

EventId Scheduler::schedule_event(TimeNs at, Event ev) {
    check_future(at);
    const std::uint32_t s = acquire_raw_slot();
    arena_[s].fn = std::move(ev);
    return commit_slot(at, s);
}

EventId Scheduler::deliver_after(TimeNs delay, const Packet& pkt, PacketSink& sink) {
    struct Delivery {
        PacketPool* pool;
        PacketSink* sink;
        PacketPool::Handle handle;
        void operator()() const { sink->accept(pool->take(handle)); }
    };
    static_assert(sizeof(Delivery) <= Event::kInlineBytes);
    const PacketPool::Handle h = packets_.put(pkt);
    return schedule_at(now_ + delay, Delivery{&packets_, &sink, h});
}

void Scheduler::cancel(EventId id) noexcept {
    const auto s = static_cast<std::uint32_t>(id & 0xFFFF'FFFFu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (s >= arena_.size() || arena_[s].gen != gen) return;  // fired/cancelled/unknown
    BB_DCHECK_MSG(live_ > 0, "scheduler: cancel with no live events");
    release_slot(s);
    --live_;
    ++cancelled_;
    ++stale_;
    compact_if_mostly_stale();
    BB_AUDIT(check_invariants());
}

void Scheduler::reserve(std::size_t events) {
    arena_.reserve(events);
    heap_.reserve(events);
    packets_.reserve(events);
}

void Scheduler::run_until(TimeNs t_end) {
    static obs::Counter& dispatched = obs::counter("sim.scheduler.events_dispatched");
    static obs::Gauge& depth = obs::gauge("sim.scheduler.queue_depth");
    BB_AUDIT(check_invariants());
    std::uint64_t ran = 0;
    while (!heap_.empty()) {
        const Ticket top = heap_.front();
        if (!ticket_live(top)) {  // cancelled: discard without touching the clock
            heap_drop_top();
            BB_DCHECK_MSG(stale_ > 0, "scheduler: stale-ticket accounting underflow");
            --stale_;
            continue;
        }
        if (top.at > t_end) break;
        heap_drop_top();
        BB_DCHECK_MSG(top.at >= now_, "scheduler: simulated time would run backwards");
        now_ = top.at;
        Event fn = std::move(arena_[top.slot].fn);
        release_slot(top.slot);
        --live_;
        ++executed_;
        ++ran;
        if ((ran & 1023U) == 0 && obs::enabled()) {
            depth.set(static_cast<double>(heap_.size()));
        }
        fn();
    }
    if (ran != 0) {
        dispatched.inc(ran);
        depth.set(static_cast<double>(heap_.size()));
    }
    if (t_end != TimeNs::max() && t_end > now_) now_ = t_end;
    BB_AUDIT(check_invariants());
}

}  // namespace bb::sim
