#include "sim/scheduler.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace bb::sim {

// --- arena --------------------------------------------------------------

void Scheduler::release_slot(std::uint32_t s) noexcept {
    Slot& slot = arena_[s];
    slot.fn.reset();
    ++slot.gen;  // invalidates every outstanding id/ticket for this slot
    slot.next_free = free_head_;
    free_head_ = s;
}

// --- 4-ary heap ---------------------------------------------------------
//
// Children of i are 4i+1 .. 4i+4, parent is (i-1)/4.  Min element at the
// root; ordering is earlier() on (time, insertion seq).

void Scheduler::heap_push(const Ticket& t) {
    heap_.push_back(t);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!earlier(heap_[i], heap_[parent])) break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void Scheduler::sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) return;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (earlier(heap_[c], heap_[best])) best = c;
        }
        if (!earlier(heap_[best], heap_[i])) return;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

void Scheduler::heap_drop_top() noexcept {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
}

void Scheduler::compact_if_mostly_stale() {
    if (stale_ <= 64 || stale_ * 2 <= heap_.size()) return;
    std::size_t kept = 0;
    for (const Ticket& t : heap_) {
        if (ticket_live(t)) heap_[kept++] = t;
    }
    heap_.resize(kept);
    // Floyd heap construction: sift internal nodes down, leaves are trivial.
    for (std::size_t i = kept / 4 + 1; i-- > 0;) {
        if (i < kept) sift_down(i);
    }
    stale_ = 0;
}

// --- scheduling ---------------------------------------------------------

void Scheduler::check_future(TimeNs at) const {
    if (at < now_) throw std::invalid_argument{"Scheduler: event scheduled in the past"};
}

EventId Scheduler::schedule_event(TimeNs at, Event ev) {
    check_future(at);
    const std::uint32_t s = acquire_raw_slot();
    arena_[s].fn = std::move(ev);
    return commit_slot(at, s);
}

EventId Scheduler::deliver_after(TimeNs delay, const Packet& pkt, PacketSink& sink) {
    struct Delivery {
        PacketPool* pool;
        PacketSink* sink;
        PacketPool::Handle handle;
        void operator()() const { sink->accept(pool->take(handle)); }
    };
    static_assert(sizeof(Delivery) <= Event::kInlineBytes);
    const PacketPool::Handle h = packets_.put(pkt);
    return schedule_at(now_ + delay, Delivery{&packets_, &sink, h});
}

void Scheduler::cancel(EventId id) noexcept {
    const auto s = static_cast<std::uint32_t>(id & 0xFFFF'FFFFu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    if (s >= arena_.size() || arena_[s].gen != gen) return;  // fired/cancelled/unknown
    release_slot(s);
    --live_;
    ++cancelled_;
    ++stale_;
    compact_if_mostly_stale();
}

void Scheduler::reserve(std::size_t events) {
    arena_.reserve(events);
    heap_.reserve(events);
    packets_.reserve(events);
}

void Scheduler::run_until(TimeNs t_end) {
    static obs::Counter& dispatched = obs::counter("sim.scheduler.events_dispatched");
    static obs::Gauge& depth = obs::gauge("sim.scheduler.queue_depth");
    std::uint64_t ran = 0;
    while (!heap_.empty()) {
        const Ticket top = heap_.front();
        if (!ticket_live(top)) {  // cancelled: discard without touching the clock
            heap_drop_top();
            --stale_;
            continue;
        }
        if (top.at > t_end) break;
        heap_drop_top();
        assert(top.at >= now_);
        now_ = top.at;
        Event fn = std::move(arena_[top.slot].fn);
        release_slot(top.slot);
        --live_;
        ++executed_;
        ++ran;
        if ((ran & 1023U) == 0 && obs::enabled()) {
            depth.set(static_cast<double>(heap_.size()));
        }
        fn();
    }
    if (ran != 0) {
        dispatched.inc(ran);
        depth.set(static_cast<double>(heap_.size()));
    }
    if (t_end != TimeNs::max() && t_end > now_) now_ = t_end;
}

}  // namespace bb::sim
