// Common machinery for queues feeding a serial output link: FIFO buffering,
// transmission serialization, propagation, byte accounting and trace hooks.
// Concrete disciplines (drop-tail, RED) only decide admission.
#ifndef BB_SIM_QUEUE_BASE_H
#define BB_SIM_QUEUE_BASE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/func.h"
#include "util/time.h"

namespace bb::sim {

// Statistics exported by queue trace hooks.
struct QueueEvent {
    Packet pkt;
    TimeNs at;
    std::int64_t queue_bytes_after;  // occupancy after this event was applied
};

class QueueBase : public PacketSink {
public:
    struct LinkConfig {
        std::int64_t rate_bps{155'000'000};
        TimeNs prop_delay{milliseconds(50)};
        std::int64_t capacity_bytes{0};          // 0 => derive from capacity_time
        TimeNs capacity_time{milliseconds(100)};  // buffer depth in time at rate
    };

    QueueBase(Scheduler& sched, const LinkConfig& cfg, PacketSink& downstream);

    void accept(const Packet& pkt) final;

    // --- observability ------------------------------------------------------
    [[nodiscard]] std::int64_t queue_bytes() const noexcept { return queued_bytes_; }
    [[nodiscard]] std::size_t queue_packets() const noexcept { return fifo_.size(); }
    [[nodiscard]] std::int64_t capacity_bytes() const noexcept { return capacity_bytes_; }
    [[nodiscard]] std::int64_t rate_bps() const noexcept { return cfg_.rate_bps; }
    // Queueing delay a newly arriving packet would experience right now.
    [[nodiscard]] TimeNs queueing_delay() const noexcept {
        return transmission_time(queued_bytes_ + in_flight_bytes_, cfg_.rate_bps);
    }
    [[nodiscard]] TimeNs max_queueing_delay() const noexcept {
        return transmission_time(capacity_bytes_, cfg_.rate_bps);
    }

    [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
    [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
    [[nodiscard]] std::uint64_t departures() const noexcept { return departures_; }
    [[nodiscard]] std::int64_t departed_bytes() const noexcept { return departed_bytes_; }

    // Trace hooks (ground-truth instrumentation; the simulated DAG cards).
    // Move-only UniqueFunction keeps std::function out of the sim hot path
    // (lint rule no-std-function): small captures stay inline and firing a
    // hook is one indirect call, no virtual dispatch.
    using Hook = UniqueFunction<void(const QueueEvent&)>;
    void on_enqueue(Hook h) { enqueue_hooks_.push_back(std::move(h)); }
    void on_drop(Hook h) { drop_hooks_.push_back(std::move(h)); }
    void on_dequeue(Hook h) { dequeue_hooks_.push_back(std::move(h)); }

protected:
    // Admission policy: return true to enqueue, false to drop.  Called with
    // the buffer state visible through the accessors above; a policy must
    // also respect the physical buffer (the base enforces it regardless).
    [[nodiscard]] virtual bool admit(const Packet& pkt) = 0;

    [[nodiscard]] Scheduler& sched() noexcept { return *sched_; }
    [[nodiscard]] const Scheduler& sched() const noexcept { return *sched_; }
    // True when buffering `pkt` would exceed the physical capacity.
    [[nodiscard]] bool buffer_overflows(const Packet& pkt) const noexcept {
        return queued_bytes_ + pkt.size_bytes > capacity_bytes_;
    }

private:
    void start_transmission();
    void finish_transmission(Packet pkt);

    Scheduler* sched_;
    LinkConfig cfg_;
    std::int64_t capacity_bytes_;
    PacketSink* downstream_;

    std::deque<Packet> fifo_;
    std::int64_t queued_bytes_{0};
    std::int64_t in_flight_bytes_{0};
    bool transmitting_{false};

    std::uint64_t arrivals_{0};
    std::uint64_t drops_{0};
    std::uint64_t departures_{0};
    std::int64_t departed_bytes_{0};

    std::vector<Hook> enqueue_hooks_;
    std::vector<Hook> drop_hooks_;
    std::vector<Hook> dequeue_hooks_;
};

}  // namespace bb::sim

#endif  // BB_SIM_QUEUE_BASE_H
