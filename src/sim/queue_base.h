// Common machinery for queues feeding a serial output link: FIFO buffering,
// transmission serialization, propagation, byte accounting and trace hooks.
// Concrete disciplines (drop-tail, RED, PIE, CoDel) decide admission at the
// tail and, for sojourn-time AQMs, drop/mark at the head; ECN-capable
// packets can be CE-marked instead of dropped.
#ifndef BB_SIM_QUEUE_BASE_H
#define BB_SIM_QUEUE_BASE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/func.h"
#include "util/time.h"

namespace bb::sim {

// Which discipline guards the output link.  Selected through
// LinkConfig::discipline and realized by the make_queue() factory, so
// scenario code never names a concrete queue class.
enum class QueueDiscipline : std::uint8_t { drop_tail, red, pie, codel };

// Random Early Detection parameters (Floyd/Jacobson 1993).
struct RedParams {
    double min_threshold{0.25};  // of capacity_bytes
    double max_threshold{0.75};  // of capacity_bytes
    double max_drop_probability{0.10};
    double weight{0.002};  // EWMA weight w_q
    // Mark ECN-capable packets instead of early-dropping them (forced drops
    // above max_threshold and physical-buffer overflows still drop).
    bool ecn{false};
};

// PIE parameters (RFC 8033, simplified: no departure-rate estimator — the
// simulated link rate is known exactly, so queueing delay is closed-form).
struct PieParams {
    TimeNs target_delay{milliseconds(15)};
    TimeNs update_interval{milliseconds(15)};
    double alpha{0.125};  // gain on (qdelay - target), per RFC 8033 §4.2
    double beta{1.25};    // gain on (qdelay - qdelay_old)
    TimeNs burst_allowance{milliseconds(150)};
    bool ecn{false};
    // CE-mark instead of drop only while drop_prob is below this ceiling
    // (RFC 8033 §5.1 safeguard: heavy overload must shed load, not marks).
    double ecn_mark_ceiling{0.10};
};

// CoDel parameters (Nichols/Jacobson, ACM Queue 2012).
struct CoDelParams {
    TimeNs target{milliseconds(5)};     // acceptable standing sojourn time
    TimeNs interval{milliseconds(100)}; // sliding window for the target test
    bool ecn{false};
};

// Statistics exported by queue trace hooks.
struct QueueEvent {
    Packet pkt;
    TimeNs at;
    std::int64_t queue_bytes_after;  // occupancy after this event was applied
};

class QueueBase : public PacketSink {
public:
    struct LinkConfig {
        std::int64_t rate_bps{155'000'000};
        TimeNs prop_delay{milliseconds(50)};
        std::int64_t capacity_bytes{0};          // 0 => derive from capacity_time
        TimeNs capacity_time{milliseconds(100)};  // buffer depth in time at rate
        // Discipline selection for the make_queue() factory; the per-class
        // constructors ignore these fields.
        QueueDiscipline discipline{QueueDiscipline::drop_tail};
        RedParams red{};
        PieParams pie{};
        CoDelParams codel{};
        std::uint64_t seed{1};  // for randomized disciplines (RED, PIE)
    };

    QueueBase(Scheduler& sched, const LinkConfig& cfg, PacketSink& downstream);

    void accept(const Packet& pkt) final;

    // --- observability ------------------------------------------------------
    [[nodiscard]] std::int64_t queue_bytes() const noexcept { return queued_bytes_; }
    [[nodiscard]] std::size_t queue_packets() const noexcept { return fifo_.size(); }
    [[nodiscard]] std::int64_t capacity_bytes() const noexcept { return capacity_bytes_; }
    [[nodiscard]] std::int64_t rate_bps() const noexcept { return cfg_.rate_bps; }
    // Queueing delay a newly arriving packet would experience right now.
    [[nodiscard]] TimeNs queueing_delay() const noexcept {
        return transmission_time(queued_bytes_ + in_flight_bytes_, cfg_.rate_bps);
    }
    [[nodiscard]] TimeNs max_queueing_delay() const noexcept {
        return transmission_time(capacity_bytes_, cfg_.rate_bps);
    }

    [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
    [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
    [[nodiscard]] std::uint64_t departures() const noexcept { return departures_; }
    [[nodiscard]] std::int64_t departed_bytes() const noexcept { return departed_bytes_; }
    // CE marks applied in lieu of drops (tail or head side).
    [[nodiscard]] std::uint64_t marks() const noexcept { return marks_; }
    // Head-side drops (CoDel); also included in drops().
    [[nodiscard]] std::uint64_t head_drops() const noexcept { return head_drops_; }

    // Trace hooks (ground-truth instrumentation; the simulated DAG cards).
    // Move-only UniqueFunction keeps std::function out of the sim hot path
    // (lint rule no-std-function): small captures stay inline and firing a
    // hook is one indirect call, no virtual dispatch.
    using Hook = UniqueFunction<void(const QueueEvent&)>;
    void on_enqueue(Hook h) { enqueue_hooks_.push_back(std::move(h)); }
    void on_drop(Hook h) { drop_hooks_.push_back(std::move(h)); }
    void on_dequeue(Hook h) { dequeue_hooks_.push_back(std::move(h)); }
    // Fires once per CE mark, at the instant the mark is applied.
    void on_mark(Hook h) { mark_hooks_.push_back(std::move(h)); }

protected:
    // Policy verdicts.  `mark` requests a CE mark: the base applies it to
    // ECN-capable packets and degrades it to `drop` for everything else
    // (standard AQM behaviour — a non-ECT packet cannot carry the signal).
    enum class Verdict : std::uint8_t { accept, drop, mark };

    // Admission policy, consulted at the tail for every arrival.  Called
    // with the buffer state visible through the accessors above; a policy
    // must also respect the physical buffer (the base enforces it
    // regardless).
    [[nodiscard]] virtual Verdict admit(const Packet& pkt) = 0;

    // Head policy, consulted just before each transmission with the head
    // packet and the time it spent queued (its sojourn so far).  `drop`
    // discards the head and the base consults again for the next one;
    // `mark` CE-marks the head and transmits it.  Default: plain FIFO.
    [[nodiscard]] virtual Verdict head_action(const Packet& pkt, TimeNs sojourn) {
        (void)pkt;
        (void)sojourn;
        return Verdict::accept;
    }

    [[nodiscard]] Scheduler& sched() noexcept { return *sched_; }
    [[nodiscard]] const Scheduler& sched() const noexcept { return *sched_; }
    // True when buffering `pkt` would exceed the physical capacity.
    [[nodiscard]] bool buffer_overflows(const Packet& pkt) const noexcept {
        return queued_bytes_ + pkt.size_bytes > capacity_bytes_;
    }

private:
    struct Queued {
        Packet pkt;
        TimeNs enqueued_at;
    };

    void drop_packet(const Packet& pkt, bool at_head);
    void apply_mark(Packet& pkt);
    void start_transmission();
    void finish_transmission(Packet pkt);

    Scheduler* sched_;
    LinkConfig cfg_;
    std::int64_t capacity_bytes_;
    PacketSink* downstream_;

    std::deque<Queued> fifo_;
    std::int64_t queued_bytes_{0};
    std::int64_t in_flight_bytes_{0};
    bool transmitting_{false};

    std::uint64_t arrivals_{0};
    std::uint64_t drops_{0};
    std::uint64_t departures_{0};
    std::int64_t departed_bytes_{0};
    std::uint64_t marks_{0};
    std::uint64_t head_drops_{0};

    std::vector<Hook> enqueue_hooks_;
    std::vector<Hook> drop_hooks_;
    std::vector<Hook> dequeue_hooks_;
    std::vector<Hook> mark_hooks_;
};

// Construct the discipline selected by `cfg.discipline` (randomized
// disciplines derive their Rng from `cfg.seed`).  The factory is the one
// switch over QueueDiscipline in the tree; everything downstream programs
// against QueueBase.
[[nodiscard]] std::unique_ptr<QueueBase> make_queue(Scheduler& sched,
                                                    const QueueBase::LinkConfig& cfg,
                                                    PacketSink& downstream);

}  // namespace bb::sim

#endif  // BB_SIM_QUEUE_BASE_H
