// Destination-address routing and address stamping, for topologies built
// from multiple routers (e.g. the paper's Figure 3 five-hop path).
#ifndef BB_SIM_ROUTER_H
#define BB_SIM_ROUTER_H

#include <cstdint>
#include <unordered_map>

#include "sim/packet.h"

namespace bb::sim {

// Static-route IP-style forwarding: output port chosen by destination
// address; unroutable packets go to the default port or are counted and
// discarded.
class Router final : public PacketSink {
public:
    void add_route(Address dst, PacketSink& port) { routes_[dst] = &port; }
    void set_default_route(PacketSink& port) { default_ = &port; }

    void accept(const Packet& pkt) override {
        ++forwarded_;
        if (const auto it = routes_.find(pkt.dst_addr); it != routes_.end()) {
            it->second->accept(pkt);
        } else if (default_ != nullptr) {
            default_->accept(pkt);
        } else {
            ++unroutable_;
            --forwarded_;
        }
    }

    [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
    [[nodiscard]] std::uint64_t unroutable() const noexcept { return unroutable_; }

private:
    std::unordered_map<Address, PacketSink*> routes_;
    PacketSink* default_{nullptr};
    std::uint64_t forwarded_{0};
    std::uint64_t unroutable_{0};
};

// Reflects packets back toward their sender (swapping addresses) — a ping-
// style echo responder.  Used to turn the one-way BADABING receiver into an
// RTT-measuring arrangement: the reflected packet keeps its original
// `sent_at`, so the sender-side receiver computes round-trip delay instead
// of one-way delay.
class Reflector final : public PacketSink {
public:
    explicit Reflector(PacketSink& reverse_path) : reverse_{&reverse_path} {}

    void accept(const Packet& pkt) override {
        Packet echo = pkt;
        echo.src_addr = pkt.dst_addr;
        echo.dst_addr = pkt.src_addr;
        ++reflected_;
        reverse_->accept(echo);
    }

    [[nodiscard]] std::uint64_t reflected() const noexcept { return reflected_; }

private:
    PacketSink* reverse_;
    std::uint64_t reflected_{0};
};

// Stamps source/destination addresses onto packets from sources that are
// address-unaware (the traffic generators address by flow id only), then
// forwards downstream.
class AddressStamper final : public PacketSink {
public:
    AddressStamper(Address src, Address dst, PacketSink& downstream)
        : src_{src}, dst_{dst}, downstream_{&downstream} {}

    void accept(const Packet& pkt) override {
        Packet stamped = pkt;
        stamped.src_addr = src_;
        stamped.dst_addr = dst_;
        downstream_->accept(stamped);
    }

private:
    Address src_;
    Address dst_;
    PacketSink* downstream_;
};

}  // namespace bb::sim

#endif  // BB_SIM_ROUTER_H
