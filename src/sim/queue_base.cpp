#include "sim/queue_base.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace bb::sim {

namespace {
// Process-wide tallies across every queue instance; per-queue detail stays in
// the member counters (arrivals_/drops_/departures_).
obs::Counter& arrivals_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.arrivals");
    return c;
}
obs::Counter& enqueues_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.enqueues");
    return c;
}
obs::Counter& drops_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.drops");
    return c;
}
obs::Counter& departures_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.departures");
    return c;
}

void refresh_loss_rate() {
    static obs::Gauge& g = obs::gauge("sim.queue.loss_rate");
    const double a = static_cast<double>(arrivals_ctr().value());
    if (a > 0) g.set(static_cast<double>(drops_ctr().value()) / a);
}
}  // namespace

QueueBase::QueueBase(Scheduler& sched, const LinkConfig& cfg, PacketSink& downstream)
    : sched_{&sched}, cfg_{cfg}, capacity_bytes_{cfg.capacity_bytes}, downstream_{&downstream} {
    if (cfg_.rate_bps <= 0) throw std::invalid_argument{"QueueBase: rate must be > 0"};
    if (capacity_bytes_ == 0) {
        capacity_bytes_ = cfg_.capacity_time.ns() * cfg_.rate_bps / (8 * 1'000'000'000LL);
    }
    if (capacity_bytes_ <= 0) throw std::invalid_argument{"QueueBase: capacity must be > 0"};
}

void QueueBase::accept(const Packet& pkt) {
    ++arrivals_;
    arrivals_ctr().inc();
    // The policy decides first (and updates its own state, e.g. RED's EWMA);
    // the physical-buffer check is enforced unconditionally afterwards.
    const bool admitted = admit(pkt);
    if (!admitted || buffer_overflows(pkt)) {
        ++drops_;
        drops_ctr().inc();
        if (obs::enabled()) refresh_loss_rate();
        const QueueEvent ev{pkt, sched_->now(), queued_bytes_};
        for (auto& h : drop_hooks_) h(ev);
        return;
    }
    fifo_.push_back(pkt);
    queued_bytes_ += pkt.size_bytes;
    enqueues_ctr().inc();
    if ((arrivals_ & 1023U) == 0 && obs::enabled()) refresh_loss_rate();
    const QueueEvent ev{pkt, sched_->now(), queued_bytes_};
    for (auto& h : enqueue_hooks_) h(ev);
    if (!transmitting_) start_transmission();
}

void QueueBase::start_transmission() {
    if (fifo_.empty()) {
        transmitting_ = false;
        in_flight_bytes_ = 0;
        return;
    }
    transmitting_ = true;
    Packet pkt = fifo_.front();
    fifo_.pop_front();
    queued_bytes_ -= pkt.size_bytes;
    in_flight_bytes_ = pkt.size_bytes;
    const TimeNs tx = transmission_time(pkt.size_bytes, cfg_.rate_bps);
    // Park the in-flight packet in the per-replica pool so the completion
    // event stays inline (16-byte capture instead of 80).
    const PacketPool::Handle h = sched_->packet_pool().put(pkt);
    sched_->schedule_after(
        tx, [this, h] { finish_transmission(sched_->packet_pool().take(h)); });
}

void QueueBase::finish_transmission(Packet pkt) {
    ++departures_;
    departures_ctr().inc();
    departed_bytes_ += pkt.size_bytes;
    in_flight_bytes_ = 0;
    const QueueEvent ev{pkt, sched_->now(), queued_bytes_};
    for (auto& h : dequeue_hooks_) h(ev);
    // Propagation happens in parallel with the next transmission.
    sched_->deliver_after(cfg_.prop_delay, pkt, *downstream_);
    start_transmission();
}

}  // namespace bb::sim
