#include "sim/queue_base.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace bb::sim {

namespace {
// Process-wide tallies across every queue instance; per-queue detail stays in
// the member counters (arrivals_/drops_/departures_).
obs::Counter& arrivals_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.arrivals");
    return c;
}
obs::Counter& enqueues_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.enqueues");
    return c;
}
obs::Counter& drops_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.drops");
    return c;
}
obs::Counter& departures_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.departures");
    return c;
}
obs::Counter& marks_ctr() {
    static obs::Counter& c = obs::counter("sim.queue.marks");
    return c;
}

void refresh_loss_rate() {
    static obs::Gauge& g = obs::gauge("sim.queue.loss_rate");
    const double a = static_cast<double>(arrivals_ctr().value());
    if (a > 0) g.set(static_cast<double>(drops_ctr().value()) / a);
}
}  // namespace

QueueBase::QueueBase(Scheduler& sched, const LinkConfig& cfg, PacketSink& downstream)
    : sched_{&sched}, cfg_{cfg}, capacity_bytes_{cfg.capacity_bytes}, downstream_{&downstream} {
    if (cfg_.rate_bps <= 0) throw std::invalid_argument{"QueueBase: rate must be > 0"};
    if (capacity_bytes_ == 0) {
        capacity_bytes_ = cfg_.capacity_time.ns() * cfg_.rate_bps / (8 * 1'000'000'000LL);
    }
    if (capacity_bytes_ <= 0) throw std::invalid_argument{"QueueBase: capacity must be > 0"};
}

void QueueBase::accept(const Packet& pkt) {
    ++arrivals_;
    arrivals_ctr().inc();
    // The policy decides first (and updates its own state, e.g. RED's EWMA);
    // the physical-buffer check is enforced unconditionally afterwards.
    Verdict verdict = admit(pkt);
    // A CE mark can only ride on an ECN-capable packet; for everything else
    // the congestion signal degrades to the drop it replaces.
    if (verdict == Verdict::mark && !pkt.ecn_ect) verdict = Verdict::drop;
    if (verdict == Verdict::drop || buffer_overflows(pkt)) {
        drop_packet(pkt, /*at_head=*/false);
        return;
    }
    Queued entry{pkt, sched_->now()};
    if (verdict == Verdict::mark) apply_mark(entry.pkt);
    queued_bytes_ += entry.pkt.size_bytes;
    enqueues_ctr().inc();
    if ((arrivals_ & 1023U) == 0 && obs::enabled()) refresh_loss_rate();
    const QueueEvent ev{entry.pkt, entry.enqueued_at, queued_bytes_};
    fifo_.push_back(entry);
    for (auto& h : enqueue_hooks_) h(ev);
    if (!transmitting_) start_transmission();
}

void QueueBase::drop_packet(const Packet& pkt, bool at_head) {
    ++drops_;
    if (at_head) ++head_drops_;
    drops_ctr().inc();
    if (obs::enabled()) refresh_loss_rate();
    const QueueEvent ev{pkt, sched_->now(), queued_bytes_};
    for (auto& h : drop_hooks_) h(ev);
}

void QueueBase::apply_mark(Packet& pkt) {
    pkt.ecn_ce = true;
    ++marks_;
    marks_ctr().inc();
    // Occupancy reported excludes the marked packet itself (it is either not
    // yet enqueued, at the tail, or already popped, at the head).
    const QueueEvent ev{pkt, sched_->now(), queued_bytes_};
    for (auto& h : mark_hooks_) h(ev);
}

void QueueBase::start_transmission() {
    while (!fifo_.empty()) {
        // Head policy: sojourn-time AQMs (CoDel) drop or mark here, possibly
        // discarding several consecutive heads before one is transmitted.
        const TimeNs sojourn = sched_->now() - fifo_.front().enqueued_at;
        Verdict verdict = head_action(fifo_.front().pkt, sojourn);
        Packet pkt = fifo_.front().pkt;
        fifo_.pop_front();
        queued_bytes_ -= pkt.size_bytes;
        if (verdict == Verdict::mark && !pkt.ecn_ect) verdict = Verdict::drop;
        if (verdict == Verdict::drop) {
            drop_packet(pkt, /*at_head=*/true);
            continue;
        }
        if (verdict == Verdict::mark) apply_mark(pkt);
        transmitting_ = true;
        in_flight_bytes_ = pkt.size_bytes;
        const TimeNs tx = transmission_time(pkt.size_bytes, cfg_.rate_bps);
        // Park the in-flight packet in the per-replica pool so the completion
        // event stays inline (16-byte capture instead of 80).
        const PacketPool::Handle h = sched_->packet_pool().put(pkt);
        sched_->schedule_after(
            tx, [this, h] { finish_transmission(sched_->packet_pool().take(h)); });
        return;
    }
    transmitting_ = false;
    in_flight_bytes_ = 0;
}

void QueueBase::finish_transmission(Packet pkt) {
    ++departures_;
    departures_ctr().inc();
    departed_bytes_ += pkt.size_bytes;
    in_flight_bytes_ = 0;
    const QueueEvent ev{pkt, sched_->now(), queued_bytes_};
    for (auto& h : dequeue_hooks_) h(ev);
    // Propagation happens in parallel with the next transmission.
    sched_->deliver_after(cfg_.prop_delay, pkt, *downstream_);
    start_transmission();
}

}  // namespace bb::sim
