// Gilbert–Elliott lossy link: a two-state (good/bad) on/off loss process
// layered on a propagation-delay pipe.  Models loss that is NOT caused by
// queue congestion — wireless fades, line-card faults — so experiments can
// separate what an estimator attributes to congestion episodes from loss the
// bottleneck queue never saw.
#ifndef BB_SIM_LOSSY_LINK_H
#define BB_SIM_LOSSY_LINK_H

#include <cstdint>
#include <vector>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/func.h"
#include "util/rng.h"
#include "util/time.h"

namespace bb::sim {

// Continuous-time Gilbert–Elliott chain: the link alternates between a good
// and a bad state with exponentially distributed sojourns; each packet is
// dropped with the per-state loss probability in force at its arrival
// instant.  The chain is advanced lazily (only when a packet arrives), so an
// idle link costs no events.
//
// Stationary loss rate (the property tests pin this against long-run
// counts):  pi_bad = mean_bad / (mean_good + mean_bad),
//           E[loss] = pi_good * p_good_loss + pi_bad * p_bad_loss.
class GilbertElliottLink final : public PacketSink {
public:
    struct Config {
        double p_good_loss{0.0};             // per-packet loss prob in GOOD
        double p_bad_loss{0.5};              // per-packet loss prob in BAD
        TimeNs mean_good{seconds_i(10)};     // mean sojourn in GOOD
        TimeNs mean_bad{milliseconds(100)};  // mean sojourn in BAD
        TimeNs extra_delay{TimeNs::zero()};  // propagation added by this link
    };

    GilbertElliottLink(Scheduler& sched, const Config& cfg, PacketSink& downstream, Rng rng);

    void accept(const Packet& pkt) override;

    [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }
    [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }
    [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
    [[nodiscard]] std::uint64_t state_flips() const noexcept { return flips_; }
    // Long-run loss fraction the chain parameters imply (not the realized one).
    [[nodiscard]] double stationary_loss_rate() const noexcept;

    // Fires for every packet the link eats, with the drop instant; feeds the
    // ground-truth loss monitor so GE loss counts against truth F/D too.
    using DropHook = UniqueFunction<void(const Packet&, TimeNs)>;
    void on_drop(DropHook h) { drop_hooks_.push_back(std::move(h)); }

private:
    void advance_chain(TimeNs now);
    [[nodiscard]] TimeNs draw_sojourn(bool bad);

    Scheduler* sched_;
    Config cfg_;
    PacketSink* downstream_;
    Rng rng_;
    bool bad_{false};
    TimeNs state_until_{TimeNs::zero()};  // current state holds until here
    std::uint64_t arrivals_{0};
    std::uint64_t drops_{0};
    std::uint64_t flips_{0};
    std::vector<DropHook> drop_hooks_;
};

}  // namespace bb::sim

#endif  // BB_SIM_LOSSY_LINK_H
