// Links: propagation-delay pipes and the queue disciplines on the
// congested output link (drop-tail as in the paper's GSR, plus RED for the
// AQM extension experiments).
#ifndef BB_SIM_LINK_H
#define BB_SIM_LINK_H

#include <cstdint>

#include "sim/packet.h"
#include "sim/queue_base.h"
#include "sim/scheduler.h"
#include "util/rng.h"
#include "util/time.h"

namespace bb::sim {

// Pure propagation-delay link: packets arrive at the downstream sink after a
// fixed delay, with no serialization or loss.  Models fast access links and
// the reverse (ACK) path of the dumbbell, which never congest in the
// paper's testbed.
class DelayLink final : public PacketSink {
public:
    DelayLink(Scheduler& sched, TimeNs delay, PacketSink& downstream)
        : sched_{&sched}, delay_{delay}, downstream_{&downstream} {}

    void accept(const Packet& pkt) override {
        // Parked in the scheduler's per-replica packet pool: the delivery
        // event carries a 32-bit handle, so no per-packet heap allocation.
        sched_->deliver_after(delay_, pkt, *downstream_);
    }

    [[nodiscard]] TimeNs delay() const noexcept { return delay_; }

private:
    Scheduler* sched_;
    TimeNs delay_;
    PacketSink* downstream_;
};

// Drop-tail FIFO queue feeding a serial output link — the congested hop C of
// the paper's testbed (Figure 1: buffer of Q bytes in front of an output
// link of bandwidth B_out).  A packet is dropped iff buffering it would
// exceed `capacity_bytes`.
class BottleneckQueue final : public QueueBase {
public:
    using Config = LinkConfig;

    BottleneckQueue(Scheduler& sched, const Config& cfg, PacketSink& downstream)
        : QueueBase{sched, cfg, downstream} {}

protected:
    Verdict admit(const Packet&) override {
        return Verdict::accept;  // the base's physical-buffer check is the only rule
    }
};

// Random Early Detection (Floyd/Jacobson 1993) queue, for studying the probe
// process against an AQM bottleneck where loss episodes have soft edges
// (paper §7 raises exactly this "more complex environments" question).
class RedQueue final : public QueueBase {
public:
    // Parameters live at namespace scope (queue_base.h) so LinkConfig can
    // embed them; the nested alias keeps existing call sites compiling.
    using RedParams = bb::sim::RedParams;

    RedQueue(Scheduler& sched, const LinkConfig& cfg, const RedParams& params,
             PacketSink& downstream, Rng rng);

    [[nodiscard]] double average_queue_bytes() const noexcept { return avg_; }
    [[nodiscard]] std::uint64_t early_drops() const noexcept { return early_drops_; }
    [[nodiscard]] std::uint64_t forced_drops() const noexcept { return forced_drops_; }
    // Early "drops" converted to CE marks (params.ecn); also counted in the
    // base's marks().
    [[nodiscard]] std::uint64_t early_marks() const noexcept { return early_marks_; }

protected:
    Verdict admit(const Packet& pkt) override;

private:
    void update_average();

    RedParams params_;
    Rng rng_;
    double avg_{0.0};
    std::int64_t count_since_drop_{-1};
    TimeNs idle_since_{TimeNs::zero()};
    bool was_idle_{true};
    std::uint64_t early_drops_{0};
    std::uint64_t forced_drops_{0};
    std::uint64_t early_marks_{0};
};

}  // namespace bb::sim

#endif  // BB_SIM_LINK_H
