// Latency-targeting AQM disciplines for the bottleneck link: PIE (RFC 8033)
// and CoDel (Nichols/Jacobson 2012).  Both control queueing DELAY rather than
// occupancy, which gives loss episodes very different temporal structure from
// drop-tail/RED — exactly the "more complex environments" question the
// paper's §7 leaves open for the probe process.
#ifndef BB_SIM_AQM_H
#define BB_SIM_AQM_H

#include <cstdint>

#include "sim/queue_base.h"
#include "util/rng.h"
#include "util/time.h"

namespace bb::sim {

// Proportional Integral controller Enhanced (RFC 8033, simplified: the
// simulated link rate is exact, so queueing delay is closed-form and no
// departure-rate estimator is needed).  Tail-drops probabilistically, with
// the probability servoed toward a target queueing delay by a periodic
// update; optionally CE-marks instead while the probability is moderate.
class PieQueue final : public QueueBase {
public:
    using Params = PieParams;

    PieQueue(Scheduler& sched, const LinkConfig& cfg, const PieParams& params,
             PacketSink& downstream, Rng rng);

    [[nodiscard]] double drop_probability() const noexcept { return drop_prob_; }
    // The periodic controller only runs while active; it deactivates when the
    // queue drains and the probability decays, so run-until-empty terminates.
    [[nodiscard]] bool active() const noexcept { return active_; }
    [[nodiscard]] std::uint64_t early_drops() const noexcept { return early_drops_; }
    [[nodiscard]] std::uint64_t early_marks() const noexcept { return early_marks_; }
    [[nodiscard]] std::uint64_t updates() const noexcept { return updates_; }

protected:
    Verdict admit(const Packet& pkt) override;

private:
    void update_probability();

    PieParams params_;
    Rng rng_;
    double drop_prob_{0.0};
    TimeNs qdelay_old_{TimeNs::zero()};
    TimeNs burst_left_{TimeNs::zero()};
    bool active_{false};
    std::uint64_t early_drops_{0};
    std::uint64_t early_marks_{0};
    std::uint64_t updates_{0};
};

// Controlled Delay.  No tail policy beyond the physical buffer; at the head
// it drops (or CE-marks) packets whose sojourn time has stayed above
// `target` for a full `interval`, then again on the deterministic
// interval/sqrt(count) schedule until the standing queue dissolves.
// Entirely deterministic: consumes no randomness.
class CoDelQueue final : public QueueBase {
public:
    using Params = CoDelParams;

    CoDelQueue(Scheduler& sched, const LinkConfig& cfg, const CoDelParams& params,
               PacketSink& downstream);

    [[nodiscard]] bool dropping() const noexcept { return dropping_; }
    [[nodiscard]] std::uint32_t drop_count() const noexcept { return count_; }
    // Next scheduled drop time while in the dropping state.
    [[nodiscard]] TimeNs drop_next() const noexcept { return drop_next_; }

protected:
    Verdict admit(const Packet& pkt) override;
    Verdict head_action(const Packet& pkt, TimeNs sojourn) override;

private:
    [[nodiscard]] TimeNs control_law(TimeNs t) const noexcept;

    CoDelParams params_;
    TimeNs first_above_time_{TimeNs::zero()};
    TimeNs drop_next_{TimeNs::zero()};
    std::uint32_t count_{0};
    std::uint32_t lastcount_{0};
    bool dropping_{false};
};

}  // namespace bb::sim

#endif  // BB_SIM_AQM_H
