// Packet representation and the sink interface all forwarding elements share.
#ifndef BB_SIM_PACKET_H
#define BB_SIM_PACKET_H

#include <cstdint>

#include "util/time.h"

namespace bb::sim {

enum class PacketKind : std::uint8_t {
    data,   // TCP segment or UDP payload
    ack,    // TCP acknowledgment
    probe,  // measurement probe (ZING or BADABING)
};

using FlowId = std::uint32_t;
using Address = std::uint32_t;  // host address, for routed topologies

// A packet is a value: no invariant ties the fields together, so it is a
// plain struct (C.2).  Fields that only apply to one kind (e.g. `ack_seq`)
// are ignored by the others.
struct Packet {
    std::uint64_t id{0};       // globally unique, assigned by the source
    FlowId flow{0};            // demultiplexing key
    Address src_addr{0};       // source host (0 = unaddressed, point-to-point)
    Address dst_addr{0};       // destination host
    PacketKind kind{PacketKind::data};
    std::int32_t size_bytes{0};
    std::int64_t seq{0};       // TCP: first byte carried; probe: probe sequence
    std::int64_t ack_seq{0};   // TCP acks: next expected byte
    std::int32_t probe_pkt{0};  // index of this packet within a multi-packet probe
    TimeNs sent_at{TimeNs::zero()};  // stamped when the source emitted it
    TimeNs tstamp_echo{TimeNs::zero()};  // TCP timestamp echo (ACKs), for RTT sampling
    // ECN codepoints (RFC 3168): ECT is set by an ECN-capable source, CE by an
    // AQM queue marking instead of dropping, and ECE on ACKs echoing CE back.
    bool ecn_ect{false};   // ECN-capable transport
    bool ecn_ce{false};    // congestion experienced (set by the queue)
    bool ecn_echo{false};  // ACK-borne echo of a received CE mark
    // Passive in-band loss signal: a square wave the sender flips every
    // fixed-size block of packets (the Q-bit of the spin-bit family); an
    // on-path observer counts arrivals per phase to infer upstream loss.
    bool qbit{false};
};

// Anything that can receive packets.  Receivers, queues and links all
// implement this, so topologies compose as chains of sinks.
class PacketSink {
public:
    virtual ~PacketSink() = default;
    virtual void accept(const Packet& pkt) = 0;
};

// Terminal sink that counts what reached it; handy in tests.
class CountingSink final : public PacketSink {
public:
    void accept(const Packet& pkt) override {
        ++packets_;
        bytes_ += pkt.size_bytes;
        last_ = pkt;
    }
    [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }
    [[nodiscard]] std::int64_t bytes() const noexcept { return bytes_; }
    [[nodiscard]] const Packet& last() const noexcept { return last_; }

private:
    std::uint64_t packets_{0};
    std::int64_t bytes_{0};
    Packet last_{};
};

}  // namespace bb::sim

#endif  // BB_SIM_PACKET_H
