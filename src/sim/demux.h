// Flow demultiplexer: routes packets leaving the bottleneck to the right
// receiving host (TCP receivers, probe receivers, byte sinks).
#ifndef BB_SIM_DEMUX_H
#define BB_SIM_DEMUX_H

#include <unordered_map>

#include "sim/packet.h"

namespace bb::sim {

class FlowDemux final : public PacketSink {
public:
    // Register a handler for a flow id.  The handler must outlive the demux.
    void bind(FlowId flow, PacketSink& sink) { routes_[flow] = &sink; }

    // Packets for unknown flows go to the default sink, if set; else they are
    // counted as stray and discarded.
    void set_default(PacketSink& sink) { default_ = &sink; }

    void accept(const Packet& pkt) override {
        if (auto it = routes_.find(pkt.flow); it != routes_.end()) {
            it->second->accept(pkt);
        } else if (default_ != nullptr) {
            default_->accept(pkt);
        } else {
            ++stray_;
        }
    }

    [[nodiscard]] std::uint64_t stray_packets() const noexcept { return stray_; }

private:
    std::unordered_map<FlowId, PacketSink*> routes_;
    PacketSink* default_{nullptr};
    std::uint64_t stray_{0};
};

}  // namespace bb::sim

#endif  // BB_SIM_DEMUX_H
