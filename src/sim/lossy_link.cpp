#include "sim/lossy_link.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace bb::sim {

namespace {
obs::Counter& ge_drops_ctr() {
    static obs::Counter& c = obs::counter("sim.ge.drops");
    return c;
}
}  // namespace

GilbertElliottLink::GilbertElliottLink(Scheduler& sched, const Config& cfg,
                                       PacketSink& downstream, Rng rng)
    : sched_{&sched}, cfg_{cfg}, downstream_{&downstream}, rng_{std::move(rng)} {
    if (cfg_.mean_good <= TimeNs::zero() || cfg_.mean_bad <= TimeNs::zero()) {
        throw std::invalid_argument{"GilbertElliottLink: state sojourns must be > 0"};
    }
    if (cfg_.p_good_loss < 0.0 || cfg_.p_good_loss > 1.0 || cfg_.p_bad_loss < 0.0 ||
        cfg_.p_bad_loss > 1.0) {
        throw std::invalid_argument{"GilbertElliottLink: loss probabilities must be in [0,1]"};
    }
    // The chain starts in GOOD with a fresh sojourn drawn at t=0.
    state_until_ = draw_sojourn(/*bad=*/false);
}

TimeNs GilbertElliottLink::draw_sojourn(bool bad) {
    return rng_.exponential(bad ? cfg_.mean_bad : cfg_.mean_good);
}

void GilbertElliottLink::advance_chain(TimeNs now) {
    // Lazily replay every state flip that happened while no packet was
    // looking.  Sojourns are exponential, so skipping ahead this way samples
    // the same process a per-flip event would.
    while (state_until_ <= now) {
        bad_ = !bad_;
        ++flips_;
        state_until_ += draw_sojourn(bad_);
    }
}

void GilbertElliottLink::accept(const Packet& pkt) {
    ++arrivals_;
    advance_chain(sched_->now());
    const double p_loss = bad_ ? cfg_.p_bad_loss : cfg_.p_good_loss;
    if (p_loss > 0.0 && rng_.bernoulli(p_loss)) {
        ++drops_;
        ge_drops_ctr().inc();
        const TimeNs at = sched_->now();
        for (auto& h : drop_hooks_) h(pkt, at);
        return;
    }
    if (cfg_.extra_delay > TimeNs::zero()) {
        sched_->deliver_after(cfg_.extra_delay, pkt, *downstream_);
    } else {
        downstream_->accept(pkt);
    }
}

double GilbertElliottLink::stationary_loss_rate() const noexcept {
    const double g = cfg_.mean_good.to_seconds();
    const double b = cfg_.mean_bad.to_seconds();
    const double pi_bad = b / (g + b);
    return (1.0 - pi_bad) * cfg_.p_good_loss + pi_bad * cfg_.p_bad_loss;
}

}  // namespace bb::sim
