#include "sim/link.h"

#include <algorithm>
#include <cmath>

namespace bb::sim {

RedQueue::RedQueue(Scheduler& sched, const LinkConfig& cfg, const RedParams& params,
                   PacketSink& downstream, Rng rng)
    : QueueBase{sched, cfg, downstream}, params_{params}, rng_{std::move(rng)} {
    // Track transitions to an empty queue for the idle-aging rule.
    on_dequeue([this](const QueueEvent& ev) {
        if (ev.queue_bytes_after == 0) {
            was_idle_ = true;
            idle_since_ = ev.at;
        }
    });
}

void RedQueue::update_average() {
    if (was_idle_) {
        // The queue has been empty since idle_since_ (any intervening arrival
        // would have cleared the flag), so this is the paper's "queue empty at
        // arrival" branch: age the average as if `m` empty-queue samples had
        // been taken, one per typical packet transmission time (500 B), and
        // take NO regular EWMA sample — aging IS the update for this arrival
        // (Floyd/Jacobson 1993, Figure 2).  Folding in an extra w_q·0 sample
        // here would double-count the idle period.
        const TimeNs idle = sched().now() - idle_since_;
        const double tx_s = 500.0 * 8.0 / static_cast<double>(rate_bps());
        const double m = std::max(0.0, idle.to_seconds() / tx_s);
        avg_ *= std::pow(1.0 - params_.weight, m);
        was_idle_ = false;
        return;
    }
    avg_ = (1.0 - params_.weight) * avg_ +
           params_.weight * static_cast<double>(queue_bytes());
}

QueueBase::Verdict RedQueue::admit(const Packet& pkt) {
    update_average();

    const double min_th = params_.min_threshold * static_cast<double>(capacity_bytes());
    const double max_th = params_.max_threshold * static_cast<double>(capacity_bytes());

    if (buffer_overflows(pkt) || avg_ >= max_th) {
        ++forced_drops_;
        count_since_drop_ = 0;
        return Verdict::drop;
    }
    if (avg_ > min_th) {
        ++count_since_drop_;
        const double pb =
            params_.max_drop_probability * (avg_ - min_th) / (max_th - min_th);
        const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
        const double pa = std::min(1.0, pb / std::max(1e-9, denom));
        if (rng_.bernoulli(pa)) {
            count_since_drop_ = 0;
            // Early (probabilistic) congestion signals can ride on ECN
            // instead of dropping; forced drops above never convert.
            if (params_.ecn && pkt.ecn_ect) {
                ++early_marks_;
                return Verdict::mark;
            }
            ++early_drops_;
            return Verdict::drop;
        }
        return Verdict::accept;
    }
    count_since_drop_ = -1;
    return Verdict::accept;
}

}  // namespace bb::sim
