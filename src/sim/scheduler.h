// Discrete-event scheduler.
//
// Events are closures ordered by (time, insertion sequence); ties are broken
// by insertion order so runs are fully deterministic.  Events can be
// cancelled (needed for TCP retransmission timers); cancellation is lazy.
#ifndef BB_SIM_SCHEDULER_H
#define BB_SIM_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace bb::sim {

using EventId = std::uint64_t;

class Scheduler {
public:
    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    [[nodiscard]] TimeNs now() const noexcept { return now_; }

    // Schedule `fn` to run at absolute time `at` (>= now).
    EventId schedule_at(TimeNs at, std::function<void()> fn);

    // Schedule `fn` to run `delay` after the current time.
    EventId schedule_after(TimeNs delay, std::function<void()> fn) {
        return schedule_at(now_ + delay, std::move(fn));
    }

    // Cancel a pending event.  Cancelling an already-fired or unknown id is a
    // harmless no-op.
    void cancel(EventId id) { cancelled_.insert(id); }

    // Run events until the queue is empty or simulated time would exceed
    // `t_end`.  Events scheduled exactly at `t_end` run.  On return, now() is
    // max(now, t_end) if the horizon was reached, else the last event time.
    void run_until(TimeNs t_end);

    // Run until the event queue drains completely.
    void run() { run_until(TimeNs::max()); }

    // Number of entries still in the heap (cancelled-but-unpopped entries are
    // included; the count is an upper bound on live events).
    [[nodiscard]] std::size_t pending_events() const noexcept { return heap_.size(); }
    [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

private:
    struct Entry {
        TimeNs at;
        EventId id;
        std::function<void()> fn;
    };
    // Min-heap on (at, id) via std::push_heap/pop_heap over a plain vector,
    // so entries stay mutable and the closure can be moved out when popped.
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.id > b.id;
        }
    };

    TimeNs now_{TimeNs::zero()};
    EventId next_id_{1};
    std::uint64_t executed_{0};
    std::vector<Entry> heap_;
    std::unordered_set<EventId> cancelled_;
};

}  // namespace bb::sim

#endif  // BB_SIM_SCHEDULER_H
