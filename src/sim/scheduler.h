// Discrete-event scheduler.
//
// Events are closures ordered by (time, insertion sequence); ties are broken
// by insertion order so runs are fully deterministic.  Events can be
// cancelled (needed for TCP retransmission timers).
//
// Hot-path design (DESIGN.md §9):
//   * Events are move-only UniqueFunction<void()> callables — captures up to
//     48 bytes live inline, so the common [this]-style events and pooled
//     packet deliveries never touch the heap.
//   * Event bodies are parked in a free-list arena; the ready queue is an
//     implicit 4-ary heap of 24-byte tickets (time, sequence, slot,
//     generation), which halves the tree depth of a binary heap and keeps
//     sift paths inside one or two cache lines.
//   * Cancellation bumps the arena slot's generation counter — O(1), no
//     hashing.  Tickets whose generation no longer matches are dropped
//     lazily at pop time; when more than half the heap is stale it is
//     compacted in place, so schedule/cancel churn can never grow the heap
//     (or the cancel bookkeeping) without bound.
#ifndef BB_SIM_SCHEDULER_H
#define BB_SIM_SCHEDULER_H

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/packet_pool.h"
#include "util/func.h"
#include "util/time.h"

namespace bb::sim {

// (generation << 32) | arena slot.  Ids are never reused: recycling a slot
// bumps its generation, so a stale id can neither cancel nor observe the
// event that now occupies the slot.
using EventId = std::uint64_t;

using Event = UniqueFunction<void()>;

class Scheduler {
public:
    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    [[nodiscard]] TimeNs now() const noexcept { return now_; }

    // Schedule `fn` to run at absolute time `at` (>= now).  The callable is
    // constructed directly in its arena slot — no intermediate Event moves.
    template <typename F>
    EventId schedule_at(TimeNs at, F&& fn) {
        if constexpr (std::is_same_v<std::decay_t<F>, Event>) {
            return schedule_event(at, std::forward<F>(fn));
        } else {
            check_future(at);
            const std::uint32_t s = acquire_raw_slot();
            arena_[s].fn.emplace(std::forward<F>(fn));
            return commit_slot(at, s);
        }
    }

    // Schedule `fn` to run `delay` after the current time.
    template <typename F>
    EventId schedule_after(TimeNs delay, F&& fn) {
        return schedule_at(now_ + delay, std::forward<F>(fn));
    }

    // Park `pkt` in the per-replica packet pool and deliver it to `sink`
    // after `delay`.  The event captures a 32-bit handle instead of the
    // 72-byte packet, so it stays inline; the slot is recycled on delivery.
    EventId deliver_after(TimeNs delay, const Packet& pkt, PacketSink& sink);

    // Cancel a pending event.  Cancelling an already-fired or unknown id is a
    // harmless O(1) no-op.
    void cancel(EventId id) noexcept;

    // Run events until the queue is empty or simulated time would exceed
    // `t_end`.  Events scheduled exactly at `t_end` run.  On return, now() is
    // max(now, t_end) if the horizon was reached, else the last event time.
    void run_until(TimeNs t_end);

    // Run until the event queue drains completely.
    void run() { run_until(TimeNs::max()); }

    // Pre-size the event arena and ready queue (and the packet pool) so the
    // steady state performs no allocations at all.
    void reserve(std::size_t events);

    // Number of tickets still in the ready queue (cancelled-but-uncompacted
    // tickets are included; the count is an upper bound on live events).
    [[nodiscard]] std::size_t pending_events() const noexcept { return heap_.size(); }
    // Exact number of scheduled-and-not-yet-fired (nor cancelled) events.
    [[nodiscard]] std::size_t live_events() const noexcept { return live_; }
    // Arena footprint, for bounded-memory assertions in tests and benches.
    [[nodiscard]] std::size_t arena_slots() const noexcept { return arena_.size(); }
    [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }
    [[nodiscard]] std::uint64_t cancelled_events() const noexcept { return cancelled_; }

    [[nodiscard]] PacketPool& packet_pool() noexcept { return packets_; }

    // Deep invariant walker (BB_AUDIT tier, DESIGN.md §10): heap order,
    // ticket/arena cross-referencing, free-list acyclicity and disjointness,
    // generation monotonicity, live/stale accounting.  O(arena + heap); a
    // violation aborts via BB_CHECK in any build.  Called automatically at
    // run_until() boundaries in BB_AUDIT=ON builds; cheap enough for tests
    // to call directly after every mutation.
    void check_invariants() const;

private:
#ifdef BB_TESTING
    // Lets contract_test corrupt private state to prove check_invariants()
    // catches real damage, without a public mutation API.
    friend struct SchedulerTestAccess;
#endif
    static constexpr std::uint32_t kNoFree = 0xFFFF'FFFFu;

    struct Slot {
        Event fn;
        std::uint32_t gen{0};
        std::uint32_t next_free{kNoFree};
    };
    // 24-byte heap ticket; the callable stays put in the arena while the
    // ticket percolates, so sifts move 24 bytes instead of a closure.
    struct Ticket {
        TimeNs at;
        std::uint64_t seq;  // insertion order, the deterministic tie-break
        std::uint32_t slot;
        std::uint32_t gen;
    };
    // The heap sifts move tickets with plain assignment and the perf model
    // assumes a 24-byte copy; a non-trivial or padded Ticket would silently
    // break both.
    static_assert(std::is_trivially_copyable_v<Ticket>);
    static_assert(sizeof(Ticket) == 24);

    EventId schedule_event(TimeNs at, Event ev);
    void check_future(TimeNs at) const;  // throws std::invalid_argument on past
    // Pop a free (or freshly grown) slot off the free list; fn is empty.
    [[nodiscard]] std::uint32_t acquire_raw_slot() {
        if (free_head_ == kNoFree) {
            arena_.emplace_back();
            return static_cast<std::uint32_t>(arena_.size() - 1);
        }
        const std::uint32_t s = free_head_;
        Slot& slot = arena_[s];
        free_head_ = slot.next_free;
        slot.next_free = kNoFree;
        return s;
    }
    // Ticket the filled slot `s` into the ready queue and mint its id.
    EventId commit_slot(TimeNs at, std::uint32_t s) {
        const std::uint32_t gen = arena_[s].gen;
        heap_push(Ticket{at, seq_++, s, gen});
        ++live_;
        return (static_cast<EventId>(gen) << 32) | s;
    }
    [[nodiscard]] bool ticket_live(const Ticket& t) const noexcept {
        return arena_[t.slot].gen == t.gen;
    }
    [[nodiscard]] static bool earlier(const Ticket& a, const Ticket& b) noexcept {
        if (a.at != b.at) return a.at < b.at;
        return a.seq < b.seq;
    }
    void heap_push(const Ticket& t);
    void heap_drop_top() noexcept;  // remove heap_[0], restore heap order
    void sift_down(std::size_t i) noexcept;
    void compact_if_mostly_stale();
    void release_slot(std::uint32_t slot) noexcept;

    TimeNs now_{TimeNs::zero()};
    std::uint64_t seq_{0};
    std::uint64_t executed_{0};
    std::uint64_t cancelled_{0};
    std::size_t live_{0};
    std::size_t stale_{0};  // cancelled tickets still sitting in the heap
    std::uint32_t free_head_{kNoFree};
    std::vector<Slot> arena_;
    std::vector<Ticket> heap_;
    PacketPool packets_;
};

}  // namespace bb::sim

#endif  // BB_SIM_SCHEDULER_H
