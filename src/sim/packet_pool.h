// Free-list arena for in-flight packets.
//
// A Packet is a 72-byte value; capturing one by value in a scheduler closure
// blows past the inline event buffer and forces a heap allocation per packet
// hop.  Parking the packet here instead lets the closure carry a 32-bit
// handle, so every packet-delivery event stays inline.  Each Scheduler (one
// per replica — replicas never share simulation state) owns one pool, so no
// synchronization is needed and slots are recycled for the lifetime of the
// run: steady-state forwarding performs zero allocations.
#ifndef BB_SIM_PACKET_POOL_H
#define BB_SIM_PACKET_POOL_H

#include <cstdint>
#include <vector>

#include "sim/packet.h"
#include "util/contract.h"

namespace bb::sim {

class PacketPool {
public:
    using Handle = std::uint32_t;

    // Park a copy of `pkt`; the slot stays owned by the pool until take().
    [[nodiscard]] Handle put(const Packet& pkt) {
        if (free_.empty()) {
            slots_.push_back(pkt);
            // Keep the free list's capacity in step with the slot count so
            // take() never allocates.
            free_.reserve(slots_.capacity());
            return static_cast<Handle>(slots_.size() - 1);
        }
        const Handle h = free_.back();
        free_.pop_back();
        slots_[h] = pkt;
        return h;
    }

    // Retrieve the parked packet and recycle its slot.  Each handle must be
    // taken exactly once.  A wild or double-taken handle would hand a stale
    // packet to a sink and silently corrupt loss accounting, so the bounds
    // check stays on in every build (one predictable branch per delivery).
    [[nodiscard]] Packet take(Handle h) noexcept {
        BB_CHECK_MSG(h < slots_.size(), "packet pool: handle out of bounds");
        BB_DCHECK_MSG(in_use() > 0, "packet pool: take() with no parked packets");
        free_.push_back(h);
        return slots_[h];
    }

    void reserve(std::size_t n) {
        slots_.reserve(n);
        free_.reserve(n);
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
    [[nodiscard]] std::size_t in_use() const noexcept { return slots_.size() - free_.size(); }

    // Deep walker (BB_AUDIT tier): the free list must be in bounds and
    // duplicate-free — a duplicated handle is exactly the double-take bug the
    // generation-less 32-bit handles cannot catch locally.
    void check_invariants() const {
        BB_CHECK_MSG(free_.size() <= slots_.size(), "packet pool: more free handles than slots");
        std::vector<std::uint8_t> seen(slots_.size(), 0);
        for (const Handle h : free_) {
            BB_CHECK_MSG(h < slots_.size(), "packet pool: free handle out of bounds");
            BB_CHECK_MSG(seen[h] == 0, "packet pool: handle freed twice (double take)");
            seen[h] = 1;
        }
    }

private:
    std::vector<Packet> slots_;
    std::vector<Handle> free_;
};

}  // namespace bb::sim

#endif  // BB_SIM_PACKET_POOL_H
