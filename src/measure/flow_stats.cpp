#include "measure/flow_stats.h"

#include <algorithm>

namespace bb::measure {

FlowStats::FlowStats(sim::QueueBase& queue, bool record_events)
    : record_events_{record_events} {
    queue.on_enqueue([this](const sim::QueueEvent& ev) { ++flows_[ev.pkt.flow].arrivals; });
    queue.on_drop([this](const sim::QueueEvent& ev) {
        PerFlow& f = flows_[ev.pkt.flow];
        ++f.arrivals;
        ++f.drops;
        ++total_drops_;
        if (record_events_) drop_events_.push_back({ev.at, ev.pkt.flow});
    });
    queue.on_dequeue([this](const sim::QueueEvent& ev) {
        PerFlow& f = flows_[ev.pkt.flow];
        ++f.departures;
        f.bytes_delivered += ev.pkt.size_bytes;
        ++total_departures_;
        if (record_events_) departure_events_.push_back({ev.at, ev.pkt.flow});
    });
}

double FlowStats::router_loss_rate() const noexcept {
    const auto total = static_cast<double>(total_drops_ + total_departures_);
    return total > 0 ? static_cast<double>(total_drops_) / total : 0.0;
}

std::unordered_set<sim::FlowId> FlowStats::flows_in(const std::vector<Event>& events,
                                                    TimeNs t0, TimeNs t1) {
    std::unordered_set<sim::FlowId> out;
    const auto lo = std::lower_bound(events.begin(), events.end(), t0,
                                     [](const Event& e, TimeNs t) { return e.at < t; });
    for (auto it = lo; it != events.end() && it->at <= t1; ++it) out.insert(it->flow);
    return out;
}

std::unordered_set<sim::FlowId> FlowStats::flows_active_in(TimeNs t0, TimeNs t1) const {
    return flows_in(departure_events_, t0, t1);
}

std::unordered_set<sim::FlowId> FlowStats::flows_dropped_in(TimeNs t0, TimeNs t1) const {
    return flows_in(drop_events_, t0, t1);
}

}  // namespace bb::measure
