// Per-flow accounting at the bottleneck: the paper's §3 distinction between
// the router-centric loss rate L/(S+L) and each flow's end-to-end loss rate,
// and its key observation that during a loss episode "there may be flows
// that do not lose any packets".
#ifndef BB_MEASURE_FLOW_STATS_H
#define BB_MEASURE_FLOW_STATS_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/queue_base.h"
#include "util/time.h"

namespace bb::measure {

class FlowStats {
public:
    struct PerFlow {
        std::uint64_t arrivals{0};
        std::uint64_t drops{0};
        std::uint64_t departures{0};
        std::int64_t bytes_delivered{0};

        // End-to-end loss rate as defined in §3: packets of this flow lost
        // over packets of this flow offered at the congested link.
        [[nodiscard]] double loss_rate() const noexcept {
            const auto total = static_cast<double>(drops + departures);
            return total > 0 ? static_cast<double>(drops) / total : 0.0;
        }
    };

    // `record_events` additionally keeps time-stamped per-flow drop and
    // departure logs, enabling per-episode queries (costs memory).
    explicit FlowStats(sim::QueueBase& queue, bool record_events = false);

    FlowStats(const FlowStats&) = delete;
    FlowStats& operator=(const FlowStats&) = delete;

    [[nodiscard]] const std::unordered_map<sim::FlowId, PerFlow>& flows() const noexcept {
        return flows_;
    }
    [[nodiscard]] double router_loss_rate() const noexcept;

    // Flows with at least one departure (resp. drop) in [t0, t1].  Requires
    // record_events.
    [[nodiscard]] std::unordered_set<sim::FlowId> flows_active_in(TimeNs t0, TimeNs t1) const;
    [[nodiscard]] std::unordered_set<sim::FlowId> flows_dropped_in(TimeNs t0, TimeNs t1) const;

    [[nodiscard]] bool records_events() const noexcept { return record_events_; }

private:
    struct Event {
        TimeNs at;
        sim::FlowId flow;
    };
    [[nodiscard]] static std::unordered_set<sim::FlowId> flows_in(
        const std::vector<Event>& events, TimeNs t0, TimeNs t1);

    bool record_events_;
    std::unordered_map<sim::FlowId, PerFlow> flows_;
    std::vector<Event> drop_events_;
    std::vector<Event> departure_events_;
    std::uint64_t total_drops_{0};
    std::uint64_t total_departures_{0};
};

}  // namespace bb::measure

#endif  // BB_MEASURE_FLOW_STATS_H
