#include "measure/loss_monitor.h"

namespace bb::measure {

LossMonitor::LossMonitor(sim::Scheduler& sched, sim::QueueBase& queue, Options opts)
    : queue_{&queue}, opts_{opts} {
    (void)sched;
    if (opts_.streaming_truth) truth_acc_.emplace(*opts_.streaming_truth);
    queue.on_drop([this](const sim::QueueEvent& ev) {
        const bool is_probe = ev.pkt.kind == sim::PacketKind::probe;
        if (is_probe) {
            ++probe_drops_;
        } else {
            ++cross_drops_;
        }
        if (is_probe && !opts_.count_probe_traffic) return;
        ++drops_count_;
        if (truth_acc_) truth_acc_->add_drop(ev.at);
        if (opts_.store_drops) drops_.push_back(ev.at);
    });
    queue.on_enqueue([this](const sim::QueueEvent& ev) {
        if (opts_.record_departures) enqueue_time_[ev.pkt.id] = ev.at;
    });
    queue.on_dequeue([this](const sim::QueueEvent& ev) {
        ++successes_;
        if (!opts_.record_departures) return;
        if (auto it = enqueue_time_.find(ev.pkt.id); it != enqueue_time_.end()) {
            departures_.push_back(DelayedDeparture{ev.at, ev.at - it->second});
            enqueue_time_.erase(it);
        }
    });
}

void LossMonitor::observe_external_drop(TimeNs at, bool is_probe) {
    // Mirrors the on_drop hook body: external losses count toward the same
    // truth record as queue drops.
    if (is_probe) {
        ++probe_drops_;
    } else {
        ++cross_drops_;
    }
    if (is_probe && !opts_.count_probe_traffic) return;
    ++drops_count_;
    if (truth_acc_) truth_acc_->add_drop(at);
    if (opts_.store_drops) drops_.push_back(at);
}

double LossMonitor::router_loss_rate() const noexcept {
    const auto lost = static_cast<double>(drops_count_);
    const auto total = lost + static_cast<double>(successes_);
    return total > 0 ? lost / total : 0.0;
}

QueueSampler::QueueSampler(sim::Scheduler& sched, const sim::QueueBase& queue,
                           TimeNs interval, TimeNs until)
    : sched_{&sched}, queue_{&queue}, interval_{interval}, until_{until} {
    sched_->schedule_after(interval_, [this] { sample(); });
}

void QueueSampler::sample() {
    series_.add(sched_->now().to_seconds(), queue_->queueing_delay().to_seconds());
    if (sched_->now() + interval_ <= until_) {
        sched_->schedule_after(interval_, [this] { sample(); });
    }
}

}  // namespace bb::measure
