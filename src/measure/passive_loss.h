// Passive in-band loss measurement with a Q-bit square wave — the
// sender-side cousin of the QUIC spin-bit loss bits (L/Q bits,
// draft-ietf-ippm-explicit-flow-measurements).  The sender flips a single
// header bit every `block_size` packets; a downstream observer counts
// arrivals per phase and infers upstream loss from short blocks.  This gives
// a comparison estimator for the active BADABING probe process: it measures
// the aggregate PACKET loss rate (the paper's "router-centric" rate), not
// episode frequency/duration, and it aliases when whole blocks vanish.
#ifndef BB_MEASURE_PASSIVE_LOSS_H
#define BB_MEASURE_PASSIVE_LOSS_H

#include <cstdint>
#include <vector>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace bb::measure {

// Sender side: stamps the Q-bit square wave onto everything passing through.
// Sits in front of the path under measurement; all flows share one wave
// (aggregate marking, like a marking middlebox at the ingress).
class QBitMarker final : public sim::PacketSink {
public:
    QBitMarker(std::uint32_t block_size, sim::PacketSink& downstream);

    void accept(const sim::Packet& pkt) override;

    [[nodiscard]] std::uint32_t block_size() const noexcept { return block_size_; }
    [[nodiscard]] std::uint64_t marked() const noexcept { return marked_; }
    // Completed blocks emitted so far (the wave has flipped this many times).
    [[nodiscard]] std::uint64_t blocks_started() const noexcept { return blocks_started_; }

private:
    std::uint32_t block_size_;
    sim::PacketSink* downstream_;
    bool phase_{false};
    std::uint32_t in_block_{0};
    std::uint64_t marked_{0};
    std::uint64_t blocks_started_{1};  // the first block starts implicitly
};

// Observer side: counts arrivals per Q-bit phase.  Each phase change closes
// a block; a closed block with fewer than block_size packets lost the
// difference upstream.
//
// Whole-block aliasing: if an ENTIRE block is lost, the two neighbouring
// blocks of the opposite phase merge into one observed run.  The estimator
// detects these over-full runs, reconstructs the spanned sender blocks
// (ceil(observed/block_size) same-phase blocks plus the fully-lost
// opposite-phase blocks between them), and charges the implied loss.  The
// merged-block counter below exposes how often this reconstruction fired.
class QBitObserver final : public sim::PacketSink {
public:
    struct Block {
        bool phase{false};
        std::uint64_t observed{0};
        TimeNs first_at{TimeNs::zero()};
        TimeNs last_at{TimeNs::zero()};
    };

    QBitObserver(std::uint32_t block_size, sim::Scheduler& sched,
                 sim::PacketSink& downstream);

    void accept(const sim::Packet& pkt) override;

    // Close the trailing (still-open) block.  Call once after the run; the
    // trailing block is only counted if it is full (a partial tail says
    // nothing about loss).
    void finalize();

    [[nodiscard]] const std::vector<Block>& blocks() const noexcept { return blocks_; }
    [[nodiscard]] std::uint64_t observed_packets() const noexcept { return observed_; }
    // Packets inferred lost across closed blocks, including losses
    // reconstructed from merged (phase-straddling) runs; see the aliasing
    // note above.
    [[nodiscard]] std::uint64_t lost_packets() const noexcept;
    [[nodiscard]] std::uint64_t expected_packets() const noexcept;
    // lost / expected over closed blocks; the passive estimate of the
    // router-centric loss rate.
    [[nodiscard]] double loss_rate() const noexcept;
    // Blocks whose count exceeded block_size: whole-block loss aliasing
    // happened at least this many times.
    [[nodiscard]] std::uint64_t merged_blocks() const noexcept;

private:
    void close_block();

    std::uint32_t block_size_;
    sim::Scheduler* sched_;
    sim::PacketSink* downstream_;
    std::vector<Block> blocks_;
    Block current_{};
    bool open_{false};
    std::uint64_t observed_{0};
};

}  // namespace bb::measure

#endif  // BB_MEASURE_PASSIVE_LOSS_H
