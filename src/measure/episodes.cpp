#include "measure/episodes.h"

#include <algorithm>

#include "util/contract.h"
#include "util/stats.h"

namespace bb::measure {

std::vector<LossEpisode> extract_episodes(const std::vector<TimeNs>& drop_times, TimeNs gap) {
    std::vector<LossEpisode> out;
    if (drop_times.empty()) return out;
    BB_DCHECK_MSG(std::is_sorted(drop_times.begin(), drop_times.end()),
                  "episode extraction: drop log must be time-ordered");

    LossEpisode cur{drop_times.front(), drop_times.front(), 1};
    for (std::size_t i = 1; i < drop_times.size(); ++i) {
        const TimeNs t = drop_times[i];
        if (t - cur.end <= gap) {
            cur.end = t;
            ++cur.drops;
        } else {
            out.push_back(cur);
            cur = LossEpisode{t, t, 1};
        }
    }
    out.push_back(cur);
    return out;
}

std::vector<LossEpisode> extract_episodes_delay_based(
    const std::vector<TimeNs>& drop_times, const std::vector<DelayedDeparture>& departures,
    TimeNs delay_floor, TimeNs gap) {
    // First cluster by gap as usual, then trim/merge based on whether the
    // departures between consecutive drops kept the queue near-full.  Two
    // adjacent clusters are merged when every departure between them stayed
    // above the delay floor (the queue never really drained).
    std::vector<LossEpisode> clusters = extract_episodes(drop_times, gap);
    if (clusters.size() < 2) return clusters;

    BB_DCHECK_MSG(std::is_sorted(departures.begin(), departures.end(),
                                 [](const DelayedDeparture& a, const DelayedDeparture& b) {
                                     return a.at < b.at;
                                 }),
                  "episode extraction: departures must be time-ordered");

    const auto queue_stayed_full = [&](TimeNs from, TimeNs to) {
        auto it = std::lower_bound(departures.begin(), departures.end(), from,
                                   [](const DelayedDeparture& d, TimeNs t) { return d.at < t; });
        bool saw_any = false;
        for (; it != departures.end() && it->at <= to; ++it) {
            saw_any = true;
            if (it->queueing_delay < delay_floor) return false;
        }
        return saw_any;
    };

    std::vector<LossEpisode> merged;
    merged.push_back(clusters.front());
    for (std::size_t i = 1; i < clusters.size(); ++i) {
        LossEpisode& prev = merged.back();
        const LossEpisode& next = clusters[i];
        if (queue_stayed_full(prev.end, next.start)) {
            prev.end = next.end;
            prev.drops += next.drops;
        } else {
            merged.push_back(next);
        }
    }
    return merged;
}

TruthSummary summarize_truth(const std::vector<LossEpisode>& episodes, TimeNs slot_width,
                             TimeNs window_begin, TimeNs window_end) {
    TruthSummary s;
    if (window_end <= window_begin || slot_width.ns() <= 0) return s;
    const std::int64_t total_slots = (window_end - window_begin) / slot_width;
    if (total_slots <= 0) return s;

    std::int64_t congested_slots = 0;
    RunningStats durations;
    for (const auto& e : episodes) {
        if (e.end < window_begin || e.start >= window_end) continue;
        const TimeNs lo = std::max(e.start, window_begin);
        const TimeNs hi = std::min(e.end, window_end);
        const std::int64_t first = (lo - window_begin) / slot_width;
        // The window is half-open: an episode touching window_end exactly
        // must not index one past the last slot.
        const std::int64_t last =
            std::min((hi - window_begin) / slot_width, total_slots - 1);
        congested_slots += (last - first + 1);
        durations.add(e.duration().to_seconds());
        ++s.episodes;
        s.total_drops += e.drops;
    }
    congested_slots = std::min(congested_slots, total_slots);
    s.frequency = static_cast<double>(congested_slots) / static_cast<double>(total_slots);
    s.mean_duration_s = durations.mean();
    s.sd_duration_s = durations.stddev();
    return s;
}

std::vector<bool> congestion_slots(const std::vector<LossEpisode>& episodes, TimeNs slot_width,
                                   TimeNs window_begin, TimeNs window_end) {
    const std::int64_t total_slots =
        slot_width.ns() > 0 ? (window_end - window_begin) / slot_width : 0;
    std::vector<bool> slots(static_cast<std::size_t>(std::max<std::int64_t>(total_slots, 0)),
                            false);
    for (const auto& e : episodes) {
        if (e.end < window_begin || e.start >= window_end) continue;
        const TimeNs lo = std::max(e.start, window_begin);
        const TimeNs hi = std::min(e.end, window_end);
        const auto first = static_cast<std::size_t>((lo - window_begin) / slot_width);
        auto last = static_cast<std::size_t>((hi - window_begin) / slot_width);
        last = std::min(last, slots.empty() ? 0 : slots.size() - 1);
        for (std::size_t i = first; i <= last && i < slots.size(); ++i) slots[i] = true;
    }
    return slots;
}

void EpisodeAccumulator::add_drop(TimeNs at) {
    ++drops_seen_;
    if (!open_) {
        current_ = LossEpisode{at, at, 1};
        open_ = true;
        return;
    }
    // The bounded-memory fold only works on a time-ordered drop stream; an
    // out-of-order drop would silently shrink the open episode.
    BB_DCHECK_MSG(at >= current_.end, "episode accumulator: drops must arrive in time order");
    if (at - current_.end <= cfg_.gap) {
        current_.end = at;
        ++current_.drops;
    } else {
        fold_episode(closed_, current_);
        current_ = LossEpisode{at, at, 1};
    }
}

void EpisodeAccumulator::fold_episode(Fold& fold, const LossEpisode& e) const {
    // Same window filter and slot clamping as summarize_truth.
    if (cfg_.window_end <= cfg_.window_begin || cfg_.slot_width.ns() <= 0) return;
    const std::int64_t total_slots = (cfg_.window_end - cfg_.window_begin) / cfg_.slot_width;
    if (total_slots <= 0) return;
    if (e.end < cfg_.window_begin || e.start >= cfg_.window_end) return;
    const TimeNs lo = std::max(e.start, cfg_.window_begin);
    const TimeNs hi = std::min(e.end, cfg_.window_end);
    const std::int64_t first = (lo - cfg_.window_begin) / cfg_.slot_width;
    const std::int64_t last =
        std::min((hi - cfg_.window_begin) / cfg_.slot_width, total_slots - 1);
    fold.congested_slots += (last - first + 1);
    fold.durations.add(e.duration().to_seconds());
    ++fold.episodes;
    fold.drops += e.drops;
}

TruthSummary EpisodeAccumulator::finalize() const {
    TruthSummary s;
    if (cfg_.window_end <= cfg_.window_begin || cfg_.slot_width.ns() <= 0) return s;
    const std::int64_t total_slots = (cfg_.window_end - cfg_.window_begin) / cfg_.slot_width;
    if (total_slots <= 0) return s;

    Fold fold = closed_;
    if (open_) fold_episode(fold, current_);

    const std::int64_t congested = std::min(fold.congested_slots, total_slots);
    s.frequency = static_cast<double>(congested) / static_cast<double>(total_slots);
    s.mean_duration_s = fold.durations.mean();
    s.sd_duration_s = fold.durations.stddev();
    s.episodes = fold.episodes;
    s.total_drops = fold.drops;
    return s;
}

std::vector<std::pair<std::int64_t, std::int64_t>> episode_slot_intervals(
    const std::vector<LossEpisode>& episodes, TimeNs slot_width, TimeNs window_begin) {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    out.reserve(episodes.size());
    for (const auto& e : episodes) {
        if (e.end < window_begin) continue;
        const TimeNs lo = std::max(e.start, window_begin);
        out.emplace_back((lo - window_begin) / slot_width, (e.end - window_begin) / slot_width);
    }
    return out;
}

}  // namespace bb::measure
