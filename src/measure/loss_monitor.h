// Ground-truth instrumentation of the bottleneck queue — the simulated
// equivalent of the paper's DAG passive-capture cards on either side of the
// congested hop.
#ifndef BB_MEASURE_LOSS_MONITOR_H
#define BB_MEASURE_LOSS_MONITOR_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "measure/episodes.h"
#include "sim/queue_base.h"
#include "util/stats.h"
#include "util/time.h"

namespace bb::measure {

// Records every drop and, optionally, per-packet queueing delays at the
// bottleneck.  Registration happens in the constructor; the monitor must
// outlive the queue's last event.
//
// With `streaming_truth` configured the monitor also feeds each drop into an
// online EpisodeAccumulator as it happens; combined with store_drops=false
// this bounds the monitor's memory regardless of run length (the raw drop
// log — and thus episodes()/drop_times() — is then unavailable).
class LossMonitor {
public:
    struct Options {
        bool record_departures{false};  // needed for the delay-based heuristic
        bool count_probe_traffic{true};  // include probe packets in "truth"
        bool store_drops{true};          // keep the raw drop log (batch APIs)
        std::optional<EpisodeAccumulator::Config> streaming_truth;
    };

    LossMonitor(sim::Scheduler& sched, sim::QueueBase& queue, Options opts);
    LossMonitor(sim::Scheduler& sched, sim::QueueBase& queue)
        : LossMonitor(sched, queue, Options{}) {}

    LossMonitor(const LossMonitor&) = delete;
    LossMonitor& operator=(const LossMonitor&) = delete;

    // Fold in a loss that happened somewhere other than the monitored queue
    // (e.g. a GilbertElliottLink downstream of it), so ground truth covers
    // the whole path.  Calls must be non-decreasing in time relative to the
    // queue's own drops; links downstream of the queue satisfy this
    // naturally because their drops fire at later simulated instants.
    void observe_external_drop(TimeNs at, bool is_probe);

    [[nodiscard]] const std::vector<TimeNs>& drop_times() const noexcept { return drops_; }
    [[nodiscard]] const std::vector<DelayedDeparture>& departures() const noexcept {
        return departures_;
    }
    [[nodiscard]] std::uint64_t drops_total() const noexcept { return drops_count_; }
    [[nodiscard]] std::uint64_t cross_traffic_drops() const noexcept {
        return cross_drops_;
    }
    [[nodiscard]] std::uint64_t probe_drops() const noexcept { return probe_drops_; }

    // Router-centric loss rate over the run: L / (S + L) (paper §3).
    [[nodiscard]] double router_loss_rate() const noexcept;

    // Episode extraction with the gap rule.
    [[nodiscard]] std::vector<LossEpisode> episodes(TimeNs gap) const {
        return extract_episodes(drops_, gap);
    }

    // Episode extraction with the delay-based (web traffic) heuristic.
    [[nodiscard]] std::vector<LossEpisode> episodes_delay_based(TimeNs delay_floor,
                                                                TimeNs gap) const {
        return extract_episodes_delay_based(drops_, departures_, delay_floor, gap);
    }

    // The online gap-rule truth accumulator, or nullptr when not configured.
    // finalize() on it is bit-identical to episodes(gap) + summarize_truth
    // over the configured window.
    [[nodiscard]] const EpisodeAccumulator* streaming_truth() const noexcept {
        return truth_acc_ ? &*truth_acc_ : nullptr;
    }

private:
    sim::QueueBase* queue_;
    Options opts_;
    std::vector<TimeNs> drops_;
    std::vector<DelayedDeparture> departures_;
    std::unordered_map<std::uint64_t, TimeNs> enqueue_time_;
    std::optional<EpisodeAccumulator> truth_acc_;
    std::uint64_t drops_count_{0};
    std::uint64_t cross_drops_{0};
    std::uint64_t probe_drops_{0};
    std::uint64_t successes_{0};
};

// Periodically samples the bottleneck occupancy, expressed as queueing delay
// in seconds — the y-axis of the paper's Figures 4-6 and 8.
class QueueSampler {
public:
    QueueSampler(sim::Scheduler& sched, const sim::QueueBase& queue, TimeNs interval,
                 TimeNs until);

    [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }

private:
    void sample();

    sim::Scheduler* sched_;
    const sim::QueueBase* queue_;
    TimeNs interval_;
    TimeNs until_;
    TimeSeries series_;
};

}  // namespace bb::measure

#endif  // BB_MEASURE_LOSS_MONITOR_H
