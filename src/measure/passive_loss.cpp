#include "measure/passive_loss.h"

#include <stdexcept>

namespace bb::measure {

QBitMarker::QBitMarker(std::uint32_t block_size, sim::PacketSink& downstream)
    : block_size_{block_size}, downstream_{&downstream} {
    if (block_size_ == 0) throw std::invalid_argument{"QBitMarker: block_size must be > 0"};
}

void QBitMarker::accept(const sim::Packet& pkt) {
    sim::Packet marked = pkt;
    marked.qbit = phase_;
    ++marked_;
    if (++in_block_ == block_size_) {
        phase_ = !phase_;
        in_block_ = 0;
        ++blocks_started_;
    }
    downstream_->accept(marked);
}

QBitObserver::QBitObserver(std::uint32_t block_size, sim::Scheduler& sched,
                           sim::PacketSink& downstream)
    : block_size_{block_size}, sched_{&sched}, downstream_{&downstream} {
    if (block_size_ == 0) throw std::invalid_argument{"QBitObserver: block_size must be > 0"};
}

void QBitObserver::close_block() {
    blocks_.push_back(current_);
    current_ = Block{};
    open_ = false;
}

void QBitObserver::accept(const sim::Packet& pkt) {
    const TimeNs now = sched_->now();
    if (open_ && pkt.qbit != current_.phase) close_block();
    if (!open_) {
        open_ = true;
        current_.phase = pkt.qbit;
        current_.observed = 0;
        current_.first_at = now;
    }
    ++current_.observed;
    current_.last_at = now;
    ++observed_;
    downstream_->accept(pkt);
}

void QBitObserver::finalize() {
    // Only keep the tail if it is a complete block; a short tail is just the
    // wave being cut off mid-block, not loss.
    if (open_ && current_.observed >= block_size_) close_block();
    open_ = false;
}

std::uint64_t QBitObserver::lost_packets() const noexcept {
    std::uint64_t lost = 0;
    for (const auto& b : blocks_) {
        if (b.observed < block_size_) {
            lost += block_size_ - b.observed;
        } else if (b.observed > block_size_) {
            // Merged run: the sender emitted n same-phase blocks with the
            // n-1 opposite-phase blocks between them entirely lost.
            const std::uint64_t n = (b.observed + block_size_ - 1) / block_size_;
            lost += n * block_size_ - b.observed + (n - 1) * block_size_;
        }
    }
    return lost;
}

std::uint64_t QBitObserver::expected_packets() const noexcept {
    std::uint64_t expected = 0;
    for (const auto& b : blocks_) {
        if (b.observed <= block_size_) {
            expected += block_size_;
        } else {
            // A merged run of n same-phase sender blocks implies 2n-1 sender
            // blocks in total (the n-1 interleaved opposite-phase blocks
            // vanished upstream).
            const std::uint64_t n = (b.observed + block_size_ - 1) / block_size_;
            expected += (2 * n - 1) * block_size_;
        }
    }
    return expected;
}

double QBitObserver::loss_rate() const noexcept {
    const auto expected = expected_packets();
    if (expected == 0) return 0.0;
    return static_cast<double>(lost_packets()) / static_cast<double>(expected);
}

std::uint64_t QBitObserver::merged_blocks() const noexcept {
    std::uint64_t merged = 0;
    for (const auto& b : blocks_) {
        if (b.observed > block_size_) ++merged;
    }
    return merged;
}

}  // namespace bb::measure
