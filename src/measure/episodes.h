// Loss-episode definitions and extraction (paper §3).
//
// The paper's router-centric view: a loss episode starts when the router
// buffer overflows and ends when drops cease "for a sufficient period of time
// (longer than typical RTT)".  We therefore cluster drop events: drops closer
// than `gap` belong to one episode; the episode spans first..last drop.
#ifndef BB_MEASURE_EPISODES_H
#define BB_MEASURE_EPISODES_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/stats.h"
#include "util/time.h"

namespace bb::measure {

struct LossEpisode {
    TimeNs start{TimeNs::zero()};
    TimeNs end{TimeNs::zero()};
    std::uint32_t drops{0};

    [[nodiscard]] TimeNs duration() const noexcept { return end - start; }
};

// Cluster sorted drop timestamps into episodes.  `gap` is the quiet period
// that terminates an episode (default should be on the order of the RTT).
[[nodiscard]] std::vector<LossEpisode> extract_episodes(const std::vector<TimeNs>& drop_times,
                                                        TimeNs gap);

// The delay-based heuristic the paper uses to delineate episodes under bursty
// web-like traffic: an episode is a maximal segment whose first and last
// events are drops and in which the queueing delay of every departure between
// them stays above `delay_floor` (paper: within 10 ms of the 100 ms maximum,
// i.e. >= 90 ms).
struct DelayedDeparture {
    TimeNs at;
    TimeNs queueing_delay;
};
[[nodiscard]] std::vector<LossEpisode> extract_episodes_delay_based(
    const std::vector<TimeNs>& drop_times, const std::vector<DelayedDeparture>& departures,
    TimeNs delay_floor, TimeNs gap);

// Ground-truth loss characteristics over an observation window, discretized
// to the probe slot width (paper §5: frequency of congested slots F, mean
// episode duration D).
struct TruthSummary {
    double frequency{0.0};         // fraction of slots overlapping an episode
    double mean_duration_s{0.0};   // mean episode duration, seconds
    double sd_duration_s{0.0};     // std dev of episode durations, seconds
    std::size_t episodes{0};
    std::uint64_t total_drops{0};
};

[[nodiscard]] TruthSummary summarize_truth(const std::vector<LossEpisode>& episodes,
                                           TimeNs slot_width, TimeNs window_begin,
                                           TimeNs window_end);

// True congested/uncongested indicator per slot over a window — the oracle
// series Y_i of §5.2.1, used by property tests and the synthetic consistency
// benches.
[[nodiscard]] std::vector<bool> congestion_slots(const std::vector<LossEpisode>& episodes,
                                                 TimeNs slot_width, TimeNs window_begin,
                                                 TimeNs window_end);

// Episodes as inclusive [first_slot, last_slot] intervals in the probe-slot
// discretization (input to core::match_episodes).
[[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> episode_slot_intervals(
    const std::vector<LossEpisode>& episodes, TimeNs slot_width, TimeNs window_begin);

// Online gap-rule episode clustering plus truth summarization over a fixed
// observation window, in O(1) memory: feed drop timestamps one at a time (in
// time order) instead of storing the full drop log.  finalize() is
// bit-identical to extract_episodes + summarize_truth over the same drops —
// episodes are folded into the summary in the same order with the same
// window filtering/clamping arithmetic.  (The delay-based web heuristic
// needs the departure record and stays batch-only.)
class EpisodeAccumulator {
public:
    struct Config {
        TimeNs gap{milliseconds(100)};      // quiet period terminating an episode
        TimeNs slot_width{milliseconds(5)};
        TimeNs window_begin{TimeNs::zero()};
        TimeNs window_end{TimeNs::zero()};
    };

    explicit EpisodeAccumulator(Config cfg) : cfg_{cfg} {}

    // Drop timestamps must be non-decreasing (the natural event order).
    void add_drop(TimeNs at);

    [[nodiscard]] TruthSummary finalize() const;

    [[nodiscard]] std::uint64_t drops_seen() const noexcept { return drops_seen_; }
    [[nodiscard]] const Config& config() const noexcept { return cfg_; }

private:
    struct Fold {
        std::int64_t congested_slots{0};
        RunningStats durations;
        std::size_t episodes{0};
        std::uint64_t drops{0};
    };

    void fold_episode(Fold& fold, const LossEpisode& e) const;

    Config cfg_;
    LossEpisode current_{};
    bool open_{false};
    std::uint64_t drops_seen_{0};
    Fold closed_{};
};

}  // namespace bb::measure

#endif  // BB_MEASURE_EPISODES_H
