// Parallel multi-replica experiment execution (Monte Carlo over seeds).
//
// The paper's evaluation reports point estimates from single 15-minute runs,
// yet §5.2 derives Var(F̂) and Figure 9 studies estimator sensitivity —
// variance is the story.  ReplicaRunner runs N independent copies of one
// experiment plan, each with its own RNG stream derived *positionally* from
// (master_seed, replica_index) via Rng::fork, and aggregates the per-replica
// results into mean / stddev / percentile-bootstrap confidence intervals.
//
// Concurrency model: scenarios::Experiment is non-copyable and strictly
// single-threaded; parallelism is across replicas only.  Each replica builds
// its whole world (testbed, workload, prober) inside its task, and results
// are stored by replica index.  Because seeds are computed serially before
// any task is submitted and aggregation walks results in index order, the
// output is bit-identical for any thread count — the scheduler can only
// change *when* a replica runs, never *what* it computes.
#ifndef BB_SCENARIOS_REPLICA_RUNNER_H
#define BB_SCENARIOS_REPLICA_RUNNER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "scenarios/experiment.h"

namespace bb::scenarios {

// Everything one replica needs; `workload.seed` is the master seed and is
// replaced by the replica's own derived seed before the run.
struct ReplicaPlan {
    TestbedConfig testbed;
    WorkloadConfig workload;
    TruthConfig truth;
    probes::BadabingConfig probe;
    // Marking rule for analyze(); defaults to the paper's tau/alpha-by-p rule.
    std::optional<core::MarkingConfig> marking;
    core::EstimatorOptions estimator{};
};

struct ReplicaResult {
    std::size_t index{0};
    std::uint64_t seed{0};
    measure::TruthSummary truth;
    probes::BadabingResult result;
    double offered_load{0.0};
    // Drops summed across the bottleneck and every upstream hop of this
    // replica's testbed; lets the obs counters be cross-checked against the
    // run summary exactly.
    std::uint64_t queue_drops{0};
    // Path-level extras used by the sweep engine's per-cell reports (the AQM
    // ablation keys).  Zero when the relevant instrumentation is off.
    std::size_t episodes{0};
    double path_loss_rate{0.0};      // (queue + GE drops) / queue arrivals
    double passive_loss_rate{0.0};   // Q-bit observer estimate of the same
    std::uint64_t qbit_merged_blocks{0};

    [[nodiscard]] double est_frequency() const noexcept { return result.frequency.value; }
    [[nodiscard]] double est_duration_s(TimeNs slot_width) const noexcept {
        return result.duration_basic.valid ? result.duration_basic.seconds(slot_width) : 0.0;
    }
};

// One metric collapsed across replicas.
struct AggregateStat {
    double mean{0.0};
    double stddev{0.0};              // sample stddev across replicas (0 if n < 2)
    core::BootstrapInterval ci;      // percentile bootstrap over replica values
};

// Per-plan aggregate row: the multi-replica analogue of a paper table row.
struct AggregateRow {
    double p{0.0};
    std::size_t replicas{0};
    AggregateStat true_frequency;
    AggregateStat est_frequency;
    AggregateStat true_duration_s;
    AggregateStat est_duration_s;
    AggregateStat offered_load;
};

class ReplicaRunner {
public:
    struct Config {
        std::size_t replicas{8};
        std::size_t threads{0};      // 0 = hardware concurrency
        std::uint64_t master_seed{7};
        std::size_t bootstrap_replicates{1000};
        double confidence{0.95};
    };

    explicit ReplicaRunner(Config cfg) : cfg_{cfg} {}

    [[nodiscard]] const Config& config() const noexcept { return cfg_; }

    // Per-replica seeds: Rng{master}.fork_seed(i) drawn in index order.  A
    // pure function of (master_seed, n) — prefix-stable, so growing n keeps
    // every earlier replica's stream unchanged.
    [[nodiscard]] static std::vector<std::uint64_t> replica_seeds(std::uint64_t master_seed,
                                                                  std::size_t n);

    // Run cfg.replicas independent copies of `plan` across cfg.threads
    // workers.  results[i] always belongs to replica i.
    [[nodiscard]] std::vector<ReplicaResult> run(const ReplicaPlan& plan) const;

    // Collapse per-replica results (in index order) into an AggregateRow.
    // Deterministic given (results, master_seed); does not depend on how the
    // results were scheduled.
    [[nodiscard]] AggregateRow aggregate(const ReplicaPlan& plan,
                                         const std::vector<ReplicaResult>& results) const;

private:
    Config cfg_;
};

// JSON document for a list of aggregate rows plus their per-replica
// trajectories (one entry per row, rows[i] aggregated from replicas[i]).
// Emitted by the table benches as BENCH_<name>.json and by badabing_sim
// --json for downstream plotting.
[[nodiscard]] std::string aggregate_rows_json(const std::string& label, TimeNs slot_width,
                                              const std::vector<AggregateRow>& rows,
                                              const std::vector<std::vector<ReplicaResult>>& replicas);

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_REPLICA_RUNNER_H
