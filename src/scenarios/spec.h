// Declarative scenario DSL: every hand-wired table/figure scenario as data.
//
// A ScenarioSpec is the parsed, validated, defaulted form of a JSON spec
// file covering all layers of one experiment: topology + link (rate, delay,
// buffer, queue discipline, ECN, Gilbert-Elliott), traffic mix, probe
// configuration (badabing / zing / sting, streaming on/off), truth knobs,
// marking overrides, and run controls (replicas / threads / seed).  The
// factories at the bottom turn a spec into the same Testbed / Experiment /
// ReplicaPlan objects the hand-wired scenarios build — the golden suites
// pin that the two paths are bit-identical.
//
// Parsing is strict: unknown keys, out-of-range values, and type mismatches
// all fail with a one-line "<file>:<line>: <section>.<key>: <why>"
// diagnostic suitable for printing verbatim from a CLI.
#ifndef BB_SCENARIOS_SPEC_H
#define BB_SCENARIOS_SPEC_H

#include <memory>
#include <optional>
#include <string>

#include "probes/sting.h"
#include "scenarios/experiment.h"
#include "scenarios/figure3.h"
#include "scenarios/replica_runner.h"
#include "util/json.h"

namespace bb::scenarios {

struct ScenarioSpec {
    enum class Topology { dumbbell, figure3 };
    enum class ProbeTool { badabing, zing, sting, none };

    std::string name;  // label for outputs; defaults to the file stem or "scenario"
    Topology topology{Topology::dumbbell};

    TestbedConfig testbed;
    Figure3Testbed::Config figure3;  // used when topology == figure3
    WorkloadConfig workload;
    TruthConfig truth;

    ProbeTool tool{ProbeTool::badabing};
    probes::BadabingConfig badabing;
    probes::ZingProber::Config zing;
    probes::StingProber::Config sting;
    // Streaming analysis path (bounded-memory truth + O(1) report consumers),
    // as exposed by the tools' --stream flag.
    bool streaming{false};

    // Marking overrides; unset means the paper's per-p defaults
    // (tau_for_probe_rate / alpha_for_probe_rate via Experiment).
    std::optional<double> marking_alpha;
    std::optional<TimeNs> marking_tau;
    core::EstimatorOptions estimator;

    // Run controls ("run" section).
    std::size_t replicas{1};
    std::size_t threads{0};  // 0 = hardware concurrency
    std::uint64_t seed{7};
};

struct SpecResult {
    bool ok{false};
    ScenarioSpec spec;
    // One line, "<source>:<line>: <key path>: <message>" — print verbatim.
    std::string error;
};

// Parse + validate + default a spec from an already-parsed JSON document.
[[nodiscard]] SpecResult parse_scenario_spec(const JsonValue& doc,
                                             std::string_view source);
// Convenience wrappers over json_parse / json_parse_file.
[[nodiscard]] SpecResult load_scenario_spec_text(std::string_view text,
                                                 std::string_view source);
[[nodiscard]] SpecResult load_scenario_spec_file(const std::string& path);

// Enum <-> spelling used by the DSL (and by sweep-axis values).
[[nodiscard]] const char* to_string(QueueDiscipline d) noexcept;
[[nodiscard]] const char* to_string(TrafficKind k) noexcept;
[[nodiscard]] const char* to_string(ScenarioSpec::ProbeTool t) noexcept;

// --- Factories ---------------------------------------------------------------

// The dumbbell testbed exactly as the hand-wired scenarios construct it.
// Direct `Testbed{...}` construction outside src/scenarios is lint-banned
// (no-adhoc-scenario); this is the sanctioned path.
[[nodiscard]] std::unique_ptr<Testbed> build_testbed(const ScenarioSpec& spec);
// The Figure 3 multi-hop topology (topology == figure3).
[[nodiscard]] std::unique_ptr<Figure3Testbed> build_figure3_testbed(
    const ScenarioSpec& spec);

// A fully wired single-run experiment: testbed + workload + truth + the
// spec's probe tool attached.  Only the dumbbell topology can host an
// Experiment; figure3 specs must go through build_figure3_testbed.
struct BuiltExperiment {
    std::unique_ptr<Experiment> experiment;
    probes::BadabingTool* badabing{nullptr};  // set when tool == badabing
    probes::ZingProber* zing{nullptr};        // set when tool == zing
    probes::StingProber* sting{nullptr};      // set when tool == sting
};
[[nodiscard]] BuiltExperiment build_experiment(const ScenarioSpec& spec);

// Marking parameters for analyze(): the spec's explicit alpha/tau when set,
// else the paper's defaults for the spec's probe rate.
[[nodiscard]] core::MarkingConfig marking_for(const ScenarioSpec& spec);

// The multi-replica plan the sweep engine and table benches feed to
// ReplicaRunner.  Requires tool == badabing (the replica harness estimates
// with BADABING); callers gate on spec.tool first.
[[nodiscard]] ReplicaPlan replica_plan_from(const ScenarioSpec& spec);
[[nodiscard]] ReplicaRunner::Config runner_config_from(const ScenarioSpec& spec);

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_SPEC_H
