// Full reproduction of the paper's Figure 3 testbed topology:
//
//   traffic hosts --GE--> [hop B GSR] --OC12--+
//                                              +--[hop C: OC3 bottleneck,
//   probe host    --GE--> [hop B GSR] --OC12--+    +50 ms delay emulator]
//                                                  --> [hop D router] --GE--> hosts
//
// Cross traffic and probe traffic traverse *separate* hop-B routers and
// OC12 links (as in the paper, to accommodate the DAG taps) and multiplex
// only at the congested OC3 hop C.  Rates are scaled by the same factor as
// the simple dumbbell (OC3 -> bottleneck_rate; OC12 = 4x; GE treated as
// delay-only).
//
// The simple `Testbed` collapses all of this into one queue; this class
// exists to validate that collapse: the loss process at hop C is identical
// because only hop C congests.
#ifndef BB_SCENARIOS_FIGURE3_H
#define BB_SCENARIOS_FIGURE3_H

#include <memory>

#include "sim/demux.h"
#include "sim/link.h"
#include "sim/router.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace bb::scenarios {

class Figure3Testbed {
public:
    // Host addresses in the topology.
    static constexpr sim::Address kTrafficSender = 1;
    static constexpr sim::Address kProbeSender = 2;
    static constexpr sim::Address kTrafficReceiver = 3;
    static constexpr sim::Address kProbeReceiver = 4;

    struct Config {
        std::int64_t oc3_rate_bps{30'000'000};   // the scaled bottleneck
        int oc12_factor{4};                      // OC12 / OC3 rate ratio
        TimeNs prop_delay{milliseconds(50)};     // the Adtech delay emulator
        TimeNs buffer_time{milliseconds(100)};   // hop C output buffer
        TimeNs ge_delay{microseconds(50)};       // GE access segments
    };

    explicit Figure3Testbed(const Config& cfg);
    Figure3Testbed() : Figure3Testbed(Config{}) {}

    Figure3Testbed(const Figure3Testbed&) = delete;
    Figure3Testbed& operator=(const Figure3Testbed&) = delete;

    [[nodiscard]] sim::Scheduler& sched() noexcept { return sched_; }

    // Ingress points for the two sender hosts (already address-stamped).
    [[nodiscard]] sim::PacketSink& traffic_sender_in() noexcept { return *traffic_stamper_; }
    [[nodiscard]] sim::PacketSink& probe_sender_in() noexcept { return *probe_stamper_; }
    // Reverse path (ACKs) back to the sending side.
    [[nodiscard]] sim::PacketSink& reverse_in() noexcept { return *reverse_; }

    // The congested hop C queue — where the DAG taps sit.
    [[nodiscard]] sim::QueueBase& bottleneck() noexcept { return *hop_c_; }
    // The hop-B OC12 queues (should never congest).
    [[nodiscard]] sim::QueueBase& hop_b_traffic() noexcept { return *hop_b_traffic_; }
    [[nodiscard]] sim::QueueBase& hop_b_probe() noexcept { return *hop_b_probe_; }
    [[nodiscard]] sim::Router& hop_d() noexcept { return hop_d_; }

    // Receiving-side demultiplexers (by flow id, per receiver host).
    [[nodiscard]] sim::FlowDemux& traffic_receiver() noexcept { return traffic_rx_; }
    [[nodiscard]] sim::FlowDemux& probe_receiver() noexcept { return probe_rx_; }
    [[nodiscard]] sim::FlowDemux& rev_demux() noexcept { return rev_demux_; }

    [[nodiscard]] const Config& config() const noexcept { return cfg_; }

private:
    Config cfg_;
    sim::Scheduler sched_;
    sim::CountingSink blackhole_;
    sim::FlowDemux traffic_rx_;
    sim::FlowDemux probe_rx_;
    sim::FlowDemux rev_demux_;
    sim::Router hop_d_;
    std::unique_ptr<sim::DelayLink> ge_to_traffic_rx_;
    std::unique_ptr<sim::DelayLink> ge_to_probe_rx_;
    std::unique_ptr<sim::QueueBase> hop_c_;
    std::unique_ptr<sim::QueueBase> hop_b_traffic_;
    std::unique_ptr<sim::QueueBase> hop_b_probe_;
    std::unique_ptr<sim::AddressStamper> traffic_stamper_;
    std::unique_ptr<sim::AddressStamper> probe_stamper_;
    std::unique_ptr<sim::DelayLink> reverse_;
};

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_FIGURE3_H
