// Experiment driver: testbed + workload + ground truth + optional probers,
// run end to end.  This is the shared harness behind every table/figure
// bench and the examples.
#ifndef BB_SCENARIOS_EXPERIMENT_H
#define BB_SCENARIOS_EXPERIMENT_H

#include <memory>
#include <optional>

#include "measure/loss_monitor.h"
#include "probes/badabing.h"
#include "probes/sting.h"
#include "probes/zing.h"
#include "scenarios/testbed.h"
#include "scenarios/workload.h"
#include "tcp/tcp_receiver.h"

namespace bb::scenarios {

struct TruthConfig {
    TimeNs slot_width{milliseconds(5)};
    // Quiet gap that terminates an episode (~ the path RTT, see §3).
    TimeNs episode_gap{milliseconds(100)};
    // Use the delay-based delineation heuristic (the paper applies it to the
    // bursty web scenario, §4.2).
    bool delay_based{false};
    TimeNs delay_floor{milliseconds(90)};
    // Drop the raw per-drop log and compute truth() through the online
    // EpisodeAccumulator instead, bounding monitor memory regardless of run
    // length.  Incompatible with delay_based (which needs the full record);
    // episodes() is unavailable in this mode.
    bool bounded_memory{false};
};

class Experiment {
public:
    Experiment(const TestbedConfig& tb_cfg, const WorkloadConfig& wl_cfg,
               TruthConfig truth_cfg = {});

    Experiment(const Experiment&) = delete;
    Experiment& operator=(const Experiment&) = delete;

    // --- attach probers before run() ---------------------------------------
    probes::ZingProber& add_zing(const probes::ZingProber::Config& cfg);
    probes::BadabingTool& add_badabing(const probes::BadabingConfig& cfg);
    probes::FixedIntervalProber& add_fixed_prober(
        const probes::FixedIntervalProber::Config& cfg);
    // STING measures against a live TCP responder; this wires the prober, the
    // far-side responder, and the reverse ACK path in one call.
    probes::StingProber& add_sting(const probes::StingProber::Config& cfg);

    // Run the workload plus a drain margin so in-flight packets settle.
    void run();

    // --- results ------------------------------------------------------------
    [[nodiscard]] measure::TruthSummary truth() const;
    [[nodiscard]] std::vector<measure::LossEpisode> episodes() const;

    [[nodiscard]] Testbed& testbed() noexcept { return testbed_; }
    [[nodiscard]] Workload& workload() noexcept { return workload_; }
    [[nodiscard]] measure::LossMonitor& monitor() noexcept { return *monitor_; }
    [[nodiscard]] const WorkloadConfig& workload_config() const noexcept {
        return workload_cfg_;
    }
    [[nodiscard]] const TruthConfig& truth_config() const noexcept { return truth_cfg_; }

    // Default marking parameters used throughout §6.2: tau = expected time
    // between probes plus one standard deviation; alpha per probe rate.
    [[nodiscard]] core::MarkingConfig default_marking(double p) const;

private:
    WorkloadConfig workload_cfg_;
    TruthConfig truth_cfg_;
    Testbed testbed_;
    std::unique_ptr<measure::LossMonitor> monitor_;
    Workload workload_;

    std::vector<std::unique_ptr<probes::ZingProber>> zing_;
    std::vector<std::unique_ptr<probes::BadabingTool>> badabing_;
    std::vector<std::unique_ptr<probes::FixedIntervalProber>> fixed_;
    std::vector<std::unique_ptr<probes::StingProber>> sting_;
    std::vector<std::unique_ptr<tcp::TcpReceiver>> sting_responders_;
    sim::FlowId next_probe_flow_{7000};
    bool ran_{false};
};

// tau selection rule from §6.2: expected time between probes plus one
// standard deviation of the geometric inter-probe gap.
[[nodiscard]] TimeNs tau_for_probe_rate(double p, TimeNs slot_width) noexcept;

// alpha selection used for Tables 4-6 (paper §6.2): 0.2 for p = 0.1, 0.1 for
// p in {0.3, 0.5}, 0.5 for p in {0.7, 0.9}.
[[nodiscard]] double alpha_for_probe_rate(double p) noexcept;

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_EXPERIMENT_H
