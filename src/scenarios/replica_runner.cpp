#include "scenarios/replica_runner.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"
#include "util/contract.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace bb::scenarios {

namespace {

ReplicaResult run_one(const ReplicaPlan& plan, std::size_t index, std::uint64_t seed) {
    const obs::Span span{"replica", "scenarios", "replica",
                         static_cast<std::int64_t>(index)};
    TestbedConfig tb = plan.testbed;
    // RED's randomized drops get their own stream so queue and workload
    // randomness stay decoupled within a replica.
    tb.seed = seed ^ 0x5EEDULL;
    WorkloadConfig wl = plan.workload;
    wl.seed = seed;

    Experiment exp{tb, wl, plan.truth};
    auto& tool = exp.add_badabing(plan.probe);
    exp.run();

    ReplicaResult r;
    r.index = index;
    r.seed = seed;
    r.truth = exp.truth();
    const core::MarkingConfig marking =
        plan.marking ? *plan.marking : exp.default_marking(plan.probe.p);
    r.result = tool.analyze(marking, plan.estimator);
    r.offered_load = tool.offered_load_fraction(tb.bottleneck_rate_bps);
    r.queue_drops = exp.testbed().bottleneck().drops();
    for (const auto& hop : exp.testbed().upstream_hops()) r.queue_drops += hop->drops();
    return r;
}

AggregateStat collapse(const std::vector<double>& values, const ReplicaRunner::Config& cfg,
                       Rng& rng) {
    AggregateStat s;
    RunningStats stats;
    for (double v : values) stats.add(v);
    s.mean = stats.mean();
    s.stddev = stats.stddev();
    s.ci = core::bootstrap_mean(values, cfg.bootstrap_replicates, cfg.confidence, rng);
    return s;
}

void append_stat(std::string& out, const char* name, const AggregateStat& s) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "\"%s\":{\"mean\":%.9g,\"stddev\":%.9g,\"ci_lo\":%.9g,\"ci_hi\":%.9g},",
                  name, s.mean, s.stddev, s.ci.lo, s.ci.hi);
    out += buf;
}

}  // namespace

std::vector<std::uint64_t> ReplicaRunner::replica_seeds(std::uint64_t master_seed,
                                                        std::size_t n) {
    Rng master{master_seed};
    std::vector<std::uint64_t> seeds;
    seeds.reserve(n);
    for (std::size_t i = 0; i < n; ++i) seeds.push_back(master.fork_seed(i));
    return seeds;
}

std::vector<ReplicaResult> ReplicaRunner::run(const ReplicaPlan& plan) const {
    const auto seeds = replica_seeds(cfg_.master_seed, cfg_.replicas);
    std::vector<ReplicaResult> results(cfg_.replicas);
    if (cfg_.replicas == 0) return results;

    // Never spin up more workers than replicas.
    const std::size_t want = cfg_.threads == 0 ? ThreadPool::default_threads() : cfg_.threads;
    const std::size_t threads = std::min(want, cfg_.replicas);
    if (threads <= 1) {
        for (std::size_t i = 0; i < cfg_.replicas; ++i) {
            results[i] = run_one(plan, i, seeds[i]);
        }
        return results;
    }

    ThreadPool pool{threads};
    pool.for_each_index(cfg_.replicas, [&plan, &seeds, &results](std::size_t i) {
        results[i] = run_one(plan, i, seeds[i]);
    });
    // Bit-identical aggregates at any thread count rest on every worker
    // having written its own slot with its own positional seed.
    for (std::size_t i = 0; i < results.size(); ++i) {
        BB_DCHECK_MSG(results[i].index == i && results[i].seed == seeds[i],
                      "replica runner: replica result landed in the wrong slot");
    }
    return results;
}

AggregateRow ReplicaRunner::aggregate(const ReplicaPlan& plan,
                                      const std::vector<ReplicaResult>& results) const {
    const obs::Span span{"aggregate", "scenarios"};
    AggregateRow row;
    row.p = plan.probe.p;
    row.replicas = results.size();

    std::vector<double> true_f, est_f, true_d, est_d, load;
    true_f.reserve(results.size());
    est_f.reserve(results.size());
    true_d.reserve(results.size());
    est_d.reserve(results.size());
    load.reserve(results.size());
    for (const auto& r : results) {
        true_f.push_back(r.truth.frequency);
        est_f.push_back(r.est_frequency());
        true_d.push_back(r.truth.mean_duration_s);
        est_d.push_back(r.est_duration_s(plan.probe.slot_width));
        load.push_back(r.offered_load);
    }

    // One serial bootstrap stream per aggregation keeps the row a pure
    // function of (results order, master_seed) — thread count cannot leak in.
    Rng rng{cfg_.master_seed ^ 0xB007B007ULL};
    row.true_frequency = collapse(true_f, cfg_, rng);
    row.est_frequency = collapse(est_f, cfg_, rng);
    row.true_duration_s = collapse(true_d, cfg_, rng);
    row.est_duration_s = collapse(est_d, cfg_, rng);
    row.offered_load = collapse(load, cfg_, rng);
    return row;
}

std::string aggregate_rows_json(const std::string& label, TimeNs slot_width,
                                const std::vector<AggregateRow>& rows,
                                const std::vector<std::vector<ReplicaResult>>& replicas) {
    std::string out = "{\"label\":\"" + label + "\",\"rows\":[";
    char buf[512];
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        if (i > 0) out += ',';
        std::snprintf(buf, sizeof buf, "{\"p\":%.9g,\"replicas\":%zu,", row.p, row.replicas);
        out += buf;
        append_stat(out, "true_frequency", row.true_frequency);
        append_stat(out, "est_frequency", row.est_frequency);
        append_stat(out, "true_duration_s", row.true_duration_s);
        append_stat(out, "est_duration_s", row.est_duration_s);
        append_stat(out, "offered_load", row.offered_load);
        std::uint64_t total_drops = 0;
        std::uint64_t total_experiments = 0;
        out += "\"trajectory\":[";
        if (i < replicas.size()) {
            for (std::size_t k = 0; k < replicas[i].size(); ++k) {
                const auto& r = replicas[i][k];
                if (k > 0) out += ',';
                std::snprintf(buf, sizeof buf,
                              "{\"replica\":%zu,\"seed\":%llu,\"true_frequency\":%.9g,"
                              "\"est_frequency\":%.9g,\"true_duration_s\":%.9g,"
                              "\"est_duration_s\":%.9g,\"queue_drops\":%llu,"
                              "\"experiments\":%llu}",
                              r.index, static_cast<unsigned long long>(r.seed),
                              r.truth.frequency, r.est_frequency(), r.truth.mean_duration_s,
                              r.est_duration_s(slot_width),
                              static_cast<unsigned long long>(r.queue_drops),
                              static_cast<unsigned long long>(r.result.experiments));
                out += buf;
                total_drops += r.queue_drops;
                total_experiments += r.result.experiments;
            }
        }
        out += "],";
        std::snprintf(buf, sizeof buf,
                      "\"total_queue_drops\":%llu,\"total_experiments\":%llu}",
                      static_cast<unsigned long long>(total_drops),
                      static_cast<unsigned long long>(total_experiments));
        out += buf;
    }
    out += "]}\n";
    return out;
}

}  // namespace bb::scenarios
