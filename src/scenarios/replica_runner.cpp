#include "scenarios/replica_runner.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"
#include "util/contract.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace bb::scenarios {

namespace {

ReplicaResult run_one(const ReplicaPlan& plan, std::size_t index, std::uint64_t seed) {
    const obs::Span span{"replica", "scenarios", "replica",
                         static_cast<std::int64_t>(index)};
    TestbedConfig tb = plan.testbed;
    // RED's randomized drops get their own stream so queue and workload
    // randomness stay decoupled within a replica.
    tb.seed = seed ^ 0x5EEDULL;
    WorkloadConfig wl = plan.workload;
    wl.seed = seed;

    Experiment exp{tb, wl, plan.truth};
    auto& tool = exp.add_badabing(plan.probe);
    exp.run();

    ReplicaResult r;
    r.index = index;
    r.seed = seed;
    r.truth = exp.truth();
    const core::MarkingConfig marking =
        plan.marking ? *plan.marking : exp.default_marking(plan.probe.p);
    r.result = tool.analyze(marking, plan.estimator);
    r.offered_load = tool.offered_load_fraction(tb.bottleneck_rate_bps);
    r.queue_drops = exp.testbed().bottleneck().drops();
    for (const auto& hop : exp.testbed().upstream_hops()) r.queue_drops += hop->drops();
    r.episodes = r.truth.episodes;
    const auto& queue = exp.testbed().bottleneck();
    const std::uint64_t ge_drops = exp.testbed().ge() ? exp.testbed().ge()->drops() : 0;
    if (queue.arrivals() > 0) {
        r.path_loss_rate = static_cast<double>(queue.drops() + ge_drops) /
                           static_cast<double>(queue.arrivals());
    }
    if (auto* obs = exp.testbed().qbit_observer()) {
        r.passive_loss_rate = obs->loss_rate();
        r.qbit_merged_blocks = obs->merged_blocks();
    }
    return r;
}

AggregateStat collapse(const std::vector<double>& values, const ReplicaRunner::Config& cfg,
                       Rng& rng) {
    AggregateStat s;
    RunningStats stats;
    for (double v : values) stats.add(v);
    s.mean = stats.mean();
    s.stddev = stats.stddev();
    s.ci = core::bootstrap_mean(values, cfg.bootstrap_replicates, cfg.confidence, rng);
    return s;
}

void write_stat(JsonWriter& w, const char* name, const AggregateStat& s) {
    w.key(name).begin_object();
    w.key("mean").value_double(s.mean);
    w.key("stddev").value_double(s.stddev);
    w.key("ci_lo").value_double(s.ci.lo);
    w.key("ci_hi").value_double(s.ci.hi);
    w.end_object();
}

}  // namespace

std::vector<std::uint64_t> ReplicaRunner::replica_seeds(std::uint64_t master_seed,
                                                        std::size_t n) {
    Rng master{master_seed};
    std::vector<std::uint64_t> seeds;
    seeds.reserve(n);
    for (std::size_t i = 0; i < n; ++i) seeds.push_back(master.fork_seed(i));
    return seeds;
}

std::vector<ReplicaResult> ReplicaRunner::run(const ReplicaPlan& plan) const {
    const auto seeds = replica_seeds(cfg_.master_seed, cfg_.replicas);
    std::vector<ReplicaResult> results(cfg_.replicas);
    if (cfg_.replicas == 0) return results;

    // Never spin up more workers than replicas.
    const std::size_t want = cfg_.threads == 0 ? ThreadPool::default_threads() : cfg_.threads;
    const std::size_t threads = std::min(want, cfg_.replicas);
    if (threads <= 1) {
        for (std::size_t i = 0; i < cfg_.replicas; ++i) {
            results[i] = run_one(plan, i, seeds[i]);
        }
        return results;
    }

    ThreadPool pool{threads};
    pool.for_each_index(cfg_.replicas, [&plan, &seeds, &results](std::size_t i) {
        results[i] = run_one(plan, i, seeds[i]);
    });
    // Bit-identical aggregates at any thread count rest on every worker
    // having written its own slot with its own positional seed.
    for (std::size_t i = 0; i < results.size(); ++i) {
        BB_DCHECK_MSG(results[i].index == i && results[i].seed == seeds[i],
                      "replica runner: replica result landed in the wrong slot");
    }
    return results;
}

AggregateRow ReplicaRunner::aggregate(const ReplicaPlan& plan,
                                      const std::vector<ReplicaResult>& results) const {
    const obs::Span span{"aggregate", "scenarios"};
    AggregateRow row;
    row.p = plan.probe.p;
    row.replicas = results.size();

    std::vector<double> true_f, est_f, true_d, est_d, load;
    true_f.reserve(results.size());
    est_f.reserve(results.size());
    true_d.reserve(results.size());
    est_d.reserve(results.size());
    load.reserve(results.size());
    for (const auto& r : results) {
        true_f.push_back(r.truth.frequency);
        est_f.push_back(r.est_frequency());
        true_d.push_back(r.truth.mean_duration_s);
        est_d.push_back(r.est_duration_s(plan.probe.slot_width));
        load.push_back(r.offered_load);
    }

    // One serial bootstrap stream per aggregation keeps the row a pure
    // function of (results order, master_seed) — thread count cannot leak in.
    Rng rng{cfg_.master_seed ^ 0xB007B007ULL};
    row.true_frequency = collapse(true_f, cfg_, rng);
    row.est_frequency = collapse(est_f, cfg_, rng);
    row.true_duration_s = collapse(true_d, cfg_, rng);
    row.est_duration_s = collapse(est_d, cfg_, rng);
    row.offered_load = collapse(load, cfg_, rng);
    return row;
}

std::string aggregate_rows_json(const std::string& label, TimeNs slot_width,
                                const std::vector<AggregateRow>& rows,
                                const std::vector<std::vector<ReplicaResult>>& replicas) {
    JsonWriter w;  // compact house style: downstream plotters parse this byte format
    w.begin_object();
    w.key("label").value(label);
    w.key("rows").begin_array();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& row = rows[i];
        w.begin_object();
        w.key("p").value_double(row.p);
        w.key("replicas").value_uint(row.replicas);
        write_stat(w, "true_frequency", row.true_frequency);
        write_stat(w, "est_frequency", row.est_frequency);
        write_stat(w, "true_duration_s", row.true_duration_s);
        write_stat(w, "est_duration_s", row.est_duration_s);
        write_stat(w, "offered_load", row.offered_load);
        std::uint64_t total_drops = 0;
        std::uint64_t total_experiments = 0;
        w.key("trajectory").begin_array();
        if (i < replicas.size()) {
            for (const auto& r : replicas[i]) {
                w.begin_object();
                w.key("replica").value_uint(r.index);
                w.key("seed").value_uint(r.seed);
                w.key("true_frequency").value_double(r.truth.frequency);
                w.key("est_frequency").value_double(r.est_frequency());
                w.key("true_duration_s").value_double(r.truth.mean_duration_s);
                w.key("est_duration_s").value_double(r.est_duration_s(slot_width));
                w.key("queue_drops").value_uint(r.queue_drops);
                w.key("experiments").value_uint(r.result.experiments);
                w.end_object();
                total_drops += r.queue_drops;
                total_experiments += r.result.experiments;
            }
        }
        w.end_array();
        w.key("total_queue_drops").value_uint(total_drops);
        w.key("total_experiments").value_uint(total_experiments);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take() + "\n";
}

}  // namespace bb::scenarios
