#include "scenarios/experiment.h"

#include <cmath>

#include "obs/trace.h"

namespace bb::scenarios {

TimeNs tau_for_probe_rate(double p, TimeNs slot_width) noexcept {
    // Inter-probe gaps are geometric with mean 1/p slots and standard
    // deviation sqrt(1-p)/p slots.
    const double mean_slots = 1.0 / p;
    const double sd_slots = std::sqrt(1.0 - p) / p;
    return seconds((mean_slots + sd_slots) * slot_width.to_seconds());
}

double alpha_for_probe_rate(double p) noexcept {
    if (p < 0.2) return 0.2;
    if (p < 0.6) return 0.1;
    return 0.5;
}

namespace {

measure::LossMonitor::Options monitor_options(const TruthConfig& truth_cfg,
                                              const WorkloadConfig& wl_cfg) {
    measure::LossMonitor::Options opts;
    opts.record_departures = truth_cfg.delay_based;
    opts.count_probe_traffic = true;
    // The gap-rule truth can always be maintained online; the delay-based
    // heuristic needs the full drop/departure record, so bounded-memory mode
    // only drops the raw log when the heuristic is off.
    if (!truth_cfg.delay_based) {
        opts.streaming_truth = measure::EpisodeAccumulator::Config{
            truth_cfg.episode_gap, truth_cfg.slot_width, TimeNs::zero(), wl_cfg.duration};
        opts.store_drops = !truth_cfg.bounded_memory;
    }
    return opts;
}

}  // namespace

Experiment::Experiment(const TestbedConfig& tb_cfg, const WorkloadConfig& wl_cfg,
                       TruthConfig truth_cfg)
    : workload_cfg_{wl_cfg},
      truth_cfg_{truth_cfg},
      testbed_{tb_cfg},
      monitor_{std::make_unique<measure::LossMonitor>(testbed_.sched(), testbed_.bottleneck(),
                                                      monitor_options(truth_cfg, wl_cfg))},
      workload_{testbed_, wl_cfg} {
    // Losses on the Gilbert-Elliott segment count toward the same ground
    // truth as bottleneck drops: the GE link sits downstream of the queue,
    // so its drop instants are non-decreasing relative to the queue's.
    if (auto* ge = testbed_.ge()) {
        ge->on_drop([mon = monitor_.get()](const sim::Packet& pkt, TimeNs at) {
            mon->observe_external_drop(at, pkt.kind == sim::PacketKind::probe);
        });
    }
}

probes::ZingProber& Experiment::add_zing(const probes::ZingProber::Config& cfg) {
    probes::ZingProber::Config local = cfg;
    if (local.flow == 0) local.flow = next_probe_flow_;
    next_probe_flow_ = local.flow + 1;
    if (local.stop == TimeNs::max()) local.stop = workload_cfg_.duration;
    zing_.push_back(std::make_unique<probes::ZingProber>(
        testbed_.sched(), local, testbed_.forward_in(),
        Rng{workload_cfg_.seed ^ (0x51D0ULL + local.flow)}));
    testbed_.fwd_demux().bind(local.flow, *zing_.back());
    return *zing_.back();
}

probes::BadabingTool& Experiment::add_badabing(const probes::BadabingConfig& cfg) {
    probes::BadabingConfig local = cfg;
    if (local.flow == 0) local.flow = next_probe_flow_;
    next_probe_flow_ = local.flow + 1;
    // Size the design to the workload window unless explicitly overridden.
    if (local.total_slots == 0) {
        local.total_slots = (workload_cfg_.duration - local.start) / local.slot_width;
    }
    badabing_.push_back(std::make_unique<probes::BadabingTool>(
        testbed_.sched(), local, testbed_.forward_in(),
        Rng{workload_cfg_.seed ^ (0xBADAULL + local.flow)}));
    testbed_.fwd_demux().bind(local.flow, *badabing_.back());
    return *badabing_.back();
}

probes::FixedIntervalProber& Experiment::add_fixed_prober(
    const probes::FixedIntervalProber::Config& cfg) {
    probes::FixedIntervalProber::Config local = cfg;
    if (local.flow == 0) local.flow = next_probe_flow_;
    next_probe_flow_ = local.flow + 1;
    if (local.stop == TimeNs::max()) local.stop = workload_cfg_.duration;
    fixed_.push_back(std::make_unique<probes::FixedIntervalProber>(testbed_.sched(), local,
                                                                   testbed_.forward_in()));
    testbed_.fwd_demux().bind(local.flow, *fixed_.back());
    return *fixed_.back();
}

probes::StingProber& Experiment::add_sting(const probes::StingProber::Config& cfg) {
    probes::StingProber::Config local = cfg;
    if (local.flow == 0) local.flow = next_probe_flow_;
    next_probe_flow_ = local.flow + 1;
    if (local.stop == TimeNs::max()) local.stop = workload_cfg_.duration;
    sting_.push_back(std::make_unique<probes::StingProber>(
        testbed_.sched(), local, testbed_.forward_in(),
        Rng{workload_cfg_.seed ^ (0x517ULL + local.flow)}));
    // Data segments terminate at a live TCP responder on the far side; its
    // ACKs come back over the reverse path to the prober.
    sting_responders_.push_back(std::make_unique<tcp::TcpReceiver>(
        testbed_.sched(), local.flow, testbed_.reverse_in()));
    testbed_.fwd_demux().bind(local.flow, *sting_responders_.back());
    testbed_.rev_demux().bind(local.flow, *sting_.back());
    return *sting_.back();
}

void Experiment::run() {
    const obs::Span span{"experiment.run", "scenarios"};
    // Drain margin: a couple of RTTs so in-flight packets and ACKs settle.
    const TimeNs margin = seconds_i(2);
    testbed_.sched().run_until(workload_cfg_.duration + margin);
    if (auto* obs = testbed_.qbit_observer()) obs->finalize();
    ran_ = true;
}

std::vector<measure::LossEpisode> Experiment::episodes() const {
    if (truth_cfg_.delay_based) {
        return monitor_->episodes_delay_based(truth_cfg_.delay_floor, truth_cfg_.episode_gap);
    }
    return monitor_->episodes(truth_cfg_.episode_gap);
}

measure::TruthSummary Experiment::truth() const {
    if (const auto* acc = monitor_->streaming_truth()) return acc->finalize();
    return measure::summarize_truth(episodes(), truth_cfg_.slot_width, TimeNs::zero(),
                                    workload_cfg_.duration);
}

core::MarkingConfig Experiment::default_marking(double p) const {
    core::MarkingConfig m;
    m.tau = tau_for_probe_rate(p, truth_cfg_.slot_width);
    m.alpha = alpha_for_probe_rate(p);
    return m;
}

}  // namespace bb::scenarios
