// Cached sweep engine: grid-expand a scenario spec over axis values and run
// every cell through ReplicaRunner, skipping cells whose results are already
// on disk.
//
// A sweep spec is JSON:
//
//   {
//     "name": "aqm_ablation",
//     "base": { <any scenario spec document> },
//     "axes": {
//       "link.discipline": ["drop_tail", "red", "pie", "codel"],
//       "link.ge.enabled": [false, true]
//     }
//   }
//
// Axes expand as nested loops with the FIRST axis outermost (file order is
// preserved), so cell order is predictable.  Each cell is the base document
// with the axis values spliced in by dotted path, then parsed through the
// strict ScenarioSpec validator — a bad combination fails with the same
// one-line "<file>:<line>: <key>: <why>" diagnostic as a bad single spec.
//
// Every cell is keyed by the FNV-1a hash of its canonical (sorted-key,
// round-trip-precision) JSON document.  With a --cache-dir, finished cells
// live in <cache>/<hash>.json and later runs verify the embedded hash and
// skip the computation; editing an axis value only invalidates the cells
// whose resolved documents actually changed.
#ifndef BB_SCENARIOS_SWEEP_H
#define BB_SCENARIOS_SWEEP_H

#include <cstddef>
#include <string>
#include <vector>

#include "scenarios/spec.h"
#include "util/json.h"

namespace bb::scenarios {

struct SweepAxis {
    std::string path;               // dotted key path into the scenario doc
    std::vector<JsonValue> values;  // scalar values, in file order
    int line{1};                    // where the axis was declared
};

struct SweepSpec {
    std::string name;  // defaults to the file stem or "sweep"
    JsonValue base;    // unexpanded scenario document
    std::vector<SweepAxis> axes;  // file order; first axis is outermost
};

struct SweepParseResult {
    bool ok{false};
    SweepSpec sweep;
    std::string error;  // one line, print verbatim
};

[[nodiscard]] SweepParseResult parse_sweep_spec(const JsonValue& doc,
                                                std::string_view source);
[[nodiscard]] SweepParseResult load_sweep_spec_text(std::string_view text,
                                                    std::string_view source);
[[nodiscard]] SweepParseResult load_sweep_spec_file(const std::string& path);

// One fully resolved grid point.
struct SweepCell {
    std::size_t index{0};
    std::string config_hash;  // fnv1a64_hex of the canonical resolved doc
    JsonValue doc;            // base + axis values spliced in
    ScenarioSpec spec;        // validated form of `doc`
    // axis path -> rendered value ("red", "true", "0.3"), in axis order.
    std::vector<std::pair<std::string, std::string>> axis_values;
};

struct ExpandResult {
    bool ok{false};
    std::vector<SweepCell> cells;
    std::string error;
};

// Grid-expand and validate every cell.  `source` labels diagnostics.
[[nodiscard]] ExpandResult expand_sweep(const SweepSpec& sweep,
                                        std::string_view source);

class SweepRunner {
public:
    struct Config {
        std::string out_dir;    // per-cell results + summary land here
        std::string cache_dir;  // "" = caching off
        std::size_t threads{0};  // 0 = each cell's own run.threads
    };

    struct CellOutcome {
        std::size_t index{0};
        std::string config_hash;
        bool cached{false};   // satisfied from cache_dir without running
        JsonValue result;     // the cell result document (see cell_result_json)
    };

    struct RunOutcome {
        bool ok{false};
        std::string error;
        std::vector<CellOutcome> cells;
        std::size_t computed{0};
        std::size_t cached{0};
    };

    explicit SweepRunner(Config cfg) : cfg_{std::move(cfg)} {}

    // Run every cell (cache-aware), write per-cell JSON + a summary document
    // into out_dir.  Cells run serially; each cell's replicas run in
    // parallel through ReplicaRunner.
    [[nodiscard]] RunOutcome run(const std::string& sweep_name,
                                 const std::vector<SweepCell>& cells) const;

private:
    Config cfg_;
};

// The per-cell result document (pretty JSON, %.17g doubles so cached values
// round-trip exactly): config_hash, name, axes, aggregate stats, and the
// per-replica trajectory including the path/passive loss-rate extras.
[[nodiscard]] std::string cell_result_json(const SweepCell& cell,
                                           const AggregateRow& row,
                                           const std::vector<ReplicaResult>& replicas,
                                           TimeNs slot_width);

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_SWEEP_H
