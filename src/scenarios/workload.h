// The three cross-traffic scenarios of paper §4/§6, built over a Testbed.
#ifndef BB_SCENARIOS_WORKLOAD_H
#define BB_SCENARIOS_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <vector>

#include "scenarios/testbed.h"
#include "tcp/tcp_flow.h"
#include "traffic/cbr.h"
#include "traffic/episodic.h"
#include "traffic/web.h"
#include "util/rng.h"

namespace bb::scenarios {

enum class TrafficKind {
    infinite_tcp,  // 40 long-lived TCP flows (Table 1, Fig 4)
    cbr_uniform,   // CBR + constant-duration engineered episodes (Tables 2/4, Fig 5)
    cbr_multi,     // CBR + {50,100,150} ms episodes (Table 5)
    web,           // Harpoon-like web sessions over TCP (Tables 3/6, Fig 6)
};

struct WorkloadConfig {
    TrafficKind kind{TrafficKind::cbr_uniform};
    TimeNs duration{seconds_i(900)};  // paper: 15-minute runs
    std::uint64_t seed{1};

    // infinite_tcp / web
    int tcp_flows{40};
    std::int64_t tcp_rwnd_segments{256};  // paper §4.2
    // ECN-capable TCP sources: AQM marks back them off without drops, so
    // congestion episodes can exist with (almost) no loss signal.
    bool tcp_ecn{false};

    // cbr_*
    // Standing CBR load as a fraction of capacity.  The paper's Figure 5
    // shows the queue flat at zero between the engineered episodes, i.e. the
    // link is otherwise idle; 0 reproduces that (and keeps the (1-alpha)
    // high-water crossing sharp).  Set > 0 to study slow-drain shoulders.
    double cbr_background_load{0.0};
    TimeNs episode_duration{milliseconds(68)};
    std::vector<TimeNs> episode_durations{};  // overrides episode_duration if set
    TimeNs mean_episode_gap{seconds_i(10)};

    // web
    double web_session_rate_per_s{5.0};
    double web_objects_per_session{6.0};
    double web_pareto_alpha{1.2};
    double web_object_min_bytes{12'000.0};
    TimeNs web_think_time{milliseconds(500)};
};

// Owns all sources of a scenario; keeps them alive for the run.
class Workload {
public:
    Workload(Testbed& tb, const WorkloadConfig& cfg);

    Workload(const Workload&) = delete;
    Workload& operator=(const Workload&) = delete;

    [[nodiscard]] const WorkloadConfig& config() const noexcept { return cfg_; }
    [[nodiscard]] const std::vector<std::unique_ptr<tcp::TcpFlow>>& tcp_flows() const noexcept {
        return tcp_flows_;
    }
    [[nodiscard]] const traffic::WebSessionGenerator* web() const noexcept {
        return web_.get();
    }

private:
    void build_infinite_tcp(Testbed& tb);
    void build_cbr(Testbed& tb);
    void build_web(Testbed& tb);

    WorkloadConfig cfg_;
    Rng rng_;
    std::vector<std::unique_ptr<tcp::TcpFlow>> tcp_flows_;
    std::vector<std::unique_ptr<traffic::CbrSource>> cbr_;
    std::vector<std::unique_ptr<traffic::EpisodicBurstSource>> bursts_;
    std::unique_ptr<traffic::WebSessionGenerator> web_;
};

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_WORKLOAD_H
