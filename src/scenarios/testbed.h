// The simulated equivalent of the paper's §4.1 laboratory dumbbell:
// sources -> [bottleneck queue + output link, 50 ms one-way delay] -> sinks,
// with an uncongested 50 ms reverse path for ACKs.  The bottleneck buffer
// holds ~100 ms of packets, as in the paper.
//
// Extensions beyond the paper's single drop-tail hop:
//  - `discipline` selects the bottleneck queue (drop-tail or RED), for the
//    AQM question §7 raises;
//  - `extra_hops` inserts faster upstream queues in front of the bottleneck,
//    for the "more complex multi-hop scenarios" §6.2/§7 leave as future work.
//
// The default bottleneck rate is scaled down from OC3 (155 Mb/s) to keep
// simulated runs fast; every experiment reports quantities relative to the
// configured rate, so the shape of the results is rate-independent.
#ifndef BB_SCENARIOS_TESTBED_H
#define BB_SCENARIOS_TESTBED_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/demux.h"
#include "sim/link.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace bb::scenarios {

enum class QueueDiscipline { drop_tail, red };

struct TestbedConfig {
    std::int64_t bottleneck_rate_bps{30'000'000};
    TimeNs prop_delay{milliseconds(50)};    // each direction, as in the paper
    TimeNs buffer_time{milliseconds(100)};  // bottleneck buffer depth
    QueueDiscipline discipline{QueueDiscipline::drop_tail};
    sim::RedQueue::RedParams red{};
    int extra_hops{0};                   // upstream queues before the bottleneck
    double extra_hop_rate_factor{1.5};   // their rate, relative to the bottleneck
    std::uint64_t seed{1};               // for RED's randomized drops
};

class Testbed {
public:
    explicit Testbed(const TestbedConfig& cfg = {});

    Testbed(const Testbed&) = delete;
    Testbed& operator=(const Testbed&) = delete;

    [[nodiscard]] sim::Scheduler& sched() noexcept { return sched_; }
    [[nodiscard]] sim::QueueBase& bottleneck() noexcept { return *bottleneck_; }
    [[nodiscard]] const sim::QueueBase& bottleneck() const noexcept { return *bottleneck_; }

    // Data-direction entry point (feeds the first hop).
    [[nodiscard]] sim::PacketSink& forward_in() noexcept {
        return hops_.empty() ? static_cast<sim::PacketSink&>(*bottleneck_)
                             : static_cast<sim::PacketSink&>(*hops_.front());
    }
    // Reverse-direction entry point (ACK path back to the senders).
    [[nodiscard]] sim::PacketSink& reverse_in() noexcept { return *reverse_; }

    [[nodiscard]] sim::FlowDemux& fwd_demux() noexcept { return fwd_demux_; }
    [[nodiscard]] sim::FlowDemux& rev_demux() noexcept { return rev_demux_; }

    [[nodiscard]] const TestbedConfig& config() const noexcept { return cfg_; }

    // Upstream hops (empty in the paper's single-hop dumbbell).
    [[nodiscard]] const std::vector<std::unique_ptr<sim::QueueBase>>& upstream_hops()
        const noexcept {
        return hops_;
    }

private:
    TestbedConfig cfg_;
    sim::Scheduler sched_;
    sim::FlowDemux fwd_demux_;
    sim::FlowDemux rev_demux_;
    sim::CountingSink blackhole_;
    std::unique_ptr<sim::QueueBase> bottleneck_;
    std::vector<std::unique_ptr<sim::QueueBase>> hops_;  // front() is the first hop
    std::unique_ptr<sim::DelayLink> reverse_;
};

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_TESTBED_H
