// The simulated equivalent of the paper's §4.1 laboratory dumbbell:
// sources -> [bottleneck queue + output link, 50 ms one-way delay] -> sinks,
// with an uncongested 50 ms reverse path for ACKs.  The bottleneck buffer
// holds ~100 ms of packets, as in the paper.
//
// Extensions beyond the paper's single drop-tail hop:
//  - `discipline` selects the bottleneck queue (drop-tail, RED, PIE or
//    CoDel via the sim::make_queue factory), for the AQM question §7 raises;
//  - `ge` layers a Gilbert-Elliott on/off loss process downstream of the
//    bottleneck, for loss that congestion-episode estimators cannot see in
//    the queue;
//  - `qbit_block` inserts a passive Q-bit marker/observer pair around the
//    congested segment, giving an in-band comparison estimator;
//  - `extra_hops` inserts faster upstream queues in front of the bottleneck,
//    for the "more complex multi-hop scenarios" §6.2/§7 leave as future work.
//
// The default bottleneck rate is scaled down from OC3 (155 Mb/s) to keep
// simulated runs fast; every experiment reports quantities relative to the
// configured rate, so the shape of the results is rate-independent.
#ifndef BB_SCENARIOS_TESTBED_H
#define BB_SCENARIOS_TESTBED_H

#include <cstdint>
#include <memory>
#include <vector>

#include "measure/passive_loss.h"
#include "sim/demux.h"
#include "sim/link.h"
#include "sim/lossy_link.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace bb::scenarios {

// One discipline vocabulary across the tree: the scenario layer re-exports
// the simulator's enum (drop_tail, red, pie, codel).
using QueueDiscipline = sim::QueueDiscipline;

struct TestbedConfig {
    std::int64_t bottleneck_rate_bps{30'000'000};
    TimeNs prop_delay{milliseconds(50)};    // each direction, as in the paper
    TimeNs buffer_time{milliseconds(100)};  // bottleneck buffer depth
    QueueDiscipline discipline{QueueDiscipline::drop_tail};
    sim::RedParams red{};
    sim::PieParams pie{};
    sim::CoDelParams codel{};
    // Gilbert-Elliott loss process on the segment after the bottleneck
    // (disabled by default; enable with ge_enabled).
    bool ge_enabled{false};
    sim::GilbertElliottLink::Config ge{};
    // Passive Q-bit loss instrumentation around the lossy segment; 0 = off.
    std::uint32_t qbit_block{0};
    int extra_hops{0};                   // upstream queues before the bottleneck
    double extra_hop_rate_factor{1.5};   // their rate, relative to the bottleneck
    std::uint64_t seed{1};               // for randomized drops (RED/PIE/GE)
};

class Testbed {
public:
    explicit Testbed(const TestbedConfig& cfg = {});

    Testbed(const Testbed&) = delete;
    Testbed& operator=(const Testbed&) = delete;

    [[nodiscard]] sim::Scheduler& sched() noexcept { return sched_; }
    [[nodiscard]] sim::QueueBase& bottleneck() noexcept { return *bottleneck_; }
    [[nodiscard]] const sim::QueueBase& bottleneck() const noexcept { return *bottleneck_; }

    // Data-direction entry point (feeds the first hop).
    [[nodiscard]] sim::PacketSink& forward_in() noexcept { return *forward_in_; }
    // Reverse-direction entry point (ACK path back to the senders).
    [[nodiscard]] sim::PacketSink& reverse_in() noexcept { return *reverse_; }

    [[nodiscard]] sim::FlowDemux& fwd_demux() noexcept { return fwd_demux_; }
    [[nodiscard]] sim::FlowDemux& rev_demux() noexcept { return rev_demux_; }

    [[nodiscard]] const TestbedConfig& config() const noexcept { return cfg_; }

    // The Gilbert-Elliott segment, or nullptr when not configured.
    [[nodiscard]] sim::GilbertElliottLink* ge() noexcept { return ge_.get(); }
    // Passive Q-bit instrumentation, or nullptr when not configured.
    [[nodiscard]] measure::QBitMarker* qbit_marker() noexcept { return qbit_marker_.get(); }
    [[nodiscard]] measure::QBitObserver* qbit_observer() noexcept {
        return qbit_observer_.get();
    }

    // Upstream hops (empty in the paper's single-hop dumbbell).
    [[nodiscard]] const std::vector<std::unique_ptr<sim::QueueBase>>& upstream_hops()
        const noexcept {
        return hops_;
    }

private:
    TestbedConfig cfg_;
    sim::Scheduler sched_;
    sim::FlowDemux fwd_demux_;
    sim::FlowDemux rev_demux_;
    sim::CountingSink blackhole_;
    std::unique_ptr<measure::QBitObserver> qbit_observer_;
    std::unique_ptr<sim::GilbertElliottLink> ge_;
    std::unique_ptr<sim::QueueBase> bottleneck_;
    std::vector<std::unique_ptr<sim::QueueBase>> hops_;  // front() is the first hop
    std::unique_ptr<measure::QBitMarker> qbit_marker_;
    sim::PacketSink* forward_in_{nullptr};
    std::unique_ptr<sim::DelayLink> reverse_;
};

}  // namespace bb::scenarios

#endif  // BB_SCENARIOS_TESTBED_H
