#include "scenarios/testbed.h"

namespace bb::scenarios {

Testbed::Testbed(const TestbedConfig& cfg) : cfg_{cfg} {
    fwd_demux_.set_default(blackhole_);
    rev_demux_.set_default(blackhole_);

    sim::QueueBase::LinkConfig link;
    link.rate_bps = cfg.bottleneck_rate_bps;
    link.prop_delay = cfg.prop_delay;
    link.capacity_time = cfg.buffer_time;

    if (cfg.discipline == QueueDiscipline::red) {
        bottleneck_ = std::make_unique<sim::RedQueue>(sched_, link, cfg.red, fwd_demux_,
                                                      Rng{cfg.seed ^ 0xAEDull});
    } else {
        bottleneck_ = std::make_unique<sim::BottleneckQueue>(sched_, link, fwd_demux_);
    }

    // Upstream hops: faster drop-tail queues with negligible extra
    // propagation, feeding the next hop toward the bottleneck.
    sim::PacketSink* next = bottleneck_.get();
    for (int i = 0; i < cfg.extra_hops; ++i) {
        sim::QueueBase::LinkConfig hop = link;
        hop.rate_bps = static_cast<std::int64_t>(cfg.extra_hop_rate_factor *
                                                 static_cast<double>(cfg.bottleneck_rate_bps));
        hop.prop_delay = microseconds(100);
        hops_.push_back(std::make_unique<sim::BottleneckQueue>(sched_, hop, *next));
        next = hops_.back().get();
    }
    // hops_ was built from the bottleneck outward; reverse so front() is the
    // entry point.
    std::reverse(hops_.begin(), hops_.end());

    reverse_ = std::make_unique<sim::DelayLink>(sched_, cfg.prop_delay, rev_demux_);
}

}  // namespace bb::scenarios
