#include "scenarios/testbed.h"

namespace bb::scenarios {

Testbed::Testbed(const TestbedConfig& cfg) : cfg_{cfg} {
    fwd_demux_.set_default(blackhole_);
    rev_demux_.set_default(blackhole_);

    // Build the forward path back-to-front: demux <- [observer] <- [GE] <-
    // bottleneck <- [hops] <- [marker].
    sim::PacketSink* after_bottleneck = &fwd_demux_;
    if (cfg.qbit_block > 0) {
        qbit_observer_ =
            std::make_unique<measure::QBitObserver>(cfg.qbit_block, sched_, fwd_demux_);
        after_bottleneck = qbit_observer_.get();
    }
    if (cfg.ge_enabled) {
        ge_ = std::make_unique<sim::GilbertElliottLink>(sched_, cfg.ge, *after_bottleneck,
                                                        Rng{cfg.seed ^ 0x6E11ULL});
        after_bottleneck = ge_.get();
    }

    sim::QueueBase::LinkConfig link;
    link.rate_bps = cfg.bottleneck_rate_bps;
    link.prop_delay = cfg.prop_delay;
    link.capacity_time = cfg.buffer_time;
    link.discipline = cfg.discipline;
    link.red = cfg.red;
    link.pie = cfg.pie;
    link.codel = cfg.codel;
    link.seed = cfg.seed;
    bottleneck_ = sim::make_queue(sched_, link, *after_bottleneck);

    // Upstream hops: faster drop-tail queues with negligible extra
    // propagation, feeding the next hop toward the bottleneck.
    sim::PacketSink* next = bottleneck_.get();
    for (int i = 0; i < cfg.extra_hops; ++i) {
        sim::QueueBase::LinkConfig hop = link;
        hop.discipline = sim::QueueDiscipline::drop_tail;
        hop.rate_bps = static_cast<std::int64_t>(cfg.extra_hop_rate_factor *
                                                 static_cast<double>(cfg.bottleneck_rate_bps));
        hop.prop_delay = microseconds(100);
        hops_.push_back(std::make_unique<sim::BottleneckQueue>(sched_, hop, *next));
        next = hops_.back().get();
    }
    // hops_ was built from the bottleneck outward; reverse so front() is the
    // entry point.
    std::reverse(hops_.begin(), hops_.end());

    forward_in_ = hops_.empty() ? static_cast<sim::PacketSink*>(bottleneck_.get())
                                : static_cast<sim::PacketSink*>(hops_.front().get());
    if (cfg.qbit_block > 0) {
        qbit_marker_ = std::make_unique<measure::QBitMarker>(cfg.qbit_block, *forward_in_);
        forward_in_ = qbit_marker_.get();
    }

    reverse_ = std::make_unique<sim::DelayLink>(sched_, cfg.prop_delay, rev_demux_);
}

}  // namespace bb::scenarios
