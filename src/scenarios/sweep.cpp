#include "scenarios/sweep.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/json_io.h"

namespace bb::scenarios {

namespace {

// Render a scalar axis value the way it appears in the cell's "axes" object.
std::string render_scalar(const JsonValue& v) {
    switch (v.kind) {
        case JsonValue::Kind::null_v: return "null";
        case JsonValue::Kind::bool_v: return v.bool_value ? "true" : "false";
        case JsonValue::Kind::number: {
            char buf[40];
            if (v.number_is_int) {
                std::snprintf(buf, sizeof buf, "%lld",
                              static_cast<long long>(v.int_value));
            } else {
                std::snprintf(buf, sizeof buf, "%.17g", v.number_value);
            }
            return buf;
        }
        case JsonValue::Kind::string: return v.string_value;
        default: return "?";
    }
}

// "link.ge" conflicts with "link.ge.enabled": splicing the shorter path
// would silently overwrite the longer one's target.
bool paths_overlap(const std::string& a, const std::string& b) {
    if (a == b) return true;
    const std::string& shorter = a.size() < b.size() ? a : b;
    const std::string& longer = a.size() < b.size() ? b : a;
    return longer.size() > shorter.size() && longer.compare(0, shorter.size(), shorter) == 0 &&
           longer[shorter.size()] == '.';
}

std::string slurp(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

SweepParseResult parse_sweep_spec(const JsonValue& doc, std::string_view source) {
    SweepParseResult out;
    const std::string src{source};
    auto fail = [&](int line, const std::string& path, const std::string& msg) {
        out.error = src + ":" + std::to_string(line) + ": " + path + ": " + msg;
    };

    if (!doc.is_object()) {
        fail(doc.line, "sweep", "top level must be a JSON object");
        return out;
    }

    const JsonValue* base = nullptr;
    const JsonValue* axes = nullptr;
    for (const auto& [key, value] : doc.members) {
        if (key == "name") {
            if (!value.is_string()) {
                fail(value.line, "name", "must be a string");
                return out;
            }
            out.sweep.name = value.string_value;
        } else if (key == "base") {
            base = &value;
        } else if (key == "axes") {
            axes = &value;
        } else {
            fail(value.line, "sweep", "unknown key \"" + key + "\"");
            return out;
        }
    }

    if (base == nullptr) {
        fail(doc.line, "base", "missing (the unexpanded scenario document)");
        return out;
    }
    if (!base->is_object()) {
        fail(base->line, "base", "must be a scenario spec object");
        return out;
    }
    out.sweep.base = *base;

    if (axes != nullptr) {
        if (!axes->is_object()) {
            fail(axes->line, "axes", "must be an object of path -> value list");
            return out;
        }
        for (const auto& [path, values] : axes->members) {
            SweepAxis axis;
            axis.path = path;
            axis.line = values.line;
            if (!values.is_array()) {
                fail(values.line, "axes." + path, "must be an array of scalar values");
                return out;
            }
            if (values.items.empty()) {
                fail(values.line, "axes." + path,
                     "conflicting axis: empty value list expands to zero cells");
                return out;
            }
            for (const JsonValue& v : values.items) {
                if (v.is_array() || v.is_object()) {
                    fail(v.line, "axes." + path,
                         "axis values must be scalars (string, number, or bool)");
                    return out;
                }
                axis.values.push_back(v);
            }
            // Duplicate axis paths are rejected by the JSON parser (duplicate
            // object keys); overlap with an existing axis is checked here.
            for (const SweepAxis& prior : out.sweep.axes) {
                if (paths_overlap(prior.path, axis.path)) {
                    fail(values.line, "axes." + path,
                         "conflicting axis: overlaps \"" + prior.path + "\"");
                    return out;
                }
            }
            out.sweep.axes.push_back(std::move(axis));
        }
    }

    if (out.sweep.name.empty()) out.sweep.name = "sweep";
    out.ok = true;
    return out;
}

SweepParseResult load_sweep_spec_text(std::string_view text, std::string_view source) {
    const JsonParse parsed = json_parse(text, source);
    if (!parsed.ok) {
        SweepParseResult out;
        out.error = parsed.error;
        return out;
    }
    return parse_sweep_spec(parsed.value, source);
}

SweepParseResult load_sweep_spec_file(const std::string& path) {
    const JsonParse parsed = json_parse_file(path);
    if (!parsed.ok) {
        SweepParseResult out;
        out.error = parsed.error;
        return out;
    }
    SweepParseResult out = parse_sweep_spec(parsed.value, path);
    if (out.ok && out.sweep.name == "sweep") {
        std::string stem = std::filesystem::path{path}.stem().string();
        if (!stem.empty()) out.sweep.name = stem;
    }
    return out;
}

ExpandResult expand_sweep(const SweepSpec& sweep, std::string_view source) {
    ExpandResult out;

    std::size_t total = 1;
    for (const SweepAxis& axis : sweep.axes) total *= axis.values.size();

    std::vector<std::size_t> odometer(sweep.axes.size(), 0);
    for (std::size_t index = 0; index < total; ++index) {
        SweepCell cell;
        cell.index = index;
        cell.doc = sweep.base;  // deep copy
        for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
            const SweepAxis& axis = sweep.axes[a];
            const JsonValue& value = axis.values[odometer[a]];
            std::string err;
            if (!json_set_path(cell.doc, axis.path, value, err)) {
                out.error = std::string{source} + ":" + std::to_string(axis.line) +
                            ": axes." + axis.path + ": " + err;
                return out;
            }
            cell.axis_values.emplace_back(axis.path, render_scalar(value));
        }

        SpecResult parsed = parse_scenario_spec(cell.doc, source);
        if (!parsed.ok) {
            out.error = parsed.error;
            return out;
        }
        cell.spec = std::move(parsed.spec);
        cell.config_hash = fnv1a64_hex(json_canonical(cell.doc));
        out.cells.push_back(std::move(cell));

        // Advance the odometer: LAST axis spins fastest (first axis outermost).
        for (std::size_t a = sweep.axes.size(); a-- > 0;) {
            if (++odometer[a] < sweep.axes[a].values.size()) break;
            odometer[a] = 0;
        }
    }
    out.ok = true;
    return out;
}

std::string cell_result_json(const SweepCell& cell, const AggregateRow& row,
                             const std::vector<ReplicaResult>& replicas,
                             TimeNs slot_width) {
    JsonWriter w{JsonWriter::Options{.indent = 2, .space_after_colon = true}};
    // %.17g everywhere: cached cells must round-trip to the same doubles.
    const char* fmt = "%.17g";
    w.begin_object();
    w.key("config_hash").value(cell.config_hash);
    w.key("name").value(cell.spec.name);
    w.key("axes").begin_object_inline();
    for (const auto& [path, value] : cell.axis_values) w.key(path).value(value);
    w.end_object();

    auto stat = [&](const char* name, const AggregateStat& s) {
        w.key(name).begin_object_inline();
        w.key("mean").value_double(s.mean, fmt);
        w.key("stddev").value_double(s.stddev, fmt);
        w.key("ci_lo").value_double(s.ci.lo, fmt);
        w.key("ci_hi").value_double(s.ci.hi, fmt);
        w.end_object();
    };
    w.key("aggregate").begin_object();
    w.key("p").value_double(row.p, fmt);
    w.key("replicas").value_uint(row.replicas);
    stat("true_frequency", row.true_frequency);
    stat("est_frequency", row.est_frequency);
    stat("true_duration_s", row.true_duration_s);
    stat("est_duration_s", row.est_duration_s);
    stat("offered_load", row.offered_load);
    w.end_object();

    w.key("replicas").begin_array();
    for (const ReplicaResult& r : replicas) {
        w.begin_object_inline();
        w.key("replica").value_uint(r.index);
        w.key("seed").value_uint(r.seed);
        w.key("true_frequency").value_double(r.truth.frequency, fmt);
        w.key("est_frequency").value_double(r.est_frequency(), fmt);
        w.key("true_duration_s").value_double(r.truth.mean_duration_s, fmt);
        w.key("est_duration_s").value_double(r.est_duration_s(slot_width), fmt);
        w.key("episodes").value_uint(r.episodes);
        w.key("queue_drops").value_uint(r.queue_drops);
        w.key("experiments").value_uint(r.result.experiments);
        w.key("path_loss_rate").value_double(r.path_loss_rate, fmt);
        w.key("passive_loss_rate").value_double(r.passive_loss_rate, fmt);
        w.key("qbit_merged_blocks").value_uint(r.qbit_merged_blocks);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take() + "\n";
}

SweepRunner::RunOutcome SweepRunner::run(const std::string& sweep_name,
                                         const std::vector<SweepCell>& cells) const {
    RunOutcome out;
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!cfg_.out_dir.empty()) fs::create_directories(cfg_.out_dir, ec);
    if (!cfg_.cache_dir.empty()) fs::create_directories(cfg_.cache_dir, ec);

    for (const SweepCell& cell : cells) {
        if (cell.spec.tool != ScenarioSpec::ProbeTool::badabing) {
            out.error = "cell " + std::to_string(cell.index) + " (" + cell.config_hash +
                        "): the sweep engine estimates with probe.tool = \"badabing\"";
            return out;
        }

        const std::string cache_path =
            cfg_.cache_dir.empty() ? std::string{}
                                   : cfg_.cache_dir + "/" + cell.config_hash + ".json";
        CellOutcome oc;
        oc.index = cell.index;
        oc.config_hash = cell.config_hash;

        std::string text;
        if (!cache_path.empty() && fs::exists(cache_path)) {
            JsonParse cached = json_parse_file(cache_path);
            const JsonValue* hash =
                cached.ok ? cached.value.find("config_hash") : nullptr;
            if (hash != nullptr && hash->is_string() &&
                hash->string_value == cell.config_hash) {
                oc.cached = true;
                oc.result = std::move(cached.value);
                text = slurp(cache_path);
            }
            // A stale or corrupt cache entry is not an error: recompute.
        }

        if (!oc.cached) {
            ReplicaPlan plan = replica_plan_from(cell.spec);
            ReplicaRunner::Config rc = runner_config_from(cell.spec);
            if (cfg_.threads != 0) rc.threads = cfg_.threads;
            const ReplicaRunner runner{rc};
            const std::vector<ReplicaResult> replicas = runner.run(plan);
            const AggregateRow row = runner.aggregate(plan, replicas);
            text = cell_result_json(cell, row, replicas, cell.spec.badabing.slot_width);
            JsonParse reparsed = json_parse(text, cache_path.empty() ? "<cell>" : cache_path);
            oc.result = std::move(reparsed.value);
            if (!cache_path.empty()) write_text_file(cache_path, text);
        }

        if (!cfg_.out_dir.empty() && !text.empty()) {
            write_text_file(cfg_.out_dir + "/" + sweep_name + "-" + cell.config_hash + ".json",
                            text);
        }
        out.computed += oc.cached ? 0 : 1;
        out.cached += oc.cached ? 1 : 0;
        out.cells.push_back(std::move(oc));
    }
    out.ok = true;
    return out;
}

}  // namespace bb::scenarios
