#include "scenarios/spec.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>
#include <vector>

#include "util/contract.h"

namespace bb::scenarios {

namespace {

// Shared parse state: the first failure wins and parsing short-circuits.
struct Ctx {
    std::string source;
    std::string error;

    [[nodiscard]] bool ok() const noexcept { return error.empty(); }

    void fail(int line, const std::string& path, const std::string& message) {
        if (!error.empty()) return;
        error = source + ":" + std::to_string(line) + ": " + path + ": " + message;
    }
};

// One JSON object section.  Getters mark keys consumed; finish() turns any
// leftover key into an "unknown key" diagnostic with its source line.
class Section {
public:
    Section(Ctx& ctx, const JsonValue* v, std::string path, int parent_line)
        : ctx_{&ctx}, v_{v}, path_{std::move(path)}, line_{parent_line} {
        if (v_ != nullptr) {
            line_ = v_->line;
            if (!v_->is_object()) {
                ctx_->fail(v_->line, path_, "must be an object");
                v_ = nullptr;
            }
        }
        if (v_ != nullptr) consumed_.assign(v_->members.size(), false);
    }

    [[nodiscard]] bool present() const noexcept { return v_ != nullptr; }
    [[nodiscard]] int line() const noexcept { return line_; }

    // Nested section (absent -> defaults).
    [[nodiscard]] const JsonValue* get(const char* key) {
        if (v_ == nullptr) return nullptr;
        for (std::size_t i = 0; i < v_->members.size(); ++i) {
            if (v_->members[i].first == key) {
                consumed_[i] = true;
                return &v_->members[i].second;
            }
        }
        return nullptr;
    }

    void number(const char* key, double& out, double lo, double hi,
                bool lo_exclusive = false) {
        const JsonValue* j = get(key);
        if (j == nullptr || !ctx_->ok()) return;
        if (!j->is_number()) {
            ctx_->fail(j->line, key_path(key), "must be a number");
            return;
        }
        const double v = j->number_value;
        if (!std::isfinite(v) || v < lo || v > hi || (lo_exclusive && v <= lo)) {
            char range[96];
            std::snprintf(range, sizeof range, "must be in %c%.6g, %.6g]",
                          lo_exclusive ? '(' : '[', lo, hi);
            ctx_->fail(j->line, key_path(key), range);
            return;
        }
        out = v;
    }

    void integer(const char* key, std::int64_t& out, std::int64_t lo, std::int64_t hi) {
        const JsonValue* j = get(key);
        if (j == nullptr || !ctx_->ok()) return;
        if (!j->is_number() || !j->number_is_int) {
            ctx_->fail(j->line, key_path(key), "must be an integer");
            return;
        }
        if (j->int_value < lo || j->int_value > hi) {
            ctx_->fail(j->line, key_path(key),
                       "must be between " + std::to_string(lo) + " and " +
                           std::to_string(hi));
            return;
        }
        out = j->int_value;
    }

    void boolean(const char* key, bool& out) {
        const JsonValue* j = get(key);
        if (j == nullptr || !ctx_->ok()) return;
        if (!j->is_bool()) {
            ctx_->fail(j->line, key_path(key), "must be true or false");
            return;
        }
        out = j->bool_value;
    }

    void string(const char* key, std::string& out) {
        const JsonValue* j = get(key);
        if (j == nullptr || !ctx_->ok()) return;
        if (!j->is_string()) {
            ctx_->fail(j->line, key_path(key), "must be a string");
            return;
        }
        out = j->string_value;
    }

    // Durations: integers take the exact-unit constructors, other numbers
    // round to the nearest nanosecond.  `min_exclusive` demands > 0.
    void time_units(const char* key, TimeNs& out, std::int64_t ns_per_unit,
                    bool min_exclusive, const char* unit_name) {
        const JsonValue* j = get(key);
        if (j == nullptr || !ctx_->ok()) return;
        if (!j->is_number() || j->number_value < 0.0 || !std::isfinite(j->number_value)) {
            ctx_->fail(j->line, key_path(key),
                       std::string{"must be a non-negative number of "} + unit_name);
            return;
        }
        TimeNs t = j->number_is_int
                       ? nanoseconds(j->int_value * ns_per_unit)
                       : nanoseconds(static_cast<std::int64_t>(
                             std::llround(j->number_value *
                                          static_cast<double>(ns_per_unit))));
        if (min_exclusive && t <= TimeNs::zero()) {
            ctx_->fail(j->line, key_path(key), "must be > 0");
            return;
        }
        out = t;
    }
    void time_s(const char* key, TimeNs& out, bool min_exclusive = false) {
        time_units(key, out, 1'000'000'000, min_exclusive, "seconds");
    }
    void time_ms(const char* key, TimeNs& out, bool min_exclusive = false) {
        time_units(key, out, 1'000'000, min_exclusive, "milliseconds");
    }
    void time_us(const char* key, TimeNs& out, bool min_exclusive = false) {
        time_units(key, out, 1'000, min_exclusive, "microseconds");
    }

    // Pick one spelling from a closed vocabulary.
    template <typename Enum>
    void one_of(const char* key, Enum& out,
                const std::vector<std::pair<const char*, Enum>>& vocab) {
        const JsonValue* j = get(key);
        if (j == nullptr || !ctx_->ok()) return;
        if (j->is_string()) {
            for (const auto& [spelling, v] : vocab) {
                if (j->string_value == spelling) {
                    out = v;
                    return;
                }
            }
        }
        std::string allowed = "must be one of ";
        for (std::size_t i = 0; i < vocab.size(); ++i) {
            allowed += i > 0 ? ", \"" : "\"";
            allowed += vocab[i].first;
            allowed += '"';
        }
        ctx_->fail(j->line, key_path(key), allowed);
    }

    // Call after all gets: any unconsumed member is an unknown key.
    void finish() {
        if (v_ == nullptr || !ctx_->ok()) return;
        for (std::size_t i = 0; i < v_->members.size(); ++i) {
            if (!consumed_[i]) {
                ctx_->fail(v_->members[i].second.line, path_,
                           "unknown key \"" + v_->members[i].first + "\"");
                return;
            }
        }
    }

    [[nodiscard]] std::string key_path(const char* key) const {
        return path_.empty() ? std::string{key} : path_ + "." + key;
    }

    Ctx* ctx_;  // public-ish access for composed parsers below

private:
    const JsonValue* v_;
    std::string path_;
    int line_{1};
    std::vector<bool> consumed_;
};

const std::vector<std::pair<const char*, QueueDiscipline>>& discipline_vocab() {
    static const std::vector<std::pair<const char*, QueueDiscipline>> v{
        {"drop_tail", QueueDiscipline::drop_tail},
        {"red", QueueDiscipline::red},
        {"pie", QueueDiscipline::pie},
        {"codel", QueueDiscipline::codel},
    };
    return v;
}

const std::vector<std::pair<const char*, TrafficKind>>& traffic_vocab() {
    static const std::vector<std::pair<const char*, TrafficKind>> v{
        {"infinite_tcp", TrafficKind::infinite_tcp},
        {"cbr_uniform", TrafficKind::cbr_uniform},
        {"cbr_multi", TrafficKind::cbr_multi},
        {"web", TrafficKind::web},
    };
    return v;
}

const std::vector<std::pair<const char*, ScenarioSpec::ProbeTool>>& tool_vocab() {
    static const std::vector<std::pair<const char*, ScenarioSpec::ProbeTool>> v{
        {"badabing", ScenarioSpec::ProbeTool::badabing},
        {"zing", ScenarioSpec::ProbeTool::zing},
        {"sting", ScenarioSpec::ProbeTool::sting},
        {"none", ScenarioSpec::ProbeTool::none},
    };
    return v;
}

void parse_link(Ctx& ctx, Section& top, ScenarioSpec& spec) {
    Section link{ctx, top.get("link"), "link", top.line()};
    TestbedConfig& tb = spec.testbed;

    double rate_mbps = static_cast<double>(tb.bottleneck_rate_bps) / 1e6;
    link.number("rate_mbps", rate_mbps, 0.0, 100'000.0, /*lo_exclusive=*/true);
    tb.bottleneck_rate_bps = static_cast<std::int64_t>(std::llround(rate_mbps * 1e6));

    link.time_ms("delay_ms", tb.prop_delay);
    link.time_ms("buffer_ms", tb.buffer_time, /*min_exclusive=*/true);
    link.one_of("discipline", tb.discipline, discipline_vocab());

    Section red{ctx, link.get("red"), "link.red", link.line()};
    red.number("min_threshold", tb.red.min_threshold, 0.0, 1.0);
    red.number("max_threshold", tb.red.max_threshold, 0.0, 1.0);
    red.number("max_drop_probability", tb.red.max_drop_probability, 0.0, 1.0);
    red.number("weight", tb.red.weight, 0.0, 1.0, /*lo_exclusive=*/true);
    red.boolean("ecn", tb.red.ecn);
    red.finish();
    if (ctx.ok() && tb.red.min_threshold > tb.red.max_threshold) {
        ctx.fail(red.line(), "link.red.min_threshold",
                 "must not exceed link.red.max_threshold");
    }

    Section pie{ctx, link.get("pie"), "link.pie", link.line()};
    pie.time_ms("target_delay_ms", tb.pie.target_delay, /*min_exclusive=*/true);
    pie.time_ms("update_interval_ms", tb.pie.update_interval, /*min_exclusive=*/true);
    pie.number("alpha", tb.pie.alpha, 0.0, 16.0, /*lo_exclusive=*/true);
    pie.number("beta", tb.pie.beta, 0.0, 16.0);
    pie.time_ms("burst_allowance_ms", tb.pie.burst_allowance);
    pie.boolean("ecn", tb.pie.ecn);
    pie.number("ecn_mark_ceiling", tb.pie.ecn_mark_ceiling, 0.0, 1.0);
    pie.finish();

    Section codel{ctx, link.get("codel"), "link.codel", link.line()};
    codel.time_ms("target_ms", tb.codel.target, /*min_exclusive=*/true);
    codel.time_ms("interval_ms", tb.codel.interval, /*min_exclusive=*/true);
    codel.boolean("ecn", tb.codel.ecn);
    codel.finish();

    Section ge{ctx, link.get("ge"), "link.ge", link.line()};
    ge.boolean("enabled", tb.ge_enabled);
    ge.number("p_good_loss", tb.ge.p_good_loss, 0.0, 1.0);
    ge.number("p_bad_loss", tb.ge.p_bad_loss, 0.0, 1.0);
    ge.time_s("mean_good_s", tb.ge.mean_good, /*min_exclusive=*/true);
    ge.time_ms("mean_bad_ms", tb.ge.mean_bad, /*min_exclusive=*/true);
    ge.time_ms("extra_delay_ms", tb.ge.extra_delay);
    ge.finish();

    std::int64_t qbit = tb.qbit_block;
    link.integer("qbit_block", qbit, 0, 1'000'000'000);
    tb.qbit_block = static_cast<std::uint32_t>(qbit);

    std::int64_t hops = tb.extra_hops;
    link.integer("extra_hops", hops, 0, 16);
    tb.extra_hops = static_cast<int>(hops);
    link.number("extra_hop_rate_factor", tb.extra_hop_rate_factor, 0.0, 1024.0,
                /*lo_exclusive=*/true);
    link.finish();
}

void parse_figure3(Ctx& ctx, Section& top, ScenarioSpec& spec) {
    Section f3{ctx, top.get("figure3"), "figure3", top.line()};
    if (f3.present() && spec.topology != ScenarioSpec::Topology::figure3) {
        ctx.fail(f3.line(), "figure3", "section requires \"topology\": \"figure3\"");
        return;
    }
    std::int64_t factor = spec.figure3.oc12_factor;
    f3.integer("oc12_factor", factor, 1, 64);
    spec.figure3.oc12_factor = static_cast<int>(factor);
    f3.time_us("ge_delay_us", spec.figure3.ge_delay);
    f3.finish();
    // The hop-C OC3 inherits the link section's rate/delay/buffer.
    spec.figure3.oc3_rate_bps = spec.testbed.bottleneck_rate_bps;
    spec.figure3.prop_delay = spec.testbed.prop_delay;
    spec.figure3.buffer_time = spec.testbed.buffer_time;
}

void parse_traffic(Ctx& ctx, Section& top, ScenarioSpec& spec) {
    Section tr{ctx, top.get("traffic"), "traffic", top.line()};
    WorkloadConfig& wl = spec.workload;

    tr.one_of("kind", wl.kind, traffic_vocab());
    tr.time_s("duration_s", wl.duration, /*min_exclusive=*/true);

    std::int64_t flows = wl.tcp_flows;
    tr.integer("tcp_flows", flows, 0, 100'000);
    wl.tcp_flows = static_cast<int>(flows);
    tr.integer("tcp_rwnd_segments", wl.tcp_rwnd_segments, 1, 1'000'000);
    tr.boolean("tcp_ecn", wl.tcp_ecn);

    tr.number("cbr_background_load", wl.cbr_background_load, 0.0, 1.0);
    tr.time_ms("episode_ms", wl.episode_duration, /*min_exclusive=*/true);
    if (const JsonValue* list = tr.get("episode_ms_list"); list != nullptr && ctx.ok()) {
        if (!list->is_array()) {
            ctx.fail(list->line, "traffic.episode_ms_list", "must be an array of numbers");
        } else {
            wl.episode_durations.clear();
            for (const JsonValue& item : list->items) {
                if (!item.is_number() || item.number_value <= 0.0) {
                    ctx.fail(item.line, "traffic.episode_ms_list",
                             "entries must be positive numbers of milliseconds");
                    break;
                }
                wl.episode_durations.push_back(
                    item.number_is_int
                        ? milliseconds(item.int_value)
                        : nanoseconds(static_cast<std::int64_t>(
                              std::llround(item.number_value * 1e6))));
            }
        }
    }
    tr.time_s("mean_episode_gap_s", wl.mean_episode_gap, /*min_exclusive=*/true);

    tr.number("web_session_rate_per_s", wl.web_session_rate_per_s, 0.0, 1e6,
              /*lo_exclusive=*/true);
    tr.number("web_objects_per_session", wl.web_objects_per_session, 0.0, 1e6,
              /*lo_exclusive=*/true);
    tr.number("web_pareto_alpha", wl.web_pareto_alpha, 0.0, 64.0, /*lo_exclusive=*/true);
    tr.number("web_object_min_bytes", wl.web_object_min_bytes, 0.0, 1e12,
              /*lo_exclusive=*/true);
    tr.time_ms("web_think_time_ms", wl.web_think_time);
    tr.finish();
}

void parse_probe(Ctx& ctx, Section& top, ScenarioSpec& spec) {
    Section probe{ctx, top.get("probe"), "probe", top.line()};
    probe.one_of("tool", spec.tool, tool_vocab());
    probe.boolean("streaming", spec.streaming);

    Section bb_sec{ctx, probe.get("badabing"), "probe.badabing", probe.line()};
    probes::BadabingConfig& bc = spec.badabing;
    bb_sec.number("p", bc.p, 0.0, 1.0, /*lo_exclusive=*/true);
    bb_sec.time_ms("slot_ms", bc.slot_width, /*min_exclusive=*/true);
    bb_sec.boolean("improved", bc.improved);
    bb_sec.number("extended_fraction", bc.extended_fraction, 0.0, 1.0);
    std::int64_t ppp = bc.packets_per_probe;
    bb_sec.integer("packets_per_probe", ppp, 1, 64);
    bc.packets_per_probe = static_cast<int>(ppp);
    std::int64_t pbytes = bc.packet_bytes;
    bb_sec.integer("packet_bytes", pbytes, 1, 65'535);
    bc.packet_bytes = static_cast<std::int32_t>(pbytes);
    bb_sec.time_us("intra_probe_gap_us", bc.intra_probe_gap);
    std::int64_t slots = static_cast<std::int64_t>(bc.total_slots);
    // 0 = size the design to the workload window (the benches' convention).
    bb_sec.integer("total_slots", slots, 0, 1'000'000'000);
    bc.total_slots = static_cast<core::SlotIndex>(slots);
    bb_sec.boolean("ecn_probes", bc.ecn_probes);
    bb_sec.time_ms("receiver_clock_offset_ms", bc.receiver_clock_offset);
    bb_sec.number("receiver_clock_skew_ppm", bc.receiver_clock_skew_ppm, -1e6, 1e6);
    bb_sec.finish();

    Section zing{ctx, probe.get("zing"), "probe.zing", probe.line()};
    zing.time_ms("mean_interval_ms", spec.zing.mean_interval, /*min_exclusive=*/true);
    std::int64_t zbytes = spec.zing.packet_bytes;
    zing.integer("packet_bytes", zbytes, 1, 65'535);
    spec.zing.packet_bytes = static_cast<std::int32_t>(zbytes);
    std::int64_t flight = spec.zing.packets_per_flight;
    zing.integer("packets_per_flight", flight, 1, 64);
    spec.zing.packets_per_flight = static_cast<int>(flight);
    zing.finish();

    Section sting{ctx, probe.get("sting"), "probe.sting", probe.line()};
    std::int64_t segs = spec.sting.burst_segments;
    sting.integer("burst_segments", segs, 1, 100'000);
    spec.sting.burst_segments = static_cast<int>(segs);
    sting.time_ms("seed_spacing_ms", spec.sting.seed_spacing, /*min_exclusive=*/true);
    sting.time_s("burst_interval_s", spec.sting.burst_interval, /*min_exclusive=*/true);
    sting.time_ms("retransmit_timeout_ms", spec.sting.retransmit_timeout,
                  /*min_exclusive=*/true);
    sting.number("rto_jitter", spec.sting.rto_jitter, 0.0, 1.0);
    std::int64_t sbytes = spec.sting.segment_bytes;
    sting.integer("segment_bytes", sbytes, 1, 65'535);
    spec.sting.segment_bytes = static_cast<std::int32_t>(sbytes);
    sting.finish();

    probe.finish();
}

void parse_truth(Ctx& ctx, Section& top, ScenarioSpec& spec) {
    Section truth{ctx, top.get("truth"), "truth", top.line()};
    truth.time_ms("slot_ms", spec.truth.slot_width, /*min_exclusive=*/true);
    truth.time_ms("episode_gap_ms", spec.truth.episode_gap, /*min_exclusive=*/true);
    truth.boolean("delay_based", spec.truth.delay_based);
    truth.time_ms("delay_floor_ms", spec.truth.delay_floor);
    truth.boolean("bounded_memory", spec.truth.bounded_memory);
    truth.finish();
    if (ctx.ok() && spec.truth.delay_based && spec.truth.bounded_memory) {
        ctx.fail(truth.line(), "truth.bounded_memory",
                 "incompatible with truth.delay_based (the heuristic needs the full record)");
    }
}

void parse_analysis(Ctx& ctx, Section& top, ScenarioSpec& spec) {
    Section an{ctx, top.get("analysis"), "analysis", top.line()};
    if (const JsonValue* a = an.get("alpha"); a != nullptr && ctx.ok()) {
        if (!a->is_number() || a->number_value <= 0.0 || a->number_value >= 1.0) {
            ctx.fail(a->line, "analysis.alpha", "must be in (0, 1)");
        } else {
            spec.marking_alpha = a->number_value;
        }
    }
    if (const JsonValue* t = an.get("tau_ms"); t != nullptr && ctx.ok()) {
        if (!t->is_number() || t->number_value <= 0.0) {
            ctx.fail(t->line, "analysis.tau_ms", "must be > 0");
        } else {
            spec.marking_tau = t->number_is_int
                                   ? milliseconds(t->int_value)
                                   : nanoseconds(static_cast<std::int64_t>(
                                         std::llround(t->number_value * 1e6)));
        }
    }
    an.boolean("frequency_from_extended", spec.estimator.frequency_from_extended);
    an.boolean("pairs_from_extended", spec.estimator.pairs_from_extended);
    an.finish();
}

void parse_run(Ctx& ctx, Section& top, ScenarioSpec& spec) {
    Section run{ctx, top.get("run"), "run", top.line()};
    std::int64_t replicas = static_cast<std::int64_t>(spec.replicas);
    run.integer("replicas", replicas, 1, 100'000);
    spec.replicas = static_cast<std::size_t>(replicas);
    std::int64_t threads = static_cast<std::int64_t>(spec.threads);
    run.integer("threads", threads, 0, 4096);
    spec.threads = static_cast<std::size_t>(threads);
    std::int64_t seed = static_cast<std::int64_t>(spec.seed);
    run.integer("seed", seed, 0, std::numeric_limits<std::int64_t>::max());
    spec.seed = static_cast<std::uint64_t>(seed);
    run.finish();
}

}  // namespace

const char* to_string(QueueDiscipline d) noexcept {
    switch (d) {
        case QueueDiscipline::drop_tail: return "drop_tail";
        case QueueDiscipline::red: return "red";
        case QueueDiscipline::pie: return "pie";
        case QueueDiscipline::codel: return "codel";
    }
    return "?";
}

const char* to_string(TrafficKind k) noexcept {
    switch (k) {
        case TrafficKind::infinite_tcp: return "infinite_tcp";
        case TrafficKind::cbr_uniform: return "cbr_uniform";
        case TrafficKind::cbr_multi: return "cbr_multi";
        case TrafficKind::web: return "web";
    }
    return "?";
}

const char* to_string(ScenarioSpec::ProbeTool t) noexcept {
    switch (t) {
        case ScenarioSpec::ProbeTool::badabing: return "badabing";
        case ScenarioSpec::ProbeTool::zing: return "zing";
        case ScenarioSpec::ProbeTool::sting: return "sting";
        case ScenarioSpec::ProbeTool::none: return "none";
    }
    return "?";
}

SpecResult parse_scenario_spec(const JsonValue& doc, std::string_view source) {
    SpecResult out;
    Ctx ctx;
    ctx.source = std::string{source};
    if (!doc.is_object()) {
        ctx.fail(doc.line, "spec", "top level must be a JSON object");
        out.error = ctx.error;
        return out;
    }

    ScenarioSpec& spec = out.spec;
    // DSL default: size the probe design to the workload window (the struct
    // default of 180'000 slots belongs to the paper's fixed 900 s runs).
    spec.badabing.total_slots = 0;

    Section top{ctx, &doc, "", 1};
    top.string("name", spec.name);
    {
        static const std::vector<std::pair<const char*, ScenarioSpec::Topology>> vocab{
            {"dumbbell", ScenarioSpec::Topology::dumbbell},
            {"figure3", ScenarioSpec::Topology::figure3},
        };
        top.one_of("topology", spec.topology, vocab);
    }
    parse_link(ctx, top, spec);
    parse_figure3(ctx, top, spec);
    parse_traffic(ctx, top, spec);
    parse_probe(ctx, top, spec);
    parse_truth(ctx, top, spec);
    parse_analysis(ctx, top, spec);
    parse_run(ctx, top, spec);
    top.finish();

    if (!ctx.ok()) {
        out.error = ctx.error;
        return out;
    }

    if (spec.name.empty()) spec.name = "scenario";
    // The run seed is the workload master seed, exactly as the hand-wired
    // benches pass bench_seed() into WorkloadConfig::seed.
    spec.workload.seed = spec.seed;
    out.ok = true;
    return out;
}

SpecResult load_scenario_spec_text(std::string_view text, std::string_view source) {
    const JsonParse parsed = json_parse(text, source);
    if (!parsed.ok) {
        SpecResult out;
        out.error = parsed.error;
        return out;
    }
    return parse_scenario_spec(parsed.value, source);
}

SpecResult load_scenario_spec_file(const std::string& path) {
    const JsonParse parsed = json_parse_file(path);
    if (!parsed.ok) {
        SpecResult out;
        out.error = parsed.error;
        return out;
    }
    SpecResult out = parse_scenario_spec(parsed.value, path);
    if (out.ok && out.spec.name == "scenario") {
        // Default the label to the file stem: "examples/table4.json" -> "table4".
        std::string stem = path;
        if (const auto slash = stem.find_last_of("/\\"); slash != std::string::npos) {
            stem = stem.substr(slash + 1);
        }
        if (const auto dot = stem.rfind('.'); dot != std::string::npos && dot > 0) {
            stem = stem.substr(0, dot);
        }
        if (!stem.empty()) out.spec.name = stem;
    }
    return out;
}

std::unique_ptr<Testbed> build_testbed(const ScenarioSpec& spec) {
    BB_CHECK_MSG(spec.topology == ScenarioSpec::Topology::dumbbell,
                 "build_testbed: spec topology is not the dumbbell");
    return std::make_unique<Testbed>(spec.testbed);
}

std::unique_ptr<Figure3Testbed> build_figure3_testbed(const ScenarioSpec& spec) {
    BB_CHECK_MSG(spec.topology == ScenarioSpec::Topology::figure3,
                 "build_figure3_testbed: spec topology is not figure3");
    return std::make_unique<Figure3Testbed>(spec.figure3);
}

BuiltExperiment build_experiment(const ScenarioSpec& spec) {
    BB_CHECK_MSG(spec.topology == ScenarioSpec::Topology::dumbbell,
                 "build_experiment: only the dumbbell topology hosts an Experiment");
    BuiltExperiment built;
    built.experiment =
        std::make_unique<Experiment>(spec.testbed, spec.workload, spec.truth);
    switch (spec.tool) {
        case ScenarioSpec::ProbeTool::badabing:
            built.badabing = &built.experiment->add_badabing(spec.badabing);
            break;
        case ScenarioSpec::ProbeTool::zing:
            built.zing = &built.experiment->add_zing(spec.zing);
            break;
        case ScenarioSpec::ProbeTool::sting:
            built.sting = &built.experiment->add_sting(spec.sting);
            break;
        case ScenarioSpec::ProbeTool::none:
            break;
    }
    return built;
}

core::MarkingConfig marking_for(const ScenarioSpec& spec) {
    core::MarkingConfig m;
    m.tau = spec.marking_tau ? *spec.marking_tau
                             : tau_for_probe_rate(spec.badabing.p, spec.truth.slot_width);
    m.alpha = spec.marking_alpha ? *spec.marking_alpha
                                 : alpha_for_probe_rate(spec.badabing.p);
    return m;
}

ReplicaPlan replica_plan_from(const ScenarioSpec& spec) {
    BB_CHECK_MSG(spec.tool == ScenarioSpec::ProbeTool::badabing,
                 "replica_plan_from: the replica harness estimates with BADABING");
    ReplicaPlan plan;
    plan.testbed = spec.testbed;
    plan.workload = spec.workload;
    plan.truth = spec.truth;
    plan.probe = spec.badabing;
    if (spec.marking_alpha || spec.marking_tau) plan.marking = marking_for(spec);
    plan.estimator = spec.estimator;
    return plan;
}

ReplicaRunner::Config runner_config_from(const ScenarioSpec& spec) {
    ReplicaRunner::Config rc;
    rc.replicas = spec.replicas;
    rc.threads = spec.threads;
    rc.master_seed = spec.seed;
    return rc;
}

}  // namespace bb::scenarios
