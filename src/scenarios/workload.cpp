#include "scenarios/workload.h"

namespace bb::scenarios {

namespace {
constexpr sim::FlowId kTcpFlowBase = 100;
constexpr sim::FlowId kCbrFlow = 9000;
constexpr sim::FlowId kBurstFlow = 9100;
constexpr sim::FlowId kWebFlowBase = 20'000;
}  // namespace

Workload::Workload(Testbed& tb, const WorkloadConfig& cfg) : cfg_{cfg}, rng_{cfg.seed} {
    switch (cfg_.kind) {
        case TrafficKind::infinite_tcp:
            build_infinite_tcp(tb);
            break;
        case TrafficKind::cbr_uniform:
        case TrafficKind::cbr_multi:
            build_cbr(tb);
            break;
        case TrafficKind::web:
            build_web(tb);
            break;
    }
}

void Workload::build_infinite_tcp(Testbed& tb) {
    tcp::TcpConfig tcp_cfg;
    tcp_cfg.rwnd_segments = cfg_.tcp_rwnd_segments;
    tcp_cfg.ecn = cfg_.tcp_ecn;
    for (int i = 0; i < cfg_.tcp_flows; ++i) {
        const auto flow = static_cast<sim::FlowId>(kTcpFlowBase + i);
        tcp_flows_.push_back(std::make_unique<tcp::TcpFlow>(
            tb.sched(), flow, tcp_cfg, tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
            tb.rev_demux()));
        // Stagger start times a little so slow start does not produce one
        // giant synchronized burst at t=0 (the testbed hosts did the same).
        const TimeNs start = seconds(rng_.uniform(0.0, 2.0));
        tcp_flows_.back()->sender().start(start);
    }
}

void Workload::build_cbr(Testbed& tb) {
    const std::int64_t rate = tb.config().bottleneck_rate_bps;

    if (cfg_.cbr_background_load > 0.0) {
        traffic::CbrSource::Config base;
        base.rate_bps = static_cast<std::int64_t>(cfg_.cbr_background_load *
                                                  static_cast<double>(rate));
        base.flow = kCbrFlow;
        base.stop = cfg_.duration;
        cbr_.push_back(
            std::make_unique<traffic::CbrSource>(tb.sched(), base, tb.forward_in()));
    }

    traffic::EpisodicBurstSource::Config burst;
    burst.episode_durations = cfg_.episode_durations.empty()
                                  ? std::vector<TimeNs>{cfg_.episode_duration}
                                  : cfg_.episode_durations;
    burst.mean_gap = cfg_.mean_episode_gap;
    burst.flow = kBurstFlow;
    burst.stop = cfg_.duration;
    burst.bottleneck_rate_bps = rate;
    burst.bottleneck_capacity_bytes = tb.bottleneck().capacity_bytes();
    burst.background_load = cfg_.cbr_background_load;
    bursts_.push_back(std::make_unique<traffic::EpisodicBurstSource>(
        tb.sched(), burst, tb.forward_in(), rng_.fork(0xb0)));
}

void Workload::build_web(Testbed& tb) {
    traffic::WebSessionGenerator::Config web;
    web.session_rate_per_s = cfg_.web_session_rate_per_s;
    web.objects_per_session_mean = cfg_.web_objects_per_session;
    web.pareto_alpha = cfg_.web_pareto_alpha;
    web.object_min_bytes = cfg_.web_object_min_bytes;
    web.think_time_mean = cfg_.web_think_time;
    web.first_flow = kWebFlowBase;
    web.stop = cfg_.duration;
    web.tcp.ecn = cfg_.tcp_ecn;
    web_ = std::make_unique<traffic::WebSessionGenerator>(
        tb.sched(), web, tb.forward_in(), tb.reverse_in(), tb.fwd_demux(), tb.rev_demux(),
        rng_.fork(0xe5));
}

}  // namespace bb::scenarios
