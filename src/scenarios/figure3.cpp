#include "scenarios/figure3.h"

namespace bb::scenarios {

Figure3Testbed::Figure3Testbed(const Config& cfg) : cfg_{cfg} {
    // Receiving side (hops D/E): the hop-D router distributes by destination
    // host over GE segments to the two receiving hosts.
    ge_to_traffic_rx_ = std::make_unique<sim::DelayLink>(sched_, cfg.ge_delay, traffic_rx_);
    ge_to_probe_rx_ = std::make_unique<sim::DelayLink>(sched_, cfg.ge_delay, probe_rx_);
    hop_d_.add_route(kTrafficReceiver, *ge_to_traffic_rx_);
    hop_d_.add_route(kProbeReceiver, *ge_to_probe_rx_);
    hop_d_.set_default_route(blackhole_);
    traffic_rx_.set_default(blackhole_);
    probe_rx_.set_default(blackhole_);
    rev_demux_.set_default(blackhole_);

    // Hop C: the OC3 bottleneck with the 50 ms delay emulator downstream.
    sim::QueueBase::LinkConfig oc3;
    oc3.rate_bps = cfg.oc3_rate_bps;
    oc3.prop_delay = cfg.prop_delay;
    oc3.capacity_time = cfg.buffer_time;
    hop_c_ = std::make_unique<sim::BottleneckQueue>(sched_, oc3, hop_d_);

    // Hop B: two parallel OC12 queues (one per sender host) into hop C.
    sim::QueueBase::LinkConfig oc12;
    oc12.rate_bps = cfg.oc3_rate_bps * cfg.oc12_factor;
    oc12.prop_delay = cfg.ge_delay;
    oc12.capacity_time = cfg.buffer_time;
    hop_b_traffic_ = std::make_unique<sim::BottleneckQueue>(sched_, oc12, *hop_c_);
    hop_b_probe_ = std::make_unique<sim::BottleneckQueue>(sched_, oc12, *hop_c_);

    // Sending hosts: stamp addresses so hop D can route.
    traffic_stamper_ = std::make_unique<sim::AddressStamper>(kTrafficSender, kTrafficReceiver,
                                                             *hop_b_traffic_);
    probe_stamper_ =
        std::make_unique<sim::AddressStamper>(kProbeSender, kProbeReceiver, *hop_b_probe_);

    // Reverse path: receivers' ACKs go back over an uncongested 50 ms path.
    reverse_ = std::make_unique<sim::DelayLink>(sched_, cfg.prop_delay, rev_demux_);
}

}  // namespace bb::scenarios
