#include "core/probe_process.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/contract.h"

namespace bb::core {

namespace {
void validate(const ProbeProcessConfig& cfg) {
    if (cfg.p <= 0.0 || cfg.p > 1.0) {
        throw std::invalid_argument{"probe process: p must be in (0, 1]"};
    }
    if (cfg.extended_fraction < 0.0 || cfg.extended_fraction > 1.0) {
        throw std::invalid_argument{"probe process: extended_fraction must be in [0, 1]"};
    }
}
}  // namespace

ProbeDesign design_probe_process(Rng& rng, SlotIndex total_slots,
                                 const ProbeProcessConfig& cfg) {
    validate(cfg);

    ProbeDesign design;
    for (SlotIndex i = 0; i < total_slots; ++i) {
        if (!rng.bernoulli(cfg.p)) continue;
        const bool extended = cfg.improved && rng.bernoulli(cfg.extended_fraction);
        const Experiment e{i, extended ? ExperimentKind::extended : ExperimentKind::basic};
        // Keep every experiment fully inside the measurement window.
        if (i + e.probes() > total_slots) continue;
        design.experiments.push_back(e);
        for (int k = 0; k < e.probes(); ++k) design.probe_slots.push_back(i + k);
    }
    std::sort(design.probe_slots.begin(), design.probe_slots.end());
    design.probe_slots.erase(
        std::unique(design.probe_slots.begin(), design.probe_slots.end()),
        design.probe_slots.end());
    return design;
}

GeometricSkipAhead::GeometricSkipAhead(double p) : p_{p} {
    if (p <= 0.0 || p > 1.0) {
        throw std::invalid_argument{"probe process: p must be in (0, 1]"};
    }
    inv_log_q_ = p < 1.0 ? 1.0 / std::log1p(-p) : 0.0;
}

SlotIndex GeometricSkipAhead::next_gap(Rng& rng) const {
    if (p_ >= 1.0) return 0;
    // Inversion of the geometric CDF: P(G >= k+1) = (1-p)^(k+1), with
    // U ~ Uniform[0,1) so 1-U in (0,1] and the log is finite.
    const double g = std::floor(std::log1p(-rng.uniform01()) * inv_log_q_);
    // Clamp before the cast: for tiny p the double can exceed int64 range.
    constexpr double kMaxGap = 4.0e18;
    return g < kMaxGap ? static_cast<SlotIndex>(g)
                       : static_cast<SlotIndex>(kMaxGap);
}

ProbeDesign design_probe_process_skip_ahead(Rng& rng, SlotIndex total_slots,
                                            const ProbeProcessConfig& cfg) {
    validate(cfg);
    const GeometricSkipAhead gaps{cfg.p};

    ProbeDesign design;
    // Cheap expected-size reservations: ~p*slots experiments, ~2.4 probes each
    // shared across overlaps.
    const auto expected = static_cast<std::size_t>(cfg.p * static_cast<double>(total_slots));
    design.experiments.reserve(expected + 16);
    design.probe_slots.reserve(3 * expected + 16);

    SlotIndex i = gaps.next_gap(rng);
    while (i < total_slots) {
        const bool extended = cfg.improved && rng.bernoulli(cfg.extended_fraction);
        const Experiment e{i, extended ? ExperimentKind::extended : ExperimentKind::basic};
        // Same window rule as the per-slot designer: keep every experiment
        // fully inside the measurement window (later starts may still fit).
        if (i + e.probes() <= total_slots) {
            design.experiments.push_back(e);
            for (int k = 0; k < e.probes(); ++k) design.probe_slots.push_back(i + k);
        }
        const SlotIndex gap = gaps.next_gap(rng);
        if (gap >= total_slots - i) break;  // overflow-safe: next start is past the window
        i += 1 + gap;
    }
    std::sort(design.probe_slots.begin(), design.probe_slots.end());
    design.probe_slots.erase(
        std::unique(design.probe_slots.begin(), design.probe_slots.end()),
        design.probe_slots.end());
    return design;
}

StreamingExperimentScorer::StreamingExperimentScorer(Rng rng, const ProbeProcessConfig& cfg,
                                                     ReportSink& sink)
    : rng_{std::move(rng)}, cfg_{cfg}, sink_{&sink} {
    validate(cfg_);
}

void StreamingExperimentScorer::step(bool congested) {
    // Same per-slot draw order as design_probe_process: the start decision,
    // then (only if started and improved) the basic-vs-extended decision.
    if (rng_.bernoulli(cfg_.p)) {
        const bool extended = cfg_.improved && rng_.bernoulli(cfg_.extended_fraction);
        // At most one experiment starts per slot and the longest spans three
        // slots, so the fixed 3-entry buffer can never overflow — unless the
        // completion logic below regresses.
        BB_CHECK_MSG(static_cast<std::size_t>(pending_count_) < pending_.size(),
                     "streaming scorer: pending-experiment buffer overflow");
        pending_[static_cast<std::size_t>(pending_count_++)] = Pending{
            slot_, extended ? ExperimentKind::extended : ExperimentKind::basic, 0, 0};
        ++started_;
    }

    // Fold this slot's state into every pending experiment; emit the ones it
    // completes.  Pending entries are in start order, so completions (which
    // can only come from the oldest entries) are emitted in start order too,
    // matching the batch scorer.
    int kept = 0;
    for (int i = 0; i < pending_count_; ++i) {
        Pending& p = pending_[static_cast<std::size_t>(i)];
        p.code = static_cast<std::uint8_t>((p.code << 1) | (congested ? 1 : 0));
        ++p.digits;
        const int span = p.kind == ExperimentKind::basic ? 2 : 3;
        if (p.digits == span) {
            sink_->consume({p.kind, p.code});
            ++completed_;
        } else {
            pending_[static_cast<std::size_t>(kept++)] = p;
        }
    }
    pending_count_ = kept;
    ++slot_;
    BB_DCHECK_MSG(completed_ + static_cast<std::uint64_t>(pending_count_) == started_,
                  "streaming scorer: started/completed/pending accounting drifted");
}

double expected_probe_slot_fraction(const ProbeProcessConfig& cfg) noexcept {
    const double mean_probes =
        cfg.improved ? (2.0 * (1.0 - cfg.extended_fraction) + 3.0 * cfg.extended_fraction)
                     : 2.0;
    return cfg.p * mean_probes;
}

}  // namespace bb::core
