#include "core/probe_process.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace bb::core {

ProbeDesign design_probe_process(Rng& rng, SlotIndex total_slots,
                                 const ProbeProcessConfig& cfg) {
    if (cfg.p <= 0.0 || cfg.p > 1.0) {
        throw std::invalid_argument{"probe process: p must be in (0, 1]"};
    }
    if (cfg.extended_fraction < 0.0 || cfg.extended_fraction > 1.0) {
        throw std::invalid_argument{"probe process: extended_fraction must be in [0, 1]"};
    }

    ProbeDesign design;
    for (SlotIndex i = 0; i < total_slots; ++i) {
        if (!rng.bernoulli(cfg.p)) continue;
        const bool extended = cfg.improved && rng.bernoulli(cfg.extended_fraction);
        const Experiment e{i, extended ? ExperimentKind::extended : ExperimentKind::basic};
        // Keep every experiment fully inside the measurement window.
        if (i + e.probes() > total_slots) continue;
        design.experiments.push_back(e);
        for (int k = 0; k < e.probes(); ++k) design.probe_slots.push_back(i + k);
    }
    std::sort(design.probe_slots.begin(), design.probe_slots.end());
    design.probe_slots.erase(
        std::unique(design.probe_slots.begin(), design.probe_slots.end()),
        design.probe_slots.end());
    return design;
}

StreamingExperimentScorer::StreamingExperimentScorer(Rng rng, const ProbeProcessConfig& cfg,
                                                     ReportSink& sink)
    : rng_{std::move(rng)}, cfg_{cfg}, sink_{&sink} {
    if (cfg_.p <= 0.0 || cfg_.p > 1.0) {
        throw std::invalid_argument{"probe process: p must be in (0, 1]"};
    }
    if (cfg_.extended_fraction < 0.0 || cfg_.extended_fraction > 1.0) {
        throw std::invalid_argument{"probe process: extended_fraction must be in [0, 1]"};
    }
}

void StreamingExperimentScorer::step(bool congested) {
    // Same per-slot draw order as design_probe_process: the start decision,
    // then (only if started and improved) the basic-vs-extended decision.
    if (rng_.bernoulli(cfg_.p)) {
        const bool extended = cfg_.improved && rng_.bernoulli(cfg_.extended_fraction);
        pending_[static_cast<std::size_t>(pending_count_++)] = Pending{
            slot_, extended ? ExperimentKind::extended : ExperimentKind::basic, 0, 0};
        ++started_;
    }

    // Fold this slot's state into every pending experiment; emit the ones it
    // completes.  Pending entries are in start order, so completions (which
    // can only come from the oldest entries) are emitted in start order too,
    // matching the batch scorer.
    int kept = 0;
    for (int i = 0; i < pending_count_; ++i) {
        Pending& p = pending_[static_cast<std::size_t>(i)];
        p.code = static_cast<std::uint8_t>((p.code << 1) | (congested ? 1 : 0));
        ++p.digits;
        const int span = p.kind == ExperimentKind::basic ? 2 : 3;
        if (p.digits == span) {
            sink_->consume({p.kind, p.code});
            ++completed_;
        } else {
            pending_[static_cast<std::size_t>(kept++)] = p;
        }
    }
    pending_count_ = kept;
    ++slot_;
}

double expected_probe_slot_fraction(const ProbeProcessConfig& cfg) noexcept {
    const double mean_probes =
        cfg.improved ? (2.0 * (1.0 - cfg.extended_fraction) + 3.0 * cfg.extended_fraction)
                     : 2.0;
    return cfg.p * mean_probes;
}

}  // namespace bb::core
