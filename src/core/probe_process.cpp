#include "core/probe_process.h"

#include <algorithm>
#include <stdexcept>

namespace bb::core {

ProbeDesign design_probe_process(Rng& rng, SlotIndex total_slots,
                                 const ProbeProcessConfig& cfg) {
    if (cfg.p <= 0.0 || cfg.p > 1.0) {
        throw std::invalid_argument{"probe process: p must be in (0, 1]"};
    }
    if (cfg.extended_fraction < 0.0 || cfg.extended_fraction > 1.0) {
        throw std::invalid_argument{"probe process: extended_fraction must be in [0, 1]"};
    }

    ProbeDesign design;
    for (SlotIndex i = 0; i < total_slots; ++i) {
        if (!rng.bernoulli(cfg.p)) continue;
        const bool extended = cfg.improved && rng.bernoulli(cfg.extended_fraction);
        const Experiment e{i, extended ? ExperimentKind::extended : ExperimentKind::basic};
        // Keep every experiment fully inside the measurement window.
        if (i + e.probes() > total_slots) continue;
        design.experiments.push_back(e);
        for (int k = 0; k < e.probes(); ++k) design.probe_slots.push_back(i + k);
    }
    std::sort(design.probe_slots.begin(), design.probe_slots.end());
    design.probe_slots.erase(
        std::unique(design.probe_slots.begin(), design.probe_slots.end()),
        design.probe_slots.end());
    return design;
}

double expected_probe_slot_fraction(const ProbeProcessConfig& cfg) noexcept {
    const double mean_probes =
        cfg.improved ? (2.0 * (1.0 - cfg.extended_fraction) + 3.0 * cfg.extended_fraction)
                     : 2.0;
    return cfg.p * mean_probes;
}

}  // namespace bb::core
