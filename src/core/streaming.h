// Online (one-pass, O(1)-memory) forms of the paper's estimators and
// validation tests.  Each accumulator is a ReportSink: feed experiment
// reports as they complete; finalize() is bit-identical to running the batch
// functions in estimators.h / validation.h over the same report sequence,
// because both paths reduce to the same integer tallies and evaluate the
// same floating-point expressions on them.
//
// Unlike the batch path, the EstimatorOptions are fixed when the accumulator
// is constructed (a streaming observer cannot re-tally the past), so choose
// them up front when re-analysis under different options is needed.
#ifndef BB_CORE_STREAMING_H
#define BB_CORE_STREAMING_H

#include <cstdint>

#include "core/estimators.h"
#include "core/report_sink.h"
#include "core/types.h"
#include "core/validation.h"

namespace bb::obs {
class Counter;
}  // namespace bb::obs

namespace bb::core {

// F̂ = Σ z_i / M from running tallies of first digits (§5.2.2).
class OnlineFrequency final : public ReportSink {
public:
    explicit OnlineFrequency(EstimatorOptions opts = {}) : opts_{opts} {}

    void consume(const ExperimentResult& r) override;

    [[nodiscard]] FrequencyEstimate finalize() const;

private:
    EstimatorOptions opts_;
    std::uint64_t ones_{0};
    std::uint64_t samples_{0};
};

// D̂ from running R/S (and U/V for the improved algorithm) tallies
// (§5.2.2 basic, §5.3 improved).
class OnlineDuration final : public ReportSink {
public:
    explicit OnlineDuration(EstimatorOptions opts = {}) : opts_{opts} {}

    void consume(const ExperimentResult& r) override;

    [[nodiscard]] DurationEstimate finalize_basic() const;
    [[nodiscard]] DurationEstimate finalize_improved() const;

private:
    EstimatorOptions opts_;
    std::uint64_t R_{0};
    std::uint64_t S_{0};
    std::uint64_t U_{0};
    std::uint64_t V_{0};
};

// §5.4 validation tallies.  The tests need nearly the full report histogram,
// so the sufficient statistic is StateCounts itself (still O(1)); finalize
// delegates to validate() for guaranteed agreement with the batch path.
class OnlineValidation final : public ReportSink {
public:
    void consume(const ExperimentResult& r) override { counts_.add(r); }

    [[nodiscard]] ValidationReport finalize() const { return validate(counts_); }
    [[nodiscard]] StoppingRule::Decision evaluate(const StoppingRule& rule) const {
        return rule.evaluate(counts_);
    }
    [[nodiscard]] const StateCounts& counts() const noexcept { return counts_; }

private:
    StateCounts counts_;
};

// The full §5 analysis as one sink: frequency + basic/improved duration +
// validation, evaluated over whatever has been consumed so far.  This is the
// streaming replacement for "collect a report vector, then run the batch
// estimators" and the engine behind the tools' --stream mode.
class StreamingAnalyzer final : public ReportSink {
public:
    struct Result {
        FrequencyEstimate frequency;
        DurationEstimate duration_basic;
        DurationEstimate duration_improved;
        ValidationReport validation;
        std::uint64_t reports{0};
    };

    explicit StreamingAnalyzer(EstimatorOptions opts = {});
    // Publishes the accumulated per-state tallies to the obs registry exactly
    // once per analyzer lifetime, hence no copies.
    ~StreamingAnalyzer() override;
    StreamingAnalyzer(const StreamingAnalyzer&) = delete;
    StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

    void consume(const ExperimentResult& r) override;

    [[nodiscard]] Result finalize() const;

    // BB_AUDIT walker: recompute every estimate from the batch functions over
    // the accumulated StateCounts and require bit-identical agreement with
    // the online tallies (the PR-2 design guarantee, now enforced at runtime
    // in audit builds).  Aborts via BB_CHECK on divergence.
    void check_against_batch(const Result& res) const;

    [[nodiscard]] const OnlineFrequency& frequency() const noexcept { return frequency_; }
    [[nodiscard]] const OnlineDuration& duration() const noexcept { return duration_; }
    [[nodiscard]] const OnlineValidation& validation() const noexcept { return validation_; }
    [[nodiscard]] const StateCounts& counts() const noexcept { return validation_.counts(); }
    [[nodiscard]] std::uint64_t reports() const noexcept { return reports_; }

private:
    EstimatorOptions opts_;
    OnlineFrequency frequency_;
    OnlineDuration duration_;
    OnlineValidation validation_;
    std::uint64_t reports_{0};
    // Registry handle cached at construction so the hot consume() path pays
    // one relaxed atomic add, never a registry lookup.
    obs::Counter* reports_ctr_;
};

}  // namespace bb::core

#endif  // BB_CORE_STREAMING_H
