// Core data model for the BADABING probe process (paper §5).
//
// Time is discretized into slots of fixed width.  A *basic experiment*
// starting at slot i probes slots {i, i+1} and yields a 2-digit report
// y_i in {00, 01, 10, 11}; an *extended experiment* (improved algorithm)
// probes {i, i+1, i+2} and yields a 3-digit report.  Digits read left to
// right in slot order, exactly like the paper ("y_i = 10 means the first
// probe observed congestion while the second one did not").
#ifndef BB_CORE_TYPES_H
#define BB_CORE_TYPES_H

#include <array>
#include <cstdint>
#include <vector>

#include "util/contract.h"
#include "util/time.h"

namespace bb::core {

using SlotIndex = std::int64_t;

enum class ExperimentKind : std::uint8_t { basic, extended };

struct Experiment {
    SlotIndex start_slot{0};
    ExperimentKind kind{ExperimentKind::basic};

    [[nodiscard]] int probes() const noexcept {
        return kind == ExperimentKind::basic ? 2 : 3;
    }
};

// Report of one experiment.  `code` packs the digits most-significant-first:
// a basic report 01 has code 0b01 == 1; an extended report 110 has
// code 0b110 == 6.
struct ExperimentResult {
    ExperimentKind kind{ExperimentKind::basic};
    std::uint8_t code{0};
};

[[nodiscard]] constexpr std::uint8_t basic_code(bool first, bool second) noexcept {
    return static_cast<std::uint8_t>((first ? 2 : 0) | (second ? 1 : 0));
}
[[nodiscard]] constexpr std::uint8_t extended_code(bool a, bool b, bool c) noexcept {
    return static_cast<std::uint8_t>((a ? 4 : 0) | (b ? 2 : 0) | (c ? 1 : 0));
}

// Tallies of experiment reports, sufficient statistics for both estimators
// and the validation tests.
struct StateCounts {
    std::array<std::uint64_t, 4> basic{};     // indexed by 2-bit code
    std::array<std::uint64_t, 8> extended{};  // indexed by 3-bit code

    void add(const ExperimentResult& r) noexcept {
        // The masks below make an out-of-range code harmless locally, but it
        // would still mean a corrupted report upstream — tally it loudly in
        // contract builds rather than folding it into the wrong bucket.
        BB_DCHECK_MSG(r.code <= (r.kind == ExperimentKind::basic ? 0x3 : 0x7),
                      "state counts: report code out of range for its kind");
        if (r.kind == ExperimentKind::basic) {
            ++basic[r.code & 0x3];
        } else {
            ++extended[r.code & 0x7];
        }
    }

    [[nodiscard]] std::uint64_t basic_total() const noexcept {
        return basic[0] + basic[1] + basic[2] + basic[3];
    }
    [[nodiscard]] std::uint64_t extended_total() const noexcept {
        std::uint64_t t = 0;
        for (auto v : extended) t += v;
        return t;
    }

    // Paper quantities.
    [[nodiscard]] std::uint64_t R() const noexcept {
        return basic[0b01] + basic[0b10] + basic[0b11];
    }
    [[nodiscard]] std::uint64_t S() const noexcept { return basic[0b01] + basic[0b10]; }
    [[nodiscard]] std::uint64_t U() const noexcept {
        return extended[0b011] + extended[0b110];
    }
    [[nodiscard]] std::uint64_t V() const noexcept {
        return extended[0b001] + extended[0b100];
    }

    StateCounts& operator+=(const StateCounts& rhs) noexcept {
        for (std::size_t i = 0; i < basic.size(); ++i) basic[i] += rhs.basic[i];
        for (std::size_t i = 0; i < extended.size(); ++i) extended[i] += rhs.extended[i];
        return *this;
    }
};

// One probe's observable outcome at the receiver, the input to congestion
// marking (paper §6.1).  One-way delays are reported as *queueing* delay:
// raw OWD minus the path's base (minimum observed) delay; the marker also
// accepts raw OWDs and subtracts the running minimum itself.
struct ProbeOutcome {
    SlotIndex slot{0};
    TimeNs send_time{TimeNs::zero()};
    int packets_sent{0};
    int packets_lost{0};
    // Largest one-way delay among the probe's received packets.  Following
    // the paper, when a probe loses packets the delay of the most recent
    // successfully transmitted packet estimates the maximum queue depth.
    TimeNs max_owd{TimeNs::zero()};
    bool any_received{false};
    // Any packet of the probe arrived carrying a CE mark: the queue signalled
    // congestion without dropping (ECN-capable probes against an AQM hop).
    bool ce_marked{false};

    [[nodiscard]] bool any_lost() const noexcept { return packets_lost > 0; }
    [[nodiscard]] bool all_lost() const noexcept {
        return packets_sent > 0 && packets_lost == packets_sent;
    }
};

}  // namespace bb::core

#endif  // BB_CORE_TYPES_H
