#include "core/trace_io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bb::core {

namespace {

constexpr const char* kTraceMagic = "# badabing-trace v1";
constexpr const char* kDesignMagic = "# badabing-design v1";

std::vector<std::int64_t> split_ints(const std::string& line, std::size_t expected) {
    std::vector<std::int64_t> out;
    out.reserve(expected);
    const char* p = line.data();
    const char* end = line.data() + line.size();
    while (p < end) {
        std::int64_t v = 0;
        const auto [next, ec] = std::from_chars(p, end, v);
        if (ec != std::errc{}) {
            throw std::runtime_error{"trace_io: malformed numeric field in '" + line + "'"};
        }
        out.push_back(v);
        p = next;
        if (p < end) {
            if (*p != ',') {
                throw std::runtime_error{"trace_io: expected ',' in '" + line + "'"};
            }
            ++p;
        }
    }
    if (out.size() != expected) {
        throw std::runtime_error{"trace_io: expected " + std::to_string(expected) +
                                 " fields, got " + std::to_string(out.size()) + " in '" +
                                 line + "'"};
    }
    return out;
}

void expect_magic(std::istream& in, const char* magic) {
    std::string line;
    if (!std::getline(in, line) || line != magic) {
        throw std::runtime_error{std::string{"trace_io: missing header '"} + magic + "'"};
    }
    // Skip the column-name comment line.
    if (!std::getline(in, line)) {
        throw std::runtime_error{"trace_io: truncated file after header"};
    }
}

std::ifstream open_in(const std::string& path) {
    std::ifstream in{path};
    if (!in) throw std::runtime_error{"trace_io: cannot open '" + path + "' for reading"};
    return in;
}

std::ofstream open_out(const std::string& path) {
    std::ofstream out{path};
    if (!out) throw std::runtime_error{"trace_io: cannot open '" + path + "' for writing"};
    return out;
}

}  // namespace

void write_trace(std::ostream& out, const std::vector<ProbeOutcome>& probes) {
    out << kTraceMagic << '\n';
    out << "slot,send_time_ns,packets_sent,packets_lost,max_owd_ns,any_received\n";
    for (const auto& p : probes) {
        out << p.slot << ',' << p.send_time.ns() << ',' << p.packets_sent << ','
            << p.packets_lost << ',' << p.max_owd.ns() << ',' << (p.any_received ? 1 : 0)
            << '\n';
    }
}

void for_each_trace_record(std::istream& in, OutcomeSink& sink) {
    expect_magic(in, kTraceMagic);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        const auto f = split_ints(line, 6);
        ProbeOutcome p;
        p.slot = f[0];
        p.send_time = TimeNs{f[1]};
        p.packets_sent = static_cast<int>(f[2]);
        p.packets_lost = static_cast<int>(f[3]);
        p.max_owd = TimeNs{f[4]};
        p.any_received = f[5] != 0;
        sink.consume(p);
    }
}

void for_each_trace_record_file(const std::string& path, OutcomeSink& sink) {
    auto in = open_in(path);
    for_each_trace_record(in, sink);
}

std::vector<ProbeOutcome> read_trace(std::istream& in) {
    VectorSink<ProbeOutcome> sink;
    for_each_trace_record(in, sink);
    return sink.take();
}

void write_trace_file(const std::string& path, const std::vector<ProbeOutcome>& probes) {
    auto out = open_out(path);
    write_trace(out, probes);
}

std::vector<ProbeOutcome> read_trace_file(const std::string& path) {
    auto in = open_in(path);
    return read_trace(in);
}

void write_design(std::ostream& out, const std::vector<Experiment>& experiments) {
    out << kDesignMagic << '\n';
    out << "start_slot,kind\n";
    for (const auto& e : experiments) {
        out << e.start_slot << ',' << (e.kind == ExperimentKind::extended ? 1 : 0) << '\n';
    }
}

void for_each_design_record(std::istream& in, Sink<Experiment>& sink) {
    expect_magic(in, kDesignMagic);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        const auto f = split_ints(line, 2);
        Experiment e;
        e.start_slot = f[0];
        e.kind = f[1] != 0 ? ExperimentKind::extended : ExperimentKind::basic;
        sink.consume(e);
    }
}

void for_each_design_record_file(const std::string& path, Sink<Experiment>& sink) {
    auto in = open_in(path);
    for_each_design_record(in, sink);
}

std::vector<Experiment> read_design(std::istream& in) {
    VectorSink<Experiment> sink;
    for_each_design_record(in, sink);
    return sink.take();
}

void write_design_file(const std::string& path, const std::vector<Experiment>& experiments) {
    auto out = open_out(path);
    write_design(out, experiments);
}

std::vector<Experiment> read_design_file(const std::string& path) {
    auto in = open_in(path);
    return read_design(in);
}

}  // namespace bb::core
