#include "core/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace bb::core {

std::vector<bool> synth_congestion_series(Rng& rng, SlotIndex total_slots,
                                          double mean_on_slots, double mean_off_slots) {
    if (mean_on_slots < 1.0 || mean_off_slots < 1.0) {
        throw std::invalid_argument{"synthetic series: sojourn means must be >= 1 slot"};
    }
    std::vector<bool> series;
    series.reserve(static_cast<std::size_t>(total_slots));
    // Geometric with mean m: P(len = k) = (1/m)(1 - 1/m)^(k-1), k >= 1.
    const auto draw = [&rng](double mean) {
        const double q = 1.0 / mean;
        const double u = rng.uniform01();
        return std::max<SlotIndex>(
            1, static_cast<SlotIndex>(std::ceil(std::log1p(-u) / std::log1p(-q))));
    };
    bool on = rng.bernoulli(mean_on_slots / (mean_on_slots + mean_off_slots));
    while (static_cast<SlotIndex>(series.size()) < total_slots) {
        const SlotIndex len = draw(on ? mean_on_slots : mean_off_slots);
        for (SlotIndex k = 0; k < len && static_cast<SlotIndex>(series.size()) < total_slots;
             ++k) {
            series.push_back(on);
        }
        on = !on;
    }
    return series;
}

SyntheticSeriesGen::SyntheticSeriesGen(Rng rng, double mean_on_slots, double mean_off_slots)
    : rng_{std::move(rng)}, mean_on_slots_{mean_on_slots}, mean_off_slots_{mean_off_slots},
      on_{false} {
    if (mean_on_slots_ < 1.0 || mean_off_slots_ < 1.0) {
        throw std::invalid_argument{"synthetic series: sojourn means must be >= 1 slot"};
    }
    on_ = rng_.bernoulli(mean_on_slots_ / (mean_on_slots_ + mean_off_slots_));
}

SlotIndex SyntheticSeriesGen::draw_sojourn(double mean) {
    // Geometric with mean m: P(len = k) = (1/m)(1 - 1/m)^(k-1), k >= 1 —
    // the same inversion as the batch generator.
    const double q = 1.0 / mean;
    const double u = rng_.uniform01();
    return std::max<SlotIndex>(
        1, static_cast<SlotIndex>(std::ceil(std::log1p(-u) / std::log1p(-q))));
}

bool SyntheticSeriesGen::next() {
    if (remaining_ == 0) {
        remaining_ = draw_sojourn(on_ ? mean_on_slots_ : mean_off_slots_);
    }
    const bool state = on_;
    if (--remaining_ == 0) on_ = !on_;
    return state;
}

void SeriesTruthAccumulator::consume(bool congested) {
    ++slots_;
    if (congested) {
        ++congested_;
        ++run_;
    } else if (run_ > 0) {
        ++episodes_;
        run_total_ += run_;
        run_ = 0;
    }
}

SeriesTruth SeriesTruthAccumulator::finalize() const {
    SeriesTruth t;
    if (slots_ == 0) return t;
    std::uint64_t episodes = episodes_;
    std::uint64_t run_total = run_total_;
    if (run_ > 0) {  // close the run still open at the end of the series
        ++episodes;
        run_total += run_;
    }
    t.frequency = static_cast<double>(congested_) / static_cast<double>(slots_);
    t.episodes = static_cast<std::size_t>(episodes);
    t.mean_duration_slots =
        episodes > 0 ? static_cast<double>(run_total) / static_cast<double>(episodes) : 0.0;
    return t;
}

SeriesTruth series_truth(const std::vector<bool>& series) {
    SeriesTruth t;
    if (series.empty()) return t;
    std::size_t congested = 0;
    std::size_t episodes = 0;
    std::size_t run = 0;
    std::size_t run_total = 0;
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (series[i]) {
            ++congested;
            ++run;
        }
        const bool ends_run = run > 0 && (!series[i] || i + 1 == series.size());
        if (ends_run) {
            ++episodes;
            run_total += run;
            run = 0;
        }
    }
    t.frequency = static_cast<double>(congested) / static_cast<double>(series.size());
    t.episodes = episodes;
    t.mean_duration_slots =
        episodes > 0 ? static_cast<double>(run_total) / static_cast<double>(episodes) : 0.0;
    return t;
}

std::vector<ExperimentResult> observe_with_fidelity(const std::vector<Experiment>& experiments,
                                                    const std::vector<bool>& truth,
                                                    const FidelityModel& fidelity, Rng& rng) {
    std::vector<ExperimentResult> out;
    out.reserve(experiments.size());
    const auto at = [&truth](SlotIndex i) {
        return i >= 0 && i < static_cast<SlotIndex>(truth.size()) &&
               truth[static_cast<std::size_t>(i)];
    };
    for (const auto& e : experiments) {
        std::uint8_t code = 0;
        int ones = 0;
        const int n = e.probes();
        for (int k = 0; k < n; ++k) {
            const bool c = at(e.start_slot + k);
            code = static_cast<std::uint8_t>((code << 1) | (c ? 1 : 0));
            if (c) ++ones;
        }
        const double keep_prob = ones == 0 ? 1.0 : (ones == 1 ? fidelity.p1 : fidelity.p2);
        if (ones > 0 && !rng.bernoulli(keep_prob)) code = 0;  // failure collapses to 0...0
        out.push_back({e.kind, code});
    }
    return out;
}

}  // namespace bb::core
