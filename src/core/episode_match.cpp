#include "core/episode_match.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace bb::core {

EpisodeMatchReport match_episodes(const std::vector<SlotMark>& marks,
                                  const std::vector<SlotInterval>& truth) {
    EpisodeMatchReport rep;
    rep.true_episodes = truth.size();

    // Index marks by slot (they are produced sorted by probe send time, which
    // is slot order for the BADABING process, but don't rely on it).
    std::vector<SlotMark> sorted = marks;
    std::sort(sorted.begin(), sorted.end(),
              [](const SlotMark& a, const SlotMark& b) { return a.slot < b.slot; });

    const auto first_at_or_after = [&sorted](SlotIndex s) {
        return std::lower_bound(sorted.begin(), sorted.end(), s,
                                [](const SlotMark& m, SlotIndex v) { return m.slot < v; });
    };

    double onset_total = 0.0;
    for (const auto& [lo, hi] : truth) {
        bool probed = false;
        bool detected = false;
        SlotIndex first_congested = -1;
        for (auto it = first_at_or_after(lo); it != sorted.end() && it->slot <= hi; ++it) {
            probed = true;
            if (it->congested) {
                detected = true;
                first_congested = it->slot;
                break;
            }
        }
        if (probed) ++rep.probed_episodes;
        if (detected) {
            ++rep.detected_episodes;
            onset_total += std::abs(static_cast<double>(first_congested - lo));
        }
    }

    const auto inside_truth = [&truth](SlotIndex s) {
        return std::any_of(truth.begin(), truth.end(), [s](const SlotInterval& iv) {
            return s >= iv.first && s <= iv.second;
        });
    };
    for (const auto& m : sorted) {
        if (!m.congested) continue;
        ++rep.marked_slots;
        if (inside_truth(m.slot)) ++rep.marked_slots_in_episodes;
    }

    if (rep.true_episodes > 0) {
        rep.recall = static_cast<double>(rep.detected_episodes) /
                     static_cast<double>(rep.true_episodes);
    }
    if (rep.probed_episodes > 0) {
        rep.probed_recall = static_cast<double>(rep.detected_episodes) /
                            static_cast<double>(rep.probed_episodes);
    }
    if (rep.marked_slots > 0) {
        rep.precision = static_cast<double>(rep.marked_slots_in_episodes) /
                        static_cast<double>(rep.marked_slots);
    }
    if (rep.detected_episodes > 0) {
        rep.mean_onset_error_slots =
            onset_total / static_cast<double>(rep.detected_episodes);
    }
    return rep;
}

}  // namespace bb::core
