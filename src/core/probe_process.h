// The geometric probe process of paper §5.2/§5.3: at each slot, start an
// experiment independently with probability p.  Under the improved design
// each started experiment is, with probability 1/2, an extended (3-probe)
// experiment instead of a basic (2-probe) one.  A weighting knob exposes the
// §5.5 "unequal weighing" modification.
#ifndef BB_CORE_PROBE_PROCESS_H
#define BB_CORE_PROBE_PROCESS_H

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace bb::core {

struct ProbeDesign {
    std::vector<Experiment> experiments;   // ordered by start slot
    std::vector<SlotIndex> probe_slots;    // sorted, unique slots that need a probe
};

struct ProbeProcessConfig {
    double p{0.3};              // experiment start probability per slot
    bool improved{false};       // mix in extended experiments
    double extended_fraction{0.5};  // P(extended | experiment started)
};

// Draw a full design for `total_slots` slots.
[[nodiscard]] ProbeDesign design_probe_process(Rng& rng, SlotIndex total_slots,
                                               const ProbeProcessConfig& cfg);

// Expected probing load: probes per slot (before slot-sharing between
// overlapping experiments, which only reduces it).
[[nodiscard]] double expected_probe_slot_fraction(const ProbeProcessConfig& cfg) noexcept;

// Turn a design plus a per-slot congestion marking into experiment reports.
// `congested(slot)` must return the mark for every slot in probe_slots.
template <typename MarkFn>
[[nodiscard]] std::vector<ExperimentResult> score_experiments(
    const std::vector<Experiment>& experiments, MarkFn&& congested) {
    std::vector<ExperimentResult> out;
    out.reserve(experiments.size());
    for (const auto& e : experiments) {
        if (e.kind == ExperimentKind::basic) {
            out.push_back({ExperimentKind::basic,
                           basic_code(congested(e.start_slot), congested(e.start_slot + 1))});
        } else {
            out.push_back({ExperimentKind::extended,
                           extended_code(congested(e.start_slot), congested(e.start_slot + 1),
                                         congested(e.start_slot + 2))});
        }
    }
    return out;
}

}  // namespace bb::core

#endif  // BB_CORE_PROBE_PROCESS_H
