// The geometric probe process of paper §5.2/§5.3: at each slot, start an
// experiment independently with probability p.  Under the improved design
// each started experiment is, with probability 1/2, an extended (3-probe)
// experiment instead of a basic (2-probe) one.  A weighting knob exposes the
// §5.5 "unequal weighing" modification.
#ifndef BB_CORE_PROBE_PROCESS_H
#define BB_CORE_PROBE_PROCESS_H

#include <array>
#include <cstdint>
#include <vector>

#include "core/report_sink.h"
#include "core/types.h"
#include "util/rng.h"

namespace bb::core {

struct ProbeDesign {
    std::vector<Experiment> experiments;   // ordered by start slot
    std::vector<SlotIndex> probe_slots;    // sorted, unique slots that need a probe
};

struct ProbeProcessConfig {
    double p{0.3};              // experiment start probability per slot
    bool improved{false};       // mix in extended experiments
    double extended_fraction{0.5};  // P(extended | experiment started)
};

// Draw a full design for `total_slots` slots.
[[nodiscard]] ProbeDesign design_probe_process(Rng& rng, SlotIndex total_slots,
                                               const ProbeProcessConfig& cfg);

// Geometric skip-ahead sampler for the per-slot Bernoulli(p) start process:
// instead of one uniform draw per slot, draws the gap to the next experiment
// start directly via inversion — G = floor(log(1-U) / log(1-p)) failures
// before the next success, so the cost is one draw per *experiment*, not per
// slot (a ~1/p throughput win for the sparse probing rates the paper uses,
// p ≤ 0.3).  The sampled start process is distributionally identical to the
// per-slot designer (property-tested), but consumes the RNG differently, so
// it is NOT draw-for-draw reproducible against design_probe_process — paper
// artifacts keep using the per-slot path; sweeps and load generators that
// only need the right distribution should prefer this one.
class GeometricSkipAhead {
public:
    explicit GeometricSkipAhead(double p);

    // Number of non-start slots before the next start (>= 0).
    [[nodiscard]] SlotIndex next_gap(Rng& rng) const;

private:
    double p_;
    double inv_log_q_;  // 1 / log(1-p); 0 when p == 1
};

// Skip-ahead counterpart of design_probe_process: same configuration, same
// "keep every experiment fully inside the window" rule, same output
// invariants (experiments ordered by start slot, probe_slots sorted unique),
// identical distribution of starts/kinds — but O(experiments) RNG draws
// instead of O(slots).
[[nodiscard]] ProbeDesign design_probe_process_skip_ahead(Rng& rng, SlotIndex total_slots,
                                                          const ProbeProcessConfig& cfg);

// Expected probing load: probes per slot (before slot-sharing between
// overlapping experiments, which only reduces it).
[[nodiscard]] double expected_probe_slot_fraction(const ProbeProcessConfig& cfg) noexcept;

// Turn a design plus a per-slot congestion marking into experiment reports,
// streamed into `sink` in start-slot order.  `congested(slot)` must return
// the mark for every slot in probe_slots.
template <typename MarkFn>
void score_experiments_into(const std::vector<Experiment>& experiments, MarkFn&& congested,
                            ReportSink& sink) {
    for (const auto& e : experiments) {
        if (e.kind == ExperimentKind::basic) {
            sink.consume({ExperimentKind::basic,
                          basic_code(congested(e.start_slot), congested(e.start_slot + 1))});
        } else {
            sink.consume({ExperimentKind::extended,
                          extended_code(congested(e.start_slot), congested(e.start_slot + 1),
                                        congested(e.start_slot + 2))});
        }
    }
}

// Batch wrapper around the streaming scorer.
template <typename MarkFn>
[[nodiscard]] std::vector<ExperimentResult> score_experiments(
    const std::vector<Experiment>& experiments, MarkFn&& congested) {
    VectorSink<ExperimentResult> sink;
    sink.reserve(experiments.size());
    score_experiments_into(experiments, congested, sink);
    return sink.take();
}

// Fully streaming design + scoring: makes the per-slot Bernoulli(p) decision
// online and emits each experiment's report into `sink` as soon as its last
// slot's congestion state is known, so no design or report vector is ever
// materialized — memory is O(1) regardless of run length.
//
// Feeding step(congested) once per slot, in slot order, with the Rng the
// batch path would hand to design_probe_process, produces a report stream
// bit-identical to design_probe_process + score_experiments: the RNG draw
// order per slot is the same, and experiments still pending when the caller
// stops stepping are discarded exactly like the batch designer's "keep every
// experiment fully inside the window" rule.
class StreamingExperimentScorer {
public:
    StreamingExperimentScorer(Rng rng, const ProbeProcessConfig& cfg, ReportSink& sink);

    // Consume the congestion state of slot `slots_seen()` (states must arrive
    // in slot order, one call per slot).
    void step(bool congested);

    [[nodiscard]] SlotIndex slots_seen() const noexcept { return slot_; }
    [[nodiscard]] std::uint64_t experiments_started() const noexcept { return started_; }
    [[nodiscard]] std::uint64_t experiments_completed() const noexcept { return completed_; }
    // Experiments started but still awaiting slots (dropped if never fed).
    [[nodiscard]] int experiments_pending() const noexcept { return pending_count_; }

private:
    struct Pending {
        SlotIndex start{0};
        ExperimentKind kind{ExperimentKind::basic};
        std::uint8_t code{0};
        int digits{0};
    };

    Rng rng_;
    ProbeProcessConfig cfg_;
    ReportSink* sink_;
    SlotIndex slot_{0};
    std::uint64_t started_{0};
    std::uint64_t completed_{0};
    // Experiments span at most 3 slots, so at most 3 can be pending at once
    // (starts at slots s-2, s-1, s); kept sorted by start slot.
    std::array<Pending, 3> pending_{};
    int pending_count_{0};
};

}  // namespace bb::core

#endif  // BB_CORE_PROBE_PROCESS_H
