#include "core/bootstrap.h"

#include <algorithm>

#include "util/contract.h"
#include "util/stats.h"

namespace bb::core {

namespace {

BootstrapInterval make_interval(double point, std::vector<double>& samples,
                                double confidence) {
    BootstrapInterval iv;
    iv.point = point;
    iv.replicates_used = samples.size();
    if (samples.size() < 10) return iv;  // too few valid replicates
    RunningStats stats;
    for (double v : samples) stats.add(v);
    iv.std_error = stats.stddev();
    const double tail = (1.0 - confidence) / 2.0;
    iv.lo = quantile(samples, tail);
    iv.hi = quantile(std::move(samples), 1.0 - tail);
    iv.valid = true;
    return iv;
}

}  // namespace

BootstrapInterval bootstrap_mean(const std::vector<double>& values, std::size_t replicates,
                                 double confidence, Rng& rng) {
    BB_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                 "bootstrap: confidence must be in (0, 1)");
    BootstrapInterval iv;
    if (values.empty()) return iv;

    RunningStats original;
    for (double v : values) original.add(v);

    const auto n = static_cast<std::int64_t>(values.size());
    std::vector<double> samples;
    samples.reserve(replicates);
    for (std::size_t b = 0; b < replicates; ++b) {
        RunningStats replicate;
        for (std::int64_t k = 0; k < n; ++k) {
            replicate.add(values[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
        }
        samples.push_back(replicate.mean());
    }
    return make_interval(original.mean(), samples, confidence);
}

BootstrapResult bootstrap_estimates(const std::vector<ExperimentResult>& results,
                                    const BootstrapConfig& cfg, Rng& rng) {
    BootstrapResult out;
    if (results.empty()) return out;

    StateCounts original;
    for (const auto& r : results) original.add(r);
    const double point_f = estimate_frequency(original, cfg.estimator).value;
    const auto point_d = estimate_duration_basic(original, cfg.estimator);

    std::vector<double> freq_samples;
    std::vector<double> dur_samples;
    freq_samples.reserve(cfg.replicates);
    dur_samples.reserve(cfg.replicates);

    const auto n = static_cast<std::int64_t>(results.size());
    for (std::size_t b = 0; b < cfg.replicates; ++b) {
        StateCounts counts;
        for (std::int64_t k = 0; k < n; ++k) {
            counts.add(results[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
        }
        const auto f = estimate_frequency(counts, cfg.estimator);
        if (f.valid()) freq_samples.push_back(f.value);
        const auto d = estimate_duration_basic(counts, cfg.estimator);
        if (d.valid) dur_samples.push_back(d.slots);
    }

    out.frequency = make_interval(point_f, freq_samples, cfg.confidence);
    out.duration_slots =
        make_interval(point_d.valid ? point_d.slots : 0.0, dur_samples, cfg.confidence);
    return out;
}

}  // namespace bb::core
