// Time-resolved estimates: split the experiment stream into fixed windows of
// slots and estimate per window.  The paper's guidance (§7) assumes the
// loss-event rate L is stationary over the measurement; windowed estimates
// make that assumption checkable (cf. the "constancy" analysis of Zhang et
// al. that the paper builds on), and a simple two-halves comparison flags
// gross non-stationarity.
#ifndef BB_CORE_WINDOWED_H
#define BB_CORE_WINDOWED_H

#include <cstdint>
#include <vector>

#include "core/estimators.h"
#include "core/types.h"

namespace bb::core {

struct WindowEstimate {
    SlotIndex window_start{0};
    SlotIndex window_slots{0};
    FrequencyEstimate frequency;
    DurationEstimate duration;
    std::uint64_t experiments{0};
};

// `experiments` and `results` must be parallel arrays ordered by start slot
// (the natural output order of the probe process and score_experiments).
[[nodiscard]] std::vector<WindowEstimate> windowed_estimates(
    const std::vector<Experiment>& experiments, const std::vector<ExperimentResult>& results,
    SlotIndex window_slots, const EstimatorOptions& opts = {});

struct StationarityReport {
    double first_half_frequency{0.0};
    double second_half_frequency{0.0};
    // |F1 - F2| / max(F1, F2); 0 when either half saw nothing.
    double frequency_shift{0.0};
    bool looks_stationary{true};  // shift below the tolerance
};

[[nodiscard]] StationarityReport check_stationarity(
    const std::vector<Experiment>& experiments, const std::vector<ExperimentResult>& results,
    SlotIndex total_slots, double tolerance = 0.5, const EstimatorOptions& opts = {});

}  // namespace bb::core

#endif  // BB_CORE_WINDOWED_H
