// Episode-level evaluation of congestion marking: beyond the paper's
// aggregate frequency/duration comparison, match the marked slots against
// the true episode intervals and report detection recall, marking precision
// and onset accuracy.  Useful for diagnosing tau/alpha choices (§6.1/§7).
#ifndef BB_CORE_EPISODE_MATCH_H
#define BB_CORE_EPISODE_MATCH_H

#include <cstdint>
#include <utility>
#include <vector>

#include "core/marking.h"
#include "core/types.h"

namespace bb::core {

// Inclusive [first_slot, last_slot] interval of a true episode.
using SlotInterval = std::pair<SlotIndex, SlotIndex>;

struct EpisodeMatchReport {
    std::size_t true_episodes{0};
    std::size_t detected_episodes{0};  // true episodes with >= 1 congested mark
    std::size_t probed_episodes{0};    // true episodes overlapping >= 1 probed slot
    double recall{0.0};                // detected / true
    double probed_recall{0.0};         // detected / probed (tool quality given coverage)
    std::size_t marked_slots{0};
    std::size_t marked_slots_in_episodes{0};
    double precision{0.0};             // in-episode marked slots / marked slots
    // Mean |first congested mark - episode start| over detected episodes.
    double mean_onset_error_slots{0.0};
};

[[nodiscard]] EpisodeMatchReport match_episodes(const std::vector<SlotMark>& marks,
                                                const std::vector<SlotInterval>& truth);

}  // namespace bb::core

#endif  // BB_CORE_EPISODE_MATCH_H
