// The paper's loss-characteristic estimators (§5.2.2 basic, §5.3 improved).
//
// Frequency:  F̂ = Σ z_i / M, where z_i is the first digit of y_i.
// Duration (basic, assumes r = p2/p1 = 1):
//     D̂ = 2 (R/S − 1) + 1   slots, with
//     R = #{y ∈ {01,10,11}},  S = #{y ∈ {01,10}}.
// Duration (improved): r̂ = U/V from extended experiments,
//     U = #{011,110},  V = #{001,100},
//     D̂ = (2 V / U)(R/S − 1) + 1.
#ifndef BB_CORE_ESTIMATORS_H
#define BB_CORE_ESTIMATORS_H

#include <cstdint>
#include <optional>

#include "core/report_sink.h"
#include "core/types.h"
#include "util/time.h"

namespace bb::core {

struct EstimatorOptions {
    // Count the leading digit of extended experiments toward F̂ as well
    // (harmless and unbiased; the extended reports see the same marginal).
    bool frequency_from_extended{true};
    // §5.5 modification: also fold the first two digits of each extended
    // experiment into the R/S tallies used for duration.
    bool pairs_from_extended{false};
};

struct FrequencyEstimate {
    double value{0.0};       // fraction of congested slots
    std::uint64_t samples{0};

    [[nodiscard]] bool valid() const noexcept { return samples > 0; }
};

struct DurationEstimate {
    double slots{0.0};       // mean episode duration in slots
    std::uint64_t R{0};
    std::uint64_t S{0};
    std::optional<double> r_hat;  // improved algorithm only
    bool valid{false};       // false when S == 0 (or U == 0 for improved)

    [[nodiscard]] double seconds(TimeNs slot_width) const noexcept {
        return slots * slot_width.to_seconds();
    }
};

[[nodiscard]] FrequencyEstimate estimate_frequency(const StateCounts& counts,
                                                   const EstimatorOptions& opts = {});

[[nodiscard]] DurationEstimate estimate_duration_basic(const StateCounts& counts,
                                                       const EstimatorOptions& opts = {});

[[nodiscard]] DurationEstimate estimate_duration_improved(const StateCounts& counts,
                                                          const EstimatorOptions& opts = {});

// §7: expected standard deviation of the duration estimate,
// StdDev(duration) ≈ 1 / sqrt(p * N * L) with L = loss events per slot.
[[nodiscard]] double duration_stddev_guidance(double p, std::int64_t total_slots,
                                              double episodes_per_slot) noexcept;

// Streaming accumulator: feed experiment reports as they complete, snapshot
// estimates at any time.  Supports the open-ended/adaptive experimentation
// style of §5.1 and §7.  As a ReportSink it plugs directly into the
// streaming pipeline (probe layer, StreamingExperimentScorer).
class EstimatorAccumulator final : public ReportSink {
public:
    explicit EstimatorAccumulator(EstimatorOptions opts = {}) : opts_{opts} {}

    void add(const ExperimentResult& r) noexcept { counts_.add(r); }
    void consume(const ExperimentResult& r) override { add(r); }

    [[nodiscard]] const StateCounts& counts() const noexcept { return counts_; }
    [[nodiscard]] FrequencyEstimate frequency() const {
        return estimate_frequency(counts_, opts_);
    }
    [[nodiscard]] DurationEstimate duration_basic() const {
        return estimate_duration_basic(counts_, opts_);
    }
    [[nodiscard]] DurationEstimate duration_improved() const {
        return estimate_duration_improved(counts_, opts_);
    }

private:
    EstimatorOptions opts_;
    StateCounts counts_;
};

}  // namespace bb::core

#endif  // BB_CORE_ESTIMATORS_H
