// One-way-delay statistics from probe outcomes.
//
// BADABING's congestion marking is built on one-way delays (§6.1); the same
// records support path delay characterization: base (propagation) delay,
// queueing-delay quantiles, and the delay level conditioned on loss — the
// quantity the OWD_max tracker estimates.
#ifndef BB_CORE_DELAY_STATS_H
#define BB_CORE_DELAY_STATS_H

#include <vector>

#include "core/types.h"
#include "util/time.h"

namespace bb::core {

struct DelaySummary {
    TimeNs base_delay{TimeNs::zero()};  // minimum observed OWD
    double mean_queueing_s{0.0};
    double p50_queueing_s{0.0};
    double p95_queueing_s{0.0};
    double p99_queueing_s{0.0};
    double max_queueing_s{0.0};
    // Mean queueing delay of probes that lost at least one packet (empty
    // path -> 0); this is what the OWD_max estimator converges to.
    double loss_conditional_queueing_s{0.0};
    std::size_t samples{0};
    std::size_t lossy_samples{0};

    [[nodiscard]] bool valid() const noexcept { return samples > 0; }
};

[[nodiscard]] DelaySummary summarize_delays(const std::vector<ProbeOutcome>& probes);

}  // namespace bb::core

#endif  // BB_CORE_DELAY_STATS_H
