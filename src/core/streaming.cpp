#include "core/streaming.h"

#include "obs/metrics.h"

namespace bb::core {

void OnlineFrequency::consume(const ExperimentResult& r) {
    if (r.kind == ExperimentKind::basic) {
        ++samples_;
        if ((r.code & 0b10) != 0) ++ones_;
    } else if (opts_.frequency_from_extended) {
        ++samples_;
        if ((r.code & 0b100) != 0) ++ones_;
    }
}

FrequencyEstimate OnlineFrequency::finalize() const {
    FrequencyEstimate est;
    est.samples = samples_;
    est.value = samples_ > 0
                    ? static_cast<double>(ones_) / static_cast<double>(samples_)
                    : 0.0;
    return est;
}

void OnlineDuration::consume(const ExperimentResult& r) {
    if (r.kind == ExperimentKind::basic) {
        const std::uint8_t code = r.code & 0x3;
        if (code != 0b00) ++R_;
        if (code == 0b01 || code == 0b10) ++S_;
        return;
    }
    const std::uint8_t code = r.code & 0x7;
    if (code == 0b011 || code == 0b110) ++U_;
    if (code == 0b001 || code == 0b100) ++V_;
    if (opts_.pairs_from_extended) {
        const bool d0 = (code & 0b100) != 0;
        const bool d1 = (code & 0b010) != 0;
        if (d0 || d1) ++R_;
        if (d0 != d1) ++S_;
    }
}

DurationEstimate OnlineDuration::finalize_basic() const {
    DurationEstimate est;
    est.R = R_;
    est.S = S_;
    if (S_ == 0) return est;
    est.slots = 2.0 * (static_cast<double>(R_) / static_cast<double>(S_) - 1.0) + 1.0;
    est.valid = true;
    return est;
}

DurationEstimate OnlineDuration::finalize_improved() const {
    DurationEstimate est;
    est.R = R_;
    est.S = S_;
    if (S_ == 0 || U_ == 0) return est;
    est.r_hat = static_cast<double>(U_) / static_cast<double>(V_ == 0 ? 1 : V_);
    est.slots = (2.0 * static_cast<double>(V_ == 0 ? 1 : V_) / static_cast<double>(U_)) *
                    (static_cast<double>(R_) / static_cast<double>(S_) - 1.0) +
                1.0;
    est.valid = true;
    return est;
}

StreamingAnalyzer::StreamingAnalyzer(EstimatorOptions opts)
    : frequency_{opts},
      duration_{opts},
      reports_ctr_{&obs::counter("core.reports_scored")} {}

StreamingAnalyzer::~StreamingAnalyzer() {
    // Per-state tallies are batched here (not per consume) so the streaming
    // hot loop stays within the instrumentation overhead budget.
    const StateCounts& c = validation_.counts();
    if (c.basic_total() > 0) {
        static const char* const kBasicNames[4] = {
            "core.reports.b00", "core.reports.b01", "core.reports.b10",
            "core.reports.b11"};
        for (int i = 0; i < 4; ++i) {
            if (c.basic[i] > 0) obs::counter(kBasicNames[i]).inc(c.basic[i]);
        }
    }
    if (c.extended_total() > 0) {
        obs::counter("core.reports.extended").inc(c.extended_total());
    }
}

void StreamingAnalyzer::consume(const ExperimentResult& r) {
    frequency_.consume(r);
    duration_.consume(r);
    validation_.consume(r);
    ++reports_;
    reports_ctr_->inc();
}

StreamingAnalyzer::Result StreamingAnalyzer::finalize() const {
    Result res;
    res.frequency = frequency_.finalize();
    res.duration_basic = duration_.finalize_basic();
    res.duration_improved = duration_.finalize_improved();
    res.validation = validation_.finalize();
    res.reports = reports_;
    return res;
}

}  // namespace bb::core
