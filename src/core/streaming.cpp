#include "core/streaming.h"

#include "obs/metrics.h"
#include "util/contract.h"

namespace bb::core {

void OnlineFrequency::consume(const ExperimentResult& r) {
    if (r.kind == ExperimentKind::basic) {
        ++samples_;
        if ((r.code & 0b10) != 0) ++ones_;
    } else if (opts_.frequency_from_extended) {
        ++samples_;
        if ((r.code & 0b100) != 0) ++ones_;
    }
}

FrequencyEstimate OnlineFrequency::finalize() const {
    FrequencyEstimate est;
    BB_CHECK_MSG(ones_ <= samples_, "streaming: congested tally exceeds sample count");
    est.samples = samples_;
    est.value = samples_ > 0
                    ? static_cast<double>(ones_) / static_cast<double>(samples_)
                    : 0.0;
    return est;
}

void OnlineDuration::consume(const ExperimentResult& r) {
    if (r.kind == ExperimentKind::basic) {
        const std::uint8_t code = r.code & 0x3;
        if (code != 0b00) ++R_;
        if (code == 0b01 || code == 0b10) ++S_;
        return;
    }
    const std::uint8_t code = r.code & 0x7;
    if (code == 0b011 || code == 0b110) ++U_;
    if (code == 0b001 || code == 0b100) ++V_;
    if (opts_.pairs_from_extended) {
        const bool d0 = (code & 0b100) != 0;
        const bool d1 = (code & 0b010) != 0;
        if (d0 || d1) ++R_;
        if (d0 != d1) ++S_;
    }
}

DurationEstimate OnlineDuration::finalize_basic() const {
    DurationEstimate est;
    BB_CHECK_MSG(R_ >= S_, "streaming: R/S tallies inconsistent (S ⊄ R)");
    est.R = R_;
    est.S = S_;
    if (S_ == 0) return est;
    est.slots = 2.0 * (static_cast<double>(R_) / static_cast<double>(S_) - 1.0) + 1.0;
    est.valid = true;
    return est;
}

DurationEstimate OnlineDuration::finalize_improved() const {
    DurationEstimate est;
    BB_CHECK_MSG(R_ >= S_, "streaming: R/S tallies inconsistent (S ⊄ R)");
    est.R = R_;
    est.S = S_;
    if (S_ == 0 || U_ == 0) return est;
    est.r_hat = static_cast<double>(U_) / static_cast<double>(V_ == 0 ? 1 : V_);
    est.slots = (2.0 * static_cast<double>(V_ == 0 ? 1 : V_) / static_cast<double>(U_)) *
                    (static_cast<double>(R_) / static_cast<double>(S_) - 1.0) +
                1.0;
    est.valid = true;
    return est;
}

StreamingAnalyzer::StreamingAnalyzer(EstimatorOptions opts)
    : opts_{opts},
      frequency_{opts},
      duration_{opts},
      reports_ctr_{&obs::counter("core.reports_scored")} {}

StreamingAnalyzer::~StreamingAnalyzer() {
    // Per-state tallies are batched here (not per consume) so the streaming
    // hot loop stays within the instrumentation overhead budget.
    const StateCounts& c = validation_.counts();
    if (c.basic_total() > 0) {
        static const char* const kBasicNames[4] = {
            "core.reports.b00", "core.reports.b01", "core.reports.b10",
            "core.reports.b11"};
        for (int i = 0; i < 4; ++i) {
            if (c.basic[i] > 0) obs::counter(kBasicNames[i]).inc(c.basic[i]);
        }
    }
    if (c.extended_total() > 0) {
        obs::counter("core.reports.extended").inc(c.extended_total());
    }
}

void StreamingAnalyzer::consume(const ExperimentResult& r) {
    frequency_.consume(r);
    duration_.consume(r);
    validation_.consume(r);
    ++reports_;
    reports_ctr_->inc();
}

StreamingAnalyzer::Result StreamingAnalyzer::finalize() const {
    Result res;
    res.frequency = frequency_.finalize();
    res.duration_basic = duration_.finalize_basic();
    res.duration_improved = duration_.finalize_improved();
    res.validation = validation_.finalize();
    res.reports = reports_;
    const StateCounts& c = validation_.counts();
    BB_DCHECK_MSG(c.basic_total() + c.extended_total() == reports_,
                  "streaming: per-state tallies do not sum to the report count");
    BB_AUDIT(check_against_batch(res));
    return res;
}

void StreamingAnalyzer::check_against_batch(const Result& res) const {
    const StateCounts& c = validation_.counts();
    const FrequencyEstimate bf = estimate_frequency(c, opts_);
    BB_CHECK_MSG(bf.samples == res.frequency.samples,
                 "streaming audit: frequency sample count diverged from batch");
    BB_CHECK_MSG(bf.value == res.frequency.value,
                 "streaming audit: F̂ diverged from batch (bit-identity broken)");
    const DurationEstimate basic = estimate_duration_basic(c, opts_);
    BB_CHECK_MSG(basic.R == res.duration_basic.R && basic.S == res.duration_basic.S,
                 "streaming audit: R/S tallies diverged from batch");
    BB_CHECK_MSG(basic.valid == res.duration_basic.valid &&
                     basic.slots == res.duration_basic.slots,
                 "streaming audit: basic D̂ diverged from batch (bit-identity broken)");
    const DurationEstimate improved = estimate_duration_improved(c, opts_);
    BB_CHECK_MSG(improved.valid == res.duration_improved.valid &&
                     improved.slots == res.duration_improved.slots &&
                     improved.r_hat == res.duration_improved.r_hat,
                 "streaming audit: improved D̂ diverged from batch (bit-identity broken)");
}

}  // namespace bb::core
