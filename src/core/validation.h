// Validation tests for the probe-process assumptions (paper §5.4) and the
// adaptive stopping rule sketched in §5.1/§7.
//
// Basic design:    P(y = 01) should equal P(y = 10); a persistent imbalance
//                  invalidates the estimates.
// Improved design: the rates of {01, 10, 001, 100} should agree; the rates
//                  of {011, 110} should agree; every 010 or 101 report is a
//                  violation of the fidelity model (failures must report 00).
#ifndef BB_CORE_VALIDATION_H
#define BB_CORE_VALIDATION_H

#include <cstdint>

#include "core/types.h"

namespace bb::core {

struct ValidationReport {
    // |#01 - #10| / (#01 + #10); 0 when no transitions were seen.
    double pair_asymmetry{0.0};
    std::uint64_t transitions{0};  // #01 + #10

    // Improved design only.
    double single_rate_spread{0.0};  // relative spread among {01,10,001,100} rates
    double ext_pair_asymmetry{0.0};  // |#011 - #110| / (#011 + #110)
    std::uint64_t violations{0};     // #010 + #101
    double violation_fraction{0.0};  // violations / extended experiments

    [[nodiscard]] bool acceptable(double tolerance = 0.25,
                                  double violation_tolerance = 0.05) const noexcept {
        return pair_asymmetry <= tolerance && ext_pair_asymmetry <= tolerance &&
               violation_fraction <= violation_tolerance;
    }
};

[[nodiscard]] ValidationReport validate(const StateCounts& counts);

// Open-ended stopping rule: stop once enough transitions have been observed
// and the symmetry checks have converged below the tolerance; give up (and
// flag invalid) if violations keep accumulating.
class StoppingRule {
public:
    struct Config {
        std::uint64_t min_transitions{50};
        double tolerance{0.2};
        double violation_tolerance{0.05};
    };

    explicit StoppingRule(Config cfg) : cfg_{cfg} {}
    StoppingRule() : StoppingRule(Config{}) {}

    enum class Decision { keep_going, stop_valid, stop_invalid };

    [[nodiscard]] Decision evaluate(const StateCounts& counts) const;

private:
    Config cfg_;
};

}  // namespace bb::core

#endif  // BB_CORE_VALIDATION_H
