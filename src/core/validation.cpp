#include "core/validation.h"

#include <algorithm>
#include <cmath>

#include "util/contract.h"

namespace bb::core {

namespace {
double asymmetry(std::uint64_t a, std::uint64_t b) noexcept {
    const double total = static_cast<double>(a) + static_cast<double>(b);
    if (total <= 0) return 0.0;
    return std::abs(static_cast<double>(a) - static_cast<double>(b)) / total;
}
}  // namespace

ValidationReport validate(const StateCounts& counts) {
    ValidationReport rep;

    const std::uint64_t c01 = counts.basic[0b01];
    const std::uint64_t c10 = counts.basic[0b10];
    rep.transitions = c01 + c10;
    rep.pair_asymmetry = asymmetry(c01, c10);

    const std::uint64_t mb = counts.basic_total();
    const std::uint64_t me = counts.extended_total();
    if (me > 0) {
        // Rates of the four "single congested slot at an edge" states.  For
        // basic experiments the per-experiment rate of 01 (resp. 10) should
        // match the per-experiment rate of 001 (resp. 100) among extended
        // ones, all estimating p1 * B / N.
        const double rates[4] = {
            mb > 0 ? static_cast<double>(c01) / static_cast<double>(mb) : 0.0,
            mb > 0 ? static_cast<double>(c10) / static_cast<double>(mb) : 0.0,
            static_cast<double>(counts.extended[0b001]) / static_cast<double>(me),
            static_cast<double>(counts.extended[0b100]) / static_cast<double>(me),
        };
        const auto [lo, hi] = std::minmax_element(std::begin(rates), std::end(rates));
        const double mean = (rates[0] + rates[1] + rates[2] + rates[3]) / 4.0;
        rep.single_rate_spread = mean > 0 ? (*hi - *lo) / mean : 0.0;

        rep.ext_pair_asymmetry = asymmetry(counts.extended[0b011], counts.extended[0b110]);
        rep.violations = counts.extended[0b010] + counts.extended[0b101];
        rep.violation_fraction =
            static_cast<double>(rep.violations) / static_cast<double>(me);
        BB_CHECK_MSG(rep.violations <= me,
                     "validation: violation tally exceeds extended experiment count");
    }
    BB_DCHECK_MSG(rep.pair_asymmetry >= 0.0 && rep.pair_asymmetry <= 1.0,
                  "validation: #01/#10 asymmetry outside [0, 1]");
    return rep;
}

StoppingRule::Decision StoppingRule::evaluate(const StateCounts& counts) const {
    const ValidationReport rep = validate(counts);
    if (rep.transitions < cfg_.min_transitions) return Decision::keep_going;
    if (rep.violation_fraction > cfg_.violation_tolerance) return Decision::stop_invalid;
    if (rep.pair_asymmetry <= cfg_.tolerance && rep.ext_pair_asymmetry <= cfg_.tolerance) {
        return Decision::stop_valid;
    }
    return Decision::keep_going;
}

}  // namespace bb::core
