// Probe-trace serialization: the receiver side of a real deployment writes
// per-probe records to disk; analysis (marking, estimation, bootstrap) runs
// offline on the files.  The format is a small, versioned CSV so traces are
// greppable and loadable from any toolchain:
//
//   # badabing-trace v1
//   slot,send_time_ns,packets_sent,packets_lost,max_owd_ns,any_received
//   120,600000000,3,0,50230000,1
//   ...
//
// The experiment design is serialized alongside (one experiment per line)
// so a trace is self-contained:
//
//   # badabing-design v1
//   start_slot,kind            # kind: 0 = basic, 1 = extended
#ifndef BB_CORE_TRACE_IO_H
#define BB_CORE_TRACE_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "core/probe_process.h"
#include "core/report_sink.h"
#include "core/types.h"

namespace bb::core {

// --- probe outcomes ---------------------------------------------------------
void write_trace(std::ostream& out, const std::vector<ProbeOutcome>& probes);
[[nodiscard]] std::vector<ProbeOutcome> read_trace(std::istream& in);  // throws on bad input

void write_trace_file(const std::string& path, const std::vector<ProbeOutcome>& probes);
[[nodiscard]] std::vector<ProbeOutcome> read_trace_file(const std::string& path);

// Streaming reader: push each record into `sink` as it is parsed, so a trace
// of any length can be consumed in O(1) memory.  read_trace is this plus a
// VectorSink.  Throws on bad input like read_trace.
void for_each_trace_record(std::istream& in, OutcomeSink& sink);
void for_each_trace_record_file(const std::string& path, OutcomeSink& sink);

// --- experiment designs -----------------------------------------------------
void write_design(std::ostream& out, const std::vector<Experiment>& experiments);
[[nodiscard]] std::vector<Experiment> read_design(std::istream& in);  // throws on bad input

void write_design_file(const std::string& path, const std::vector<Experiment>& experiments);
[[nodiscard]] std::vector<Experiment> read_design_file(const std::string& path);

void for_each_design_record(std::istream& in, Sink<Experiment>& sink);
void for_each_design_record_file(const std::string& path, Sink<Experiment>& sink);

}  // namespace bb::core

#endif  // BB_CORE_TRACE_IO_H
