#include "core/marking.h"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.h"
#include "util/contract.h"

namespace bb::core {

std::vector<SlotMark> CongestionMarker::mark(const std::vector<ProbeOutcome>& probes) {
    std::vector<SlotMark> marks;
    marks.reserve(probes.size());
    if (probes.empty()) return marks;

    BB_DCHECK_MSG(std::is_sorted(probes.begin(), probes.end(),
                                 [](const ProbeOutcome& a, const ProbeOutcome& b) {
                                     return a.send_time < b.send_time;
                                 }),
                  "marking: probe outcomes must arrive in send-time order");

    // Pass 1: base (propagation) delay and OWD_max estimates.
    bool have_base = false;
    TimeNs base{TimeNs::zero()};
    for (const auto& pr : probes) {
        BB_DCHECK_MSG(pr.packets_lost <= pr.packets_sent,
                      "marking: probe reports more losses than packets sent");
        if (!pr.any_received) continue;
        if (!have_base || pr.max_owd < base) {
            base = pr.max_owd;
            have_base = true;
        }
    }
    base_delay_ = base;

    std::deque<TimeNs> owd_max_samples;
    std::vector<TimeNs> loss_times;
    for (const auto& pr : probes) {
        // A CE mark is congestion observed without loss: it seeds the tau
        // window and contributes an OWD_max sample exactly like a loss.
        const bool indicated = pr.any_lost() || (cfg_.use_ce && pr.ce_marked);
        if (!indicated) continue;
        loss_times.push_back(pr.send_time);
        if (pr.any_received) {
            // Queueing component of the delay of the most recent successfully
            // transmitted packet -> estimate of the maximum queue depth.
            owd_max_samples.push_back(pr.max_owd - base);
            if (owd_max_samples.size() > cfg_.owd_max_window) owd_max_samples.pop_front();
        }
    }

    if (owd_max_samples.empty()) {
        owd_max_ = TimeNs::zero();
    } else {
        std::int64_t sum = 0;
        for (auto v : owd_max_samples) sum += v.ns();
        owd_max_ = TimeNs{sum / static_cast<std::int64_t>(owd_max_samples.size())};
    }

    const TimeNs threshold =
        seconds(owd_max_.to_seconds() * (1.0 - cfg_.alpha));

    // Pass 2: apply the rules.
    auto near_loss = [&](TimeNs t) {
        // Any loss indication within tau (either direction)?
        const auto it = std::lower_bound(loss_times.begin(), loss_times.end(), t - cfg_.tau);
        return it != loss_times.end() && *it <= t + cfg_.tau;
    };

    std::uint64_t by_loss = 0;
    std::uint64_t by_ce = 0;
    std::uint64_t by_delay = 0;
    for (const auto& pr : probes) {
        SlotMark m;
        m.slot = pr.slot;
        if (pr.any_lost()) {
            m.congested = true;
            m.by_loss = true;
            ++by_loss;
        } else if (cfg_.use_ce && pr.ce_marked) {
            m.congested = true;
            m.by_ce = true;
            ++by_ce;
        } else if (cfg_.use_delay_rule && owd_max_.ns() > 0 && pr.any_received) {
            const TimeNs qd = pr.max_owd - base;
            if (qd > threshold && near_loss(pr.send_time)) {
                m.congested = true;
                m.by_delay = true;
                ++by_delay;
            }
        }
        marks.push_back(m);
    }

    // Marking-rule decision tallies, flushed once per mark() call.
    static obs::Counter& loss_ctr = obs::counter("core.marking.by_loss");
    static obs::Counter& ce_ctr = obs::counter("core.marking.by_ce");
    static obs::Counter& delay_ctr = obs::counter("core.marking.by_delay");
    static obs::Counter& clear_ctr = obs::counter("core.marking.uncongested");
    if (by_loss > 0) loss_ctr.inc(by_loss);
    if (by_ce > 0) ce_ctr.inc(by_ce);
    if (by_delay > 0) delay_ctr.inc(by_delay);
    const std::uint64_t clear = marks.size() - by_loss - by_ce - by_delay;
    if (clear > 0) clear_ctr.inc(clear);
    return marks;
}

}  // namespace bb::core
