#include "core/delay_stats.h"

#include <algorithm>

#include "util/stats.h"

namespace bb::core {

DelaySummary summarize_delays(const std::vector<ProbeOutcome>& probes) {
    DelaySummary s;
    bool have_base = false;
    TimeNs base{TimeNs::zero()};
    for (const auto& pr : probes) {
        if (!pr.any_received) continue;
        if (!have_base || pr.max_owd < base) {
            base = pr.max_owd;
            have_base = true;
        }
    }
    if (!have_base) return s;
    s.base_delay = base;

    std::vector<double> queueing;
    RunningStats mean_stats;
    RunningStats lossy_stats;
    for (const auto& pr : probes) {
        if (!pr.any_received) continue;
        const double qd = (pr.max_owd - base).to_seconds();
        queueing.push_back(qd);
        mean_stats.add(qd);
        if (pr.any_lost()) {
            lossy_stats.add(qd);
        }
    }
    s.samples = queueing.size();
    s.lossy_samples = lossy_stats.count();
    s.mean_queueing_s = mean_stats.mean();
    s.max_queueing_s = mean_stats.max();
    s.p50_queueing_s = quantile(queueing, 0.50);
    s.p95_queueing_s = quantile(queueing, 0.95);
    s.p99_queueing_s = quantile(std::move(queueing), 0.99);
    s.loss_conditional_queueing_s = lossy_stats.mean();
    return s;
}

}  // namespace bb::core
