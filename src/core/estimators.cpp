#include "core/estimators.h"

#include <cmath>

#include "util/contract.h"

namespace bb::core {

FrequencyEstimate estimate_frequency(const StateCounts& counts, const EstimatorOptions& opts) {
    FrequencyEstimate est;
    std::uint64_t ones = counts.basic[0b10] + counts.basic[0b11];
    std::uint64_t total = counts.basic_total();
    if (opts.frequency_from_extended) {
        for (std::uint8_t code = 0; code < 8; ++code) {
            if ((code & 0b100) != 0) ones += counts.extended[code];
        }
        total += counts.extended_total();
    }
    BB_CHECK_MSG(ones <= total, "estimator: congested-slot tally exceeds experiment count");
    est.samples = total;
    est.value = total > 0 ? static_cast<double>(ones) / static_cast<double>(total) : 0.0;
    return est;
}

namespace {

// R and S tallies, optionally folding the leading pair of each extended
// experiment into them (§5.5).
struct PairCounts {
    std::uint64_t R{0};
    std::uint64_t S{0};
};

PairCounts pair_counts(const StateCounts& counts, const EstimatorOptions& opts) {
    PairCounts pc;
    pc.R = counts.R();
    pc.S = counts.S();
    if (opts.pairs_from_extended) {
        for (std::uint8_t code = 0; code < 8; ++code) {
            const bool d0 = (code & 0b100) != 0;
            const bool d1 = (code & 0b010) != 0;
            if (d0 || d1) pc.R += counts.extended[code];
            if (d0 != d1) pc.S += counts.extended[code];
        }
    }
    // S counts the {01,10} transitions, a subset of R's {01,10,11}; R < S
    // means the tallies were corrupted and D̂ = 2(R/S−1)+1 would come out
    // plausible but wrong — the paper's worst failure mode.
    BB_CHECK_MSG(pc.R >= pc.S, "estimator: R/S tallies inconsistent (S ⊄ R)");
    return pc;
}

}  // namespace

DurationEstimate estimate_duration_basic(const StateCounts& counts,
                                         const EstimatorOptions& opts) {
    DurationEstimate est;
    const PairCounts pc = pair_counts(counts, opts);
    est.R = pc.R;
    est.S = pc.S;
    if (pc.S == 0) return est;  // no transitions observed: undefined (reported 0)
    BB_DCHECK_MSG(pc.S > 0, "estimator: R/S evaluated with S == 0");
    est.slots = 2.0 * (static_cast<double>(pc.R) / static_cast<double>(pc.S) - 1.0) + 1.0;
    est.valid = true;
    return est;
}

DurationEstimate estimate_duration_improved(const StateCounts& counts,
                                            const EstimatorOptions& opts) {
    DurationEstimate est;
    const PairCounts pc = pair_counts(counts, opts);
    est.R = pc.R;
    est.S = pc.S;
    const std::uint64_t U = counts.U();
    const std::uint64_t V = counts.V();
    BB_DCHECK_MSG(U + V <= counts.extended_total(),
                  "estimator: U/V tallies exceed extended experiment count");
    if (pc.S == 0 || U == 0) return est;
    const double r_hat = static_cast<double>(U) / static_cast<double>(V == 0 ? 1 : V);
    est.r_hat = r_hat;
    est.slots = (2.0 * static_cast<double>(V == 0 ? 1 : V) / static_cast<double>(U)) *
                    (static_cast<double>(pc.R) / static_cast<double>(pc.S) - 1.0) +
                1.0;
    est.valid = true;
    return est;
}

double duration_stddev_guidance(double p, std::int64_t total_slots,
                                double episodes_per_slot) noexcept {
    const double denom = p * static_cast<double>(total_slots) * episodes_per_slot;
    return denom > 0 ? 1.0 / std::sqrt(denom) : 0.0;
}

}  // namespace bb::core
