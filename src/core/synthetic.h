// Synthetic congestion processes and the paper's report-fidelity model
// (§5.2.1): given the true state string Y_i of an experiment, the report y_i
// equals Y_i with probability p_k (k = number of congested slots in Y_i) and
// otherwise collapses to all-zeros.  Used to verify the consistency claims of
// §5.2.2/§5.3 independently of any network simulation.
#ifndef BB_CORE_SYNTHETIC_H
#define BB_CORE_SYNTHETIC_H

#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace bb::core {

// Alternating renewal on/off process in discrete slots with geometric
// sojourn times: mean episode length `mean_on_slots`, mean gap
// `mean_off_slots`.  True frequency is on/(on+off); true mean duration is
// `mean_on_slots`.
[[nodiscard]] std::vector<bool> synth_congestion_series(Rng& rng, SlotIndex total_slots,
                                                        double mean_on_slots,
                                                        double mean_off_slots);

// Exact frequency / mean-duration of a slot series (oracle bookkeeping).
struct SeriesTruth {
    double frequency{0.0};
    double mean_duration_slots{0.0};
    std::size_t episodes{0};
};
[[nodiscard]] SeriesTruth series_truth(const std::vector<bool>& series);

// Streaming form of synth_congestion_series: draws the same alternating
// geometric sojourns from the same Rng stream, one slot per next() call, in
// O(1) memory.  Constructed from a copy of the Rng the batch function would
// receive, the emitted slot sequence is bit-identical to the batch vector
// (the batch function truncates its final run at total_slots; here the
// caller simply stops calling next()).
class SyntheticSeriesGen {
public:
    SyntheticSeriesGen(Rng rng, double mean_on_slots, double mean_off_slots);

    // State of the next slot in sequence.
    [[nodiscard]] bool next();

private:
    [[nodiscard]] SlotIndex draw_sojourn(double mean);

    Rng rng_;
    double mean_on_slots_;
    double mean_off_slots_;
    bool on_;
    SlotIndex remaining_{0};
};

// Online fold of a slot series into its oracle truth; finalize() is
// bit-identical to series_truth over the same slots.
class SeriesTruthAccumulator {
public:
    void consume(bool congested);
    [[nodiscard]] SeriesTruth finalize() const;
    [[nodiscard]] std::uint64_t slots() const noexcept { return slots_; }

private:
    std::uint64_t slots_{0};
    std::uint64_t congested_{0};
    std::uint64_t episodes_{0};
    std::uint64_t run_{0};
    std::uint64_t run_total_{0};
};

// Apply the fidelity model to a set of experiments against the true series.
struct FidelityModel {
    double p1{1.0};  // P(report correct | one congested slot in Y)
    double p2{1.0};  // P(report correct | two congested slots in Y)
    // Y with three congested slots (111) uses p2 as well; the paper leaves
    // that failure rate unknown and never uses 111 reports in estimation.
};

[[nodiscard]] std::vector<ExperimentResult> observe_with_fidelity(
    const std::vector<Experiment>& experiments, const std::vector<bool>& truth,
    const FidelityModel& fidelity, Rng& rng);

}  // namespace bb::core

#endif  // BB_CORE_SYNTHETIC_H
