// Parametric (Markov-chain) estimator — the "alternative, parametric
// methods for inferring loss characteristics from our probe process" the
// paper lists as future work (§8).
//
// Model: the slot congestion indicator is a stationary two-state Markov
// chain with transition probabilities
//     a = P(congested at i+1 | clear at i),
//     b = P(clear at i+1     | congested at i).
// Then the congested-slot frequency is F = a/(a+b) and episode lengths are
// geometric with mean D = 1/b slots.
//
// Every adjacent slot pair observed by an experiment (one pair per basic
// experiment, two per extended experiment) is a draw of the chain's
// transition, so the maximum-likelihood estimates are
//     a_hat = n01 / (n00 + n01),   b_hat = n10 / (n10 + n11),
// where n_xy counts observed (slot i = x, slot i+1 = y) pairs.  Unlike the
// moment estimator of §5.2.2 this uses all pair information (including the
// interior pairs of extended experiments) and returns frequency and duration
// from the same two parameters; like the basic estimator it assumes faithful
// reports (p1 = p2 = 1), and inherits their bias otherwise.
#ifndef BB_CORE_MARKOV_H
#define BB_CORE_MARKOV_H

#include <cstdint>

#include "core/types.h"
#include "util/time.h"

namespace bb::core {

// Adjacent-pair counts n_xy; the sufficient statistic for the chain.
struct PairTally {
    std::uint64_t n00{0};
    std::uint64_t n01{0};
    std::uint64_t n10{0};
    std::uint64_t n11{0};

    [[nodiscard]] std::uint64_t total() const noexcept { return n00 + n01 + n10 + n11; }

    PairTally& operator+=(const PairTally& rhs) noexcept {
        n00 += rhs.n00;
        n01 += rhs.n01;
        n10 += rhs.n10;
        n11 += rhs.n11;
        return *this;
    }
};

// Extract all adjacent pairs from experiment reports.
[[nodiscard]] PairTally tally_pairs(const ExperimentResult* results, std::size_t count);

template <typename Container>
[[nodiscard]] PairTally tally_pairs(const Container& results) {
    return tally_pairs(results.data(), results.size());
}

struct MarkovEstimate {
    double a{0.0};  // P(0 -> 1)
    double b{0.0};  // P(1 -> 0)
    double frequency{0.0};       // a / (a + b)
    double duration_slots{0.0};  // 1 / b
    bool valid{false};

    [[nodiscard]] double duration_seconds(TimeNs slot_width) const noexcept {
        return duration_slots * slot_width.to_seconds();
    }
};

[[nodiscard]] MarkovEstimate estimate_markov(const PairTally& pairs);

}  // namespace bb::core

#endif  // BB_CORE_MARKOV_H
