#include "core/windowed.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bb::core {

std::vector<WindowEstimate> windowed_estimates(const std::vector<Experiment>& experiments,
                                               const std::vector<ExperimentResult>& results,
                                               SlotIndex window_slots,
                                               const EstimatorOptions& opts) {
    if (experiments.size() != results.size()) {
        throw std::invalid_argument{"windowed_estimates: parallel arrays expected"};
    }
    if (window_slots <= 0) {
        throw std::invalid_argument{"windowed_estimates: window must be positive"};
    }
    std::vector<WindowEstimate> out;
    std::size_t i = 0;
    while (i < experiments.size()) {
        const SlotIndex window_start =
            experiments[i].start_slot / window_slots * window_slots;
        StateCounts counts;
        std::uint64_t n = 0;
        while (i < experiments.size() &&
               experiments[i].start_slot < window_start + window_slots) {
            counts.add(results[i]);
            ++n;
            ++i;
        }
        WindowEstimate w;
        w.window_start = window_start;
        w.window_slots = window_slots;
        w.frequency = estimate_frequency(counts, opts);
        w.duration = estimate_duration_basic(counts, opts);
        w.experiments = n;
        out.push_back(w);
    }
    return out;
}

StationarityReport check_stationarity(const std::vector<Experiment>& experiments,
                                      const std::vector<ExperimentResult>& results,
                                      SlotIndex total_slots, double tolerance,
                                      const EstimatorOptions& opts) {
    if (experiments.size() != results.size()) {
        throw std::invalid_argument{"check_stationarity: parallel arrays expected"};
    }
    StateCounts first;
    StateCounts second;
    const SlotIndex half = total_slots / 2;
    for (std::size_t i = 0; i < experiments.size(); ++i) {
        if (experiments[i].start_slot < half) {
            first.add(results[i]);
        } else {
            second.add(results[i]);
        }
    }
    StationarityReport rep;
    rep.first_half_frequency = estimate_frequency(first, opts).value;
    rep.second_half_frequency = estimate_frequency(second, opts).value;
    const double hi = std::max(rep.first_half_frequency, rep.second_half_frequency);
    if (hi > 0.0) {
        rep.frequency_shift =
            std::abs(rep.first_half_frequency - rep.second_half_frequency) / hi;
    }
    rep.looks_stationary = rep.frequency_shift <= tolerance;
    return rep;
}

}  // namespace bb::core
