// Streaming delivery of measurement records (the observer shape of the
// pipeline): producers push experiment reports / probe outcomes into a
// Sink<T> as they complete instead of materializing per-run vectors, so a
// receiver can run for an unbounded number of slots in constant memory.
// The §5 estimators are pure functions of O(1) tallies, which makes every
// downstream consumer (core/streaming.h) expressible as a sink.
#ifndef BB_CORE_REPORT_SINK_H
#define BB_CORE_REPORT_SINK_H

#include <utility>
#include <vector>

#include "core/types.h"

namespace bb::core {

template <typename T>
class Sink {
public:
    virtual ~Sink() = default;
    virtual void consume(const T& value) = 0;
};

// The two record streams the measurement pipeline produces: scored
// experiment reports (estimator input) and raw per-probe outcomes.
using ReportSink = Sink<ExperimentResult>;
using OutcomeSink = Sink<ProbeOutcome>;

// Thin adapter that materializes a stream back into a vector, for callers
// (and tests) that still want the batch shape.
template <typename T>
class VectorSink final : public Sink<T> {
public:
    void consume(const T& value) override { items_.push_back(value); }

    void reserve(std::size_t n) { items_.reserve(n); }
    [[nodiscard]] const std::vector<T>& items() const noexcept { return items_; }
    [[nodiscard]] std::vector<T> take() noexcept { return std::move(items_); }

private:
    std::vector<T> items_;
};

// Fan one stream out to several consumers (e.g. tallies + a trace writer).
// Does not own the sinks; they must outlive the tee.
template <typename T>
class TeeSink final : public Sink<T> {
public:
    TeeSink() = default;
    explicit TeeSink(std::vector<Sink<T>*> sinks) : sinks_{std::move(sinks)} {}

    void add(Sink<T>& sink) { sinks_.push_back(&sink); }

    void consume(const T& value) override {
        for (Sink<T>* s : sinks_) s->consume(value);
    }

private:
    std::vector<Sink<T>*> sinks_;
};

// Wrap a callable as a sink (adapter for lambdas at pipeline edges).
template <typename T, typename Fn>
class FnSink final : public Sink<T> {
public:
    explicit FnSink(Fn fn) : fn_{std::move(fn)} {}
    void consume(const T& value) override { fn_(value); }

private:
    Fn fn_;
};

template <typename T, typename Fn>
[[nodiscard]] FnSink<T, Fn> make_fn_sink(Fn fn) {
    return FnSink<T, Fn>{std::move(fn)};
}

// O(1) report tally: StateCounts is the sufficient statistic for all of the
// §5.2/§5.3 estimators and the §5.4 validation tests.
class CountsSink final : public ReportSink {
public:
    void consume(const ExperimentResult& r) override { counts_.add(r); }

    [[nodiscard]] const StateCounts& counts() const noexcept { return counts_; }
    [[nodiscard]] std::uint64_t reports() const noexcept {
        return counts_.basic_total() + counts_.extended_total();
    }

private:
    StateCounts counts_;
};

}  // namespace bb::core

#endif  // BB_CORE_REPORT_SINK_H
