#include "core/markov.h"

namespace bb::core {

PairTally tally_pairs(const ExperimentResult* results, std::size_t count) {
    PairTally tally;
    const auto add_pair = [&tally](bool first, bool second) {
        if (!first && !second) {
            ++tally.n00;
        } else if (!first && second) {
            ++tally.n01;
        } else if (first && !second) {
            ++tally.n10;
        } else {
            ++tally.n11;
        }
    };
    for (std::size_t k = 0; k < count; ++k) {
        const ExperimentResult& r = results[k];
        if (r.kind == ExperimentKind::basic) {
            add_pair((r.code & 0b10) != 0, (r.code & 0b01) != 0);
        } else {
            add_pair((r.code & 0b100) != 0, (r.code & 0b010) != 0);
            add_pair((r.code & 0b010) != 0, (r.code & 0b001) != 0);
        }
    }
    return tally;
}

MarkovEstimate estimate_markov(const PairTally& pairs) {
    MarkovEstimate est;
    const std::uint64_t from0 = pairs.n00 + pairs.n01;
    const std::uint64_t from1 = pairs.n10 + pairs.n11;
    if (from0 == 0 || pairs.n01 + pairs.n10 == 0 || pairs.n10 == 0) {
        // No congestion seen, or congestion never observed ending: the chain
        // parameters are unidentifiable.
        return est;
    }
    est.a = static_cast<double>(pairs.n01) / static_cast<double>(from0);
    est.b = static_cast<double>(pairs.n10) / static_cast<double>(from1);
    est.frequency = est.a / (est.a + est.b);
    est.duration_slots = 1.0 / est.b;
    est.valid = true;
    return est;
}

}  // namespace bb::core
