// Congestion marking (paper §6.1).
//
// A probed slot is marked congested when
//   (a) any packet of its probe was lost, or
//   (b) the probe lies within `tau` seconds of a loss indication AND its
//       one-way delay exceeds (1 - alpha) * OWD_max,
// where OWD_max is estimated from the delay of the most recent successfully
// transmitted packet of probes that experienced loss, averaged over a small
// window of such estimates (which "effectively filters loss at end-host
// buffers", §6.1).
//
// The marker works on raw one-way delays: it tracks the minimum delay seen as
// the path's base (propagation) delay and thresholds the *queueing* component,
// which also makes it robust to a constant clock offset between the hosts
// (§7): an offset shifts base and measured delay equally.
#ifndef BB_CORE_MARKING_H
#define BB_CORE_MARKING_H

#include <cstddef>
#include <deque>
#include <vector>

#include "core/types.h"
#include "util/time.h"

namespace bb::core {

struct MarkingConfig {
    TimeNs tau{milliseconds(80)};  // temporal proximity to a loss indication
    double alpha{0.1};             // high-water fraction below OWD_max
    std::size_t owd_max_window{10};  // estimates averaged for OWD_max
    // Disable rule (b) to mark on probe loss only — the naive scheme the
    // paper's Section 6.1 improves upon; kept for ablation.
    bool use_delay_rule{true};
    // Treat a CE-marked probe as a congestion indication, equivalent to a
    // loss: it seeds the tau window and marks its slot.  Inert unless the
    // probes were ECN-capable and an AQM hop actually marked them.
    bool use_ce{true};
};

struct SlotMark {
    SlotIndex slot{0};
    bool congested{false};
    bool by_loss{false};   // marked because the probe itself lost a packet
    bool by_delay{false};  // marked by the tau/alpha delay rule
    bool by_ce{false};     // marked because the probe carried a CE mark
};

class CongestionMarker {
public:
    explicit CongestionMarker(MarkingConfig cfg = {}) : cfg_{cfg} {}

    // Mark a full trace of probe outcomes (must be sorted by send_time).
    // Two passes: the first collects loss indications and OWD_max estimates,
    // the second applies the tau/alpha rule, so probes *before* a loss are
    // also captured (episodes are delimited on both sides, §6.1).
    [[nodiscard]] std::vector<SlotMark> mark(const std::vector<ProbeOutcome>& probes);

    // Estimated maximum queueing delay after the last mark() call.
    [[nodiscard]] TimeNs owd_max_estimate() const noexcept { return owd_max_; }
    [[nodiscard]] TimeNs base_delay() const noexcept { return base_delay_; }

private:
    MarkingConfig cfg_;
    TimeNs owd_max_{TimeNs::zero()};
    TimeNs base_delay_{TimeNs::zero()};
};

}  // namespace bb::core

#endif  // BB_CORE_MARKING_H
