// Bootstrap confidence intervals for the loss estimators — the paper's §8
// future-work item "estimate the variability of the estimates of congestion
// frequency and duration themselves directly from the measured data, under a
// minimal set of statistical assumptions".
//
// Experiments are resampled with replacement (they start at independently
// chosen slots, so an iid bootstrap over experiments is the natural minimal
// assumption), the estimator is recomputed on each replicate, and percentile
// intervals are reported.
#ifndef BB_CORE_BOOTSTRAP_H
#define BB_CORE_BOOTSTRAP_H

#include <cstdint>
#include <vector>

#include "core/estimators.h"
#include "core/types.h"
#include "util/rng.h"

namespace bb::core {

struct BootstrapInterval {
    double point{0.0};   // estimate on the original sample
    double lo{0.0};      // lower percentile bound
    double hi{0.0};      // upper percentile bound
    double std_error{0.0};
    std::size_t replicates_used{0};  // replicates with a valid estimate
    bool valid{false};
};

struct BootstrapResult {
    BootstrapInterval frequency;
    BootstrapInterval duration_slots;  // basic estimator
};

struct BootstrapConfig {
    std::size_t replicates{200};
    double confidence{0.90};  // central interval mass
    EstimatorOptions estimator{};
};

[[nodiscard]] BootstrapResult bootstrap_estimates(const std::vector<ExperimentResult>& results,
                                                  const BootstrapConfig& cfg, Rng& rng);

// Percentile-bootstrap interval for the mean of `values` (iid resampling of
// the values themselves) — used by the multi-replica aggregation layer,
// where each value is one replica's statistic.  A single value degenerates
// to a zero-width interval at that value; empty input is invalid.
[[nodiscard]] BootstrapInterval bootstrap_mean(const std::vector<double>& values,
                                               std::size_t replicates, double confidence,
                                               Rng& rng);

}  // namespace bb::core

#endif  // BB_CORE_BOOTSTRAP_H
