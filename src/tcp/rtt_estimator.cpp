#include "tcp/rtt_estimator.h"

#include <algorithm>
#include <cstdlib>

namespace bb::tcp {

void RttEstimator::add_sample(TimeNs rtt) noexcept {
    if (!has_sample_) {
        srtt_ = rtt;
        rttvar_ = TimeNs{rtt.ns() / 2};
        has_sample_ = true;
    } else {
        // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|; srtt = 7/8 srtt + 1/8 rtt
        const std::int64_t err = std::llabs(srtt_.ns() - rtt.ns());
        rttvar_ = TimeNs{(3 * rttvar_.ns() + err) / 4};
        srtt_ = TimeNs{(7 * srtt_.ns() + rtt.ns()) / 8};
    }
    rto_ = TimeNs{srtt_.ns() + std::max<std::int64_t>(4 * rttvar_.ns(), 1'000'000)};
    clamp();
}

void RttEstimator::backoff() noexcept {
    rto_ = TimeNs{rto_.ns() * 2};
    clamp();
}

void RttEstimator::clamp() noexcept {
    rto_ = std::max(rto_, cfg_.min_rto);
    rto_ = std::min(rto_, cfg_.max_rto);
}

}  // namespace bb::tcp
