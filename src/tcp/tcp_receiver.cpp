#include "tcp/tcp_receiver.h"

namespace bb::tcp {

namespace {
std::uint64_t next_packet_id() {
    static std::uint64_t counter = 1'000'000'000ULL;  // distinct range from data ids
    return ++counter;
}
}  // namespace

TcpReceiver::TcpReceiver(sim::Scheduler& sched, sim::FlowId flow, sim::PacketSink& ack_path,
                         Options opts)
    : sched_{&sched}, flow_{flow}, ack_path_{&ack_path}, opts_{opts} {}

TcpReceiver::~TcpReceiver() { disarm_delayed_ack(); }

void TcpReceiver::accept(const sim::Packet& pkt) {
    if (pkt.kind != sim::PacketKind::data || pkt.flow != flow_) return;
    ++segments_;
    // CE mark from an AQM on the path: latch it for the next ACK.  (No CWR
    // handshake here — the sender's once-per-RTT guard plays that role.)
    if (pkt.ecn_ce) {
        ++ce_received_;
        ce_pending_ = true;
    }

    const std::int64_t start = pkt.seq;
    const std::int64_t len = pkt.size_bytes;  // payload length == wire size here
    bool in_order = false;
    if (start + len > rcv_next_) {
        if (start > rcv_next_) {
            ++ooo_;
            // Store the hole-filling segment (dedup by start; lengths equal).
            pending_.emplace(start, len);
        } else {
            rcv_next_ = start + len;
            in_order = true;
        }
        // Drain any now-contiguous buffered segments.
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->first <= rcv_next_) {
                rcv_next_ = std::max(rcv_next_, it->first + it->second);
                it = pending_.erase(it);
            } else {
                break;
            }
        }
    }

    // Duplicate or out-of-order data must be acknowledged immediately so the
    // sender sees duplicate ACKs; in-order data may be delayed.
    if (!in_order || opts_.ack_every <= 1) {
        send_ack(pkt.sent_at);
        return;
    }
    if (++unacked_segments_ >= opts_.ack_every) {
        send_ack(pkt.sent_at);
    } else {
        arm_delayed_ack(pkt.sent_at);
    }
}

void TcpReceiver::send_ack(TimeNs echo) {
    disarm_delayed_ack();
    unacked_segments_ = 0;
    sim::Packet ack;
    ack.id = next_packet_id();
    ack.flow = flow_;
    ack.kind = sim::PacketKind::ack;
    ack.size_bytes = opts_.ack_size_bytes;
    ack.ack_seq = rcv_next_;
    ack.sent_at = sched_->now();
    ack.tstamp_echo = echo;
    ack.ecn_echo = ce_pending_;
    ce_pending_ = false;
    ++acks_sent_;
    ack_path_->accept(ack);
}

void TcpReceiver::arm_delayed_ack(TimeNs echo) {
    if (delack_armed_) return;
    delack_armed_ = true;
    delack_event_ = sched_->schedule_after(opts_.delayed_ack_timeout, [this, echo] {
        delack_armed_ = false;
        send_ack(echo);
    });
}

void TcpReceiver::disarm_delayed_ack() {
    if (delack_armed_) {
        sched_->cancel(delack_event_);
        delack_armed_ = false;
    }
}

}  // namespace bb::tcp
