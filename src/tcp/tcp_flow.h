// Convenience wiring of one TCP connection across the dumbbell:
//   sender -> forward path (bottleneck) -> receiver -> reverse path -> sender.
#ifndef BB_TCP_TCP_FLOW_H
#define BB_TCP_TCP_FLOW_H

#include <memory>

#include "sim/demux.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace bb::tcp {

class TcpFlow {
public:
    // `forward` is the data-direction entry point (usually the bottleneck
    // queue or an access link in front of it).  `reverse` carries ACKs back.
    // `fwd_demux` / `rev_demux` are the demultiplexers at the two ends; the
    // flow binds itself into both.
    TcpFlow(sim::Scheduler& sched, sim::FlowId flow, const TcpConfig& cfg,
            sim::PacketSink& forward, sim::PacketSink& reverse, sim::FlowDemux& fwd_demux,
            sim::FlowDemux& rev_demux)
        : sender_{std::make_unique<TcpSender>(sched, flow, cfg, forward)},
          receiver_{std::make_unique<TcpReceiver>(
              sched, flow, reverse,
              TcpReceiver::Options{cfg.ack_every, cfg.delayed_ack_timeout, 40})} {
        fwd_demux.bind(flow, *receiver_);
        rev_demux.bind(flow, *sender_);
    }

    [[nodiscard]] TcpSender& sender() noexcept { return *sender_; }
    [[nodiscard]] TcpReceiver& receiver() noexcept { return *receiver_; }
    [[nodiscard]] const TcpSender& sender() const noexcept { return *sender_; }
    [[nodiscard]] const TcpReceiver& receiver() const noexcept { return *receiver_; }

private:
    std::unique_ptr<TcpSender> sender_;
    std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace bb::tcp

#endif  // BB_TCP_TCP_FLOW_H
