// Jacobson/Karels round-trip-time estimation and RTO computation (RFC 6298).
#ifndef BB_TCP_RTT_ESTIMATOR_H
#define BB_TCP_RTT_ESTIMATOR_H

#include "util/time.h"

namespace bb::tcp {

class RttEstimator {
public:
    struct Config {
        TimeNs initial_rto{seconds_i(1)};
        TimeNs min_rto{milliseconds(200)};
        TimeNs max_rto{seconds_i(60)};
    };

    explicit RttEstimator(Config cfg) : cfg_{cfg}, rto_{cfg.initial_rto} {}
    RttEstimator() : RttEstimator(Config{}) {}

    // Feed a (non-retransmitted, or timestamp-based) RTT sample.
    void add_sample(TimeNs rtt) noexcept;

    // Exponential backoff after a retransmission timeout (Karn).
    void backoff() noexcept;

    [[nodiscard]] TimeNs rto() const noexcept { return rto_; }
    [[nodiscard]] TimeNs srtt() const noexcept { return srtt_; }
    [[nodiscard]] TimeNs rttvar() const noexcept { return rttvar_; }
    [[nodiscard]] bool has_sample() const noexcept { return has_sample_; }

private:
    void clamp() noexcept;

    Config cfg_;
    bool has_sample_{false};
    TimeNs srtt_{TimeNs::zero()};
    TimeNs rttvar_{TimeNs::zero()};
    TimeNs rto_;
};

}  // namespace bb::tcp

#endif  // BB_TCP_RTT_ESTIMATOR_H
