// TCP NewReno sender.
//
// Implements slow start, congestion avoidance, fast retransmit, NewReno fast
// recovery with partial-ACK retransmission, and RTO with Jacobson/Karels
// estimation and Karn backoff.  Sequence numbers count wire bytes and every
// segment is `segment_bytes` long; this keeps the arithmetic simple without
// changing the queue/loss dynamics the paper's experiments depend on.
#ifndef BB_TCP_TCP_SENDER_H
#define BB_TCP_TCP_SENDER_H

#include <cstdint>
#include <functional>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "tcp/rtt_estimator.h"

namespace bb::tcp {

// Congestion-control variant.  The paper's testbed hosts ran NewReno-era
// Linux stacks; Tahoe and plain Reno are provided for the substrate's own
// evaluation (they change how loss episodes look to the prober).
enum class CongestionControl : std::uint8_t {
    tahoe,    // fast retransmit, then slow start from cwnd = 1
    reno,     // fast recovery, exits on the first (possibly partial) new ACK
    newreno,  // fast recovery with partial-ACK retransmission
};

struct TcpConfig {
    std::int32_t segment_bytes{1500};    // full-size frames, as in the paper
    std::int64_t rwnd_segments{256};     // paper §4.2: receive window 256 pkts
    std::int64_t initial_cwnd_segments{2};
    std::int64_t initial_ssthresh_segments{1'000'000};  // effectively unbounded
    int dupack_threshold{3};
    std::int64_t bytes_to_send{0};       // 0 => infinite source
    CongestionControl congestion_control{CongestionControl::newreno};
    // Receiver behaviour: cumulative ACK every `ack_every` in-order segments,
    // with a delayed-ACK timer bounding the wait (RFC 1122 style).
    int ack_every{1};
    TimeNs delayed_ack_timeout{milliseconds(200)};
    RttEstimator::Config rtt{};
    // ECN (RFC 3168, simplified): data segments carry ECT, the receiver
    // echoes CE marks on ACKs, and the sender halves its window at most once
    // per RTT in response — congestion backoff without a lost packet.
    bool ecn{false};
};

class TcpSender final : public sim::PacketSink {
public:
    TcpSender(sim::Scheduler& sched, sim::FlowId flow, const TcpConfig& cfg,
              sim::PacketSink& data_path);
    ~TcpSender() override;

    TcpSender(const TcpSender&) = delete;
    TcpSender& operator=(const TcpSender&) = delete;

    // Begin transmitting at time `at` (absolute).
    void start(TimeNs at);

    // ACK input (wired to the reverse-path demux).
    void accept(const sim::Packet& pkt) override;

    // Completion callback for finite transfers (fires once, when the last
    // byte is cumulatively acknowledged).
    void on_complete(std::function<void()> fn) { complete_cb_ = std::move(fn); }

    [[nodiscard]] bool finished() const noexcept { return finished_; }
    [[nodiscard]] std::int64_t bytes_acked() const noexcept { return snd_una_; }
    [[nodiscard]] double cwnd_segments() const noexcept { return cwnd_; }
    [[nodiscard]] std::uint64_t segments_sent() const noexcept { return segments_sent_; }
    [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }
    [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
    [[nodiscard]] std::uint64_t fast_retransmits() const noexcept { return fast_rtx_; }
    // Window reductions triggered by an echoed CE mark (at most one per RTT).
    [[nodiscard]] std::uint64_t ecn_responses() const noexcept { return ecn_responses_; }
    [[nodiscard]] const RttEstimator& rtt() const noexcept { return rtt_; }

private:
    void send_allowed();                   // transmit while window permits
    void transmit(std::int64_t seq, bool retransmission);
    void handle_new_ack(std::int64_t ack, TimeNs echo);
    void handle_dupack();
    void enter_fast_recovery();
    void on_rto();
    void arm_rto();
    void disarm_rto();

    [[nodiscard]] std::int64_t window_bytes() const noexcept;
    [[nodiscard]] std::int64_t flight_bytes() const noexcept { return snd_nxt_ - snd_una_; }
    [[nodiscard]] bool data_available(std::int64_t seq) const noexcept {
        return cfg_.bytes_to_send == 0 || seq < cfg_.bytes_to_send;
    }

    sim::Scheduler* sched_;
    sim::FlowId flow_;
    TcpConfig cfg_;
    sim::PacketSink* data_path_;

    // Connection state.
    std::int64_t snd_una_{0};
    std::int64_t snd_nxt_{0};
    double cwnd_;                      // in segments; fractional during CA
    std::int64_t ssthresh_segments_;
    int dupacks_{0};
    bool in_recovery_{false};
    std::int64_t recover_{0};          // highest seq outstanding when loss detected
    bool started_{false};
    bool finished_{false};
    // End of the window in force at the last ECN reduction; further echoes
    // are ignored until snd_una_ passes it (one reduction per RTT).
    std::int64_t ecn_cwr_end_{-1};
    std::uint64_t ecn_responses_{0};

    RttEstimator rtt_;
    sim::EventId rto_event_{0};
    bool rto_armed_{false};

    std::uint64_t segments_sent_{0};
    std::uint64_t retransmits_{0};
    std::uint64_t timeouts_{0};
    std::uint64_t fast_rtx_{0};
    std::uint64_t next_pkt_id_;

    std::function<void()> complete_cb_;
};

}  // namespace bb::tcp

#endif  // BB_TCP_TCP_SENDER_H
