#include "tcp/tcp_sender.h"

#include <algorithm>
#include <atomic>

namespace bb::tcp {

namespace {
std::uint64_t fresh_id_block() {
    // Each sender gets a disjoint 2^32 id block so packet ids stay unique
    // across flows without central coordination.
    static std::atomic<std::uint64_t> next_block{1};
    return next_block.fetch_add(1) << 32;
}
}  // namespace

TcpSender::TcpSender(sim::Scheduler& sched, sim::FlowId flow, const TcpConfig& cfg,
                     sim::PacketSink& data_path)
    : sched_{&sched},
      flow_{flow},
      cfg_{cfg},
      data_path_{&data_path},
      cwnd_{static_cast<double>(cfg.initial_cwnd_segments)},
      ssthresh_segments_{cfg.initial_ssthresh_segments},
      rtt_{cfg.rtt},
      next_pkt_id_{fresh_id_block()} {}

TcpSender::~TcpSender() { disarm_rto(); }

void TcpSender::start(TimeNs at) {
    sched_->schedule_at(at, [this] {
        started_ = true;
        send_allowed();
    });
}

std::int64_t TcpSender::window_bytes() const noexcept {
    const auto cwnd_seg = static_cast<std::int64_t>(cwnd_);
    const std::int64_t win = std::min(cwnd_seg, cfg_.rwnd_segments);
    return std::max<std::int64_t>(win, 1) * cfg_.segment_bytes;
}

void TcpSender::send_allowed() {
    if (!started_ || finished_) return;
    while (flight_bytes() + cfg_.segment_bytes <= window_bytes() && data_available(snd_nxt_)) {
        transmit(snd_nxt_, /*retransmission=*/false);
        snd_nxt_ += cfg_.segment_bytes;
    }
}

void TcpSender::transmit(std::int64_t seq, bool retransmission) {
    sim::Packet pkt;
    pkt.id = ++next_pkt_id_;
    pkt.flow = flow_;
    pkt.kind = sim::PacketKind::data;
    pkt.size_bytes = cfg_.segment_bytes;
    pkt.seq = seq;
    pkt.sent_at = sched_->now();
    pkt.ecn_ect = cfg_.ecn;
    ++segments_sent_;
    if (retransmission) ++retransmits_;
    data_path_->accept(pkt);
    if (!rto_armed_) arm_rto();
}

void TcpSender::accept(const sim::Packet& pkt) {
    if (pkt.kind != sim::PacketKind::ack || pkt.flow != flow_ || finished_) return;
    // Echoed CE mark: multiplicative decrease without a loss, at most once
    // per RTT (until the window in force at the last reduction is acked).
    // Loss recovery already halves the window, so it takes precedence.
    if (cfg_.ecn && pkt.ecn_echo && !in_recovery_ && snd_una_ >= ecn_cwr_end_) {
        const std::int64_t flight_seg = flight_bytes() / cfg_.segment_bytes;
        ssthresh_segments_ = std::max<std::int64_t>(flight_seg / 2, 2);
        cwnd_ = static_cast<double>(ssthresh_segments_);
        ecn_cwr_end_ = snd_nxt_;
        ++ecn_responses_;
    }
    if (pkt.ack_seq > snd_una_) {
        handle_new_ack(pkt.ack_seq, pkt.tstamp_echo);
    } else if (pkt.ack_seq == snd_una_ && flight_bytes() > 0) {
        handle_dupack();
    }
}

void TcpSender::handle_new_ack(std::int64_t ack, TimeNs echo) {
    // Timestamp-echo RTT sample: valid for retransmitted segments too.
    if (echo.ns() > 0) rtt_.add_sample(sched_->now() - echo);

    snd_una_ = ack;
    dupacks_ = 0;

    if (in_recovery_) {
        if (ack >= recover_ || cfg_.congestion_control == CongestionControl::reno) {
            // Full ACK (or classic Reno, which exits on any new ACK):
            // leave fast recovery, deflate to ssthresh.
            in_recovery_ = false;
            cwnd_ = static_cast<double>(ssthresh_segments_);
        } else {
            // Partial ACK (NewReno): retransmit the next hole, stay in
            // recovery, deflate by the amount acked then inflate by one MSS.
            transmit(snd_una_, /*retransmission=*/true);
            cwnd_ = std::max(1.0, cwnd_ - 1.0);
        }
    } else if (static_cast<std::int64_t>(cwnd_) < ssthresh_segments_) {
        cwnd_ += 1.0;  // slow start: one segment per ACK
    } else {
        cwnd_ += 1.0 / std::max(cwnd_, 1.0);  // congestion avoidance
    }

    // Restart the retransmission timer for remaining in-flight data.
    disarm_rto();
    if (flight_bytes() > 0) arm_rto();

    if (cfg_.bytes_to_send > 0 && snd_una_ >= cfg_.bytes_to_send) {
        finished_ = true;
        disarm_rto();
        if (complete_cb_) complete_cb_();
        return;
    }
    send_allowed();
}

void TcpSender::handle_dupack() {
    ++dupacks_;
    if (in_recovery_) {
        // Inflate the window for each additional dup ACK and try to send.
        cwnd_ += 1.0;
        send_allowed();
        return;
    }
    if (dupacks_ == cfg_.dupack_threshold) {
        ++fast_rtx_;
        enter_fast_recovery();
    }
}

void TcpSender::enter_fast_recovery() {
    const std::int64_t flight_seg = flight_bytes() / cfg_.segment_bytes;
    ssthresh_segments_ = std::max<std::int64_t>(flight_seg / 2, 2);
    if (cfg_.congestion_control == CongestionControl::tahoe) {
        // Tahoe: retransmit and fall back to slow start; no recovery phase.
        cwnd_ = 1.0;
        dupacks_ = 0;
    } else {
        recover_ = snd_nxt_;
        cwnd_ = static_cast<double>(ssthresh_segments_ + cfg_.dupack_threshold);
        in_recovery_ = true;
    }
    transmit(snd_una_, /*retransmission=*/true);
    disarm_rto();
    arm_rto();
}

void TcpSender::arm_rto() {
    rto_armed_ = true;
    rto_event_ = sched_->schedule_after(rtt_.rto(), [this] { on_rto(); });
}

void TcpSender::disarm_rto() {
    if (rto_armed_) {
        sched_->cancel(rto_event_);
        rto_armed_ = false;
    }
}

void TcpSender::on_rto() {
    rto_armed_ = false;
    if (finished_ || flight_bytes() <= 0) return;
    ++timeouts_;
    // Classic response: collapse to one segment, halve ssthresh, back off.
    const std::int64_t flight_seg = flight_bytes() / cfg_.segment_bytes;
    ssthresh_segments_ = std::max<std::int64_t>(flight_seg / 2, 2);
    cwnd_ = 1.0;
    dupacks_ = 0;
    in_recovery_ = false;
    rtt_.backoff();
    // Go-back-N from the first unacknowledged byte.
    snd_nxt_ = snd_una_ + cfg_.segment_bytes;
    transmit(snd_una_, /*retransmission=*/true);
}

}  // namespace bb::tcp
