// TCP receiver: reassembles in-order data, emits cumulative ACKs with a
// timestamp echo (used by the sender for RTT estimation).  Supports
// immediate ACKs (default, as the paper's calibration assumes) or classic
// delayed ACKs: every `ack_every` in-order segments, bounded by a timer, and
// immediately on out-of-order data (RFC 1122 / RFC 5681 behaviour — the
// immediate duplicate ACKs are what make fast retransmit work).
#ifndef BB_TCP_TCP_RECEIVER_H
#define BB_TCP_TCP_RECEIVER_H

#include <cstdint>
#include <map>

#include "sim/packet.h"
#include "sim/scheduler.h"

namespace bb::tcp {

class TcpReceiver final : public sim::PacketSink {
public:
    struct Options {
        int ack_every{1};  // 1 = ACK every segment (no delay)
        TimeNs delayed_ack_timeout{milliseconds(200)};
        std::int32_t ack_size_bytes{40};
    };

    // ACKs for `flow` are emitted into `ack_path` (the reverse-direction link).
    TcpReceiver(sim::Scheduler& sched, sim::FlowId flow, sim::PacketSink& ack_path,
                Options opts);
    TcpReceiver(sim::Scheduler& sched, sim::FlowId flow, sim::PacketSink& ack_path)
        : TcpReceiver(sched, flow, ack_path, Options{}) {}
    ~TcpReceiver() override;

    TcpReceiver(const TcpReceiver&) = delete;
    TcpReceiver& operator=(const TcpReceiver&) = delete;

    void accept(const sim::Packet& pkt) override;

    [[nodiscard]] std::int64_t bytes_delivered() const noexcept { return rcv_next_; }
    [[nodiscard]] std::uint64_t segments_received() const noexcept { return segments_; }
    [[nodiscard]] std::uint64_t out_of_order_segments() const noexcept { return ooo_; }
    [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }
    // CE-marked data segments seen; each is echoed (ecn_echo) on the next ACK.
    [[nodiscard]] std::uint64_t ce_received() const noexcept { return ce_received_; }

private:
    void send_ack(TimeNs echo);
    void arm_delayed_ack(TimeNs echo);
    void disarm_delayed_ack();

    sim::Scheduler* sched_;
    sim::FlowId flow_;
    sim::PacketSink* ack_path_;
    Options opts_;

    std::int64_t rcv_next_{0};                      // next expected byte
    std::map<std::int64_t, std::int64_t> pending_;  // out-of-order: start -> length
    std::uint64_t segments_{0};
    std::uint64_t ooo_{0};
    std::uint64_t acks_sent_{0};
    std::uint64_t ce_received_{0};
    bool ce_pending_{false};

    int unacked_segments_{0};
    bool delack_armed_{false};
    sim::EventId delack_event_{0};
};

}  // namespace bb::tcp

#endif  // BB_TCP_TCP_RECEIVER_H
