// Small statistics helpers used by ground-truth extraction, estimators and
// benches: streaming mean/variance, and a fixed-bin time series accumulator.
#ifndef BB_UTIL_STATS_H
#define BB_UTIL_STATS_H

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bb {

// Welford streaming mean / variance.
class RunningStats {
public:
    void add(double x) noexcept {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_ || n_ == 1) min_ = x;
        if (x > max_ || n_ == 1) max_ = x;
    }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    [[nodiscard]] double variance() const noexcept {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
    [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
    [[nodiscard]] double sum() const noexcept {
        return mean_ * static_cast<double>(n_);
    }

private:
    std::size_t n_{0};
    double mean_{0.0};
    double m2_{0.0};
    double min_{0.0};
    double max_{0.0};
};

// A sampled time series: (t_seconds, value) pairs with simple reductions.
// Used to export queue-length traces (Figures 4-6, 8).
class TimeSeries {
public:
    struct Point {
        double t;
        double value;
    };

    void add(double t, double value) { points_.push_back({t, value}); }

    [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }
    [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
    [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

    // Mean of values with t in [t0, t1).
    [[nodiscard]] double mean_over(double t0, double t1) const noexcept {
        RunningStats s;
        for (const auto& p : points_) {
            if (p.t >= t0 && p.t < t1) s.add(p.value);
        }
        return s.mean();
    }

    [[nodiscard]] double max_value() const noexcept {
        RunningStats s;
        for (const auto& p : points_) s.add(p.value);
        return s.max();
    }

private:
    std::vector<Point> points_;
};

// Empirical quantile (linear interpolation) over a copy of the data.
[[nodiscard]] double quantile(std::vector<double> values, double q);

}  // namespace bb

#endif  // BB_UTIL_STATS_H
