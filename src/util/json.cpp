#include "util/json.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bb {

namespace {

// Recursive-descent parser with line/column tracking.  Strict by design:
// configs are written by hand, so the parser's job is to reject typos with a
// position instead of guessing.
class Parser {
public:
    Parser(std::string_view text, std::string_view source) : text_{text}, source_{source} {}

    [[nodiscard]] JsonParse run() {
        JsonParse out;
        skip_ws();
        if (!parse_value(out.value)) {
            out.error = error_;
            return out;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            set_error("trailing characters after the JSON document");
            out.error = error_;
            return out;
        }
        out.ok = true;
        return out;
    }

private:
    static constexpr int kMaxDepth = 64;

    void set_error(const std::string& message) {
        if (!error_.empty()) return;
        char pos[48];
        std::snprintf(pos, sizeof pos, ":%d:%d: ", line_, column_);
        error_ = std::string{source_} + pos + message;
    }

    [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

    char advance() noexcept {
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void skip_ws() {
        while (!eof()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            advance();
        }
    }

    bool expect(char c, const char* what) {
        if (eof() || peek() != c) {
            set_error(std::string{"expected "} + what);
            return false;
        }
        advance();
        return true;
    }

    bool parse_value(JsonValue& out) {
        if (++depth_ > kMaxDepth) {
            set_error("nesting depth exceeds 64");
            return false;
        }
        skip_ws();
        if (eof()) {
            set_error("unexpected end of input, expected a value");
            return false;
        }
        out.line = line_;
        out.column = column_;
        bool ok = false;
        switch (peek()) {
            case '{':
                ok = parse_object(out);
                break;
            case '[':
                ok = parse_array(out);
                break;
            case '"':
                out.kind = JsonValue::Kind::string;
                ok = parse_string(out.string_value);
                break;
            case 't':
            case 'f':
                ok = parse_keyword(out);
                break;
            case 'n':
                ok = parse_keyword(out);
                break;
            default:
                ok = parse_number(out);
                break;
        }
        --depth_;
        return ok;
    }

    bool parse_object(JsonValue& out) {
        out.kind = JsonValue::Kind::object;
        advance();  // '{'
        skip_ws();
        if (!eof() && peek() == '}') {
            advance();
            return true;
        }
        while (true) {
            skip_ws();
            if (eof() || peek() != '"') {
                set_error("expected '\"' to start an object key");
                return false;
            }
            const int key_line = line_;
            const int key_column = column_;
            std::string key;
            if (!parse_string(key)) return false;
            for (const auto& [existing, unused] : out.members) {
                (void)unused;
                if (existing == key) {
                    line_ = key_line;
                    column_ = key_column;
                    set_error("duplicate key \"" + key + "\"");
                    return false;
                }
            }
            skip_ws();
            if (!expect(':', "':' after object key")) return false;
            JsonValue v;
            if (!parse_value(v)) return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (eof()) {
                set_error("unexpected end of input inside an object");
                return false;
            }
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == '}') {
                advance();
                return true;
            }
            set_error("expected ',' or '}' in object");
            return false;
        }
    }

    bool parse_array(JsonValue& out) {
        out.kind = JsonValue::Kind::array;
        advance();  // '['
        skip_ws();
        if (!eof() && peek() == ']') {
            advance();
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parse_value(v)) return false;
            out.items.push_back(std::move(v));
            skip_ws();
            if (eof()) {
                set_error("unexpected end of input inside an array");
                return false;
            }
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == ']') {
                advance();
                return true;
            }
            set_error("expected ',' or ']' in array");
            return false;
        }
    }

    bool parse_keyword(JsonValue& out) {
        static constexpr struct {
            const char* text;
            JsonValue::Kind kind;
            bool value;
        } kKeywords[] = {
            {"true", JsonValue::Kind::bool_v, true},
            {"false", JsonValue::Kind::bool_v, false},
            {"null", JsonValue::Kind::null_v, false},
        };
        for (const auto& kw : kKeywords) {
            const std::size_t len = std::strlen(kw.text);
            if (text_.substr(pos_, len) == kw.text) {
                for (std::size_t i = 0; i < len; ++i) advance();
                out.kind = kw.kind;
                out.bool_value = kw.value;
                return true;
            }
        }
        set_error("invalid literal (expected true, false, or null)");
        return false;
    }

    bool parse_number(JsonValue& out) {
        const std::size_t start = pos_;
        if (!eof() && peek() == '-') advance();
        bool saw_digit = false;
        bool integral = true;
        while (!eof()) {
            const char c = peek();
            if (c >= '0' && c <= '9') {
                saw_digit = true;
                advance();
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                integral = false;
                advance();
            } else {
                break;
            }
        }
        if (!saw_digit) {
            set_error("invalid character, expected a JSON value");
            return false;
        }
        const std::string literal{text_.substr(start, pos_ - start)};
        char* end = nullptr;
        const double v = std::strtod(literal.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            set_error("malformed number '" + literal + "'");
            return false;
        }
        out.kind = JsonValue::Kind::number;
        out.number_value = v;
        if (integral) {
            errno = 0;
            char* iend = nullptr;
            const long long iv = std::strtoll(literal.c_str(), &iend, 10);
            if (errno == 0 && iend != nullptr && *iend == '\0') {
                out.number_is_int = true;
                out.int_value = iv;
            }
        }
        return true;
    }

    bool parse_string(std::string& out) {
        advance();  // opening quote
        out.clear();
        while (true) {
            if (eof()) {
                set_error("unterminated string");
                return false;
            }
            const char c = advance();
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                set_error("raw control character in string (use \\u escapes)");
                return false;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (eof()) {
                set_error("unterminated escape sequence");
                return false;
            }
            const char esc = advance();
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        if (eof()) {
                            set_error("unterminated \\u escape");
                            return false;
                        }
                        const char h = advance();
                        code <<= 4U;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            set_error("invalid hex digit in \\u escape");
                            return false;
                        }
                    }
                    // Basic-plane code point to UTF-8 (surrogates rejected:
                    // config files have no business containing them).
                    if (code >= 0xD800 && code <= 0xDFFF) {
                        set_error("surrogate \\u escapes are not supported");
                        return false;
                    }
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
                        out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
                    } else {
                        out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
                        out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
                        out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
                    }
                    break;
                }
                default:
                    set_error("invalid escape sequence");
                    return false;
            }
        }
    }

    std::string_view text_;
    std::string_view source_;
    std::size_t pos_{0};
    int line_{1};
    int column_{1};
    int depth_{0};
    std::string error_;
};

void canonical_append(std::string& out, const JsonValue& v) {
    switch (v.kind) {
        case JsonValue::Kind::null_v:
            out += "null";
            break;
        case JsonValue::Kind::bool_v:
            out += v.bool_value ? "true" : "false";
            break;
        case JsonValue::Kind::number: {
            char buf[64];
            if (v.number_is_int) {
                std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v.int_value));
            } else {
                std::snprintf(buf, sizeof buf, "%.17g", v.number_value);
            }
            out += buf;
            break;
        }
        case JsonValue::Kind::string:
            out.push_back('"');
            JsonWriter::append_escaped(out, v.string_value);
            out.push_back('"');
            break;
        case JsonValue::Kind::array: {
            out.push_back('[');
            for (std::size_t i = 0; i < v.items.size(); ++i) {
                if (i > 0) out.push_back(',');
                canonical_append(out, v.items[i]);
            }
            out.push_back(']');
            break;
        }
        case JsonValue::Kind::object: {
            std::vector<const std::pair<std::string, JsonValue>*> sorted;
            sorted.reserve(v.members.size());
            for (const auto& m : v.members) sorted.push_back(&m);
            std::sort(sorted.begin(), sorted.end(),
                      [](const auto* a, const auto* b) { return a->first < b->first; });
            out.push_back('{');
            for (std::size_t i = 0; i < sorted.size(); ++i) {
                if (i > 0) out.push_back(',');
                out.push_back('"');
                JsonWriter::append_escaped(out, sorted[i]->first);
                out += "\":";
                canonical_append(out, sorted[i]->second);
            }
            out.push_back('}');
            break;
        }
    }
}

}  // namespace

JsonParse json_parse(std::string_view text, std::string_view source_name) {
    return Parser{text, source_name}.run();
}

// Config files are read wholesale into memory; the parser owns the error
// reporting, so the direct-I/O ban is waived for this single loader.
// bb-lint: allow(no-direct-io)
JsonParse json_parse_file(const std::string& path) {
    JsonParse out;
    std::FILE* f = std::fopen(path.c_str(), "rb");  // bb-lint: allow(no-direct-io)
    if (f == nullptr) {
        out.error = path + ": cannot open file";
        return out;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);  // bb-lint: allow(no-direct-io)
    const bool read_ok = std::ferror(f) == 0;
    std::fclose(f);  // bb-lint: allow(no-direct-io)
    if (!read_ok) {
        out.error = path + ": read error";
        return out;
    }
    return json_parse(text, path);
}

std::string json_canonical(const JsonValue& v) {
    std::string out;
    canonical_append(out, v);
    return out;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::string fnv1a64_hex(std::string_view bytes) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(bytes)));
    return std::string{buf};
}

bool json_set_path(JsonValue& doc, std::string_view dotted_path, JsonValue value,
                   std::string& error) {
    JsonValue* node = &doc;
    std::string_view rest = dotted_path;
    while (true) {
        const std::size_t dot = rest.find('.');
        const std::string_view seg = rest.substr(0, dot);
        if (seg.empty()) {
            error = "empty segment in path \"" + std::string{dotted_path} + "\"";
            return false;
        }
        if (!node->is_object()) {
            error = "path \"" + std::string{dotted_path} +
                    "\" traverses a non-object value";
            return false;
        }
        JsonValue* child = nullptr;
        for (auto& [k, v] : node->members) {
            if (k == seg) {
                child = &v;
                break;
            }
        }
        if (child == nullptr) {
            JsonValue fresh;
            if (dot != std::string_view::npos) fresh.kind = JsonValue::Kind::object;
            node->members.emplace_back(std::string{seg}, std::move(fresh));
            child = &node->members.back().second;
        }
        if (dot == std::string_view::npos) {
            *child = std::move(value);
            return true;
        }
        node = child;
        rest = rest.substr(dot + 1);
    }
}

const JsonValue* json_get_path(const JsonValue& doc, std::string_view dotted_path) noexcept {
    const JsonValue* node = &doc;
    std::string_view rest = dotted_path;
    while (true) {
        const std::size_t dot = rest.find('.');
        node = node->find(rest.substr(0, dot));
        if (node == nullptr || dot == std::string_view::npos) return node;
        rest = rest.substr(dot + 1);
    }
}

}  // namespace bb
