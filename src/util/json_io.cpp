#include "util/json_io.h"

#include <cstdio>

#include "obs/log.h"

namespace bb {

bool write_text_file(const std::string& path, std::string_view content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        obs::logf(obs::LogLevel::warn, "cannot write %s", path.c_str());
        return false;
    }
    const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
    const bool closed_ok = std::fclose(f) == 0;
    if (written != content.size() || !closed_ok) {
        obs::logf(obs::LogLevel::warn, "short write to %s", path.c_str());
        return false;
    }
    return true;
}

}  // namespace bb
