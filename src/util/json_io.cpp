#include "util/json_io.h"

#include <cstdio>

namespace bb {

bool write_text_file(const std::string& path, std::string_view content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return false;
    }
    const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
    const bool closed_ok = std::fclose(f) == 0;
    if (written != content.size() || !closed_ok) {
        std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
        return false;
    }
    return true;
}

}  // namespace bb
