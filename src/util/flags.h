// Minimal command-line flag parsing for the shipped tools.
//
//   FlagSet flags{"badabing_sim", "simulate a BADABING measurement"};
//   auto p = flags.add_double("p", 0.3, "probe rate per slot");
//   auto out = flags.add_string("csv", "", "write probe outcomes to FILE");
//   if (!flags.parse(argc, argv)) return 1;   // prints error/usage
//   use(*p, *out);
//
// Supports --name=value, --name value, --flag (booleans), and --help.
#ifndef BB_UTIL_FLAGS_H
#define BB_UTIL_FLAGS_H

#include <memory>
#include <string>
#include <vector>

namespace bb {

class FlagSet {
public:
    FlagSet(std::string program, std::string description)
        : program_{std::move(program)}, description_{std::move(description)} {}

    FlagSet(const FlagSet&) = delete;
    FlagSet& operator=(const FlagSet&) = delete;

    // Returned pointers stay valid for the life of the FlagSet.
    [[nodiscard]] const std::string* add_string(const std::string& name,
                                                const std::string& default_value,
                                                const std::string& help);
    [[nodiscard]] const double* add_double(const std::string& name, double default_value,
                                           const std::string& help);
    [[nodiscard]] const std::int64_t* add_int(const std::string& name,
                                              std::int64_t default_value,
                                              const std::string& help);
    [[nodiscard]] const bool* add_bool(const std::string& name, bool default_value,
                                       const std::string& help);

    // Opt in to positional arguments (off by default).  `placeholder` names
    // them in usage output; parse() then requires between min_count and
    // max_count of them.
    void allow_positionals(std::size_t min_count, std::size_t max_count,
                           std::string placeholder);
    [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
        return positionals_;
    }

    // Parse argv.  On error or --help, prints to stderr/stdout and returns
    // false.  Unknown flags are errors; positional arguments are errors
    // unless allow_positionals() was called.
    [[nodiscard]] bool parse(int argc, const char* const* argv);

    // True if the flag was explicitly set on the command line.
    [[nodiscard]] bool is_set(const std::string& name) const;

    void print_usage() const;

    [[nodiscard]] const std::string& error() const noexcept { return error_; }

private:
    enum class Kind { string_v, double_v, int_v, bool_v };
    struct Flag {
        std::string name;
        std::string help;
        Kind kind;
        bool set{false};
        std::unique_ptr<std::string> s;
        std::unique_ptr<double> d;
        std::unique_ptr<std::int64_t> i;
        std::unique_ptr<bool> b;
        std::string default_repr;
    };

    Flag* find(const std::string& name);
    [[nodiscard]] bool assign(Flag& flag, const std::string& value);
    bool fail(const std::string& message);

    std::string program_;
    std::string description_;
    std::string error_;
    std::vector<std::unique_ptr<Flag>> flags_;
    bool positionals_allowed_{false};
    std::size_t positionals_min_{0};
    std::size_t positionals_max_{0};
    std::string positionals_placeholder_;
    std::vector<std::string> positionals_;
};

}  // namespace bb

#endif  // BB_UTIL_FLAGS_H
