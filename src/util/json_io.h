// Shared helper for dumping generated documents (JSON reports, traces) to
// disk — one implementation of the open/write/close/error dance instead of a
// copy in every tool and bench.
#ifndef BB_UTIL_JSON_IO_H
#define BB_UTIL_JSON_IO_H

#include <string>
#include <string_view>

namespace bb {

// Write `content` to `path`, replacing any existing file.  Returns false
// (and prints a warning to stderr) when the file cannot be opened or the
// write comes up short.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace bb

#endif  // BB_UTIL_JSON_IO_H
