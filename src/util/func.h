// Move-only callable wrapper with a small-buffer optimization — the event /
// task type shared by sim::Scheduler and util::ThreadPool.
//
// Unlike std::function it never requires the target to be copyable, and it
// never heap-allocates for targets of at most kInlineBytes that are nothrow
// move constructible; anything larger (or with a throwing move) falls back to
// a single heap allocation.  The dispatch is two raw function pointers
// (invoke + manage), no virtual tables, so the whole object is trivially
// relocatable storage + 16 bytes of pointers and moves with memcpy-like cost.
#ifndef BB_UTIL_FUNC_H
#define BB_UTIL_FUNC_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace bb {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
public:
    // Sized for the simulator's hot events: a parked-packet delivery
    // (pool pointer + sink pointer + 32-bit handle) or a self-rescheduling
    // source tick ([this] plus a couple of words) fits with room to spare.
    static constexpr std::size_t kInlineBytes = 48;

    UniqueFunction() noexcept = default;
    UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                          std::is_invocable_r_v<R, D&, Args...>>>
    UniqueFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
        construct<D>(std::forward<F>(fn));
    }

    UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

    UniqueFunction& operator=(UniqueFunction&& other) noexcept {
        if (this != &other) {
            reset();
            steal(other);
        }
        return *this;
    }

    UniqueFunction(const UniqueFunction&) = delete;
    UniqueFunction& operator=(const UniqueFunction&) = delete;

    ~UniqueFunction() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

    R operator()(Args... args) { return invoke_(&storage_, std::forward<Args>(args)...); }

    void reset() noexcept {
        if (manage_ != nullptr) manage_(Op::destroy, &storage_, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    // Construct a target in place, destroying any previous one — lets a
    // caller that owns stable storage (e.g. the scheduler's event arena)
    // build the callable exactly once, with no intermediate moves.
    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                          std::is_invocable_r_v<R, D&, Args...>>>
    void emplace(F&& fn) {
        reset();
        construct<D>(std::forward<F>(fn));
    }

    // True when the target lives in the inline buffer (no heap allocation).
    [[nodiscard]] bool is_inline() const noexcept {
        if (invoke_ == nullptr) return false;
        if (manage_ == nullptr) return true;  // trivial fast-path target
        Storage q;
        manage_(Op::query_inline, &q, nullptr);
        return q.flag != 0;
    }

private:
    union Storage {
        alignas(std::max_align_t) std::byte buf[kInlineBytes];
        void* ptr;
        int flag;
    };
    // The SBO type-puns targets into `buf` (placement new + launder) and
    // moves trivial targets with memcpy; both are only defined behaviour if
    // the buffer really is max-aligned and at least as large as every
    // representation `fits_inline_v` admits.
    static_assert(sizeof(Storage) >= kInlineBytes);
    static_assert(alignof(Storage) >= alignof(std::max_align_t));
    static_assert(sizeof(void*) <= kInlineBytes);
    enum class Op : std::uint8_t { destroy, move, query_inline };
    using Invoke = R (*)(Storage*, Args&&...);
    using Manage = void (*)(Op, Storage*, Storage*);

    template <typename D>
    static constexpr bool fits_inline_v = sizeof(D) <= kInlineBytes &&
                                          alignof(D) <= alignof(std::max_align_t) &&
                                          std::is_nothrow_move_constructible_v<D>;

    // The simulator's hot events (parked-packet deliveries, source ticks)
    // capture nothing but pointers and integers: trivially copyable and
    // destructible.  Those skip the manage trampoline entirely — manage_
    // stays null, a move is a memcpy of the buffer, destruction a no-op —
    // saving two indirect calls per event on the scheduler's pop path.
    template <typename D>
    static constexpr bool trivial_inline_v = fits_inline_v<D> &&
                                             std::is_trivially_copyable_v<D> &&
                                             std::is_trivially_destructible_v<D>;

    template <typename D, typename F>
    void construct(F&& fn) {
        if constexpr (trivial_inline_v<D>) {
            ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(fn));
            invoke_ = [](Storage* s, Args&&... args) -> R {
                return std::invoke(*std::launder(reinterpret_cast<D*>(s->buf)),
                                   std::forward<Args>(args)...);
            };
            manage_ = nullptr;
        } else if constexpr (fits_inline_v<D>) {
            ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(fn));
            invoke_ = [](Storage* s, Args&&... args) -> R {
                return std::invoke(*std::launder(reinterpret_cast<D*>(s->buf)),
                                   std::forward<Args>(args)...);
            };
            manage_ = [](Op op, Storage* dst, Storage* src) {
                switch (op) {
                    case Op::destroy:
                        std::launder(reinterpret_cast<D*>(dst->buf))->~D();
                        break;
                    case Op::move:
                        ::new (static_cast<void*>(dst->buf))
                            D(std::move(*std::launder(reinterpret_cast<D*>(src->buf))));
                        std::launder(reinterpret_cast<D*>(src->buf))->~D();
                        break;
                    case Op::query_inline:
                        dst->flag = 1;
                        break;
                }
            };
        } else {
            storage_.ptr = new D(std::forward<F>(fn));
            invoke_ = [](Storage* s, Args&&... args) -> R {
                return std::invoke(*static_cast<D*>(s->ptr), std::forward<Args>(args)...);
            };
            manage_ = [](Op op, Storage* dst, Storage* src) {
                switch (op) {
                    case Op::destroy:
                        delete static_cast<D*>(dst->ptr);
                        break;
                    case Op::move:
                        dst->ptr = src->ptr;
                        src->ptr = nullptr;
                        break;
                    case Op::query_inline:
                        dst->flag = 0;
                        break;
                }
            };
        }
    }

    void steal(UniqueFunction& other) noexcept {
        if (other.invoke_ == nullptr) return;
        if (other.manage_ != nullptr) {
            other.manage_(Op::move, &storage_, &other.storage_);
        } else {
            std::memcpy(&storage_, &other.storage_, sizeof(Storage));
        }
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        other.invoke_ = nullptr;
        other.manage_ = nullptr;
    }

    Storage storage_;
    Invoke invoke_{nullptr};
    Manage manage_{nullptr};
};

}  // namespace bb

#endif  // BB_UTIL_FUNC_H
