// Runtime contracts: the correctness backstop for the deliberately unsafe
// hot-path machinery (pooled events, generation-counter handles, SBO
// type-punning).  Three tiers (DESIGN.md §10):
//
//   BB_CHECK(cond)          always on, every build.  For cheap checks whose
//                           failure would silently corrupt an estimate — a
//                           wrong-but-plausible number is worse than a crash.
//   BB_DCHECK(cond)         debug / -DBB_CONTRACTS=ON builds only.  For
//                           hot-path preconditions too expensive to keep in
//                           release binaries.
//   BB_AUDIT(expr)          -DBB_AUDIT=ON builds only.  For O(n) deep
//                           invariant walkers (heap order, free-list
//                           acyclicity, streaming-vs-batch cross-checks).
//
// A failed contract prints the expression and file:line to stderr and
// aborts; there is no recovery path, by design — state is suspect.
//
// This header must stay dependency-free (no obs, no util) so every layer,
// including the ones obs itself depends on, can assert contracts.
#ifndef BB_UTIL_CONTRACT_H
#define BB_UTIL_CONTRACT_H

#include <cstdio>
#include <cstdlib>

// BB_CONTRACTS_ENABLED gates BB_DCHECK.  Defaults to on in debug builds
// (!NDEBUG); the CMake option BB_CONTRACTS=ON forces it on in any build type.
#ifndef BB_CONTRACTS_ENABLED
#ifdef NDEBUG
#define BB_CONTRACTS_ENABLED 0
#else
#define BB_CONTRACTS_ENABLED 1
#endif
#endif

// BB_AUDIT_ENABLED gates the BB_AUDIT walkers.  Off unless the CMake option
// BB_AUDIT=ON (which also implies BB_CONTRACTS=ON) defines it.
#ifndef BB_AUDIT_ENABLED
#define BB_AUDIT_ENABLED 0
#endif

namespace bb::contract {

[[noreturn]] inline void fail(const char* kind, const char* expr, const char* file, int line,
                              const char* msg) noexcept {
    // The one sanctioned direct-stderr write outside src/obs: obs sits above
    // this layer, and a failing contract must not trust any subsystem.
    // bb-lint: allow(no-direct-io)
    std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n", kind, expr, file, line);
    if (msg != nullptr) {
        // bb-lint: allow(no-direct-io)
        std::fprintf(stderr, "  note: %s\n", msg);
    }
    std::fflush(stderr);
    std::abort();
}

}  // namespace bb::contract

#if defined(__GNUC__) || defined(__clang__)
#define BB_CONTRACT_LIKELY(x) __builtin_expect(static_cast<bool>(x), 1)
#else
#define BB_CONTRACT_LIKELY(x) static_cast<bool>(x)
#endif

#define BB_CHECK(cond)                 \
    (BB_CONTRACT_LIKELY(cond) ? static_cast<void>(0) \
                              : ::bb::contract::fail("BB_CHECK", #cond, __FILE__, __LINE__, nullptr))

#define BB_CHECK_MSG(cond, msg)        \
    (BB_CONTRACT_LIKELY(cond) ? static_cast<void>(0) \
                              : ::bb::contract::fail("BB_CHECK", #cond, __FILE__, __LINE__, (msg)))

// The off-forms still "use" the condition (unevaluated) so variables that
// exist only to be checked do not trip -Wunused in release builds.
#if BB_CONTRACTS_ENABLED
#define BB_DCHECK(cond)                \
    (BB_CONTRACT_LIKELY(cond) ? static_cast<void>(0) \
                              : ::bb::contract::fail("BB_DCHECK", #cond, __FILE__, __LINE__, nullptr))
#define BB_DCHECK_MSG(cond, msg)       \
    (BB_CONTRACT_LIKELY(cond) ? static_cast<void>(0) \
                              : ::bb::contract::fail("BB_DCHECK", #cond, __FILE__, __LINE__, (msg)))
#else
#define BB_DCHECK(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define BB_DCHECK_MSG(cond, msg) static_cast<void>(sizeof((cond) ? 1 : 0))
#endif

#if BB_AUDIT_ENABLED
#define BB_AUDIT(expr) static_cast<void>(expr)
#else
#define BB_AUDIT(expr) static_cast<void>(sizeof((expr), 0))
#endif

#endif  // BB_UTIL_CONTRACT_H
