// Simulated-time representation.
//
// All simulator timestamps and durations are integer nanoseconds wrapped in a
// strong type, so that arithmetic is exact and a raw int64_t cannot silently
// be confused with a packet count or a byte count.  Floating-point seconds
// appear only at the boundaries (configuration input, report output).
#ifndef BB_UTIL_TIME_H
#define BB_UTIL_TIME_H

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace bb {

class TimeNs {
public:
    constexpr TimeNs() = default;
    constexpr explicit TimeNs(std::int64_t ns) noexcept : ns_{ns} {}

    [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
    [[nodiscard]] constexpr double to_seconds() const noexcept {
        return static_cast<double>(ns_) * 1e-9;
    }
    [[nodiscard]] constexpr double to_millis() const noexcept {
        return static_cast<double>(ns_) * 1e-6;
    }

    constexpr auto operator<=>(const TimeNs&) const noexcept = default;

    constexpr TimeNs& operator+=(TimeNs rhs) noexcept {
        ns_ += rhs.ns_;
        return *this;
    }
    constexpr TimeNs& operator-=(TimeNs rhs) noexcept {
        ns_ -= rhs.ns_;
        return *this;
    }

    [[nodiscard]] static constexpr TimeNs max() noexcept {
        return TimeNs{std::numeric_limits<std::int64_t>::max()};
    }
    [[nodiscard]] static constexpr TimeNs zero() noexcept { return TimeNs{0}; }

private:
    std::int64_t ns_{0};
};

[[nodiscard]] constexpr TimeNs operator+(TimeNs a, TimeNs b) noexcept {
    return TimeNs{a.ns() + b.ns()};
}
[[nodiscard]] constexpr TimeNs operator-(TimeNs a, TimeNs b) noexcept {
    return TimeNs{a.ns() - b.ns()};
}
[[nodiscard]] constexpr TimeNs operator*(TimeNs a, std::int64_t k) noexcept {
    return TimeNs{a.ns() * k};
}
[[nodiscard]] constexpr TimeNs operator*(std::int64_t k, TimeNs a) noexcept {
    return TimeNs{a.ns() * k};
}
// Integer division of two times yields a dimensionless count (e.g. how many
// slots fit in an interval).
[[nodiscard]] constexpr std::int64_t operator/(TimeNs a, TimeNs b) noexcept {
    return a.ns() / b.ns();
}

[[nodiscard]] constexpr TimeNs nanoseconds(std::int64_t v) noexcept { return TimeNs{v}; }
[[nodiscard]] constexpr TimeNs microseconds(std::int64_t v) noexcept {
    return TimeNs{v * 1'000};
}
[[nodiscard]] constexpr TimeNs milliseconds(std::int64_t v) noexcept {
    return TimeNs{v * 1'000'000};
}
[[nodiscard]] constexpr TimeNs seconds_i(std::int64_t v) noexcept {
    return TimeNs{v * 1'000'000'000};
}
// Fractional seconds, for configuration convenience.  Rounds to the nearest
// nanosecond.
[[nodiscard]] constexpr TimeNs seconds(double v) noexcept {
    return TimeNs{static_cast<std::int64_t>(v * 1e9 + (v >= 0 ? 0.5 : -0.5))};
}

inline std::ostream& operator<<(std::ostream& os, TimeNs t) {
    return os << t.to_seconds() << "s";
}

// Duration of transmitting `bytes` at `bits_per_second` on a serial link.
[[nodiscard]] constexpr TimeNs transmission_time(std::int64_t bytes,
                                                 std::int64_t bits_per_second) noexcept {
    // bytes*8 bits / (bits/s) seconds -> nanoseconds.  Do the multiply first;
    // 64-bit is ample for any realistic packet size.
    return TimeNs{bytes * 8 * 1'000'000'000 / bits_per_second};
}

}  // namespace bb

#endif  // BB_UTIL_TIME_H
