// Dependency-free JSON layer: a streaming writer and a strict reader.
//
// Writer — JsonWriter replaces the three hand-rolled emitters that grew in
// tools/bench (obs metrics, BENCH_*.json, replica aggregate JSON).  It is
// header-only because obs cannot link bb_util (bb_util links bb_obs PUBLIC),
// and it reproduces all three house styles byte-for-byte:
//
//   * compact      — Options{} :              {"a":1,"b":[2,3]}
//   * pretty       — Options{2, true} :       2-space indent, ": " after keys,
//                                             "," placed before the newline
//   * inline       — begin_*_inline() :       a single-line container inside a
//                                             pretty document, ", " separators
//
// Reader — JsonValue + json_parse: a small strict recursive-descent parser
// (no comments, no trailing commas, duplicate keys rejected) that records the
// source line/column of every value so config loaders can produce one-line
// file:line diagnostics.  The parser lives in json.cpp (bb_util).
#ifndef BB_UTIL_JSON_H
#define BB_UTIL_JSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bb {

// --- Writer ------------------------------------------------------------------

class JsonWriter {
public:
    struct Options {
        int indent{0};                // spaces per nesting level; 0 = compact
        bool space_after_colon{false};
    };

    JsonWriter() = default;
    explicit JsonWriter(Options opt) : opt_{opt} {}

    JsonWriter& begin_object() { return open('{', '}', false); }
    JsonWriter& begin_array() { return open('[', ']', false); }
    // Single-line container inside a pretty document: {"count": 3, "sum": 9}.
    JsonWriter& begin_object_inline() { return open('{', '}', true); }
    JsonWriter& begin_array_inline() { return open('[', ']', true); }

    JsonWriter& end_object() { return close(); }
    JsonWriter& end_array() { return close(); }

    JsonWriter& key(std::string_view k) {
        item_prefix();
        out_.push_back('"');
        append_escaped(out_, k);
        out_.push_back('"');
        out_ += opt_.space_after_colon ? ": " : ":";
        pending_value_ = true;
        return *this;
    }

    JsonWriter& value(std::string_view s) {
        item_prefix();
        out_.push_back('"');
        append_escaped(out_, s);
        out_.push_back('"');
        return *this;
    }
    JsonWriter& value(const char* s) { return value(std::string_view{s}); }
    JsonWriter& value(bool b) {
        item_prefix();
        out_ += b ? "true" : "false";
        return *this;
    }
    JsonWriter& value_null() {
        item_prefix();
        out_ += "null";
        return *this;
    }
    JsonWriter& value_int(std::int64_t v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        return value_raw(buf);
    }
    JsonWriter& value_uint(std::uint64_t v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
        return value_raw(buf);
    }
    // `fmt` must be a printf conversion for one double; the house styles are
    // "%.9g" (tables), "%.6g" (histogram means) and "%.17g" (round-trip).
    JsonWriter& value_double(double v, const char* fmt = "%.9g") {
        char buf[64];
        std::snprintf(buf, sizeof buf, fmt, v);
        return value_raw(buf);
    }
    // Pre-rendered fragment spliced in verbatim (e.g. a nested JSON document).
    JsonWriter& value_raw(std::string_view fragment) {
        item_prefix();
        out_ += fragment;
        return *this;
    }

    [[nodiscard]] const std::string& str() const noexcept { return out_; }
    [[nodiscard]] std::string take() { return std::move(out_); }

    // Escapes the two characters the house emitters escape plus control
    // characters (which would otherwise produce invalid JSON).
    static void append_escaped(std::string& out, std::string_view s) {
        for (const char c : s) {
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(c);
            } else if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }

private:
    struct Frame {
        char close;
        bool is_inline;
        bool has_items;
    };

    [[nodiscard]] bool pretty() const noexcept { return opt_.indent > 0; }

    void item_prefix() {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        if (stack_.empty()) return;
        Frame& f = stack_.back();
        if (pretty() && !f.is_inline) {
            if (f.has_items) out_.push_back(',');
            out_.push_back('\n');
            out_.append(static_cast<std::size_t>(opt_.indent) * stack_.size(), ' ');
        } else if (f.has_items) {
            out_ += pretty() ? ", " : ",";
        }
        f.has_items = true;
    }

    JsonWriter& open(char open_ch, char close_ch, bool is_inline) {
        item_prefix();
        out_.push_back(open_ch);
        stack_.push_back(Frame{close_ch, is_inline, false});
        return *this;
    }

    JsonWriter& close() {
        const Frame f = stack_.back();
        stack_.pop_back();
        if (pretty() && !f.is_inline) {
            out_.push_back('\n');
            out_.append(static_cast<std::size_t>(opt_.indent) * stack_.size(), ' ');
        }
        out_.push_back(f.close);
        return *this;
    }

    Options opt_{};
    std::string out_;
    std::vector<Frame> stack_;
    bool pending_value_{false};
};

// --- Reader ------------------------------------------------------------------

// Parsed JSON document node.  Object member order is source order; duplicate
// keys are a parse error, so lookups are unambiguous.
struct JsonValue {
    enum class Kind : std::uint8_t { null_v, bool_v, number, string, array, object };

    Kind kind{Kind::null_v};
    bool bool_value{false};
    double number_value{0.0};
    // True when the literal had no '.', exponent, or overflow — int_value is
    // then the exact integer (config block sizes, seeds, slot counts).
    bool number_is_int{false};
    std::int64_t int_value{0};
    std::string string_value;
    std::vector<JsonValue> items;                            // array elements
    std::vector<std::pair<std::string, JsonValue>> members;  // object members
    int line{0};  // 1-based position of the value's first character
    int column{0};

    [[nodiscard]] bool is_null() const noexcept { return kind == Kind::null_v; }
    [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::bool_v; }
    [[nodiscard]] bool is_number() const noexcept { return kind == Kind::number; }
    [[nodiscard]] bool is_string() const noexcept { return kind == Kind::string; }
    [[nodiscard]] bool is_array() const noexcept { return kind == Kind::array; }
    [[nodiscard]] bool is_object() const noexcept { return kind == Kind::object; }

    // Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept {
        if (kind != Kind::object) return nullptr;
        for (const auto& [k, v] : members) {
            if (k == key) return &v;
        }
        return nullptr;
    }

    [[nodiscard]] static JsonValue of_bool(bool b) {
        JsonValue v;
        v.kind = Kind::bool_v;
        v.bool_value = b;
        return v;
    }
    [[nodiscard]] static JsonValue of_number(double d) {
        JsonValue v;
        v.kind = Kind::number;
        v.number_value = d;
        return v;
    }
    [[nodiscard]] static JsonValue of_int(std::int64_t i) {
        JsonValue v;
        v.kind = Kind::number;
        v.number_value = static_cast<double>(i);
        v.number_is_int = true;
        v.int_value = i;
        return v;
    }
    [[nodiscard]] static JsonValue of_string(std::string s) {
        JsonValue v;
        v.kind = Kind::string;
        v.string_value = std::move(s);
        return v;
    }
};

struct JsonParse {
    bool ok{false};
    JsonValue value;
    // One line, "<source>:<line>:<col>: <message>" — ready to print verbatim.
    std::string error;
};

// Strict parse of a complete JSON document (trailing garbage is an error).
[[nodiscard]] JsonParse json_parse(std::string_view text,
                                   std::string_view source_name = "<json>");

// Reads `path` and parses it; unreadable files report through `error` too.
[[nodiscard]] JsonParse json_parse_file(const std::string& path);

// Canonical serialization: compact, object keys sorted, integers rendered as
// integers and other numbers as shortest round-trip %.17g.  Two documents
// with equal canonical forms are the same configuration — this is the input
// to the sweep cache's config hash.
[[nodiscard]] std::string json_canonical(const JsonValue& v);

// FNV-1a 64-bit over bytes; hex form is the sweep cell's config hash key.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;
[[nodiscard]] std::string fnv1a64_hex(std::string_view bytes);

// Dotted-path helpers for sweep-axis substitution: "link.discipline" targets
// doc["link"]["discipline"], creating intermediate objects as needed.  Fails
// (with a one-line message) when a path segment traverses a non-object.
bool json_set_path(JsonValue& doc, std::string_view dotted_path, JsonValue value,
                   std::string& error);
[[nodiscard]] const JsonValue* json_get_path(const JsonValue& doc,
                                             std::string_view dotted_path) noexcept;

}  // namespace bb

#endif  // BB_UTIL_JSON_H
