#include "util/stats.h"

#include <algorithm>

namespace bb {

double quantile(std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    if (q <= 0.0) return *std::min_element(values.begin(), values.end());
    if (q >= 1.0) return *std::max_element(values.begin(), values.end());
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= values.size()) return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace bb
