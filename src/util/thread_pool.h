// Fixed-size worker pool draining a shared FIFO task queue — the execution
// substrate for multi-replica experiment runs (scenarios::ReplicaRunner).
//
// Tasks are arbitrary callables; submit() returns a std::future that carries
// the task's result or rethrows its exception.  for_each_index() is the
// common bulk pattern: run fn(i) for every i in [0, n) across the pool and
// block until all complete.  The pool imposes no ordering between tasks, so
// anything that must be deterministic (e.g. replica seeding) has to be
// decided *before* submission, never from scheduling order.
#ifndef BB_UTIL_THREAD_POOL_H
#define BB_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/func.h"

namespace bb {

class ThreadPool {
public:
    // `threads` == 0 selects the hardware concurrency (at least 1).
    explicit ThreadPool(std::size_t threads = 0);

    // Blocks until every queued task has run, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    // Enqueue one task.  The returned future yields the task's result, or
    // rethrows whatever the task threw.  The packaged_task is moved straight
    // into the queue's move-only wrapper (it fits the inline buffer), so the
    // only allocation is the future's shared state — not the old
    // make_shared<packaged_task> + std::function pair.
    template <typename F>
    [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
        using R = std::invoke_result_t<F>;
        std::packaged_task<R()> task{std::forward<F>(fn)};
        std::future<R> fut = task.get_future();
        {
            const std::lock_guard<std::mutex> lock{mu_};
            queue_.emplace_back(std::move(task));
        }
        cv_.notify_one();
        return fut;
    }

    // Run fn(0) .. fn(n-1) across the pool; returns once all have finished.
    // If any task throws, the exception of the lowest index is rethrown
    // (after every task has completed, so captured state stays alive).
    void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

    // Resolved thread count for a `threads` parameter of 0.
    [[nodiscard]] static std::size_t default_threads() noexcept;

private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<UniqueFunction<void()>> queue_;
    bool stop_{false};
    std::vector<std::thread> workers_;
};

}  // namespace bb

#endif  // BB_UTIL_THREAD_POOL_H
