// Seeded random number generation for the simulator and probe processes.
//
// A thin wrapper around std::mt19937_64 with the distributions the paper's
// experiments need.  Each component of an experiment owns its own Rng (usually
// derived from a master seed), so reordering components does not perturb the
// random streams of the others.
#ifndef BB_UTIL_RNG_H
#define BB_UTIL_RNG_H

#include <cstdint>
#include <random>

#include "util/time.h"

namespace bb {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_{seed} {}

    // Seed a fork(salt) child would be constructed with.  NOTE: advances the
    // parent engine by one draw, exactly like fork() — callers that rely on
    // positional child streams (replica seeding) must fork in index order.
    [[nodiscard]] std::uint64_t fork_seed(std::uint64_t salt) {
        return engine_() ^ (salt * 0x9e3779b97f4a7c15ULL);
    }

    // Derive an independent child stream; `salt` distinguishes siblings.
    [[nodiscard]] Rng fork(std::uint64_t salt) { return Rng{fork_seed(salt)}; }

    [[nodiscard]] double uniform01() { return uniform_(engine_); }

    [[nodiscard]] double uniform(double lo, double hi) {
        return lo + (hi - lo) * uniform01();
    }

    [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

    // Exponential with the given mean (not rate).
    [[nodiscard]] double exponential(double mean) {
        std::exponential_distribution<double> d{1.0 / mean};
        return d(engine_);
    }

    [[nodiscard]] TimeNs exponential(TimeNs mean) {
        return seconds(exponential(mean.to_seconds()));
    }

    [[nodiscard]] double normal(double mean, double stddev) {
        std::normal_distribution<double> d{mean, stddev};
        return d(engine_);
    }

    // Pareto with shape `alpha` and minimum `xm` (heavy-tailed file sizes).
    [[nodiscard]] double pareto(double alpha, double xm) {
        const double u = 1.0 - uniform01();  // in (0, 1]
        return xm / std::pow(u, 1.0 / alpha);
    }

    // Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        std::uniform_int_distribution<std::int64_t> d{lo, hi};
        return d(engine_);
    }

    [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace bb

#endif  // BB_UTIL_RNG_H
