#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/log.h"

namespace bb {

namespace {
bool parse_bool(const std::string& v, bool& out) {
    if (v == "true" || v == "1" || v == "yes" || v == "on") {
        out = true;
        return true;
    }
    if (v == "false" || v == "0" || v == "no" || v == "off") {
        out = false;
        return true;
    }
    return false;
}
}  // namespace

const std::string* FlagSet::add_string(const std::string& name,
                                       const std::string& default_value,
                                       const std::string& help) {
    auto flag = std::make_unique<Flag>();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::string_v;
    flag->s = std::make_unique<std::string>(default_value);
    flag->default_repr = default_value.empty() ? "\"\"" : default_value;
    const std::string* out = flag->s.get();
    flags_.push_back(std::move(flag));
    return out;
}

const double* FlagSet::add_double(const std::string& name, double default_value,
                                  const std::string& help) {
    auto flag = std::make_unique<Flag>();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::double_v;
    flag->d = std::make_unique<double>(default_value);
    flag->default_repr = std::to_string(default_value);
    const double* out = flag->d.get();
    flags_.push_back(std::move(flag));
    return out;
}

const std::int64_t* FlagSet::add_int(const std::string& name, std::int64_t default_value,
                                     const std::string& help) {
    auto flag = std::make_unique<Flag>();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::int_v;
    flag->i = std::make_unique<std::int64_t>(default_value);
    flag->default_repr = std::to_string(default_value);
    const std::int64_t* out = flag->i.get();
    flags_.push_back(std::move(flag));
    return out;
}

const bool* FlagSet::add_bool(const std::string& name, bool default_value,
                              const std::string& help) {
    auto flag = std::make_unique<Flag>();
    flag->name = name;
    flag->help = help;
    flag->kind = Kind::bool_v;
    flag->b = std::make_unique<bool>(default_value);
    flag->default_repr = default_value ? "true" : "false";
    const bool* out = flag->b.get();
    flags_.push_back(std::move(flag));
    return out;
}

FlagSet::Flag* FlagSet::find(const std::string& name) {
    for (auto& f : flags_) {
        if (f->name == name) return f.get();
    }
    return nullptr;
}

bool FlagSet::is_set(const std::string& name) const {
    for (const auto& f : flags_) {
        if (f->name == name) return f->set;
    }
    return false;
}

bool FlagSet::fail(const std::string& message) {
    error_ = message;
    obs::log(obs::LogLevel::error, program_ + ": " + message);
    obs::log(obs::LogLevel::error, "run with --help for usage");
    return false;
}

bool FlagSet::assign(Flag& flag, const std::string& value) {
    switch (flag.kind) {
        case Kind::string_v:
            *flag.s = value;
            break;
        case Kind::double_v: {
            char* end = nullptr;
            const double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                return fail("flag --" + flag.name + " expects a number, got '" + value + "'");
            }
            *flag.d = v;
            break;
        }
        case Kind::int_v: {
            char* end = nullptr;
            const long long v = std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0') {
                return fail("flag --" + flag.name + " expects an integer, got '" + value +
                            "'");
            }
            *flag.i = v;
            break;
        }
        case Kind::bool_v: {
            bool v = false;
            if (!parse_bool(value, v)) {
                return fail("flag --" + flag.name + " expects true/false, got '" + value +
                            "'");
            }
            *flag.b = v;
            break;
        }
    }
    flag.set = true;
    return true;
}

void FlagSet::allow_positionals(std::size_t min_count, std::size_t max_count,
                                std::string placeholder) {
    positionals_allowed_ = true;
    positionals_min_ = min_count;
    positionals_max_ = max_count;
    positionals_placeholder_ = std::move(placeholder);
}

bool FlagSet::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            print_usage();
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            if (!positionals_allowed_) {
                return fail("unexpected positional argument '" + arg + "'");
            }
            if (positionals_.size() >= positionals_max_) {
                return fail("too many positional arguments (at most " +
                            std::to_string(positionals_max_) + " " +
                            positionals_placeholder_ + ")");
            }
            positionals_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        Flag* flag = find(arg);
        if (flag == nullptr) return fail("unknown flag --" + arg);

        if (!has_value) {
            if (flag->kind == Kind::bool_v) {
                // Bare boolean: --flag means true.
                *flag->b = true;
                flag->set = true;
                continue;
            }
            if (i + 1 >= argc) return fail("flag --" + arg + " needs a value");
            value = argv[++i];
        }
        if (!assign(*flag, value)) return false;
    }
    if (positionals_allowed_ && positionals_.size() < positionals_min_) {
        return fail("missing " + positionals_placeholder_ + " (expected at least " +
                    std::to_string(positionals_min_) + ")");
    }
    return true;
}

// Help text is user-facing terminal output by definition, not telemetry, so
// the direct-I/O ban is waived here.
// bb-lint: allow-file(no-direct-io)
void FlagSet::print_usage() const {
    std::printf("%s - %s\n\n", program_.c_str(), description_.c_str());
    if (positionals_allowed_) {
        std::printf("usage: %s [flags] %s\n\n", program_.c_str(),
                    positionals_placeholder_.c_str());
    }
    std::printf("flags:\n");
    for (const auto& f : flags_) {
        std::printf("  --%-18s %s (default: %s)\n", f->name.c_str(), f->help.c_str(),
                    f->default_repr.c_str());
    }
    std::printf("  --%-18s %s\n", "help", "show this message");
}

}  // namespace bb
