#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.h"

namespace bb {

namespace {
// Cached once; pool workers on any thread stripe into the same metrics.
obs::Counter& tasks_counter() {
    static obs::Counter& c = obs::counter("util.pool.tasks_completed");
    return c;
}
obs::Counter& idle_counter() {
    static obs::Counter& c = obs::counter("util.pool.idle_waits");
    return c;
}
obs::Histogram& task_latency_us() {
    static obs::Histogram& h = obs::histogram("util.pool.task_us");
    return h;
}
}  // namespace

std::size_t ThreadPool::default_threads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t n = threads == 0 ? default_threads() : threads;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock{mu_};
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        UniqueFunction<void()> task;
        {
            std::unique_lock<std::mutex> lock{mu_};
            if (!stop_ && queue_.empty()) idle_counter().inc();
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Only pay for the clock reads while observability is on.
        if (obs::enabled()) {
            const auto t0 = std::chrono::steady_clock::now();
            task();  // packaged_task: exceptions land in the future, never here
            const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            task_latency_us().record(us);
            tasks_counter().inc();
        } else {
            task();
        }
    }
}

void ThreadPool::for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        futures.push_back(submit([&fn, i] { fn(i); }));
    }
    std::exception_ptr first;
    for (auto& f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first) first = std::current_exception();
        }
    }
    if (first) std::rethrow_exception(first);
}

}  // namespace bb
