// RAII span tracer emitting Chrome trace_event JSON, loadable in
// chrome://tracing and Perfetto (ui.perfetto.dev).
//
// Collection model: each thread appends fixed-size Event records to its own
// buffer (registered once with the global trace state), so recording a span
// is a clock read plus an uncontended mutex'd push_back — no cross-thread
// traffic until Trace::write() merges the buffers into one JSON document.
// Buffers are capped (kMaxEventsPerThread) and overflow is counted, never
// reallocated without bound.
//
// Activation: tracing is off until Trace::start() (tools call it when
// --trace-out is given) or the BB_OBS_TRACE=1 environment variable.  The
// obs::enabled() kill switch (BB_OBS=off) overrides everything: spans become
// a branch on a cached bool, nothing is buffered, and write() refuses to
// touch the filesystem.
#ifndef BB_OBS_TRACE_H
#define BB_OBS_TRACE_H

#include <cstdint>
#include <string>

#include "obs/control.h"

namespace bb::obs {

class Trace {
public:
    // True while spans are being collected (and obs is enabled).
    [[nodiscard]] static bool active() noexcept;

    // Drop any previously buffered events and begin collecting.  No-op when
    // obs::enabled() is false.
    static void start();

    // Stop collecting; buffered events are kept until clear()/start()/write().
    static void stop() noexcept;

    // Stop, serialize every buffered event as Chrome trace JSON to `path`,
    // and clear the buffers.  Returns false (warning logged, no partial state
    // kept secret) when tracing never collected anything because obs is
    // disabled, or on I/O failure.
    [[nodiscard]] static bool write(const std::string& path);

    // Buffered event count across all thread buffers (tests, diagnostics).
    [[nodiscard]] static std::size_t buffered_events();

    // Events dropped because a thread buffer hit its cap.
    [[nodiscard]] static std::uint64_t dropped_events();

    static void clear();
};

// Scoped duration event ('X' phase): records [construction, destruction) on
// the calling thread.  `name`, `cat`, and `arg_key` must be string literals
// (or otherwise outlive the trace) — spans never copy or allocate.
class Span {
public:
    explicit Span(const char* name, const char* cat = "bb") noexcept
        : Span{name, cat, nullptr, 0} {}
    Span(const char* name, const char* cat, const char* arg_key,
         std::int64_t arg_value) noexcept;
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_;
    const char* cat_;
    const char* arg_key_;
    std::int64_t arg_value_;
    std::uint64_t t0_ns_{0};
    bool live_;
};

// Zero-duration instant event ('i' phase).
void instant(const char* name, const char* cat = "bb");

}  // namespace bb::obs

#endif  // BB_OBS_TRACE_H
