#include "obs/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <sys/time.h>

namespace bb::obs {

namespace {

constexpr int kUnresolved = -1;
std::atomic<int> g_level{kUnresolved};

int level_from_env() noexcept {
    const char* v = std::getenv("BB_LOG");
    int lvl = static_cast<int>(LogLevel::info);
    if (v != nullptr) {
        if (std::strcmp(v, "debug") == 0) lvl = static_cast<int>(LogLevel::debug);
        else if (std::strcmp(v, "info") == 0) lvl = static_cast<int>(LogLevel::info);
        else if (std::strcmp(v, "warn") == 0) lvl = static_cast<int>(LogLevel::warn);
        else if (std::strcmp(v, "error") == 0) lvl = static_cast<int>(LogLevel::error);
        else if (std::strcmp(v, "off") == 0) lvl = static_cast<int>(LogLevel::off);
    }
    g_level.store(lvl, std::memory_order_relaxed);
    return lvl;
}

const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::debug: return "debug";
        case LogLevel::info: return "info";
        case LogLevel::warn: return "warn";
        case LogLevel::error: return "error";
        case LogLevel::off: return "off";
    }
    return "?";
}

}  // namespace

LogLevel log_level() noexcept {
    int lvl = g_level.load(std::memory_order_relaxed);
    if (lvl == kUnresolved) lvl = level_from_env();
    return static_cast<LogLevel>(lvl);
}

void set_log_level(LogLevel level) noexcept {
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
    return level != LogLevel::off && level >= log_level();
}

void log(LogLevel level, std::string_view msg) {
    if (!log_enabled(level)) return;

    struct timeval tv{};
    gettimeofday(&tv, nullptr);
    struct tm tm{};
    const time_t secs = tv.tv_sec;
    gmtime_r(&secs, &tm);

    // One fprintf per line so concurrent loggers cannot interleave a line.
    std::fprintf(stderr, "[%02d:%02d:%02d.%03d %s] %.*s\n", tm.tm_hour, tm.tm_min,
                 tm.tm_sec, static_cast<int>(tv.tv_usec / 1000), level_name(level),
                 static_cast<int>(msg.size()), msg.data());
}

void logf(LogLevel level, const char* fmt, ...) {
    if (!log_enabled(level)) return;
    char buf[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    log(level, buf);
}

}  // namespace bb::obs
