#include "obs/metrics.h"

#include <cstdio>

#include "obs/log.h"
#include "obs/process_stats.h"

namespace bb::obs {

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::string name) : name_{std::move(name)} {
    for (Shard& s : shards_) {
        s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(kBuckets);
        for (std::size_t b = 0; b < kBuckets; ++b) {
            s.buckets[b].store(0, std::memory_order_relaxed);
        }
    }
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot snap;
    std::vector<std::uint64_t> merged(kBuckets, 0);
    for (const Shard& s : shards_) {
        snap.count += s.count.load(std::memory_order_relaxed);
        snap.sum += s.sum.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < kBuckets; ++b) {
            merged[b] += s.buckets[b].load(std::memory_order_relaxed);
        }
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (merged[b] > 0) snap.buckets.emplace_back(bucket_lower_bound(b), merged[b]);
    }
    return snap;
}

std::uint64_t Histogram::Snapshot::quantile(double q) const noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the q-quantile sample (1-based, nearest-rank definition).
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
    std::uint64_t seen = 0;
    for (const auto& [lb, n] : buckets) {
        seen += n;
        if (seen >= rank) return lb;
    }
    return buckets.empty() ? 0 : buckets.back().first;
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::instance() {
    // Leaky singleton: metrics are process-lifetime, and worker threads may
    // still increment during static destruction.
    static Registry* r = new Registry;
    return *r;
}

Counter& Registry::counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mu_};
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string{name},
                               std::unique_ptr<Counter>{new Counter{std::string{name}}})
                 .first;
    }
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mu_};
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string{name},
                             std::unique_ptr<Gauge>{new Gauge{std::string{name}}})
                 .first;
    }
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mu_};
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string{name},
                                 std::unique_ptr<Histogram>{new Histogram{std::string{name}}})
                 .first;
    }
    return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
    Snapshot snap;
    const std::lock_guard<std::mutex> lock{mu_};
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h->snapshot());
    return snap;
}

Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
Histogram& histogram(std::string_view name) { return Registry::instance().histogram(name); }

// --- JSON export -------------------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
}

}  // namespace

std::string metrics_json() {
    const Registry::Snapshot snap = Registry::instance().snapshot();
    std::string out = "{\n  \"counters\": {";
    char buf[192];
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_escaped(out, name);
        std::snprintf(buf, sizeof buf, "\": %llu", static_cast<unsigned long long>(value));
        out += buf;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_escaped(out, name);
        std::snprintf(buf, sizeof buf, "\": %.9g", value);
        out += buf;
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_escaped(out, name);
        std::snprintf(buf, sizeof buf,
                      "\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.6g, "
                      "\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, \"buckets\": [",
                      static_cast<unsigned long long>(h.count),
                      static_cast<unsigned long long>(h.sum), h.mean(),
                      static_cast<unsigned long long>(h.quantile(0.50)),
                      static_cast<unsigned long long>(h.quantile(0.95)),
                      static_cast<unsigned long long>(h.quantile(0.99)));
        out += buf;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            std::snprintf(buf, sizeof buf, "%s[%llu, %llu]", i > 0 ? ", " : "",
                          static_cast<unsigned long long>(h.buckets[i].first),
                          static_cast<unsigned long long>(h.buckets[i].second));
            out += buf;
        }
        out += "]}";
    }
    out += "\n  },\n  \"process\": ";
    out += process_stats_json(process_stats());
    out += "\n}\n";
    return out;
}

bool write_metrics_file(const std::string& path) {
    const std::string doc = metrics_json();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        logf(LogLevel::warn, "cannot write metrics file %s", path.c_str());
        return false;
    }
    const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    const bool closed_ok = std::fclose(f) == 0;
    if (written != doc.size() || !closed_ok) {
        logf(LogLevel::warn, "short write to metrics file %s", path.c_str());
        return false;
    }
    return true;
}

}  // namespace bb::obs
