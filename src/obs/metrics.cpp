#include "obs/metrics.h"

#include <cstdio>

#include "obs/log.h"
#include "obs/process_stats.h"
#include "util/json.h"  // header-only writer; obs must not link bb_util

namespace bb::obs {

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::string name) : name_{std::move(name)} {
    for (Shard& s : shards_) {
        s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(kBuckets);
        for (std::size_t b = 0; b < kBuckets; ++b) {
            s.buckets[b].store(0, std::memory_order_relaxed);
        }
    }
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot snap;
    std::vector<std::uint64_t> merged(kBuckets, 0);
    for (const Shard& s : shards_) {
        snap.count += s.count.load(std::memory_order_relaxed);
        snap.sum += s.sum.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < kBuckets; ++b) {
            merged[b] += s.buckets[b].load(std::memory_order_relaxed);
        }
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (merged[b] > 0) snap.buckets.emplace_back(bucket_lower_bound(b), merged[b]);
    }
    return snap;
}

std::uint64_t Histogram::Snapshot::quantile(double q) const noexcept {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the q-quantile sample (1-based, nearest-rank definition).
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
    std::uint64_t seen = 0;
    for (const auto& [lb, n] : buckets) {
        seen += n;
        if (seen >= rank) return lb;
    }
    return buckets.empty() ? 0 : buckets.back().first;
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::instance() {
    // Leaky singleton: metrics are process-lifetime, and worker threads may
    // still increment during static destruction.
    static Registry* r = new Registry;
    return *r;
}

Counter& Registry::counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mu_};
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string{name},
                               std::unique_ptr<Counter>{new Counter{std::string{name}}})
                 .first;
    }
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mu_};
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string{name},
                             std::unique_ptr<Gauge>{new Gauge{std::string{name}}})
                 .first;
    }
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
    const std::lock_guard<std::mutex> lock{mu_};
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string{name},
                                 std::unique_ptr<Histogram>{new Histogram{std::string{name}}})
                 .first;
    }
    return *it->second;
}

Registry::Snapshot Registry::snapshot() const {
    Snapshot snap;
    const std::lock_guard<std::mutex> lock{mu_};
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h->snapshot());
    return snap;
}

Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
Histogram& histogram(std::string_view name) { return Registry::instance().histogram(name); }

// --- JSON export -------------------------------------------------------------

std::string metrics_json() {
    const Registry::Snapshot snap = Registry::instance().snapshot();
    JsonWriter w{JsonWriter::Options{.indent = 2, .space_after_colon = true}};
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, value] : snap.counters) w.key(name).value_uint(value);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, value] : snap.gauges) w.key(name).value_double(value, "%.9g");
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : snap.histograms) {
        w.key(name).begin_object_inline();
        w.key("count").value_uint(h.count);
        w.key("sum").value_uint(h.sum);
        w.key("mean").value_double(h.mean(), "%.6g");
        w.key("p50").value_uint(h.quantile(0.50));
        w.key("p95").value_uint(h.quantile(0.95));
        w.key("p99").value_uint(h.quantile(0.99));
        w.key("buckets").begin_array_inline();
        for (const auto& [lower_bound, count] : h.buckets) {
            w.begin_array_inline().value_uint(lower_bound).value_uint(count).end_array();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();
    w.key("process").value_raw(process_stats_json(process_stats()));
    w.end_object();
    return w.take() + "\n";
}

bool write_metrics_file(const std::string& path) {
    const std::string doc = metrics_json();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        logf(LogLevel::warn, "cannot write metrics file %s", path.c_str());
        return false;
    }
    const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    const bool closed_ok = std::fclose(f) == 0;
    if (written != doc.size() || !closed_ok) {
        logf(LogLevel::warn, "short write to metrics file %s", path.c_str());
        return false;
    }
    return true;
}

}  // namespace bb::obs
