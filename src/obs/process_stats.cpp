#include "obs/process_stats.h"

#include <cstdio>

#include <sys/resource.h>

namespace bb::obs {

ProcessStats process_stats() noexcept {
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    ProcessStats ps;
    ps.max_rss_kb = ru.ru_maxrss;  // kilobytes on Linux
    ps.user_cpu_s = static_cast<double>(ru.ru_utime.tv_sec) +
                    static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    ps.system_cpu_s = static_cast<double>(ru.ru_stime.tv_sec) +
                      static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    return ps;
}

std::string process_stats_json(const ProcessStats& ps) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"max_rss_kb\":%ld,\"user_cpu_s\":%.6f,\"system_cpu_s\":%.6f}",
                  ps.max_rss_kb, ps.user_cpu_s, ps.system_cpu_s);
    return buf;
}

}  // namespace bb::obs
