// Process-lifetime metrics registry: counters, gauges, and log-linear
// histograms for the measurement machinery itself (events dispatched, queue
// drops, reports scored, task latencies).
//
// Hot-path design: each metric is striped over kShards cache-line-padded
// cells; a thread picks its own cell once (thread-local index, distinct for
// the first kShards threads) and increments it with a relaxed atomic add, so
// concurrent writers never touch the same cache line until snapshot() merges
// the shards.  Every mutating call first branches on the cached obs::enabled()
// bool (BB_OBS=off), so a disabled build pays one predictable branch.
//
// Metrics live for the whole process: registration hands out references that
// never move or die, so call sites can cache them (typically in a
// function-local static) and skip the registry lock forever after.
#ifndef BB_OBS_METRICS_H
#define BB_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/control.h"

namespace bb::obs {

inline constexpr std::size_t kShards = 32;  // power of two

namespace detail {
inline std::atomic<std::size_t> g_next_shard{0};
}  // namespace detail

// Stable per-thread stripe: the first kShards threads get distinct cells,
// later threads wrap around (increments stay exact, just shared).
[[nodiscard]] inline std::size_t shard_index() noexcept {
    thread_local const std::size_t idx =
        detail::g_next_shard.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return idx;
}

// Monotonic counter.  value() is exact with respect to completed inc() calls.
class Counter {
public:
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void inc(std::uint64_t n = 1) noexcept {
        if (!enabled()) return;
        cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t sum = 0;
        for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
        return sum;
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    friend class Registry;
    explicit Counter(std::string name) : name_{std::move(name)} {}

    struct alignas(64) Cell {
        std::atomic<std::uint64_t> v{0};
    };

    std::string name_;
    Cell cells_[kShards];
};

// Last-write-wins double value (queue depth, live loss rate).
class Gauge {
public:
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double v) noexcept {
        if (!enabled()) return;
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        __builtin_memcpy(&bits, &v, sizeof bits);
        bits_.store(bits, std::memory_order_relaxed);
    }

    [[nodiscard]] double value() const noexcept {
        const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
        double v;
        __builtin_memcpy(&v, &bits, sizeof v);
        return v;
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    friend class Registry;
    explicit Gauge(std::string name) : name_{std::move(name)} {}

    std::string name_;
    std::atomic<std::uint64_t> bits_{0};  // bit pattern of 0.0
};

// Log-linear histogram of non-negative integer samples (latencies in us,
// sizes in bytes): 2^kSubBits linear sub-buckets per power of two, so the
// relative bucket width is bounded by 1/2^kSubBits (25% here) at any
// magnitude while the whole uint64 range needs only kBuckets cells.
class Histogram {
public:
    static constexpr int kSubBits = 2;
    static constexpr std::size_t kSubCount = std::size_t{1} << kSubBits;  // 4
    // Buckets 0..kSubCount-1 are exact; each later group of kSubCount spans
    // one octave [2^m, 2^(m+1)) for m = kSubBits .. 63.
    static constexpr std::size_t kBuckets = kSubCount + (64 - kSubBits) * kSubCount;

    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void record(std::int64_t value) noexcept {
        if (!enabled()) return;
        const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
        Shard& s = shards_[shard_index()];
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
        s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
        if (v < kSubCount) return static_cast<std::size_t>(v);
        const int msb = 63 - __builtin_clzll(v);
        const std::size_t group = static_cast<std::size_t>(msb) - kSubBits + 1;
        const std::size_t sub = (v >> (msb - kSubBits)) & (kSubCount - 1);
        return group * kSubCount + sub;
    }

    // Smallest value mapping to `bucket` (inverse of bucket_index).
    [[nodiscard]] static std::uint64_t bucket_lower_bound(std::size_t bucket) noexcept {
        if (bucket < kSubCount) return bucket;
        const std::size_t group = bucket / kSubCount;
        const std::size_t sub = bucket % kSubCount;
        const int msb = static_cast<int>(group) + kSubBits - 1;
        return (std::uint64_t{1} << msb) + (std::uint64_t{sub} << (msb - kSubBits));
    }

    struct Snapshot {
        std::uint64_t count{0};
        std::uint64_t sum{0};
        // (bucket lower bound, count), non-empty buckets only, ascending.
        std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

        [[nodiscard]] double mean() const noexcept {
            return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
        }
        // Lower bound of the bucket containing the q-quantile sample.
        [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
    };

    [[nodiscard]] Snapshot snapshot() const;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    friend class Registry;
    explicit Histogram(std::string name);

    struct alignas(64) Shard {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    };

    std::string name_;
    Shard shards_[kShards];
};

// Name -> metric, one per process.  Lookup takes a mutex; the returned
// references are stable for the process lifetime, so look up once and cache.
class Registry {
public:
    static Registry& instance();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    struct Snapshot {
        std::vector<std::pair<std::string, std::uint64_t>> counters;  // sorted by name
        std::vector<std::pair<std::string, double>> gauges;
        std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    };

    // Consistent-enough view for reporting: each metric is read atomically,
    // concurrent writers may land in either side of the cut.
    [[nodiscard]] Snapshot snapshot() const;

private:
    Registry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Convenience create-or-get wrappers over Registry::instance().
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

// JSON document with the full registry snapshot plus process stats
// (counters/gauges/histograms keyed by name, deterministically ordered).
[[nodiscard]] std::string metrics_json();

// Write metrics_json() to `path`; false (with a warning log) on I/O failure.
[[nodiscard]] bool write_metrics_file(const std::string& path);

}  // namespace bb::obs

#endif  // BB_OBS_METRICS_H
