#include "obs/control.h"

#include <cstdlib>
#include <cstring>

namespace bb::obs::detail {

int resolve_enabled_from_env() noexcept {
    const char* v = std::getenv("BB_OBS");
    const bool off = v != nullptr &&
                     (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
                      std::strcmp(v, "false") == 0 || std::strcmp(v, "no") == 0);
    const int s = off ? 0 : 1;
    g_obs_state.store(s, std::memory_order_relaxed);
    return s;
}

}  // namespace bb::obs::detail
