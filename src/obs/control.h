// Global observability kill switch.
//
// Every obs hook (metric increment, span record, log line) first branches on
// enabled(): a cached boolean resolved once from the BB_OBS environment
// variable (BB_OBS=off|0|false|no disables, anything else — including unset —
// enables).  The fast path is a single relaxed atomic load, so instrumented
// hot loops pay one predictable branch when observability is off.
//
// set_enabled() overrides the environment at runtime (used by tests and by
// bench/micro_obs to measure the on/off delta inside one process).
#ifndef BB_OBS_CONTROL_H
#define BB_OBS_CONTROL_H

#include <atomic>

namespace bb::obs {

namespace detail {
// -1 = not yet resolved from the environment, 0 = off, 1 = on.
inline std::atomic<int> g_obs_state{-1};
// Reads BB_OBS, stores the result in g_obs_state, and returns it.  Racing
// first calls are harmless: both resolve the same environment.
int resolve_enabled_from_env() noexcept;
}  // namespace detail

[[nodiscard]] inline bool enabled() noexcept {
    const int s = detail::g_obs_state.load(std::memory_order_relaxed);
    return s >= 0 ? s == 1 : detail::resolve_enabled_from_env() == 1;
}

inline void set_enabled(bool on) noexcept {
    detail::g_obs_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace bb::obs

#endif  // BB_OBS_CONTROL_H
