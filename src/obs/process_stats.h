// Process-level resource accounting (getrusage), shared by every tool and
// bench instead of each one inlining its own max-RSS call.
#ifndef BB_OBS_PROCESS_STATS_H
#define BB_OBS_PROCESS_STATS_H

#include <string>

namespace bb::obs {

struct ProcessStats {
    long max_rss_kb{0};      // peak resident set size, KiB (Linux ru_maxrss)
    double user_cpu_s{0.0};
    double system_cpu_s{0.0};
};

[[nodiscard]] ProcessStats process_stats() noexcept;

// One JSON object: {"max_rss_kb":..,"user_cpu_s":..,"system_cpu_s":..}
[[nodiscard]] std::string process_stats_json(const ProcessStats& ps);

}  // namespace bb::obs

#endif  // BB_OBS_PROCESS_STATS_H
