#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/log.h"

namespace bb::obs {

namespace {

// Safety cap per thread buffer; overflow increments `dropped` instead of
// growing without bound when tracing is left on for a very long run.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct Event {
    const char* name;
    const char* cat;
    const char* arg_key;  // nullptr = no args object
    std::int64_t arg_value;
    std::uint64_t ts_ns;   // steady-clock, absolute
    std::uint64_t dur_ns;  // 0 for instant events
    char ph;               // 'X' or 'i'
};

struct ThreadBuf {
    std::mutex mu;  // uncontended except while write()/clear() merges
    std::vector<Event> events;
    std::uint64_t dropped{0};
    std::uint32_t tid{0};
};

struct State {
    // -1 = activation not yet resolved from BB_OBS_TRACE, 0 = off, 1 = on.
    std::atomic<int> active{-1};
    std::atomic<std::uint64_t> t0_ns{0};
    std::mutex mu;  // guards bufs
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    std::atomic<std::uint32_t> next_tid{1};
};

State& state() {
    static State* s = new State;  // leaky: threads may record during shutdown
    return *s;
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

int resolve_active_from_env() noexcept {
    State& s = state();
    const char* v = std::getenv("BB_OBS_TRACE");
    const bool on =
        v != nullptr && (std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
                         std::strcmp(v, "true") == 0);
    int expected = -1;
    if (s.active.compare_exchange_strong(expected, on ? 1 : 0,
                                         std::memory_order_relaxed)) {
        if (on) s.t0_ns.store(now_ns(), std::memory_order_relaxed);
    }
    return s.active.load(std::memory_order_relaxed);
}

ThreadBuf& thread_buf() {
    thread_local std::shared_ptr<ThreadBuf> buf = [] {
        auto b = std::make_shared<ThreadBuf>();
        State& s = state();
        b->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock{s.mu};
        s.bufs.push_back(b);
        return b;
    }();
    return *buf;
}

void append(const Event& ev) {
    ThreadBuf& buf = thread_buf();
    const std::lock_guard<std::mutex> lock{buf.mu};
    if (buf.events.size() >= kMaxEventsPerThread) {
        ++buf.dropped;
        return;
    }
    buf.events.push_back(ev);
}

}  // namespace

bool Trace::active() noexcept {
    if (!enabled()) return false;
    const int a = state().active.load(std::memory_order_relaxed);
    return (a >= 0 ? a : resolve_active_from_env()) == 1;
}

void Trace::start() {
    if (!enabled()) return;
    clear();
    State& s = state();
    s.t0_ns.store(now_ns(), std::memory_order_relaxed);
    s.active.store(1, std::memory_order_relaxed);
}

void Trace::stop() noexcept { state().active.store(0, std::memory_order_relaxed); }

void Trace::clear() {
    State& s = state();
    const std::lock_guard<std::mutex> lock{s.mu};
    for (const auto& buf : s.bufs) {
        const std::lock_guard<std::mutex> buf_lock{buf->mu};
        buf->events.clear();
        buf->dropped = 0;
    }
}

std::size_t Trace::buffered_events() {
    State& s = state();
    std::size_t n = 0;
    const std::lock_guard<std::mutex> lock{s.mu};
    for (const auto& buf : s.bufs) {
        const std::lock_guard<std::mutex> buf_lock{buf->mu};
        n += buf->events.size();
    }
    return n;
}

std::uint64_t Trace::dropped_events() {
    State& s = state();
    std::uint64_t n = 0;
    const std::lock_guard<std::mutex> lock{s.mu};
    for (const auto& buf : s.bufs) {
        const std::lock_guard<std::mutex> buf_lock{buf->mu};
        n += buf->dropped;
    }
    return n;
}

bool Trace::write(const std::string& path) {
    if (!enabled()) {
        log(LogLevel::warn, "trace write skipped: observability is disabled (BB_OBS=off)");
        return false;
    }
    stop();

    State& s = state();
    const std::uint64_t t0 = s.t0_ns.load(std::memory_order_relaxed);

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        logf(LogLevel::warn, "cannot write trace file %s", path.c_str());
        return false;
    }

    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
    bool first = true;
    std::uint64_t total_dropped = 0;
    {
        const std::lock_guard<std::mutex> lock{s.mu};
        for (const auto& buf : s.bufs) {
            const std::lock_guard<std::mutex> buf_lock{buf->mu};
            if (!buf->events.empty()) {
                // Thread-name metadata so Perfetto labels the tracks.
                std::fprintf(f,
                             "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                             "\"tid\":%u,\"args\":{\"name\":\"bb-thread-%u\"}}",
                             first ? "" : ",", buf->tid, buf->tid);
                first = false;
            }
            for (const Event& ev : buf->events) {
                const double ts_us =
                    ev.ts_ns >= t0 ? static_cast<double>(ev.ts_ns - t0) * 1e-3 : 0.0;
                std::fprintf(f, ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                                "\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                             ev.name, ev.cat, ev.ph, buf->tid, ts_us);
                if (ev.ph == 'X') {
                    std::fprintf(f, ",\"dur\":%.3f", static_cast<double>(ev.dur_ns) * 1e-3);
                }
                if (ev.ph == 'i') std::fputs(",\"s\":\"t\"", f);
                if (ev.arg_key != nullptr) {
                    std::fprintf(f, ",\"args\":{\"%s\":%lld}", ev.arg_key,
                                 static_cast<long long>(ev.arg_value));
                }
                std::fputc('}', f);
            }
            buf->events.clear();
            total_dropped += buf->dropped;
            buf->dropped = 0;
        }
    }
    std::fputs("\n]}\n", f);
    const bool ok = std::ferror(f) == 0;
    const bool closed_ok = std::fclose(f) == 0;
    if (total_dropped > 0) {
        logf(LogLevel::warn, "trace dropped %llu events (per-thread buffer cap)",
             static_cast<unsigned long long>(total_dropped));
    }
    if (!ok || !closed_ok) {
        logf(LogLevel::warn, "short write to trace file %s", path.c_str());
        return false;
    }
    return true;
}

Span::Span(const char* name, const char* cat, const char* arg_key,
           std::int64_t arg_value) noexcept
    : name_{name}, cat_{cat}, arg_key_{arg_key}, arg_value_{arg_value},
      live_{Trace::active()} {
    if (live_) t0_ns_ = now_ns();
}

Span::~Span() {
    if (!live_) return;
    const std::uint64_t t1 = now_ns();
    append(Event{name_, cat_, arg_key_, arg_value_, t0_ns_,
                 t1 >= t0_ns_ ? t1 - t0_ns_ : 0, 'X'});
}

void instant(const char* name, const char* cat) {
    if (!Trace::active()) return;
    append(Event{name, cat, nullptr, 0, now_ns(), 0, 'i'});
}

}  // namespace bb::obs
