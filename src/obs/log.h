// One logging sink for the whole tree: timestamped, level-filtered lines on
// stderr.  Replaces the ad-hoc fprintf(stderr, ...) sites that used to be
// scattered through util so warnings and usage errors share one format and
// one filter.
//
// The threshold comes from the BB_LOG environment variable
// (debug|info|warn|error|off, default info) and can be overridden at runtime
// with set_log_level().  Lines below the threshold cost one relaxed atomic
// load and a branch.
#ifndef BB_OBS_LOG_H
#define BB_OBS_LOG_H

#include <string_view>

namespace bb::obs {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

// True when a message at `level` would be emitted (callers can skip building
// expensive messages).
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

// Emit "[HH:MM:SS.mmm level] msg\n" on stderr when `level` passes the filter.
void log(LogLevel level, std::string_view msg);

// printf-style convenience wrapper around log().
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace bb::obs

#endif  // BB_OBS_LOG_H
