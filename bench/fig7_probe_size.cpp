// Figure 7: probability that a probe of N back-to-back packets experiences
// no loss even though it was sent during a loss episode, for N = 1..10,
// under infinite-TCP and CBR traffic.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common.h"

namespace {

using namespace bb::bench;

// Fraction of probes sent inside a true loss episode that saw no loss.
double miss_probability(const bb::scenarios::WorkloadConfig& base_wl, int probe_packets) {
    auto wl = base_wl;
    wl.duration = std::min(wl.duration, bb::seconds_i(300));
    bb::scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};

    bb::probes::FixedIntervalProber::Config pc;
    pc.interval = bb::milliseconds(10);  // paper: fixed 10 ms so probes hit episodes
    pc.packets_per_probe = probe_packets;
    auto& prober = exp.add_fixed_prober(pc);
    exp.run();

    const auto episodes = exp.episodes();
    const auto outcomes = prober.outcomes();

    std::size_t in_episode = 0;
    std::size_t unscathed = 0;
    auto it = episodes.begin();
    for (const auto& po : outcomes) {
        while (it != episodes.end() && it->end < po.send_time) ++it;
        if (it == episodes.end()) break;
        if (po.send_time >= it->start && po.send_time <= it->end) {
            ++in_episode;
            if (!po.any_lost()) ++unscathed;
        }
    }
    return in_episode > 0
               ? static_cast<double>(unscathed) / static_cast<double>(in_episode)
               : 0.0;
}

}  // namespace

int main() {
    print_header("Figure 7: P(probe of N packets sees no loss during a loss episode)",
                 "Sommers et al., SIGCOMM 2005, Figure 7");
    std::printf("%-4s | %-14s | %-14s\n", "N", "infinite TCP", "CBR bursts");
    std::printf("-----------------------------------\n");
    std::filesystem::create_directories("fig_data");
    std::ofstream csv{"fig_data/fig7_probe_size.csv"};
    csv << "probe_packets,tcp_miss_probability,cbr_miss_probability\n";
    const auto tcp_wl = infinite_tcp_workload();
    const auto cbr_wl = cbr_uniform_workload();
    for (int n = 1; n <= 10; ++n) {
        const double tcp_miss = miss_probability(tcp_wl, n);
        const double cbr_miss = miss_probability(cbr_wl, n);
        std::printf("%-4d | %-14.3f | %-14.3f\n", n, tcp_miss, cbr_miss);
        csv << n << ',' << tcp_miss << ',' << cbr_miss << '\n';
    }
    std::printf("data written to fig_data/fig7_probe_size.csv\n");
    std::printf("\nexpected shape (paper): the miss probability falls as probes get\n"
                "longer; a few packets per probe already make loss episodes much more\n"
                "reliably visible (motivating BADABING's 3-packet probes).\n");
    return 0;
}
