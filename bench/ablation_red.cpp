// Extension experiment: BADABING against a RED (AQM) bottleneck.
//
// The paper measures a drop-tail GSR and asks (§7) how the method behaves in
// "more complex environments".  Under RED, drops are spread in time and the
// queue is held below the tail, so (a) "loss episodes" become long, diffuse
// regions of low-grade loss, and (b) the (1-alpha)*OWD_max delay rule loses
// its sharp high-water edge.
#include <cstdio>

#include "common.h"

namespace {

using namespace bb::bench;

void run_discipline(bb::scenarios::QueueDiscipline discipline, const char* label) {
    auto tb = bench_testbed();
    tb.discipline = discipline;
    // Push RED into its early-drop regime with sustained TCP load.
    auto wl = infinite_tcp_workload();

    bb::scenarios::Experiment exp{tb, wl, truth_for(wl)};
    bb::probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();

    const auto truth = exp.truth();
    const auto res = tool.analyze(exp.default_marking(0.3));
    const double est_dur =
        res.duration_basic.valid ? res.duration_basic.seconds(tool.slot_width()) : 0.0;
    std::printf("%-10s | %-9.4f %-9.4f | %-9.3f %-9.3f | %-8zu | %.3f\n", label,
                truth.frequency, res.frequency.value, truth.mean_duration_s, est_dur,
                truth.episodes, res.validation.pair_asymmetry);
}

}  // namespace

int main() {
    print_header("Ablation: drop-tail vs RED bottleneck (TCP cross traffic, p = 0.3)",
                 "extension of Sommers et al., SIGCOMM 2005, Section 7 discussion");
    std::printf("%-10s | %-19s | %-19s | %-8s | %s\n", "queue", "loss frequency",
                "loss duration (s)", "episodes", "validation");
    std::printf("%-10s | %-9s %-9s | %-9s %-9s | %-8s | %s\n", "", "true", "est", "true",
                "est", "", "pair-asym");
    std::printf("------------------------------------------------------------------------\n");
    run_discipline(bb::scenarios::QueueDiscipline::drop_tail, "drop-tail");
    run_discipline(bb::scenarios::QueueDiscipline::red, "RED");
    std::printf("\nexpected shape: RED spreads drops in time, so the router-centric\n"
                "episode clustering produces fewer, longer episodes, and the delay\n"
                "rule contributes less (the queue never rides the tail); estimates\n"
                "degrade relative to the crisp drop-tail case, motivating the paper's\n"
                "future-work question.\n");
    return 0;
}
