// Table 6: BADABING loss estimates for Harpoon-style web-like traffic,
// over p in {0.1 .. 0.9}.  Rows are multi-replica aggregates (mean +/- 95%
// bootstrap CI); see table4 for BB_BENCH_REPLICAS / BB_BENCH_THREADS /
// BB_BENCH_JSON.
#include "common.h"

int main() {
    using namespace bb::bench;
    std::vector<MultiRow> rows;
    for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        rows.push_back(run_badabing_rows(web_workload(), p, bench_replicas()));
    }
    print_badabing_ci_table("Table 6: BADABING, web-like traffic",
                            "Sommers et al., SIGCOMM 2005, Table 6", rows,
                            bb::milliseconds(5));
    maybe_write_bench_json("table6_badabing_web", rows, bb::milliseconds(5));
    std::printf("note: the probe traffic itself perturbs this reactive workload, so\n"
                "true values differ slightly across rows and replicas, exactly as in\n"
                "the paper.\n");
    return 0;
}
