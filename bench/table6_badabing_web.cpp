// Table 6: BADABING loss estimates for Harpoon-style web-like traffic,
// over p in {0.1 .. 0.9}.
#include "common.h"

int main() {
    using namespace bb::bench;
    std::vector<BadabingRow> rows;
    for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        rows.push_back(run_badabing_row(web_workload(), p));
    }
    print_badabing_table("Table 6: BADABING, web-like traffic",
                         "Sommers et al., SIGCOMM 2005, Table 6", rows,
                         bb::milliseconds(5));
    std::printf("note: the probe traffic itself perturbs this reactive workload, so\n"
                "true values differ slightly across rows, exactly as in the paper.\n");
    return 0;
}
