#include "zing_tables.h"

#include <cstdio>

namespace bb::bench {

namespace {

struct ZingRow {
    std::string label;
    measure::TruthSummary truth;
    probes::ZingResult result;
};

ZingRow run_one(const scenarios::WorkloadConfig& wl, TimeNs mean_interval,
                std::int32_t packet_bytes, const std::string& label) {
    scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};
    probes::ZingProber::Config zc;
    zc.mean_interval = mean_interval;
    zc.packet_bytes = packet_bytes;
    auto& zing = exp.add_zing(zc);
    exp.run();
    return ZingRow{label, exp.truth(), zing.result()};
}

}  // namespace

void run_zing_table(const std::string& title, const std::string& paper_ref,
                    const scenarios::WorkloadConfig& wl) {
    print_header(title, paper_ref);

    // Paper §4.2: lambda = 100 ms with 256 B payloads, lambda = 50 ms with
    // 64 B payloads.
    const ZingRow rows[] = {
        run_one(wl, milliseconds(100), 256, "ZING (10Hz)"),
        run_one(wl, milliseconds(50), 64, "ZING (20Hz)"),
    };

    print_truth(rows[0].truth);
    std::printf("%-14s | %-10s | %-18s\n", "", "frequency", "duration mu (sigma) s");
    std::printf("----------------------------------------------------------------\n");
    std::printf("%-14s | %-10.4f | %.3f (%.3f)\n", "true values", rows[0].truth.frequency,
                rows[0].truth.mean_duration_s, rows[0].truth.sd_duration_s);
    for (const auto& r : rows) {
        std::printf("%-14s | %-10.4f | %.3f (%.3f)   [%llu/%llu probes lost, %zu runs, "
                    "max run %llu]\n",
                    r.label.c_str(), r.result.loss_frequency, r.result.mean_duration_s,
                    r.result.sd_duration_s, static_cast<unsigned long long>(r.result.lost),
                    static_cast<unsigned long long>(r.result.sent), r.result.loss_runs,
                    static_cast<unsigned long long>(r.result.max_run_length));
    }
    std::printf("\nexpected shape (paper): ZING frequencies fall well below the true\n"
                "episode frequency and durations collapse toward zero because Poisson\n"
                "probes rarely coincide with (let alone span) loss episodes.\n\n");
}

}  // namespace bb::bench
