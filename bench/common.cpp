#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "scenarios/spec.h"
#include "util/json_io.h"

namespace bb::bench {

namespace {
std::int64_t env_int(const char* name, std::int64_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr ? std::atoll(v) : fallback;
}

// Every bench preset is rendered as a scenario-DSL document (env overrides
// substituted into the text) and parsed by the same layer that serves
// bb_sweep, so the benches and spec-driven runs cannot drift apart.
scenarios::ScenarioSpec parse_preset(const std::string& traffic_json) {
    char buf[1024];
    std::snprintf(buf, sizeof buf,
                  "{\"link\": {\"rate_mbps\": %lld}, \"traffic\": %s, "
                  "\"run\": {\"seed\": %lld}}",
                  static_cast<long long>(env_int("BB_BENCH_RATE_MBPS", 30)),
                  traffic_json.c_str(),
                  static_cast<long long>(env_int("BB_BENCH_SEED", 7)));
    auto res = scenarios::load_scenario_spec_text(buf, "<bench preset>");
    if (!res.ok) {
        std::fprintf(stderr, "bench preset rejected by scenario DSL: %s\n",
                     res.error.c_str());
        std::abort();
    }
    return res.spec;
}

std::string traffic_preset(const char* kind, const std::string& extra) {
    char buf[512];
    std::snprintf(buf, sizeof buf, "{\"kind\": \"%s\", \"duration_s\": %lld%s}", kind,
                  static_cast<long long>(env_int("BB_BENCH_DURATION_S", 900)),
                  extra.c_str());
    return buf;
}
}  // namespace

TimeNs bench_duration() { return seconds_i(env_int("BB_BENCH_DURATION_S", 900)); }

std::uint64_t bench_seed() {
    return static_cast<std::uint64_t>(env_int("BB_BENCH_SEED", 7));
}

std::size_t bench_replicas() {
    const std::int64_t n = env_int("BB_BENCH_REPLICAS", 3);
    return n < 1 ? 1 : static_cast<std::size_t>(n);
}

std::size_t bench_threads() {
    const std::int64_t n = env_int("BB_BENCH_THREADS", 0);
    return n < 0 ? 0 : static_cast<std::size_t>(n);
}

scenarios::TestbedConfig bench_testbed() {
    return parse_preset(traffic_preset("cbr_uniform", "")).testbed;
}

scenarios::ScenarioSpec bench_scenario_spec() {
    return parse_preset(traffic_preset("cbr_uniform", ""));
}

scenarios::WorkloadConfig infinite_tcp_workload() {
    // 40 flows on OC3 ~= 10 flows at 30 Mb/s (same per-flow bottleneck share).
    const std::int64_t flows =
        env_int("BB_BENCH_TCP_FLOWS", 10 * env_int("BB_BENCH_RATE_MBPS", 30) / 30);
    char extra[96];
    std::snprintf(extra, sizeof extra, ", \"tcp_flows\": %lld",
                  static_cast<long long>(flows));
    return parse_preset(traffic_preset("infinite_tcp", extra)).workload;
}

scenarios::WorkloadConfig cbr_uniform_workload() {
    return parse_preset(traffic_preset(
                            "cbr_uniform", ", \"episode_ms\": 68, \"mean_episode_gap_s\": 10"))
        .workload;
}

scenarios::WorkloadConfig cbr_multi_workload() {
    return parse_preset(
               traffic_preset("cbr_multi",
                              ", \"episode_ms\": 68, \"mean_episode_gap_s\": 10, "
                              "\"episode_ms_list\": [50, 100, 150]"))
        .workload;
}

scenarios::WorkloadConfig web_workload() {
    // Tuned so overload episodes appear roughly every 20 s (paper §4.2),
    // scaled with the bottleneck rate.
    const double rate_per_s =
        5.0 * static_cast<double>(env_int("BB_BENCH_RATE_MBPS", 30)) / 30.0;
    char extra[96];
    std::snprintf(extra, sizeof extra, ", \"web_session_rate_per_s\": %.17g", rate_per_s);
    return parse_preset(traffic_preset("web", extra)).workload;
}

scenarios::TruthConfig truth_for(const scenarios::WorkloadConfig& wl) {
    scenarios::TruthConfig tc;
    tc.delay_based = wl.kind == scenarios::TrafficKind::web;
    return tc;
}

void print_header(const std::string& title, const std::string& paper_ref) {
    std::printf("================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("testbed: %lld Mb/s bottleneck, 50 ms one-way delay, 100 ms buffer\n",
                static_cast<long long>(bench_testbed().bottleneck_rate_bps / 1'000'000));
    std::printf("run: %.0f s, seed %llu\n", bench_duration().to_seconds(),
                static_cast<unsigned long long>(bench_seed()));
    std::printf("================================================================\n");
}

void print_truth(const measure::TruthSummary& t) {
    std::printf("ground truth: frequency %.4f | duration mu %.3f s (sigma %.3f) | "
                "%zu episodes, %llu drops\n",
                t.frequency, t.mean_duration_s, t.sd_duration_s, t.episodes,
                static_cast<unsigned long long>(t.total_drops));
}

BadabingRow run_badabing_row(const scenarios::WorkloadConfig& wl, double p, bool improved) {
    scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};
    probes::BadabingConfig bc;
    bc.p = p;
    bc.improved = improved;
    bc.total_slots = 0;  // sized to the workload window
    auto& tool = exp.add_badabing(bc);
    exp.run();

    BadabingRow row;
    row.p = p;
    row.truth = exp.truth();
    row.result = tool.analyze(exp.default_marking(p));
    row.offered_load =
        tool.offered_load_fraction(exp.testbed().config().bottleneck_rate_bps);
    return row;
}

void print_badabing_table(const std::string& title, const std::string& paper_ref,
                          const std::vector<BadabingRow>& rows, TimeNs slot_width) {
    print_header(title, paper_ref);
    std::printf("%-5s | %-20s | %-20s | %-9s | %s\n", "p", "loss frequency", "loss duration (s)",
                "probe", "validation");
    std::printf("%-5s | %-9s %-10s | %-9s %-10s | %-9s | %s\n", "", "true", "badabing", "true",
                "badabing", "load", "pair-asym");
    std::printf("----------------------------------------------------------------\n");
    for (const auto& r : rows) {
        const double est_dur = r.result.duration_basic.valid
                                   ? r.result.duration_basic.seconds(slot_width)
                                   : 0.0;
        std::printf("%-5.1f | %-9.4f %-10.4f | %-9.3f %-10.3f | %-9.4f | %.3f\n", r.p,
                    r.truth.frequency, r.result.frequency.value, r.truth.mean_duration_s,
                    est_dur, r.offered_load, r.result.validation.pair_asymmetry);
    }
    std::printf("\n");
}

MultiRow run_badabing_rows(const scenarios::WorkloadConfig& wl, double p,
                           std::size_t n_replicas, bool improved) {
    scenarios::ReplicaPlan plan;
    plan.testbed = bench_testbed();
    plan.workload = wl;
    plan.truth = truth_for(wl);
    plan.probe.p = p;
    plan.probe.improved = improved;
    plan.probe.total_slots = 0;  // sized to the workload window

    scenarios::ReplicaRunner::Config rc;
    rc.replicas = n_replicas;
    rc.threads = bench_threads();
    rc.master_seed = wl.seed;

    const scenarios::ReplicaRunner runner{rc};
    MultiRow row;
    row.p = p;
    row.replicas = runner.run(plan);
    row.aggregate = runner.aggregate(plan, row.replicas);
    return row;
}

void print_badabing_ci_table(const std::string& title, const std::string& paper_ref,
                             const std::vector<MultiRow>& rows, TimeNs slot_width) {
    (void)slot_width;  // durations are aggregated in seconds already
    print_header(title, paper_ref);
    const std::size_t n = rows.empty() ? 0 : rows.front().replicas.size();
    std::printf("replicas: %zu per row, mean +/- 95%% bootstrap CI\n", n);
    std::printf("%-5s | %-31s | %-31s | %s\n", "p", "loss frequency",
                "loss duration (s)", "probe");
    std::printf("%-5s | %-9s %-21s | %-9s %-21s | %s\n", "", "true", "badabing (CI)", "true",
                "badabing (CI)", "load");
    std::printf("--------------------------------------------------------------------------------\n");
    for (const auto& r : rows) {
        const auto& a = r.aggregate;
        std::printf("%-5.1f | %-9.4f %.4f [%.4f,%.4f] | %-9.3f %.3f [%.3f,%.3f]   | %.4f\n",
                    r.p, a.true_frequency.mean, a.est_frequency.mean, a.est_frequency.ci.lo,
                    a.est_frequency.ci.hi, a.true_duration_s.mean, a.est_duration_s.mean,
                    a.est_duration_s.ci.lo, a.est_duration_s.ci.hi, a.offered_load.mean);
    }
    std::printf("\n");
}

std::string maybe_write_bench_json(const std::string& bench_name,
                                   const std::vector<MultiRow>& rows, TimeNs slot_width) {
    const char* dir = std::getenv("BB_BENCH_JSON");
    if (dir == nullptr) return {};
    std::string path{dir};
    if (path.empty() || path == "1") path = ".";
    path += "/BENCH_" + bench_name + ".json";

    std::vector<scenarios::AggregateRow> aggregates;
    std::vector<std::vector<scenarios::ReplicaResult>> replicas;
    aggregates.reserve(rows.size());
    replicas.reserve(rows.size());
    for (const auto& r : rows) {
        aggregates.push_back(r.aggregate);
        replicas.push_back(r.replicas);
    }
    const std::string doc =
        scenarios::aggregate_rows_json(bench_name, slot_width, aggregates, replicas);

    if (!write_text_file(path, doc)) return {};
    std::printf("json: wrote %s\n", path.c_str());
    return path;
}

}  // namespace bb::bench
