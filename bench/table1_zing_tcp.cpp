// Table 1: ZING vs ground truth under 40 infinite TCP sources (scaled).
#include "zing_tables.h"

int main() {
    bb::bench::run_zing_table("Table 1: simple Poisson probing, infinite TCP sources",
                              "Sommers et al., SIGCOMM 2005, Table 1 / Figure 4",
                              bb::bench::infinite_tcp_workload());
    return 0;
}
