// google-benchmark microbenchmarks for the simulation substrate: raw event
// throughput of the scheduler and packets/second through the bottleneck.
#include <benchmark/benchmark.h>

#include "scenarios/experiment.h"
#include "sim/link.h"
#include "sim/scheduler.h"

namespace {

using namespace bb;

// Self-rescheduling tick with a small capture — stays in the scheduler's
// inline event buffer, zero allocations in steady state.
struct Tick {
    sim::Scheduler* sched;
    std::int64_t* count;
    std::int64_t limit;
    void operator()() const {
        if (++*count < limit) sched->schedule_after(microseconds(1), Tick{*this});
    }
};

void BM_SchedulerEventThroughput(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler sched;
        std::int64_t counter = 0;
        sched.schedule_at(TimeNs::zero(), Tick{&sched, &counter, state.range(0)});
        sched.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerEventThroughput)->Arg(100'000);

// The TCP RTO pattern: schedule a far-out timer, cancel it, repeat.  With
// generation counters both operations are O(1) and the heap compacts itself,
// so long-horizon churn cannot grow memory.
void BM_SchedulerCancelChurn(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler sched;
        for (std::int64_t i = 0; i < state.range(0); ++i) {
            const sim::EventId id = sched.schedule_after(seconds_i(60), [] {});
            sched.cancel(id);
        }
        sched.run();
        benchmark::DoNotOptimize(sched.executed_events());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerCancelChurn)->Arg(100'000);

void BM_BottleneckPacketThroughput(benchmark::State& state) {
    for (auto _ : state) {
        sim::Scheduler sched;
        sim::CountingSink sink;
        sim::BottleneckQueue::Config cfg;
        cfg.rate_bps = 1'000'000'000;
        cfg.prop_delay = milliseconds(1);
        cfg.capacity_bytes = 1'000'000;
        sim::BottleneckQueue queue{sched, cfg, sink};
        const std::int64_t n = state.range(0);
        for (std::int64_t i = 0; i < n; ++i) {
            sched.schedule_at(microseconds(i), [&queue, i] {
                sim::Packet p;
                p.id = static_cast<std::uint64_t>(i);
                p.size_bytes = 1500;
                queue.accept(p);
            });
        }
        sched.run();
        benchmark::DoNotOptimize(sink.packets());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BottleneckPacketThroughput)->Arg(100'000);

void BM_FullScenarioSecondPerSecond(benchmark::State& state) {
    // Simulated seconds of the CBR scenario per wall-clock iteration.
    for (auto _ : state) {
        scenarios::TestbedConfig tb;
        tb.bottleneck_rate_bps = 30'000'000;
        scenarios::WorkloadConfig wl;
        wl.kind = scenarios::TrafficKind::cbr_uniform;
        wl.duration = seconds_i(state.range(0));
        wl.seed = 5;
        scenarios::Experiment exp{tb, wl};
        exp.run();
        benchmark::DoNotOptimize(exp.testbed().sched().executed_events());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.SetLabel("items = simulated seconds");
}
BENCHMARK(BM_FullScenarioSecondPerSecond)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
