// Table 7: trade-off between experiment length N and the tau threshold at a
// fixed low probe rate p = 0.1 (CBR traffic, uniform episodes).
#include <cstdio>

#include "common.h"

int main() {
    using namespace bb::bench;
    using bb::scenarios::Experiment;

    const double p = 0.1;
    print_header("Table 7: p = 0.1 with N in {180k, 720k} slots and tau in {40, 80} ms",
                 "Sommers et al., SIGCOMM 2005, Table 7");
    std::printf("%-8s | %-4s | %-20s | %-20s\n", "N", "tau", "loss frequency",
                "loss duration (s)");
    std::printf("%-8s | %-4s | %-9s %-10s | %-9s %-10s\n", "(slots)", "(ms)", "true", "est",
                "true", "est");
    std::printf("----------------------------------------------------------------\n");

    for (const long n_slots : {180'000L, 720'000L}) {
        // N slots of 5 ms each; run the workload exactly that long.
        auto wl = cbr_uniform_workload();
        wl.duration = bb::milliseconds(5) * n_slots;

        Experiment exp{bench_testbed(), wl, truth_for(wl)};
        bb::probes::BadabingConfig bc;
        bc.p = p;
        bc.total_slots = n_slots;
        auto& tool = exp.add_badabing(bc);
        exp.run();
        const auto truth = exp.truth();

        for (const long tau_ms : {40L, 80L}) {
            bb::core::MarkingConfig marking;
            marking.tau = bb::milliseconds(tau_ms);
            marking.alpha = 0.2;  // the paper's alpha for p = 0.1
            const auto res = tool.analyze(marking);
            const double est_dur = res.duration_basic.valid
                                       ? res.duration_basic.seconds(tool.slot_width())
                                       : 0.0;
            std::printf("%-8ld | %-4ld | %-9.4f %-10.4f | %-9.3f %-10.3f\n", n_slots, tau_ms,
                        truth.frequency, res.frequency.value, truth.mean_duration_s, est_dur);
        }
    }
    std::printf("\nexpected shape (paper): p = 0.1 is the hard regime; changing tau\n"
                "moves the estimates far more than quadrupling N does (the paper's\n"
                "point).  Direction of the residual error differs from the paper --\n"
                "see the Table 4 note and EXPERIMENTS.md.\n");
    return 0;
}
