// micro_stream: batch vs streaming measurement-pipeline throughput.
//
// Runs the same synthetic-congestion estimation twice per slot count — once
// through the batch path (materialize series, design, and report vectors,
// then run the batch estimators) and once through the streaming path
// (SyntheticSeriesGen -> StreamingExperimentScorer -> StreamingAnalyzer,
// O(1) memory) — checks the estimates agree exactly, and reports throughput.
//
//   BB_BENCH_STREAM_SLOTS  largest slot count exercised (default 10'000'000)
//   BB_BENCH_STREAM_REPS   timed reps per size, best-of (default 3)
//   BB_BENCH_JSON          directory for BENCH_micro_stream.json (default .)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/streaming.h"
#include "core/synthetic.h"
#include "obs/process_stats.h"
#include "util/json.h"
#include "util/json_io.h"
#include "util/rng.h"

namespace {

using namespace bb;

constexpr std::uint64_t kSeriesSeed = 0x5EED5;
constexpr std::uint64_t kDesignSeed = 0xBADA0;
constexpr double kMeanOnSlots = 20.0;
constexpr double kMeanOffSlots = 180.0;

std::int64_t env_int(const char* name, std::int64_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr ? std::atoll(v) : fallback;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
        .count();
}

struct Row {
    std::int64_t slots{0};
    double batch_ms{0.0};
    double stream_ms{0.0};
    double est_frequency{0.0};
    std::uint64_t reports{0};
    bool identical{false};
};

Row run_size_once(std::int64_t slots, const core::ProbeProcessConfig& pcfg) {
    Row row;
    row.slots = slots;

    // --- batch: materialize everything, then estimate -----------------------
    const auto t0 = std::chrono::steady_clock::now();
    Rng series_rng{kSeriesSeed};
    const std::vector<bool> series =
        core::synth_congestion_series(series_rng, slots, kMeanOnSlots, kMeanOffSlots);
    Rng design_rng{kDesignSeed};
    const core::ProbeDesign design = core::design_probe_process(design_rng, slots, pcfg);
    const auto reports = core::score_experiments(
        design.experiments,
        [&series](core::SlotIndex s) { return series[static_cast<std::size_t>(s)]; });
    core::StateCounts counts;
    for (const auto& r : reports) counts.add(r);
    const auto batch_freq = core::estimate_frequency(counts);
    const auto batch_dur = core::estimate_duration_basic(counts);
    row.batch_ms = ms_since(t0);

    // --- streaming: one slot at a time, O(1) memory --------------------------
    const auto t1 = std::chrono::steady_clock::now();
    core::SyntheticSeriesGen gen{Rng{kSeriesSeed}, kMeanOnSlots, kMeanOffSlots};
    core::StreamingAnalyzer analyzer;
    core::StreamingExperimentScorer scorer{Rng{kDesignSeed}, pcfg, analyzer};
    for (std::int64_t s = 0; s < slots; ++s) scorer.step(gen.next());
    const auto stream_res = analyzer.finalize();
    row.stream_ms = ms_since(t1);

    row.est_frequency = stream_res.frequency.value;
    row.reports = stream_res.reports;
    row.identical = stream_res.frequency.value == batch_freq.value &&
                    stream_res.frequency.samples == batch_freq.samples &&
                    stream_res.duration_basic.slots == batch_dur.slots &&
                    stream_res.reports == reports.size();
    return row;
}

// Best-of-N timing (identity flags must hold on every rep): single samples of
// multi-hundred-ms loops swing by ±20% on a busy machine, the min does not.
Row run_size(std::int64_t slots, const core::ProbeProcessConfig& pcfg, std::int64_t reps) {
    Row best = run_size_once(slots, pcfg);
    for (std::int64_t r = 1; r < reps; ++r) {
        Row next = run_size_once(slots, pcfg);
        next.batch_ms = std::min(next.batch_ms, best.batch_ms);
        next.stream_ms = std::min(next.stream_ms, best.stream_ms);
        next.identical = next.identical && best.identical;
        best = next;
    }
    return best;
}

}  // namespace

int main() {
    const std::int64_t max_slots = env_int("BB_BENCH_STREAM_SLOTS", 10'000'000);
    const std::int64_t reps = std::max<std::int64_t>(1, env_int("BB_BENCH_STREAM_REPS", 3));

    core::ProbeProcessConfig pcfg;
    pcfg.p = 0.3;
    pcfg.improved = true;

    std::vector<std::int64_t> sizes{100'000, 1'000'000};
    if (max_slots > sizes.back()) sizes.push_back(max_slots);

    std::printf("micro_stream: batch vs streaming pipeline (p = %.1f, improved)\n", pcfg.p);
    std::printf("%-12s | %-10s | %-10s | %-9s | %-10s | %s\n", "slots", "batch ms",
                "stream ms", "ratio", "Mslots/s", "identical");
    std::printf("----------------------------------------------------------------------\n");

    std::vector<Row> rows;
    for (const std::int64_t slots : sizes) {
        const Row row = run_size(slots, pcfg, reps);
        rows.push_back(row);
        std::printf("%-12lld | %-10.1f | %-10.1f | %-9.2f | %-10.2f | %s\n",
                    static_cast<long long>(row.slots), row.batch_ms, row.stream_ms,
                    row.batch_ms > 0 ? row.stream_ms / row.batch_ms : 0.0,
                    row.stream_ms > 0 ? static_cast<double>(row.slots) / row.stream_ms / 1e3
                                      : 0.0,
                    row.identical ? "yes" : "NO");
        if (!row.identical) {
            std::fprintf(stderr, "micro_stream: batch/stream estimates DIVERGED at %lld "
                                 "slots\n",
                         static_cast<long long>(row.slots));
            return 1;
        }
    }

    const char* dir = std::getenv("BB_BENCH_JSON");
    std::string path{dir != nullptr ? dir : "."};
    if (path.empty() || path == "1") path = ".";
    path += "/BENCH_micro_stream.json";
    JsonWriter w{JsonWriter::Options{2, true}};
    w.begin_object();
    w.key("bench").value("micro_stream");
    w.key("rows").begin_array();
    for (const auto& row : rows) {
        w.begin_object_inline();
        w.key("slots").value_int(row.slots);
        w.key("batch_ms").value_double(row.batch_ms, "%.3f");
        w.key("stream_ms").value_double(row.stream_ms, "%.3f");
        w.key("reports").value_uint(row.reports);
        w.key("est_frequency").value_double(row.est_frequency, "%.8f");
        w.key("identical").value(row.identical);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    if (write_text_file(path, w.str() + "\n")) std::printf("json: wrote %s\n", path.c_str());
    const obs::ProcessStats ps = obs::process_stats();
    std::printf("process: max RSS %lld KiB, cpu %.2fs user %.2fs sys\n",
                static_cast<long long>(ps.max_rss_kb), ps.user_cpu_s, ps.system_cpu_s);
    return 0;
}
