// Ablation: one-way-delay marking vs round-trip (ping-style) marking when
// the *reverse* path is congested.
//
// BADABING is deliberately a one-way tool (§1, §6.1): its congestion marking
// thresholds the forward one-way delay.  A PING-style arrangement that
// reflects probes and thresholds the RTT cannot tell forward congestion from
// reverse congestion.  Here the forward bottleneck carries the engineered
// loss episodes while an independent CBR load congests the reverse path;
// the OWD tool stays accurate, the RTT tool marks phantom congestion.
#include <cstdio>

#include "common.h"
#include "measure/loss_monitor.h"
#include "sim/router.h"
#include "traffic/cbr.h"
#include "traffic/episodic.h"

namespace {

using namespace bb;
using namespace bb::bench;

struct Result {
    double true_freq;
    double est_freq;
    double true_dur;
    double est_dur;
};

Result run(bool rtt_mode, double reverse_load) {
    const auto tb_cfg = bench_testbed();
    const TimeNs horizon = bench_duration();

    sim::Scheduler sched;
    sim::FlowDemux fwd_demux;
    sim::FlowDemux rev_demux;
    sim::CountingSink blackhole;
    fwd_demux.set_default(blackhole);
    rev_demux.set_default(blackhole);

    // Forward bottleneck with engineered episodes.  This bench wires an
    // asymmetric two-queue path no Testbed variant models, so the link is
    // built by hand.
    sim::QueueBase::LinkConfig link;  // bb-lint: allow(no-adhoc-scenario)
    link.rate_bps = tb_cfg.bottleneck_rate_bps;
    link.prop_delay = tb_cfg.prop_delay;
    link.capacity_time = tb_cfg.buffer_time;
    sim::BottleneckQueue fwd_queue{sched, link, fwd_demux};
    measure::LossMonitor monitor{sched, fwd_queue};

    traffic::EpisodicBurstSource::Config burst;
    burst.episode_durations = {milliseconds(68)};
    burst.mean_gap = seconds_i(10);
    burst.bottleneck_rate_bps = link.rate_bps;
    burst.bottleneck_capacity_bytes = fwd_queue.capacity_bytes();
    burst.background_load = 0.0;
    burst.stop = horizon;
    traffic::EpisodicBurstSource bursts{sched, burst, fwd_queue, Rng{bench_seed() ^ 0xF}};

    // Reverse path: its own queue, optionally congested by independent CBR.
    sim::BottleneckQueue rev_queue{sched, link, rev_demux};
    std::unique_ptr<traffic::CbrSource> rev_cbr;
    if (reverse_load > 0.0) {
        traffic::CbrSource::Config c;
        c.rate_bps = static_cast<std::int64_t>(reverse_load *
                                               static_cast<double>(link.rate_bps));
        c.flow = 9999;
        c.stop = horizon;
        rev_cbr = std::make_unique<traffic::CbrSource>(sched, c, rev_queue);
    }

    // The tool: identical configuration; only where its receiver sits differs.
    probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = horizon / bc.slot_width;
    probes::BadabingTool tool{sched, bc, fwd_queue, Rng{bench_seed() ^ 0xB}};
    sim::Reflector reflector{rev_queue};
    if (rtt_mode) {
        // Ping-style: probes reflected over the (congested) reverse path and
        // measured at the sender; delays include reverse queueing.
        fwd_demux.bind(bc.flow, reflector);
        rev_demux.bind(bc.flow, tool);
    } else {
        // BADABING's one-way arrangement: measured at the receiver.
        fwd_demux.bind(bc.flow, tool);
    }

    sched.run_until(horizon + seconds_i(2));

    const auto truth = measure::summarize_truth(monitor.episodes(milliseconds(100)),
                                                bc.slot_width, TimeNs::zero(), horizon);
    core::MarkingConfig marking;
    marking.tau = scenarios::tau_for_probe_rate(bc.p, bc.slot_width);
    marking.alpha = 0.1;
    const auto res = tool.analyze(marking);
    return Result{truth.frequency, res.frequency.value, truth.mean_duration_s,
                  res.duration_basic.valid ? res.duration_basic.seconds(bc.slot_width)
                                           : 0.0};
}

}  // namespace

int main() {
    print_header(
        "Ablation: one-way-delay marking vs RTT (ping-style) marking, congested reverse path",
        "motivates the one-way design of Sommers et al., SIGCOMM 2005, Sections 1/6.1");
    std::printf("%-12s | %-9s | %-19s | %-19s\n", "marking", "rev load", "loss frequency",
                "loss duration (s)");
    std::printf("%-12s | %-9s | %-9s %-9s | %-9s %-9s\n", "", "", "true", "est", "true",
                "est");
    std::printf("------------------------------------------------------------------\n");
    for (const double rev_load : {0.0, 0.97}) {
        for (const bool rtt : {false, true}) {
            const auto r = run(rtt, rev_load);
            std::printf("%-12s | %-9.2f | %-9.4f %-9.4f | %-9.3f %-9.3f\n",
                        rtt ? "RTT (ping)" : "one-way", rev_load, r.true_freq, r.est_freq,
                        r.true_dur, r.est_dur);
        }
    }
    std::printf("\nexpected shape: with an idle reverse path both arrangements agree;\n"
                "with heavy reverse-path queueing the RTT tool's delays absorb the\n"
                "reverse queue and its frequency estimate inflates with phantom\n"
                "congestion, while the one-way tool is untouched -- the reason the\n"
                "paper measures one-way delay and (Sec 7) worries about clock sync\n"
                "rather than using round-trips.\n");
    return 0;
}
