// Shared driver for the ZING evaluation tables (paper Tables 1-3).
#ifndef BB_BENCH_ZING_TABLES_H
#define BB_BENCH_ZING_TABLES_H

#include <string>

#include "common.h"

namespace bb::bench {

// Runs the paper's two ZING configurations (10 Hz / 256 B payloads and
// 20 Hz / 64 B payloads, §4.2) against a workload, each in its own run, and
// prints the table: true frequency/duration vs ZING's estimates.
void run_zing_table(const std::string& title, const std::string& paper_ref,
                    const scenarios::WorkloadConfig& wl);

}  // namespace bb::bench

#endif  // BB_BENCH_ZING_TABLES_H
