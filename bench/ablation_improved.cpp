// Ablation of the improved algorithm (§5.3) and the §5.5 modifications:
// when probes under-report on-going congestion (p2 < p1), the basic duration
// estimator is biased low while the improved estimator corrects it with
// r_hat = U/V.  Also ablates folding extended-experiment pairs into R/S.
#include <cstdio>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/synthetic.h"
#include "core/validation.h"
#include "util/rng.h"

int main() {
    using namespace bb;
    using namespace bb::core;

    constexpr SlotIndex kSlots = 2'000'000;
    constexpr double kMeanOn = 14.0;
    constexpr double kMeanOff = 986.0;

    std::printf("================================================================\n");
    std::printf("Ablation: basic vs improved duration estimator under report\n");
    std::printf("infidelity (paper Section 5.3), plus the Section 5.5 variant that\n");
    std::printf("also uses extended-experiment pairs in R/S.\n");
    std::printf("process: episodes mean %.0f slots, gaps mean %.0f slots, p = 0.5\n",
                kMeanOn, kMeanOff);
    std::printf("================================================================\n");
    std::printf("%-11s | %-7s | %-9s | %-11s | %-11s | %-11s | %-7s\n", "p1 / p2", "r",
                "true D", "basic D", "improved D", "+ext pairs", "r_hat");
    std::printf("--------------------------------------------------------------------------\n");

    const double fidelity[][2] = {{1.0, 1.0}, {0.9, 0.9}, {1.0, 0.7}, {0.9, 0.5}, {0.7, 0.9}};
    for (const auto& f : fidelity) {
        Rng rng{99};
        const auto series = synth_congestion_series(rng, kSlots, kMeanOn, kMeanOff);
        ProbeProcessConfig pcfg;
        pcfg.p = 0.5;
        pcfg.improved = true;
        const auto design = design_probe_process(rng, kSlots, pcfg);
        const auto obs = observe_with_fidelity(design.experiments, series,
                                               FidelityModel{f[0], f[1]}, rng);
        StateCounts counts;
        for (const auto& r : obs) counts.add(r);

        const auto truth = series_truth(series);
        const auto basic = estimate_duration_basic(counts);
        const auto improved = estimate_duration_improved(counts);
        EstimatorOptions with_pairs;
        with_pairs.pairs_from_extended = true;
        const auto improved_pairs = estimate_duration_improved(counts, with_pairs);

        std::printf("%.2f / %.2f | %-7.3f | %-9.2f | %-11.2f | %-11.2f | %-11.2f | %-7.3f\n",
                    f[0], f[1], f[1] / f[0], truth.mean_duration_slots,
                    basic.valid ? basic.slots : 0.0, improved.valid ? improved.slots : 0.0,
                    improved_pairs.valid ? improved_pairs.slots : 0.0,
                    improved.r_hat.value_or(0.0));
    }

    std::printf("\nexpected shape: the basic estimator tracks truth only when\n"
                "p1 == p2; with p2 < p1 it biases low (and high for p2 > p1) while the\n"
                "improved estimator stays near the true duration.  Folding extended\n"
                "pairs into R/S (Section 5.5) reduces variance without changing the\n"
                "answer.\n");
    return 0;
}
