// Table 8: BADABING vs ZING at matched probe rates, for CBR and web-like
// traffic.  ZING's Poisson rate and packet size are set so its offered load
// equals BADABING's at p = 0.3 (the paper matched both at ~0.5% of OC3).
#include <cstdio>

#include "common.h"

namespace {

using namespace bb::bench;

struct ComparisonRow {
    const char* scenario;
    const char* tool;
    double true_freq;
    double est_freq;
    double true_dur;
    double est_dur;
    double load;
};

ComparisonRow run_badabing(const char* name, const bb::scenarios::WorkloadConfig& wl,
                           double p) {
    const auto row = run_badabing_row(wl, p);
    return {name,
            "BADABING",
            row.truth.frequency,
            row.result.frequency.value,
            row.truth.mean_duration_s,
            row.result.duration_basic.valid
                ? row.result.duration_basic.seconds(bb::milliseconds(5))
                : 0.0,
            row.offered_load};
}

ComparisonRow run_zing(const char* name, const bb::scenarios::WorkloadConfig& wl,
                       double matched_p) {
    bb::scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};
    // Matched rate: p * 2 probes/slot * 3 pkts * 600 B per 5 ms slot.
    const double pkts_per_s = matched_p * 2.0 * 3.0 / 0.005;
    bb::probes::ZingProber::Config zc;
    zc.packet_bytes = 600;
    zc.mean_interval = bb::seconds(1.0 / pkts_per_s);
    auto& zing = exp.add_zing(zc);
    exp.run();
    const auto truth = exp.truth();
    const auto res = zing.result();
    const double span = wl.duration.to_seconds();
    const double load = static_cast<double>(zing.bytes_sent()) * 8.0 /
                        (static_cast<double>(bench_testbed().bottleneck_rate_bps) * span);
    return {name,       "ZING",  truth.frequency,      res.loss_frequency,
            truth.mean_duration_s, res.mean_duration_s, load};
}

}  // namespace

int main() {
    print_header("Table 8: BADABING vs ZING at matched probe rates (p = 0.3 equivalent)",
                 "Sommers et al., SIGCOMM 2005, Table 8");

    const double p = 0.3;
    const ComparisonRow rows[] = {
        run_badabing("CBR", cbr_uniform_workload(), p),
        run_zing("CBR", cbr_uniform_workload(), p),
        run_badabing("web-like", web_workload(), p),
        run_zing("web-like", web_workload(), p),
    };

    std::printf("%-9s %-9s | %-19s | %-19s | %s\n", "traffic", "tool", "loss frequency",
                "loss duration (s)", "load");
    std::printf("%-9s %-9s | %-9s %-9s | %-9s %-9s |\n", "", "", "true", "measured", "true",
                "measured");
    std::printf("----------------------------------------------------------------\n");
    for (const auto& r : rows) {
        std::printf("%-9s %-9s | %-9.4f %-9.4f | %-9.3f %-9.3f | %.4f\n", r.scenario, r.tool,
                    r.true_freq, r.est_freq, r.true_dur, r.est_dur, r.load);
    }
    std::printf("\nexpected shape (paper): at the same packet budget BADABING lands far\n"
                "closer to both the true frequency and the true duration, while ZING's\n"
                "duration estimate collapses toward zero.\n");
    return 0;
}
