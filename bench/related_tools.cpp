// The measurement-tool landscape of paper §2 on one path: ZING (Poisson
// probes), a STING-style TCP hole-filling prober, and BADABING, all against
// the same engineered loss-episode process.
//
// The comparison makes the paper's framing concrete: ZING and STING estimate
// (different flavours of) a *packet loss rate*; only BADABING estimates the
// *episode* characteristics F and D.
#include <cstdio>

#include "common.h"
#include "probes/sting.h"
#include "tcp/tcp_receiver.h"

int main() {
    using namespace bb;
    using namespace bb::bench;

    print_header("Related tools: ZING vs STING vs BADABING on engineered episodes",
                 "Sommers et al., SIGCOMM 2005, Section 2 landscape");

    const auto wl = cbr_uniform_workload();

    // --- BADABING ----------------------------------------------------------
    const auto bb_row = run_badabing_row(wl, 0.3);

    // --- ZING --------------------------------------------------------------
    scenarios::Experiment zing_exp{bench_testbed(), wl, truth_for(wl)};
    probes::ZingProber::Config zc;
    zc.mean_interval = milliseconds(20);  // 50 Hz
    zc.packet_bytes = 600;
    auto& zing = zing_exp.add_zing(zc);
    zing_exp.run();
    const auto zing_truth = zing_exp.truth();
    const auto zing_res = zing.result();

    // --- STING -------------------------------------------------------------
    scenarios::Experiment sting_exp{bench_testbed(), wl, truth_for(wl)};
    auto& tb = sting_exp.testbed();
    probes::StingProber::Config sc;
    sc.burst_segments = 100;
    sc.burst_interval = seconds_i(5);
    sc.segment_bytes = 1500;
    sc.flow = 7600;
    probes::StingProber sting{tb.sched(), sc, tb.forward_in(), Rng{bench_seed() ^ 0x517}};
    tcp::TcpReceiver responder{tb.sched(), sc.flow, tb.reverse_in()};
    tb.fwd_demux().bind(sc.flow, responder);
    tb.rev_demux().bind(sc.flow, sting);
    sting_exp.run();
    const auto sting_truth = sting_exp.truth();
    const auto sting_res = sting.result();
    const double router_rate = sting_exp.monitor().router_loss_rate();

    std::printf("%-10s | %-22s | %-22s\n", "tool", "loss frequency F", "episode duration D");
    std::printf("%-10s | %-10s %-10s | %-10s %-10s\n", "", "true", "reported", "true",
                "reported");
    std::printf("----------------------------------------------------------------\n");
    std::printf("%-10s | %-10.4f %-10.4f | %-10.3f %-10.3f\n", "BADABING",
                bb_row.truth.frequency, bb_row.result.frequency.value,
                bb_row.truth.mean_duration_s,
                bb_row.result.duration_basic.valid
                    ? bb_row.result.duration_basic.seconds(milliseconds(5))
                    : 0.0);
    std::printf("%-10s | %-10.4f %-10.4f | %-10.3f %-10.3f   (probe loss fraction)\n",
                "ZING", zing_truth.frequency, zing_res.loss_frequency,
                zing_truth.mean_duration_s, zing_res.mean_duration_s);
    std::printf("%-10s | %-10.4f %-10.4f | %-10.3f %-10s   (TCP hole-fill rate)\n", "STING",
                sting_truth.frequency, sting_res.forward_loss_rate,
                sting_truth.mean_duration_s, "n/a");
    std::printf("\nSTING bursts completed: %zu (%llu segments, %llu holes); router-centric "
                "loss rate over the run: %.4f\n",
                sting_res.bursts_completed,
                static_cast<unsigned long long>(sting_res.data_packets),
                static_cast<unsigned long long>(sting_res.holes_filled), router_rate);
    std::printf("\nexpected shape: ZING and STING each report a per-packet loss-rate\n"
                "flavour (ZING on its own probes, STING on a TCP segment stream);\n"
                "neither approaches the episode frequency/duration, which is the gap\n"
                "the paper's process fills.\n");
    return 0;
}
