// Extension experiment: the full AQM x traffic x loss-process ablation the
// paper's §7 asks for.  Every cell runs BADABING at p = 0.3 against one
// bottleneck discipline (drop-tail, RED, PIE, CoDel), one traffic mix (CBR
// with engineered episodes, or greedy TCP), with the Gilbert-Elliott
// non-congestive loss segment off or on — and reports where the frequency
// and duration estimates pick up bias.  A passive Q-bit observer rides every
// cell as the router-centric comparison estimator.
//
// BB_BENCH_ABLATION_DURATION_S overrides the per-cell duration (default 120,
// enough for stable cell shapes; the tables use the full 900 s runs).
// BB_BENCH_JSON=<dir> additionally writes BENCH_ablation_aqm.json there.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.h"

namespace {

using namespace bb::bench;
namespace scen = bb::scenarios;

bb::TimeNs ablation_duration() {
    const char* v = std::getenv("BB_BENCH_ABLATION_DURATION_S");
    if (v != nullptr && *v != '\0') return bb::seconds_i(std::atoll(v));
    return bb::seconds_i(120);
}

const char* discipline_name(scen::QueueDiscipline d) {
    switch (d) {
        case scen::QueueDiscipline::drop_tail: return "drop_tail";
        case scen::QueueDiscipline::red: return "red";
        case scen::QueueDiscipline::pie: return "pie";
        case scen::QueueDiscipline::codel: return "codel";
    }
    return "?";
}

struct CellOut {
    std::string discipline;
    std::string traffic;
    bool ge{false};
    double truth_frequency{0.0};
    double est_frequency{0.0};
    double freq_rel_error{0.0};   // signed: (est - truth) / truth
    double truth_duration_s{0.0};
    double est_duration_s{0.0};
    double dur_rel_error{0.0};
    std::size_t episodes{0};
    double path_loss_rate{0.0};   // (queue drops + GE drops) / queue arrivals
    double passive_loss_rate{0.0};  // Q-bit observer estimate of the same
    std::uint64_t qbit_merged_blocks{0};
};

double rel_error(double est, double truth) {
    if (truth <= 0.0) return 0.0;
    return (est - truth) / truth;
}

CellOut run_cell(scen::QueueDiscipline d, bool tcp, bool ge) {
    auto tb = bench_testbed();
    tb.discipline = d;
    tb.qbit_block = 100;
    if (ge) {
        tb.ge_enabled = true;
        tb.ge.p_bad_loss = 0.3;
        tb.ge.mean_good = bb::seconds_i(5);
        tb.ge.mean_bad = bb::milliseconds(100);
    }
    auto wl = tcp ? infinite_tcp_workload() : cbr_uniform_workload();
    wl.duration = ablation_duration();

    scen::Experiment exp{tb, wl, truth_for(wl)};
    bb::probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();

    const auto truth = exp.truth();
    const auto res = tool.analyze(exp.default_marking(bc.p));

    CellOut out;
    out.discipline = discipline_name(d);
    out.traffic = tcp ? "tcp" : "cbr";
    out.ge = ge;
    out.truth_frequency = truth.frequency;
    out.est_frequency = res.frequency.value;
    out.freq_rel_error = rel_error(out.est_frequency, out.truth_frequency);
    out.truth_duration_s = truth.mean_duration_s;
    out.est_duration_s =
        res.duration_basic.valid ? res.duration_basic.seconds(tool.slot_width()) : 0.0;
    out.dur_rel_error = rel_error(out.est_duration_s, out.truth_duration_s);
    out.episodes = truth.episodes;

    auto& queue = exp.testbed().bottleneck();
    const std::uint64_t ge_drops = exp.testbed().ge() ? exp.testbed().ge()->drops() : 0;
    if (queue.arrivals() > 0) {
        out.path_loss_rate = static_cast<double>(queue.drops() + ge_drops) /
                             static_cast<double>(queue.arrivals());
    }
    if (auto* obs = exp.testbed().qbit_observer()) {
        obs->finalize();
        out.passive_loss_rate = obs->loss_rate();
        out.qbit_merged_blocks = obs->merged_blocks();
    }
    return out;
}

void append_json_cell(std::string& doc, const CellOut& c, bool first) {
    char buf[640];
    std::snprintf(
        buf, sizeof buf,
        "%s    {\"discipline\": \"%s\", \"traffic\": \"%s\", \"ge\": %s,\n"
        "     \"truth_frequency\": %.8f, \"est_frequency\": %.8f, "
        "\"freq_rel_error\": %.6f,\n"
        "     \"truth_duration_s\": %.6f, \"est_duration_s\": %.6f, "
        "\"dur_rel_error\": %.6f,\n"
        "     \"episodes\": %zu, \"path_loss_rate\": %.8f, "
        "\"passive_loss_rate\": %.8f, \"qbit_merged_blocks\": %llu}",
        first ? "" : ",\n", c.discipline.c_str(), c.traffic.c_str(),
        c.ge ? "true" : "false", c.truth_frequency, c.est_frequency, c.freq_rel_error,
        c.truth_duration_s, c.est_duration_s, c.dur_rel_error, c.episodes,
        c.path_loss_rate, c.passive_loss_rate,
        static_cast<unsigned long long>(c.qbit_merged_blocks));
    doc += buf;
}

void maybe_write_json(const std::vector<CellOut>& cells) {
    const char* dir = std::getenv("BB_BENCH_JSON");
    if (dir == nullptr) return;
    std::string path{dir};
    if (path.empty() || path == "1") path = ".";
    path += "/BENCH_ablation_aqm.json";

    std::string doc = "{\n  \"bench\": \"ablation_aqm\",\n";
    char head[128];
    std::snprintf(head, sizeof head, "  \"duration_s\": %.0f,\n  \"probe_p\": 0.3,\n",
                  ablation_duration().to_seconds());
    doc += head;
    doc += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        append_json_cell(doc, cells[i], i == 0);
    }
    doc += "\n  ]\n}\n";

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("json: wrote %s\n", path.c_str());
}

}  // namespace

int main() {
    print_header("Ablation: AQM discipline x traffic mix x Gilbert-Elliott loss",
                 "extension of Sommers et al., SIGCOMM 2005, Section 7 discussion");
    std::printf("per-cell duration: %.0f s (BB_BENCH_ABLATION_DURATION_S overrides)\n",
                ablation_duration().to_seconds());
    std::printf("%-10s %-4s %-3s | %-19s | %-19s | %-17s | %s\n", "queue", "mix", "ge",
                "frequency", "duration (s)", "loss rate", "qbit");
    std::printf("%-10s %-4s %-3s | %-9s %-9s | %-9s %-9s | %-8s %-8s | %s\n", "", "", "",
                "true", "est", "true", "est", "path", "passive", "merged");
    std::printf("--------------------------------------------------------------------"
                "------------------\n");

    std::vector<CellOut> cells;
    for (const auto d :
         {scen::QueueDiscipline::drop_tail, scen::QueueDiscipline::red,
          scen::QueueDiscipline::pie, scen::QueueDiscipline::codel}) {
        for (const bool tcp : {false, true}) {
            for (const bool ge : {false, true}) {
                CellOut c = run_cell(d, tcp, ge);
                std::printf("%-10s %-4s %-3s | %-9.4f %-9.4f | %-9.3f %-9.3f | "
                            "%-8.5f %-8.5f | %llu\n",
                            c.discipline.c_str(), c.traffic.c_str(), c.ge ? "on" : "off",
                            c.truth_frequency, c.est_frequency, c.truth_duration_s,
                            c.est_duration_s, c.path_loss_rate, c.passive_loss_rate,
                            static_cast<unsigned long long>(c.qbit_merged_blocks));
                cells.push_back(std::move(c));
            }
        }
    }

    std::printf("\nexpected shape: drop-tail keeps estimates closest to truth (the\n"
                "paper's own regime); RED/PIE spread drops and dissolve episode\n"
                "edges, CoDel's head-drop sqrt schedule reshapes durations most, and\n"
                "the Gilbert-Elliott rows add loss the queue-centric truth only sees\n"
                "through the monitor's external-drop feed.  The passive Q-bit column\n"
                "tracks the router-centric PACKET loss rate, not episode frequency —\n"
                "the contrast the paper draws in Section 2.\n");
    maybe_write_json(cells);
    return 0;
}
