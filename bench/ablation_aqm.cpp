// Extension experiment: the full AQM x traffic x loss-process ablation the
// paper's §7 asks for.  Every cell runs BADABING at p = 0.3 against one
// bottleneck discipline (drop-tail, RED, PIE, CoDel), one traffic mix (CBR
// with engineered episodes, or greedy TCP), with the Gilbert-Elliott
// non-congestive loss segment off or on — and reports where the frequency
// and duration estimates pick up bias.  A passive Q-bit observer rides every
// cell as the router-centric comparison estimator.
//
// The cell matrix is no longer hand-nested loops: it is a sweep-DSL document
// (the same spec, modulo env substitution, lives in
// examples/ablation_aqm_sweep.json for bb_sweep) expanded by the sweep
// engine and executed per cell through the ReplicaRunner.
//
// BB_BENCH_ABLATION_DURATION_S overrides the per-cell duration (default 120,
// enough for stable cell shapes; the tables use the full 900 s runs).
// BB_BENCH_JSON=<dir> additionally writes BENCH_ablation_aqm.json there.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "scenarios/sweep.h"
#include "util/json.h"
#include "util/json_io.h"

namespace {

using namespace bb::bench;
namespace scen = bb::scenarios;

bb::TimeNs ablation_duration() {
    const char* v = std::getenv("BB_BENCH_ABLATION_DURATION_S");
    if (v != nullptr && *v != '\0') return bb::seconds_i(std::atoll(v));
    return bb::seconds_i(120);
}

// The ablation matrix as a sweep spec.  Axis order matches the historical
// loop nesting (discipline outermost, GE innermost) so cell order is stable.
std::string ablation_sweep_text() {
    char buf[1280];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"name\": \"ablation_aqm\",\n"
        "  \"base\": {\n"
        "    \"link\": {\"rate_mbps\": %lld, \"qbit_block\": 100,\n"
        "             \"ge\": {\"p_bad_loss\": 0.3, \"mean_good_s\": 5, "
        "\"mean_bad_ms\": 100}},\n"
        "    \"traffic\": {\"kind\": \"cbr_uniform\", \"duration_s\": %lld,\n"
        "                \"episode_ms\": 68, \"mean_episode_gap_s\": 10, "
        "\"tcp_flows\": %d},\n"
        "    \"probe\": {\"badabing\": {\"p\": 0.3}},\n"
        "    \"run\": {\"replicas\": 1, \"seed\": %llu}\n"
        "  },\n"
        "  \"axes\": {\n"
        "    \"link.discipline\": [\"drop_tail\", \"red\", \"pie\", \"codel\"],\n"
        "    \"traffic.kind\": [\"cbr_uniform\", \"infinite_tcp\"],\n"
        "    \"link.ge.enabled\": [false, true]\n"
        "  }\n"
        "}\n",
        static_cast<long long>(bench_testbed().bottleneck_rate_bps / 1'000'000),
        static_cast<long long>(ablation_duration().to_seconds()),
        infinite_tcp_workload().tcp_flows,
        static_cast<unsigned long long>(bench_seed()));
    return buf;
}

struct CellOut {
    std::string discipline;
    std::string traffic;
    bool ge{false};
    double truth_frequency{0.0};
    double est_frequency{0.0};
    double freq_rel_error{0.0};   // signed: (est - truth) / truth
    double truth_duration_s{0.0};
    double est_duration_s{0.0};
    double dur_rel_error{0.0};
    std::size_t episodes{0};
    double path_loss_rate{0.0};   // (queue drops + GE drops) / queue arrivals
    double passive_loss_rate{0.0};  // Q-bit observer estimate of the same
    std::uint64_t qbit_merged_blocks{0};
};

double rel_error(double est, double truth) {
    if (truth <= 0.0) return 0.0;
    return (est - truth) / truth;
}

const char* discipline_name(scen::QueueDiscipline d) {
    switch (d) {
        case scen::QueueDiscipline::drop_tail: return "drop_tail";
        case scen::QueueDiscipline::red: return "red";
        case scen::QueueDiscipline::pie: return "pie";
        case scen::QueueDiscipline::codel: return "codel";
    }
    return "?";
}

CellOut run_cell(const scen::SweepCell& cell) {
    const scen::ReplicaPlan plan = scen::replica_plan_from(cell.spec);
    const scen::ReplicaRunner runner{scen::runner_config_from(cell.spec)};
    const auto rows = runner.run(plan);
    const auto& r = rows.front();

    CellOut out;
    out.discipline = discipline_name(cell.spec.testbed.discipline);
    out.traffic =
        cell.spec.workload.kind == scen::TrafficKind::infinite_tcp ? "tcp" : "cbr";
    out.ge = cell.spec.testbed.ge_enabled;
    out.truth_frequency = r.truth.frequency;
    out.est_frequency = r.est_frequency();
    out.freq_rel_error = rel_error(out.est_frequency, out.truth_frequency);
    out.truth_duration_s = r.truth.mean_duration_s;
    out.est_duration_s = r.est_duration_s(plan.probe.slot_width);
    out.dur_rel_error = rel_error(out.est_duration_s, out.truth_duration_s);
    out.episodes = r.episodes;
    out.path_loss_rate = r.path_loss_rate;
    out.passive_loss_rate = r.passive_loss_rate;
    out.qbit_merged_blocks = r.qbit_merged_blocks;
    return out;
}

void maybe_write_json(const std::vector<CellOut>& cells) {
    const char* dir = std::getenv("BB_BENCH_JSON");
    if (dir == nullptr) return;
    std::string path{dir};
    if (path.empty() || path == "1") path = ".";
    path += "/BENCH_ablation_aqm.json";

    bb::JsonWriter w{bb::JsonWriter::Options{2, true}};
    w.begin_object();
    w.key("bench").value("ablation_aqm");
    w.key("duration_s").value_double(ablation_duration().to_seconds(), "%.0f");
    w.key("probe_p").value_double(0.3, "%.1f");
    w.key("cells").begin_array();
    for (const auto& c : cells) {
        w.begin_object_inline();
        w.key("discipline").value(c.discipline);
        w.key("traffic").value(c.traffic);
        w.key("ge").value(c.ge);
        w.key("truth_frequency").value_double(c.truth_frequency, "%.8f");
        w.key("est_frequency").value_double(c.est_frequency, "%.8f");
        w.key("freq_rel_error").value_double(c.freq_rel_error, "%.6f");
        w.key("truth_duration_s").value_double(c.truth_duration_s, "%.6f");
        w.key("est_duration_s").value_double(c.est_duration_s, "%.6f");
        w.key("dur_rel_error").value_double(c.dur_rel_error, "%.6f");
        w.key("episodes").value_uint(c.episodes);
        w.key("path_loss_rate").value_double(c.path_loss_rate, "%.8f");
        w.key("passive_loss_rate").value_double(c.passive_loss_rate, "%.8f");
        w.key("qbit_merged_blocks").value_uint(c.qbit_merged_blocks);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    if (!bb::write_text_file(path, w.str() + "\n")) return;
    std::printf("json: wrote %s\n", path.c_str());
}

}  // namespace

int main() {
    print_header("Ablation: AQM discipline x traffic mix x Gilbert-Elliott loss",
                 "extension of Sommers et al., SIGCOMM 2005, Section 7 discussion");
    std::printf("per-cell duration: %.0f s (BB_BENCH_ABLATION_DURATION_S overrides)\n",
                ablation_duration().to_seconds());

    const std::string spec_text = ablation_sweep_text();
    const auto sweep = scen::load_sweep_spec_text(spec_text, "<ablation sweep>");
    if (!sweep.ok) {
        std::fprintf(stderr, "ablation sweep rejected: %s\n", sweep.error.c_str());
        return 1;
    }
    const auto expanded = scen::expand_sweep(sweep.sweep, "<ablation sweep>");
    if (!expanded.ok) {
        std::fprintf(stderr, "ablation sweep expansion failed: %s\n",
                     expanded.error.c_str());
        return 1;
    }

    std::printf("cells: %zu (from sweep spec \"%s\")\n", expanded.cells.size(),
                sweep.sweep.name.c_str());
    std::printf("%-10s %-4s %-3s | %-19s | %-19s | %-17s | %s\n", "queue", "mix", "ge",
                "frequency", "duration (s)", "loss rate", "qbit");
    std::printf("%-10s %-4s %-3s | %-9s %-9s | %-9s %-9s | %-8s %-8s | %s\n", "", "", "",
                "true", "est", "true", "est", "path", "passive", "merged");
    std::printf("--------------------------------------------------------------------"
                "------------------\n");

    std::vector<CellOut> cells;
    for (const auto& cell : expanded.cells) {
        CellOut c = run_cell(cell);
        std::printf("%-10s %-4s %-3s | %-9.4f %-9.4f | %-9.3f %-9.3f | "
                    "%-8.5f %-8.5f | %llu\n",
                    c.discipline.c_str(), c.traffic.c_str(), c.ge ? "on" : "off",
                    c.truth_frequency, c.est_frequency, c.truth_duration_s,
                    c.est_duration_s, c.path_loss_rate, c.passive_loss_rate,
                    static_cast<unsigned long long>(c.qbit_merged_blocks));
        cells.push_back(std::move(c));
    }

    std::printf("\nexpected shape: drop-tail keeps estimates closest to truth (the\n"
                "paper's own regime); RED/PIE spread drops and dissolve episode\n"
                "edges, CoDel's head-drop sqrt schedule reshapes durations most, and\n"
                "the Gilbert-Elliott rows add loss the queue-centric truth only sees\n"
                "through the monitor's external-drop feed.  The passive Q-bit column\n"
                "tracks the router-centric PACKET loss rate, not episode frequency —\n"
                "the contrast the paper draws in Section 2.\n");
    maybe_write_json(cells);
    return 0;
}
