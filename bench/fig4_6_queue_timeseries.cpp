// Figures 4, 5, 6: queue-length (expressed as queueing delay in seconds)
// time series for the three traffic scenarios.  Writes one CSV per scenario
// into ./fig_data/ and prints summary statistics of the series.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common.h"
#include "measure/loss_monitor.h"

namespace {

using namespace bb::bench;

void run_series(const char* name, const char* paper_fig,
                const bb::scenarios::WorkloadConfig& base_wl) {
    auto wl = base_wl;
    // The paper's figures show a ~10-30 s excerpt; sample 60 s at 1 ms.
    wl.duration = std::min(wl.duration, bb::seconds_i(60));
    bb::scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};
    bb::measure::QueueSampler sampler{exp.testbed().sched(), exp.testbed().bottleneck(),
                                      bb::milliseconds(1), wl.duration};
    exp.run();

    std::filesystem::create_directories("fig_data");
    const std::string path = std::string("fig_data/") + name + "_queue.csv";
    std::ofstream out{path};
    out << "t_seconds,queue_delay_seconds\n";
    for (const auto& pt : sampler.series().points()) {
        out << pt.t << ',' << pt.value << '\n';
    }

    const auto& series = sampler.series();
    const auto truth = exp.truth();
    const double cap = exp.testbed().bottleneck().max_queueing_delay().to_seconds();
    std::size_t near_full = 0;
    std::size_t near_empty = 0;
    for (const auto& pt : series.points()) {
        if (pt.value > 0.9 * cap) ++near_full;
        if (pt.value < 0.1 * cap) ++near_empty;
    }
    std::printf("%-14s (%s): %zu samples -> %s\n", name, paper_fig, series.size(),
                path.c_str());
    std::printf("    queue delay: mean %.4f s, max %.4f s (buffer %.3f s)\n",
                series.mean_over(0.0, 1e9), series.max_value(), cap);
    std::printf("    %.1f%% of time near-full (>90%%), %.1f%% near-empty (<10%%); "
                "%zu loss episodes in the window\n",
                100.0 * static_cast<double>(near_full) / static_cast<double>(series.size()),
                100.0 * static_cast<double>(near_empty) / static_cast<double>(series.size()),
                truth.episodes);
}

}  // namespace

int main() {
    print_header("Figures 4-6: bottleneck queue-length time series per scenario",
                 "Sommers et al., SIGCOMM 2005, Figures 4, 5, 6");
    run_series("infinite_tcp", "Fig 4", infinite_tcp_workload());
    run_series("cbr_uniform", "Fig 5", cbr_uniform_workload());
    run_series("web", "Fig 6", web_workload());
    std::printf("\nexpected shape (paper): Fig 4 shows the synchronized TCP sawtooth\n"
                "riding near the buffer limit; Fig 5 shows an idle queue with isolated\n"
                "~100 ms spikes at each engineered episode; Fig 6 shows irregular\n"
                "bursty excursions from the web workload.\n");
    return 0;
}
