// Extension experiment: the estimator family side by side on one simulated
// measurement — moment estimator (§5.2.2), improved estimator (§5.3), the
// parametric Markov-chain MLE (§8 future work), and bootstrap confidence
// intervals (§8 future work) — all computed from the same probe trace.
#include <cstdio>
#include <unordered_map>

#include "common.h"
#include "core/bootstrap.h"
#include "core/markov.h"

namespace {

using namespace bb::bench;
using namespace bb::core;

}  // namespace

int main() {
    print_header("Ablation: estimator family on one BADABING run (CBR, p = 0.3, improved)",
                 "Sommers et al., SIGCOMM 2005, Sections 5.2-5.3 plus Section 8 extensions");

    const auto wl = cbr_uniform_workload();
    bb::scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};
    bb::probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.improved = true;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();

    const auto truth = exp.truth();
    const auto marking = exp.default_marking(0.3);
    const auto res = tool.analyze(marking);
    const bb::TimeNs slot = tool.slot_width();

    // Rebuild the per-experiment reports to feed the Markov and bootstrap
    // machinery (the same records analyze() consumed).
    CongestionMarker marker{marking};
    const auto marks = marker.mark(tool.outcomes());
    std::unordered_map<SlotIndex, bool> congested;
    for (const auto& m : marks) congested[m.slot] = m.congested;
    const auto reports = score_experiments(tool.design().experiments,
                                           [&congested](SlotIndex s) {
                                               const auto it = congested.find(s);
                                               return it != congested.end() && it->second;
                                           });
    const auto markov = estimate_markov(tally_pairs(reports));

    BootstrapConfig bcfg;
    bcfg.replicates = 300;
    bb::Rng rng{bench_seed() ^ 0xB007};
    const auto ci = bootstrap_estimates(reports, bcfg, rng);

    std::printf("ground truth            : F = %.4f   D = %.3f s (%zu episodes)\n",
                truth.frequency, truth.mean_duration_s, truth.episodes);
    std::printf("moment (Sec 5.2.2)      : F = %.4f   D = %.3f s\n", res.frequency.value,
                res.duration_basic.valid ? res.duration_basic.seconds(slot) : 0.0);
    std::printf("improved (Sec 5.3)      : r_hat = %.3f  D = %.3f s\n",
                res.duration_improved.r_hat.value_or(0.0),
                res.duration_improved.valid ? res.duration_improved.seconds(slot) : 0.0);
    std::printf("markov MLE (Sec 8 ext)  : F = %.4f   D = %.3f s\n",
                markov.valid ? markov.frequency : 0.0,
                markov.valid ? markov.duration_seconds(slot) : 0.0);
    if (ci.frequency.valid) {
        std::printf("bootstrap 90%% (Sec 8)   : F in [%.4f, %.4f]   D in [%.3f, %.3f] s\n",
                    ci.frequency.lo, ci.frequency.hi,
                    ci.duration_slots.lo * slot.to_seconds(),
                    ci.duration_slots.hi * slot.to_seconds());
    }
    std::printf("validation (Sec 5.4)    : pair asymmetry %.3f, violations %.4f\n",
                res.validation.pair_asymmetry, res.validation.violation_fraction);
    std::printf("\nexpected shape: all estimators agree on frequency; the duration\n"
                "estimates cluster above the true value by the marking shoulders; the\n"
                "bootstrap interval quantifies the spread the Sec 7 rule of thumb\n"
                "(1/sqrt(pNL) = %.3f here) only approximates.\n",
                duration_stddev_guidance(0.3, wl.duration / slot,
                                         static_cast<double>(truth.episodes) /
                                             static_cast<double>(wl.duration / slot)));
    return 0;
}
