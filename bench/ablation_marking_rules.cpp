// Ablation of the §6.1 marking rules: loss-only marking vs the full
// loss + (tau, alpha) one-way-delay rule, evaluated both at the aggregate
// level (frequency/duration) and at the episode level (recall, precision,
// onset error) against ground truth.
#include <cstdio>

#include "common.h"
#include "core/episode_match.h"
#include "measure/episodes.h"

namespace {

using namespace bb;
using namespace bb::bench;

void run_rule(const probes::BadabingTool& tool, const scenarios::Experiment& exp,
              const core::MarkingConfig& marking, const char* label, double true_freq,
              double true_dur) {
    core::CongestionMarker marker{marking};
    const auto marks = marker.mark(tool.outcomes());

    // Aggregate estimates.
    const auto res = tool.analyze(marking);
    const double est_dur =
        res.duration_basic.valid ? res.duration_basic.seconds(tool.slot_width()) : 0.0;

    // Episode-level match.
    const auto intervals = measure::episode_slot_intervals(exp.episodes(), tool.slot_width(),
                                                           TimeNs::zero());
    const auto match = core::match_episodes(marks, intervals);

    std::printf("%-12s | %-8.4f %-8.4f | %-7.3f %-7.3f | %-6.2f %-6.2f | %-9.2f | %.2f\n",
                label, true_freq, res.frequency.value, true_dur, est_dur, match.recall,
                match.probed_recall, match.precision, match.mean_onset_error_slots);
}

}  // namespace

int main() {
    print_header("Ablation: loss-only marking vs the Sec 6.1 loss+delay rule (CBR, p=0.3)",
                 "Sommers et al., SIGCOMM 2005, Section 6.1");

    const auto wl = cbr_uniform_workload();
    scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};
    probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();
    const auto truth = exp.truth();

    std::printf("%-12s | %-17s | %-15s | %-13s | %-9s | %s\n", "marking", "frequency",
                "duration (s)", "ep. recall", "precision", "onset err");
    std::printf("%-12s | %-8s %-8s | %-7s %-7s | %-6s %-6s | %-9s | %s\n", "", "true", "est",
                "true", "est", "all", "probed", "", "(slots)");
    std::printf("---------------------------------------------------------------------------\n");

    core::MarkingConfig loss_only = exp.default_marking(0.3);
    loss_only.use_delay_rule = false;
    run_rule(tool, exp, loss_only, "loss-only", truth.frequency, truth.mean_duration_s);

    const core::MarkingConfig full = exp.default_marking(0.3);
    run_rule(tool, exp, full, "loss+delay", truth.frequency, truth.mean_duration_s);

    std::printf("\nexpected shape: the delay rule adds marked slots around losses,\n"
                "raising episode recall and filling in episode interiors (shorter\n"
                "onset error) at a small cost in precision -- the reason Sec 6.1\n"
                "introduces the (tau, alpha) rule instead of loss-only marking.\n");
    return 0;
}
