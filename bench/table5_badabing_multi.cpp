// Table 5: BADABING loss estimates for CBR traffic with loss episodes of
// 50, 100 or 150 ms (drawn uniformly), over p in {0.1 .. 0.9}.  Rows are
// multi-replica aggregates (mean +/- 95% bootstrap CI); see table4 for the
// BB_BENCH_REPLICAS / BB_BENCH_THREADS / BB_BENCH_JSON knobs.
#include "common.h"

int main() {
    using namespace bb::bench;
    std::vector<MultiRow> rows;
    for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        rows.push_back(run_badabing_rows(cbr_multi_workload(), p, bench_replicas()));
    }
    print_badabing_ci_table(
        "Table 5: BADABING, constant bit rate traffic, episodes of 50/100/150 ms",
        "Sommers et al., SIGCOMM 2005, Table 5", rows, bb::milliseconds(5));
    maybe_write_bench_json("table5_badabing_multi", rows, bb::milliseconds(5));
    return 0;
}
