// Table 5: BADABING loss estimates for CBR traffic with loss episodes of
// 50, 100 or 150 ms (drawn uniformly), over p in {0.1 .. 0.9}.
#include "common.h"

int main() {
    using namespace bb::bench;
    std::vector<BadabingRow> rows;
    for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        rows.push_back(run_badabing_row(cbr_multi_workload(), p));
    }
    print_badabing_table(
        "Table 5: BADABING, constant bit rate traffic, episodes of 50/100/150 ms",
        "Sommers et al., SIGCOMM 2005, Table 5", rows, bb::milliseconds(5));
    return 0;
}
