// micro_obs: instrumentation overhead on the streaming measurement hot loop.
//
// Runs the same synthetic pipeline as micro_stream (SyntheticSeriesGen ->
// StreamingExperimentScorer -> StreamingAnalyzer) twice per repetition: once
// with the obs kill switch off (BB_OBS=off semantics via obs::set_enabled)
// and once with metrics enabled.  Asserts the estimates are bit-identical in
// both modes and that the instrumented run costs < 5% extra (best-of-N to
// shave scheduler noise).
//
//   BB_OBS_BENCH_SLOTS   slots per run (default 5'000'000)
//   BB_OBS_BENCH_REPS    repetitions, best-of (default 3)
//   BB_OBS_BENCH_GATE    "off" skips the <5% timing assert (CI smoke mode)
//   BB_BENCH_JSON        directory for BENCH_micro_obs.json (default .)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/probe_process.h"
#include "core/streaming.h"
#include "core/synthetic.h"
#include "obs/control.h"
#include "obs/metrics.h"
#include "util/json.h"
#include "obs/process_stats.h"
#include "util/json_io.h"
#include "util/rng.h"

namespace {

using namespace bb;

constexpr std::uint64_t kSeriesSeed = 0x5EED5;
constexpr std::uint64_t kDesignSeed = 0xBADA0;
constexpr double kMeanOnSlots = 20.0;
constexpr double kMeanOffSlots = 180.0;

std::int64_t env_int(const char* name, std::int64_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr ? std::atoll(v) : fallback;
}

struct RunResult {
    double ms{0.0};
    double est_frequency{0.0};
    std::uint64_t est_samples{0};
    double est_duration_slots{0.0};
    std::uint64_t reports{0};
};

RunResult run_once(std::int64_t slots, bool obs_on) {
    obs::set_enabled(obs_on);

    core::ProbeProcessConfig pcfg;
    pcfg.p = 0.3;
    pcfg.improved = true;

    const auto t0 = std::chrono::steady_clock::now();
    core::SyntheticSeriesGen gen{Rng{kSeriesSeed}, kMeanOnSlots, kMeanOffSlots};
    core::StreamingAnalyzer analyzer;
    core::StreamingExperimentScorer scorer{Rng{kDesignSeed}, pcfg, analyzer};
    for (std::int64_t s = 0; s < slots; ++s) scorer.step(gen.next());
    const auto res = analyzer.finalize();
    RunResult out;
    out.ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                 .count();
    out.est_frequency = res.frequency.value;
    out.est_samples = res.frequency.samples;
    out.est_duration_slots = res.duration_basic.slots;
    out.reports = res.reports;
    return out;
}

}  // namespace

int main() {
    const std::int64_t slots = env_int("BB_OBS_BENCH_SLOTS", 5'000'000);
    const std::int64_t reps = env_int("BB_OBS_BENCH_REPS", 3);
    const char* gate_env = std::getenv("BB_OBS_BENCH_GATE");
    const bool gate = gate_env == nullptr || std::strcmp(gate_env, "off") != 0;

    std::printf("micro_obs: instrumentation overhead on the streaming hot loop "
                "(%lld slots, best of %lld)\n",
                static_cast<long long>(slots), static_cast<long long>(reps));

    RunResult off{};
    RunResult on{};
    double best_off = -1.0;
    double best_on = -1.0;
    for (std::int64_t r = 0; r < reps; ++r) {
        const RunResult a = run_once(slots, false);
        const RunResult b = run_once(slots, true);
        if (best_off < 0 || a.ms < best_off) {
            best_off = a.ms;
            off = a;
        }
        if (best_on < 0 || b.ms < best_on) {
            best_on = b.ms;
            on = b;
        }
    }
    obs::set_enabled(true);

    // The kill switch must never change what is computed.
    if (off.est_frequency != on.est_frequency || off.est_samples != on.est_samples ||
        off.est_duration_slots != on.est_duration_slots || off.reports != on.reports) {
        std::fprintf(stderr, "micro_obs: estimates DIVERGED between BB_OBS=off and on\n");
        return 1;
    }
    // And the counters must account for every report exactly.
    const std::uint64_t scored = obs::counter("core.reports_scored").value();
    if (scored == 0) {
        std::fprintf(stderr, "micro_obs: core.reports_scored was never incremented\n");
        return 1;
    }

    const double overhead =
        off.ms > 0.0 ? (on.ms - off.ms) / off.ms : 0.0;
    std::printf("%-14s | %-10s | %-10s | %s\n", "mode", "ms", "Mslots/s", "reports");
    std::printf("---------------------------------------------------\n");
    std::printf("%-14s | %-10.1f | %-10.2f | %llu\n", "BB_OBS=off", off.ms,
                off.ms > 0 ? static_cast<double>(slots) / off.ms / 1e3 : 0.0,
                static_cast<unsigned long long>(off.reports));
    std::printf("%-14s | %-10.1f | %-10.2f | %llu\n", "instrumented", on.ms,
                on.ms > 0 ? static_cast<double>(slots) / on.ms / 1e3 : 0.0,
                static_cast<unsigned long long>(on.reports));
    std::printf("overhead: %.2f%% (budget 5%%%s)\n", overhead * 100.0,
                gate ? "" : ", gate off");
    const obs::ProcessStats ps = obs::process_stats();
    std::printf("process : max RSS %lld KiB, cpu %.2fs user %.2fs sys\n",
                static_cast<long long>(ps.max_rss_kb), ps.user_cpu_s, ps.system_cpu_s);

    const char* dir = std::getenv("BB_BENCH_JSON");
    std::string path{dir != nullptr ? dir : "."};
    if (path.empty() || path == "1") path = ".";
    path += "/BENCH_micro_obs.json";
    JsonWriter w{JsonWriter::Options{2, true}};
    w.begin_object();
    w.key("bench").value("micro_obs");
    w.key("slots").value_int(static_cast<std::int64_t>(slots));
    w.key("off_ms").value_double(off.ms, "%.3f");
    w.key("on_ms").value_double(on.ms, "%.3f");
    w.key("overhead_fraction").value_double(overhead, "%.5f");
    w.key("reports").value_uint(on.reports);
    w.key("reports_scored_counter").value_uint(scored);
    w.key("identical").value(true);
    w.end_object();
    if (write_text_file(path, w.str() + "\n")) std::printf("json: wrote %s\n", path.c_str());

    if (gate && overhead > 0.05) {
        std::fprintf(stderr, "micro_obs: overhead %.2f%% exceeds the 5%% budget\n",
                     overhead * 100.0);
        return 1;
    }
    return 0;
}
