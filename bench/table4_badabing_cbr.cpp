// Table 4: BADABING loss estimates for CBR traffic with loss episodes of
// uniform (68 ms) duration, over p in {0.1, 0.3, 0.5, 0.7, 0.9}.  Each row
// is BB_BENCH_REPLICAS independent replicas (positional seeds off
// BB_BENCH_SEED) run across BB_BENCH_THREADS workers; reported as
// mean +/- 95% bootstrap CI.  BB_BENCH_JSON=<dir> dumps the trajectories.
#include "common.h"

int main() {
    using namespace bb::bench;
    std::vector<MultiRow> rows;
    for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        rows.push_back(run_badabing_rows(cbr_uniform_workload(), p, bench_replicas()));
    }
    print_badabing_ci_table(
        "Table 4: BADABING, constant bit rate traffic, uniform 68 ms episodes",
        "Sommers et al., SIGCOMM 2005, Table 4", rows, bb::milliseconds(5));
    maybe_write_bench_json("table4_badabing_cbr", rows, bb::milliseconds(5));
    std::printf("expected shape (paper): frequency close to truth for p >= 0.3, worst\n"
                "at p = 0.1 where the tau window is widest.  The paper's hardware\n"
                "under-estimated at p = 0.1 (probes often passed through episodes\n"
                "unscathed); our simulated episodes are fully visible to probes, so\n"
                "the residual bias is positive instead -- the (1-alpha) high-water\n"
                "shoulders around each episode.  See EXPERIMENTS.md.\n");
    return 0;
}
