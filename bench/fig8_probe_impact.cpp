// Figure 8: impact of probe-train length on the queue dynamics during loss
// episodes.  Compares no probes vs 3-packet vs 10-packet trains at a fixed
// 10 ms interval under infinite-TCP traffic, reporting how the probe load
// perturbs the loss process it is trying to measure.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common.h"
#include "measure/loss_monitor.h"

namespace {

using namespace bb::bench;

struct ImpactRow {
    int probe_packets;
    bb::measure::TruthSummary truth;
    std::uint64_t cross_drops;
    std::uint64_t probe_drops;
    double probe_load;
};

ImpactRow run_one(int probe_packets) {
    auto wl = infinite_tcp_workload();
    wl.duration = std::min(wl.duration, bb::seconds_i(300));
    bb::scenarios::Experiment exp{bench_testbed(), wl, truth_for(wl)};

    bb::probes::FixedIntervalProber* prober = nullptr;
    if (probe_packets > 0) {
        bb::probes::FixedIntervalProber::Config pc;
        pc.interval = bb::milliseconds(10);
        pc.packets_per_probe = probe_packets;
        prober = &exp.add_fixed_prober(pc);
    }

    // Sample a short excerpt of the queue for the CSV, as in the figure.
    bb::measure::QueueSampler sampler{exp.testbed().sched(), exp.testbed().bottleneck(),
                                      bb::milliseconds(1), bb::seconds_i(30)};
    exp.run();

    std::filesystem::create_directories("fig_data");
    const std::string path =
        "fig_data/fig8_probes" + std::to_string(probe_packets) + "_queue.csv";
    std::ofstream out{path};
    out << "t_seconds,queue_delay_seconds\n";
    for (const auto& pt : sampler.series().points()) out << pt.t << ',' << pt.value << '\n';

    ImpactRow row;
    row.probe_packets = probe_packets;
    row.truth = exp.truth();
    row.cross_drops = exp.monitor().cross_traffic_drops();
    row.probe_drops = exp.monitor().probe_drops();
    const double span = wl.duration.to_seconds();
    const double probe_bytes =
        prober != nullptr
            ? static_cast<double>(probe_packets) * 600.0 * span / 0.010
            : 0.0;
    row.probe_load = probe_bytes * 8.0 /
                     (static_cast<double>(bench_testbed().bottleneck_rate_bps) * span);
    return row;
}

}  // namespace

int main() {
    print_header("Figure 8: probe-train impact on queue/loss dynamics (10 ms interval)",
                 "Sommers et al., SIGCOMM 2005, Figure 8");
    std::printf("%-10s | %-9s | %-9s | %-11s | %-11s | %-9s\n", "probe pkts", "freq",
                "dur (s)", "cross drops", "probe drops", "probe load");
    std::printf("----------------------------------------------------------------------\n");
    for (const int n : {0, 3, 10}) {
        const auto r = run_one(n);
        std::printf("%-10d | %-9.4f | %-9.3f | %-11llu | %-11llu | %-9.4f\n", n,
                    r.truth.frequency, r.truth.mean_duration_s,
                    static_cast<unsigned long long>(r.cross_drops),
                    static_cast<unsigned long long>(r.probe_drops), r.probe_load);
    }
    std::printf("\nqueue excerpts written to fig_data/fig8_probes{0,3,10}_queue.csv\n");
    std::printf("expected shape (paper): 3-packet probes perturb the loss process only\n"
                "mildly, while 10-packet trains visibly increase drops and lengthen the\n"
                "episodes they are trying to observe.\n");
    return 0;
}
