// Ablation: geometric (the paper's) probe design vs Poisson-modulated probe
// *pairs* at the same budget, on synthetic congestion.
//
// The paper's §1/§2 discussion: PASTA says Poisson sampling is unbiased for
// time averages, but gives no handle on episode *duration*; the geometric
// slot design yields the y-state bookkeeping that does.  Here the "Poisson"
// design sends basic experiments at exponential inter-start times with the
// same mean, showing that frequency matches while the estimator mechanics
// are identical — the paper's point that the design's benefit is the
// experiment structure, not exotic timing.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/synthetic.h"
#include "util/rng.h"

namespace {

using namespace bb;
using namespace bb::core;

std::vector<Experiment> poisson_design(Rng& rng, SlotIndex total_slots, double p) {
    // Exponential inter-start gaps with mean 1/p slots, quantized to slots.
    std::vector<Experiment> experiments;
    double t = 0.0;
    while (true) {
        t += rng.exponential(1.0 / p);
        const auto slot = static_cast<SlotIndex>(t);
        if (slot + 2 > total_slots) break;
        experiments.push_back({slot, ExperimentKind::basic});
    }
    return experiments;
}

}  // namespace

int main() {
    std::printf("================================================================\n");
    std::printf("Ablation: geometric vs Poisson-modulated experiment starts\n");
    std::printf("reproduces: design discussion of Sommers et al., SIGCOMM 2005, Sec 1/5\n");
    std::printf("process: episodes mean 14 slots, gaps mean 1990 slots, N = 2M slots\n");
    std::printf("================================================================\n");
    std::printf("%-6s | %-10s | %-9s %-9s | %-9s %-9s\n", "p", "design", "true F", "est F",
                "true D", "est D");
    std::printf("----------------------------------------------------------------\n");

    constexpr SlotIndex kSlots = 2'000'000;
    for (const double p : {0.1, 0.3, 0.5}) {
        Rng rng{314};
        const auto series = synth_congestion_series(rng, kSlots, 14.0, 1990.0);
        const auto truth = series_truth(series);

        ProbeProcessConfig gcfg;
        gcfg.p = p;
        const auto geometric = design_probe_process(rng, kSlots, gcfg);
        auto poisson = poisson_design(rng, kSlots, p);

        for (const auto& [label, experiments] :
             {std::pair<const char*, const std::vector<Experiment>*>{"geometric",
                                                                     &geometric.experiments},
              {"poisson", &poisson}}) {
            const auto obs =
                observe_with_fidelity(*experiments, series, FidelityModel{1.0, 1.0}, rng);
            StateCounts counts;
            for (const auto& r : obs) counts.add(r);
            const auto f = estimate_frequency(counts);
            const auto d = estimate_duration_basic(counts);
            std::printf("%-6.1f | %-10s | %-9.5f %-9.5f | %-9.2f %-9.2f\n", p, label,
                        truth.frequency, f.value, truth.mean_duration_slots,
                        d.valid ? d.slots : 0.0);
        }
    }
    std::printf("\nexpected shape: both designs estimate F and D consistently -- the\n"
                "power comes from probing *adjacent slot pairs* and the y-state\n"
                "estimators, not from the modulation; the geometric design is simply\n"
                "the natural discrete-time formulation (Sec 5.2) whose inter-probe\n"
                "gaps drive the tau rule.\n");
    return 0;
}
