// Section 3 reproduction: router-centric vs end-to-end loss rates, and the
// paper's observation that during loss episodes packets keep flowing at
// B_out, so some flows lose nothing even while the router drops.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "measure/flow_stats.h"
#include "traffic/cbr.h"
#include "util/stats.h"

int main() {
    using namespace bb;
    using namespace bb::bench;

    print_header("Section 3: router-centric vs end-to-end loss rates",
                 "Sommers et al., SIGCOMM 2005, Section 3 definitions");

    const auto tb_ptr = scenarios::build_testbed(bench_scenario_spec());
    scenarios::Testbed& tb = *tb_ptr;
    measure::FlowStats stats{tb.bottleneck(), /*record_events=*/true};
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};

    // 100 jittered low-rate CBR flows at ~60% aggregate load, plus an episodic burst
    // source that pushes the link into loss every few seconds: episodes are
    // periods where the *aggregate* exceeds B_out, exactly the paper's model.
    const TimeNs horizon = std::min(bench_duration(), seconds_i(300));
    Rng jitter{bench_seed()};
    const std::int64_t base_per_flow = tb.config().bottleneck_rate_bps * 60 / 100 / 100;
    std::vector<std::unique_ptr<traffic::CbrSource>> sources;
    for (sim::FlowId f = 1; f <= 100; ++f) {
        traffic::CbrSource::Config c;
        // Slightly unequal rates and staggered starts so flows do not phase-
        // lock at the deterministic drop-tail queue.
        c.rate_bps = base_per_flow + jitter.uniform_int(-base_per_flow / 10,
                                                        base_per_flow / 10);
        c.packet_bytes = 1000 + static_cast<std::int32_t>(jitter.uniform_int(0, 500));
        c.start = seconds(jitter.uniform(0.0, 0.5));
        c.flow = f;
        c.stop = horizon;
        sources.push_back(
            std::make_unique<traffic::CbrSource>(tb.sched(), c, tb.forward_in()));
    }
    traffic::EpisodicBurstSource::Config burst;
    burst.episode_durations = {milliseconds(80)};
    burst.mean_gap = seconds_i(5);
    burst.flow = 1000;
    burst.bottleneck_rate_bps = tb.config().bottleneck_rate_bps;
    burst.bottleneck_capacity_bytes = tb.bottleneck().capacity_bytes();
    burst.background_load = 0.6;
    burst.stop = horizon;
    traffic::EpisodicBurstSource bursts{tb.sched(), burst, tb.forward_in(),
                                        Rng{bench_seed() ^ 0x53}};
    tb.sched().run_until(horizon + seconds_i(2));

    std::printf("router-centric loss rate L/(S+L): %.4f\n", stats.router_loss_rate());

    RunningStats flow_rates;
    for (const auto& [flow, f] : stats.flows()) flow_rates.add(f.loss_rate());
    std::printf("end-to-end loss rates across %zu flows: min %.4f, mean %.4f, max %.4f\n",
                stats.flows().size(), flow_rates.min(), flow_rates.mean(), flow_rates.max());

    const auto episodes = mon.episodes(milliseconds(100));
    std::size_t episodes_with_lossless_flow = 0;
    RunningStats lossless_fraction;
    for (const auto& e : episodes) {
        const auto active = stats.flows_active_in(e.start, e.end);
        const auto dropped = stats.flows_dropped_in(e.start, e.end);
        std::size_t lossless = 0;
        for (const auto f : active) {
            if (!dropped.contains(f)) ++lossless;
        }
        if (lossless > 0) ++episodes_with_lossless_flow;
        if (!active.empty()) {
            lossless_fraction.add(static_cast<double>(lossless) /
                                  static_cast<double>(active.size()));
        }
    }
    std::printf("\nloss episodes observed: %zu\n", episodes.size());
    std::printf("episodes during which >= 1 active flow lost nothing: %zu (%.0f%%)\n",
                episodes_with_lossless_flow,
                episodes.empty() ? 0.0
                                 : 100.0 * static_cast<double>(episodes_with_lossless_flow) /
                                       static_cast<double>(episodes.size()));
    std::printf("mean fraction of active flows with zero loss per episode: %.2f\n",
                lossless_fraction.mean());
    std::printf("\nexpected shape (paper Sec 3): during a period where the\n"
                "router-centric loss rate is non-zero, there are flows with zero\n"
                "end-to-end loss -- the observation that motivates probing for\n"
                "*congestion state* (loss or high delay) rather than for the probe's\n"
                "own losses.\n");
    return 0;
}
