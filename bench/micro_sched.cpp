// micro_sched: scheduler event throughput, cancellation churn, and per-event
// allocation counts — the perf-regression gate for the simulator hot path.
//
// Two implementations run the same deterministic workloads:
//   * the live sim::Scheduler (pooled events, 4-ary heap, generation-counter
//     cancellation), and
//   * a self-contained copy of the pre-overhaul implementation
//     (std::function entries, std::push_heap/pop_heap binary heap,
//     unordered_set lazy cancellation), kept here as the baseline reference.
//
// Workloads:
//   tick   — self-rescheduling events ([this]-sized captures), the shape of
//            every traffic source / prober / queue event in the simulator.
//   churn  — schedule a spread of future timers, cancel 80%, then drain;
//            the TCP RTO / delayed-ACK pattern.
//
// The global operator new/delete are overridden to count allocations, so the
// "zero heap allocations per small event" contract is asserted, not assumed.
//
//   BB_BENCH_SCHED_EVENTS  events per workload rep (default 1'000'000)
//   BB_BENCH_SCHED_REPS    timed reps, best-of (default 5)
//   BB_BENCH_SCHED_GATE    off = report only, no exit-code gate
//   BB_BENCH_JSON          directory for BENCH_micro_sched.json (default .)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/process_stats.h"
#include "sim/scheduler.h"
#include "util/json.h"
#include "util/json_io.h"
#include "util/time.h"

// --- allocation counting ----------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n)) return p;
    throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
    return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

using namespace bb;

// --- pre-overhaul scheduler (baseline reference) ----------------------------

class LegacyScheduler {
public:
    using EventId = std::uint64_t;

    [[nodiscard]] TimeNs now() const noexcept { return now_; }

    EventId schedule_at(TimeNs at, std::function<void()> fn) {
        const EventId id = next_id_++;
        heap_.push_back(Entry{at, id, std::move(fn)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        return id;
    }
    EventId schedule_after(TimeNs delay, std::function<void()> fn) {
        return schedule_at(now_ + delay, std::move(fn));
    }
    void cancel(EventId id) { cancelled_.insert(id); }

    void run() {
        while (!heap_.empty()) {
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            Entry entry = std::move(heap_.back());
            heap_.pop_back();
            if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
                cancelled_.erase(it);
                continue;
            }
            now_ = entry.at;
            ++executed_;
            entry.fn();
        }
    }

    [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

private:
    struct Entry {
        TimeNs at;
        EventId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.id > b.id;
        }
    };

    TimeNs now_{TimeNs::zero()};
    EventId next_id_{1};
    std::uint64_t executed_{0};
    std::vector<Entry> heap_;
    std::unordered_set<EventId> cancelled_;
};

// --- workloads --------------------------------------------------------------

std::int64_t env_int(const char* name, std::int64_t fallback) {
    const char* v = std::getenv(name);
    return v != nullptr ? std::atoll(v) : fallback;
}

double secs_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Self-rescheduling tick, the simulator's dominant event shape.  The same
// 24-byte capture is handed to both schedulers; the legacy one must wrap it
// in std::function (which heap-allocates — that was the old hot path).
template <typename Sched>
struct Tick {
    Sched* sched;
    std::int64_t* count;
    std::int64_t limit;
    void operator()() const {
        if (++*count < limit) sched->schedule_after(microseconds(1), Tick{*this});
    }
};

template <typename Sched>
double run_tick(Sched& sched, std::int64_t events) {
    std::int64_t count = 0;
    const auto t0 = std::chrono::steady_clock::now();
    sched.schedule_at(sched.now(), Tick<Sched>{&sched, &count, events});
    sched.run();
    const double dt = secs_since(t0);
    if (count != events) {
        std::fprintf(stderr, "micro_sched: tick ran %lld events, expected %lld\n",
                     static_cast<long long>(count), static_cast<long long>(events));
        std::exit(1);
    }
    return dt;
}

// Timer churn: schedule a deterministic spread of future timers, cancel 80%
// of them, then drain.  This is the TCP RTO / delayed-ACK pattern that the
// generation-counter design makes O(1) and hash-free.
template <typename Sched>
double run_churn(Sched& sched, std::int64_t timers, std::uint64_t* fired_out) {
    std::int64_t fired = 0;
    std::vector<std::uint64_t> ids;  // both schedulers' EventId is uint64
    ids.reserve(static_cast<std::size_t>(timers));
    const auto t0 = std::chrono::steady_clock::now();
    const TimeNs base = sched.now();
    for (std::int64_t i = 0; i < timers; ++i) {
        const auto spread = static_cast<std::int64_t>((i * 7919) % 100'000);
        ids.push_back(sched.schedule_at(base + microseconds(spread + 1),
                                        [&fired] { ++fired; }));
    }
    for (std::int64_t i = 0; i < timers; ++i) {
        if (i % 5 != 0) sched.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sched.run();
    const double dt = secs_since(t0);
    *fired_out = static_cast<std::uint64_t>(fired);
    return dt;
}

struct WorkloadResult {
    double new_mev_s{0.0};
    double legacy_mev_s{0.0};
    double speedup{0.0};
};

std::string host_name() {
    char buf[256] = {0};
    if (gethostname(buf, sizeof(buf) - 1) != 0) std::strcpy(buf, "unknown");
    return buf;
}

}  // namespace

int main() {
    const std::int64_t events = env_int("BB_BENCH_SCHED_EVENTS", 1'000'000);
    const std::int64_t reps = std::max<std::int64_t>(1, env_int("BB_BENCH_SCHED_REPS", 5));
    const char* gate_env = std::getenv("BB_BENCH_SCHED_GATE");
    const bool gate = gate_env == nullptr || std::string{gate_env} != "off";

    std::printf("micro_sched: %lld events/workload, best of %lld reps\n",
                static_cast<long long>(events), static_cast<long long>(reps));

    // --- tick throughput ----------------------------------------------------
    WorkloadResult tick;
    {
        double best_new = 1e300;
        double best_legacy = 1e300;
        for (std::int64_t r = 0; r < reps; ++r) {
            sim::Scheduler fresh;
            fresh.reserve(64);
            best_new = std::min(best_new, run_tick(fresh, events));
            LegacyScheduler legacy;
            best_legacy = std::min(best_legacy, run_tick(legacy, events));
        }
        tick.new_mev_s = static_cast<double>(events) / best_new / 1e6;
        tick.legacy_mev_s = static_cast<double>(events) / best_legacy / 1e6;
        tick.speedup = best_legacy / best_new;
    }

    // --- cancellation churn -------------------------------------------------
    WorkloadResult churn;
    std::uint64_t fired_new = 0;
    std::uint64_t fired_legacy = 0;
    {
        double best_new = 1e300;
        double best_legacy = 1e300;
        for (std::int64_t r = 0; r < reps; ++r) {
            sim::Scheduler fresh;
            fresh.reserve(static_cast<std::size_t>(events));
            best_new = std::min(best_new, run_churn(fresh, events, &fired_new));
            LegacyScheduler legacy;
            best_legacy = std::min(best_legacy, run_churn(legacy, events, &fired_legacy));
        }
        churn.new_mev_s = static_cast<double>(events) / best_new / 1e6;
        churn.legacy_mev_s = static_cast<double>(events) / best_legacy / 1e6;
        churn.speedup = best_legacy / best_new;
    }
    if (fired_new != fired_legacy) {
        std::fprintf(stderr, "micro_sched: churn fired %llu (new) vs %llu (legacy)\n",
                     static_cast<unsigned long long>(fired_new),
                     static_cast<unsigned long long>(fired_legacy));
        return 1;
    }

    // --- allocation count: steady-state tick on a warmed scheduler ----------
    double allocs_per_event = 0.0;
    {
        sim::Scheduler sched;
        sched.reserve(64);
        (void)run_tick(sched, 1000);  // warm-up: size the arena, obs statics
        const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        (void)run_tick(sched, events);
        const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
        allocs_per_event = static_cast<double>(after - before) / static_cast<double>(events);
    }

    std::printf("%-6s | %-14s | %-14s | %s\n", "load", "new Mev/s", "legacy Mev/s",
                "speedup");
    std::printf("--------------------------------------------------\n");
    std::printf("%-6s | %-14.2f | %-14.2f | %.2fx\n", "tick", tick.new_mev_s,
                tick.legacy_mev_s, tick.speedup);
    std::printf("%-6s | %-14.2f | %-14.2f | %.2fx\n", "churn", churn.new_mev_s,
                churn.legacy_mev_s, churn.speedup);
    std::printf("allocations per small event (steady state): %.6f\n", allocs_per_event);

    const char* dir = std::getenv("BB_BENCH_JSON");
    std::string path{dir != nullptr ? dir : "."};
    if (path.empty() || path == "1") path = ".";
    path += "/BENCH_micro_sched.json";
    JsonWriter w{JsonWriter::Options{2, true}};
    w.begin_object();
    w.key("bench").value("micro_sched");
    w.key("host").value(host_name());
    w.key("events").value_int(static_cast<std::int64_t>(events));
    w.key("tick").begin_object_inline();
    w.key("new_mev_s").value_double(tick.new_mev_s, "%.3f");
    w.key("legacy_mev_s").value_double(tick.legacy_mev_s, "%.3f");
    w.key("speedup").value_double(tick.speedup, "%.3f");
    w.end_object();
    w.key("churn").begin_object_inline();
    w.key("new_mev_s").value_double(churn.new_mev_s, "%.3f");
    w.key("legacy_mev_s").value_double(churn.legacy_mev_s, "%.3f");
    w.key("speedup").value_double(churn.speedup, "%.3f");
    w.end_object();
    w.key("allocs_per_event_small").value_double(allocs_per_event, "%.6f");
    w.end_object();
    if (write_text_file(path, w.str() + "\n")) std::printf("json: wrote %s\n", path.c_str());

    const obs::ProcessStats ps = obs::process_stats();
    std::printf("process: max RSS %lld KiB, cpu %.2fs user %.2fs sys\n",
                static_cast<long long>(ps.max_rss_kb), ps.user_cpu_s, ps.system_cpu_s);

    if (gate) {
        if (allocs_per_event != 0.0) {
            std::fprintf(stderr,
                         "micro_sched: FAIL — %.6f heap allocations per small event "
                         "(contract: 0)\n",
                         allocs_per_event);
            return 1;
        }
        if (tick.speedup < 1.5) {
            std::fprintf(stderr,
                         "micro_sched: FAIL — tick speedup %.2fx vs legacy (< 1.5x gate)\n",
                         tick.speedup);
            return 1;
        }
        std::printf("gate: ok (tick %.2fx >= 1.5x, 0 allocs/event)\n", tick.speedup);
    } else {
        std::printf("gate: off\n");
    }
    return 0;
}
