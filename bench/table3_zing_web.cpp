// Table 3: ZING vs ground truth under Harpoon-style web-like traffic.
#include "zing_tables.h"

int main() {
    bb::bench::run_zing_table("Table 3: simple Poisson probing, web-like traffic",
                              "Sommers et al., SIGCOMM 2005, Table 3 / Figure 6",
                              bb::bench::web_workload());
    return 0;
}
