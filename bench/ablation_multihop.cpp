// Extension experiment: multi-hop paths (paper §6.2/§7 future work).
//
// Uncongested-but-busy upstream hops add queueing noise to probe one-way
// delays without adding loss, stressing the tau/alpha marking rule: the
// threshold must reject upstream delay variation while catching bottleneck
// congestion.
#include <cstdio>

#include "common.h"

namespace {

using namespace bb::bench;

void run_hops(int extra_hops) {
    auto tb = bench_testbed();
    tb.extra_hops = extra_hops;
    tb.extra_hop_rate_factor = 1.5;  // busy, but not the bottleneck
    // Reactive TCP traffic: slow-start bursts queue transiently at the
    // upstream hops (delay noise) while losses stay at the bottleneck.
    // (An open-loop burst source would be shaped by the upstream hop and
    // stop overloading the bottleneck, changing the truth across rows.)
    const auto wl = infinite_tcp_workload();

    bb::scenarios::Experiment exp{tb, wl, truth_for(wl)};
    bb::probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();

    const auto truth = exp.truth();
    const auto res = tool.analyze(exp.default_marking(0.3));
    std::uint64_t upstream_drops = 0;
    for (const auto& hop : exp.testbed().upstream_hops()) upstream_drops += hop->drops();
    const double est_dur =
        res.duration_basic.valid ? res.duration_basic.seconds(tool.slot_width()) : 0.0;
    std::printf("%-5d | %-9.4f %-9.4f | %-9.3f %-9.3f | %-14llu\n", extra_hops,
                truth.frequency, res.frequency.value, truth.mean_duration_s, est_dur,
                static_cast<unsigned long long>(upstream_drops));
}

}  // namespace

int main() {
    print_header("Ablation: extra upstream hops in front of the bottleneck (TCP, p = 0.3)",
                 "extension of Sommers et al., SIGCOMM 2005, Sections 6.2/7");
    std::printf("%-5s | %-19s | %-19s | %s\n", "hops", "loss frequency",
                "loss duration (s)", "upstream drops");
    std::printf("%-5s | %-9s %-9s | %-9s %-9s |\n", "", "true", "est", "true", "est");
    std::printf("----------------------------------------------------------------\n");
    for (const int hops : {0, 1, 2}) run_hops(hops);
    std::printf("\nexpected shape: estimates stay close to the single-hop case because\n"
                "upstream hops (faster than the bottleneck) add only small delay noise\n"
                "relative to the (1-alpha) high-water band and no loss of their own.\n");
    return 0;
}
