// Shared harness for the table/figure reproduction benches.
#ifndef BB_BENCH_COMMON_H
#define BB_BENCH_COMMON_H

#include <cstdint>
#include <string>

#include "scenarios/experiment.h"
#include "scenarios/replica_runner.h"
#include "scenarios/spec.h"

namespace bb::bench {

// Paper runs are 15 minutes.  BB_BENCH_DURATION_S overrides for quick looks.
[[nodiscard]] TimeNs bench_duration();
[[nodiscard]] std::uint64_t bench_seed();

// Monte Carlo controls for the table benches: BB_BENCH_REPLICAS independent
// replicas per row (default 3), run across BB_BENCH_THREADS workers
// (default 0 = all hardware threads).
[[nodiscard]] std::size_t bench_replicas();
[[nodiscard]] std::size_t bench_threads();

// The testbed scaled from the paper's OC3: defaults to 30 Mb/s with the same
// 50 ms one-way delay and 100 ms buffer.  BB_BENCH_RATE_MBPS overrides.
[[nodiscard]] scenarios::TestbedConfig bench_testbed();

// The bench testbed as a full scenario spec (cbr_uniform placeholder
// traffic), for benches that build the testbed through the
// scenarios::build_testbed factory instead of hand-wiring configs.
[[nodiscard]] scenarios::ScenarioSpec bench_scenario_spec();

// Scenario presets matching the paper's experiments (tcp_flows is scaled to
// keep the per-flow share of the bottleneck comparable to 40 flows on OC3).
[[nodiscard]] scenarios::WorkloadConfig infinite_tcp_workload();
[[nodiscard]] scenarios::WorkloadConfig cbr_uniform_workload();
[[nodiscard]] scenarios::WorkloadConfig cbr_multi_workload();
[[nodiscard]] scenarios::WorkloadConfig web_workload();

[[nodiscard]] scenarios::TruthConfig truth_for(const scenarios::WorkloadConfig& wl);

void print_header(const std::string& title, const std::string& paper_ref);
void print_truth(const measure::TruthSummary& t);

// Run one scenario with one BADABING tool at rate p and report the paper's
// row: true/estimated frequency and duration.
struct BadabingRow {
    double p{0.0};
    measure::TruthSummary truth;
    probes::BadabingResult result;
    double offered_load{0.0};
};
[[nodiscard]] BadabingRow run_badabing_row(const scenarios::WorkloadConfig& wl, double p,
                                           bool improved = false);
void print_badabing_table(const std::string& title, const std::string& paper_ref,
                          const std::vector<BadabingRow>& rows, TimeNs slot_width);

// Multi-replica version of a table row: n_replicas independent runs of the
// same scenario (seeds derived positionally from bench_seed()), executed
// across bench_threads() workers, plus the collapsed aggregate.  Aggregates
// are bit-identical for any thread count.
struct MultiRow {
    double p{0.0};
    std::vector<scenarios::ReplicaResult> replicas;
    scenarios::AggregateRow aggregate;
};
[[nodiscard]] MultiRow run_badabing_rows(const scenarios::WorkloadConfig& wl, double p,
                                         std::size_t n_replicas, bool improved = false);

// Table with mean +/- 95% bootstrap CI columns across replicas.
void print_badabing_ci_table(const std::string& title, const std::string& paper_ref,
                             const std::vector<MultiRow>& rows, TimeNs slot_width);

// When BB_BENCH_JSON is set, write the rows (aggregates + per-replica
// trajectories) as BENCH_<bench_name>.json into the directory it names
// ("1" or empty value = current directory).  Returns the path written, or
// empty if JSON emission is off.
std::string maybe_write_bench_json(const std::string& bench_name,
                                   const std::vector<MultiRow>& rows, TimeNs slot_width);

}  // namespace bb::bench

#endif  // BB_BENCH_COMMON_H
