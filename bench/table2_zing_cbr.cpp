// Table 2: ZING vs ground truth under CBR traffic with engineered
// constant-duration (68 ms) loss episodes at exponential spacing.
#include "zing_tables.h"

int main() {
    bb::bench::run_zing_table(
        "Table 2: simple Poisson probing, randomly spaced constant-duration episodes",
        "Sommers et al., SIGCOMM 2005, Table 2 / Figure 5",
        bb::bench::cbr_uniform_workload());
    return 0;
}
