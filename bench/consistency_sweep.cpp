// Consistency of the §5 estimators on a synthetic alternating-renewal
// congestion process, independent of any network simulation: F̂ and D̂ vs
// truth as the number of slots N grows (the convergence the paper proves).
#include <cstdio>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/synthetic.h"
#include "core/validation.h"
#include "util/rng.h"

int main() {
    using namespace bb;
    using namespace bb::core;

    std::printf("================================================================\n");
    std::printf("Consistency sweep: estimators on a synthetic renewal process\n");
    std::printf("reproduces: Sommers et al., SIGCOMM 2005, Section 5 claims\n");
    std::printf("process: geometric episodes mean 14 slots, gaps mean 1990 slots\n");
    std::printf("(F = 0.007, D = 14 slots); probe rate p = 0.3, improved design\n");
    std::printf("================================================================\n");
    std::printf("%-10s | %-9s %-9s | %-9s %-9s | %-9s\n", "N (slots)", "true F", "est F",
                "true D", "est D", "pair-asym");
    std::printf("----------------------------------------------------------------\n");

    for (const SlotIndex n : {10'000L, 40'000L, 160'000L, 640'000L, 2'560'000L}) {
        Rng rng{2024};
        const auto series = synth_congestion_series(rng, n, 14.0, 1990.0);
        ProbeProcessConfig pcfg;
        pcfg.p = 0.3;
        pcfg.improved = true;
        const auto design = design_probe_process(rng, n, pcfg);
        const auto obs =
            observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
        StateCounts counts;
        for (const auto& r : obs) counts.add(r);

        const auto truth = series_truth(series);
        const auto f = estimate_frequency(counts);
        const auto d = estimate_duration_basic(counts);
        const auto v = validate(counts);
        std::printf("%-10ld | %-9.5f %-9.5f | %-9.2f %-9.2f | %-9.3f\n", n, truth.frequency,
                    f.value, truth.mean_duration_slots, d.valid ? d.slots : 0.0,
                    v.pair_asymmetry);
    }
    std::printf("\nexpected shape: both estimates converge to the truth and the\n"
                "validation asymmetry shrinks as N grows (consistency, §5.2.2).\n");
    return 0;
}
