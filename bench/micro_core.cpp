// google-benchmark microbenchmarks for the estimation core: how cheaply a
// measurement host can run the BADABING pipeline (design, marking, tally,
// estimation) — relevant to §7's note on commodity-host limitations.
#include <benchmark/benchmark.h>

#include "core/estimators.h"
#include "core/marking.h"
#include "core/probe_process.h"
#include "core/synthetic.h"
#include "util/rng.h"

namespace {

using namespace bb;
using namespace bb::core;

void BM_DesignProbeProcess(benchmark::State& state) {
    const auto slots = static_cast<SlotIndex>(state.range(0));
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    cfg.improved = true;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng{seed++};
        auto design = design_probe_process(rng, slots, cfg);
        benchmark::DoNotOptimize(design.experiments.data());
    }
    state.SetItemsProcessed(state.iterations() * slots);
}
BENCHMARK(BM_DesignProbeProcess)->Arg(10'000)->Arg(180'000);

// Skip-ahead variant: one geometric gap draw per experiment instead of one
// Bernoulli per slot — distributionally identical design, ~1/p fewer draws.
void BM_DesignProbeProcessSkipAhead(benchmark::State& state) {
    const auto slots = static_cast<SlotIndex>(state.range(0));
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    cfg.improved = true;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng{seed++};
        auto design = design_probe_process_skip_ahead(rng, slots, cfg);
        benchmark::DoNotOptimize(design.experiments.data());
    }
    state.SetItemsProcessed(state.iterations() * slots);
}
BENCHMARK(BM_DesignProbeProcessSkipAhead)->Arg(10'000)->Arg(180'000);

void BM_ScoreAndEstimate(benchmark::State& state) {
    const auto slots = static_cast<SlotIndex>(state.range(0));
    Rng rng{7};
    const auto series = synth_congestion_series(rng, slots, 14.0, 986.0);
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    cfg.improved = true;
    const auto design = design_probe_process(rng, slots, cfg);
    const auto obs =
        observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
    for (auto _ : state) {
        StateCounts counts;
        for (const auto& r : obs) counts.add(r);
        auto f = estimate_frequency(counts);
        auto d = estimate_duration_improved(counts);
        benchmark::DoNotOptimize(f.value);
        benchmark::DoNotOptimize(d.slots);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(obs.size()));
}
BENCHMARK(BM_ScoreAndEstimate)->Arg(180'000);

void BM_CongestionMarking(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng{11};
    std::vector<ProbeOutcome> probes;
    probes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ProbeOutcome po;
        po.slot = static_cast<SlotIndex>(i);
        po.send_time = milliseconds(5) * static_cast<std::int64_t>(i);
        po.packets_sent = 3;
        po.packets_lost = rng.bernoulli(0.01) ? 1 : 0;
        po.max_owd = milliseconds(50) + microseconds(rng.uniform_int(0, 100'000));
        po.any_received = true;
        probes.push_back(po);
    }
    MarkingConfig cfg;
    for (auto _ : state) {
        CongestionMarker marker{cfg};
        auto marks = marker.mark(probes);
        benchmark::DoNotOptimize(marks.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CongestionMarking)->Arg(10'000)->Arg(100'000);

void BM_SynthSeries(benchmark::State& state) {
    const auto slots = static_cast<SlotIndex>(state.range(0));
    std::uint64_t seed = 3;
    for (auto _ : state) {
        Rng rng{seed++};
        auto series = synth_congestion_series(rng, slots, 14.0, 986.0);
        benchmark::DoNotOptimize(series.size());
    }
    state.SetItemsProcessed(state.iterations() * slots);
}
BENCHMARK(BM_SynthSeries)->Arg(1'000'000);

}  // namespace

BENCHMARK_MAIN();
