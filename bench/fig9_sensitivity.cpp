// Figure 9: sensitivity of the loss-frequency estimate to the marking
// parameters.  (a) sweep alpha at fixed tau = 80 ms; (b) sweep tau at fixed
// alpha = 0.1; both across probe rates p.  A single simulation run per p is
// re-analyzed under every threshold setting (the probe outcomes are
// identical; only the marking changes), exactly as re-processing a trace.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "common.h"
#include "util/thread_pool.h"

namespace {

using namespace bb::bench;

struct RunHandle {
    double p{0.0};
    double true_freq{0.0};
    std::unique_ptr<bb::scenarios::Experiment> exp;
    bb::probes::BadabingTool* tool{nullptr};
};

RunHandle run_for(double p) {
    RunHandle h;
    h.p = p;
    const auto wl = cbr_uniform_workload();
    h.exp = std::make_unique<bb::scenarios::Experiment>(bench_testbed(), wl, truth_for(wl));
    bb::probes::BadabingConfig bc;
    bc.p = p;
    bc.total_slots = 0;
    h.tool = &h.exp->add_badabing(bc);
    h.exp->run();
    h.true_freq = h.exp->truth().frequency;
    return h;
}

double freq_at(const RunHandle& h, double alpha, long tau_ms) {
    bb::core::MarkingConfig m;
    m.alpha = alpha;
    m.tau = bb::milliseconds(tau_ms);
    return h.tool->analyze(m).frequency.value;
}

}  // namespace

int main() {
    print_header("Figure 9: loss-frequency sensitivity to alpha and tau",
                 "Sommers et al., SIGCOMM 2005, Figures 9(a) and 9(b)");

    // The per-p simulations are independent; run them across the worker
    // pool (each RunHandle owns its whole Experiment, results by index).
    const std::vector<double> ps{0.1, 0.3, 0.5, 0.7, 0.9};
    std::vector<RunHandle> runs(ps.size());
    {
        bb::ThreadPool pool{bench_threads()};
        pool.for_each_index(ps.size(),
                            [&ps, &runs](std::size_t i) { runs[i] = run_for(ps[i]); });
    }

    std::filesystem::create_directories("fig_data");
    std::ofstream csv{"fig_data/fig9_sensitivity.csv"};
    csv << "p,true_freq,alpha,tau_ms,est_freq\n";
    for (const auto& h : runs) {
        for (const double a : {0.05, 0.10, 0.20}) {
            csv << h.p << ',' << h.true_freq << ',' << a << ",80," << freq_at(h, a, 80)
                << '\n';
        }
        for (const long t : {20L, 40L}) {
            csv << h.p << ',' << h.true_freq << ",0.1," << t << ','
                << freq_at(h, 0.10, t) << '\n';
        }
    }

    std::printf("(a) tau fixed at 80 ms, alpha in {0.05, 0.10, 0.20}\n");
    std::printf("%-5s | %-9s | %-11s %-11s %-11s\n", "p", "true", "alpha=0.05", "alpha=0.10",
                "alpha=0.20");
    std::printf("------------------------------------------------------\n");
    for (const auto& h : runs) {
        std::printf("%-5.1f | %-9.4f | %-11.4f %-11.4f %-11.4f\n", h.p, h.true_freq,
                    freq_at(h, 0.05, 80), freq_at(h, 0.10, 80), freq_at(h, 0.20, 80));
    }

    std::printf("\n(b) alpha fixed at 0.10, tau in {20, 40, 80} ms\n");
    std::printf("%-5s | %-9s | %-11s %-11s %-11s\n", "p", "true", "tau=20ms", "tau=40ms",
                "tau=80ms");
    std::printf("------------------------------------------------------\n");
    for (const auto& h : runs) {
        std::printf("%-5.1f | %-9.4f | %-11.4f %-11.4f %-11.4f\n", h.p, h.true_freq,
                    freq_at(h, 0.10, 20), freq_at(h, 0.10, 40), freq_at(h, 0.10, 80));
    }

    std::printf("\nexpected shape (paper): larger alpha or tau -> more probes marked\n"
                "congested -> higher frequency estimates; low p under-estimates with\n"
                "tight thresholds, high p over-estimates with permissive ones, and the\n"
                "curves cross the true frequency in between.\n");
    return 0;
}
