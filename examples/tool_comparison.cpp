// Tool comparison: BADABING vs Poisson probing (ZING) on an identical path
// and traffic mix, at a matched probe budget — the paper's headline result
// (§6.3) as a narrated example.
#include <cstdio>

#include "scenarios/experiment.h"

namespace {

using namespace bb;

scenarios::WorkloadConfig workload() {
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::infinite_tcp;
    wl.duration = seconds_i(600);
    wl.tcp_flows = 10;
    wl.seed = 5;
    return wl;
}

scenarios::TestbedConfig testbed() {
    scenarios::TestbedConfig tb;
    tb.bottleneck_rate_bps = 30'000'000;
    return tb;
}

}  // namespace

int main() {
    const double p = 0.3;

    // Run 1: BADABING.
    scenarios::Experiment exp_bb{testbed(), workload()};
    probes::BadabingConfig bc;
    bc.p = p;
    bc.total_slots = 0;
    auto& badabing = exp_bb.add_badabing(bc);
    exp_bb.run();
    const auto truth_bb = exp_bb.truth();
    const auto res_bb = badabing.analyze(exp_bb.default_marking(p));

    // Run 2: ZING at the same packet rate and size.
    scenarios::Experiment exp_z{testbed(), workload()};
    const double pkts_per_s = p * 2.0 * 3.0 / 0.005;
    probes::ZingProber::Config zc;
    zc.packet_bytes = 600;
    zc.mean_interval = seconds(1.0 / pkts_per_s);
    auto& zing = exp_z.add_zing(zc);
    exp_z.run();
    const auto truth_z = exp_z.truth();
    const auto res_z = zing.result();

    std::printf("Path: 30 Mb/s bottleneck, reactive TCP cross traffic, 600 s runs.\n");
    std::printf("Both tools spend the same probe budget (~%.0f pkts/s of 600 B).\n\n",
                pkts_per_s);

    std::printf("BADABING (p = %.1f):\n", p);
    std::printf("  truth    : frequency %.4f, duration %.3f s\n", truth_bb.frequency,
                truth_bb.mean_duration_s);
    std::printf("  estimate : frequency %.4f, duration %.3f s\n", res_bb.frequency.value,
                res_bb.duration_basic.valid
                    ? res_bb.duration_basic.seconds(badabing.slot_width())
                    : 0.0);

    std::printf("\nZING (Poisson, matched rate):\n");
    std::printf("  truth    : frequency %.4f, duration %.3f s\n", truth_z.frequency,
                truth_z.mean_duration_s);
    std::printf("  estimate : frequency %.4f, duration %.3f s  (%llu/%llu probes lost)\n",
                res_z.loss_frequency, res_z.mean_duration_s,
                static_cast<unsigned long long>(res_z.lost),
                static_cast<unsigned long long>(res_z.sent));

    std::printf("\nReading the result: ZING only sees losses that happen to hit its own\n"
                "packets, so under reactive traffic it reports a tiny loss rate and\n"
                "near-zero durations; BADABING asks whether each probed *slot* was\n"
                "congested (loss or near-full one-way delay) and recovers both episode\n"
                "frequency and duration from the y-state bookkeeping of Section 5.\n");
    return 0;
}
