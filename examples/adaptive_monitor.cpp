// Adaptive monitor: the open-ended measurement style of paper §5.1/§7 using
// the built-in AdaptiveBadabingTool — probe at low impact, let the §5.4
// validation-based stopping rule decide when the estimates are trustworthy,
// and stop probing automatically.
#include <cstdio>

#include "probes/adaptive_badabing.h"
#include "scenarios/testbed.h"
#include "scenarios/workload.h"

int main() {
    using namespace bb;

    scenarios::TestbedConfig testbed;
    testbed.bottleneck_rate_bps = 30'000'000;
    scenarios::Testbed tb{testbed};

    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::cbr_uniform;
    wl.duration = seconds_i(3600);  // the workload just keeps going...
    wl.mean_episode_gap = seconds_i(8);
    wl.seed = 11;
    scenarios::Workload workload{tb, wl};

    probes::AdaptiveBadabingConfig cfg;
    cfg.p = 0.2;
    cfg.improved = true;
    cfg.max_duration = seconds_i(3600);
    cfg.evaluation_interval = seconds_i(30);
    cfg.stopping.min_transitions = 60;
    cfg.stopping.tolerance = 0.25;
    cfg.marking.tau = milliseconds(40);
    cfg.marking.alpha = 0.1;
    probes::AdaptiveBadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{wl.seed ^ 0xAD}};
    tb.fwd_demux().bind(cfg.flow, tool);

    std::printf("monitoring at p = %.2f; the tool stops itself when the Sec 5.4\n"
                "validation tests converge...\n\n",
                cfg.p);

    // ...the monitor stops on its own; run until it does.
    while (!tool.stopped() && tb.sched().now() < wl.duration) {
        tb.sched().run_until(tb.sched().now() + seconds_i(60));
    }

    const auto snap = tool.snapshot();
    std::printf("stopped at t = %.0f s with decision: %s\n", tool.stopped_at().to_seconds(),
                tool.decision() == core::StoppingRule::Decision::stop_valid ? "VALID"
                : tool.decision() == core::StoppingRule::Decision::stop_invalid
                    ? "INVALID (assumptions rejected)"
                    : "hard cap reached");
    std::printf("probes sent: %llu (%zu experiments)\n",
                static_cast<unsigned long long>(tool.probes_sent()),
                tool.experiments_started());
    std::printf("frequency estimate : %.4f\n", snap.frequency.value);
    std::printf("duration estimate  : %.3f s (basic) / %.3f s (improved)\n",
                snap.duration_basic.valid ? snap.duration_basic.slots * 0.005 : 0.0,
                snap.duration_improved.valid ? snap.duration_improved.slots * 0.005 : 0.0);
    std::printf("validation         : pair asymmetry %.3f, violations %.4f\n",
                snap.validation.pair_asymmetry, snap.validation.violation_fraction);
    return 0;
}
