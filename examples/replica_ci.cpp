// Multi-replica measurement with confidence intervals: the quickstart
// scenario, N times in parallel.
//
//   $ ./examples/replica_ci
//
// A single 5-minute run gives one point estimate; the paper (§5.2, §8)
// stresses that the *variance* of the estimators is the interesting part.
// ReplicaRunner runs independent replicas of the same experiment — each
// with its own RNG stream derived positionally from a master seed — across
// all CPU cores, and reports mean, stddev and a 95% percentile-bootstrap
// confidence interval.  Aggregates are bit-identical for any thread count.
#include <cstdio>

#include "scenarios/replica_runner.h"

int main() {
    using namespace bb;

    // The quickstart path: 30 Mb/s drop-tail dumbbell, CBR cross traffic
    // with engineered 68 ms loss episodes, BADABING at p = 0.3.
    scenarios::ReplicaPlan plan;
    plan.testbed.bottleneck_rate_bps = 30'000'000;
    plan.workload.kind = scenarios::TrafficKind::cbr_uniform;
    plan.workload.duration = seconds_i(300);
    plan.workload.episode_duration = milliseconds(68);
    plan.workload.mean_episode_gap = seconds_i(10);
    plan.probe.p = 0.3;
    plan.probe.total_slots = 0;  // sized to the workload automatically

    scenarios::ReplicaRunner::Config cfg;
    cfg.replicas = 8;
    cfg.threads = 0;  // all hardware threads
    cfg.master_seed = 42;

    const scenarios::ReplicaRunner runner{cfg};
    std::printf("running %zu replicas of a 300 s CBR scenario (p = %.1f)...\n\n",
                cfg.replicas, plan.probe.p);
    const auto results = runner.run(plan);
    const auto agg = runner.aggregate(plan, results);

    std::printf("%-8s | %-10s | %-10s | %-10s\n", "replica", "true freq", "est freq",
                "est dur(s)");
    for (const auto& r : results) {
        std::printf("%-8zu | %-10.4f | %-10.4f | %-10.3f\n", r.index, r.truth.frequency,
                    r.est_frequency(), r.est_duration_s(plan.probe.slot_width));
    }

    std::printf("\naggregate over %zu replicas (mean +/- 95%% bootstrap CI):\n",
                results.size());
    std::printf("  true frequency : %.4f (sd %.4f)\n", agg.true_frequency.mean,
                agg.true_frequency.stddev);
    std::printf("  est  frequency : %.4f [%.4f, %.4f]\n", agg.est_frequency.mean,
                agg.est_frequency.ci.lo, agg.est_frequency.ci.hi);
    std::printf("  true duration  : %.3f s (sd %.3f)\n", agg.true_duration_s.mean,
                agg.true_duration_s.stddev);
    std::printf("  est  duration  : %.3f s [%.3f, %.3f]\n", agg.est_duration_s.mean,
                agg.est_duration_s.ci.lo, agg.est_duration_s.ci.hi);

    std::printf("\nReading the result: the CI tells you how much of the gap between the\n"
                "estimate and the truth is estimator bias (persists across replicas)\n"
                "versus sampling noise (averages out).  Single-run comparisons cannot\n"
                "separate the two.\n");
    return 0;
}
