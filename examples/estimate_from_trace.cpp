// Using the estimation core without any simulator: feed your own probe
// records (e.g. parsed from a real BADABING receiver log) into the marking,
// tally and estimation pipeline.
//
// Here the "trace" is generated synthetically: an alternating-renewal
// congestion process observed through the paper's fidelity model, with
// imperfect reporting (p1 != p2) to show why the improved estimator exists.
#include <cstdio>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/synthetic.h"
#include "core/validation.h"
#include "util/rng.h"

int main() {
    using namespace bb;
    using namespace bb::core;

    // The unknown ground truth: episodes of ~70 ms (14 slots of 5 ms),
    // roughly 0.7% of slots congested.
    Rng rng{2025};
    const SlotIndex slots = 1'000'000;
    const auto truth_series = synth_congestion_series(rng, slots, 14.0, 1986.0);
    const auto truth = series_truth(truth_series);

    // The measurement: improved design at p = 0.4, with probes that miss an
    // on-going-congestion state more often than a boundary state
    // (p2 = 0.6 < p1 = 0.9).
    ProbeProcessConfig pcfg;
    pcfg.p = 0.4;
    pcfg.improved = true;
    const auto design = design_probe_process(rng, slots, pcfg);
    const auto reports =
        observe_with_fidelity(design.experiments, truth_series, FidelityModel{0.9, 0.6}, rng);

    // The analysis: exactly what you would run on real receiver logs.
    EstimatorAccumulator acc;
    for (const auto& r : reports) acc.add(r);

    const auto freq = acc.frequency();
    const auto basic = acc.duration_basic();
    const auto improved = acc.duration_improved();
    const auto validation = validate(acc.counts());

    std::printf("experiments analyzed : %llu basic + %llu extended\n",
                static_cast<unsigned long long>(acc.counts().basic_total()),
                static_cast<unsigned long long>(acc.counts().extended_total()));
    std::printf("true frequency       : %.5f\n", truth.frequency);
    std::printf("estimated frequency  : %.5f\n", freq.value);
    std::printf("true duration        : %.2f slots\n", truth.mean_duration_slots);
    std::printf("basic estimator      : %.2f slots  <- biased low, assumes p1 == p2\n",
                basic.valid ? basic.slots : 0.0);
    std::printf("improved estimator   : %.2f slots  (r_hat = %.3f)\n",
                improved.valid ? improved.slots : 0.0, improved.r_hat.value_or(0.0));
    std::printf("validation           : pair asymmetry %.3f, violations %.4f -> %s\n",
                validation.pair_asymmetry, validation.violation_fraction,
                validation.acceptable() ? "estimates usable" : "estimates suspect");
    std::printf("\nsee Section 7 guidance: expected StdDev(duration) ~ %.3f for this run\n",
                duration_stddev_guidance(pcfg.p, slots,
                                          static_cast<double>(truth.episodes) /
                                              static_cast<double>(slots)));
    return 0;
}
