// Path monitor: open-ended, self-validating measurement (paper §5.4/§7).
//
// Runs BADABING continuously at a low probe rate against web-like cross
// traffic and evaluates the validation tests after every reporting period.
// The monitor reports estimates only once the stopping rule says the
// symmetry assumptions have converged — the "self-calibrating" usage the
// paper advocates for wide-area deployment.
#include <cstdio>
#include <unordered_map>

#include "core/estimators.h"
#include "core/marking.h"
#include "core/validation.h"
#include "scenarios/experiment.h"

namespace {

using namespace bb;

// Re-analyze only the probes sent before `horizon` (everything already
// received); demonstrates driving the core estimation API directly.
core::StateCounts counts_up_to(const probes::BadabingTool& tool,
                               const core::MarkingConfig& marking, TimeNs horizon) {
    std::vector<core::ProbeOutcome> outcomes;
    for (const auto& po : tool.outcomes()) {
        if (po.send_time < horizon) outcomes.push_back(po);
    }
    core::CongestionMarker marker{marking};
    const auto marks = marker.mark(outcomes);
    std::unordered_map<core::SlotIndex, bool> congested;
    for (const auto& m : marks) congested[m.slot] = m.congested;

    const core::SlotIndex last_slot =
        outcomes.empty() ? 0 : outcomes.back().slot;
    std::vector<core::Experiment> done;
    for (const auto& e : tool.design().experiments) {
        if (e.start_slot + e.probes() - 1 <= last_slot) done.push_back(e);
    }
    core::StateCounts counts;
    for (const auto& r : core::score_experiments(done, [&congested](core::SlotIndex s) {
             const auto it = congested.find(s);
             return it != congested.end() && it->second;
         })) {
        counts.add(r);
    }
    return counts;
}

}  // namespace

int main() {
    using namespace bb;

    scenarios::TestbedConfig testbed;
    testbed.bottleneck_rate_bps = 30'000'000;

    scenarios::WorkloadConfig workload;
    workload.kind = scenarios::TrafficKind::web;
    workload.duration = seconds_i(900);
    workload.seed = 17;
    scenarios::TruthConfig truth_cfg;
    truth_cfg.delay_based = true;

    scenarios::Experiment experiment{testbed, workload, truth_cfg};

    const double p = 0.2;  // low impact: long-running monitor
    probes::BadabingConfig probe_cfg;
    probe_cfg.p = p;
    probe_cfg.improved = true;  // extended experiments for r_hat + validation
    probe_cfg.total_slots = 0;
    auto& tool = experiment.add_badabing(probe_cfg);
    const auto marking = experiment.default_marking(p);

    core::StoppingRule::Config rule_cfg;
    rule_cfg.min_transitions = 40;
    rule_cfg.tolerance = 0.25;
    const core::StoppingRule rule{rule_cfg};

    std::printf("monitoring path (p = %.2f, improved design, 30 s reporting periods)\n\n", p);
    std::printf("%-8s | %-9s | %-11s | %-10s | %s\n", "t (s)", "freq est", "dur est (s)",
                "pair-asym", "decision");
    std::printf("---------------------------------------------------------------\n");

    bool stopped = false;
    for (TimeNs t = seconds_i(30); t <= workload.duration; t += seconds_i(30)) {
        experiment.testbed().sched().run_until(t);
        const auto counts = counts_up_to(tool, marking, t - seconds_i(1));
        const auto freq = core::estimate_frequency(counts);
        const auto dur = core::estimate_duration_improved(counts);
        const auto validation = core::validate(counts);
        const auto decision = rule.evaluate(counts);
        const char* decision_str =
            decision == core::StoppingRule::Decision::stop_valid     ? "STOP (valid)"
            : decision == core::StoppingRule::Decision::stop_invalid ? "STOP (invalid)"
                                                                     : "keep going";
        std::printf("%-8.0f | %-9.4f | %-11.3f | %-10.3f | %s\n", t.to_seconds(), freq.value,
                    dur.valid ? dur.slots * 0.005 : 0.0, validation.pair_asymmetry,
                    decision_str);
        if (decision != core::StoppingRule::Decision::keep_going) {
            stopped = true;
            // Finish the workload so ground truth covers the same window.
            experiment.run();
            const auto truth = experiment.truth();
            std::printf("\nmonitor stopped at t = %.0f s with a %s estimate\n",
                        t.to_seconds(),
                        decision == core::StoppingRule::Decision::stop_valid ? "validated"
                                                                             : "REJECTED");
            std::printf("ground truth over the full run: frequency %.4f, duration %.3f s\n",
                        truth.frequency, truth.mean_duration_s);
            break;
        }
    }
    if (!stopped) {
        std::printf("\nrun ended before the stopping rule fired; report the last\n"
                    "estimates with their validation figures attached.\n");
    }
    return 0;
}
