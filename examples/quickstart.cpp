// Quickstart: measure loss-episode frequency and duration on a congested
// path with BADABING, and compare against the simulator's ground truth.
//
//   $ ./examples/quickstart
//
// Builds the paper's dumbbell (30 Mb/s bottleneck, 50 ms delay, 100 ms
// buffer), drives CBR traffic with engineered 68 ms loss episodes, probes at
// p = 0.3, and prints both views.
#include <cstdio>

#include "scenarios/experiment.h"

int main() {
    using namespace bb;

    // 1. The path under test: a dumbbell with a drop-tail bottleneck.
    scenarios::TestbedConfig testbed;
    testbed.bottleneck_rate_bps = 30'000'000;

    // 2. Cross traffic: constant-duration loss episodes every ~10 s.
    scenarios::WorkloadConfig workload;
    workload.kind = scenarios::TrafficKind::cbr_uniform;
    workload.duration = seconds_i(300);
    workload.episode_duration = milliseconds(68);
    workload.mean_episode_gap = seconds_i(10);
    workload.seed = 42;

    scenarios::Experiment experiment{testbed, workload};

    // 3. The measurement tool: BADABING with the paper's defaults
    //    (5 ms slots, 3-packet probes of 600 B, probe rate p).
    const double p = 0.3;
    probes::BadabingConfig probe_cfg;
    probe_cfg.p = p;
    probe_cfg.total_slots = 0;  // sized to the workload automatically
    auto& tool = experiment.add_badabing(probe_cfg);

    // 4. Run and analyze.  Marking parameters follow the paper's rules:
    //    tau = expected inter-probe gap plus one standard deviation,
    //    alpha chosen by probe rate.
    experiment.run();
    const auto truth = experiment.truth();
    const auto result = tool.analyze(experiment.default_marking(p));

    std::printf("ground truth : frequency %.4f, mean episode duration %.3f s "
                "(%zu episodes)\n",
                truth.frequency, truth.mean_duration_s, truth.episodes);
    std::printf("badabing     : frequency %.4f, mean episode duration %.3f s\n",
                result.frequency.value,
                result.duration_basic.valid
                    ? result.duration_basic.seconds(tool.slot_width())
                    : 0.0);
    std::printf("probe budget : %llu probes (%llu packets), %.2f%% of the bottleneck\n",
                static_cast<unsigned long long>(result.probes_sent),
                static_cast<unsigned long long>(result.packets_sent),
                100.0 * tool.offered_load_fraction(testbed.bottleneck_rate_bps));
    std::printf("validation   : |#01-#10| asymmetry %.3f (%s)\n",
                result.validation.pair_asymmetry,
                result.validation.acceptable() ? "acceptable" : "suspect");
    return 0;
}
