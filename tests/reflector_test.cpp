// Packet reflection and the one-way-vs-RTT marking distinction.
#include <gtest/gtest.h>

#include "probes/badabing.h"
#include "scenarios/experiment.h"
#include "sim/router.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

TEST(Reflector, SwapsAddressesAndPreservesTimestamp) {
    sim::CountingSink sink;
    sim::Reflector reflector{sink};
    sim::Packet p;
    p.src_addr = 1;
    p.dst_addr = 2;
    p.sent_at = milliseconds(123);
    reflector.accept(p);
    EXPECT_EQ(reflector.reflected(), 1u);
    EXPECT_EQ(sink.last().src_addr, 2u);
    EXPECT_EQ(sink.last().dst_addr, 1u);
    EXPECT_EQ(sink.last().sent_at, milliseconds(123));
}

TEST(Reflector, RttMarkingSeesPhantomCongestionFromReversePath) {
    // Forward path idle; reverse path congested.  A one-way tool must report
    // zero loss frequency; an RTT (reflected) tool reports phantom
    // congestion -- the reason BADABING measures one-way delay.
    const auto run = [&](bool rtt) {
        sim::Scheduler sched;
        sim::FlowDemux fwd_demux;
        sim::FlowDemux rev_demux;
        sim::CountingSink blackhole;
        fwd_demux.set_default(blackhole);
        rev_demux.set_default(blackhole);

        sim::QueueBase::LinkConfig link;
        link.rate_bps = 10'000'000;
        link.prop_delay = milliseconds(20);
        link.capacity_time = milliseconds(100);
        sim::BottleneckQueue fwd_queue{sched, link, fwd_demux};
        sim::BottleneckQueue rev_queue{sched, link, rev_demux};

        // Congest only the reverse direction.
        traffic::CbrSource::Config cbr;
        cbr.rate_bps = 12'000'000;
        cbr.flow = 99;
        cbr.stop = seconds_i(120);
        traffic::CbrSource rev_load{sched, cbr, rev_queue};

        probes::BadabingConfig bc;
        bc.p = 0.4;
        bc.total_slots = seconds_i(120) / bc.slot_width;
        probes::BadabingTool tool{sched, bc, fwd_queue, Rng{5}};
        sim::Reflector reflector{rev_queue};
        if (rtt) {
            fwd_demux.bind(bc.flow, reflector);
            rev_demux.bind(bc.flow, tool);
        } else {
            fwd_demux.bind(bc.flow, tool);
        }
        sched.run_until(seconds_i(124));

        core::MarkingConfig marking;
        marking.tau = milliseconds(20);
        marking.alpha = 0.1;
        return tool.analyze(marking).frequency.value;
    };

    const double one_way = run(false);
    const double rtt = run(true);
    EXPECT_DOUBLE_EQ(one_way, 0.0) << "forward path is idle";
    EXPECT_GT(rtt, 0.05) << "reflected probes absorb the reverse congestion";
}

}  // namespace
}  // namespace bb
