#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "scenarios/testbed.h"
#include "sim/link.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

sim::QueueBase::LinkConfig link_cfg() {
    sim::QueueBase::LinkConfig cfg;
    cfg.rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(10);
    cfg.capacity_bytes = 125'000;  // 100 ms at 10 Mb/s
    return cfg;
}

sim::RedQueue::RedParams red_params() {
    sim::RedQueue::RedParams p;
    p.min_threshold = 0.2;
    p.max_threshold = 0.6;
    p.max_drop_probability = 0.1;
    p.weight = 0.02;
    return p;
}

TEST(RedQueue, NoDropsUnderLightLoad) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{1}};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 5'000'000;  // 50% load: queue stays near empty
    cbr.stop = seconds_i(10);
    traffic::CbrSource src{sched, cbr, queue};
    sched.run_until(seconds_i(11));
    EXPECT_EQ(queue.drops(), 0u);
    EXPECT_GT(queue.departures(), 0u);
    EXPECT_LT(queue.average_queue_bytes(), 0.2 * 125'000.0);
}

TEST(RedQueue, EarlyDropsBeforeBufferFills) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{2}};
    std::int64_t max_occupancy = 0;
    queue.on_enqueue([&](const sim::QueueEvent& ev) {
        max_occupancy = std::max(max_occupancy, ev.queue_bytes_after);
    });
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 15'000'000;  // sustained 1.5x overload
    cbr.stop = seconds_i(10);
    traffic::CbrSource src{sched, cbr, queue};
    sched.run_until(seconds_i(11));
    EXPECT_GT(queue.early_drops() + queue.forced_drops(), 0u);
    // RED keeps the standing queue away from the tail: occupancy should stay
    // well below the physical capacity most of the time.
    EXPECT_LT(max_occupancy, 125'000);
}

TEST(RedQueue, DropsSpreadOverTimeUnlikeDropTail) {
    // Drop-tail drops cluster at buffer-full instants; RED spreads them.
    // Compare the drop count dispersion over 1-second bins.
    const auto run = [&](bool red) {
        sim::Scheduler sched;
        sim::CountingSink sink;
        std::unique_ptr<sim::QueueBase> queue;
        if (red) {
            queue = std::make_unique<sim::RedQueue>(sched, link_cfg(), red_params(), sink,
                                                    Rng{3});
        } else {
            queue = std::make_unique<sim::BottleneckQueue>(sched, link_cfg(), sink);
        }
        std::vector<int> bins(30, 0);
        queue->on_drop([&](const sim::QueueEvent& ev) {
            const auto b = static_cast<std::size_t>(ev.at.to_seconds());
            if (b < bins.size()) ++bins[b];
        });
        traffic::CbrSource::Config cbr;
        cbr.rate_bps = 10'800'000;  // mild 8% overload
        cbr.stop = seconds_i(30);
        traffic::CbrSource src{sched, cbr, *queue};
        sched.run_until(seconds_i(31));
        int nonzero = 0;
        for (int b : bins) {
            if (b > 0) ++nonzero;
        }
        return nonzero;
    };
    const int red_bins = run(true);
    const int tail_bins = run(false);
    // Under mild overload RED starts dropping early and keeps dropping,
    // while drop-tail waits ~ 1 s for the buffer to fill first.
    EXPECT_GE(red_bins, tail_bins);
    EXPECT_GT(red_bins, 20);
}

TEST(RedQueue, AverageAgesDuringIdle) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{4}};
    // Load the queue briefly, then go idle and poke it once.
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 15'000'000;
    cbr.stop = seconds_i(2);
    traffic::CbrSource src{sched, cbr, queue};
    sched.run_until(seconds_i(2));
    const double avg_busy = queue.average_queue_bytes();
    EXPECT_GT(avg_busy, 0.0);
    sched.schedule_at(seconds_i(10), [&] {
        sim::Packet p;
        p.id = 999;
        p.size_bytes = 1000;
        queue.accept(p);
    });
    sched.run();
    EXPECT_LT(queue.average_queue_bytes(), avg_busy * 0.1);
}

TEST(Testbed, RedDisciplineSelectable) {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.discipline = scenarios::QueueDiscipline::red;
    scenarios::Testbed tb{cfg};
    // The bottleneck behaves as a queue regardless of discipline.
    EXPECT_GT(tb.bottleneck().capacity_bytes(), 0);
    EXPECT_EQ(tb.bottleneck().rate_bps(), 10'000'000);
    EXPECT_NE(dynamic_cast<sim::RedQueue*>(&tb.bottleneck()), nullptr);
}

TEST(Testbed, ExtraHopsChainInFrontOfBottleneck) {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.extra_hops = 2;
    cfg.extra_hop_rate_factor = 2.0;
    scenarios::Testbed tb{cfg};
    ASSERT_EQ(tb.upstream_hops().size(), 2u);
    EXPECT_EQ(tb.upstream_hops()[0]->rate_bps(), 20'000'000);

    // Traffic injected at forward_in() must traverse the chain and still
    // reach the demux after the bottleneck.
    sim::CountingSink sink;
    tb.fwd_demux().bind(1, sink);
    sim::Packet p;
    p.id = 1;
    p.flow = 1;
    p.size_bytes = 1000;
    tb.sched().schedule_at(TimeNs::zero(), [&] { tb.forward_in().accept(p); });
    tb.sched().run();
    EXPECT_EQ(sink.packets(), 1u);
    EXPECT_EQ(tb.bottleneck().departures(), 1u);
    EXPECT_EQ(tb.upstream_hops()[0]->departures(), 1u);
}

TEST(Testbed, MultiHopCongestionStillMeasurable) {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.extra_hops = 1;
    scenarios::Testbed tb{cfg};
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 14'000'000;  // below the 15 Mb/s first hop, above bottleneck
    cbr.stop = seconds_i(10);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};
    tb.sched().run_until(seconds_i(11));
    EXPECT_GT(mon.drops_total(), 0u);
    EXPECT_EQ(tb.upstream_hops()[0]->drops(), 0u) << "first hop must not congest";
}

}  // namespace
}  // namespace bb
