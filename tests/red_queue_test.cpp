#include <gtest/gtest.h>

#include <cmath>

#include "measure/loss_monitor.h"
#include "scenarios/testbed.h"
#include "sim/link.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

sim::QueueBase::LinkConfig link_cfg() {
    sim::QueueBase::LinkConfig cfg;
    cfg.rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(10);
    cfg.capacity_bytes = 125'000;  // 100 ms at 10 Mb/s
    return cfg;
}

sim::RedQueue::RedParams red_params() {
    sim::RedQueue::RedParams p;
    p.min_threshold = 0.2;
    p.max_threshold = 0.6;
    p.max_drop_probability = 0.1;
    p.weight = 0.02;
    return p;
}

TEST(RedQueue, NoDropsUnderLightLoad) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{1}};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 5'000'000;  // 50% load: queue stays near empty
    cbr.stop = seconds_i(10);
    traffic::CbrSource src{sched, cbr, queue};
    sched.run_until(seconds_i(11));
    EXPECT_EQ(queue.drops(), 0u);
    EXPECT_GT(queue.departures(), 0u);
    EXPECT_LT(queue.average_queue_bytes(), 0.2 * 125'000.0);
}

TEST(RedQueue, EarlyDropsBeforeBufferFills) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{2}};
    std::int64_t max_occupancy = 0;
    queue.on_enqueue([&](const sim::QueueEvent& ev) {
        max_occupancy = std::max(max_occupancy, ev.queue_bytes_after);
    });
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 15'000'000;  // sustained 1.5x overload
    cbr.stop = seconds_i(10);
    traffic::CbrSource src{sched, cbr, queue};
    sched.run_until(seconds_i(11));
    EXPECT_GT(queue.early_drops() + queue.forced_drops(), 0u);
    // RED keeps the standing queue away from the tail: occupancy should stay
    // well below the physical capacity most of the time.
    EXPECT_LT(max_occupancy, 125'000);
}

TEST(RedQueue, DropsSpreadOverTimeUnlikeDropTail) {
    // Drop-tail drops cluster at buffer-full instants; RED spreads them.
    // Compare the drop count dispersion over 1-second bins.
    const auto run = [&](bool red) {
        sim::Scheduler sched;
        sim::CountingSink sink;
        std::unique_ptr<sim::QueueBase> queue;
        if (red) {
            queue = std::make_unique<sim::RedQueue>(sched, link_cfg(), red_params(), sink,
                                                    Rng{3});
        } else {
            queue = std::make_unique<sim::BottleneckQueue>(sched, link_cfg(), sink);
        }
        std::vector<int> bins(30, 0);
        queue->on_drop([&](const sim::QueueEvent& ev) {
            const auto b = static_cast<std::size_t>(ev.at.to_seconds());
            if (b < bins.size()) ++bins[b];
        });
        traffic::CbrSource::Config cbr;
        cbr.rate_bps = 10'800'000;  // mild 8% overload
        cbr.stop = seconds_i(30);
        traffic::CbrSource src{sched, cbr, *queue};
        sched.run_until(seconds_i(31));
        int nonzero = 0;
        for (int b : bins) {
            if (b > 0) ++nonzero;
        }
        return nonzero;
    };
    const int red_bins = run(true);
    const int tail_bins = run(false);
    // Under mild overload RED starts dropping early and keeps dropping,
    // while drop-tail waits ~ 1 s for the buffer to fill first.
    EXPECT_GE(red_bins, tail_bins);
    EXPECT_GT(red_bins, 20);
}

TEST(RedQueue, AverageAgesDuringIdle) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{4}};
    // Load the queue briefly, then go idle and poke it once.
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 15'000'000;
    cbr.stop = seconds_i(2);
    traffic::CbrSource src{sched, cbr, queue};
    sched.run_until(seconds_i(2));
    const double avg_busy = queue.average_queue_bytes();
    EXPECT_GT(avg_busy, 0.0);
    sched.schedule_at(seconds_i(10), [&] {
        sim::Packet p;
        p.id = 999;
        p.size_bytes = 1000;
        queue.accept(p);
    });
    sched.run();
    EXPECT_LT(queue.average_queue_bytes(), avg_busy * 0.1);
}

TEST(RedQueue, BusyEwmaTakesOneSamplePerArrival) {
    // Five same-instant arrivals on an empty queue.  Arrival 1 takes the
    // idle branch with m = 0 (no EWMA sample); arrivals 2..5 each sample the
    // instantaneous occupancy seen at admission: 0, 1000, 2000, 3000 bytes
    // (the packet in service is off the FIFO).  The average must equal the
    // hand-run recurrence bit for bit — one sample per arrival, no more.
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{6}};
    sched.schedule_at(TimeNs::zero(), [&] {
        for (int i = 0; i < 5; ++i) {
            sim::Packet p;
            p.id = static_cast<std::uint64_t>(i) + 1;
            p.size_bytes = 1000;
            queue.accept(p);
        }
    });
    sched.run();

    const double w = red_params().weight;
    double expected = 0.0;
    for (const double occupancy : {0.0, 1000.0, 2000.0, 3000.0}) {
        expected = (1.0 - w) * expected + w * occupancy;
    }
    EXPECT_DOUBLE_EQ(queue.average_queue_bytes(), expected);
}

TEST(RedQueue, IdleAgingIsPureAgingWithNoExtraSample) {
    // Regression for the idle-period accounting bug: the empty-at-arrival
    // branch must ONLY age the average by (1-w)^m — folding in an extra
    // w*0 EWMA sample on top multiplies by a spurious (1-w) factor
    // (Floyd/Jacobson 1993, Figure 2, lines "if queue empty").
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::RedQueue queue{sched, link_cfg(), red_params(), sink, Rng{6}};
    TimeNs empty_at = TimeNs::zero();
    queue.on_dequeue([&](const sim::QueueEvent& ev) {
        if (ev.queue_bytes_after == 0) empty_at = ev.at;
    });
    sched.schedule_at(TimeNs::zero(), [&] {
        for (int i = 0; i < 5; ++i) {
            sim::Packet p;
            p.id = static_cast<std::uint64_t>(i) + 1;
            p.size_bytes = 1000;
            queue.accept(p);
        }
    });
    sched.run_until(milliseconds(50));
    const double avg_busy = queue.average_queue_bytes();
    ASSERT_GT(avg_busy, 0.0);
    ASSERT_GT(empty_at, TimeNs::zero());
    // The poke packet's own dequeue re-fires the hook; keep the burst's value.
    const TimeNs burst_drained_at = empty_at;

    const TimeNs poke = milliseconds(100);
    sched.schedule_at(poke, [&] {
        sim::Packet p;
        p.id = 999;
        p.size_bytes = 1000;
        queue.accept(p);
    });
    sched.run();

    // m = idle seconds / (500-byte transmission time), exactly as in RED.
    const double w = red_params().weight;
    const double tx_s = 500.0 * 8.0 / 10'000'000.0;
    const double m = (poke - burst_drained_at).to_seconds() / tx_s;
    EXPECT_DOUBLE_EQ(queue.average_queue_bytes(), avg_busy * std::pow(1.0 - w, m))
        << "idle aging must not take a regular EWMA sample on top";
}

TEST(Testbed, RedDisciplineSelectable) {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.discipline = scenarios::QueueDiscipline::red;
    scenarios::Testbed tb{cfg};
    // The bottleneck behaves as a queue regardless of discipline.
    EXPECT_GT(tb.bottleneck().capacity_bytes(), 0);
    EXPECT_EQ(tb.bottleneck().rate_bps(), 10'000'000);
    EXPECT_NE(dynamic_cast<sim::RedQueue*>(&tb.bottleneck()), nullptr);
}

TEST(Testbed, ExtraHopsChainInFrontOfBottleneck) {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.extra_hops = 2;
    cfg.extra_hop_rate_factor = 2.0;
    scenarios::Testbed tb{cfg};
    ASSERT_EQ(tb.upstream_hops().size(), 2u);
    EXPECT_EQ(tb.upstream_hops()[0]->rate_bps(), 20'000'000);

    // Traffic injected at forward_in() must traverse the chain and still
    // reach the demux after the bottleneck.
    sim::CountingSink sink;
    tb.fwd_demux().bind(1, sink);
    sim::Packet p;
    p.id = 1;
    p.flow = 1;
    p.size_bytes = 1000;
    tb.sched().schedule_at(TimeNs::zero(), [&] { tb.forward_in().accept(p); });
    tb.sched().run();
    EXPECT_EQ(sink.packets(), 1u);
    EXPECT_EQ(tb.bottleneck().departures(), 1u);
    EXPECT_EQ(tb.upstream_hops()[0]->departures(), 1u);
}

TEST(Testbed, MultiHopCongestionStillMeasurable) {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.extra_hops = 1;
    scenarios::Testbed tb{cfg};
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 14'000'000;  // below the 15 Mb/s first hop, above bottleneck
    cbr.stop = seconds_i(10);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};
    tb.sched().run_until(seconds_i(11));
    EXPECT_GT(mon.drops_total(), 0u);
    EXPECT_EQ(tb.upstream_hops()[0]->drops(), 0u) << "first hop must not congest";
}

}  // namespace
}  // namespace bb
