// Full-fidelity integration: BADABING measuring across the complete
// Figure 3 topology (probe traffic on its own hop-B path), compared against
// hop-C ground truth — the closest analogue of the paper's actual setup.
#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "probes/badabing.h"
#include "scenarios/experiment.h"
#include "scenarios/figure3.h"
#include "traffic/episodic.h"

namespace bb {
namespace {

TEST(Figure3Measurement, BadabingTracksTruthAcrossTheFullPath) {
    scenarios::Figure3Testbed tb;
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};

    const TimeNs horizon = seconds_i(300);
    traffic::EpisodicBurstSource::Config burst;
    burst.episode_durations = {milliseconds(68)};
    burst.mean_gap = seconds_i(8);
    burst.bottleneck_rate_bps = tb.config().oc3_rate_bps;
    burst.bottleneck_capacity_bytes = tb.bottleneck().capacity_bytes();
    burst.background_load = 0.0;
    burst.stop = horizon;
    traffic::EpisodicBurstSource bursts{tb.sched(), burst, tb.traffic_sender_in(), Rng{1}};

    probes::BadabingConfig bc;
    bc.p = 0.5;
    bc.total_slots = horizon / bc.slot_width;
    probes::BadabingTool tool{tb.sched(), bc, tb.probe_sender_in(), Rng{2}};
    tb.probe_receiver().bind(bc.flow, tool);

    tb.sched().run_until(horizon + seconds_i(2));

    const auto truth = measure::summarize_truth(mon.episodes(milliseconds(100)),
                                                milliseconds(5), TimeNs::zero(), horizon);
    ASSERT_GT(truth.episodes, 10u);

    core::MarkingConfig marking;
    marking.tau = scenarios::tau_for_probe_rate(0.5, bc.slot_width);
    marking.alpha = 0.1;
    const auto res = tool.analyze(marking);

    EXPECT_NEAR(res.frequency.value, truth.frequency, 0.8 * truth.frequency);
    ASSERT_TRUE(res.duration_basic.valid);
    EXPECT_NEAR(res.duration_basic.seconds(bc.slot_width), truth.mean_duration_s,
                truth.mean_duration_s);
    // The probe path's own hop-B queue must not interfere.
    EXPECT_EQ(tb.hop_b_probe().drops(), 0u);
    // The base one-way delay seen by the marker is the emulator's 50 ms plus
    // small serialization terms.
    EXPECT_GT(res.probes_sent, 0u);
}

TEST(Figure3Measurement, HopBSerializationVisibleInBaseDelay) {
    scenarios::Figure3Testbed tb;
    probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = seconds_i(20) / bc.slot_width;
    probes::BadabingTool tool{tb.sched(), bc, tb.probe_sender_in(), Rng{3}};
    tb.probe_receiver().bind(bc.flow, tool);
    tb.sched().run_until(seconds_i(22));

    core::CongestionMarker marker;
    (void)marker.mark(tool.outcomes());
    // 50 ms emulator + OC12 tx (~0.04 ms for 600 B at 120 Mb/s) + GE delays
    // + OC3 tx (~0.16 ms): base delay just above 50 ms.
    EXPECT_GT(marker.base_delay(), milliseconds(50));
    EXPECT_LT(marker.base_delay(), milliseconds(52));
}

}  // namespace
}  // namespace bb
