// Death tests for the contract layer (src/util/contract.h, DESIGN.md §10):
// the macros themselves, plus proof that the deep invariant walkers catch
// real corruption.  This target compiles with BB_CONTRACTS_ENABLED=1 (so
// BB_DCHECK is live regardless of build type) and BB_TESTING (which friends
// SchedulerTestAccess into Scheduler so the tests can damage private state).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/packet_pool.h"
#include "sim/scheduler.h"
#include "util/contract.h"
#include "util/time.h"

namespace bb::sim {

// Mutable windows into Scheduler's private state.  The nested Ticket/Slot
// types stay unnameable here; tests hold them through auto, which the access
// rules permit (only the *names* are private).
struct SchedulerTestAccess {
    static auto& heap(Scheduler& s) { return s.heap_; }
    static auto& arena(Scheduler& s) { return s.arena_; }
    static std::size_t& live(Scheduler& s) { return s.live_; }
};

}  // namespace bb::sim

namespace {

using bb::TimeNs;
using bb::milliseconds;
using bb::sim::PacketPool;
using bb::sim::Scheduler;
using bb::sim::SchedulerTestAccess;

// --- the macros themselves ----------------------------------------------

TEST(ContractTest, CheckPassesSilently) {
    int evaluations = 0;
    BB_CHECK(++evaluations == 1);
    EXPECT_EQ(evaluations, 1);  // condition evaluated exactly once
    BB_CHECK_MSG(true, "never printed");
}

TEST(ContractDeathTest, CheckAbortsWithExpressionAndLocation) {
    EXPECT_DEATH(BB_CHECK(1 + 1 == 3), "BB_CHECK failed: 1 \\+ 1 == 3");
    EXPECT_DEATH(BB_CHECK(false), "contract_test\\.cpp");
}

TEST(ContractDeathTest, CheckMsgPrintsTheNote) {
    EXPECT_DEATH(BB_CHECK_MSG(false, "tally drifted"), "note: tally drifted");
}

TEST(ContractDeathTest, DcheckIsLiveInThisTarget) {
    static_assert(BB_CONTRACTS_ENABLED == 1,
                  "contract_test must build with BB_CONTRACTS_ENABLED=1");
    EXPECT_DEATH(BB_DCHECK(false), "BB_DCHECK failed");
    EXPECT_DEATH(BB_DCHECK_MSG(2 < 1, "order"), "note: order");
}

TEST(ContractTest, AuditIsUnevaluatedWhenDisabled) {
#if !BB_AUDIT_ENABLED
    int evaluations = 0;
    BB_AUDIT(++evaluations);
    EXPECT_EQ(evaluations, 0);  // off-form must not evaluate its argument
#else
    GTEST_SKIP() << "BB_AUDIT_ENABLED build: the audit form evaluates";
#endif
}

// --- scheduler invariant walker -----------------------------------------

// Fill a scheduler as if mid-run: a few dozen pending events, optionally
// recording a subset of ids for the caller to cancel.
void populate(Scheduler& s, std::vector<bb::sim::EventId>* cancel_ids = nullptr) {
    for (int i = 0; i < 32; ++i) {
        const auto id = s.schedule_after(milliseconds(10 + i), [] {});
        if (cancel_ids && i % 5 == 0) cancel_ids->push_back(id);
    }
}

TEST(ContractTest, HealthySchedulerPassesInvariants) {
    std::vector<bb::sim::EventId> to_cancel;
    Scheduler s;
    populate(s, &to_cancel);
    s.check_invariants();
    for (const auto id : to_cancel) s.cancel(id);
    s.check_invariants();
    s.run_until(milliseconds(25));
    s.check_invariants();
    s.run();
    s.check_invariants();
    EXPECT_EQ(s.live_events(), 0U);
}

TEST(ContractDeathTest, WalkerCatchesHeapOrderViolation) {
    Scheduler s;
    populate(s);
    auto& heap = SchedulerTestAccess::heap(s);
    ASSERT_GT(heap.size(), 1U);
    // Make a child earlier than the root: classic broken-sift damage.
    heap.back().at = TimeNs::zero();
    heap.back().seq = 0;
    EXPECT_DEATH(s.check_invariants(), "heap order violated");
}

TEST(ContractDeathTest, WalkerCatchesGenerationAhead) {
    Scheduler s;
    populate(s);
    auto& heap = SchedulerTestAccess::heap(s);
    ASSERT_FALSE(heap.empty());
    // A ticket from the future: its generation exceeds the arena slot's.
    heap[0].gen += 1;
    EXPECT_DEATH(s.check_invariants(), "generation ahead of its arena slot");
}

TEST(ContractDeathTest, WalkerCatchesEmptySlotBehindLiveTicket) {
    Scheduler s;
    populate(s);
    auto& heap = SchedulerTestAccess::heap(s);
    auto& arena = SchedulerTestAccess::arena(s);
    ASSERT_FALSE(heap.empty());
    // Destroy the callable out from under a live ticket (a premature
    // release_slot would look like this, minus the generation bump).
    arena[heap[0].slot].fn.reset();
    EXPECT_DEATH(s.check_invariants(), "empty arena slot");
}

TEST(ContractDeathTest, WalkerCatchesLiveCountDrift) {
    Scheduler s;
    populate(s);
    ++SchedulerTestAccess::live(s);
    EXPECT_DEATH(s.check_invariants(), "live-event accounting drifted");
}

TEST(ContractDeathTest, WalkerCatchesTicketSlotOutOfBounds) {
    Scheduler s;
    populate(s);
    auto& heap = SchedulerTestAccess::heap(s);
    ASSERT_FALSE(heap.empty());
    heap[0].slot = 0xFFFF'0000u;
    EXPECT_DEATH(s.check_invariants(), "slot out of bounds");
}

// --- packet pool walker --------------------------------------------------

TEST(ContractTest, PacketPoolRoundTripPassesInvariants) {
    PacketPool pool;
    bb::sim::Packet pkt{};
    pkt.size_bytes = 600;
    const auto h1 = pool.put(pkt);
    const auto h2 = pool.put(pkt);
    pool.check_invariants();
    (void)pool.take(h1);
    pool.check_invariants();
    (void)pool.take(h2);
    pool.check_invariants();
    EXPECT_EQ(pool.in_use(), 0U);
}

TEST(ContractDeathTest, PacketPoolWalkerCatchesDoubleTake) {
    PacketPool pool;
    bb::sim::Packet pkt{};
    const auto h = pool.put(pkt);
    (void)pool.put(pkt);  // keep in_use() > 0 so take()'s own DCHECK stays quiet
    (void)pool.take(h);
    (void)pool.take(h);  // the bug: same handle surrendered twice
    EXPECT_DEATH(pool.check_invariants(), "double take");
}

TEST(ContractDeathTest, PacketPoolTakeRejectsWildHandle) {
    PacketPool pool;
    bb::sim::Packet pkt{};
    (void)pool.put(pkt);
    EXPECT_DEATH((void)pool.take(42), "handle out of bounds");
}

}  // namespace
