#include "core/synthetic.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bb::core {
namespace {

TEST(SyntheticSeries, LengthAndParameterValidation) {
    Rng rng{1};
    const auto s = synth_congestion_series(rng, 1000, 5.0, 50.0);
    EXPECT_EQ(s.size(), 1000u);
    EXPECT_THROW(synth_congestion_series(rng, 100, 0.5, 50.0), std::invalid_argument);
}

TEST(SyntheticSeries, FrequencyMatchesSojournMeans) {
    Rng rng{2};
    const auto s = synth_congestion_series(rng, 2'000'000, 10.0, 90.0);
    const auto t = series_truth(s);
    EXPECT_NEAR(t.frequency, 0.1, 0.01);
    EXPECT_NEAR(t.mean_duration_slots, 10.0, 0.5);
}

TEST(SeriesTruth, HandCheckedSmallSeries) {
    // 0110 0111 -> two episodes of lengths 2 and 3; 5 congested of 8.
    const std::vector<bool> s{false, true, true, false, false, true, true, true};
    const auto t = series_truth(s);
    EXPECT_EQ(t.episodes, 2u);
    EXPECT_DOUBLE_EQ(t.frequency, 5.0 / 8.0);
    EXPECT_DOUBLE_EQ(t.mean_duration_slots, 2.5);
}

TEST(SeriesTruth, TrailingEpisodeCounted) {
    const std::vector<bool> s{true, true};
    const auto t = series_truth(s);
    EXPECT_EQ(t.episodes, 1u);
    EXPECT_DOUBLE_EQ(t.mean_duration_slots, 2.0);
}

TEST(SeriesTruth, AllClear) {
    const std::vector<bool> s{false, false, false};
    const auto t = series_truth(s);
    EXPECT_EQ(t.episodes, 0u);
    EXPECT_DOUBLE_EQ(t.frequency, 0.0);
}

TEST(ObserveWithFidelity, PerfectFidelityReproducesTruth) {
    Rng rng{3};
    const std::vector<bool> truth{false, true, true, false, true};
    std::vector<Experiment> exps{{0, ExperimentKind::basic},
                                 {1, ExperimentKind::basic},
                                 {2, ExperimentKind::extended}};
    const auto obs = observe_with_fidelity(exps, truth, FidelityModel{1.0, 1.0}, rng);
    ASSERT_EQ(obs.size(), 3u);
    EXPECT_EQ(obs[0].code, 0b01);
    EXPECT_EQ(obs[1].code, 0b11);
    EXPECT_EQ(obs[2].code, 0b101);  // slots 2,3,4 = 1,0,1
}

TEST(ObserveWithFidelity, ZeroFidelityCollapsesToZero) {
    Rng rng{4};
    const std::vector<bool> truth{true, true, true, true};
    std::vector<Experiment> exps{{0, ExperimentKind::basic}, {1, ExperimentKind::basic}};
    const auto obs = observe_with_fidelity(exps, truth, FidelityModel{0.0, 0.0}, rng);
    for (const auto& r : obs) EXPECT_EQ(r.code, 0u);
}

TEST(ObserveWithFidelity, AllClearExperimentsNeverFlip) {
    Rng rng{5};
    const std::vector<bool> truth(100, false);
    std::vector<Experiment> exps;
    for (SlotIndex i = 0; i + 2 < 100; i += 3) exps.push_back({i, ExperimentKind::extended});
    const auto obs = observe_with_fidelity(exps, truth, FidelityModel{0.0, 0.0}, rng);
    for (const auto& r : obs) EXPECT_EQ(r.code, 0u);
}

TEST(ObserveWithFidelity, FailureRateMatchesP1) {
    Rng rng{6};
    // Truth: congestion only at even slots so every basic experiment at an
    // even start sees exactly one congested slot (10).
    std::vector<bool> truth(100'000, false);
    for (std::size_t i = 0; i < truth.size(); i += 4) truth[i] = true;
    std::vector<Experiment> exps;
    for (SlotIndex i = 0; i + 1 < static_cast<SlotIndex>(truth.size()); i += 4) {
        exps.push_back({i, ExperimentKind::basic});
    }
    const auto obs = observe_with_fidelity(exps, truth, FidelityModel{0.7, 1.0}, rng);
    std::size_t kept = 0;
    for (const auto& r : obs) {
        if (r.code == 0b10) ++kept;
    }
    EXPECT_NEAR(static_cast<double>(kept) / static_cast<double>(obs.size()), 0.7, 0.02);
}

TEST(ObserveWithFidelity, OutOfRangeSlotsReadAsClear) {
    Rng rng{7};
    const std::vector<bool> truth{true};
    std::vector<Experiment> exps{{0, ExperimentKind::extended}};  // slots 1,2 out of range
    const auto obs = observe_with_fidelity(exps, truth, FidelityModel{1.0, 1.0}, rng);
    EXPECT_EQ(obs[0].code, 0b100);
}

}  // namespace
}  // namespace bb::core
