// End-to-end checks that the obs counters wired through sim/probes/scenarios
// agree exactly with the quantities the run itself reports: instrumentation
// that cannot drift from the results it describes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/control.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenarios/replica_runner.h"

namespace bb::scenarios {
namespace {

ReplicaPlan short_cbr_plan() {
    ReplicaPlan plan;
    plan.workload.kind = TrafficKind::cbr_uniform;
    plan.workload.duration = seconds_i(8);
    plan.workload.seed = 7;
    plan.workload.episode_duration = milliseconds(68);
    plan.workload.mean_episode_gap = seconds_i(2);
    plan.probe.p = 0.3;
    plan.probe.total_slots = 0;
    return plan;
}

TEST(ObsIntegration, CountersMatchRunSummaryExactly) {
    obs::set_enabled(true);
    obs::Counter& scored = obs::counter("core.reports_scored");
    obs::Counter& drops = obs::counter("sim.queue.drops");
    obs::Counter& probes_sent = obs::counter("probes.badabing.probes_sent");
    const std::uint64_t scored0 = scored.value();
    const std::uint64_t drops0 = drops.value();
    const std::uint64_t probes0 = probes_sent.value();

    ReplicaRunner::Config cfg;
    cfg.replicas = 3;
    cfg.threads = 2;
    cfg.master_seed = 7;
    cfg.bootstrap_replicates = 50;
    const ReplicaRunner runner{cfg};
    const auto plan = short_cbr_plan();
    const auto results = runner.run(plan);
    ASSERT_EQ(results.size(), 3u);

    std::uint64_t want_experiments = 0;
    std::uint64_t want_drops = 0;
    std::uint64_t want_probes = 0;
    for (const auto& r : results) {
        want_experiments += r.result.experiments;
        want_drops += r.queue_drops;
        want_probes += r.result.probes_sent;
        EXPECT_GT(r.result.experiments, 0u);
    }
    // Loss episodes are engineered into the CBR workload, so drops happen.
    EXPECT_GT(want_drops, 0u);

    // analyze() feeds every designed experiment through StreamingAnalyzer
    // exactly once, and each queue drop increments sim.queue.drops exactly
    // once — so the counter deltas match the run's own summary.
    EXPECT_EQ(scored.value() - scored0, want_experiments);
    EXPECT_EQ(drops.value() - drops0, want_drops);
    EXPECT_EQ(probes_sent.value() - probes0, want_probes);
}

TEST(ObsIntegration, TraceCapturesPerReplicaSpans) {
    obs::set_enabled(true);
    obs::Trace::start();

    ReplicaRunner::Config cfg;
    cfg.replicas = 2;
    cfg.threads = 2;
    cfg.master_seed = 7;
    cfg.bootstrap_replicates = 50;
    const ReplicaRunner runner{cfg};
    const auto plan = short_cbr_plan();
    const auto results = runner.run(plan);
    (void)runner.aggregate(plan, results);

    // One "replica" span per replica, plus nested experiment.run /
    // badabing.analyze spans and the aggregate span.
    EXPECT_GE(obs::Trace::buffered_events(), 2u + 2u * 2u + 1u);

    const std::string path = "obs_integration_trace.json";
    ASSERT_TRUE(obs::Trace::write(path));
    std::string doc;
    {
        std::FILE* f = std::fopen(path.c_str(), "r");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) doc.append(buf, n);
        std::fclose(f);
    }
    std::remove(path.c_str());

    EXPECT_NE(doc.find("\"name\":\"replica\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"experiment.run\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"badabing.analyze\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"aggregate\""), std::string::npos);
    EXPECT_NE(doc.find("\"args\":{\"replica\":0}"), std::string::npos);
    EXPECT_NE(doc.find("\"args\":{\"replica\":1}"), std::string::npos);
}

TEST(ObsIntegration, KillSwitchFreezesCountersWithoutChangingResults) {
    obs::set_enabled(true);
    ReplicaRunner::Config cfg;
    cfg.replicas = 1;
    cfg.threads = 1;
    cfg.master_seed = 7;
    cfg.bootstrap_replicates = 50;
    const ReplicaRunner runner{cfg};
    const auto plan = short_cbr_plan();

    const auto on_results = runner.run(plan);

    obs::Counter& scored = obs::counter("core.reports_scored");
    const std::uint64_t before = scored.value();
    obs::set_enabled(false);
    const auto off_results = runner.run(plan);
    EXPECT_EQ(scored.value(), before);  // nothing counted while disabled
    obs::set_enabled(true);

    // The kill switch is pure observation: results are bit-identical.
    ASSERT_EQ(on_results.size(), off_results.size());
    EXPECT_EQ(on_results[0].result.counts.basic, off_results[0].result.counts.basic);
    EXPECT_EQ(on_results[0].result.frequency.value, off_results[0].result.frequency.value);
    EXPECT_EQ(on_results[0].queue_drops, off_results[0].queue_drops);
}

}  // namespace
}  // namespace bb::scenarios
