// Property-based verification of the paper's §5 consistency claims: on a
// synthetic alternating-renewal congestion process observed through the
// fidelity model, F̂ converges to the true congested-slot frequency and D̂ to
// the true mean episode duration.  Parameterized sweeps cover probe rates,
// episode shapes and fidelity regimes (including p1 != p2, where only the
// improved estimator stays consistent).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/synthetic.h"
#include "core/validation.h"

namespace bb::core {
namespace {

struct Sweep {
    double p;              // probe process rate
    double mean_on;        // true mean episode duration (slots)
    double mean_off;       // true mean gap (slots)
    double p1;             // fidelity for single-congested reports
    double p2;             // fidelity for double-congested reports
};

class ConsistencySweep : public ::testing::TestWithParam<Sweep> {};

constexpr SlotIndex kSlots = 2'000'000;

struct RunOutput {
    SeriesTruth truth;
    FrequencyEstimate freq;
    DurationEstimate dur_basic;
    DurationEstimate dur_improved;
    ValidationReport validation;
};

RunOutput run_once(const Sweep& sw, std::uint64_t seed) {
    Rng rng{seed};
    const auto series = synth_congestion_series(rng, kSlots, sw.mean_on, sw.mean_off);

    ProbeProcessConfig pcfg;
    pcfg.p = sw.p;
    pcfg.improved = true;
    const auto design = design_probe_process(rng, kSlots, pcfg);
    const auto obs =
        observe_with_fidelity(design.experiments, series, FidelityModel{sw.p1, sw.p2}, rng);

    StateCounts counts;
    for (const auto& r : obs) counts.add(r);

    RunOutput out;
    out.truth = series_truth(series);
    out.freq = estimate_frequency(counts);
    out.dur_basic = estimate_duration_basic(counts);
    out.dur_improved = estimate_duration_improved(counts);
    out.validation = validate(counts);
    return out;
}

TEST_P(ConsistencySweep, FrequencyConvergesWhenReportsAreFaithful) {
    const Sweep sw = GetParam();
    if (sw.p1 < 1.0) GTEST_SKIP() << "frequency is only unbiased for p1 = 1";
    const auto out = run_once(sw, 42);
    ASSERT_TRUE(out.freq.valid());
    EXPECT_NEAR(out.freq.value, out.truth.frequency, 0.15 * out.truth.frequency + 0.002);
}

TEST_P(ConsistencySweep, ImprovedDurationConverges) {
    const Sweep sw = GetParam();
    if (sw.mean_on < 5.0) {
        // Paper §7: the discretization must be finer than the episode
        // durations.  When single-slot episodes dominate, no {011,110}
        // patterns exist for them, so U/V under-counts and the improved
        // duration is biased; see ShortEpisodesBiasImprovedEstimator below.
        GTEST_SKIP();
    }
    const auto out = run_once(sw, 43);
    ASSERT_TRUE(out.dur_improved.valid);
    EXPECT_NEAR(out.dur_improved.slots, out.truth.mean_duration_slots,
                0.2 * out.truth.mean_duration_slots + 0.5);
}

TEST_P(ConsistencySweep, BasicDurationConvergesOnlyWhenREqualsOne) {
    const Sweep sw = GetParam();
    const auto out = run_once(sw, 44);
    ASSERT_TRUE(out.dur_basic.valid);
    if (std::abs(sw.p1 - sw.p2) < 1e-9) {
        EXPECT_NEAR(out.dur_basic.slots, out.truth.mean_duration_slots,
                    0.2 * out.truth.mean_duration_slots + 0.5);
    } else if (sw.p2 < sw.p1) {
        // Under-reported 11 states bias the basic estimator low.
        EXPECT_LT(out.dur_basic.slots, out.truth.mean_duration_slots);
    }
}

TEST_P(ConsistencySweep, RHatEstimatesFidelityRatio) {
    const Sweep sw = GetParam();
    const auto out = run_once(sw, 45);
    ASSERT_TRUE(out.dur_improved.r_hat.has_value());
    // For geometric episode lengths with mean m, single-slot episodes have
    // no {011,110} windows, so E[U]/E[V] = (p2/p1) * P(len >= 2)
    //                                   = (p2/p1) * (1 - 1/m).
    const double expected = sw.p2 / sw.p1 * (1.0 - 1.0 / sw.mean_on);
    EXPECT_NEAR(*out.dur_improved.r_hat, expected, 0.25 * expected);
}

// Documents (and pins down) the short-episode bias the paper's §7 warns
// about: when episodes are of the order of one slot, the improved duration
// estimator overshoots by a predictable factor while the basic estimator,
// whose R/S ratio is insensitive to episode length, stays consistent.
TEST(ShortEpisodes, BiasImprovedEstimatorButNotBasic) {
    const Sweep sw{0.5, 2.0, 200.0, 1.0, 1.0};
    const auto out = run_once(sw, 47);
    ASSERT_TRUE(out.dur_basic.valid);
    EXPECT_NEAR(out.dur_basic.slots, out.truth.mean_duration_slots, 0.3);
    ASSERT_TRUE(out.dur_improved.valid);
    // E[U]/E[V] = 1 - 1/2 = 0.5 -> improved estimate ~ 2*(R/S-1)/0.5 + 1 = 3.
    EXPECT_NEAR(out.dur_improved.slots, 3.0, 0.4);
}

TEST_P(ConsistencySweep, ValidationSymmetryHoldsForRenewalProcess) {
    const Sweep sw = GetParam();
    const auto out = run_once(sw, 46);
    EXPECT_LE(out.validation.pair_asymmetry, 0.2);
    EXPECT_LE(out.validation.violation_fraction, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, ConsistencySweep,
    ::testing::Values(Sweep{0.1, 14.0, 1990.0, 1.0, 1.0}, Sweep{0.3, 14.0, 1990.0, 1.0, 1.0},
                      Sweep{0.5, 14.0, 1990.0, 1.0, 1.0}, Sweep{0.9, 14.0, 1990.0, 1.0, 1.0}));

INSTANTIATE_TEST_SUITE_P(
    EpisodeShapes, ConsistencySweep,
    ::testing::Values(Sweep{0.5, 2.0, 200.0, 1.0, 1.0},   // very short episodes
                      Sweep{0.5, 30.0, 1000.0, 1.0, 1.0},  // long episodes
                      Sweep{0.5, 10.0, 90.0, 1.0, 1.0}));  // frequent congestion

INSTANTIATE_TEST_SUITE_P(
    Fidelity, ConsistencySweep,
    ::testing::Values(Sweep{0.5, 14.0, 500.0, 0.8, 0.8},   // r = 1, imperfect
                      Sweep{0.5, 14.0, 500.0, 0.9, 0.6},   // r < 1: basic biased
                      Sweep{0.5, 14.0, 500.0, 0.7, 0.7}));

// F̂ is unbiased for any episode geometry; a direct check that the estimate
// variance shrinks with the number of experiments (consistency).
TEST(ConsistencyScaling, ErrorShrinksWithSampleSize) {
    const Sweep sw{0.3, 14.0, 1990.0, 1.0, 1.0};
    double err_small = 0.0;
    double err_large = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        Rng rng_small{seed + 100};
        Rng rng_large{seed + 200};
        for (auto [slots, err] :
             {std::pair<SlotIndex, double*>{30'000, &err_small}, {600'000, &err_large}}) {
            Rng& rng = slots == 30'000 ? rng_small : rng_large;
            const auto series = synth_congestion_series(rng, slots, sw.mean_on, sw.mean_off);
            ProbeProcessConfig pcfg;
            pcfg.p = sw.p;
            const auto design = design_probe_process(rng, slots, pcfg);
            const auto obs = observe_with_fidelity(design.experiments, series,
                                                   FidelityModel{1.0, 1.0}, rng);
            StateCounts counts;
            for (const auto& r : obs) counts.add(r);
            const auto truth = series_truth(series);
            const auto f = estimate_frequency(counts);
            *err += std::abs(f.value - truth.frequency);
        }
    }
    EXPECT_LT(err_large, err_small);
}

}  // namespace
}  // namespace bb::core
