#include "util/rng.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace bb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ForkedStreamsAreIndependentOfSiblingOrder) {
    Rng parent1{7};
    Rng parent2{7};
    Rng c1 = parent1.fork(1);
    Rng c2 = parent2.fork(1);
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, Uniform01Bounds) {
    Rng r{3};
    for (int i = 0; i < 10'000; ++i) {
        const double u = r.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability) {
    Rng r{11};
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        if (r.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsCorrect) {
    Rng r{5};
    RunningStats s;
    for (int i = 0; i < 100'000; ++i) s.add(r.exponential(10.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.2);
    // Exponential: stddev == mean.
    EXPECT_NEAR(s.stddev(), 10.0, 0.3);
}

TEST(Rng, ExponentialTimeOverloadRespectsMean) {
    Rng r{6};
    RunningStats s;
    for (int i = 0; i < 50'000; ++i) s.add(r.exponential(seconds_i(10)).to_seconds());
    EXPECT_NEAR(s.mean(), 10.0, 0.3);
}

TEST(Rng, ParetoRespectsMinimumAndMean) {
    Rng r{9};
    RunningStats s;
    const double alpha = 2.5;  // finite mean & variance for a stable test
    const double xm = 1000.0;
    for (int i = 0; i < 200'000; ++i) {
        const double v = r.pareto(alpha, xm);
        ASSERT_GE(v, xm);
        s.add(v);
    }
    // E[X] = alpha*xm/(alpha-1)
    EXPECT_NEAR(s.mean(), alpha * xm / (alpha - 1.0), 40.0);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng r{13};
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto v = r.uniform_int(2, 4);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 4);
        saw_lo = saw_lo || v == 2;
        saw_hi = saw_hi || v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
    Rng r{17};
    RunningStats s;
    for (int i = 0; i < 100'000; ++i) s.add(r.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

}  // namespace
}  // namespace bb
