#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "util/stats.h"

namespace bb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ForkedStreamsAreIndependentOfSiblingOrder) {
    Rng parent1{7};
    Rng parent2{7};
    Rng c1 = parent1.fork(1);
    Rng c2 = parent2.fork(1);
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

// Positional replica seeding leans on this: fork() consumes exactly one
// parent draw, so the k-th fork (in call order) is a pure function of
// (seed, k, salt) — and callers must fork in index order.
TEST(Rng, ForkAdvancesParentByExactlyOneDraw) {
    Rng forked{7};
    Rng reference{7};
    (void)forked.fork(3);
    (void)reference.next_u64();  // consume the draw fork() used
    for (int i = 0; i < 16; ++i) EXPECT_EQ(forked.next_u64(), reference.next_u64());
}

TEST(Rng, ForkSeedMatchesForkAndAdvancesIdentically) {
    Rng a{7};
    Rng b{7};
    const std::uint64_t seed = a.fork_seed(5);
    Rng child_from_seed{seed};
    Rng child_from_fork = b.fork(5);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(child_from_seed.next_u64(), child_from_fork.next_u64());
    }
    // Both parents advanced the same way.
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkedSiblingsWithAdjacentSaltsShareNoEarlyOutputs) {
    // Siblings forked with salts 0..7 (the replica-index pattern): no value
    // may repeat within or across their first-k outputs.
    constexpr int kSiblings = 8;
    constexpr int kDraws = 256;
    Rng parent{7};
    std::set<std::uint64_t> seen;
    for (int s = 0; s < kSiblings; ++s) {
        Rng child = parent.fork(static_cast<std::uint64_t>(s));
        for (int i = 0; i < kDraws; ++i) {
            ASSERT_TRUE(seen.insert(child.next_u64()).second)
                << "duplicate output, sibling " << s << " draw " << i;
        }
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kSiblings * kDraws));
}

TEST(Rng, ForkedChildPassesUniformitySmokeCheck) {
    Rng parent{7};
    Rng child = parent.fork(1);
    constexpr int kDraws = 50'000;
    constexpr int kBins = 10;
    std::array<int, kBins> bins{};
    RunningStats s;
    for (int i = 0; i < kDraws; ++i) {
        const double u = child.uniform01();
        s.add(u);
        ++bins[static_cast<std::size_t>(u * kBins)];
    }
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
    EXPECT_NEAR(s.stddev(), 1.0 / std::sqrt(12.0), 0.01);
    for (int b = 0; b < kBins; ++b) {
        // Each decile should hold ~5000 draws; +/-8% is > 11 sigma.
        EXPECT_NEAR(bins[b], kDraws / kBins, kDraws / kBins * 0.08) << "bin " << b;
    }
}

TEST(Rng, Uniform01Bounds) {
    Rng r{3};
    for (int i = 0; i < 10'000; ++i) {
        const double u = r.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability) {
    Rng r{11};
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        if (r.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsCorrect) {
    Rng r{5};
    RunningStats s;
    for (int i = 0; i < 100'000; ++i) s.add(r.exponential(10.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.2);
    // Exponential: stddev == mean.
    EXPECT_NEAR(s.stddev(), 10.0, 0.3);
}

TEST(Rng, ExponentialTimeOverloadRespectsMean) {
    Rng r{6};
    RunningStats s;
    for (int i = 0; i < 50'000; ++i) s.add(r.exponential(seconds_i(10)).to_seconds());
    EXPECT_NEAR(s.mean(), 10.0, 0.3);
}

TEST(Rng, ParetoRespectsMinimumAndMean) {
    Rng r{9};
    RunningStats s;
    const double alpha = 2.5;  // finite mean & variance for a stable test
    const double xm = 1000.0;
    for (int i = 0; i < 200'000; ++i) {
        const double v = r.pareto(alpha, xm);
        ASSERT_GE(v, xm);
        s.add(v);
    }
    // E[X] = alpha*xm/(alpha-1)
    EXPECT_NEAR(s.mean(), alpha * xm / (alpha - 1.0), 40.0);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng r{13};
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto v = r.uniform_int(2, 4);
        ASSERT_GE(v, 2);
        ASSERT_LE(v, 4);
        saw_lo = saw_lo || v == 2;
        saw_hi = saw_hi || v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
    Rng r{17};
    RunningStats s;
    for (int i = 0; i < 100'000; ++i) s.add(r.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

}  // namespace
}  // namespace bb
