// Concurrency stress for the pooled-event scheduler and the move-only task
// queue (run under BB_SANITIZE=thread via `ctest -L tsan`).  The scheduler is
// deliberately single-threaded per instance — the replica engine gives each
// worker its own — so the property under test is that independent scheduler
// instances churning in parallel share no hidden mutable state (a regression
// guard for the event arena and packet pool, which must stay per-instance).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/thread_pool.h"

namespace bb {
namespace {

// One replica's worth of schedule/cancel/fire churn, fully deterministic.
std::uint64_t churn_one_scheduler(unsigned salt) {
    sim::Scheduler sched;
    std::uint64_t fired = 0;
    std::vector<sim::EventId> ids;
    ids.reserve(20'000);
    for (unsigned i = 0; i < 20'000; ++i) {
        const auto at = microseconds(1 + (i * 7919u + salt) % 50'000);
        ids.push_back(sched.schedule_after(at, [&fired] { ++fired; }));
    }
    for (unsigned i = 0; i < ids.size(); ++i) {
        if ((i + salt) % 3 != 0) sched.cancel(ids[i]);
    }
    // Packet deliveries interleaved with the timer churn.
    sim::CountingSink sink;
    for (unsigned i = 0; i < 1'000; ++i) {
        sim::Packet p;
        p.id = i;
        sched.deliver_after(microseconds(10 + i), p, sink);
    }
    sched.run();
    return fired + sink.packets();
}

TEST(SchedulerStress, IndependentSchedulersChurnInParallel) {
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<std::uint64_t> results(kThreads, 0);
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &results] { results[t] = churn_one_scheduler(t); });
    }
    for (auto& th : threads) th.join();
    for (unsigned t = 0; t < kThreads; ++t) {
        // Survivors: i where (i + t) % 3 == 0 → ceil distribution around 1/3.
        std::uint64_t expect = 0;
        for (unsigned i = 0; i < 20'000; ++i) {
            if ((i + t) % 3 == 0) ++expect;
        }
        EXPECT_EQ(results[t], expect + 1'000) << "thread " << t;
    }
}

TEST(SchedulerStress, SameResultSequentialAndParallel) {
    std::uint64_t sequential = churn_one_scheduler(5);
    std::uint64_t parallel = 0;
    std::thread worker{[&parallel] { parallel = churn_one_scheduler(5); }};
    std::thread noise{[] { (void)churn_one_scheduler(11); }};
    worker.join();
    noise.join();
    EXPECT_EQ(sequential, parallel);
}

TEST(SchedulerStress, ThreadPoolStormOfMoveOnlySchedulerTasks) {
    // The replica-engine shape: the pool fans schedulers out across workers,
    // each task owning its scheduler through a move-only capture.
    constexpr int kTasks = 64;
    ThreadPool pool{4};
    std::atomic<std::uint64_t> total{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        auto sched = std::make_unique<sim::Scheduler>();
        futures.push_back(pool.submit([s = std::move(sched), i, &total] {
            std::uint64_t fired = 0;
            for (int k = 0; k < 500; ++k) {
                s->schedule_after(microseconds(1 + (k * 31 + i) % 977),
                                  [&fired] { ++fired; });
            }
            s->run();
            total.fetch_add(fired, std::memory_order_relaxed);
        }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(total.load(), static_cast<std::uint64_t>(kTasks) * 500u);
}

}  // namespace
}  // namespace bb
