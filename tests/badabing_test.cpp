#include "probes/badabing.h"

#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "scenarios/experiment.h"
#include "scenarios/testbed.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

using scenarios::Testbed;
using scenarios::TestbedConfig;

TestbedConfig testbed_cfg() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(20);
    cfg.buffer_time = milliseconds(100);
    return cfg;
}

probes::BadabingConfig tool_cfg(double p, TimeNs duration) {
    probes::BadabingConfig cfg;
    cfg.p = p;
    cfg.total_slots = duration / cfg.slot_width;
    return cfg;
}

TEST(Badabing, QuietPathReportsZeroFrequency) {
    Testbed tb{testbed_cfg()};
    const auto cfg = tool_cfg(0.3, seconds_i(30));
    probes::BadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{1}};
    tb.fwd_demux().bind(cfg.flow, tool);
    tb.sched().run_until(seconds_i(31));

    const auto res = tool.analyze(core::MarkingConfig{});
    EXPECT_DOUBLE_EQ(res.frequency.value, 0.0);
    EXPECT_FALSE(res.duration_basic.valid);
    EXPECT_EQ(res.packets_lost, 0u);
    EXPECT_GT(res.probes_sent, 0u);
}

TEST(Badabing, ProbeCountMatchesDesign) {
    Testbed tb{testbed_cfg()};
    const auto cfg = tool_cfg(0.5, seconds_i(20));
    probes::BadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{2}};
    tb.fwd_demux().bind(cfg.flow, tool);
    tb.sched().run_until(seconds_i(21));
    const auto res = tool.analyze(core::MarkingConfig{});
    EXPECT_EQ(res.probes_sent, tool.design().probe_slots.size());
    EXPECT_EQ(res.packets_sent, res.probes_sent * 3);
    EXPECT_EQ(res.experiments, tool.design().experiments.size());
}

TEST(Badabing, DetectsEngineeredEpisodes) {
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::cbr_uniform;
    wl.duration = seconds_i(120);
    wl.seed = 11;
    wl.mean_episode_gap = seconds_i(5);
    scenarios::Experiment exp{testbed_cfg(), wl};

    auto& tool = exp.add_badabing(tool_cfg(0.5, wl.duration));
    exp.run();

    const auto truth = exp.truth();
    ASSERT_GT(truth.episodes, 5u);

    const auto res = tool.analyze(exp.default_marking(0.5));
    EXPECT_GT(res.frequency.value, 0.0);
    // Within a factor of ~2.5 of truth even on this short run.
    EXPECT_NEAR(res.frequency.value, truth.frequency, 1.5 * truth.frequency);
    ASSERT_TRUE(res.duration_basic.valid);
    const double est_dur = res.duration_basic.seconds(milliseconds(5));
    EXPECT_NEAR(est_dur, truth.mean_duration_s, 1.5 * truth.mean_duration_s + 0.01);
}

TEST(Badabing, OfferedLoadIsSmallFractionOfLink) {
    Testbed tb{testbed_cfg()};
    const auto cfg = tool_cfg(0.3, seconds_i(30));
    probes::BadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{3}};
    tb.fwd_demux().bind(cfg.flow, tool);
    tb.sched().run_until(seconds_i(31));
    // p = 0.3: ~0.6 probes/slot * 3 pkts * 600 B / 5 ms = ~1.7 Mb/s on 10 Mb/s.
    const double frac = tool.offered_load_fraction(tb.config().bottleneck_rate_bps);
    EXPECT_GT(frac, 0.05);
    EXPECT_LT(frac, 0.30);
}

TEST(Badabing, ClockOffsetDoesNotChangeEstimates) {
    const auto run = [&](TimeNs offset) {
        scenarios::WorkloadConfig wl;
        wl.kind = scenarios::TrafficKind::cbr_uniform;
        wl.duration = seconds_i(90);
        wl.seed = 21;
        wl.mean_episode_gap = seconds_i(5);
        scenarios::Experiment exp{testbed_cfg(), wl};
        auto cfg = tool_cfg(0.5, wl.duration);
        cfg.receiver_clock_offset = offset;
        auto& tool = exp.add_badabing(cfg);
        exp.run();
        return tool.analyze(exp.default_marking(0.5));
    };
    const auto a = run(TimeNs::zero());
    const auto b = run(seconds_i(7));  // constant 7 s receiver clock offset
    EXPECT_DOUBLE_EQ(a.frequency.value, b.frequency.value);
    EXPECT_DOUBLE_EQ(a.duration_basic.slots, b.duration_basic.slots);
}

TEST(Badabing, ImprovedDesignProducesExtendedCounts) {
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::cbr_uniform;
    wl.duration = seconds_i(120);
    wl.seed = 31;
    wl.mean_episode_gap = seconds_i(5);
    scenarios::Experiment exp{testbed_cfg(), wl};
    auto cfg = tool_cfg(0.5, wl.duration);
    cfg.improved = true;
    auto& tool = exp.add_badabing(cfg);
    exp.run();
    const auto res = tool.analyze(exp.default_marking(0.5));
    EXPECT_GT(res.counts.extended_total(), 0u);
    EXPECT_TRUE(res.duration_improved.valid);
}

TEST(FixedIntervalProber, EmitsOnSchedule) {
    Testbed tb{testbed_cfg()};
    probes::FixedIntervalProber::Config cfg;
    cfg.interval = milliseconds(10);
    cfg.packets_per_probe = 2;
    cfg.stop = seconds_i(1);
    probes::FixedIntervalProber prober{tb.sched(), cfg, tb.forward_in()};
    tb.fwd_demux().bind(cfg.flow, prober);
    tb.sched().run_until(seconds_i(2));
    const auto out = prober.outcomes();
    EXPECT_NEAR(static_cast<double>(out.size()), 100.0, 2.0);
    for (const auto& po : out) {
        EXPECT_EQ(po.packets_sent, 2);
        EXPECT_EQ(po.packets_lost, 0);
        EXPECT_TRUE(po.any_received);
        // OWD = prop delay + transmission; roughly 20 ms here.
        EXPECT_GT(po.max_owd, milliseconds(19));
        EXPECT_LT(po.max_owd, milliseconds(25));
    }
}

}  // namespace
}  // namespace bb
