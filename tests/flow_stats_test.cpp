#include "measure/flow_stats.h"

#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "scenarios/testbed.h"
#include "traffic/cbr.h"

namespace bb::measure {
namespace {

scenarios::TestbedConfig testbed_cfg() {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(10);
    return cfg;
}

TEST(FlowStats, PerFlowAccountingConserves) {
    scenarios::Testbed tb{testbed_cfg()};
    FlowStats stats{tb.bottleneck()};
    traffic::CbrSource::Config a;
    a.rate_bps = 8'000'000;
    a.flow = 1;
    a.stop = seconds_i(5);
    traffic::CbrSource src_a{tb.sched(), a, tb.forward_in()};
    traffic::CbrSource::Config b = a;
    b.rate_bps = 8'000'000;
    b.flow = 2;
    traffic::CbrSource src_b{tb.sched(), b, tb.forward_in()};
    tb.sched().run_until(seconds_i(6));

    ASSERT_EQ(stats.flows().size(), 2u);
    for (const auto& [flow, f] : stats.flows()) {
        EXPECT_EQ(f.arrivals, f.drops + f.departures) << "flow " << flow;
        EXPECT_GT(f.departures, 0u);
    }
}

TEST(FlowStats, RouterLossRateAggregatesFlows) {
    scenarios::Testbed tb{testbed_cfg()};
    FlowStats stats{tb.bottleneck()};
    LossMonitor mon{tb.sched(), tb.bottleneck()};
    traffic::CbrSource::Config a;
    a.rate_bps = 20'000'000;
    a.flow = 1;
    a.stop = seconds_i(5);
    traffic::CbrSource src{tb.sched(), a, tb.forward_in()};
    tb.sched().run_until(seconds_i(6));
    EXPECT_NEAR(stats.router_loss_rate(), mon.router_loss_rate(), 1e-12);
    EXPECT_NEAR(stats.flows().at(1).loss_rate(), 0.5, 0.05);
}

TEST(FlowStats, UnequalFlowsHaveUnequalLossRates) {
    // A bursty flow sharing the link with a smooth one: the drop-tail queue
    // punishes whoever arrives when the buffer is full.
    scenarios::Testbed tb{testbed_cfg()};
    FlowStats stats{tb.bottleneck()};
    traffic::CbrSource::Config smooth;
    smooth.rate_bps = 5'000'000;
    smooth.flow = 1;
    smooth.stop = seconds_i(10);
    traffic::CbrSource src1{tb.sched(), smooth, tb.forward_in()};
    traffic::CbrSource::Config heavy = smooth;
    heavy.rate_bps = 15'000'000;
    heavy.flow = 2;
    traffic::CbrSource src2{tb.sched(), heavy, tb.forward_in()};
    tb.sched().run_until(seconds_i(11));
    const double r1 = stats.flows().at(1).loss_rate();
    const double r2 = stats.flows().at(2).loss_rate();
    EXPECT_GT(r2, 0.0);
    // Both flows lose under a shared drop-tail queue, roughly alike.
    EXPECT_GT(r1, 0.0);
}

TEST(FlowStats, EventQueriesRequireRecording) {
    scenarios::Testbed tb{testbed_cfg()};
    FlowStats stats{tb.bottleneck(), /*record_events=*/false};
    EXPECT_FALSE(stats.records_events());
    EXPECT_TRUE(stats.flows_dropped_in(TimeNs::zero(), seconds_i(1)).empty());
}

TEST(FlowStats, Section3SomeFlowsLoseNothingDuringEpisodes) {
    // The §3 observation: during a router loss episode, flows keep being
    // transmitted at B_out, so some flows see zero end-to-end loss.
    scenarios::Testbed tb{testbed_cfg()};
    FlowStats stats{tb.bottleneck(), /*record_events=*/true};
    LossMonitor mon{tb.sched(), tb.bottleneck()};
    // Many small CBR flows sum to a mild overload.
    std::vector<std::unique_ptr<traffic::CbrSource>> sources;
    for (sim::FlowId f = 1; f <= 20; ++f) {
        traffic::CbrSource::Config c;
        c.rate_bps = 600'000;  // total 12 Mb/s on a 10 Mb/s link
        c.flow = f;
        c.stop = seconds_i(20);
        sources.push_back(
            std::make_unique<traffic::CbrSource>(tb.sched(), c, tb.forward_in()));
    }
    tb.sched().run_until(seconds_i(21));
    const auto eps = mon.episodes(milliseconds(100));
    ASSERT_FALSE(eps.empty());
    bool found_lossless_active_flow = false;
    for (const auto& e : eps) {
        const auto active = stats.flows_active_in(e.start, e.end);
        const auto dropped = stats.flows_dropped_in(e.start, e.end);
        EXPECT_FALSE(active.empty());
        for (const auto f : active) {
            if (!dropped.contains(f)) {
                found_lossless_active_flow = true;
                break;
            }
        }
        if (found_lossless_active_flow) break;
    }
    EXPECT_TRUE(found_lossless_active_flow)
        << "during some episode, at least one active flow should lose nothing";
}

}  // namespace
}  // namespace bb::measure
