// Seed-pinned golden test: Table 4/5/6-shaped runs plus the Figure 9
// sensitivity sweep, with every output pinned to the exact value the
// drop-tail pipeline produced when the values were recorded.
//
// Purpose: the queue-discipline factory refactor (PIE/CoDel/ECN/GE link) must
// be a pure extension — with drop-tail selected, every packet, drop, probe
// outcome and estimate must stay bit-identical to the pre-refactor tree.
// These tests fail on ANY behavioural drift in the drop-tail path: an extra
// RNG draw in Testbed construction, a reordered event, a changed default.
//
// The runs are shrunken (120 s, 20 Mb/s) so the whole file stays in test
// time budget; bit-identity does not depend on the workload size.
//
// Regenerating the constants (only after an *intentional* behaviour change):
//   BB_GOLDEN_PRINT=1 ./build/tests/golden_droptail_test
// and paste the printed block below.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "scenarios/experiment.h"

namespace bb {
namespace {

using scenarios::Experiment;
using scenarios::TestbedConfig;
using scenarios::TrafficKind;
using scenarios::WorkloadConfig;

struct GoldenRow {
    double truth_freq{0.0};
    double truth_dur_s{0.0};
    std::uint64_t truth_episodes{0};
    std::uint64_t truth_drops{0};
    double est_freq{0.0};
    double est_dur_s{0.0};
    std::uint64_t probes_sent{0};
    std::uint64_t packets_lost{0};
};

TestbedConfig golden_testbed() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 20'000'000;
    return cfg;
}

WorkloadConfig golden_workload(TrafficKind kind) {
    WorkloadConfig wl;
    wl.kind = kind;
    wl.duration = seconds_i(120);
    wl.seed = 42;
    wl.mean_episode_gap = seconds_i(6);
    if (kind == TrafficKind::cbr_multi) {
        wl.episode_durations = {milliseconds(50), milliseconds(100), milliseconds(150)};
    }
    if (kind == TrafficKind::web) {
        wl.web_session_rate_per_s = 10.0 / 3.0;  // 5.0 scaled from 30 to 20 Mb/s
    }
    return wl;
}

GoldenRow run_golden(TrafficKind kind) {
    const WorkloadConfig wl = golden_workload(kind);
    scenarios::TruthConfig tc;
    tc.delay_based = kind == TrafficKind::web;
    Experiment exp{golden_testbed(), wl, tc};
    probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();

    const auto truth = exp.truth();
    const auto res = tool.analyze(exp.default_marking(0.3));
    GoldenRow row;
    row.truth_freq = truth.frequency;
    row.truth_dur_s = truth.mean_duration_s;
    row.truth_episodes = truth.episodes;
    row.truth_drops = truth.total_drops;
    row.est_freq = res.frequency.value;
    row.est_dur_s = res.duration_basic.valid ? res.duration_basic.seconds(tool.slot_width()) : 0.0;
    row.probes_sent = res.probes_sent;
    row.packets_lost = res.packets_lost;
    return row;
}

bool golden_print() { return std::getenv("BB_GOLDEN_PRINT") != nullptr; }

void print_row(const char* name, const GoldenRow& r) {
    std::printf("golden %s: {%.17g, %.17g, %lluu, %lluu, %.17g, %.17g, %lluu, %lluu}\n",
                name, r.truth_freq, r.truth_dur_s,
                static_cast<unsigned long long>(r.truth_episodes),
                static_cast<unsigned long long>(r.truth_drops), r.est_freq, r.est_dur_s,
                static_cast<unsigned long long>(r.probes_sent),
                static_cast<unsigned long long>(r.packets_lost));
}

void expect_row(const GoldenRow& got, const GoldenRow& want) {
    // Bit-identical, not approximately equal: EXPECT_EQ on the doubles.
    EXPECT_EQ(got.truth_freq, want.truth_freq);
    EXPECT_EQ(got.truth_dur_s, want.truth_dur_s);
    EXPECT_EQ(got.truth_episodes, want.truth_episodes);
    EXPECT_EQ(got.truth_drops, want.truth_drops);
    EXPECT_EQ(got.est_freq, want.est_freq);
    EXPECT_EQ(got.est_dur_s, want.est_dur_s);
    EXPECT_EQ(got.probes_sent, want.probes_sent);
    EXPECT_EQ(got.packets_lost, want.packets_lost);
}

// --- pinned values (regenerate with BB_GOLDEN_PRINT=1; see header) ---------

const GoldenRow kTable4{0.015416666666666667, 0.087589871100000022, 20u, 3638u,
                        0.016409400639688501, 0.11699999999999999, 12183u, 349u};
const GoldenRow kTable5{0.020125000000000001, 0.1146963324, 20u, 4740u,
                        0.021554721179251841, 0.17166666666666669, 12183u, 482u};
const GoldenRow kTable6{0.010125, 0.055873354100000008, 20u, 914u,
                        0.010985954665554165, 0.066666666666666666, 12183u, 111u};
const double kFig9[3] = {0.015479360852197071, 0.017310252996005325, 0.020223035952063914};

TEST(GoldenDropTail, Table4CbrUniform) {
    const GoldenRow row = run_golden(TrafficKind::cbr_uniform);
    if (golden_print()) {
        print_row("kTable4", row);
        return;
    }
    expect_row(row, kTable4);
}

TEST(GoldenDropTail, Table5CbrMulti) {
    const GoldenRow row = run_golden(TrafficKind::cbr_multi);
    if (golden_print()) {
        print_row("kTable5", row);
        return;
    }
    expect_row(row, kTable5);
}

TEST(GoldenDropTail, Table6Web) {
    const GoldenRow row = run_golden(TrafficKind::web);
    if (golden_print()) {
        print_row("kTable6", row);
        return;
    }
    expect_row(row, kTable6);
}

TEST(GoldenDropTail, Fig9SensitivitySweep) {
    // One run re-analyzed under the Figure 9 alpha sweep; pins the marking +
    // estimator path (not just the simulator).
    const WorkloadConfig wl = golden_workload(TrafficKind::cbr_uniform);
    Experiment exp{golden_testbed(), wl};
    probes::BadabingConfig bc;
    bc.p = 0.5;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();

    const double alphas[3] = {0.05, 0.10, 0.20};
    double freqs[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
        core::MarkingConfig m;
        m.alpha = alphas[i];
        m.tau = milliseconds(80);
        freqs[i] = tool.analyze(m).frequency.value;
    }
    if (golden_print()) {
        std::printf("golden kFig9: {%.17g, %.17g, %.17g}\n", freqs[0], freqs[1], freqs[2]);
        return;
    }
    EXPECT_EQ(freqs[0], kFig9[0]);
    EXPECT_EQ(freqs[1], kFig9[1]);
    EXPECT_EQ(freqs[2], kFig9[2]);
}

}  // namespace
}  // namespace bb
