#include "scenarios/replica_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace bb::scenarios {
namespace {

// A small-but-real scenario: CBR with engineered 68 ms loss episodes every
// ~2 s, 8 simulated seconds per replica, BADABING at p = 0.3.
ReplicaPlan short_cbr_plan() {
    ReplicaPlan plan;
    plan.workload.kind = TrafficKind::cbr_uniform;
    plan.workload.duration = seconds_i(8);
    plan.workload.seed = 7;  // master seed; replicas fork from it
    plan.workload.episode_duration = milliseconds(68);
    plan.workload.mean_episode_gap = seconds_i(2);
    plan.probe.p = 0.3;
    plan.probe.total_slots = 0;
    return plan;
}

ReplicaRunner::Config runner_config(std::size_t replicas, std::size_t threads) {
    ReplicaRunner::Config cfg;
    cfg.replicas = replicas;
    cfg.threads = threads;
    cfg.master_seed = 7;
    cfg.bootstrap_replicates = 200;
    return cfg;
}

void expect_identical(const ReplicaResult& a, const ReplicaResult& b) {
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.seed, b.seed);
    // Sufficient statistics of the estimate: the full y-state tallies.
    EXPECT_EQ(a.result.counts.basic, b.result.counts.basic);
    EXPECT_EQ(a.result.counts.extended, b.result.counts.extended);
    EXPECT_EQ(a.result.probes_sent, b.result.probes_sent);
    EXPECT_EQ(a.result.packets_lost, b.result.packets_lost);
    EXPECT_EQ(a.result.frequency.value, b.result.frequency.value);
    EXPECT_EQ(a.result.duration_basic.slots, b.result.duration_basic.slots);
    EXPECT_EQ(a.truth.frequency, b.truth.frequency);
    EXPECT_EQ(a.truth.mean_duration_s, b.truth.mean_duration_s);
    EXPECT_EQ(a.truth.total_drops, b.truth.total_drops);
    EXPECT_EQ(a.offered_load, b.offered_load);
}

void expect_identical(const AggregateStat& a, const AggregateStat& b) {
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.ci.lo, b.ci.lo);
    EXPECT_EQ(a.ci.hi, b.ci.hi);
    EXPECT_EQ(a.ci.point, b.ci.point);
}

// The tentpole invariant: same master seed => bit-identical per-replica
// results and aggregates, regardless of thread count.  Seeding is
// positional, so the scheduler can only reorder work, not change it.
TEST(ReplicaRunner, ThreadCountDoesNotChangeResults) {
    const auto plan = short_cbr_plan();
    const ReplicaRunner serial{runner_config(6, 1)};
    const ReplicaRunner parallel{runner_config(6, 8)};

    const auto r1 = serial.run(plan);
    const auto r8 = parallel.run(plan);
    ASSERT_EQ(r1.size(), 6u);
    ASSERT_EQ(r8.size(), 6u);
    for (std::size_t i = 0; i < r1.size(); ++i) {
        SCOPED_TRACE(i);
        expect_identical(r1[i], r8[i]);
    }

    const auto a1 = serial.aggregate(plan, r1);
    const auto a8 = parallel.aggregate(plan, r8);
    EXPECT_EQ(a1.replicas, a8.replicas);
    expect_identical(a1.true_frequency, a8.true_frequency);
    expect_identical(a1.est_frequency, a8.est_frequency);
    expect_identical(a1.true_duration_s, a8.true_duration_s);
    expect_identical(a1.est_duration_s, a8.est_duration_s);
    expect_identical(a1.offered_load, a8.offered_load);
}

TEST(ReplicaRunner, SeedsArePositionalAndPrefixStable) {
    const auto s4 = ReplicaRunner::replica_seeds(7, 4);
    const auto s8 = ReplicaRunner::replica_seeds(7, 8);
    ASSERT_EQ(s4.size(), 4u);
    ASSERT_EQ(s8.size(), 8u);
    // Growing the replica count must not disturb earlier replicas' streams.
    for (std::size_t i = 0; i < s4.size(); ++i) EXPECT_EQ(s4[i], s8[i]);
    // All seeds distinct.
    const std::set<std::uint64_t> unique(s8.begin(), s8.end());
    EXPECT_EQ(unique.size(), s8.size());
    // Different master seed => different streams.
    EXPECT_NE(ReplicaRunner::replica_seeds(8, 4)[0], s4[0]);
}

TEST(ReplicaRunner, ReplicasAreActuallyIndependentRuns) {
    const auto plan = short_cbr_plan();
    const ReplicaRunner runner{runner_config(4, 2)};
    const auto results = runner.run(plan);
    ASSERT_EQ(results.size(), 4u);
    // Different seeds produce different probe designs (geometric draws), so
    // at least one pair of replicas must differ in probes sent.
    bool any_difference = false;
    for (std::size_t i = 1; i < results.size(); ++i) {
        if (results[i].result.probes_sent != results[0].result.probes_sent ||
            results[i].truth.total_drops != results[0].truth.total_drops) {
            any_difference = true;
        }
    }
    EXPECT_TRUE(any_difference);
    // Every replica saw the engineered congestion.
    for (const auto& r : results) {
        EXPECT_GT(r.result.probes_sent, 0u);
        EXPECT_GT(r.truth.total_drops, 0u);
    }
}

TEST(ReplicaRunner, SingleReplicaAggregationDegeneratesGracefully) {
    const auto plan = short_cbr_plan();
    const ReplicaRunner runner{runner_config(1, 1)};
    const auto results = runner.run(plan);
    ASSERT_EQ(results.size(), 1u);
    const auto agg = runner.aggregate(plan, results);

    EXPECT_EQ(agg.replicas, 1u);
    // No NaNs anywhere; the CI collapses to a zero-width interval at the
    // single observed value instead of blowing up.
    for (const AggregateStat* s : {&agg.true_frequency, &agg.est_frequency,
                                   &agg.true_duration_s, &agg.est_duration_s,
                                   &agg.offered_load}) {
        EXPECT_TRUE(std::isfinite(s->mean));
        EXPECT_EQ(s->stddev, 0.0);
        ASSERT_TRUE(s->ci.valid);
        EXPECT_EQ(s->ci.lo, s->mean);
        EXPECT_EQ(s->ci.hi, s->mean);
        EXPECT_EQ(s->ci.std_error, 0.0);
    }
    EXPECT_EQ(agg.est_frequency.mean, results[0].est_frequency());
}

TEST(ReplicaRunner, ZeroReplicasYieldEmptyButFiniteAggregate) {
    const auto plan = short_cbr_plan();
    const ReplicaRunner runner{runner_config(0, 4)};
    const auto results = runner.run(plan);
    EXPECT_TRUE(results.empty());
    const auto agg = runner.aggregate(plan, results);
    EXPECT_EQ(agg.replicas, 0u);
    EXPECT_FALSE(agg.est_frequency.ci.valid);
    EXPECT_TRUE(std::isfinite(agg.est_frequency.mean));
    EXPECT_EQ(agg.est_frequency.mean, 0.0);
}

TEST(ReplicaRunner, JsonEmissionContainsRowsAndTrajectories) {
    const auto plan = short_cbr_plan();
    const ReplicaRunner runner{runner_config(2, 2)};
    const auto results = runner.run(plan);
    const auto agg = runner.aggregate(plan, results);
    const auto doc =
        aggregate_rows_json("unit", plan.probe.slot_width, {agg}, {results});
    EXPECT_NE(doc.find("\"label\":\"unit\""), std::string::npos);
    EXPECT_NE(doc.find("\"est_frequency\""), std::string::npos);
    EXPECT_NE(doc.find("\"trajectory\""), std::string::npos);
    EXPECT_NE(doc.find("\"replica\":1"), std::string::npos);
    EXPECT_EQ(doc.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace bb::scenarios
