#include "core/windowed.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/probe_process.h"
#include "core/synthetic.h"

namespace bb::core {
namespace {

TEST(Windowed, RejectsBadInputs) {
    std::vector<Experiment> exps{{0, ExperimentKind::basic}};
    std::vector<ExperimentResult> res;  // mismatched sizes
    EXPECT_THROW((void)windowed_estimates(exps, res, 100), std::invalid_argument);
    res.push_back({ExperimentKind::basic, 0});
    EXPECT_THROW((void)windowed_estimates(exps, res, 0), std::invalid_argument);
}

TEST(Windowed, GroupsByWindowStart) {
    std::vector<Experiment> exps{{5, ExperimentKind::basic},
                                 {90, ExperimentKind::basic},
                                 {110, ExperimentKind::basic},
                                 {450, ExperimentKind::basic}};
    std::vector<ExperimentResult> res{{ExperimentKind::basic, 0b11},
                                      {ExperimentKind::basic, 0b00},
                                      {ExperimentKind::basic, 0b10},
                                      {ExperimentKind::basic, 0b00}};
    const auto windows = windowed_estimates(exps, res, 100);
    ASSERT_EQ(windows.size(), 3u);
    EXPECT_EQ(windows[0].window_start, 0);
    EXPECT_EQ(windows[0].experiments, 2u);
    EXPECT_DOUBLE_EQ(windows[0].frequency.value, 0.5);
    EXPECT_EQ(windows[1].window_start, 100);
    EXPECT_EQ(windows[2].window_start, 400);
}

TEST(Windowed, DetectsFrequencyStep) {
    // Congestion frequency jumps 4x at the midpoint: the windowed view and
    // the stationarity check must both notice.
    Rng rng{42};
    const SlotIndex n = 1'000'000;
    auto first = synth_congestion_series(rng, n / 2, 10.0, 990.0);   // F ~ 0.01
    const auto second = synth_congestion_series(rng, n / 2, 10.0, 240.0);  // F ~ 0.04
    first.insert(first.end(), second.begin(), second.end());

    ProbeProcessConfig pcfg;
    pcfg.p = 0.3;
    const auto design = design_probe_process(rng, n, pcfg);
    const auto obs =
        observe_with_fidelity(design.experiments, first, FidelityModel{1.0, 1.0}, rng);

    const auto rep = check_stationarity(design.experiments, obs, n, 0.5);
    EXPECT_FALSE(rep.looks_stationary);
    EXPECT_GT(rep.second_half_frequency, rep.first_half_frequency * 2.0);

    const auto windows = windowed_estimates(design.experiments, obs, n / 10);
    ASSERT_EQ(windows.size(), 10u);
    EXPECT_GT(windows.back().frequency.value, windows.front().frequency.value * 2.0);
}

TEST(Windowed, StationaryProcessPasses) {
    Rng rng{43};
    const SlotIndex n = 1'000'000;
    const auto series = synth_congestion_series(rng, n, 10.0, 990.0);
    ProbeProcessConfig pcfg;
    pcfg.p = 0.3;
    const auto design = design_probe_process(rng, n, pcfg);
    const auto obs =
        observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
    const auto rep = check_stationarity(design.experiments, obs, n, 0.5);
    EXPECT_TRUE(rep.looks_stationary);
    EXPECT_LT(rep.frequency_shift, 0.3);
}

TEST(Windowed, EmptyInputYieldsNoWindows) {
    const auto windows = windowed_estimates({}, {}, 100);
    EXPECT_TRUE(windows.empty());
    const auto rep = check_stationarity({}, {}, 1000);
    EXPECT_TRUE(rep.looks_stationary);
    EXPECT_DOUBLE_EQ(rep.frequency_shift, 0.0);
}

}  // namespace
}  // namespace bb::core
