#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace bb {
namespace {

TEST(ThreadPool, CleanShutdownWithZeroSubmittedTasks) {
    ThreadPool pool{4};
    EXPECT_EQ(pool.size(), 4u);
    // Destructor must not hang or crash with an empty queue.
}

TEST(ThreadPool, ZeroThreadsResolvesToHardwareConcurrency) {
    ThreadPool pool{0};
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), ThreadPool::default_threads());
}

TEST(ThreadPool, SubmitReturnsTaskResult) {
    ThreadPool pool{2};
    auto fut = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ManyMoreTasksThanWorkersAllRun) {
    constexpr int kTasks = 5000;
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    {
        ThreadPool pool{3};
        for (int i = 0; i < kTasks; ++i) {
            futures.push_back(pool.submit([&counter] {
                counter.fetch_add(1, std::memory_order_relaxed);
            }));
        }
        for (auto& f : futures) f.get();
    }
    EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool{2};
        for (int i = 0; i < 200; ++i) {
            auto fut = pool.submit([&counter] {
                counter.fetch_add(1, std::memory_order_relaxed);
            });
            (void)fut;  // deliberately dropped: destructor must still run it
        }
    }
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
    ThreadPool pool{2};
    auto fut = pool.submit([]() -> int { throw std::runtime_error{"replica failed"}; });
    EXPECT_THROW(fut.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexExactlyOnce) {
    constexpr std::size_t kN = 4096;
    std::vector<std::atomic<int>> hits(kN);
    ThreadPool pool{8};
    pool.for_each_index(kN, [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ForEachIndexRethrowsLowestIndexException) {
    ThreadPool pool{4};
    try {
        pool.for_each_index(64, [](std::size_t i) {
            if (i == 3) throw std::runtime_error{"boom-3"};
            if (i == 40) throw std::logic_error{"boom-40"};
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom-3");
    }
}

TEST(ThreadPool, SubmitAcceptsMoveOnlyCallables) {
    ThreadPool pool{2};
    auto payload = std::make_unique<int>(13);
    auto fut = pool.submit([p = std::move(payload)] { return *p + 1; });
    EXPECT_EQ(fut.get(), 14);
}

TEST(ThreadPool, SubmitReturnsMoveOnlyResults) {
    ThreadPool pool{2};
    auto fut = pool.submit([] { return std::make_unique<int>(21); });
    auto result = fut.get();
    ASSERT_TRUE(result);
    EXPECT_EQ(*result, 21);
}

TEST(ThreadPool, ForEachIndexZeroIsANoOp) {
    ThreadPool pool{2};
    int calls = 0;
    pool.for_each_index(0, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace bb
