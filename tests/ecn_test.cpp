// ECN path tests (RFC 3168 simplified): ECT on data, CE applied by the AQM,
// echo on ACKs, once-per-RTT sender backoff, CE-aware congestion marking in
// the BADABING analysis, and the whole loop end to end through a RED
// bottleneck.
#include <gtest/gtest.h>

#include <vector>

#include "core/marking.h"
#include "scenarios/experiment.h"
#include "sim/link.h"
#include "tcp/tcp_receiver.h"
#include "tcp/tcp_sender.h"

namespace bb {
namespace {

class PacketRecorder final : public sim::PacketSink {
public:
    void accept(const sim::Packet& pkt) override { packets_.push_back(pkt); }
    [[nodiscard]] const std::vector<sim::Packet>& packets() const noexcept {
        return packets_;
    }

private:
    std::vector<sim::Packet> packets_;
};

sim::Packet make_ack(sim::FlowId flow, std::int64_t ack_seq, bool echo) {
    sim::Packet ack;
    ack.flow = flow;
    ack.kind = sim::PacketKind::ack;
    ack.size_bytes = 40;
    ack.ack_seq = ack_seq;
    ack.ecn_echo = echo;
    return ack;
}

TEST(TcpEcn, DataCarriesEctOnlyWhenEnabled) {
    for (const bool ecn : {false, true}) {
        sim::Scheduler sched;
        PacketRecorder path;
        tcp::TcpConfig cfg;
        cfg.ecn = ecn;
        tcp::TcpSender sender{sched, 1, cfg, path};
        sender.start(TimeNs::zero());
        sched.run_until(milliseconds(1));
        ASSERT_GE(path.packets().size(), 2u);
        for (const auto& pkt : path.packets()) {
            EXPECT_EQ(pkt.ecn_ect, ecn);
            EXPECT_FALSE(pkt.ecn_ce) << "CE is the queue's to set, never the sender's";
        }
    }
}

TEST(TcpEcn, ReceiverEchoesCeOnNextAckThenClears) {
    sim::Scheduler sched;
    PacketRecorder acks;
    tcp::TcpReceiver receiver{sched, 9, acks};

    sim::Packet data;
    data.flow = 9;
    data.kind = sim::PacketKind::data;
    data.size_bytes = 1500;
    data.seq = 0;
    data.ecn_ect = true;
    data.ecn_ce = true;
    receiver.accept(data);

    data.seq = 1500;
    data.ecn_ce = false;
    receiver.accept(data);
    sched.run();

    ASSERT_EQ(acks.packets().size(), 2u);
    EXPECT_TRUE(acks.packets()[0].ecn_echo) << "CE must be echoed on the next ACK";
    EXPECT_FALSE(acks.packets()[1].ecn_echo) << "the echo clears once sent";
    EXPECT_EQ(receiver.ce_received(), 1u);
}

TEST(TcpEcn, SenderBacksOffOnEchoAtMostOncePerWindow) {
    sim::Scheduler sched;
    PacketRecorder path;
    tcp::TcpConfig cfg;
    cfg.ecn = true;
    tcp::TcpSender sender{sched, 1, cfg, path};
    sender.start(TimeNs::zero());
    sched.run_until(milliseconds(1));  // initial window (2 segments) in flight

    const double cwnd_before = sender.cwnd_segments();
    sender.accept(make_ack(1, 1500, /*echo=*/true));
    EXPECT_EQ(sender.ecn_responses(), 1u);
    EXPECT_LE(sender.cwnd_segments(), cwnd_before + 0.51)
        << "the echoed CE must cancel the slow-start growth this ACK would bring";

    // A second echo inside the same window (snd_una still below the window
    // edge in force at the reduction) must be ignored.
    sender.accept(make_ack(1, 1500, /*echo=*/true));
    EXPECT_EQ(sender.ecn_responses(), 1u);

    // Once the window in force at the reduction is fully acknowledged, a
    // fresh echo counts as a new congestion signal.
    sender.accept(make_ack(1, 3000, /*echo=*/false));
    sender.accept(make_ack(1, 4500, /*echo=*/true));
    EXPECT_EQ(sender.ecn_responses(), 2u);
}

TEST(TcpEcn, NonEcnSenderIgnoresEcho) {
    sim::Scheduler sched;
    PacketRecorder path;
    tcp::TcpSender sender{sched, 1, tcp::TcpConfig{}, path};  // ecn defaults off
    sender.start(TimeNs::zero());
    sched.run_until(milliseconds(1));
    sender.accept(make_ack(1, 1500, /*echo=*/true));
    EXPECT_EQ(sender.ecn_responses(), 0u);
    EXPECT_DOUBLE_EQ(sender.cwnd_segments(), 3.0) << "plain slow start must proceed";
}

TEST(Marking, CeMarkedProbeCongestsItsSlotWhenUseCeIsOn) {
    // Three probes: clean, CE-marked (nothing lost), clean.  With use_ce the
    // middle slot is congested by_ce; without it the trace has no loss at all
    // and nothing is congested.
    std::vector<core::ProbeOutcome> probes;
    for (int i = 0; i < 3; ++i) {
        core::ProbeOutcome po;
        po.slot = i;
        po.send_time = milliseconds(5) * i;
        po.packets_sent = 3;
        po.packets_lost = 0;
        po.any_received = true;
        po.max_owd = milliseconds(50);
        po.ce_marked = (i == 1);
        probes.push_back(po);
    }

    core::MarkingConfig with_ce;  // use_ce defaults on
    core::CongestionMarker marker{with_ce};
    const auto marks = marker.mark(probes);
    ASSERT_EQ(marks.size(), 3u);
    EXPECT_FALSE(marks[0].congested);
    EXPECT_TRUE(marks[1].congested);
    EXPECT_TRUE(marks[1].by_ce);
    EXPECT_FALSE(marks[1].by_loss);
    EXPECT_FALSE(marks[2].congested);

    core::MarkingConfig no_ce;
    no_ce.use_ce = false;
    core::CongestionMarker blind{no_ce};
    const auto blind_marks = blind.mark(probes);
    for (const auto& m : blind_marks) EXPECT_FALSE(m.congested);
}

TEST(TcpEcn, EndToEndRedEcnMarksAndSendersBackOff) {
    scenarios::TestbedConfig tb;
    tb.bottleneck_rate_bps = 10'000'000;
    tb.discipline = scenarios::QueueDiscipline::red;
    tb.red.ecn = true;
    tb.seed = 3;
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::infinite_tcp;
    wl.duration = seconds_i(30);
    wl.tcp_flows = 10;
    wl.tcp_ecn = true;
    wl.seed = 3;
    scenarios::Experiment exp{tb, wl};
    exp.run();

    auto& queue = exp.testbed().bottleneck();
    EXPECT_GT(queue.marks(), 0u);
    auto* red = dynamic_cast<sim::RedQueue*>(&queue);
    ASSERT_NE(red, nullptr);
    EXPECT_EQ(red->early_marks(), queue.marks());

    std::uint64_t responses = 0;
    std::uint64_t ce_seen = 0;
    for (const auto& flow : exp.workload().tcp_flows()) {
        responses += flow->sender().ecn_responses();
        ce_seen += flow->receiver().ce_received();
    }
    EXPECT_GT(ce_seen, 0u) << "CE marks must reach the receivers";
    EXPECT_GT(responses, 0u) << "echoed CE must shrink sender windows";
}

TEST(TcpEcn, EcnProbesRecordCeMarks) {
    scenarios::TestbedConfig tb;
    tb.bottleneck_rate_bps = 10'000'000;
    tb.discipline = scenarios::QueueDiscipline::red;
    tb.red.ecn = true;
    tb.seed = 5;
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::infinite_tcp;
    wl.duration = seconds_i(30);
    wl.tcp_flows = 10;
    wl.seed = 5;
    scenarios::Experiment exp{tb, wl};
    probes::BadabingConfig probe_cfg;
    probe_cfg.p = 0.3;
    probe_cfg.total_slots = 0;  // sized to the workload window
    probe_cfg.ecn_probes = true;
    auto& tool = exp.add_badabing(probe_cfg);
    exp.run();

    std::uint64_t ce_probes = 0;
    for (const auto& po : tool.outcomes()) {
        if (po.ce_marked) ++ce_probes;
    }
    EXPECT_GT(ce_probes, 0u) << "ECT probes through a marking RED hop must pick up CE";
    // The CE-aware analysis must run end to end on this trace.
    const auto res = tool.analyze(exp.default_marking(probe_cfg.p));
    EXPECT_GT(res.frequency.value, 0.0);
}

}  // namespace
}  // namespace bb
