// End-to-end integration tests: full scenarios with ground truth and tools,
// shortened versions of the paper's experiments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "scenarios/experiment.h"

namespace bb::scenarios {
namespace {

TestbedConfig fast_testbed() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    return cfg;
}

TEST(ScenarioIntegration, CbrUniformTruthMatchesConstruction) {
    WorkloadConfig wl;
    wl.kind = TrafficKind::cbr_uniform;
    wl.duration = seconds_i(120);
    wl.seed = 1;
    wl.episode_duration = milliseconds(68);
    wl.mean_episode_gap = seconds_i(10);
    Experiment exp{fast_testbed(), wl};
    exp.run();
    const auto t = exp.truth();
    ASSERT_GT(t.episodes, 5u);
    // Episode duration is the engineered quantity: tight check.
    EXPECT_NEAR(t.mean_duration_s, 0.068, 0.01);
    EXPECT_LT(t.sd_duration_s, 0.01);
    // Frequency depends on the (exponential) burst count drawn for the seed:
    // loose check around duration / gap = 0.0069.
    EXPECT_GT(t.frequency, 0.002);
    EXPECT_LT(t.frequency, 0.03);
}

TEST(ScenarioIntegration, CbrMultiDurationEpisodesSpanConfiguredRange) {
    WorkloadConfig wl;
    wl.kind = TrafficKind::cbr_multi;
    wl.duration = seconds_i(180);
    wl.seed = 2;
    wl.episode_durations = {milliseconds(50), milliseconds(100), milliseconds(150)};
    wl.mean_episode_gap = seconds_i(8);
    Experiment exp{fast_testbed(), wl};
    exp.run();
    const auto eps = exp.episodes();
    ASSERT_GT(eps.size(), 8u);
    double min_d = 1e9;
    double max_d = 0.0;
    for (const auto& e : eps) {
        min_d = std::min(min_d, e.duration().to_seconds());
        max_d = std::max(max_d, e.duration().to_seconds());
    }
    EXPECT_LT(min_d, 0.08) << "some short (~50 ms) episodes expected";
    EXPECT_GT(max_d, 0.10) << "some long (~150 ms) episodes expected";
}

TEST(ScenarioIntegration, InfiniteTcpProducesPeriodicLossEpisodes) {
    WorkloadConfig wl;
    wl.kind = TrafficKind::infinite_tcp;
    wl.duration = seconds_i(120);
    wl.seed = 3;
    wl.tcp_flows = 20;
    Experiment exp{fast_testbed(), wl};
    exp.run();
    const auto t = exp.truth();
    EXPECT_GT(t.episodes, 3u) << "synchronized AIMD should overflow repeatedly";
    EXPECT_GT(t.frequency, 0.001);
    EXPECT_LT(t.frequency, 0.5);
    // Goodput sanity: the flows should keep the 10 Mb/s link busy.
    const auto& q = exp.testbed().bottleneck();
    const double util =
        static_cast<double>(q.departed_bytes()) * 8.0 / (10e6 * 122.0);
    EXPECT_GT(util, 0.5);
}

TEST(ScenarioIntegration, WebTrafficProducesBurstyEpisodes) {
    WorkloadConfig wl;
    wl.kind = TrafficKind::web;
    wl.duration = seconds_i(120);
    wl.seed = 4;
    wl.web_session_rate_per_s = 3.0;
    TruthConfig tc;
    tc.delay_based = true;
    Experiment exp{fast_testbed(), wl, tc};
    exp.run();
    const auto t = exp.truth();
    EXPECT_GT(t.episodes, 0u);
    EXPECT_GT(exp.monitor().drops_total(), 0u);
}

TEST(ScenarioIntegration, ZingUnderestimatesTcpLossEpisodes) {
    // The paper's central Table 1 observation, in miniature: under reactive
    // TCP traffic, Poisson probes almost never see drops, so ZING's loss
    // frequency is far below the episode frequency.
    WorkloadConfig wl;
    wl.kind = TrafficKind::infinite_tcp;
    wl.duration = seconds_i(120);
    wl.seed = 5;
    wl.tcp_flows = 20;
    Experiment exp{fast_testbed(), wl};
    probes::ZingProber::Config zc;
    zc.mean_interval = milliseconds(100);
    auto& zing = exp.add_zing(zc);
    exp.run();
    const auto truth = exp.truth();
    const auto res = zing.result();
    ASSERT_GT(truth.frequency, 0.0);
    EXPECT_LT(res.loss_frequency, truth.frequency)
        << "ZING should underestimate episode frequency";
}

TEST(ScenarioIntegration, DefaultMarkingFollowsPaperRules) {
    WorkloadConfig wl;
    wl.duration = seconds_i(10);
    Experiment exp{fast_testbed(), wl};
    const auto m01 = exp.default_marking(0.1);
    const auto m05 = exp.default_marking(0.5);
    const auto m09 = exp.default_marking(0.9);
    EXPECT_DOUBLE_EQ(m01.alpha, 0.2);
    EXPECT_DOUBLE_EQ(m05.alpha, 0.1);
    EXPECT_DOUBLE_EQ(m09.alpha, 0.5);
    // tau = (1/p + sqrt(1-p)/p) slots of 5 ms.
    EXPECT_GT(m01.tau, m05.tau);
    EXPECT_GT(m05.tau, m09.tau);
    EXPECT_NEAR(m01.tau.to_millis(), (10.0 + std::sqrt(0.9) * 10.0) * 5.0, 0.1);
}

TEST(ScenarioIntegration, TruthIsDeterministicForSeed) {
    const auto run = [] {
        WorkloadConfig wl;
        wl.kind = TrafficKind::cbr_uniform;
        wl.duration = seconds_i(60);
        wl.seed = 99;
        Experiment exp{fast_testbed(), wl};
        exp.run();
        return exp.truth();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.episodes, b.episodes);
    EXPECT_DOUBLE_EQ(a.frequency, b.frequency);
    EXPECT_DOUBLE_EQ(a.mean_duration_s, b.mean_duration_s);
}

}  // namespace
}  // namespace bb::scenarios
