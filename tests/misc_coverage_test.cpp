// Odds and ends: edge cases across modules not covered by the focused suites.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace_io.h"
#include "probes/sting.h"
#include "scenarios/testbed.h"
#include "tcp/tcp_receiver.h"
#include "traffic/cbr.h"
#include "traffic/episodic.h"
#include "util/rng.h"

namespace bb {
namespace {

TEST(CbrEdge, StartAfterStopSendsNothing) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    traffic::CbrSource::Config cfg;
    cfg.start = seconds_i(10);
    cfg.stop = seconds_i(5);
    traffic::CbrSource src{sched, cfg, sink};
    sched.run();
    EXPECT_EQ(src.packets_sent(), 0u);
}

TEST(CbrEdge, ZeroRateRejected) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    traffic::CbrSource::Config cfg;
    cfg.rate_bps = 0;
    EXPECT_THROW((traffic::CbrSource{sched, cfg, sink}), std::invalid_argument);
}

TEST(EpisodicEdge, StopCutsBurstsShort) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    traffic::EpisodicBurstSource::Config cfg;
    cfg.bottleneck_capacity_bytes = 100'000;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.mean_gap = milliseconds(100);
    cfg.stop = seconds_i(2);
    traffic::EpisodicBurstSource src{sched, cfg, sink, Rng{1}};
    sched.run();
    EXPECT_GT(src.bursts_started(), 0u);
    EXPECT_LE(sched.now(), seconds_i(3)) << "no events far past stop";
}

TEST(StingEdge, SequenceSpaceContinuesAcrossBursts) {
    scenarios::TestbedConfig tc;
    tc.bottleneck_rate_bps = 10'000'000;
    scenarios::Testbed tb{tc};
    probes::StingProber::Config cfg;
    cfg.burst_segments = 10;
    cfg.burst_interval = milliseconds(500);
    cfg.stop = seconds_i(10);
    probes::StingProber prober{tb.sched(), cfg, tb.forward_in(), Rng{2}};
    tcp::TcpReceiver responder{tb.sched(), cfg.flow, tb.reverse_in()};
    tb.fwd_demux().bind(cfg.flow, responder);
    tb.rev_demux().bind(cfg.flow, prober);
    tb.sched().run_until(seconds_i(12));
    const auto res = prober.result();
    ASSERT_GT(res.bursts_completed, 5u);
    // Responder saw one contiguous byte stream across bursts.
    EXPECT_EQ(responder.bytes_delivered(),
              static_cast<std::int64_t>(res.data_packets) * cfg.segment_bytes);
    EXPECT_EQ(responder.out_of_order_segments(), 0u);
}

TEST(TraceIoFuzz, RandomRoundTripsAreLossless) {
    Rng rng{7};
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<core::ProbeOutcome> probes;
        const auto n = rng.uniform_int(0, 200);
        core::SlotIndex slot = 0;
        for (std::int64_t i = 0; i < n; ++i) {
            core::ProbeOutcome po;
            slot += rng.uniform_int(1, 100);
            po.slot = slot;
            po.send_time = TimeNs{rng.uniform_int(0, 1'000'000'000'000LL)};
            po.packets_sent = static_cast<int>(rng.uniform_int(1, 10));
            po.packets_lost = static_cast<int>(rng.uniform_int(0, po.packets_sent));
            po.max_owd = TimeNs{rng.uniform_int(0, 10'000'000'000LL)};
            po.any_received = po.packets_lost < po.packets_sent;
            probes.push_back(po);
        }
        std::stringstream ss;
        core::write_trace(ss, probes);
        const auto back = core::read_trace(ss);
        ASSERT_EQ(back.size(), probes.size());
        for (std::size_t i = 0; i < probes.size(); ++i) {
            EXPECT_EQ(back[i].slot, probes[i].slot);
            EXPECT_EQ(back[i].send_time, probes[i].send_time);
            EXPECT_EQ(back[i].packets_sent, probes[i].packets_sent);
            EXPECT_EQ(back[i].packets_lost, probes[i].packets_lost);
            EXPECT_EQ(back[i].max_owd, probes[i].max_owd);
            EXPECT_EQ(back[i].any_received, probes[i].any_received);
        }
    }
}

TEST(DemuxEdge, RebindReplacesRoute) {
    sim::FlowDemux demux;
    sim::CountingSink a;
    sim::CountingSink b;
    demux.bind(1, a);
    demux.bind(1, b);  // rebinding replaces
    sim::Packet p;
    p.flow = 1;
    demux.accept(p);
    EXPECT_EQ(a.packets(), 0u);
    EXPECT_EQ(b.packets(), 1u);
}

TEST(SchedulerEdge, CancelInsideRunningEvent) {
    sim::Scheduler sched;
    int fired = 0;
    sim::EventId later{};
    later = sched.schedule_at(milliseconds(20), [&] { ++fired; });
    sched.schedule_at(milliseconds(10), [&] { sched.cancel(later); });
    sched.run();
    EXPECT_EQ(fired, 0);
}

TEST(QueueEdge, MixedPacketSizesConserveBytes) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::BottleneckQueue::Config cfg;
    cfg.rate_bps = 8'000'000;
    cfg.prop_delay = milliseconds(1);
    cfg.capacity_bytes = 10'000;
    sim::BottleneckQueue queue{sched, cfg, sink};
    Rng rng{3};
    std::int64_t offered = 0;
    std::int64_t dropped = 0;
    queue.on_drop([&](const sim::QueueEvent& ev) { dropped += ev.pkt.size_bytes; });
    for (int i = 0; i < 2000; ++i) {
        sched.schedule_at(microseconds(i * 50), [&queue, &offered, &rng, i] {
            sim::Packet p;
            p.id = static_cast<std::uint64_t>(i);
            p.size_bytes = static_cast<std::int32_t>(rng.uniform_int(40, 1500));
            offered += p.size_bytes;
            queue.accept(p);
        });
    }
    sched.run();
    EXPECT_EQ(queue.departed_bytes() + dropped, offered);
    EXPECT_EQ(sink.bytes(), queue.departed_bytes());
}

}  // namespace
}  // namespace bb
