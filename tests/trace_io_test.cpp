#include "core/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/probe_process.h"
#include "util/rng.h"

namespace bb::core {
namespace {

std::vector<ProbeOutcome> sample_probes() {
    std::vector<ProbeOutcome> probes;
    for (int i = 0; i < 5; ++i) {
        ProbeOutcome po;
        po.slot = i * 3;
        po.send_time = milliseconds(5 * i * 3);
        po.packets_sent = 3;
        po.packets_lost = i % 2;
        po.max_owd = milliseconds(50 + i);
        po.any_received = i != 4;
        probes.push_back(po);
    }
    return probes;
}

TEST(TraceIo, ProbeRoundTripThroughStream) {
    const auto probes = sample_probes();
    std::stringstream ss;
    write_trace(ss, probes);
    const auto back = read_trace(ss);
    ASSERT_EQ(back.size(), probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        EXPECT_EQ(back[i].slot, probes[i].slot);
        EXPECT_EQ(back[i].send_time, probes[i].send_time);
        EXPECT_EQ(back[i].packets_sent, probes[i].packets_sent);
        EXPECT_EQ(back[i].packets_lost, probes[i].packets_lost);
        EXPECT_EQ(back[i].max_owd, probes[i].max_owd);
        EXPECT_EQ(back[i].any_received, probes[i].any_received);
    }
}

TEST(TraceIo, DesignRoundTripThroughStream) {
    Rng rng{1};
    ProbeProcessConfig cfg;
    cfg.p = 0.5;
    cfg.improved = true;
    const auto design = design_probe_process(rng, 1000, cfg);
    std::stringstream ss;
    write_design(ss, design.experiments);
    const auto back = read_design(ss);
    ASSERT_EQ(back.size(), design.experiments.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].start_slot, design.experiments[i].start_slot);
        EXPECT_EQ(back[i].kind, design.experiments[i].kind);
    }
}

TEST(TraceIo, FileRoundTrip) {
    const auto dir = std::filesystem::temp_directory_path();
    const auto path = (dir / "bb_trace_test.csv").string();
    const auto probes = sample_probes();
    write_trace_file(path, probes);
    const auto back = read_trace_file(path);
    EXPECT_EQ(back.size(), probes.size());
    std::filesystem::remove(path);
}

TEST(TraceIo, MissingHeaderRejected) {
    std::stringstream ss{"not a trace\n1,2,3\n"};
    EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceIo, WrongMagicKindRejected) {
    const auto probes = sample_probes();
    std::stringstream ss;
    write_trace(ss, probes);
    EXPECT_THROW((void)read_design(ss), std::runtime_error);
}

TEST(TraceIo, MalformedRowRejected) {
    std::stringstream ss{"# badabing-trace v1\nheader\n1,2,notanumber,4,5,6\n"};
    EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceIo, WrongFieldCountRejected) {
    std::stringstream ss{"# badabing-trace v1\nheader\n1,2,3\n"};
    EXPECT_THROW((void)read_trace(ss), std::runtime_error);
}

TEST(TraceIo, CommentsAndBlankLinesSkipped) {
    std::stringstream ss{
        "# badabing-trace v1\nheader\n\n# comment\n7,100,3,1,50000,1\n"};
    const auto probes = read_trace(ss);
    ASSERT_EQ(probes.size(), 1u);
    EXPECT_EQ(probes[0].slot, 7);
    EXPECT_EQ(probes[0].packets_lost, 1);
}

TEST(TraceIo, MissingFileThrows) {
    EXPECT_THROW((void)read_trace_file("/nonexistent/path/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace bb::core
