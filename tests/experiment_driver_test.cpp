// The shared experiment driver used by every bench and example.
#include <gtest/gtest.h>

#include "scenarios/experiment.h"

namespace bb::scenarios {
namespace {

TestbedConfig fast_testbed() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    return cfg;
}

TEST(ExperimentDriver, AutoAssignsDistinctProbeFlows) {
    WorkloadConfig wl;
    wl.duration = seconds_i(10);
    Experiment exp{fast_testbed(), wl};
    probes::ZingProber::Config zc;
    zc.flow = 0;  // auto
    auto& z1 = exp.add_zing(zc);
    auto& z2 = exp.add_zing(zc);
    probes::BadabingConfig bc;
    bc.flow = 0;
    bc.total_slots = 0;
    auto& b = exp.add_badabing(bc);
    exp.run();
    // All three tools must receive their own probes (no cross-talk): every
    // probe a tool sent is either received by it or genuinely dropped at the
    // bottleneck -- nothing is swallowed by a wrong binding.
    EXPECT_GT(z1.result().received, 0u);
    EXPECT_GT(z2.result().received, 0u);
    const auto res = b.analyze(core::MarkingConfig{});
    EXPECT_GT(res.probes_sent, 0u);
    const std::uint64_t bb_received = res.packets_sent - res.packets_lost;
    const std::uint64_t total_received =
        z1.result().received + z2.result().received + bb_received;
    const std::uint64_t total_sent =
        z1.result().sent + z2.result().sent + res.packets_sent;
    const std::uint64_t dropped = exp.monitor().probe_drops();
    EXPECT_EQ(total_received + dropped, total_sent);
}

TEST(ExperimentDriver, BadabingWindowSizedToWorkload) {
    WorkloadConfig wl;
    wl.duration = seconds_i(30);
    Experiment exp{fast_testbed(), wl};
    probes::BadabingConfig bc;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();
    // 30 s / 5 ms = 6000 slots; the last probe slot must be inside.
    EXPECT_LT(tool.design().probe_slots.back(), 6000);
}

TEST(ExperimentDriver, ZingStopsAtWorkloadEnd) {
    WorkloadConfig wl;
    wl.duration = seconds_i(20);
    Experiment exp{fast_testbed(), wl};
    probes::ZingProber::Config zc;
    zc.mean_interval = milliseconds(50);
    auto& zing = exp.add_zing(zc);
    exp.run();
    // ~400 probes expected for 20 s at 20 Hz; hard bound at 150% allows
    // Poisson variation but catches a runaway prober.
    EXPECT_LT(zing.probes_sent(), 600u);
    EXPECT_GT(zing.probes_sent(), 200u);
}

TEST(ExperimentDriver, TruthUsesDelayBasedHeuristicWhenConfigured) {
    WorkloadConfig wl;
    wl.kind = TrafficKind::cbr_uniform;
    wl.duration = seconds_i(60);
    wl.mean_episode_gap = seconds_i(5);
    TruthConfig tc;
    tc.delay_based = true;
    Experiment exp{fast_testbed(), wl, tc};
    exp.run();
    // Both extraction paths must agree on the total drop mass.
    const auto delay_eps = exp.episodes();
    const auto gap_eps = exp.monitor().episodes(tc.episode_gap);
    std::uint64_t delay_drops = 0;
    std::uint64_t gap_drops = 0;
    for (const auto& e : delay_eps) delay_drops += e.drops;
    for (const auto& e : gap_eps) gap_drops += e.drops;
    EXPECT_EQ(delay_drops, gap_drops);
    EXPECT_LE(delay_eps.size(), gap_eps.size());
}

TEST(ExperimentDriver, TauRuleMatchesFormula) {
    WorkloadConfig wl;
    wl.duration = seconds_i(1);
    Experiment exp{fast_testbed(), wl};
    // p = 0.5: mean gap 2 slots, sd sqrt(0.5)/0.5 = 1.414 slots; tau =
    // 3.414 * 5 ms.
    EXPECT_NEAR(exp.default_marking(0.5).tau.to_millis(), 17.07, 0.05);
    EXPECT_NEAR(tau_for_probe_rate(1.0, milliseconds(5)).to_millis(), 5.0, 1e-9);
}

TEST(ExperimentDriver, RunIncludesDrainMargin) {
    WorkloadConfig wl;
    wl.duration = seconds_i(5);
    Experiment exp{fast_testbed(), wl};
    exp.run();
    EXPECT_GE(exp.testbed().sched().now(), seconds_i(7));
}

}  // namespace
}  // namespace bb::scenarios
