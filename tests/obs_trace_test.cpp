#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/control.h"

namespace bb::obs {
namespace {

// Minimal recursive-descent JSON validator: enough to prove the emitted
// trace is well-formed (Perfetto/chrome://tracing parse it with a full
// parser; any structural slip shows up here first).
class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : s_{text} {}

    bool valid() {
        skip_ws();
        if (!value()) return false;
        skip_ws();
        return pos_ == s_.size();
    }

private:
    bool value() {
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
            case '{': return object();
            case '[': return array();
            case '"': return string();
            case 't': return literal("true");
            case 'f': return literal("false");
            case 'n': return literal("null");
            default: return number();
        }
    }

    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!string()) return false;
            skip_ws();
            if (peek() != ':') return false;
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string() {
        if (peek() != '"') return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size()) return false;
        ++pos_;  // closing quote
        return true;
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* word) {
        const std::size_t len = std::char_traits<char>::length(word);
        if (s_.compare(pos_, len, word) != 0) return false;
        pos_ += len;
        return true;
    }

    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                    s_[pos_] == '\t' || s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string& s_;
    std::size_t pos_{0};
};

std::string slurp(const std::string& path) {
    std::ifstream in{path};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class TraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_enabled(true);
        Trace::clear();
        Trace::stop();
    }
    void TearDown() override {
        Trace::stop();
        Trace::clear();
        set_enabled(true);
    }
};

TEST_F(TraceTest, MultiThreadSpansProduceWellFormedJson) {
    Trace::start();
    {
        const Span outer{"outer", "test", "arg", 42};
        std::vector<std::thread> workers;
        for (int t = 0; t < 4; ++t) {
            workers.emplace_back([] {
                const Span s{"worker", "test"};
                instant("tick", "test");
            });
        }
        for (auto& w : workers) w.join();
    }
    EXPECT_GE(Trace::buffered_events(), 9u);  // 1 outer + 4 workers + 4 instants
    EXPECT_EQ(Trace::dropped_events(), 0u);

    const std::string path = "obs_trace_test_out.json";
    ASSERT_TRUE(Trace::write(path));
    const std::string doc = slurp(path);
    std::remove(path.c_str());

    JsonChecker checker{doc};
    EXPECT_TRUE(checker.valid()) << doc.substr(0, 400);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"worker\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"tick\""), std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"args\":{\"arg\":42}"), std::string::npos);
    // write() drains the buffers.
    EXPECT_EQ(Trace::buffered_events(), 0u);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
    Trace::start();
    const std::string path = "obs_trace_test_empty.json";
    ASSERT_TRUE(Trace::write(path));
    const std::string doc = slurp(path);
    std::remove(path.c_str());
    JsonChecker checker{doc};
    EXPECT_TRUE(checker.valid()) << doc;
}

TEST_F(TraceTest, SpansAreNotCollectedWhenInactive) {
    // start() was never called (and BB_OBS_TRACE resolution is overridden by
    // stop() in SetUp), so spans must be free of side effects.
    {
        const Span s{"ignored", "test"};
        instant("ignored", "test");
    }
    EXPECT_EQ(Trace::buffered_events(), 0u);
}

TEST_F(TraceTest, KillSwitchBlocksCollectionAndWrite) {
    set_enabled(false);
    Trace::start();  // no-op under the kill switch
    EXPECT_FALSE(Trace::active());
    {
        const Span s{"killed", "test"};
    }
    EXPECT_EQ(Trace::buffered_events(), 0u);

    const std::string path = "obs_trace_test_killed.json";
    EXPECT_FALSE(Trace::write(path));
    std::ifstream probe{path};
    EXPECT_FALSE(probe.good());  // no file was created
    set_enabled(true);
}

}  // namespace
}  // namespace bb::obs
