// Spec-driven golden test: the Table 4/5/6-shaped runs and the Figure 9
// sensitivity sweep rebuilt purely from scenario-DSL documents must be
// bit-identical to the hand-wired pipeline (the pinned constants are shared
// with golden_droptail_test.cpp — regenerate there, paste in both).
//
// This is the refactor's load-bearing guarantee: build_experiment(spec) is a
// pure re-expression of the hand-wired wiring, so a config file drives the
// exact same simulation as C++ code did.
//
// The examples/ spec files are additionally parsed (and, where cheap,
// expanded) to keep the shipped configs loadable.
#include <gtest/gtest.h>

#include <string>

#include "scenarios/spec.h"
#include "scenarios/sweep.h"

namespace bb::scenarios {
namespace {

struct GoldenRow {
    double truth_freq{0.0};
    double truth_dur_s{0.0};
    std::uint64_t truth_episodes{0};
    std::uint64_t truth_drops{0};
    double est_freq{0.0};
    double est_dur_s{0.0};
    std::uint64_t probes_sent{0};
    std::uint64_t packets_lost{0};
};

// Pinned by golden_droptail_test.cpp (BB_GOLDEN_PRINT=1 regenerates there).
const GoldenRow kTable4{0.015416666666666667, 0.087589871100000022, 20u, 3638u,
                        0.016409400639688501, 0.11699999999999999, 12183u, 349u};
const GoldenRow kTable5{0.020125000000000001, 0.1146963324, 20u, 4740u,
                        0.021554721179251841, 0.17166666666666669, 12183u, 482u};
const GoldenRow kTable6{0.010125, 0.055873354100000008, 20u, 914u,
                        0.010985954665554165, 0.066666666666666666, 12183u, 111u};
const double kFig9[3] = {0.015479360852197071, 0.017310252996005325, 0.020223035952063914};

GoldenRow run_spec(const std::string& text) {
    const auto r = load_scenario_spec_text(text, "golden-spec");
    EXPECT_TRUE(r.ok) << r.error;
    BuiltExperiment built = build_experiment(r.spec);
    built.experiment->run();

    const auto truth = built.experiment->truth();
    const auto res = built.badabing->analyze(marking_for(r.spec), r.spec.estimator);
    GoldenRow row;
    row.truth_freq = truth.frequency;
    row.truth_dur_s = truth.mean_duration_s;
    row.truth_episodes = truth.episodes;
    row.truth_drops = truth.total_drops;
    row.est_freq = res.frequency.value;
    row.est_dur_s = res.duration_basic.valid
                        ? res.duration_basic.seconds(built.badabing->slot_width())
                        : 0.0;
    row.probes_sent = res.probes_sent;
    row.packets_lost = res.packets_lost;
    return row;
}

void expect_row(const GoldenRow& got, const GoldenRow& want) {
    // Bit-identical, not approximately equal: EXPECT_EQ on the doubles.
    EXPECT_EQ(got.truth_freq, want.truth_freq);
    EXPECT_EQ(got.truth_dur_s, want.truth_dur_s);
    EXPECT_EQ(got.truth_episodes, want.truth_episodes);
    EXPECT_EQ(got.truth_drops, want.truth_drops);
    EXPECT_EQ(got.est_freq, want.est_freq);
    EXPECT_EQ(got.est_dur_s, want.est_dur_s);
    EXPECT_EQ(got.probes_sent, want.probes_sent);
    EXPECT_EQ(got.packets_lost, want.packets_lost);
}

TEST(SpecGolden, Table4CbrUniformFromSpec) {
    expect_row(run_spec(R"({
      "link": {"rate_mbps": 20},
      "traffic": {"kind": "cbr_uniform", "duration_s": 120, "mean_episode_gap_s": 6},
      "probe": {"badabing": {"p": 0.3}},
      "run": {"seed": 42}
    })"),
               kTable4);
}

TEST(SpecGolden, Table5CbrMultiFromSpec) {
    expect_row(run_spec(R"({
      "link": {"rate_mbps": 20},
      "traffic": {"kind": "cbr_multi", "duration_s": 120, "mean_episode_gap_s": 6,
                  "episode_ms_list": [50, 100, 150]},
      "probe": {"badabing": {"p": 0.3}},
      "run": {"seed": 42}
    })"),
               kTable5);
}

TEST(SpecGolden, Table6WebFromSpec) {
    expect_row(run_spec(R"({
      "link": {"rate_mbps": 20},
      "traffic": {"kind": "web", "duration_s": 120, "mean_episode_gap_s": 6,
                  "web_session_rate_per_s": 3.3333333333333335},
      "probe": {"badabing": {"p": 0.3}},
      "truth": {"delay_based": true},
      "run": {"seed": 42}
    })"),
               kTable6);
}

TEST(SpecGolden, Fig9AlphaSweepFromSpecs) {
    // One spec-built run at p = 0.5, re-analyzed under marking configs that
    // each come from a spec's analysis section — pins the DSL's marking path.
    const auto base = load_scenario_spec_text(R"({
      "link": {"rate_mbps": 20},
      "traffic": {"kind": "cbr_uniform", "duration_s": 120, "mean_episode_gap_s": 6},
      "probe": {"badabing": {"p": 0.5}},
      "run": {"seed": 42}
    })",
                                              "fig9-spec");
    ASSERT_TRUE(base.ok) << base.error;
    BuiltExperiment built = build_experiment(base.spec);
    built.experiment->run();

    const char* alphas[3] = {"0.05", "0.1", "0.2"};
    for (int i = 0; i < 3; ++i) {
        const auto m = load_scenario_spec_text(
            std::string{R"({"analysis": {"alpha": )"} + alphas[i] + R"(, "tau_ms": 80}})",
            "fig9-marking");
        ASSERT_TRUE(m.ok) << m.error;
        EXPECT_EQ(built.badabing->analyze(marking_for(m.spec)).frequency.value, kFig9[i])
            << "alpha = " << alphas[i];
    }
}

// --- shipped example specs stay loadable -------------------------------------

#ifdef BB_EXAMPLES_DIR
TEST(SpecGolden, ShippedExampleSpecsParseAndExpand) {
    const std::string dir = BB_EXAMPLES_DIR;
    for (const char* name : {"table4.json", "ablation_aqm_sweep.json",
                             "sweep_smoke.json", "fig9.json"}) {
        const auto r = load_sweep_spec_file(dir + "/" + name);
        ASSERT_TRUE(r.ok) << name << ": " << r.error;
        const auto e = expand_sweep(r.sweep, name);
        ASSERT_TRUE(e.ok) << name << ": " << e.error;
        EXPECT_FALSE(e.cells.empty()) << name;
    }
}

TEST(SpecGolden, ShippedAblationSweepMatchesHistoricalCellOrder) {
    const auto r = load_sweep_spec_file(std::string{BB_EXAMPLES_DIR} +
                                        "/ablation_aqm_sweep.json");
    ASSERT_TRUE(r.ok) << r.error;
    const auto e = expand_sweep(r.sweep, "ablation_aqm_sweep.json");
    ASSERT_TRUE(e.ok) << e.error;
    ASSERT_EQ(e.cells.size(), 16u);
    // discipline outermost, traffic middle, ge innermost — the bench's
    // historical loop nesting.
    EXPECT_EQ(e.cells[0].spec.testbed.discipline, QueueDiscipline::drop_tail);
    EXPECT_EQ(e.cells[0].spec.workload.kind, TrafficKind::cbr_uniform);
    EXPECT_FALSE(e.cells[0].spec.testbed.ge_enabled);
    EXPECT_TRUE(e.cells[1].spec.testbed.ge_enabled);
    EXPECT_EQ(e.cells[2].spec.workload.kind, TrafficKind::infinite_tcp);
    EXPECT_EQ(e.cells[4].spec.testbed.discipline, QueueDiscipline::red);
    EXPECT_EQ(e.cells[15].spec.testbed.discipline, QueueDiscipline::codel);
    EXPECT_TRUE(e.cells[15].spec.testbed.ge_enabled);
}
#endif  // BB_EXAMPLES_DIR

}  // namespace
}  // namespace bb::scenarios
