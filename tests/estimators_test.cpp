#include "core/estimators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/types.h"

namespace bb::core {
namespace {

ExperimentResult basic(std::uint8_t code) { return {ExperimentKind::basic, code}; }
ExperimentResult extended(std::uint8_t code) { return {ExperimentKind::extended, code}; }

TEST(StateCounts, TalliesAndDerivedQuantities) {
    StateCounts c;
    c.add(basic(0b00));
    c.add(basic(0b01));
    c.add(basic(0b10));
    c.add(basic(0b11));
    c.add(basic(0b11));
    c.add(extended(0b011));
    c.add(extended(0b110));
    c.add(extended(0b001));
    EXPECT_EQ(c.basic_total(), 5u);
    EXPECT_EQ(c.extended_total(), 3u);
    EXPECT_EQ(c.R(), 4u);  // 01 + 10 + 2x11
    EXPECT_EQ(c.S(), 2u);
    EXPECT_EQ(c.U(), 2u);
    EXPECT_EQ(c.V(), 1u);
}

TEST(StateCounts, Accumulate) {
    StateCounts a;
    a.add(basic(0b01));
    StateCounts b;
    b.add(basic(0b01));
    b.add(extended(0b111));
    a += b;
    EXPECT_EQ(a.basic[0b01], 2u);
    EXPECT_EQ(a.extended[0b111], 1u);
}

TEST(Codes, EncodingMatchesPaperConvention) {
    // y = 10: first probe congested, second not.
    EXPECT_EQ(basic_code(true, false), 0b10);
    EXPECT_EQ(basic_code(false, true), 0b01);
    // y = 001: congestion only at the third slot.
    EXPECT_EQ(extended_code(false, false, true), 0b001);
    EXPECT_EQ(extended_code(true, true, false), 0b110);
}

TEST(Frequency, IsFractionOfLeadingOnes) {
    StateCounts c;
    c.add(basic(0b00));
    c.add(basic(0b00));
    c.add(basic(0b10));
    c.add(basic(0b11));
    const auto f = estimate_frequency(c);
    EXPECT_TRUE(f.valid());
    EXPECT_DOUBLE_EQ(f.value, 0.5);
    EXPECT_EQ(f.samples, 4u);
}

TEST(Frequency, ExtendedExperimentsOptIn) {
    StateCounts c;
    c.add(basic(0b00));
    c.add(extended(0b100));
    EstimatorOptions with_ext;
    with_ext.frequency_from_extended = true;
    EXPECT_DOUBLE_EQ(estimate_frequency(c, with_ext).value, 0.5);
    EstimatorOptions basic_only;
    basic_only.frequency_from_extended = false;
    EXPECT_DOUBLE_EQ(estimate_frequency(c, basic_only).value, 0.0);
}

TEST(Frequency, EmptyIsInvalid) {
    const auto f = estimate_frequency(StateCounts{});
    EXPECT_FALSE(f.valid());
    EXPECT_DOUBLE_EQ(f.value, 0.0);
}

TEST(DurationBasic, PaperFormula) {
    // R/S = 3 -> D = 2*(3-1)+1 = 5 slots.
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    c.basic[0b11] = 40;  // R = 60, S = 20
    const auto d = estimate_duration_basic(c);
    ASSERT_TRUE(d.valid);
    EXPECT_DOUBLE_EQ(d.slots, 5.0);
    EXPECT_EQ(d.R, 60u);
    EXPECT_EQ(d.S, 20u);
    EXPECT_DOUBLE_EQ(d.seconds(milliseconds(5)), 0.025);
}

TEST(DurationBasic, OneSlotEpisodesGiveDurationOne) {
    // Only transitions, no 11 states: R == S -> D = 1 slot.
    StateCounts c;
    c.basic[0b01] = 7;
    c.basic[0b10] = 7;
    const auto d = estimate_duration_basic(c);
    ASSERT_TRUE(d.valid);
    EXPECT_DOUBLE_EQ(d.slots, 1.0);
}

TEST(DurationBasic, NoTransitionsIsInvalid) {
    StateCounts c;
    c.basic[0b00] = 100;
    c.basic[0b11] = 5;  // congestion seen but never a boundary
    const auto d = estimate_duration_basic(c);
    EXPECT_FALSE(d.valid);
}

TEST(DurationImproved, CorrectsWithRHat) {
    // With r = p2/p1 = 0.5, the 11 states are under-reported by half;
    // U/V should estimate r and inflate the duration back.
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    c.basic[0b11] = 20;  // suppressed from a "true" 40 by p2/p1 = 0.5
    c.extended[0b011] = 5;
    c.extended[0b110] = 5;   // U = 10
    c.extended[0b001] = 10;
    c.extended[0b100] = 10;  // V = 20 -> r_hat = 0.5
    const auto d = estimate_duration_improved(c);
    ASSERT_TRUE(d.valid);
    ASSERT_TRUE(d.r_hat.has_value());
    EXPECT_DOUBLE_EQ(*d.r_hat, 0.5);
    // R/S = 40/20 = 2; D = (2V/U)(R/S - 1) + 1 = 4*1 + 1 = 5.
    EXPECT_DOUBLE_EQ(d.slots, 5.0);
}

TEST(DurationImproved, MatchesBasicWhenREqualsOne) {
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    c.basic[0b11] = 40;
    c.extended[0b011] = 8;
    c.extended[0b110] = 8;
    c.extended[0b001] = 8;
    c.extended[0b100] = 8;
    const auto basic_d = estimate_duration_basic(c);
    const auto improved_d = estimate_duration_improved(c);
    ASSERT_TRUE(improved_d.valid);
    EXPECT_DOUBLE_EQ(improved_d.slots, basic_d.slots);
}

TEST(DurationImproved, NoExtendedDataIsInvalid) {
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    c.basic[0b11] = 40;
    EXPECT_FALSE(estimate_duration_improved(c).valid);
}

TEST(DurationOptions, PairsFromExtendedFoldLeadingDigits) {
    StateCounts c;
    c.extended[0b110] = 4;  // leading pair 11 -> R
    c.extended[0b100] = 4;  // leading pair 10 -> R and S
    EstimatorOptions opts;
    opts.pairs_from_extended = true;
    const auto d = estimate_duration_basic(c, opts);
    ASSERT_TRUE(d.valid);
    EXPECT_EQ(d.R, 8u);
    EXPECT_EQ(d.S, 4u);
    // R/S = 2 -> D = 3 slots.
    EXPECT_DOUBLE_EQ(d.slots, 3.0);
}

// Edge cases feeding the multi-replica aggregation layer: a replica with no
// usable experiments must yield invalid-but-finite estimates, never NaN.
TEST(Frequency, ZeroExperimentsIsInvalidAndFinite) {
    const StateCounts empty;
    const auto f = estimate_frequency(empty);
    EXPECT_FALSE(f.valid());
    EXPECT_EQ(f.samples, 0u);
    EXPECT_TRUE(std::isfinite(f.value));
    EXPECT_DOUBLE_EQ(f.value, 0.0);
}

TEST(Frequency, OnlyExtendedWithOptOutIsInvalid) {
    StateCounts c;
    c.add(extended(0b100));
    EstimatorOptions basic_only;
    basic_only.frequency_from_extended = false;
    const auto f = estimate_frequency(c, basic_only);
    EXPECT_FALSE(f.valid());
    EXPECT_TRUE(std::isfinite(f.value));
}

TEST(DurationBasic, ZeroExperimentsIsInvalidAndFinite) {
    const auto d = estimate_duration_basic(StateCounts{});
    EXPECT_FALSE(d.valid);
    EXPECT_TRUE(std::isfinite(d.slots));
    EXPECT_TRUE(std::isfinite(d.seconds(milliseconds(5))));
}

TEST(DurationBasic, SZeroNeverProducesNaN) {
    // S = 0 with congestion present (only 11 reports): the R/S ratio is
    // undefined; the estimate must be flagged invalid with finite fields.
    StateCounts c;
    c.basic[0b11] = 50;
    const auto d = estimate_duration_basic(c);
    EXPECT_FALSE(d.valid);
    EXPECT_EQ(d.S, 0u);
    EXPECT_TRUE(std::isfinite(d.slots));
    EXPECT_TRUE(std::isfinite(d.seconds(milliseconds(5))));
    EXPECT_DOUBLE_EQ(d.seconds(milliseconds(5)), 0.0);
}

TEST(DurationImproved, SZeroOrUZeroNeverProducesNaN) {
    StateCounts c;
    c.basic[0b11] = 10;          // S = 0
    c.extended[0b001] = 4;       // V > 0, U = 0
    const auto d = estimate_duration_improved(c);
    EXPECT_FALSE(d.valid);
    EXPECT_TRUE(std::isfinite(d.slots));
}

TEST(StdDevGuidance, MatchesFormula) {
    // StdDev = 1/sqrt(p N L); paper example: L = 0.001 per 5 ms slot.
    EXPECT_NEAR(duration_stddev_guidance(0.1, 180'000, 0.001), 1.0 / std::sqrt(18.0), 1e-12);
    EXPECT_DOUBLE_EQ(duration_stddev_guidance(0.1, 0, 0.001), 0.0);
}

TEST(Accumulator, StreamsToSameAnswer) {
    EstimatorAccumulator acc;
    for (int i = 0; i < 10; ++i) acc.add(basic(0b01));
    for (int i = 0; i < 10; ++i) acc.add(basic(0b10));
    for (int i = 0; i < 40; ++i) acc.add(basic(0b11));
    EXPECT_DOUBLE_EQ(acc.duration_basic().slots, 5.0);
    EXPECT_DOUBLE_EQ(acc.frequency().value, 50.0 / 60.0);
}

}  // namespace
}  // namespace bb::core
