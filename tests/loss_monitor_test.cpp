#include "measure/loss_monitor.h"

#include <gtest/gtest.h>

#include "scenarios/testbed.h"
#include "traffic/cbr.h"

namespace bb::measure {
namespace {

scenarios::TestbedConfig testbed_cfg() {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(10);
    cfg.buffer_time = milliseconds(50);
    return cfg;
}

TEST(LossMonitor, NoTrafficNoDrops) {
    scenarios::Testbed tb{testbed_cfg()};
    LossMonitor mon{tb.sched(), tb.bottleneck()};
    tb.sched().run_until(seconds_i(1));
    EXPECT_EQ(mon.drops_total(), 0u);
    EXPECT_DOUBLE_EQ(mon.router_loss_rate(), 0.0);
    EXPECT_TRUE(mon.episodes(milliseconds(100)).empty());
}

TEST(LossMonitor, RouterLossRateMatchesOverload) {
    scenarios::Testbed tb{testbed_cfg()};
    LossMonitor mon{tb.sched(), tb.bottleneck()};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 20'000'000;  // 2x: half of the arrivals must be shed
    cbr.stop = seconds_i(10);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};
    tb.sched().run_until(seconds_i(11));
    EXPECT_NEAR(mon.router_loss_rate(), 0.5, 0.03);
    EXPECT_EQ(mon.drops_total(), mon.cross_traffic_drops());
    EXPECT_EQ(mon.probe_drops(), 0u);
}

TEST(LossMonitor, SeparatesProbeAndCrossTrafficDrops) {
    scenarios::Testbed tb{testbed_cfg()};
    LossMonitor mon{tb.sched(), tb.bottleneck()};
    // Saturate, then inject probe-kind packets that will also be dropped.
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 30'000'000;
    cbr.stop = seconds_i(5);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};
    for (int i = 0; i < 200; ++i) {
        tb.sched().schedule_at(milliseconds(1000 + i * 10), [&tb, i] {
            sim::Packet p;
            p.id = 900'000 + static_cast<std::uint64_t>(i);
            p.kind = sim::PacketKind::probe;
            p.size_bytes = 1500;
            tb.forward_in().accept(p);
        });
    }
    tb.sched().run_until(seconds_i(6));
    EXPECT_GT(mon.probe_drops(), 0u);
    EXPECT_GT(mon.cross_traffic_drops(), 0u);
}

TEST(LossMonitor, ProbeDropsExcludableFromTruth) {
    scenarios::Testbed tb{testbed_cfg()};
    LossMonitor::Options opts;
    opts.count_probe_traffic = false;
    LossMonitor mon{tb.sched(), tb.bottleneck(), opts};
    // Only probe packets, at a rate that overflows the queue.
    for (int i = 0; i < 2000; ++i) {
        tb.sched().schedule_at(microseconds(i * 100), [&tb, i] {
            sim::Packet p;
            p.id = static_cast<std::uint64_t>(i);
            p.kind = sim::PacketKind::probe;
            p.size_bytes = 1500;
            tb.forward_in().accept(p);
        });
    }
    tb.sched().run_until(seconds_i(2));
    EXPECT_GT(mon.probe_drops(), 0u);
    EXPECT_TRUE(mon.drop_times().empty()) << "excluded probe drops must not enter truth";
}

TEST(LossMonitor, DeparturesRecordQueueingDelay) {
    scenarios::Testbed tb{testbed_cfg()};
    LossMonitor::Options opts;
    opts.record_departures = true;
    LossMonitor mon{tb.sched(), tb.bottleneck(), opts};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 9'000'000;  // 90% load: visible queueing, no loss
    cbr.stop = seconds_i(3);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};
    tb.sched().run_until(seconds_i(4));
    ASSERT_FALSE(mon.departures().empty());
    for (const auto& d : mon.departures()) {
        EXPECT_GE(d.queueing_delay, TimeNs::zero());
        EXPECT_LE(d.queueing_delay, milliseconds(51));
    }
}

TEST(QueueSampler, SamplesAtConfiguredCadence) {
    scenarios::Testbed tb{testbed_cfg()};
    QueueSampler sampler{tb.sched(), tb.bottleneck(), milliseconds(10), seconds_i(1)};
    tb.sched().run_until(seconds_i(2));
    // 1 s of samples at 10 ms.
    EXPECT_NEAR(static_cast<double>(sampler.series().size()), 100.0, 2.0);
    for (const auto& pt : sampler.series().points()) {
        EXPECT_GE(pt.value, 0.0);
    }
}

TEST(QueueSampler, StopsAtHorizon) {
    scenarios::Testbed tb{testbed_cfg()};
    QueueSampler sampler{tb.sched(), tb.bottleneck(), milliseconds(10), milliseconds(100)};
    tb.sched().run_until(seconds_i(5));
    EXPECT_LE(sampler.series().size(), 11u);
}

}  // namespace
}  // namespace bb::measure
