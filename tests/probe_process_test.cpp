#include "core/probe_process.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace bb::core {
namespace {

TEST(ProbeProcess, RejectsBadParameters) {
    Rng rng{1};
    ProbeProcessConfig cfg;
    cfg.p = 0.0;
    EXPECT_THROW(design_probe_process(rng, 100, cfg), std::invalid_argument);
    cfg.p = 1.5;
    EXPECT_THROW(design_probe_process(rng, 100, cfg), std::invalid_argument);
    cfg.p = 0.5;
    cfg.extended_fraction = -0.1;
    EXPECT_THROW(design_probe_process(rng, 100, cfg), std::invalid_argument);
}

TEST(ProbeProcess, ExperimentRateMatchesP) {
    Rng rng{2};
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    const auto d = design_probe_process(rng, 100'000, cfg);
    EXPECT_NEAR(static_cast<double>(d.experiments.size()) / 100'000.0, 0.3, 0.01);
}

TEST(ProbeProcess, BasicDesignHasOnlyBasicExperiments) {
    Rng rng{3};
    ProbeProcessConfig cfg;
    cfg.p = 0.5;
    cfg.improved = false;
    const auto d = design_probe_process(rng, 10'000, cfg);
    EXPECT_TRUE(std::all_of(d.experiments.begin(), d.experiments.end(), [](const Experiment& e) {
        return e.kind == ExperimentKind::basic;
    }));
}

TEST(ProbeProcess, ImprovedDesignMixesKindsEvenly) {
    Rng rng{4};
    ProbeProcessConfig cfg;
    cfg.p = 0.5;
    cfg.improved = true;
    const auto d = design_probe_process(rng, 100'000, cfg);
    const auto extended =
        std::count_if(d.experiments.begin(), d.experiments.end(), [](const Experiment& e) {
            return e.kind == ExperimentKind::extended;
        });
    EXPECT_NEAR(static_cast<double>(extended) / static_cast<double>(d.experiments.size()), 0.5,
                0.02);
}

TEST(ProbeProcess, ProbeSlotsAreSortedUniqueAndCoverExperiments) {
    Rng rng{5};
    ProbeProcessConfig cfg;
    cfg.p = 0.7;
    cfg.improved = true;
    const auto d = design_probe_process(rng, 5'000, cfg);
    EXPECT_TRUE(std::is_sorted(d.probe_slots.begin(), d.probe_slots.end()));
    EXPECT_EQ(std::adjacent_find(d.probe_slots.begin(), d.probe_slots.end()),
              d.probe_slots.end());
    std::unordered_set<SlotIndex> slots(d.probe_slots.begin(), d.probe_slots.end());
    for (const auto& e : d.experiments) {
        for (int k = 0; k < e.probes(); ++k) {
            EXPECT_TRUE(slots.count(e.start_slot + k)) << "slot " << e.start_slot + k;
        }
    }
}

TEST(ProbeProcess, ExperimentsStayInsideWindow) {
    Rng rng{6};
    ProbeProcessConfig cfg;
    cfg.p = 1.0;  // experiment at every slot
    cfg.improved = true;
    const SlotIndex n = 100;
    const auto d = design_probe_process(rng, n, cfg);
    for (const auto& e : d.experiments) {
        EXPECT_LE(e.start_slot + e.probes(), n);
    }
    EXPECT_FALSE(d.probe_slots.empty());
    EXPECT_LT(d.probe_slots.back(), n);
}

TEST(ProbeProcess, FullRateProbesEverySlot) {
    Rng rng{7};
    ProbeProcessConfig cfg;
    cfg.p = 1.0;
    const SlotIndex n = 50;
    const auto d = design_probe_process(rng, n, cfg);
    // With p = 1 and basic experiments, every slot 0..n-1 is probed.
    EXPECT_EQ(static_cast<SlotIndex>(d.probe_slots.size()), n);
}

TEST(ProbeProcess, ExpectedLoadFormula) {
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    EXPECT_DOUBLE_EQ(expected_probe_slot_fraction(cfg), 0.6);
    cfg.improved = true;
    cfg.extended_fraction = 0.5;
    EXPECT_DOUBLE_EQ(expected_probe_slot_fraction(cfg), 0.3 * 2.5);
}

TEST(ScoreExperiments, EncodesMarksInOrder) {
    std::vector<Experiment> exps{{10, ExperimentKind::basic}, {20, ExperimentKind::extended}};
    const auto results = score_experiments(exps, [](SlotIndex s) { return s == 11 || s == 20; });
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].code, 0b01);   // slot 10 clear, 11 congested
    EXPECT_EQ(results[1].code, 0b100);  // slot 20 congested, 21/22 clear
}

TEST(ScoreExperiments, DeterministicGivenDesignAndMarks) {
    Rng rng1{8};
    Rng rng2{8};
    ProbeProcessConfig cfg;
    cfg.p = 0.4;
    const auto d1 = design_probe_process(rng1, 10'000, cfg);
    const auto d2 = design_probe_process(rng2, 10'000, cfg);
    ASSERT_EQ(d1.experiments.size(), d2.experiments.size());
    for (std::size_t i = 0; i < d1.experiments.size(); ++i) {
        EXPECT_EQ(d1.experiments[i].start_slot, d2.experiments[i].start_slot);
    }
}

}  // namespace
}  // namespace bb::core
