#include "core/probe_process.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace bb::core {
namespace {

TEST(ProbeProcess, RejectsBadParameters) {
    Rng rng{1};
    ProbeProcessConfig cfg;
    cfg.p = 0.0;
    EXPECT_THROW(design_probe_process(rng, 100, cfg), std::invalid_argument);
    cfg.p = 1.5;
    EXPECT_THROW(design_probe_process(rng, 100, cfg), std::invalid_argument);
    cfg.p = 0.5;
    cfg.extended_fraction = -0.1;
    EXPECT_THROW(design_probe_process(rng, 100, cfg), std::invalid_argument);
}

TEST(ProbeProcess, ExperimentRateMatchesP) {
    Rng rng{2};
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    const auto d = design_probe_process(rng, 100'000, cfg);
    EXPECT_NEAR(static_cast<double>(d.experiments.size()) / 100'000.0, 0.3, 0.01);
}

TEST(ProbeProcess, BasicDesignHasOnlyBasicExperiments) {
    Rng rng{3};
    ProbeProcessConfig cfg;
    cfg.p = 0.5;
    cfg.improved = false;
    const auto d = design_probe_process(rng, 10'000, cfg);
    EXPECT_TRUE(std::all_of(d.experiments.begin(), d.experiments.end(), [](const Experiment& e) {
        return e.kind == ExperimentKind::basic;
    }));
}

TEST(ProbeProcess, ImprovedDesignMixesKindsEvenly) {
    Rng rng{4};
    ProbeProcessConfig cfg;
    cfg.p = 0.5;
    cfg.improved = true;
    const auto d = design_probe_process(rng, 100'000, cfg);
    const auto extended =
        std::count_if(d.experiments.begin(), d.experiments.end(), [](const Experiment& e) {
            return e.kind == ExperimentKind::extended;
        });
    EXPECT_NEAR(static_cast<double>(extended) / static_cast<double>(d.experiments.size()), 0.5,
                0.02);
}

TEST(ProbeProcess, ProbeSlotsAreSortedUniqueAndCoverExperiments) {
    Rng rng{5};
    ProbeProcessConfig cfg;
    cfg.p = 0.7;
    cfg.improved = true;
    const auto d = design_probe_process(rng, 5'000, cfg);
    EXPECT_TRUE(std::is_sorted(d.probe_slots.begin(), d.probe_slots.end()));
    EXPECT_EQ(std::adjacent_find(d.probe_slots.begin(), d.probe_slots.end()),
              d.probe_slots.end());
    std::unordered_set<SlotIndex> slots(d.probe_slots.begin(), d.probe_slots.end());
    for (const auto& e : d.experiments) {
        for (int k = 0; k < e.probes(); ++k) {
            EXPECT_TRUE(slots.count(e.start_slot + k)) << "slot " << e.start_slot + k;
        }
    }
}

TEST(ProbeProcess, ExperimentsStayInsideWindow) {
    Rng rng{6};
    ProbeProcessConfig cfg;
    cfg.p = 1.0;  // experiment at every slot
    cfg.improved = true;
    const SlotIndex n = 100;
    const auto d = design_probe_process(rng, n, cfg);
    for (const auto& e : d.experiments) {
        EXPECT_LE(e.start_slot + e.probes(), n);
    }
    EXPECT_FALSE(d.probe_slots.empty());
    EXPECT_LT(d.probe_slots.back(), n);
}

TEST(ProbeProcess, FullRateProbesEverySlot) {
    Rng rng{7};
    ProbeProcessConfig cfg;
    cfg.p = 1.0;
    const SlotIndex n = 50;
    const auto d = design_probe_process(rng, n, cfg);
    // With p = 1 and basic experiments, every slot 0..n-1 is probed.
    EXPECT_EQ(static_cast<SlotIndex>(d.probe_slots.size()), n);
}

TEST(ProbeProcess, ExpectedLoadFormula) {
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    EXPECT_DOUBLE_EQ(expected_probe_slot_fraction(cfg), 0.6);
    cfg.improved = true;
    cfg.extended_fraction = 0.5;
    EXPECT_DOUBLE_EQ(expected_probe_slot_fraction(cfg), 0.3 * 2.5);
}

// --- Skip-ahead designer: must match the per-slot designer in distribution
// (not draw-for-draw) while honoring every structural invariant. ---

std::vector<SlotIndex> start_gaps(const ProbeDesign& d) {
    std::vector<SlotIndex> gaps;
    for (std::size_t i = 1; i < d.experiments.size(); ++i) {
        gaps.push_back(d.experiments[i].start_slot - d.experiments[i - 1].start_slot);
    }
    return gaps;
}

TEST(SkipAhead, RejectsBadParameters) {
    Rng rng{1};
    ProbeProcessConfig cfg;
    cfg.p = 0.0;
    EXPECT_THROW(design_probe_process_skip_ahead(rng, 100, cfg), std::invalid_argument);
    cfg.p = 1.5;
    EXPECT_THROW(design_probe_process_skip_ahead(rng, 100, cfg), std::invalid_argument);
    cfg.p = 0.5;
    cfg.extended_fraction = -0.1;
    EXPECT_THROW(design_probe_process_skip_ahead(rng, 100, cfg), std::invalid_argument);
}

TEST(SkipAhead, ExperimentRateMatchesP) {
    Rng rng{21};
    ProbeProcessConfig cfg;
    cfg.p = 0.3;
    const auto d = design_probe_process_skip_ahead(rng, 100'000, cfg);
    EXPECT_NEAR(static_cast<double>(d.experiments.size()) / 100'000.0, 0.3, 0.01);
}

TEST(SkipAhead, GapSamplerMeanMatchesGeometric) {
    // E[G] for the number of failures before a success is (1-p)/p.
    for (const double p : {0.1, 0.3, 0.9}) {
        Rng rng{31};
        GeometricSkipAhead gaps{p};
        double sum = 0.0;
        constexpr int kDraws = 200'000;
        for (int i = 0; i < kDraws; ++i) {
            sum += static_cast<double>(gaps.next_gap(rng));
        }
        const double expected = (1.0 - p) / p;
        EXPECT_NEAR(sum / kDraws, expected, 0.05 * (expected + 0.1)) << "p=" << p;
    }
}

TEST(SkipAhead, GapSamplerAtFullRateIsAlwaysZero) {
    Rng rng{32};
    GeometricSkipAhead gaps{1.0};
    for (int i = 0; i < 1'000; ++i) {
        EXPECT_EQ(gaps.next_gap(rng), 0);
    }
}

TEST(SkipAhead, GapDistributionMatchesPerSlotDesigner) {
    // Property test of distributional identity: the empirical pmf of
    // consecutive-start gaps must agree between the per-slot Bernoulli
    // designer and the skip-ahead designer.  (Gaps between retained starts,
    // so this also exercises the shared window rule.)
    ProbeProcessConfig cfg;
    cfg.p = 0.2;
    constexpr SlotIndex kSlots = 400'000;
    Rng rng_a{41};
    Rng rng_b{42};
    const auto gaps_a = start_gaps(design_probe_process(rng_a, kSlots, cfg));
    const auto gaps_b = start_gaps(design_probe_process_skip_ahead(rng_b, kSlots, cfg));
    ASSERT_GT(gaps_a.size(), 10'000u);
    ASSERT_GT(gaps_b.size(), 10'000u);
    constexpr SlotIndex kMaxGap = 25;
    std::vector<double> pmf_a(kMaxGap + 1, 0.0);
    std::vector<double> pmf_b(kMaxGap + 1, 0.0);
    for (const auto g : gaps_a) pmf_a[std::min(g, kMaxGap)] += 1.0 / static_cast<double>(gaps_a.size());
    for (const auto g : gaps_b) pmf_b[std::min(g, kMaxGap)] += 1.0 / static_cast<double>(gaps_b.size());
    for (SlotIndex g = 0; g <= kMaxGap; ++g) {
        EXPECT_NEAR(pmf_a[g], pmf_b[g], 0.01) << "gap " << g;
        // And both match the geometric law P(gap = g) = p (1-p)^(g-1), g >= 1.
        if (g >= 1 && g < kMaxGap) {
            const double expected = cfg.p * std::pow(1.0 - cfg.p, g - 1);
            EXPECT_NEAR(pmf_a[g], expected, 0.01) << "gap " << g;
            EXPECT_NEAR(pmf_b[g], expected, 0.01) << "gap " << g;
        }
    }
}

TEST(SkipAhead, ImprovedDesignMixesKindsEvenly) {
    Rng rng{43};
    ProbeProcessConfig cfg;
    cfg.p = 0.5;
    cfg.improved = true;
    const auto d = design_probe_process_skip_ahead(rng, 100'000, cfg);
    const auto extended =
        std::count_if(d.experiments.begin(), d.experiments.end(), [](const Experiment& e) {
            return e.kind == ExperimentKind::extended;
        });
    EXPECT_NEAR(static_cast<double>(extended) / static_cast<double>(d.experiments.size()), 0.5,
                0.02);
}

TEST(SkipAhead, ProbeSlotsAreSortedUniqueAndCoverExperiments) {
    Rng rng{44};
    ProbeProcessConfig cfg;
    cfg.p = 0.7;
    cfg.improved = true;
    const auto d = design_probe_process_skip_ahead(rng, 5'000, cfg);
    EXPECT_TRUE(std::is_sorted(d.probe_slots.begin(), d.probe_slots.end()));
    EXPECT_EQ(std::adjacent_find(d.probe_slots.begin(), d.probe_slots.end()),
              d.probe_slots.end());
    std::unordered_set<SlotIndex> slots(d.probe_slots.begin(), d.probe_slots.end());
    for (const auto& e : d.experiments) {
        for (int k = 0; k < e.probes(); ++k) {
            EXPECT_TRUE(slots.count(e.start_slot + k)) << "slot " << e.start_slot + k;
        }
    }
    EXPECT_TRUE(std::is_sorted(d.experiments.begin(), d.experiments.end(),
                               [](const Experiment& a, const Experiment& b) {
                                   return a.start_slot < b.start_slot;
                               }));
}

TEST(SkipAhead, ExperimentsStayInsideWindow) {
    Rng rng{45};
    ProbeProcessConfig cfg;
    cfg.p = 1.0;
    cfg.improved = true;
    const SlotIndex n = 100;
    const auto d = design_probe_process_skip_ahead(rng, n, cfg);
    for (const auto& e : d.experiments) {
        EXPECT_LE(e.start_slot + e.probes(), n);
    }
    EXPECT_FALSE(d.probe_slots.empty());
    EXPECT_LT(d.probe_slots.back(), n);
}

TEST(SkipAhead, FullRateProbesEverySlot) {
    Rng rng{46};
    ProbeProcessConfig cfg;
    cfg.p = 1.0;
    const SlotIndex n = 50;
    const auto d = design_probe_process_skip_ahead(rng, n, cfg);
    EXPECT_EQ(static_cast<SlotIndex>(d.probe_slots.size()), n);
    EXPECT_EQ(d.experiments.size(), static_cast<std::size_t>(n - 1));
}

TEST(SkipAhead, DeterministicGivenSeed) {
    ProbeProcessConfig cfg;
    cfg.p = 0.4;
    cfg.improved = true;
    Rng rng1{47};
    Rng rng2{47};
    const auto d1 = design_probe_process_skip_ahead(rng1, 10'000, cfg);
    const auto d2 = design_probe_process_skip_ahead(rng2, 10'000, cfg);
    ASSERT_EQ(d1.experiments.size(), d2.experiments.size());
    for (std::size_t i = 0; i < d1.experiments.size(); ++i) {
        EXPECT_EQ(d1.experiments[i].start_slot, d2.experiments[i].start_slot);
        EXPECT_EQ(d1.experiments[i].kind, d2.experiments[i].kind);
    }
}

TEST(ScoreExperiments, EncodesMarksInOrder) {
    std::vector<Experiment> exps{{10, ExperimentKind::basic}, {20, ExperimentKind::extended}};
    const auto results = score_experiments(exps, [](SlotIndex s) { return s == 11 || s == 20; });
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].code, 0b01);   // slot 10 clear, 11 congested
    EXPECT_EQ(results[1].code, 0b100);  // slot 20 congested, 21/22 clear
}

TEST(ScoreExperiments, DeterministicGivenDesignAndMarks) {
    Rng rng1{8};
    Rng rng2{8};
    ProbeProcessConfig cfg;
    cfg.p = 0.4;
    const auto d1 = design_probe_process(rng1, 10'000, cfg);
    const auto d2 = design_probe_process(rng2, 10'000, cfg);
    ASSERT_EQ(d1.experiments.size(), d2.experiments.size());
    for (std::size_t i = 0; i < d1.experiments.size(); ++i) {
        EXPECT_EQ(d1.experiments[i].start_slot, d2.experiments[i].start_slot);
    }
}

}  // namespace
}  // namespace bb::core
