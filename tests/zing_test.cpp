#include "probes/zing.h"

#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "scenarios/testbed.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

using scenarios::Testbed;
using scenarios::TestbedConfig;

TestbedConfig testbed_cfg() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(20);
    cfg.buffer_time = milliseconds(100);
    return cfg;
}

TEST(Zing, SendsAtConfiguredMeanRate) {
    Testbed tb{testbed_cfg()};
    probes::ZingProber::Config cfg;
    cfg.mean_interval = milliseconds(100);
    cfg.stop = seconds_i(60);
    probes::ZingProber zing{tb.sched(), cfg, tb.forward_in(), Rng{1}};
    tb.fwd_demux().bind(cfg.flow, zing);
    tb.sched().run_until(seconds_i(61));
    // ~600 probes expected; Poisson sd ~ 24.5.
    EXPECT_NEAR(static_cast<double>(zing.probes_sent()), 600.0, 100.0);
}

TEST(Zing, NoLossOnIdlePath) {
    Testbed tb{testbed_cfg()};
    probes::ZingProber::Config cfg;
    cfg.stop = seconds_i(30);
    probes::ZingProber zing{tb.sched(), cfg, tb.forward_in(), Rng{2}};
    tb.fwd_demux().bind(cfg.flow, zing);
    tb.sched().run_until(seconds_i(31));
    const auto res = zing.result();
    EXPECT_EQ(res.lost, 0u);
    EXPECT_EQ(res.received, res.sent);
    EXPECT_DOUBLE_EQ(res.loss_frequency, 0.0);
    EXPECT_EQ(res.loss_runs, 0u);
}

TEST(Zing, SeesLossUnderOverload) {
    Testbed tb{testbed_cfg()};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 20'000'000;  // sustained 2x overload: ~50% drop rate
    cbr.stop = seconds_i(30);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};

    probes::ZingProber::Config cfg;
    cfg.mean_interval = milliseconds(20);
    cfg.stop = seconds_i(30);
    probes::ZingProber zing{tb.sched(), cfg, tb.forward_in(), Rng{3}};
    tb.fwd_demux().bind(cfg.flow, zing);
    tb.sched().run_until(seconds_i(32));

    const auto res = zing.result();
    EXPECT_GT(res.lost, 0u);
    // The cross traffic loses ~50%; small probe packets fare better at a
    // byte-capacity drop-tail queue, so the probe loss rate sits below that.
    EXPECT_GT(res.loss_frequency, 0.10);
    EXPECT_LT(res.loss_frequency, 0.65);
    EXPECT_GT(res.loss_runs, 0u);
}

TEST(Zing, RunDurationSpansConsecutiveLosses) {
    // Hand-drive the loss pattern by building a result from a fake trace:
    // use the public interface with a path that drops everything in a window.
    Testbed tb{testbed_cfg()};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 60'000'000;  // 6x overload: probes nearly always lost
    cbr.start = seconds_i(10);
    cbr.stop = seconds_i(12);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};

    probes::ZingProber::Config cfg;
    cfg.mean_interval = milliseconds(50);
    cfg.stop = seconds_i(30);
    probes::ZingProber zing{tb.sched(), cfg, tb.forward_in(), Rng{4}};
    tb.fwd_demux().bind(cfg.flow, zing);
    tb.sched().run_until(seconds_i(31));

    const auto res = zing.result();
    ASSERT_GT(res.loss_runs, 0u);
    // The overload lasts ~2 s; consecutive probe losses should occur.
    EXPECT_GE(res.max_run_length, 2u);
    EXPECT_GT(res.mean_duration_s, 0.0);
    EXPECT_LT(res.mean_duration_s, 3.0);
}

TEST(Zing, FlightsSendMultiplePackets) {
    Testbed tb{testbed_cfg()};
    probes::ZingProber::Config cfg;
    cfg.packets_per_flight = 3;
    cfg.stop = seconds_i(10);
    probes::ZingProber zing{tb.sched(), cfg, tb.forward_in(), Rng{5}};
    tb.fwd_demux().bind(cfg.flow, zing);
    tb.sched().run_until(seconds_i(11));
    EXPECT_EQ(zing.probes_sent() % 3, 0u);
    EXPECT_EQ(zing.bytes_sent(),
              static_cast<std::int64_t>(zing.probes_sent()) * cfg.packet_bytes);
}

}  // namespace
}  // namespace bb
