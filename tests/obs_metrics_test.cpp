#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/control.h"
#include "obs/log.h"

namespace bb::obs {
namespace {

// Every test in this binary shares the process-wide kill switch; force it on
// for the duration of a test and restore afterwards.
class ObsOn {
public:
    ObsOn() { set_enabled(true); }
    ~ObsOn() { set_enabled(true); }
};

TEST(Counter, ConcurrentIncrementsSumExactly) {
    ObsOn guard;
    Counter& c = counter("test.counter.concurrent");
    const std::uint64_t before = c.value();

    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 50'000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& w : workers) w.join();

    // Sharded cells merge without losing a single increment.
    EXPECT_EQ(c.value() - before, kThreads * kPerThread);
}

TEST(Counter, RegistryReturnsSameInstanceForSameName) {
    ObsOn guard;
    Counter& a = counter("test.counter.identity");
    Counter& b = counter("test.counter.identity");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_GE(b.value(), 3u);
}

TEST(Counter, KillSwitchMakesIncANoOp) {
    ObsOn guard;
    Counter& c = counter("test.counter.killswitch");
    const std::uint64_t before = c.value();
    set_enabled(false);
    for (int i = 0; i < 1000; ++i) c.inc();
    EXPECT_EQ(c.value(), before);
    set_enabled(true);
    c.inc();
    EXPECT_EQ(c.value(), before + 1);
}

TEST(Gauge, StoresLastWrittenDouble) {
    ObsOn guard;
    Gauge& g = gauge("test.gauge.basic");
    g.set(0.25);
    EXPECT_EQ(g.value(), 0.25);
    g.set(-7.5);
    EXPECT_EQ(g.value(), -7.5);

    set_enabled(false);
    g.set(99.0);
    EXPECT_EQ(g.value(), -7.5);  // write suppressed
    set_enabled(true);
}

TEST(Histogram, BucketBoundariesRoundTrip) {
    // Exact buckets below kSubCount...
    for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) {
        EXPECT_EQ(Histogram::bucket_index(v), v);
        EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
    }
    // ...then every bucket's lower bound maps back to that bucket, and the
    // value one below it maps to the previous bucket.
    for (std::size_t b = 1; b < Histogram::kBuckets; ++b) {
        const std::uint64_t lo = Histogram::bucket_lower_bound(b);
        EXPECT_EQ(Histogram::bucket_index(lo), b) << "lower bound of bucket " << b;
        EXPECT_EQ(Histogram::bucket_index(lo - 1), b - 1) << "below bucket " << b;
    }
    // Relative bucket width stays within 1/kSubCount at any magnitude.
    EXPECT_EQ(Histogram::bucket_index(1023), Histogram::bucket_index(1020));
    EXPECT_NE(Histogram::bucket_index(1024), Histogram::bucket_index(1023));
}

TEST(Histogram, CountSumAndQuantiles) {
    ObsOn guard;
    Histogram& h = histogram("test.histogram.quantiles");
    // 100 samples of 10 and 100 samples of 1000.
    for (int i = 0; i < 100; ++i) h.record(10);
    for (int i = 0; i < 100; ++i) h.record(1000);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 200u);
    EXPECT_EQ(snap.sum, 100u * 10 + 100u * 1000);
    EXPECT_EQ(snap.mean(), (100.0 * 10 + 100.0 * 1000) / 200.0);
    // Nearest-rank on bucket lower bounds: p25 lands in the 10-bucket, p95 in
    // the 1000-bucket.
    EXPECT_EQ(snap.quantile(0.25), Histogram::bucket_lower_bound(Histogram::bucket_index(10)));
    EXPECT_EQ(snap.quantile(0.95),
              Histogram::bucket_lower_bound(Histogram::bucket_index(1000)));
    EXPECT_EQ(h.snapshot().buckets.size(), 2u);

    set_enabled(false);
    h.record(5);
    EXPECT_EQ(h.snapshot().count, 200u);
    set_enabled(true);
}

TEST(Histogram, NegativeSamplesClampToZero) {
    ObsOn guard;
    Histogram& h = histogram("test.histogram.negative");
    h.record(-42);
    const auto snap = h.snapshot();
    ASSERT_EQ(snap.buckets.size(), 1u);
    EXPECT_EQ(snap.buckets[0].first, 0u);
    EXPECT_EQ(snap.sum, 0u);
}

TEST(Registry, SnapshotWhileWritingNeverTearsAndEndsExact) {
    ObsOn guard;
    Counter& c = counter("test.counter.snapshot_race");
    const std::uint64_t before = c.value();

    constexpr int kWriters = 4;
    constexpr std::uint64_t kPerThread = 20'000;
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    std::thread reader{[&] {
        std::uint64_t last = 0;
        while (!done.load(std::memory_order_relaxed)) {
            const Registry::Snapshot snap = Registry::instance().snapshot();
            for (const auto& [name, value] : snap.counters) {
                if (name == "test.counter.snapshot_race") {
                    // Monotone: concurrent snapshots may miss in-flight adds
                    // but can never go backwards or overshoot the final sum.
                    EXPECT_GE(value, last);
                    EXPECT_LE(value, before + kWriters * kPerThread);
                    last = value;
                }
            }
        }
    }};
    for (auto& w : writers) w.join();
    done.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(c.value(), before + kWriters * kPerThread);
}

TEST(MetricsJson, ContainsRegisteredMetricsAndProcessStats) {
    ObsOn guard;
    counter("test.json.counter").inc(5);
    gauge("test.json.gauge").set(1.5);
    histogram("test.json.histogram").record(7);
    const std::string doc = metrics_json();
    EXPECT_NE(doc.find("\"test.json.counter\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.json.gauge\""), std::string::npos);
    EXPECT_NE(doc.find("\"test.json.histogram\""), std::string::npos);
    EXPECT_NE(doc.find("\"process\""), std::string::npos);
    EXPECT_NE(doc.find("\"max_rss_kb\""), std::string::npos);
}

TEST(Log, LevelFilterGatesEmission) {
    const LogLevel prev = log_level();
    set_log_level(LogLevel::warn);
    EXPECT_FALSE(log_enabled(LogLevel::debug));
    EXPECT_FALSE(log_enabled(LogLevel::info));
    EXPECT_TRUE(log_enabled(LogLevel::warn));
    EXPECT_TRUE(log_enabled(LogLevel::error));
    set_log_level(LogLevel::off);
    EXPECT_FALSE(log_enabled(LogLevel::error));
    // Emitting below the threshold must be safe (and silent).
    log(LogLevel::error, "suppressed");
    logf(LogLevel::error, "suppressed %d", 42);
    set_log_level(prev);
}

}  // namespace
}  // namespace bb::obs
