#include "sim/link.h"

#include <gtest/gtest.h>

#include "sim/demux.h"
#include "sim/packet.h"

namespace bb::sim {
namespace {

Packet make_packet(std::uint64_t id, std::int32_t bytes, FlowId flow = 1) {
    Packet p;
    p.id = id;
    p.flow = flow;
    p.size_bytes = bytes;
    return p;
}

BottleneckQueue::Config small_queue_cfg() {
    BottleneckQueue::Config cfg;
    cfg.rate_bps = 8'000'000;  // 1 MB/s: 1000-byte packet takes 1 ms to serialize
    cfg.prop_delay = milliseconds(10);
    cfg.capacity_bytes = 3000;  // three 1000-byte packets
    return cfg;
}

TEST(BottleneckQueue, DerivesCapacityFromTime) {
    Scheduler s;
    CountingSink sink;
    BottleneckQueue::Config cfg;
    cfg.rate_bps = 30'000'000;
    cfg.capacity_bytes = 0;
    cfg.capacity_time = milliseconds(100);
    BottleneckQueue q{s, cfg, sink};
    // 100 ms at 30 Mb/s = 375000 bytes.
    EXPECT_EQ(q.capacity_bytes(), 375'000);
    EXPECT_EQ(q.max_queueing_delay(), milliseconds(100));
}

TEST(BottleneckQueue, DeliversAfterTransmissionPlusPropagation) {
    Scheduler s;
    CountingSink sink;
    BottleneckQueue q{s, small_queue_cfg(), sink};
    s.schedule_at(TimeNs::zero(), [&] { q.accept(make_packet(1, 1000)); });
    s.run();
    EXPECT_EQ(sink.packets(), 1u);
    // 1 ms serialization + 10 ms propagation.
    EXPECT_EQ(s.now(), milliseconds(11));
}

TEST(BottleneckQueue, SerializesBackToBackPackets) {
    Scheduler s;
    std::vector<double> arrivals;
    // Use a capturing sink to log arrival times.
    class Recorder final : public PacketSink {
    public:
        explicit Recorder(Scheduler& sc, std::vector<double>& v) : sc_{&sc}, v_{&v} {}
        void accept(const Packet&) override { v_->push_back(sc_->now().to_millis()); }

    private:
        Scheduler* sc_;
        std::vector<double>* v_;
    } rec{s, arrivals};
    BottleneckQueue q2{s, small_queue_cfg(), rec};
    s.schedule_at(TimeNs::zero(), [&] {
        q2.accept(make_packet(1, 1000));
        q2.accept(make_packet(2, 1000));
        q2.accept(make_packet(3, 1000));
    });
    s.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_DOUBLE_EQ(arrivals[0], 11.0);
    EXPECT_DOUBLE_EQ(arrivals[1], 12.0);  // 1 ms apart: serialized
    EXPECT_DOUBLE_EQ(arrivals[2], 13.0);
}

TEST(BottleneckQueue, DropsWhenBufferFull) {
    Scheduler s;
    CountingSink sink;
    BottleneckQueue q{s, small_queue_cfg(), sink};
    int drops = 0;
    q.on_drop([&](const QueueEvent&) { ++drops; });
    s.schedule_at(TimeNs::zero(), [&] {
        // First packet starts transmitting immediately (leaves the buffer);
        // three more fill the 3000-byte buffer; the fifth must drop.
        for (int i = 0; i < 5; ++i) q.accept(make_packet(static_cast<std::uint64_t>(i), 1000));
    });
    s.run();
    EXPECT_EQ(drops, 1);
    EXPECT_EQ(q.drops(), 1u);
    EXPECT_EQ(sink.packets(), 4u);
}

TEST(BottleneckQueue, ConservationInvariant) {
    Scheduler s;
    CountingSink sink;
    BottleneckQueue q{s, small_queue_cfg(), sink};
    for (int i = 0; i < 50; ++i) {
        s.schedule_at(microseconds(i * 100), [&q, i] {
            Packet p;
            p.id = static_cast<std::uint64_t>(i);
            p.size_bytes = 1000;
            q.accept(p);
        });
    }
    s.run();
    EXPECT_EQ(q.arrivals(), 50u);
    EXPECT_EQ(q.arrivals(), q.drops() + q.departures());
    EXPECT_EQ(q.queue_bytes(), 0);
    EXPECT_EQ(sink.packets(), q.departures());
}

TEST(BottleneckQueue, FifoOrderPreserved) {
    Scheduler s;
    std::vector<std::uint64_t> ids;
    class Recorder final : public PacketSink {
    public:
        explicit Recorder(std::vector<std::uint64_t>& v) : v_{&v} {}
        void accept(const Packet& p) override { v_->push_back(p.id); }

    private:
        std::vector<std::uint64_t>* v_;
    } rec{ids};
    BottleneckQueue q{s, small_queue_cfg(), rec};
    s.schedule_at(TimeNs::zero(), [&] {
        for (std::uint64_t i = 1; i <= 4; ++i) q.accept(make_packet(i, 500));
    });
    s.run();
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(BottleneckQueue, QueueingDelayTracksOccupancy) {
    Scheduler s;
    CountingSink sink;
    BottleneckQueue q{s, small_queue_cfg(), sink};
    s.schedule_at(TimeNs::zero(), [&] {
        q.accept(make_packet(1, 1000));  // goes straight to the wire
        q.accept(make_packet(2, 1000));  // buffered
        q.accept(make_packet(3, 1000));  // buffered
        // 2000 buffered + 1000 in flight = 3 ms at 1 MB/s.
        EXPECT_EQ(q.queueing_delay(), milliseconds(3));
    });
    s.run();
    EXPECT_EQ(q.queueing_delay(), TimeNs::zero());
}

TEST(BottleneckQueue, HooksFireWithOccupancy) {
    Scheduler s;
    CountingSink sink;
    BottleneckQueue q{s, small_queue_cfg(), sink};
    std::vector<std::int64_t> enq_occ;
    q.on_enqueue([&](const QueueEvent& ev) { enq_occ.push_back(ev.queue_bytes_after); });
    s.schedule_at(TimeNs::zero(), [&] {
        q.accept(make_packet(1, 1000));  // immediately dequeued to the wire
        q.accept(make_packet(2, 1000));
    });
    s.run();
    ASSERT_EQ(enq_occ.size(), 2u);
    EXPECT_EQ(enq_occ[0], 1000);  // momentarily buffered before transmission starts
    EXPECT_EQ(enq_occ[1], 1000);  // first already on the wire
}

TEST(BottleneckQueue, RejectsNonPositiveRate) {
    Scheduler s;
    CountingSink sink;
    BottleneckQueue::Config cfg;
    cfg.rate_bps = 0;
    EXPECT_THROW((BottleneckQueue{s, cfg, sink}), std::invalid_argument);
}

TEST(DelayLink, DelaysExactly) {
    Scheduler s;
    CountingSink sink;
    DelayLink link{s, milliseconds(50), sink};
    s.schedule_at(milliseconds(1), [&] { link.accept(make_packet(1, 100)); });
    s.run();
    EXPECT_EQ(sink.packets(), 1u);
    EXPECT_EQ(s.now(), milliseconds(51));
}

TEST(FlowDemux, RoutesByFlowAndCountsStrays) {
    Scheduler s;
    CountingSink a;
    CountingSink b;
    FlowDemux demux;
    demux.bind(1, a);
    demux.bind(2, b);
    demux.accept(make_packet(1, 100, 1));
    demux.accept(make_packet(2, 100, 2));
    demux.accept(make_packet(3, 100, 2));
    demux.accept(make_packet(4, 100, 99));
    EXPECT_EQ(a.packets(), 1u);
    EXPECT_EQ(b.packets(), 2u);
    EXPECT_EQ(demux.stray_packets(), 1u);
}

TEST(FlowDemux, DefaultSinkReceivesUnknownFlows) {
    CountingSink def;
    FlowDemux demux;
    demux.set_default(def);
    demux.accept(make_packet(1, 100, 42));
    EXPECT_EQ(def.packets(), 1u);
    EXPECT_EQ(demux.stray_packets(), 0u);
}

}  // namespace
}  // namespace bb::sim
