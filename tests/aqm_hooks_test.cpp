// QueueBase hook-dispatch coverage across all four disciplines: every packet
// fires exactly one terminal hook (drop or dequeue), enqueue/mark hooks fire
// at most once per packet, hook counts equal the member counters, and the
// process-wide metrics-registry counters advance by exactly the same amounts.
// Runs under the tsan label: the obs counters are the sharded concurrent
// ones, and this exercises their single-threaded hot path under the
// sanitizer build too.
#include <gtest/gtest.h>

#include <unordered_map>

#include "obs/control.h"
#include "obs/metrics.h"
#include "sim/aqm.h"
#include "sim/link.h"
#include "sim/queue_base.h"

namespace bb {
namespace {

struct PerPacket {
    int enqueued{0};
    int dropped{0};
    int dequeued{0};
    int marked{0};
};

struct RunResult {
    std::unordered_map<std::uint64_t, PerPacket> per_id;
    std::uint64_t enq_hooks{0};
    std::uint64_t drop_hooks{0};
    std::uint64_t deq_hooks{0};
    std::uint64_t mark_hooks{0};
    std::uint64_t arrivals{0};
    std::uint64_t drops{0};
    std::uint64_t departures{0};
    std::uint64_t marks{0};
    std::uint64_t head_drops{0};
    // Metrics-registry deltas over the run.
    std::uint64_t ctr_arrivals{0};
    std::uint64_t ctr_enqueues{0};
    std::uint64_t ctr_drops{0};
    std::uint64_t ctr_departures{0};
    std::uint64_t ctr_marks{0};
};

RunResult drive(sim::QueueDiscipline discipline, bool ecn) {
    obs::set_enabled(true);
    obs::Counter& arrivals_ctr = obs::counter("sim.queue.arrivals");
    obs::Counter& enqueues_ctr = obs::counter("sim.queue.enqueues");
    obs::Counter& drops_ctr = obs::counter("sim.queue.drops");
    obs::Counter& departures_ctr = obs::counter("sim.queue.departures");
    obs::Counter& marks_ctr = obs::counter("sim.queue.marks");
    const std::uint64_t a0 = arrivals_ctr.value();
    const std::uint64_t e0 = enqueues_ctr.value();
    const std::uint64_t d0 = drops_ctr.value();
    const std::uint64_t p0 = departures_ctr.value();
    const std::uint64_t m0 = marks_ctr.value();

    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::QueueBase::LinkConfig cfg;
    cfg.rate_bps = 8'000'000;  // 1000 B <=> 1 ms
    cfg.prop_delay = milliseconds(1);
    cfg.capacity_bytes = 50'000;  // small buffer so every discipline drops
    cfg.discipline = discipline;
    cfg.red.ecn = ecn;
    cfg.pie.ecn = ecn;
    cfg.pie.burst_allowance = TimeNs::zero();
    cfg.codel.ecn = ecn;
    cfg.seed = 17;
    const auto queue = sim::make_queue(sched, cfg, sink);

    RunResult r;
    queue->on_enqueue([&](const sim::QueueEvent& ev) {
        ++r.enq_hooks;
        ++r.per_id[ev.pkt.id].enqueued;
    });
    queue->on_drop([&](const sim::QueueEvent& ev) {
        ++r.drop_hooks;
        ++r.per_id[ev.pkt.id].dropped;
    });
    queue->on_dequeue([&](const sim::QueueEvent& ev) {
        ++r.deq_hooks;
        ++r.per_id[ev.pkt.id].dequeued;
    });
    queue->on_mark([&](const sim::QueueEvent& ev) {
        ++r.mark_hooks;
        ++r.per_id[ev.pkt.id].marked;
    });

    // 2x overload for 2 s, ECT set so ECN disciplines can mark.
    struct Pump {
        sim::Scheduler* s;
        sim::PacketSink* out;
        bool ect;
        int remaining;
        std::uint64_t id{0};
        void step() {
            if (remaining-- <= 0) return;
            sim::Packet p;
            p.id = ++id;
            p.size_bytes = 1000;
            p.ecn_ect = ect;
            out->accept(p);
            s->schedule_after(microseconds(500), [this] { step(); });
        }
    } pump{&sched, queue.get(), ecn, 4000};
    sched.schedule_at(TimeNs::zero(), [&pump] { pump.step(); });
    sched.run();

    r.arrivals = queue->arrivals();
    r.drops = queue->drops();
    r.departures = queue->departures();
    r.marks = queue->marks();
    r.head_drops = queue->head_drops();
    r.ctr_arrivals = arrivals_ctr.value() - a0;
    r.ctr_enqueues = enqueues_ctr.value() - e0;
    r.ctr_drops = drops_ctr.value() - d0;
    r.ctr_departures = departures_ctr.value() - p0;
    r.ctr_marks = marks_ctr.value() - m0;
    return r;
}

void check_exactly_once(const RunResult& r, bool expect_marks) {
    EXPECT_EQ(r.arrivals, 4000u);
    EXPECT_GT(r.drops, 0u) << "the overload must produce drops";
    // Hook counts match the member counters one for one.
    EXPECT_EQ(r.drop_hooks, r.drops);
    EXPECT_EQ(r.deq_hooks, r.departures);
    EXPECT_EQ(r.mark_hooks, r.marks);
    // Only tail drops skip the FIFO; head drops were enqueued first.
    EXPECT_EQ(r.enq_hooks, r.arrivals - (r.drops - r.head_drops));
    // Every arrival terminates in exactly one of {drop, dequeue}.
    EXPECT_EQ(r.drops + r.departures, r.arrivals);
    for (const auto& [id, p] : r.per_id) {
        EXPECT_EQ(p.dropped + p.dequeued, 1) << "packet " << id;
        EXPECT_LE(p.enqueued, 1) << "packet " << id;
        EXPECT_LE(p.marked, 1) << "packet " << id;
        if (p.dequeued == 1) {
            EXPECT_EQ(p.enqueued, 1) << "packet " << id;
        }
        if (p.marked == 1) {
            EXPECT_EQ(p.dequeued, 1) << "marked packets transmit, id " << id;
        }
    }
    // Registry counters moved in lockstep with the member counters.
    EXPECT_EQ(r.ctr_arrivals, r.arrivals);
    EXPECT_EQ(r.ctr_enqueues, r.enq_hooks);
    EXPECT_EQ(r.ctr_drops, r.drops);
    EXPECT_EQ(r.ctr_departures, r.departures);
    EXPECT_EQ(r.ctr_marks, r.marks);
    if (expect_marks) {
        EXPECT_GT(r.marks, 0u);
    } else {
        EXPECT_EQ(r.marks, 0u);
    }
}

TEST(AqmHooks, DropTailFiresEachHookExactlyOnce) {
    check_exactly_once(drive(sim::QueueDiscipline::drop_tail, false), false);
}

TEST(AqmHooks, RedFiresEachHookExactlyOnce) {
    check_exactly_once(drive(sim::QueueDiscipline::red, false), false);
}

TEST(AqmHooks, RedEcnMarkHooksFireOncePerMark) {
    check_exactly_once(drive(sim::QueueDiscipline::red, true), true);
}

TEST(AqmHooks, PieFiresEachHookExactlyOnce) {
    check_exactly_once(drive(sim::QueueDiscipline::pie, false), false);
}

TEST(AqmHooks, PieEcnMarkHooksFireOncePerMark) {
    check_exactly_once(drive(sim::QueueDiscipline::pie, true), true);
}

TEST(AqmHooks, CoDelFiresEachHookExactlyOnce) {
    check_exactly_once(drive(sim::QueueDiscipline::codel, false), false);
}

}  // namespace
}  // namespace bb
