#include "core/marking.h"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

// Build a probe outcome: slot index doubles as send time in slots of 5 ms.
ProbeOutcome probe(SlotIndex slot, int lost, TimeNs owd, int sent = 3) {
    ProbeOutcome po;
    po.slot = slot;
    po.send_time = milliseconds(5) * slot;
    po.packets_sent = sent;
    po.packets_lost = lost;
    po.max_owd = owd;
    po.any_received = lost < sent;
    return po;
}

constexpr TimeNs kBase = milliseconds(50);  // propagation-only delay

TEST(Marking, EmptyInput) {
    CongestionMarker m;
    EXPECT_TRUE(m.mark({}).empty());
}

TEST(Marking, LossAlwaysMarks) {
    CongestionMarker m;
    const auto marks = m.mark({probe(0, 0, kBase), probe(1, 2, kBase + milliseconds(95))});
    ASSERT_EQ(marks.size(), 2u);
    EXPECT_FALSE(marks[0].congested);
    EXPECT_TRUE(marks[1].congested);
    EXPECT_TRUE(marks[1].by_loss);
}

TEST(Marking, OwdMaxEstimatedFromLossyProbes) {
    CongestionMarker m;
    (void)m.mark({probe(0, 0, kBase), probe(1, 1, kBase + milliseconds(100)),
                  probe(2, 1, kBase + milliseconds(90))});
    // Base = 50 ms; estimates 100 and 90 -> mean 95 ms.
    EXPECT_EQ(m.owd_max_estimate(), milliseconds(95));
    EXPECT_EQ(m.base_delay(), kBase);
}

TEST(Marking, DelayRuleMarksNearLossHighDelayProbes) {
    MarkingConfig cfg;
    cfg.tau = milliseconds(40);
    cfg.alpha = 0.1;
    CongestionMarker m{cfg};
    // Loss at slot 10 (t = 50 ms) with OWD_max ~ 100 ms queueing.
    // Slot 6 (t = 30 ms) is within tau and has 95 ms queueing -> congested.
    // Slot 1 (t = 5 ms) is 45 ms from the loss, outside tau -> not congested
    // despite its high delay.
    // Slot 7 (t = 35 ms) has low delay -> not congested.
    const auto marks = m.mark({
        probe(1, 0, kBase + milliseconds(95)),
        probe(6, 0, kBase + milliseconds(95)),
        probe(7, 0, kBase + milliseconds(5)),
        probe(10, 1, kBase + milliseconds(100)),
        probe(30, 0, kBase),  // establishes the base delay
    });
    ASSERT_EQ(marks.size(), 5u);
    EXPECT_FALSE(marks[0].congested) << "outside tau";
    EXPECT_TRUE(marks[1].congested) << "within tau and above threshold";
    EXPECT_TRUE(marks[1].by_delay);
    EXPECT_FALSE(marks[2].congested) << "below threshold";
    EXPECT_TRUE(marks[3].congested);
    EXPECT_FALSE(marks[4].congested);
}

TEST(Marking, ProbesAfterLossAlsoMarked) {
    MarkingConfig cfg;
    cfg.tau = milliseconds(40);
    cfg.alpha = 0.1;
    CongestionMarker m{cfg};
    // Loss at slot 2, delayed probe at slot 6 (20 ms later, within tau).
    const auto marks = m.mark({
        probe(0, 0, kBase),
        probe(2, 1, kBase + milliseconds(100)),
        probe(6, 0, kBase + milliseconds(95)),
    });
    EXPECT_TRUE(marks[2].congested);
}

TEST(Marking, LargerAlphaIsMorePermissive) {
    // 80 ms queueing delay with OWD_max 100 ms: above (1-0.3)*100 = 70 but
    // below (1-0.1)*100 = 90.
    const auto probes = std::vector<ProbeOutcome>{
        probe(0, 0, kBase),
        probe(2, 1, kBase + milliseconds(100)),
        probe(3, 0, kBase + milliseconds(80)),
    };
    MarkingConfig strict;
    strict.tau = milliseconds(40);
    strict.alpha = 0.1;
    CongestionMarker m1{strict};
    EXPECT_FALSE(m1.mark(probes)[2].congested);

    MarkingConfig permissive = strict;
    permissive.alpha = 0.3;
    CongestionMarker m2{permissive};
    EXPECT_TRUE(m2.mark(probes)[2].congested);
}

TEST(Marking, NoLossMeansNoDelayMarks) {
    // Without any loss indication there is no OWD_max estimate and the
    // delay rule never fires, regardless of delay.
    CongestionMarker m;
    const auto marks = m.mark({
        probe(0, 0, kBase),
        probe(1, 0, kBase + milliseconds(99)),
    });
    EXPECT_FALSE(marks[0].congested);
    EXPECT_FALSE(marks[1].congested);
}

TEST(Marking, ConstantClockOffsetDoesNotChangeMarks) {
    const auto mk = [](TimeNs offset) {
        MarkingConfig cfg;
        cfg.tau = milliseconds(40);
        cfg.alpha = 0.1;
        CongestionMarker m{cfg};
        return m.mark({
            probe(0, 0, kBase + offset),
            probe(2, 1, kBase + milliseconds(100) + offset),
            probe(3, 0, kBase + milliseconds(95) + offset),
            probe(9, 0, kBase + milliseconds(2) + offset),
        });
    };
    const auto a = mk(TimeNs::zero());
    const auto b = mk(seconds_i(3));  // receiver clock 3 s ahead
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].congested, b[i].congested) << "probe " << i;
    }
}

TEST(Marking, AllPacketsLostProbeStillMarked) {
    CongestionMarker m;
    const auto marks = m.mark({probe(0, 0, kBase), probe(1, 3, TimeNs::zero())});
    EXPECT_TRUE(marks[1].congested);
    EXPECT_TRUE(marks[1].by_loss);
}

TEST(Marking, OwdWindowBoundsEstimates) {
    MarkingConfig cfg;
    cfg.owd_max_window = 2;
    CongestionMarker m{cfg};
    (void)m.mark({
        probe(0, 0, kBase),
        probe(1, 1, kBase + milliseconds(10)),   // evicted
        probe(2, 1, kBase + milliseconds(100)),
        probe(3, 1, kBase + milliseconds(100)),
    });
    EXPECT_EQ(m.owd_max_estimate(), milliseconds(100));
}

}  // namespace
}  // namespace bb::core
