// Passive Q-bit loss measurement tests: the square-wave marker, the
// per-phase block observer, the whole-block aliasing limitation, and an
// end-to-end comparison against the router's own drop count through a
// congested drop-tail hop.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "measure/passive_loss.h"
#include "sim/link.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

void feed(sim::PacketSink& sink, int count, std::uint64_t first_id = 1) {
    for (int i = 0; i < count; ++i) {
        sim::Packet p;
        p.id = first_id + static_cast<std::uint64_t>(i);
        p.size_bytes = 1000;
        sink.accept(p);
    }
}

// Drops the ids listed; passes everything else through.
class SelectiveDropper final : public sim::PacketSink {
public:
    SelectiveDropper(std::vector<std::uint64_t> drop_ids, sim::PacketSink& downstream)
        : drop_ids_{std::move(drop_ids)}, downstream_{&downstream} {}

    void accept(const sim::Packet& pkt) override {
        for (const auto id : drop_ids_) {
            if (pkt.id == id) return;
        }
        downstream_->accept(pkt);
    }

private:
    std::vector<std::uint64_t> drop_ids_;
    sim::PacketSink* downstream_;
};

TEST(QBit, ZeroBlockSizeThrows) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    EXPECT_THROW(measure::QBitMarker(0, sink), std::invalid_argument);
    EXPECT_THROW(measure::QBitObserver(0, sched, sink), std::invalid_argument);
}

TEST(QBit, MarkerEmitsSquareWave) {
    sim::Scheduler sched;
    std::vector<bool> wave;
    class WaveRecorder final : public sim::PacketSink {
    public:
        explicit WaveRecorder(std::vector<bool>& wave) : wave_{&wave} {}
        void accept(const sim::Packet& p) override { wave_->push_back(p.qbit); }

    private:
        std::vector<bool>* wave_;
    } sink{wave};
    measure::QBitMarker marker{4, sink};
    feed(marker, 10);
    ASSERT_EQ(wave.size(), 10u);
    const std::vector<bool> expected{false, false, false, false, true,  true,
                                     true,  true,  false, false};
    EXPECT_EQ(wave, expected);
    EXPECT_EQ(marker.marked(), 10u);
    EXPECT_EQ(marker.blocks_started(), 3u);
}

TEST(QBit, LosslessPathYieldsZeroLossRate) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    measure::QBitObserver observer{5, sched, sink};
    measure::QBitMarker marker{5, observer};
    feed(marker, 100);  // 20 complete blocks
    observer.finalize();
    EXPECT_EQ(observer.blocks().size(), 20u);
    EXPECT_EQ(observer.lost_packets(), 0u);
    EXPECT_EQ(observer.expected_packets(), 100u);
    EXPECT_DOUBLE_EQ(observer.loss_rate(), 0.0);
    EXPECT_EQ(observer.merged_blocks(), 0u);
}

TEST(QBit, ShortBlocksExposeUpstreamLoss) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    measure::QBitObserver observer{5, sched, sink};
    // Drop packets 3 and 12 (one from block 1, one from block 3).
    SelectiveDropper path{{3, 12}, observer};
    measure::QBitMarker marker{5, path};
    feed(marker, 30);  // 6 blocks of 5
    observer.finalize();
    EXPECT_EQ(observer.lost_packets(), 2u);
    EXPECT_EQ(observer.expected_packets(), 30u);
    EXPECT_DOUBLE_EQ(observer.loss_rate(), 2.0 / 30.0);
}

TEST(QBit, WholeBlockLossIsReconstructedFromMergedBlock) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    measure::QBitObserver observer{5, sched, sink};
    // Drop ALL of block 2 (ids 6..10, the first `true` phase block): its two
    // `false`-phase neighbours merge into one 10-packet run.  The observer
    // must recognise the over-full run as two same-phase sender blocks with
    // a fully-lost block between them and charge those 5 packets.
    SelectiveDropper path{{6, 7, 8, 9, 10}, observer};
    measure::QBitMarker marker{5, path};
    feed(marker, 25);  // 5 sender blocks
    observer.finalize();
    EXPECT_EQ(observer.merged_blocks(), 1u);
    EXPECT_EQ(observer.lost_packets(), 5u);
    EXPECT_EQ(observer.expected_packets(), 25u);
    EXPECT_DOUBLE_EQ(observer.loss_rate(), 5.0 / 25.0);
}

TEST(QBit, MergedBlockRegressionPinsPreviouslyAliasedCase) {
    // Regression for the merged-block aliasing bug: with block size 4 and
    // packets 5..8 (the middle sender block) dropped, the two neighbouring
    // same-phase blocks straddle the vanished phase and arrive as one
    // 8-packet run.  The old estimator reported a 0.0 loss rate here; the
    // reconstruction must report 4 lost of 12 expected.
    sim::Scheduler sched;
    sim::CountingSink sink;
    measure::QBitObserver observer{4, sched, sink};
    SelectiveDropper path{{5, 6, 7, 8}, observer};
    measure::QBitMarker marker{4, path};
    feed(marker, 12);  // 3 sender blocks
    observer.finalize();
    ASSERT_EQ(observer.blocks().size(), 1u);
    EXPECT_EQ(observer.blocks()[0].observed, 8u);
    EXPECT_EQ(observer.merged_blocks(), 1u);
    EXPECT_EQ(observer.lost_packets(), 4u);
    EXPECT_EQ(observer.expected_packets(), 12u);
    EXPECT_DOUBLE_EQ(observer.loss_rate(), 1.0 / 3.0);
}

TEST(QBit, PartialTailBlockIsIgnored) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    measure::QBitObserver observer{10, sched, sink};
    measure::QBitMarker marker{10, observer};
    feed(marker, 37);  // 3 complete blocks + 7-packet tail
    observer.finalize();
    EXPECT_EQ(observer.blocks().size(), 3u);
    EXPECT_EQ(observer.expected_packets(), 30u);
    EXPECT_EQ(observer.lost_packets(), 0u) << "a cut-off tail is not loss";
}

TEST(QBit, EndToEndTracksRouterLossRateThroughCongestedHop) {
    // marker -> drop-tail bottleneck -> observer under sustained 1.5x
    // overload: the passive estimate must land near the router's own
    // drop fraction (drop-tail loses isolated packets, so whole-block
    // aliasing stays rare at block size 50).
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::QueueBase::LinkConfig link;
    link.rate_bps = 10'000'000;
    link.prop_delay = milliseconds(10);
    link.capacity_bytes = 125'000;
    measure::QBitObserver observer{50, sched, sink};
    sim::BottleneckQueue queue{sched, link, observer};
    measure::QBitMarker marker{50, queue};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 15'000'000;
    cbr.packet_bytes = 1000;
    cbr.stop = seconds_i(20);
    traffic::CbrSource src{sched, cbr, marker};
    sched.run();
    observer.finalize();

    const double router_rate = static_cast<double>(queue.drops()) /
                               static_cast<double>(queue.arrivals());
    EXPECT_GT(router_rate, 0.2);
    EXPECT_NEAR(observer.loss_rate(), router_rate, 0.05);
    EXPECT_EQ(observer.merged_blocks(), 0u);
}

}  // namespace
}  // namespace bb
