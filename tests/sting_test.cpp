#include "probes/sting.h"

#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "scenarios/testbed.h"
#include "tcp/tcp_receiver.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

scenarios::TestbedConfig testbed_cfg() {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(20);
    return cfg;
}

struct StingRig {
    explicit StingRig(scenarios::Testbed& tb, const probes::StingProber::Config& cfg)
        : prober{tb.sched(), cfg, tb.forward_in(), Rng{0x517}},
          responder{tb.sched(), cfg.flow, tb.reverse_in()} {
        tb.fwd_demux().bind(cfg.flow, responder);
        tb.rev_demux().bind(cfg.flow, prober);
    }
    probes::StingProber prober;
    tcp::TcpReceiver responder;
};

TEST(Sting, ZeroLossOnIdlePath) {
    scenarios::Testbed tb{testbed_cfg()};
    probes::StingProber::Config cfg;
    cfg.burst_segments = 50;
    cfg.stop = seconds_i(30);
    StingRig rig{tb, cfg};
    tb.sched().run_until(seconds_i(40));
    const auto res = rig.prober.result();
    EXPECT_GT(res.bursts_completed, 2u);
    EXPECT_EQ(res.holes_filled, 0u);
    EXPECT_DOUBLE_EQ(res.forward_loss_rate, 0.0);
}

TEST(Sting, DetectsLossUnderSustainedOverload) {
    scenarios::Testbed tb{testbed_cfg()};
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 13'000'000;  // sustained 30% overload
    cbr.stop = seconds_i(120);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};

    probes::StingProber::Config cfg;
    cfg.burst_segments = 100;
    cfg.burst_interval = seconds_i(2);
    cfg.stop = seconds_i(120);
    // Full-size segments: at a byte-granularity drop-tail queue, STING's
    // classic 41 B probes squeeze into almost any leftover buffer space and
    // measure ~zero loss (an effect worth knowing about!); 1500 B segments
    // sample the same loss process as the cross traffic.
    cfg.segment_bytes = 1500;
    StingRig rig{tb, cfg};
    tb.sched().run_until(seconds_i(130));

    const auto res = rig.prober.result();
    // Hole filling is serial (one RTO-paced retransmission per hole), so
    // bursts complete slowly under sustained loss; a handful is plenty.
    ASSERT_GT(res.bursts_completed, 2u);
    // STING's probes join a persistently full queue out of phase with the
    // periodic cross traffic, so its per-packet loss rate sits well above
    // the aggregate router loss rate (the probes sample the worst phase);
    // require detection and sane bounds, not equality.
    EXPECT_GT(res.forward_loss_rate, mon.router_loss_rate() * 0.2);
    EXPECT_LT(res.forward_loss_rate, 0.95);
}

TEST(Sting, EveryHoleIsEventuallyFilled) {
    scenarios::Testbed tb{testbed_cfg()};
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 12'000'000;
    cbr.stop = seconds_i(60);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};

    probes::StingProber::Config cfg;
    cfg.burst_segments = 80;
    cfg.burst_interval = seconds_i(2);
    cfg.stop = seconds_i(60);
    StingRig rig{tb, cfg};
    tb.sched().run_until(seconds_i(90));

    const auto res = rig.prober.result();
    // Once the run drains, no burst is stuck: everything sent was acked.
    EXPECT_FALSE(rig.prober.burst_in_progress());
    EXPECT_GE(res.retransmissions, res.holes_filled)
        << "filling a hole needs at least one retransmission";
    // Responder delivered every byte of every completed burst in order.
    EXPECT_EQ(rig.responder.bytes_delivered() % 41, 0);  // 41 B default segments
}

TEST(Sting, LossRateScalesWithOverload) {
    const auto run = [&](std::int64_t cbr_bps) {
        scenarios::Testbed tb{testbed_cfg()};
        traffic::CbrSource::Config cbr;
        cbr.rate_bps = cbr_bps;
        cbr.stop = seconds_i(90);
        traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};
        probes::StingProber::Config cfg;
        cfg.burst_segments = 100;
        cfg.burst_interval = seconds_i(2);
        cfg.stop = seconds_i(90);
        cfg.segment_bytes = 1500;
        StingRig rig{tb, cfg};
        tb.sched().run_until(seconds_i(120));
        return rig.prober.result().forward_loss_rate;
    };
    const double mild = run(11'000'000);
    const double heavy = run(16'000'000);
    EXPECT_GT(heavy, mild);
}

}  // namespace
}  // namespace bb
