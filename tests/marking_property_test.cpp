// Property-based tests of congestion marking over randomized probe streams:
// invariants that must hold for any input, including threshold monotonicity.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/estimators.h"
#include "core/marking.h"
#include "core/probe_process.h"
#include "util/rng.h"

namespace bb::core {
namespace {

struct FuzzCase {
    std::uint64_t seed;
    int probes;
    double loss_rate;      // per-probe P(lose >= 1 packet)
    double high_delay_rate;  // P(near-full delay | not lost)
};

class MarkingFuzz : public ::testing::TestWithParam<FuzzCase> {};

std::vector<ProbeOutcome> random_probes(const FuzzCase& fc) {
    Rng rng{fc.seed};
    std::vector<ProbeOutcome> probes;
    probes.reserve(static_cast<std::size_t>(fc.probes));
    const TimeNs base = milliseconds(50);
    for (int i = 0; i < fc.probes; ++i) {
        ProbeOutcome po;
        po.slot = i;
        po.send_time = milliseconds(5) * i;
        po.packets_sent = 3;
        const bool lost = rng.bernoulli(fc.loss_rate);
        po.packets_lost = lost ? static_cast<int>(rng.uniform_int(1, 3)) : 0;
        po.any_received = po.packets_lost < 3;
        TimeNs qd;
        if (lost || rng.bernoulli(fc.high_delay_rate)) {
            qd = milliseconds(rng.uniform_int(90, 100));
        } else {
            qd = milliseconds(rng.uniform_int(0, 30));
        }
        po.max_owd = base + qd;
        probes.push_back(po);
    }
    return probes;
}

TEST_P(MarkingFuzz, OneMarkPerProbeAndLossImpliesCongested) {
    const auto probes = random_probes(GetParam());
    CongestionMarker marker;
    const auto marks = marker.mark(probes);
    ASSERT_EQ(marks.size(), probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        EXPECT_EQ(marks[i].slot, probes[i].slot);
        if (probes[i].any_lost()) {
            EXPECT_TRUE(marks[i].congested);
            EXPECT_TRUE(marks[i].by_loss);
        }
        EXPECT_FALSE(marks[i].by_loss && marks[i].by_delay) << "rules are exclusive";
        if (marks[i].congested) {
            EXPECT_TRUE(marks[i].by_loss || marks[i].by_delay);
        }
    }
}

TEST_P(MarkingFuzz, AlphaMonotonicity) {
    const auto probes = random_probes(GetParam());
    MarkingConfig tight;
    tight.alpha = 0.05;
    MarkingConfig loose = tight;
    loose.alpha = 0.3;
    CongestionMarker m1{tight};
    CongestionMarker m2{loose};
    const auto a = m1.mark(probes);
    const auto b = m2.mark(probes);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Everything marked under the tight threshold stays marked under the
        // looser one (same tau, lower delay bar).
        if (a[i].congested) {
            EXPECT_TRUE(b[i].congested) << "probe " << i;
        }
    }
}

TEST_P(MarkingFuzz, TauMonotonicity) {
    const auto probes = random_probes(GetParam());
    MarkingConfig narrow;
    narrow.tau = milliseconds(10);
    MarkingConfig wide = narrow;
    wide.tau = milliseconds(200);
    CongestionMarker m1{narrow};
    CongestionMarker m2{wide};
    const auto a = m1.mark(probes);
    const auto b = m2.mark(probes);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].congested) {
            EXPECT_TRUE(b[i].congested) << "probe " << i;
        }
    }
}

TEST_P(MarkingFuzz, LossOnlyModeIsSubsetOfFullRule) {
    const auto probes = random_probes(GetParam());
    MarkingConfig loss_only;
    loss_only.use_delay_rule = false;
    CongestionMarker m1{loss_only};
    CongestionMarker m2{MarkingConfig{}};
    const auto a = m1.mark(probes);
    const auto b = m2.mark(probes);
    std::size_t a_marked = 0;
    std::size_t b_marked = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].congested) {
            ++a_marked;
            EXPECT_TRUE(b[i].congested);
        }
        if (b[i].congested) ++b_marked;
    }
    EXPECT_LE(a_marked, b_marked);
}

TEST_P(MarkingFuzz, EstimatesStayInRange) {
    const auto probes = random_probes(GetParam());
    CongestionMarker marker;
    const auto marks = marker.mark(probes);
    // Treat consecutive probes as basic experiments over adjacent slots.
    StateCounts counts;
    for (std::size_t i = 0; i + 1 < marks.size(); i += 2) {
        counts.add({ExperimentKind::basic,
                    basic_code(marks[i].congested, marks[i + 1].congested)});
    }
    const auto f = estimate_frequency(counts);
    EXPECT_GE(f.value, 0.0);
    EXPECT_LE(f.value, 1.0);
    const auto d = estimate_duration_basic(counts);
    if (d.valid) {
        EXPECT_GE(d.slots, 1.0) << "episodes are at least one slot";
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, MarkingFuzz,
                         ::testing::Values(FuzzCase{1, 0, 0.0, 0.0},
                                           FuzzCase{2, 1, 1.0, 0.0},
                                           FuzzCase{3, 500, 0.0, 0.0},
                                           FuzzCase{4, 500, 0.02, 0.05},
                                           FuzzCase{5, 500, 0.3, 0.3},
                                           FuzzCase{6, 500, 0.9, 0.1},
                                           FuzzCase{7, 2000, 0.01, 0.01}));

}  // namespace
}  // namespace bb::core
