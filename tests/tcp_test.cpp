#include <gtest/gtest.h>

#include "scenarios/testbed.h"
#include "tcp/rtt_estimator.h"
#include "tcp/tcp_flow.h"

namespace bb {
namespace {

using scenarios::Testbed;
using scenarios::TestbedConfig;

TestbedConfig small_testbed() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(20);
    cfg.buffer_time = milliseconds(50);
    return cfg;
}

TEST(RttEstimator, FirstSampleInitializes) {
    tcp::RttEstimator est;
    est.add_sample(milliseconds(100));
    EXPECT_EQ(est.srtt(), milliseconds(100));
    EXPECT_EQ(est.rttvar(), milliseconds(50));
    // RTO = srtt + 4*rttvar = 300 ms.
    EXPECT_EQ(est.rto(), milliseconds(300));
}

TEST(RttEstimator, ConvergesToStableRtt) {
    tcp::RttEstimator est;
    for (int i = 0; i < 100; ++i) est.add_sample(milliseconds(100));
    EXPECT_EQ(est.srtt(), milliseconds(100));
    // rttvar decays toward zero; RTO floors at min_rto = 200 ms.
    EXPECT_EQ(est.rto(), milliseconds(200));
}

TEST(RttEstimator, BackoffDoublesAndClamps) {
    tcp::RttEstimator est;
    est.add_sample(milliseconds(100));
    const TimeNs before = est.rto();
    est.backoff();
    EXPECT_EQ(est.rto(), before * 2);
    for (int i = 0; i < 20; ++i) est.backoff();
    EXPECT_EQ(est.rto(), seconds_i(60));  // max clamp
}

TEST(RttEstimator, RespectsMinimum) {
    tcp::RttEstimator est;
    for (int i = 0; i < 50; ++i) est.add_sample(milliseconds(1));
    EXPECT_GE(est.rto(), milliseconds(200));
}

TEST(TcpFlow, FiniteTransferCompletes) {
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;
    cfg.bytes_to_send = 100 * 1500;
    tcp::TcpFlow flow{tb.sched(), 1,           cfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    bool done = false;
    flow.sender().on_complete([&] { done = true; });
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(60));
    EXPECT_TRUE(done);
    EXPECT_TRUE(flow.sender().finished());
    EXPECT_EQ(flow.sender().bytes_acked(), cfg.bytes_to_send);
    EXPECT_GE(flow.receiver().bytes_delivered(), cfg.bytes_to_send);
}

TEST(TcpFlow, SlowStartGrowsWindow) {
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;  // infinite source
    tcp::TcpFlow flow{tb.sched(), 1,           cfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    // A couple of RTTs with no loss: cwnd should have grown beyond initial.
    tb.sched().run_until(milliseconds(200));
    EXPECT_GT(flow.sender().cwnd_segments(), 3.0);
}

TEST(TcpFlow, SingleFlowApproachesLinkCapacity) {
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;
    tcp::TcpFlow flow{tb.sched(), 1,           cfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(30));
    const double goodput_bps =
        static_cast<double>(flow.sender().bytes_acked()) * 8.0 / 30.0;
    // Should achieve a healthy share of the 10 Mb/s link despite AIMD dips.
    EXPECT_GT(goodput_bps, 6e6);
    EXPECT_LE(goodput_bps, 10.5e6);
}

TEST(TcpFlow, RecoversFromLossWithoutTimeoutStorm) {
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;
    tcp::TcpFlow flow{tb.sched(), 1,           cfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(30));
    // A single flow overfilling a 50 ms buffer must lose packets...
    EXPECT_GT(flow.sender().retransmits(), 0u);
    // ...but fast retransmit should handle nearly all of them.
    EXPECT_GT(flow.sender().fast_retransmits(), 0u);
    EXPECT_LT(flow.sender().timeouts(), flow.sender().fast_retransmits());
}

TEST(TcpFlow, TwoFlowsShareCapacityFairly) {
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;
    tcp::TcpFlow f1{tb.sched(), 1,           cfg,
                    tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                    tb.rev_demux()};
    tcp::TcpFlow f2{tb.sched(), 2,           cfg,
                    tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                    tb.rev_demux()};
    f1.sender().start(TimeNs::zero());
    f2.sender().start(milliseconds(37));
    tb.sched().run_until(seconds_i(60));
    const auto b1 = static_cast<double>(f1.sender().bytes_acked());
    const auto b2 = static_cast<double>(f2.sender().bytes_acked());
    EXPECT_GT(b1, 0.0);
    EXPECT_GT(b2, 0.0);
    const double ratio = b1 > b2 ? b1 / b2 : b2 / b1;
    EXPECT_LT(ratio, 2.5) << "long-run AIMD shares should be comparable";
    // Combined goodput close to capacity.
    EXPECT_GT((b1 + b2) * 8.0 / 60.0, 7e6);
}

TEST(TcpFlow, ReceiverWindowCapsInFlightData) {
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;
    cfg.rwnd_segments = 4;  // tiny window: ~6 Mb/s ceiling at 40 ms RTT
    tcp::TcpFlow flow{tb.sched(), 1,           cfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(10));
    // 4 segments per ~41 ms RTT = ~1.2 Mb/s; allow generous slack.
    const double goodput_bps = static_cast<double>(flow.sender().bytes_acked()) * 8.0 / 10.0;
    EXPECT_LT(goodput_bps, 2.5e6);
    EXPECT_EQ(flow.sender().retransmits(), 0u) << "window-limited flow should not lose";
}

TEST(TcpReceiver, ReassemblesOutOfOrderSegments) {
    sim::Scheduler sched;
    sim::CountingSink ack_sink;
    tcp::TcpReceiver rx{sched, 5, ack_sink};
    sim::Packet seg;
    seg.flow = 5;
    seg.kind = sim::PacketKind::data;
    seg.size_bytes = 1000;
    seg.seq = 1000;  // second segment arrives first
    rx.accept(seg);
    EXPECT_EQ(rx.bytes_delivered(), 0);
    EXPECT_EQ(rx.out_of_order_segments(), 1u);
    seg.seq = 0;
    rx.accept(seg);
    EXPECT_EQ(rx.bytes_delivered(), 2000);
    EXPECT_EQ(ack_sink.packets(), 2u);
    EXPECT_EQ(ack_sink.last().ack_seq, 2000);
}

TEST(TcpReceiver, DuplicateSegmentsDoNotDoubleCount) {
    sim::Scheduler sched;
    sim::CountingSink ack_sink;
    tcp::TcpReceiver rx{sched, 5, ack_sink};
    sim::Packet seg;
    seg.flow = 5;
    seg.kind = sim::PacketKind::data;
    seg.size_bytes = 1000;
    seg.seq = 0;
    rx.accept(seg);
    rx.accept(seg);  // retransmitted duplicate
    EXPECT_EQ(rx.bytes_delivered(), 1000);
    EXPECT_EQ(ack_sink.last().ack_seq, 1000);
}

}  // namespace
}  // namespace bb
