#include "util/flags.h"

#include <gtest/gtest.h>

namespace bb {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
    std::vector<const char*> v{"prog"};
    v.insert(v.end(), args.begin(), args.end());
    return v;
}

TEST(Flags, DefaultsWhenNotSet) {
    FlagSet flags{"t", "test"};
    const auto* s = flags.add_string("name", "dflt", "h");
    const auto* d = flags.add_double("ratio", 0.5, "h");
    const auto* i = flags.add_int("count", 7, "h");
    const auto* b = flags.add_bool("verbose", false, "h");
    const auto args = argv_of({});
    ASSERT_TRUE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_EQ(*s, "dflt");
    EXPECT_DOUBLE_EQ(*d, 0.5);
    EXPECT_EQ(*i, 7);
    EXPECT_FALSE(*b);
    EXPECT_FALSE(flags.is_set("name"));
}

TEST(Flags, EqualsSyntax) {
    FlagSet flags{"t", "test"};
    const auto* s = flags.add_string("name", "", "h");
    const auto* d = flags.add_double("ratio", 0.0, "h");
    const auto args = argv_of({"--name=abc", "--ratio=0.25"});
    ASSERT_TRUE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_EQ(*s, "abc");
    EXPECT_DOUBLE_EQ(*d, 0.25);
    EXPECT_TRUE(flags.is_set("name"));
}

TEST(Flags, SpaceSeparatedValue) {
    FlagSet flags{"t", "test"};
    const auto* i = flags.add_int("count", 0, "h");
    const auto args = argv_of({"--count", "42"});
    ASSERT_TRUE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_EQ(*i, 42);
}

TEST(Flags, BareBooleanMeansTrue) {
    FlagSet flags{"t", "test"};
    const auto* b = flags.add_bool("verbose", false, "h");
    const auto args = argv_of({"--verbose"});
    ASSERT_TRUE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_TRUE(*b);
}

TEST(Flags, BooleanExplicitValues) {
    FlagSet flags{"t", "test"};
    const auto* b = flags.add_bool("verbose", true, "h");
    const auto args = argv_of({"--verbose=false"});
    ASSERT_TRUE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_FALSE(*b);
}

TEST(Flags, NegativeNumbers) {
    FlagSet flags{"t", "test"};
    const auto* i = flags.add_int("n", 0, "h");
    const auto* d = flags.add_double("x", 0.0, "h");
    const auto args = argv_of({"--n=-3", "--x=-1.5"});
    ASSERT_TRUE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_EQ(*i, -3);
    EXPECT_DOUBLE_EQ(*d, -1.5);
}

TEST(Flags, UnknownFlagFails) {
    FlagSet flags{"t", "test"};
    const auto args = argv_of({"--bogus=1"});
    EXPECT_FALSE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_FALSE(flags.error().empty());
}

TEST(Flags, PositionalArgumentFails) {
    FlagSet flags{"t", "test"};
    const auto args = argv_of({"stray"});
    EXPECT_FALSE(flags.parse(static_cast<int>(args.size()), args.data()));
}

TEST(Flags, MissingValueFails) {
    FlagSet flags{"t", "test"};
    (void)flags.add_int("count", 0, "h");
    const auto args = argv_of({"--count"});
    EXPECT_FALSE(flags.parse(static_cast<int>(args.size()), args.data()));
}

TEST(Flags, MalformedNumberFails) {
    FlagSet flags{"t", "test"};
    (void)flags.add_int("count", 0, "h");
    const auto args = argv_of({"--count=abc"});
    EXPECT_FALSE(flags.parse(static_cast<int>(args.size()), args.data()));
}

TEST(Flags, MalformedDoubleFails) {
    FlagSet flags{"t", "test"};
    (void)flags.add_double("x", 0.0, "h");
    const auto args = argv_of({"--x=1.5zzz"});
    EXPECT_FALSE(flags.parse(static_cast<int>(args.size()), args.data()));
}

TEST(Flags, MalformedBoolFails) {
    FlagSet flags{"t", "test"};
    (void)flags.add_bool("b", false, "h");
    const auto args = argv_of({"--b=maybe"});
    EXPECT_FALSE(flags.parse(static_cast<int>(args.size()), args.data()));
}

TEST(Flags, HelpReturnsFalseWithoutError) {
    FlagSet flags{"t", "test"};
    const auto args = argv_of({"--help"});
    EXPECT_FALSE(flags.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_TRUE(flags.error().empty());
}

}  // namespace
}  // namespace bb
