// Router, address stamping and the full Figure 3 topology.
#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "scenarios/experiment.h"
#include "scenarios/figure3.h"
#include "sim/router.h"
#include "traffic/cbr.h"
#include "traffic/episodic.h"

namespace bb {
namespace {

TEST(Router, RoutesByDestination) {
    sim::Router router;
    sim::CountingSink a;
    sim::CountingSink b;
    sim::CountingSink dflt;
    router.add_route(1, a);
    router.add_route(2, b);
    router.set_default_route(dflt);

    sim::Packet p;
    p.dst_addr = 1;
    router.accept(p);
    p.dst_addr = 2;
    router.accept(p);
    router.accept(p);
    p.dst_addr = 99;
    router.accept(p);

    EXPECT_EQ(a.packets(), 1u);
    EXPECT_EQ(b.packets(), 2u);
    EXPECT_EQ(dflt.packets(), 1u);
    EXPECT_EQ(router.forwarded(), 4u);
    EXPECT_EQ(router.unroutable(), 0u);
}

TEST(Router, CountsUnroutableWithoutDefault) {
    sim::Router router;
    sim::Packet p;
    p.dst_addr = 7;
    router.accept(p);
    EXPECT_EQ(router.unroutable(), 1u);
    EXPECT_EQ(router.forwarded(), 0u);
}

TEST(AddressStamper, StampsWithoutMutatingOriginal) {
    sim::CountingSink sink;
    sim::AddressStamper stamper{5, 9, sink};
    sim::Packet p;
    p.id = 1;
    stamper.accept(p);
    EXPECT_EQ(sink.last().src_addr, 5u);
    EXPECT_EQ(sink.last().dst_addr, 9u);
    EXPECT_EQ(p.src_addr, 0u);
}

TEST(Figure3, TrafficAndProbesTakeSeparateHopBPaths) {
    scenarios::Figure3Testbed tb;
    sim::CountingSink cross_sink;
    sim::CountingSink probe_sink;
    tb.traffic_receiver().bind(1, cross_sink);
    tb.probe_receiver().bind(2, probe_sink);

    sim::Packet cross;
    cross.id = 1;
    cross.flow = 1;
    cross.size_bytes = 1000;
    sim::Packet probe;
    probe.id = 2;
    probe.flow = 2;
    probe.kind = sim::PacketKind::probe;
    probe.size_bytes = 600;

    tb.sched().schedule_at(TimeNs::zero(), [&] {
        tb.traffic_sender_in().accept(cross);
        tb.probe_sender_in().accept(probe);
    });
    tb.sched().run();

    EXPECT_EQ(cross_sink.packets(), 1u);
    EXPECT_EQ(probe_sink.packets(), 1u);
    EXPECT_EQ(tb.hop_b_traffic().departures(), 1u);
    EXPECT_EQ(tb.hop_b_probe().departures(), 1u);
    EXPECT_EQ(tb.bottleneck().departures(), 2u) << "both multiplex at hop C";
    EXPECT_EQ(tb.hop_d().forwarded(), 2u);
    EXPECT_EQ(tb.hop_d().unroutable(), 0u);
}

TEST(Figure3, EndToEndDelayMatchesPathComponents) {
    scenarios::Figure3Testbed tb;
    sim::CountingSink sink;
    tb.traffic_receiver().bind(1, sink);
    std::vector<double> arrival_ms;
    class Recorder final : public sim::PacketSink {
    public:
        Recorder(sim::Scheduler& s, std::vector<double>& v) : s_{&s}, v_{&v} {}
        void accept(const sim::Packet&) override { v_->push_back(s_->now().to_millis()); }

    private:
        sim::Scheduler* s_;
        std::vector<double>* v_;
    } rec{tb.sched(), arrival_ms};
    tb.traffic_receiver().bind(2, rec);

    sim::Packet p;
    p.id = 1;
    p.flow = 2;
    p.size_bytes = 1500;
    tb.sched().schedule_at(TimeNs::zero(), [&] { tb.traffic_sender_in().accept(p); });
    tb.sched().run();
    ASSERT_EQ(arrival_ms.size(), 1u);
    // OC12 tx (0.1 ms) + GE delay (0.05) + OC3 tx (0.4) + 50 ms emulator +
    // GE (0.05) ~ 50.6 ms.
    EXPECT_NEAR(arrival_ms[0], 50.6, 0.3);
}

TEST(Figure3, LossProcessMatchesCollapsedDumbbell) {
    // The central calibration claim: only hop C congests, so the episode
    // process on the full Figure 3 path equals the simple Testbed's.
    const TimeNs horizon = seconds_i(120);

    // Full topology run.
    scenarios::Figure3Testbed f3;
    measure::LossMonitor f3_mon{f3.sched(), f3.bottleneck()};
    traffic::EpisodicBurstSource::Config burst;
    burst.episode_durations = {milliseconds(68)};
    burst.mean_gap = seconds_i(8);
    burst.bottleneck_rate_bps = f3.config().oc3_rate_bps;
    burst.bottleneck_capacity_bytes = f3.bottleneck().capacity_bytes();
    burst.background_load = 0.0;
    burst.stop = horizon;
    traffic::EpisodicBurstSource f3_bursts{f3.sched(), burst, f3.traffic_sender_in(), Rng{9}};
    f3.sched().run_until(horizon + seconds_i(2));
    const auto f3_truth = measure::summarize_truth(f3_mon.episodes(milliseconds(100)),
                                                   milliseconds(5), TimeNs::zero(), horizon);

    // Collapsed dumbbell run with the same seed and parameters.
    scenarios::TestbedConfig tb_cfg;
    tb_cfg.bottleneck_rate_bps = f3.config().oc3_rate_bps;
    scenarios::Testbed tb{tb_cfg};
    measure::LossMonitor tb_mon{tb.sched(), tb.bottleneck()};
    burst.bottleneck_capacity_bytes = tb.bottleneck().capacity_bytes();
    traffic::EpisodicBurstSource tb_bursts{tb.sched(), burst, tb.forward_in(), Rng{9}};
    tb.sched().run_until(horizon + seconds_i(2));
    const auto tb_truth = measure::summarize_truth(tb_mon.episodes(milliseconds(100)),
                                                   milliseconds(5), TimeNs::zero(), horizon);

    ASSERT_GT(f3_truth.episodes, 5u);
    EXPECT_EQ(f3_truth.episodes, tb_truth.episodes);
    EXPECT_NEAR(f3_truth.mean_duration_s, tb_truth.mean_duration_s, 0.01);
    EXPECT_NEAR(f3_truth.frequency, tb_truth.frequency, 0.1 * tb_truth.frequency + 1e-4);
    EXPECT_EQ(f3.hop_b_traffic().drops(), 0u) << "hop B must never congest";
}

}  // namespace
}  // namespace bb
