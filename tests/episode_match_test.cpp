#include "core/episode_match.h"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

SlotMark mark(SlotIndex slot, bool congested) {
    SlotMark m;
    m.slot = slot;
    m.congested = congested;
    return m;
}

TEST(EpisodeMatch, EmptyInputs) {
    const auto rep = match_episodes({}, {});
    EXPECT_EQ(rep.true_episodes, 0u);
    EXPECT_EQ(rep.detected_episodes, 0u);
    EXPECT_DOUBLE_EQ(rep.recall, 0.0);
}

TEST(EpisodeMatch, PerfectDetection) {
    const std::vector<SlotInterval> truth{{10, 20}, {50, 60}};
    std::vector<SlotMark> marks;
    for (SlotIndex s = 10; s <= 20; ++s) marks.push_back(mark(s, true));
    for (SlotIndex s = 50; s <= 60; ++s) marks.push_back(mark(s, true));
    const auto rep = match_episodes(marks, truth);
    EXPECT_EQ(rep.detected_episodes, 2u);
    EXPECT_DOUBLE_EQ(rep.recall, 1.0);
    EXPECT_DOUBLE_EQ(rep.precision, 1.0);
    EXPECT_DOUBLE_EQ(rep.mean_onset_error_slots, 0.0);
}

TEST(EpisodeMatch, MissedEpisodeLowersRecall) {
    const std::vector<SlotInterval> truth{{10, 20}, {50, 60}};
    const std::vector<SlotMark> marks{mark(12, true), mark(55, false)};
    const auto rep = match_episodes(marks, truth);
    EXPECT_EQ(rep.detected_episodes, 1u);
    EXPECT_EQ(rep.probed_episodes, 2u);
    EXPECT_DOUBLE_EQ(rep.recall, 0.5);
    EXPECT_DOUBLE_EQ(rep.probed_recall, 0.5);
}

TEST(EpisodeMatch, UnprobedEpisodeCountsAgainstRecallNotProbedRecall) {
    const std::vector<SlotInterval> truth{{10, 20}, {50, 60}};
    const std::vector<SlotMark> marks{mark(12, true)};  // slots 50-60 never probed
    const auto rep = match_episodes(marks, truth);
    EXPECT_EQ(rep.probed_episodes, 1u);
    EXPECT_DOUBLE_EQ(rep.recall, 0.5);
    EXPECT_DOUBLE_EQ(rep.probed_recall, 1.0);
}

TEST(EpisodeMatch, FalseMarksLowerPrecision) {
    const std::vector<SlotInterval> truth{{10, 20}};
    const std::vector<SlotMark> marks{mark(15, true), mark(100, true), mark(101, true)};
    const auto rep = match_episodes(marks, truth);
    EXPECT_EQ(rep.marked_slots, 3u);
    EXPECT_EQ(rep.marked_slots_in_episodes, 1u);
    EXPECT_NEAR(rep.precision, 1.0 / 3.0, 1e-12);
}

TEST(EpisodeMatch, OnsetErrorMeasuresFirstCongestedMark) {
    const std::vector<SlotInterval> truth{{10, 30}};
    const std::vector<SlotMark> marks{mark(14, true), mark(20, true)};
    const auto rep = match_episodes(marks, truth);
    EXPECT_DOUBLE_EQ(rep.mean_onset_error_slots, 4.0);
}

TEST(EpisodeMatch, UnsortedMarksHandled) {
    const std::vector<SlotInterval> truth{{10, 20}};
    const std::vector<SlotMark> marks{mark(18, true), mark(11, true)};
    const auto rep = match_episodes(marks, truth);
    EXPECT_EQ(rep.detected_episodes, 1u);
    EXPECT_DOUBLE_EQ(rep.mean_onset_error_slots, 1.0);
}

TEST(EpisodeMatch, BoundarySlotsCountAsInside) {
    const std::vector<SlotInterval> truth{{10, 20}};
    const std::vector<SlotMark> marks{mark(10, true), mark(20, true), mark(21, true)};
    const auto rep = match_episodes(marks, truth);
    EXPECT_EQ(rep.marked_slots_in_episodes, 2u);
}

}  // namespace
}  // namespace bb::core
