#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bb::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
    Scheduler s;
    EXPECT_EQ(s.now(), TimeNs::zero());
    EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(milliseconds(30), [&] { order.push_back(3); });
    s.schedule_at(milliseconds(10), [&] { order.push_back(1); });
    s.schedule_at(milliseconds(20), [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(milliseconds(5), [&] { order.push_back(1); });
    s.schedule_at(milliseconds(5), [&] { order.push_back(2); });
    s.schedule_at(milliseconds(5), [&] { order.push_back(3); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NowAdvancesToEventTime) {
    Scheduler s;
    TimeNs seen{TimeNs::zero()};
    s.schedule_at(milliseconds(7), [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, milliseconds(7));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
    Scheduler s;
    std::vector<double> times;
    s.schedule_at(milliseconds(10), [&] {
        s.schedule_after(milliseconds(5), [&] { times.push_back(s.now().to_millis()); });
    });
    s.run();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_DOUBLE_EQ(times[0], 15.0);
}

TEST(Scheduler, PastSchedulingThrows) {
    Scheduler s;
    s.schedule_at(milliseconds(10), [] {});
    s.run();
    EXPECT_THROW(s.schedule_at(milliseconds(5), [] {}), std::invalid_argument);
}

TEST(Scheduler, RunUntilStopsAtHorizonInclusive) {
    Scheduler s;
    int fired = 0;
    s.schedule_at(milliseconds(10), [&] { ++fired; });
    s.schedule_at(milliseconds(20), [&] { ++fired; });
    s.schedule_at(milliseconds(30), [&] { ++fired; });
    s.run_until(milliseconds(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), milliseconds(20));
    s.run_until(milliseconds(40));
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(s.now(), milliseconds(40));
}

TEST(Scheduler, CancelPreventsExecution) {
    Scheduler s;
    int fired = 0;
    const EventId id = s.schedule_at(milliseconds(10), [&] { ++fired; });
    s.schedule_at(milliseconds(20), [&] { ++fired; });
    s.cancel(id);
    s.run();
    EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelUnknownIdIsNoOp) {
    Scheduler s;
    s.cancel(123456);
    int fired = 0;
    s.schedule_at(milliseconds(1), [&] { ++fired; });
    s.run();
    EXPECT_EQ(fired, 1);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
    Scheduler s;
    int count = 0;
    std::function<void()> tick = [&] {
        ++count;
        if (count < 100) s.schedule_after(milliseconds(1), tick);
    };
    s.schedule_at(TimeNs::zero(), tick);
    s.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(s.now(), milliseconds(99));
    EXPECT_EQ(s.executed_events(), 100u);
}

TEST(Scheduler, RunUntilAdvancesClockEvenWithoutEvents) {
    Scheduler s;
    s.run_until(seconds_i(5));
    EXPECT_EQ(s.now(), seconds_i(5));
}

}  // namespace
}  // namespace bb::sim
