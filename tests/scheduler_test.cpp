#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace bb::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
    Scheduler s;
    EXPECT_EQ(s.now(), TimeNs::zero());
    EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(milliseconds(30), [&] { order.push_back(3); });
    s.schedule_at(milliseconds(10), [&] { order.push_back(1); });
    s.schedule_at(milliseconds(20), [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(milliseconds(5), [&] { order.push_back(1); });
    s.schedule_at(milliseconds(5), [&] { order.push_back(2); });
    s.schedule_at(milliseconds(5), [&] { order.push_back(3); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NowAdvancesToEventTime) {
    Scheduler s;
    TimeNs seen{TimeNs::zero()};
    s.schedule_at(milliseconds(7), [&] { seen = s.now(); });
    s.run();
    EXPECT_EQ(seen, milliseconds(7));
}

TEST(Scheduler, ScheduleAfterIsRelative) {
    Scheduler s;
    std::vector<double> times;
    s.schedule_at(milliseconds(10), [&] {
        s.schedule_after(milliseconds(5), [&] { times.push_back(s.now().to_millis()); });
    });
    s.run();
    ASSERT_EQ(times.size(), 1u);
    EXPECT_DOUBLE_EQ(times[0], 15.0);
}

TEST(Scheduler, PastSchedulingThrows) {
    Scheduler s;
    s.schedule_at(milliseconds(10), [] {});
    s.run();
    EXPECT_THROW(s.schedule_at(milliseconds(5), [] {}), std::invalid_argument);
}

TEST(Scheduler, RunUntilStopsAtHorizonInclusive) {
    Scheduler s;
    int fired = 0;
    s.schedule_at(milliseconds(10), [&] { ++fired; });
    s.schedule_at(milliseconds(20), [&] { ++fired; });
    s.schedule_at(milliseconds(30), [&] { ++fired; });
    s.run_until(milliseconds(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), milliseconds(20));
    s.run_until(milliseconds(40));
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(s.now(), milliseconds(40));
}

TEST(Scheduler, CancelPreventsExecution) {
    Scheduler s;
    int fired = 0;
    const EventId id = s.schedule_at(milliseconds(10), [&] { ++fired; });
    s.schedule_at(milliseconds(20), [&] { ++fired; });
    s.cancel(id);
    s.run();
    EXPECT_EQ(fired, 1);
}

TEST(Scheduler, CancelUnknownIdIsNoOp) {
    Scheduler s;
    s.cancel(123456);
    int fired = 0;
    s.schedule_at(milliseconds(1), [&] { ++fired; });
    s.run();
    EXPECT_EQ(fired, 1);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
    Scheduler s;
    int count = 0;
    std::function<void()> tick = [&] {
        ++count;
        if (count < 100) s.schedule_after(milliseconds(1), tick);
    };
    s.schedule_at(TimeNs::zero(), tick);
    s.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(s.now(), milliseconds(99));
    EXPECT_EQ(s.executed_events(), 100u);
}

TEST(Scheduler, RunUntilAdvancesClockEvenWithoutEvents) {
    Scheduler s;
    s.run_until(seconds_i(5));
    EXPECT_EQ(s.now(), seconds_i(5));
}

TEST(Scheduler, CancelAfterFireIsNoOp) {
    Scheduler s;
    int fired = 0;
    const EventId id = s.schedule_at(milliseconds(1), [&] { ++fired; });
    s.run();
    EXPECT_EQ(fired, 1);
    s.cancel(id);  // already fired: harmless
    // The arena slot was recycled; a stale cancel must not kill its new owner.
    s.schedule_at(milliseconds(2), [&] { ++fired; });
    s.cancel(id);
    s.run();
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, DoubleCancelCannotKillSlotReuser) {
    Scheduler s;
    int fired = 0;
    const EventId a = s.schedule_at(milliseconds(10), [&] { ++fired; });
    s.cancel(a);
    const EventId b = s.schedule_at(milliseconds(10), [&] { ++fired; });
    s.cancel(a);  // stale generation: must not touch b
    s.run();
    EXPECT_EQ(fired, 1);
    EXPECT_NE(a, b);
}

TEST(Scheduler, TiesWithCancellationsPreserveInsertionOrder) {
    Scheduler s;
    std::vector<int> order;
    s.schedule_at(milliseconds(5), [&] { order.push_back(1); });
    const EventId skip = s.schedule_at(milliseconds(5), [&] { order.push_back(2); });
    s.schedule_at(milliseconds(5), [&] { order.push_back(3); });
    s.cancel(skip);
    s.schedule_at(milliseconds(5), [&] { order.push_back(4); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
}

TEST(Scheduler, PendingAndLiveEventAccounting) {
    Scheduler s;
    const EventId a = s.schedule_at(milliseconds(1), [] {});
    s.schedule_at(milliseconds(2), [] {});
    s.schedule_at(milliseconds(3), [] {});
    EXPECT_EQ(s.live_events(), 3u);
    EXPECT_GE(s.pending_events(), s.live_events());
    s.cancel(a);
    EXPECT_EQ(s.live_events(), 2u);
    EXPECT_EQ(s.cancelled_events(), 1u);
    s.run();
    EXPECT_EQ(s.live_events(), 0u);
    EXPECT_EQ(s.pending_events(), 0u);
    EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Scheduler, CancelChurnKeepsMemoryBounded) {
    // The TCP RTO pattern at scale: schedule a far-future timer, cancel it,
    // repeat.  Lazy deletion with compaction must keep both the ready queue
    // and the arena bounded by a small constant, not the cycle count — the
    // old unordered_set bookkeeping grew when ids were cancelled faster than
    // pops drained them.
    Scheduler s;
    for (int i = 0; i < 100'000; ++i) {
        const EventId id = s.schedule_after(seconds_i(3600), [] {});
        s.cancel(id);
    }
    EXPECT_LE(s.pending_events(), 256u);
    EXPECT_LE(s.arena_slots(), 256u);
    EXPECT_EQ(s.live_events(), 0u);
    s.run_until(seconds_i(7200));
    EXPECT_EQ(s.executed_events(), 0u);
    EXPECT_EQ(s.cancelled_events(), 100'000u);
}

TEST(Scheduler, MixedChurnStillFiresSurvivors) {
    Scheduler s;
    int fired = 0;
    for (int i = 0; i < 10'000; ++i) {
        const EventId id = s.schedule_after(milliseconds(1 + i % 97), [&] { ++fired; });
        if (i % 4 != 0) s.cancel(id);
    }
    s.run();
    EXPECT_EQ(fired, 2500);
    EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, MoveOnlyEventCallables) {
    Scheduler s;
    auto payload = std::make_unique<int>(99);
    int seen = 0;
    s.schedule_at(milliseconds(1), [p = std::move(payload), &seen] { seen = *p; });
    s.run();
    EXPECT_EQ(seen, 99);
}

TEST(Scheduler, LargeCaptureEventsStillRun) {
    Scheduler s;
    struct Big {
        std::uint64_t words[16];
    };
    Big big{};
    big.words[15] = 7;
    std::uint64_t seen = 0;
    s.schedule_at(milliseconds(1), [big, &seen] { seen = big.words[15]; });
    s.run();
    EXPECT_EQ(seen, 7u);
}

TEST(Scheduler, CancelFromWithinEarlierEventAtSameTime) {
    Scheduler s;
    int fired = 0;
    EventId later{};
    s.schedule_at(milliseconds(5), [&] { s.cancel(later); });
    later = s.schedule_at(milliseconds(5), [&] { ++fired; });
    s.run();
    EXPECT_EQ(fired, 0);
}

TEST(Scheduler, DeliverAfterDeliversParkedPacket) {
    Scheduler s;
    CountingSink sink;
    Packet p;
    p.id = 77;
    p.size_bytes = 1500;
    p.sent_at = milliseconds(1);
    s.deliver_after(milliseconds(3), p, sink);
    s.run();
    EXPECT_EQ(sink.packets(), 1u);
    EXPECT_EQ(sink.last().id, 77u);
    EXPECT_EQ(sink.last().size_bytes, 1500);
    EXPECT_EQ(s.now(), milliseconds(3));
}

TEST(Scheduler, PacketPoolRecyclesSlotsAcrossDeliveries) {
    Scheduler s;
    CountingSink sink;
    for (int i = 0; i < 10'000; ++i) {
        Packet p;
        p.id = static_cast<std::uint64_t>(i);
        s.deliver_after(milliseconds(1), p, sink);
        s.run();
    }
    EXPECT_EQ(sink.packets(), 10'000u);
    // One delivery in flight at a time: the pool never needs more than a
    // handful of slots no matter how many packets pass through.
    EXPECT_LE(s.packet_pool().capacity(), 4u);
    EXPECT_EQ(s.packet_pool().in_use(), 0u);
}

TEST(Scheduler, ReserveDoesNotDisturbScheduling) {
    Scheduler s;
    s.reserve(1024);
    std::vector<int> order;
    s.schedule_at(milliseconds(2), [&] { order.push_back(2); });
    s.schedule_at(milliseconds(1), [&] { order.push_back(1); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(s.arena_slots(), 2u);
}

TEST(PacketPool, PutTakeRoundTripsAndReuses) {
    PacketPool pool;
    Packet a;
    a.id = 1;
    const PacketPool::Handle ha = pool.put(a);
    Packet b;
    b.id = 2;
    const PacketPool::Handle hb = pool.put(b);
    EXPECT_EQ(pool.in_use(), 2u);
    EXPECT_EQ(pool.take(ha).id, 1u);
    EXPECT_EQ(pool.take(hb).id, 2u);
    EXPECT_EQ(pool.in_use(), 0u);
    Packet c;
    c.id = 3;
    const PacketPool::Handle hc = pool.put(c);
    EXPECT_LT(hc, 2u);  // recycled one of the two existing slots
    EXPECT_EQ(pool.take(hc).id, 3u);
    EXPECT_EQ(pool.capacity(), 2u);
}

}  // namespace
}  // namespace bb::sim
