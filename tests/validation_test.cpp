#include "core/validation.h"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

TEST(Validation, EmptyCountsAreTriviallyAcceptable) {
    const auto rep = validate(StateCounts{});
    EXPECT_DOUBLE_EQ(rep.pair_asymmetry, 0.0);
    EXPECT_EQ(rep.transitions, 0u);
    EXPECT_TRUE(rep.acceptable());
}

TEST(Validation, SymmetricTransitionsPass) {
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 104;
    c.basic[0b00] = 1000;
    const auto rep = validate(c);
    EXPECT_NEAR(rep.pair_asymmetry, 4.0 / 204.0, 1e-12);
    EXPECT_EQ(rep.transitions, 204u);
    EXPECT_TRUE(rep.acceptable(0.25));
}

TEST(Validation, AsymmetricTransitionsFail) {
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 10;
    const auto rep = validate(c);
    EXPECT_NEAR(rep.pair_asymmetry, 90.0 / 110.0, 1e-12);
    EXPECT_FALSE(rep.acceptable(0.25));
}

TEST(Validation, ViolationsCounted) {
    StateCounts c;
    c.extended[0b010] = 3;
    c.extended[0b101] = 2;
    c.extended[0b000] = 95;
    const auto rep = validate(c);
    EXPECT_EQ(rep.violations, 5u);
    EXPECT_NEAR(rep.violation_fraction, 0.05, 1e-12);
    EXPECT_TRUE(rep.acceptable(0.25, 0.05));
    EXPECT_FALSE(rep.acceptable(0.25, 0.04));
}

TEST(Validation, ExtendedPairAsymmetry) {
    StateCounts c;
    c.extended[0b011] = 10;
    c.extended[0b110] = 30;
    c.extended[0b000] = 100;
    const auto rep = validate(c);
    EXPECT_NEAR(rep.ext_pair_asymmetry, 0.5, 1e-12);
}

TEST(Validation, SingleRateSpreadComparesBasicAndExtended) {
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    c.basic[0b00] = 80;  // rates 0.1 each
    c.extended[0b001] = 10;
    c.extended[0b100] = 10;
    c.extended[0b000] = 80;  // rates 0.1 each
    const auto rep = validate(c);
    EXPECT_NEAR(rep.single_rate_spread, 0.0, 1e-12);
}

TEST(StoppingRule, KeepsGoingUntilEnoughTransitions) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.2, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::keep_going);
}

TEST(StoppingRule, StopsValidWhenSymmetric) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.2, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 95;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::stop_valid);
}

TEST(StoppingRule, StopsInvalidOnViolations) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.2, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 95;
    c.extended[0b010] = 20;
    c.extended[0b000] = 80;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::stop_invalid);
}

TEST(StoppingRule, KeepsGoingWhenAsymmetric) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.1, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 50;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::keep_going);
}

}  // namespace
}  // namespace bb::core
