#include "core/validation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/streaming.h"

namespace bb::core {
namespace {

TEST(Validation, EmptyCountsAreTriviallyAcceptable) {
    const auto rep = validate(StateCounts{});
    EXPECT_DOUBLE_EQ(rep.pair_asymmetry, 0.0);
    EXPECT_EQ(rep.transitions, 0u);
    EXPECT_TRUE(rep.acceptable());
}

TEST(Validation, SymmetricTransitionsPass) {
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 104;
    c.basic[0b00] = 1000;
    const auto rep = validate(c);
    EXPECT_NEAR(rep.pair_asymmetry, 4.0 / 204.0, 1e-12);
    EXPECT_EQ(rep.transitions, 204u);
    EXPECT_TRUE(rep.acceptable(0.25));
}

TEST(Validation, AsymmetricTransitionsFail) {
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 10;
    const auto rep = validate(c);
    EXPECT_NEAR(rep.pair_asymmetry, 90.0 / 110.0, 1e-12);
    EXPECT_FALSE(rep.acceptable(0.25));
}

TEST(Validation, ViolationsCounted) {
    StateCounts c;
    c.extended[0b010] = 3;
    c.extended[0b101] = 2;
    c.extended[0b000] = 95;
    const auto rep = validate(c);
    EXPECT_EQ(rep.violations, 5u);
    EXPECT_NEAR(rep.violation_fraction, 0.05, 1e-12);
    EXPECT_TRUE(rep.acceptable(0.25, 0.05));
    EXPECT_FALSE(rep.acceptable(0.25, 0.04));
}

TEST(Validation, ExtendedPairAsymmetry) {
    StateCounts c;
    c.extended[0b011] = 10;
    c.extended[0b110] = 30;
    c.extended[0b000] = 100;
    const auto rep = validate(c);
    EXPECT_NEAR(rep.ext_pair_asymmetry, 0.5, 1e-12);
}

TEST(Validation, SingleRateSpreadComparesBasicAndExtended) {
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    c.basic[0b00] = 80;  // rates 0.1 each
    c.extended[0b001] = 10;
    c.extended[0b100] = 10;
    c.extended[0b000] = 80;  // rates 0.1 each
    const auto rep = validate(c);
    EXPECT_NEAR(rep.single_rate_spread, 0.0, 1e-12);
}

TEST(StoppingRule, KeepsGoingUntilEnoughTransitions) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.2, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 10;
    c.basic[0b10] = 10;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::keep_going);
}

TEST(StoppingRule, StopsValidWhenSymmetric) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.2, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 95;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::stop_valid);
}

TEST(StoppingRule, StopsInvalidOnViolations) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.2, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 95;
    c.extended[0b010] = 20;
    c.extended[0b000] = 80;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::stop_invalid);
}

TEST(Validation, AllZeroReportsAreAcceptableWithoutDividing) {
    // A run where every experiment reported 00/000: all denominators
    // (transitions, extended totals, rate means) are zero and must be
    // guarded, not divided by.
    StateCounts c;
    c.basic[0b00] = 10'000;
    c.extended[0b000] = 10'000;
    const auto rep = validate(c);
    EXPECT_EQ(rep.transitions, 0u);
    EXPECT_DOUBLE_EQ(rep.pair_asymmetry, 0.0);
    EXPECT_DOUBLE_EQ(rep.ext_pair_asymmetry, 0.0);
    EXPECT_DOUBLE_EQ(rep.single_rate_spread, 0.0);
    EXPECT_EQ(rep.violations, 0u);
    EXPECT_DOUBLE_EQ(rep.violation_fraction, 0.0);
    EXPECT_TRUE(rep.acceptable());
}

TEST(Validation, SingleExperimentOfEachCodeIsFinite) {
    // One lone report must never produce a NaN/inf in any ratio.
    for (std::uint8_t code = 0; code < 4; ++code) {
        StateCounts c;
        c.add({ExperimentKind::basic, code});
        const auto rep = validate(c);
        EXPECT_TRUE(std::isfinite(rep.pair_asymmetry)) << int(code);
        EXPECT_TRUE(std::isfinite(rep.violation_fraction)) << int(code);
    }
    for (std::uint8_t code = 0; code < 8; ++code) {
        StateCounts c;
        c.add({ExperimentKind::extended, code});
        const auto rep = validate(c);
        EXPECT_TRUE(std::isfinite(rep.single_rate_spread)) << int(code);
        EXPECT_TRUE(std::isfinite(rep.ext_pair_asymmetry)) << int(code);
        EXPECT_TRUE(std::isfinite(rep.violation_fraction)) << int(code);
    }
}

TEST(Validation, StreamingOnlineValidationMatchesOnEdgeCases) {
    // The streaming form must agree exactly with the batch form on the same
    // degenerate inputs (empty, all-zeros, single report).
    {
        const OnlineValidation empty;
        const auto batch = validate(StateCounts{});
        EXPECT_EQ(empty.finalize().pair_asymmetry, batch.pair_asymmetry);
        EXPECT_EQ(empty.finalize().transitions, batch.transitions);
    }
    {
        OnlineValidation online;
        StateCounts counts;
        for (int i = 0; i < 100; ++i) {
            const ExperimentResult r{ExperimentKind::extended, 0b000};
            online.consume(r);
            counts.add(r);
        }
        EXPECT_EQ(online.finalize().violation_fraction, validate(counts).violation_fraction);
    }
    {
        OnlineValidation online;
        online.consume({ExperimentKind::basic, 0b01});
        StateCounts counts;
        counts.add({ExperimentKind::basic, 0b01});
        EXPECT_EQ(online.finalize().pair_asymmetry, validate(counts).pair_asymmetry);
        EXPECT_EQ(online.evaluate(StoppingRule{}),
                  StoppingRule{}.evaluate(counts));
    }
}

TEST(StoppingRule, KeepsGoingWhenAsymmetric) {
    StoppingRule rule{{.min_transitions = 50, .tolerance = 0.1, .violation_tolerance = 0.05}};
    StateCounts c;
    c.basic[0b01] = 100;
    c.basic[0b10] = 50;
    EXPECT_EQ(rule.evaluate(c), StoppingRule::Decision::keep_going);
}

}  // namespace
}  // namespace bb::core
