// Gilbert-Elliott lossy-link tests.  The headline property test pins the
// realized long-run loss fraction against the analytic stationary rate
//   pi_bad = mean_bad / (mean_good + mean_bad)
//   E[loss] = pi_good * p_good + pi_bad * p_bad,
// and the clustering test pins the defining feature of the model: losses
// arrive in bursts, so P(lost | previous lost) far exceeds the marginal rate.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/lossy_link.h"
#include "sim/scheduler.h"

namespace bb {
namespace {

// GOOD is lossless; BAD eats half the packets.  pi_bad = 10/(20+10) = 1/3,
// so the stationary loss rate is 1/6.
sim::GilbertElliottLink::Config bursty_cfg() {
    sim::GilbertElliottLink::Config cfg;
    cfg.p_good_loss = 0.0;
    cfg.p_bad_loss = 0.5;
    cfg.mean_good = milliseconds(20);
    cfg.mean_bad = milliseconds(10);
    return cfg;
}

TEST(GilbertElliott, RejectsInvalidConfig) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    auto bad_sojourn = bursty_cfg();
    bad_sojourn.mean_bad = TimeNs::zero();
    EXPECT_THROW(sim::GilbertElliottLink(sched, bad_sojourn, sink, Rng{1}),
                 std::invalid_argument);
    auto bad_prob = bursty_cfg();
    bad_prob.p_bad_loss = 1.5;
    EXPECT_THROW(sim::GilbertElliottLink(sched, bad_prob, sink, Rng{1}),
                 std::invalid_argument);
}

TEST(GilbertElliott, LosslessWhenBothStatesAreLossless) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    auto cfg = bursty_cfg();
    cfg.p_bad_loss = 0.0;
    sim::GilbertElliottLink link{sched, cfg, sink, Rng{11}};
    for (int i = 0; i < 500; ++i) {
        sched.schedule_at(milliseconds(i), [&link, i] {
            sim::Packet p;
            p.id = static_cast<std::uint64_t>(i) + 1;
            p.size_bytes = 1000;
            link.accept(p);
        });
    }
    sched.run();
    EXPECT_EQ(link.drops(), 0u);
    EXPECT_EQ(sink.packets(), 500u);
    EXPECT_GT(link.state_flips(), 0u) << "the chain still alternates states";
}

TEST(GilbertElliott, AnalyticStationaryRateFormula) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::GilbertElliottLink link{sched, bursty_cfg(), sink, Rng{1}};
    EXPECT_NEAR(link.stationary_loss_rate(), 1.0 / 6.0, 1e-12);

    auto sym = bursty_cfg();
    sym.mean_good = milliseconds(10);
    sym.p_good_loss = 0.1;
    sim::GilbertElliottLink link2{sched, sym, sink, Rng{1}};
    EXPECT_NEAR(link2.stationary_loss_rate(), 0.5 * 0.1 + 0.5 * 0.5, 1e-12);
}

TEST(GilbertElliott, RealizedLossRateMatchesStationaryRate) {
    // 300k packets at 100 us spacing span ~1000 good/bad cycles, enough for
    // the realized fraction to settle onto the analytic value.
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::GilbertElliottLink link{sched, bursty_cfg(), sink, Rng{42}};
    struct Pump {
        sim::Scheduler* s;
        sim::PacketSink* out;
        int remaining;
        std::uint64_t id{0};
        void step() {
            if (remaining-- <= 0) return;
            sim::Packet p;
            p.id = ++id;
            p.size_bytes = 1000;
            out->accept(p);
            s->schedule_after(microseconds(100), [this] { step(); });
        }
    } pump{&sched, &link, 300'000};
    sched.schedule_at(TimeNs::zero(), [&pump] { pump.step(); });
    sched.run();
    const double realized =
        static_cast<double>(link.drops()) / static_cast<double>(link.arrivals());
    EXPECT_NEAR(realized, link.stationary_loss_rate(), 0.02);
    EXPECT_GT(link.state_flips(), 500u);
}

TEST(GilbertElliott, LossesClusterFarAboveTheMarginalRate) {
    // Reconstruct the per-packet loss sequence and compare
    // P(lost_i | lost_{i-1}) against the marginal loss fraction.  At 100 us
    // spacing the BAD state persists across ~100 consecutive packets, so the
    // conditional should sit near p_bad_loss = 0.5 while the marginal is 1/6.
    sim::Scheduler sched;
    std::vector<bool> lost(120'000, true);
    class Marker final : public sim::PacketSink {
    public:
        explicit Marker(std::vector<bool>& lost) : lost_{&lost} {}
        void accept(const sim::Packet& p) override {
            (*lost_)[static_cast<std::size_t>(p.id - 1)] = false;
        }

    private:
        std::vector<bool>* lost_;
    } sink{lost};
    sim::GilbertElliottLink link{sched, bursty_cfg(), sink, Rng{7}};
    struct Pump {
        sim::Scheduler* s;
        sim::PacketSink* out;
        int remaining;
        std::uint64_t id{0};
        void step() {
            if (remaining-- <= 0) return;
            sim::Packet p;
            p.id = ++id;
            p.size_bytes = 1000;
            out->accept(p);
            s->schedule_after(microseconds(100), [this] { step(); });
        }
    } pump{&sched, &link, static_cast<int>(lost.size())};
    sched.schedule_at(TimeNs::zero(), [&pump] { pump.step(); });
    sched.run();

    std::uint64_t losses = 0;
    std::uint64_t pairs = 0;
    std::uint64_t both = 0;
    for (std::size_t i = 1; i < lost.size(); ++i) {
        if (lost[i]) ++losses;
        if (lost[i - 1]) {
            ++pairs;
            if (lost[i]) ++both;
        }
    }
    ASSERT_GT(pairs, 1000u);
    const double marginal = static_cast<double>(losses) / static_cast<double>(lost.size());
    const double conditional = static_cast<double>(both) / static_cast<double>(pairs);
    EXPECT_GT(conditional, 2.0 * marginal) << "losses must cluster, not be i.i.d.";
    EXPECT_NEAR(conditional, 0.5, 0.06);
}

TEST(GilbertElliott, SameSeedReproducesTheRun) {
    const auto run = [&](std::uint64_t seed) {
        sim::Scheduler sched;
        sim::CountingSink sink;
        sim::GilbertElliottLink link{sched, bursty_cfg(), sink, Rng{seed}};
        for (int i = 0; i < 20'000; ++i) {
            sched.schedule_at(microseconds(200) * i, [&link, i] {
                sim::Packet p;
                p.id = static_cast<std::uint64_t>(i) + 1;
                p.size_bytes = 1000;
                link.accept(p);
            });
        }
        sched.run();
        return std::tuple{link.drops(), link.state_flips(), sink.packets()};
    };
    EXPECT_EQ(run(99), run(99));
    EXPECT_NE(std::get<0>(run(99)), std::get<0>(run(100)));
}

TEST(GilbertElliott, DropHookFiresOncePerDropWithNonDecreasingTimes) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::GilbertElliottLink link{sched, bursty_cfg(), sink, Rng{5}};
    std::vector<TimeNs> drop_times;
    link.on_drop([&](const sim::Packet&, TimeNs at) { drop_times.push_back(at); });
    for (int i = 0; i < 50'000; ++i) {
        sched.schedule_at(microseconds(100) * i, [&link, i] {
            sim::Packet p;
            p.id = static_cast<std::uint64_t>(i) + 1;
            p.size_bytes = 1000;
            link.accept(p);
        });
    }
    sched.run();
    EXPECT_EQ(drop_times.size(), link.drops());
    ASSERT_GT(drop_times.size(), 0u);
    for (std::size_t i = 1; i < drop_times.size(); ++i) {
        ASSERT_GE(drop_times[i], drop_times[i - 1])
            << "external-drop feed requires non-decreasing instants";
    }
}

TEST(GilbertElliott, ExtraDelayShiftsDeliveryNotLoss) {
    sim::Scheduler sched;
    std::vector<TimeNs> arrivals;
    class Stamper final : public sim::PacketSink {
    public:
        Stamper(sim::Scheduler& s, std::vector<TimeNs>& at) : s_{&s}, at_{&at} {}
        void accept(const sim::Packet&) override { at_->push_back(s_->now()); }

    private:
        sim::Scheduler* s_;
        std::vector<TimeNs>* at_;
    } sink{sched, arrivals};
    auto cfg = bursty_cfg();
    cfg.p_bad_loss = 0.0;  // lossless: isolate the delay behaviour
    cfg.extra_delay = milliseconds(5);
    sim::GilbertElliottLink link{sched, cfg, sink, Rng{3}};
    sched.schedule_at(milliseconds(10), [&link] {
        sim::Packet p;
        p.id = 1;
        p.size_bytes = 1000;
        link.accept(p);
    });
    sched.run();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0], milliseconds(15));
}

}  // namespace
}  // namespace bb
