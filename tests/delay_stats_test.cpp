#include "core/delay_stats.h"

#include <gtest/gtest.h>

namespace bb::core {
namespace {

ProbeOutcome probe(TimeNs owd, bool lost, bool received = true) {
    ProbeOutcome po;
    po.packets_sent = 3;
    po.packets_lost = lost ? 1 : 0;
    po.max_owd = owd;
    po.any_received = received;
    return po;
}

TEST(DelayStats, EmptyInvalid) {
    const auto s = summarize_delays({});
    EXPECT_FALSE(s.valid());
}

TEST(DelayStats, AllLostInvalid) {
    const auto s = summarize_delays({probe(TimeNs::zero(), true, false)});
    EXPECT_FALSE(s.valid());
}

TEST(DelayStats, BaseDelayIsMinimum) {
    const auto s = summarize_delays({
        probe(milliseconds(52), false),
        probe(milliseconds(50), false),
        probe(milliseconds(80), false),
    });
    ASSERT_TRUE(s.valid());
    EXPECT_EQ(s.base_delay, milliseconds(50));
    EXPECT_EQ(s.samples, 3u);
}

TEST(DelayStats, QueueingIsRelativeToBase) {
    const auto s = summarize_delays({
        probe(milliseconds(50), false),
        probe(milliseconds(60), false),
        probe(milliseconds(150), false),
    });
    ASSERT_TRUE(s.valid());
    EXPECT_NEAR(s.max_queueing_s, 0.100, 1e-9);
    EXPECT_NEAR(s.mean_queueing_s, (0.0 + 0.010 + 0.100) / 3.0, 1e-9);
    EXPECT_NEAR(s.p50_queueing_s, 0.010, 1e-9);
}

TEST(DelayStats, LossConditionalDelay) {
    const auto s = summarize_delays({
        probe(milliseconds(50), false),
        probe(milliseconds(55), false),
        probe(milliseconds(148), true),
        probe(milliseconds(152), true),
    });
    ASSERT_TRUE(s.valid());
    EXPECT_EQ(s.lossy_samples, 2u);
    EXPECT_NEAR(s.loss_conditional_queueing_s, 0.100, 1e-9);
}

TEST(DelayStats, QuantilesOrdered) {
    std::vector<ProbeOutcome> probes;
    for (int i = 0; i <= 100; ++i) {
        probes.push_back(probe(milliseconds(50 + i), false));
    }
    const auto s = summarize_delays(probes);
    ASSERT_TRUE(s.valid());
    EXPECT_LE(s.p50_queueing_s, s.p95_queueing_s);
    EXPECT_LE(s.p95_queueing_s, s.p99_queueing_s);
    EXPECT_LE(s.p99_queueing_s, s.max_queueing_s);
    EXPECT_NEAR(s.p50_queueing_s, 0.050, 1e-9);
    EXPECT_NEAR(s.p95_queueing_s, 0.095, 1e-9);
}

}  // namespace
}  // namespace bb::core
