// End-to-end validation cells: BADABING at p = 0.3 against each queue
// discipline (and against non-congestive Gilbert-Elliott loss), with
// per-cell error bounds on the frequency estimator.  The bounds are loose —
// the ablation bench measures the bias precisely; these tests pin that each
// cell produces a sane, finite, same-order estimate so a regression in any
// discipline/estimator pairing cannot slip through silently.
#include <gtest/gtest.h>

#include <cmath>

#include "scenarios/experiment.h"
#include "sim/lossy_link.h"

namespace bb {
namespace {

struct Cell {
    scenarios::QueueDiscipline discipline;
    bool ge_enabled{false};
};

struct CellResult {
    measure::TruthSummary truth;
    probes::BadabingResult est;
    std::uint64_t queue_drops{0};
    std::uint64_t ge_drops{0};
    std::uint64_t monitor_drops{0};
};

CellResult run_cell(const Cell& cell) {
    scenarios::TestbedConfig tb;
    tb.bottleneck_rate_bps = 20'000'000;
    tb.discipline = cell.discipline;
    tb.seed = 42;
    if (cell.ge_enabled) {
        tb.ge_enabled = true;
        tb.ge.p_bad_loss = 0.3;
        tb.ge.mean_good = seconds_i(5);
        tb.ge.mean_bad = milliseconds(100);
    }
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::cbr_uniform;
    wl.duration = seconds_i(120);
    wl.seed = 42;

    scenarios::Experiment exp{tb, wl};
    probes::BadabingConfig probe;
    probe.p = 0.3;
    probe.total_slots = 0;  // sized to the workload window
    auto& tool = exp.add_badabing(probe);
    exp.run();

    CellResult r;
    r.truth = exp.truth();
    r.est = tool.analyze(exp.default_marking(probe.p));
    r.queue_drops = exp.testbed().bottleneck().drops();
    r.ge_drops = exp.testbed().ge() ? exp.testbed().ge()->drops() : 0;
    r.monitor_drops = exp.monitor().drops_total();
    return r;
}

void expect_same_order(const CellResult& r, double rel_bound) {
    ASSERT_GT(r.truth.frequency, 0.0) << "the cell must contain loss episodes";
    ASSERT_GT(r.est.frequency.value, 0.0) << "the estimator must see them";
    EXPECT_LE(r.est.frequency.value, 1.0);
    const double rel =
        std::abs(r.est.frequency.value - r.truth.frequency) / r.truth.frequency;
    EXPECT_LT(rel, rel_bound) << "estimate " << r.est.frequency.value << " vs truth "
                              << r.truth.frequency;
    EXPECT_TRUE(std::isfinite(r.est.duration_basic.slots));
    EXPECT_GE(r.est.duration_basic.slots, 0.0);
}

TEST(AqmValidation, DropTailCell) {
    const CellResult r = run_cell({scenarios::QueueDiscipline::drop_tail});
    // The paper's own configuration: the estimator tracks truth closely
    // (Table 4 reproduces ~6% here).
    expect_same_order(r, 0.5);
    EXPECT_EQ(r.monitor_drops, r.queue_drops);
}

TEST(AqmValidation, RedCell) {
    const CellResult r = run_cell({scenarios::QueueDiscipline::red});
    // RED's probabilistic early drops soften episode edges; the estimator
    // must stay within the same order of magnitude.
    expect_same_order(r, 1.0);
}

TEST(AqmValidation, PieCell) {
    const CellResult r = run_cell({scenarios::QueueDiscipline::pie});
    expect_same_order(r, 1.0);
}

TEST(AqmValidation, CoDelCell) {
    const CellResult r = run_cell({scenarios::QueueDiscipline::codel});
    // CoDel reshapes episodes the most (head drops on the sqrt schedule);
    // allow the widest band short of an order-of-magnitude error.
    expect_same_order(r, 2.0);
}

TEST(AqmValidation, GilbertElliottLossCountsTowardTruth) {
    const CellResult with_ge = run_cell({scenarios::QueueDiscipline::drop_tail, true});
    const CellResult without = run_cell({scenarios::QueueDiscipline::drop_tail, false});
    // Ground truth must fold the GE drops in on top of the queue's own.
    EXPECT_GT(with_ge.ge_drops, 0u);
    EXPECT_EQ(with_ge.monitor_drops, with_ge.queue_drops + with_ge.ge_drops);
    EXPECT_GT(with_ge.truth.frequency, without.truth.frequency)
        << "non-congestive loss adds episodes to the truth record";
    // The probe process sees GE loss too (probes die on that segment), so the
    // estimate rises with it and stays within a loose band of truth.
    EXPECT_GT(with_ge.est.frequency.value, 0.0);
    const double rel = std::abs(with_ge.est.frequency.value - with_ge.truth.frequency) /
                       with_ge.truth.frequency;
    EXPECT_LT(rel, 3.0);
}

}  // namespace
}  // namespace bb
