#include "core/bootstrap.h"

#include <gtest/gtest.h>

#include "core/probe_process.h"
#include "core/synthetic.h"

namespace bb::core {
namespace {

std::vector<ExperimentResult> synth_results(std::uint64_t seed, SlotIndex slots = 400'000) {
    Rng rng{seed};
    const auto series = synth_congestion_series(rng, slots, 14.0, 1986.0);
    ProbeProcessConfig pcfg;
    pcfg.p = 0.3;
    const auto design = design_probe_process(rng, slots, pcfg);
    return observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
}

TEST(Bootstrap, EmptyInputInvalid) {
    Rng rng{1};
    const auto res = bootstrap_estimates({}, BootstrapConfig{}, rng);
    EXPECT_FALSE(res.frequency.valid);
    EXPECT_FALSE(res.duration_slots.valid);
}

TEST(Bootstrap, PointEstimateMatchesDirectComputation) {
    const auto results = synth_results(3);
    StateCounts counts;
    for (const auto& r : results) counts.add(r);
    const double direct = estimate_frequency(counts).value;

    Rng rng{2};
    const auto res = bootstrap_estimates(results, BootstrapConfig{}, rng);
    ASSERT_TRUE(res.frequency.valid);
    EXPECT_DOUBLE_EQ(res.frequency.point, direct);
}

TEST(Bootstrap, IntervalsContainThePointEstimate) {
    const auto results = synth_results(4);
    Rng rng{5};
    const auto res = bootstrap_estimates(results, BootstrapConfig{}, rng);
    ASSERT_TRUE(res.frequency.valid);
    EXPECT_LE(res.frequency.lo, res.frequency.point);
    EXPECT_GE(res.frequency.hi, res.frequency.point);
    ASSERT_TRUE(res.duration_slots.valid);
    EXPECT_LE(res.duration_slots.lo, res.duration_slots.point * 1.05);
    EXPECT_GE(res.duration_slots.hi, res.duration_slots.point * 0.95);
    EXPECT_GT(res.frequency.std_error, 0.0);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
    const auto results = synth_results(6);
    BootstrapConfig narrow;
    narrow.confidence = 0.5;
    narrow.replicates = 400;
    BootstrapConfig wide = narrow;
    wide.confidence = 0.99;
    Rng rng1{7};
    Rng rng2{7};
    const auto res_narrow = bootstrap_estimates(results, narrow, rng1);
    const auto res_wide = bootstrap_estimates(results, wide, rng2);
    ASSERT_TRUE(res_narrow.frequency.valid);
    ASSERT_TRUE(res_wide.frequency.valid);
    EXPECT_GE(res_wide.frequency.hi - res_wide.frequency.lo,
              res_narrow.frequency.hi - res_narrow.frequency.lo);
}

TEST(Bootstrap, MoreDataShrinksInterval) {
    Rng rng1{8};
    Rng rng2{8};
    const auto small_res =
        bootstrap_estimates(synth_results(9, 100'000), BootstrapConfig{}, rng1);
    const auto large_res =
        bootstrap_estimates(synth_results(9, 1'600'000), BootstrapConfig{}, rng2);
    ASSERT_TRUE(small_res.frequency.valid);
    ASSERT_TRUE(large_res.frequency.valid);
    EXPECT_LT(large_res.frequency.hi - large_res.frequency.lo,
              small_res.frequency.hi - small_res.frequency.lo);
}

TEST(BootstrapMean, EmptyIsInvalid) {
    Rng rng{1};
    const auto iv = bootstrap_mean({}, 200, 0.95, rng);
    EXPECT_FALSE(iv.valid);
}

TEST(BootstrapMean, SingleValueDegeneratesToZeroWidth) {
    Rng rng{2};
    const auto iv = bootstrap_mean({0.42}, 200, 0.95, rng);
    ASSERT_TRUE(iv.valid);
    EXPECT_DOUBLE_EQ(iv.point, 0.42);
    EXPECT_DOUBLE_EQ(iv.lo, 0.42);
    EXPECT_DOUBLE_EQ(iv.hi, 0.42);
    EXPECT_DOUBLE_EQ(iv.std_error, 0.0);
}

TEST(BootstrapMean, IntervalBracketsTheSampleMean) {
    const std::vector<double> values{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
    Rng rng{3};
    const auto iv = bootstrap_mean(values, 1000, 0.95, rng);
    ASSERT_TRUE(iv.valid);
    EXPECT_DOUBLE_EQ(iv.point, 4.5);
    EXPECT_LT(iv.lo, 4.5);
    EXPECT_GT(iv.hi, 4.5);
    EXPECT_GE(iv.lo, 1.0);
    EXPECT_LE(iv.hi, 8.0);
    EXPECT_GT(iv.std_error, 0.0);
}

TEST(BootstrapMean, DeterministicGivenSameRngSeed) {
    const std::vector<double> values{0.1, 0.2, 0.7, 1.3};
    Rng rng1{9};
    Rng rng2{9};
    const auto a = bootstrap_mean(values, 500, 0.9, rng1);
    const auto b = bootstrap_mean(values, 500, 0.9, rng2);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_EQ(a.std_error, b.std_error);
}

TEST(Bootstrap, CoverageOfTrueFrequency) {
    // Over several independent realizations, the 90% interval should contain
    // the true frequency most of the time (loose check: >= 6 of 10).
    int covered = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng{seed};
        const SlotIndex slots = 400'000;
        const auto series = synth_congestion_series(rng, slots, 14.0, 1986.0);
        ProbeProcessConfig pcfg;
        pcfg.p = 0.3;
        const auto design = design_probe_process(rng, slots, pcfg);
        const auto results =
            observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
        const double truth = series_truth(series).frequency;
        Rng boot_rng{seed + 1000};
        const auto res = bootstrap_estimates(results, BootstrapConfig{}, boot_rng);
        if (res.frequency.valid && truth >= res.frequency.lo && truth <= res.frequency.hi) {
            ++covered;
        }
    }
    EXPECT_GE(covered, 6);
}

}  // namespace
}  // namespace bb::core
