#include "core/bootstrap.h"

#include <gtest/gtest.h>

#include "core/probe_process.h"
#include "core/synthetic.h"

namespace bb::core {
namespace {

std::vector<ExperimentResult> synth_results(std::uint64_t seed, SlotIndex slots = 400'000) {
    Rng rng{seed};
    const auto series = synth_congestion_series(rng, slots, 14.0, 1986.0);
    ProbeProcessConfig pcfg;
    pcfg.p = 0.3;
    const auto design = design_probe_process(rng, slots, pcfg);
    return observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
}

TEST(Bootstrap, EmptyInputInvalid) {
    Rng rng{1};
    const auto res = bootstrap_estimates({}, BootstrapConfig{}, rng);
    EXPECT_FALSE(res.frequency.valid);
    EXPECT_FALSE(res.duration_slots.valid);
}

TEST(Bootstrap, PointEstimateMatchesDirectComputation) {
    const auto results = synth_results(3);
    StateCounts counts;
    for (const auto& r : results) counts.add(r);
    const double direct = estimate_frequency(counts).value;

    Rng rng{2};
    const auto res = bootstrap_estimates(results, BootstrapConfig{}, rng);
    ASSERT_TRUE(res.frequency.valid);
    EXPECT_DOUBLE_EQ(res.frequency.point, direct);
}

TEST(Bootstrap, IntervalsContainThePointEstimate) {
    const auto results = synth_results(4);
    Rng rng{5};
    const auto res = bootstrap_estimates(results, BootstrapConfig{}, rng);
    ASSERT_TRUE(res.frequency.valid);
    EXPECT_LE(res.frequency.lo, res.frequency.point);
    EXPECT_GE(res.frequency.hi, res.frequency.point);
    ASSERT_TRUE(res.duration_slots.valid);
    EXPECT_LE(res.duration_slots.lo, res.duration_slots.point * 1.05);
    EXPECT_GE(res.duration_slots.hi, res.duration_slots.point * 0.95);
    EXPECT_GT(res.frequency.std_error, 0.0);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
    const auto results = synth_results(6);
    BootstrapConfig narrow;
    narrow.confidence = 0.5;
    narrow.replicates = 400;
    BootstrapConfig wide = narrow;
    wide.confidence = 0.99;
    Rng rng1{7};
    Rng rng2{7};
    const auto res_narrow = bootstrap_estimates(results, narrow, rng1);
    const auto res_wide = bootstrap_estimates(results, wide, rng2);
    ASSERT_TRUE(res_narrow.frequency.valid);
    ASSERT_TRUE(res_wide.frequency.valid);
    EXPECT_GE(res_wide.frequency.hi - res_wide.frequency.lo,
              res_narrow.frequency.hi - res_narrow.frequency.lo);
}

TEST(Bootstrap, MoreDataShrinksInterval) {
    Rng rng1{8};
    Rng rng2{8};
    const auto small_res =
        bootstrap_estimates(synth_results(9, 100'000), BootstrapConfig{}, rng1);
    const auto large_res =
        bootstrap_estimates(synth_results(9, 1'600'000), BootstrapConfig{}, rng2);
    ASSERT_TRUE(small_res.frequency.valid);
    ASSERT_TRUE(large_res.frequency.valid);
    EXPECT_LT(large_res.frequency.hi - large_res.frequency.lo,
              small_res.frequency.hi - small_res.frequency.lo);
}

TEST(Bootstrap, CoverageOfTrueFrequency) {
    // Over several independent realizations, the 90% interval should contain
    // the true frequency most of the time (loose check: >= 6 of 10).
    int covered = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng{seed};
        const SlotIndex slots = 400'000;
        const auto series = synth_congestion_series(rng, slots, 14.0, 1986.0);
        ProbeProcessConfig pcfg;
        pcfg.p = 0.3;
        const auto design = design_probe_process(rng, slots, pcfg);
        const auto results =
            observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
        const double truth = series_truth(series).frequency;
        Rng boot_rng{seed + 1000};
        const auto res = bootstrap_estimates(results, BootstrapConfig{}, boot_rng);
        if (res.frequency.valid && truth >= res.frequency.lo && truth <= res.frequency.hi) {
            ++covered;
        }
    }
    EXPECT_GE(covered, 6);
}

}  // namespace
}  // namespace bb::core
