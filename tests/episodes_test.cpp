#include "measure/episodes.h"

#include <gtest/gtest.h>

namespace bb::measure {
namespace {

std::vector<TimeNs> times_ms(std::initializer_list<std::int64_t> ms) {
    std::vector<TimeNs> out;
    for (auto m : ms) out.push_back(milliseconds(m));
    return out;
}

TEST(ExtractEpisodes, EmptyInput) {
    EXPECT_TRUE(extract_episodes({}, milliseconds(100)).empty());
}

TEST(ExtractEpisodes, SingleDropIsZeroLengthEpisode) {
    const auto eps = extract_episodes(times_ms({500}), milliseconds(100));
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_EQ(eps[0].start, milliseconds(500));
    EXPECT_EQ(eps[0].end, milliseconds(500));
    EXPECT_EQ(eps[0].drops, 1u);
    EXPECT_EQ(eps[0].duration(), TimeNs::zero());
}

TEST(ExtractEpisodes, ClustersWithinGap) {
    const auto eps = extract_episodes(times_ms({100, 150, 190, 1000, 1050}), milliseconds(100));
    ASSERT_EQ(eps.size(), 2u);
    EXPECT_EQ(eps[0].start, milliseconds(100));
    EXPECT_EQ(eps[0].end, milliseconds(190));
    EXPECT_EQ(eps[0].drops, 3u);
    EXPECT_EQ(eps[1].start, milliseconds(1000));
    EXPECT_EQ(eps[1].drops, 2u);
}

TEST(ExtractEpisodes, GapBoundaryIsInclusive) {
    // Exactly `gap` apart stays one episode; just over splits.
    auto eps = extract_episodes(times_ms({0, 100}), milliseconds(100));
    EXPECT_EQ(eps.size(), 1u);
    eps = extract_episodes(times_ms({0, 101}), milliseconds(100));
    EXPECT_EQ(eps.size(), 2u);
}

TEST(ExtractEpisodes, ChainedDropsExtendEpisode) {
    // Consecutive drops each within gap of the previous one chain together
    // even if the total span exceeds the gap.
    const auto eps = extract_episodes(times_ms({0, 80, 160, 240}), milliseconds(100));
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_EQ(eps[0].duration(), milliseconds(240));
}

TEST(SummarizeTruth, FrequencyCountsCongestedSlots) {
    // One 68 ms episode in a 10 s window with 5 ms slots: 14 slots out of 2000.
    std::vector<LossEpisode> eps{{seconds_i(1), seconds_i(1) + milliseconds(68), 10}};
    const auto t = summarize_truth(eps, milliseconds(5), TimeNs::zero(), seconds_i(10));
    EXPECT_EQ(t.episodes, 1u);
    EXPECT_NEAR(t.frequency, 14.0 / 2000.0, 1e-9);
    EXPECT_NEAR(t.mean_duration_s, 0.068, 1e-9);
    EXPECT_EQ(t.total_drops, 10u);
}

TEST(SummarizeTruth, MultipleEpisodesDurationStats) {
    std::vector<LossEpisode> eps{
        {seconds_i(1), seconds_i(1) + milliseconds(50), 5},
        {seconds_i(5), seconds_i(5) + milliseconds(150), 5},
    };
    const auto t = summarize_truth(eps, milliseconds(5), TimeNs::zero(), seconds_i(10));
    EXPECT_EQ(t.episodes, 2u);
    EXPECT_NEAR(t.mean_duration_s, 0.1, 1e-9);
    EXPECT_NEAR(t.sd_duration_s, 0.0707, 1e-3);
}

TEST(SummarizeTruth, EpisodesOutsideWindowIgnored) {
    std::vector<LossEpisode> eps{{seconds_i(20), seconds_i(21), 3}};
    const auto t = summarize_truth(eps, milliseconds(5), TimeNs::zero(), seconds_i(10));
    EXPECT_EQ(t.episodes, 0u);
    EXPECT_DOUBLE_EQ(t.frequency, 0.0);
}

TEST(SummarizeTruth, EpisodeClippedToWindow) {
    std::vector<LossEpisode> eps{{seconds_i(9), seconds_i(12), 3}};
    const auto t = summarize_truth(eps, seconds_i(1), TimeNs::zero(), seconds_i(10));
    // Slots 9 only (window has 10 slots, episode covers slot 9 onward).
    EXPECT_NEAR(t.frequency, 0.1, 1e-9);
}

TEST(SummarizeTruth, DegenerateWindow) {
    const auto t = summarize_truth({}, milliseconds(5), seconds_i(5), seconds_i(5));
    EXPECT_DOUBLE_EQ(t.frequency, 0.0);
    EXPECT_EQ(t.episodes, 0u);
}

TEST(CongestionSlots, MarksOverlappingSlots) {
    std::vector<LossEpisode> eps{{milliseconds(7), milliseconds(13), 2}};
    const auto slots = congestion_slots(eps, milliseconds(5), TimeNs::zero(), milliseconds(25));
    ASSERT_EQ(slots.size(), 5u);
    EXPECT_FALSE(slots[0]);  // [0,5)
    EXPECT_TRUE(slots[1]);   // [5,10) contains 7
    EXPECT_TRUE(slots[2]);   // [10,15) contains 13
    EXPECT_FALSE(slots[3]);
    EXPECT_FALSE(slots[4]);
}

TEST(DelayBasedEpisodes, MergesClustersWhenQueueStaysFull) {
    // Two drop clusters 300 ms apart with a 100 ms gap rule would normally
    // split; departures in between all above the floor merge them.
    const auto drops = times_ms({1000, 1300});
    std::vector<DelayedDeparture> deps{
        {milliseconds(1100), milliseconds(95)},
        {milliseconds(1200), milliseconds(92)},
    };
    const auto eps =
        extract_episodes_delay_based(drops, deps, milliseconds(90), milliseconds(100));
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_EQ(eps[0].start, milliseconds(1000));
    EXPECT_EQ(eps[0].end, milliseconds(1300));
    EXPECT_EQ(eps[0].drops, 2u);
}

TEST(DelayBasedEpisodes, DoesNotMergeWhenQueueDrained) {
    const auto drops = times_ms({1000, 1300});
    std::vector<DelayedDeparture> deps{
        {milliseconds(1100), milliseconds(95)},
        {milliseconds(1200), milliseconds(20)},  // queue drained
    };
    const auto eps =
        extract_episodes_delay_based(drops, deps, milliseconds(90), milliseconds(100));
    EXPECT_EQ(eps.size(), 2u);
}

TEST(DelayBasedEpisodes, NoDeparturesBetweenMeansNoMerge) {
    const auto drops = times_ms({1000, 1300});
    const auto eps = extract_episodes_delay_based(drops, {}, milliseconds(90), milliseconds(100));
    EXPECT_EQ(eps.size(), 2u);
}

}  // namespace
}  // namespace bb::measure
